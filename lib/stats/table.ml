type align = Left | Right

type t = {
  title : string option;
  headers : (string * align) list;
  mutable rows : string list list;  (* reversed *)
}

let create ?title headers = { title; headers; rows = [] }

let title t = t.title
let columns t = t.headers
let rows t = List.rev t.rows

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.headers in
  let aligns = List.map snd t.headers in
  let widths =
    List.fold_left
      (fun widths row -> List.map2 (fun w cell -> max w (String.length cell)) widths row)
      (List.map String.length headers)
      rows
  in
  let pad align width cell =
    let gap = width - String.length cell in
    match align with
    | Left -> cell ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ cell
  in
  let render_row row =
    let cells = List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) row in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths) ^ "+" in
  let buf = Buffer.create 512 in
  begin
    match t.title with
    | Some title ->
        Buffer.add_string buf title;
        Buffer.add_char buf '\n'
    | None -> ()
  end;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let cell_int = string_of_int
let cell_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let cell_pct ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals v
