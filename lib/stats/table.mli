(** Plain-text table rendering for experiment output. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create columns] with column headers and alignment. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from the header. *)

val add_rows : t -> string list list -> unit

val title : t -> string option

val columns : t -> (string * align) list
(** Header cells with their alignment, in display order. *)

val rows : t -> string list list
(** Data rows in insertion order (as rendered, not reversed). *)

val render : t -> string
(** Box-drawn table with padded columns, preceded by the title. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : ?decimals:int -> float -> string
(** [cell_pct 97.561] is ["97.6%"] with default decimals = 1. *)
