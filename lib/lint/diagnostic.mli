(** One lint finding: a position, the rule that fired and a message. *)

type t = {
  file : string;  (** path as given to the engine, e.g. ["lib/bgp/route.ml"] *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler-style *)
  rule : string;  (** a {!Rule.t} id *)
  message : string;
}

val compare : t -> t -> int
(** Order by file, line, column, rule, message — the report order. *)

val to_string : t -> string
(** ["file:line:col [rule-id] message"] — the text report line. *)

val to_json : t -> Rpi_json.t
(** One NDJSON object: [{"file", "line", "col", "rule", "message"}]. *)
