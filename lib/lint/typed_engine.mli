(** The typed rule engine.

    Runs the [Rule.Typedtree] rules over dune's [.cmt] binary
    annotations (loaded with compiler-libs [Cmt_format]), which carry
    the full Typedtree: resolved [Path.t]s, inferred types, and enough
    structure to build a whole-library call-graph approximation.  The
    Parsetree engine stays the authority for the syntactic rules; this
    one answers the questions syntax cannot — what runs inside a domain
    closure ([domain-race]), whether an expression allocates
    ([hot-path-alloc]) and where an interned id flows
    ([intern-id-escape]).

    Suppression comments work exactly as for the syntactic rules: the
    unit's source text is kept alongside its Typedtree and
    [(* rpilint: allow <rule-id> *)] on the finding's line or the line
    above drops it.  See DESIGN.md §7c for the approximations (call
    graph by reference, mutex guards by presence, intra-procedural
    allocation only). *)

type unit_info = {
  tu_file : string;  (** repo-relative source path, as the compiler saw it *)
  tu_source : string;  (** source text, for suppression comments *)
  tu_modname : string list;
      (** normalized module path: dune's ["Rpi_sim__Engine"] mangling is
          split back into [["Rpi_sim"; "Engine"]] *)
  tu_structure : Typedtree.structure;
}

val cmt_error_rule : string
(** The pseudo rule id carried by unreadable-cmt diagnostics (exit-code
    class 2, like [parse-error]). *)

val load_cmt : ?source_root:string -> string -> (unit_info option, string) result
(** Read one [.cmt] file.  [Ok None] means the cmt is real but not
    lintable — an interface-only or dune-generated alias module with no
    source file, or a unit whose source cannot be found (tried relative
    to the cwd, the cmt's recorded build dir, then [source_root]).
    [Error] carries a human-readable load failure. *)

val lint_units : ?rules:string list -> unit_info list -> Diagnostic.t list
(** Run the typed rules (all of them, or the subset named in [rules])
    over a whole library's units at once — the call graph spans every
    unit given, so pass the full tree for cross-module reachability.
    Results are suppression-filtered, deduplicated and sorted by
    {!Diagnostic.compare}. *)
