(* The rule engine: a toplevel walk for module-level-state rules plus an
   Ast_iterator sweep for expression-level rules, over vanilla Parsetrees
   (compiler-libs 5.1).  Everything is syntactic — no typing pass — so
   each rule errs on the side of precision and the few deliberate
   exceptions live in suppression comments or the baseline. *)

open Parsetree

type ctx = {
  file : string;
  in_lib : bool;
  in_core : bool;
  in_sim : bool;
  defines_compare : bool;
      (* the file binds a value or parameter named [compare]; bare
         [compare] then refers to it, not to Stdlib.compare *)
  report : Diagnostic.t -> unit;
}

let diag ctx (loc : Location.t) rule message =
  let p = loc.loc_start in
  ctx.report
    {
      Diagnostic.file = ctx.file;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      rule;
      message;
    }

let head_module lid =
  let rec go = function
    | Longident.Lident s -> s
    | Longident.Ldot (l, _) -> go l
    | Longident.Lapply (l, _) -> go l
  in
  go lid

(* ------------------------------------------------------------------ *)
(* mutable-toplevel                                                    *)

(* Constructors of freshly-allocated mutable containers.  Atomic, Mutex,
   Condition and Semaphore are deliberately absent: they are the
   domain-safe way to share state. *)
let mutable_creator : Longident.t -> string option = function
  | Lident "ref" | Ldot (Lident "Stdlib", "ref") -> Some "ref"
  | Ldot (Lident "Hashtbl", "create")
  | Ldot (Ldot (Lident "Stdlib", "Hashtbl"), "create") ->
      Some "Hashtbl.create"
  | Ldot (Lident "Array", ("make" | "create" | "init" | "make_matrix" | "copy"))
    ->
      Some "Array.make"
  | Ldot (Lident "Bytes", ("create" | "make" | "init" | "of_string")) ->
      Some "Bytes.create"
  | Ldot (Lident "Buffer", "create") -> Some "Buffer.create"
  | Ldot (Lident "Queue", "create") -> Some "Queue.create"
  | Ldot (Lident "Stack", "create") -> Some "Stack.create"
  | _ -> None

(* Does evaluating [e] at module level yield a shared mutable value?
   [mutable_fields] are field names declared [mutable] in this file, so a
   toplevel record literal mentioning one is caught without type
   information. *)
let rec mutable_value mutable_fields e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) ->
      mutable_creator txt
  | Pexp_array _ -> Some "array literal"
  | Pexp_record (fields, _) ->
      if
        List.exists
          (fun ((lid : Longident.t Asttypes.loc), _) ->
            match lid.Asttypes.txt with
            | Longident.Lident name ->
                List.exists (String.equal name) mutable_fields
            | _ -> false)
          fields
      then Some "record with mutable field"
      else None
  | Pexp_constraint (e, _) | Pexp_lazy e | Pexp_let (_, _, e) ->
      mutable_value mutable_fields e
  | Pexp_tuple es -> List.find_map (mutable_value mutable_fields) es
  | _ -> None

let binding_name vb =
  match vb.pvb_pat.ppat_desc with
  | Ppat_var { txt; _ } -> txt
  | _ -> "_"

let check_type_decl ctx (td : type_declaration) =
  match td.ptype_kind with
  | Ptype_record labels -> (
      match List.find_opt (fun l -> l.pld_mutable = Asttypes.Mutable) labels with
      | Some l ->
          diag ctx l.pld_loc Rule.mutable_toplevel.Rule.id
            (Printf.sprintf
               "record type '%s' has mutable field '%s'; values shared across \
                domains race — keep them per-call or behind a mutex"
               td.ptype_name.txt l.pld_name.txt)
      | None -> ())
  | _ -> ()

(* Walk structure items that execute at module-initialisation time.
   Functor bodies are skipped: their state is per-application. *)
let rec scan_toplevel ctx mutable_fields items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match mutable_value mutable_fields vb.pvb_expr with
              | Some what ->
                  diag ctx vb.pvb_loc Rule.mutable_toplevel.Rule.id
                    (Printf.sprintf
                       "module-level binding '%s' holds shared mutable state \
                        (%s); move it into a context or guard it explicitly"
                       (binding_name vb) what)
              | None -> ())
            vbs
      | Pstr_type (_, decls) -> List.iter (check_type_decl ctx) decls
      | Pstr_module mb -> scan_module_expr ctx mutable_fields mb.pmb_expr
      | Pstr_recmodule mbs ->
          List.iter (fun mb -> scan_module_expr ctx mutable_fields mb.pmb_expr) mbs
      | Pstr_include { pincl_mod; _ } ->
          scan_module_expr ctx mutable_fields pincl_mod
      | _ -> ())
    items

and scan_module_expr ctx mutable_fields me =
  match me.pmod_desc with
  | Pmod_structure items -> scan_toplevel ctx mutable_fields items
  | Pmod_constraint (me, _) -> scan_module_expr ctx mutable_fields me
  | _ -> ()

let collect_mutable_fields structure =
  let fields = ref [] in
  let type_declaration it td =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun l ->
            if l.pld_mutable = Asttypes.Mutable then
              fields := l.pld_name.txt :: !fields)
          labels
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration it td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  it.structure it structure;
  !fields

(* ------------------------------------------------------------------ *)
(* Expression-level rules                                              *)

let stdout_printer : Longident.t -> bool = function
  | Lident
      ( "print_endline" | "print_string" | "print_newline" | "print_int"
      | "print_float" | "print_char" | "print_bytes" )
  | Ldot
      ( Lident "Stdlib",
        ( "print_endline" | "print_string" | "print_newline" | "print_int"
        | "print_float" | "print_char" | "print_bytes" ) )
  | Ldot (Lident "Printf", "printf")
  | Ldot (Lident "Format", "printf") ->
      true
  | _ -> false

let check_ident ctx txt loc =
  (match txt with
  | Longident.Ldot (Lident "Stdlib", ("compare" | "=" | "<>")) ->
      diag ctx loc Rule.poly_compare.Rule.id
        "polymorphic Stdlib comparison; use the type's dedicated \
         compare/equal or a rank function"
  | Lident "compare" when not ctx.defines_compare ->
      diag ctx loc Rule.poly_compare.Rule.id
        "bare 'compare' is Stdlib's polymorphic compare here; use the \
         type's dedicated compare or a rank function"
  | _ -> ());
  (match head_module txt with
  | ("Obj" | "Marshal") when ctx.in_lib ->
      diag ctx loc Rule.no_obj_magic.Rule.id
        (Printf.sprintf "'%s' is off-limits in library code"
           (String.concat "." (Longident.flatten txt)))
  | _ -> ());
  if ctx.in_lib && stdout_printer txt then
    diag ctx loc Rule.stdout_in_lib.Rule.id
      "library code must not print to stdout; return the text (Exp.outcome, \
       Table.render) and let the caller emit it";
  match txt with
  | Lident "failwith" | Ldot (Lident "Stdlib", "failwith") ->
      if ctx.in_core then
        diag ctx loc Rule.failwith_in_core.Rule.id
          "core inference must not failwith; return a typed Error or raise a \
           dedicated exception"
  | _ -> ()

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> catch_all_pattern p
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

let check_handler_case ctx case =
  if catch_all_pattern case.pc_lhs && Option.is_none case.pc_guard then
    diag ctx case.pc_lhs.ppat_loc Rule.catch_all_handler.Rule.id
      "'with _ ->' swallows every exception (including Out_of_memory and \
       bugs); match the specific exception or let it propagate"

(* Is an operand of (=) / (<>) syntactically structural — a comparison the
   runtime performs by walking the representation?  Empty strings, [] and
   bare constructors are tolerated: they are cheap, total and idiomatic. *)
let rec structural_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_string (s, _, _)) -> String.length s > 0
  | Pexp_construct (_, Some _) -> true
  | Pexp_tuple _ | Pexp_record _ | Pexp_array _ -> true
  | Pexp_constraint (e, _) -> structural_operand e
  | _ -> false

(* The last component of a field label: [dc_meta] in both [dc_meta] and
   [Rpi_sim.Decision.dc_meta]. *)
let label_name : Longident.t -> string = function
  | Longident.Lident s | Ldot (_, s) -> s
  | Lapply _ -> ""

let check_expr ctx e =
  match e.pexp_desc with
  | Pexp_ident { txt; loc } -> check_ident ctx txt loc
  | Pexp_record (fields, _)
    when (not ctx.in_sim)
         && List.exists
              (fun ((lid : Longident.t Asttypes.loc), _) ->
                String.starts_with ~prefix:"dc_" (label_name lid.Asttypes.txt))
              fields ->
      diag ctx e.pexp_loc Rule.engine_internals.Rule.id
        "dc_* fields build the engine's decision arena by hand; implement \
         Decision.S against the ctx Engine.propagate supplies instead"
  | Pexp_try (_, cases) -> List.iter (check_handler_case ctx) cases
  | Pexp_match (_, cases) ->
      List.iter
        (fun case ->
          match case.pc_lhs.ppat_desc with
          | Ppat_exception p when catch_all_pattern p ->
              diag ctx p.ppat_loc Rule.catch_all_handler.Rule.id
                "'exception _' swallows every exception; match the specific \
                 exception or let it propagate"
          | _ -> ())
        cases
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident (("=" | "<>") as op); loc }; _ },
        [ (_, a); (_, b) ] )
    when structural_operand a || structural_operand b ->
      diag ctx loc Rule.poly_compare.Rule.id
        (Printf.sprintf
           "polymorphic (%s) on a structural value; use String.equal or the \
            type's dedicated equal"
           op)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ }
    when ctx.in_core ->
      diag ctx e.pexp_loc Rule.failwith_in_core.Rule.id
        "'assert false' in core inference; return a typed Error or raise a \
         dedicated exception"
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* list-length-in-compare                                              *)

let list_walk_op : Longident.t -> string option = function
  | Ldot (Lident "List", (("length" | "nth") as f))
  | Ldot (Ldot (Lident "Stdlib", "List"), (("length" | "nth") as f)) ->
      Some ("List." ^ f)
  | _ -> None

(* Sweep a comparator body for list walks.  [what] names the context for
   the message ("compare_foo" or "a function passed to List.sort"). *)
let flag_comparator_body ctx ~what body =
  let expr it e =
    (match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        match list_walk_op txt with
        | Some name ->
            diag ctx loc Rule.list_length_in_compare.Rule.id
              (Printf.sprintf
                 "%s inside %s runs a list walk on every comparison; \
                  precompute the length next to the list or use \
                  List.compare_lengths"
                 name what)
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body

let sort_application : Longident.t -> string option = function
  | Ldot
      ( (Lident (("List" | "Array" | "ListLabels" | "ArrayLabels") as m)),
        (("sort" | "stable_sort" | "sort_uniq" | "fast_sort") as f) )
  | Ldot
      ( Ldot (Lident "Stdlib", (("List" | "Array") as m)),
        (("sort" | "stable_sort" | "sort_uniq" | "fast_sort") as f) ) ->
      Some (m ^ "." ^ f)
  | _ -> None

let rec syntactic_function e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_constraint (e, _) -> syntactic_function e
  | _ -> false

let check_comparator_contexts ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
      match sort_application txt with
      | Some callee ->
          List.iter
            (fun (_, arg) ->
              if syntactic_function arg then
                flag_comparator_body ctx
                  ~what:(Printf.sprintf "a function passed to %s" callee)
                  arg)
            args
      | None -> ())
  | _ -> ()

let check_comparator_binding ctx vb =
  let name = binding_name vb in
  if String.starts_with ~prefix:"compare" name then
    flag_comparator_body ctx ~what:(Printf.sprintf "'%s'" name) vb.pvb_expr

let deep_iterator ctx =
  let expr it e =
    check_expr ctx e;
    check_comparator_contexts ctx e;
    Ast_iterator.default_iterator.expr it e
  in
  let value_binding it vb =
    check_comparator_binding ctx vb;
    Ast_iterator.default_iterator.value_binding it vb
  in
  { Ast_iterator.default_iterator with expr; value_binding }

let file_defines_compare structure =
  let found = ref false in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.structure it structure;
  !found

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

let allow_marker = "rpilint: allow"

(* [(* rpilint: allow rule-id ... *)] on line [l] suppresses matching
   findings on [l] (trailing comment) and [l + 1] (comment on its own
   line above the code). *)
let suppressions source =
  let lines = String.split_on_char '\n' source in
  List.concat
    (List.mapi
       (fun i line ->
         let rec find_from pos acc =
           if pos + String.length allow_marker > String.length line then acc
           else if
             String.equal
               (String.sub line pos (String.length allow_marker))
               allow_marker
           then
             let start = pos + String.length allow_marker in
             let rest = String.sub line start (String.length line - start) in
             (* ids never contain '*'; cut at the comment terminator *)
             let rest =
               match String.index_opt rest '*' with
               | Some j -> String.sub rest 0 j
               | None -> rest
             in
             let ids =
               String.split_on_char ' ' rest
               |> List.concat_map (String.split_on_char ',')
               |> List.map String.trim
               |> List.filter (fun id ->
                      String.length id > 0 && Option.is_some (Rule.find id))
             in
             find_from start (List.map (fun id -> (i + 1, id)) ids @ acc)
           else find_from (pos + 1) acc
         in
         find_from 0 [])
       lines)

let suppressed allows (d : Diagnostic.t) =
  List.exists
    (fun (line, id) ->
      String.equal id d.Diagnostic.rule
      && (d.Diagnostic.line = line || d.Diagnostic.line = line + 1))
    allows

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let in_dir prefix file = String.starts_with ~prefix:(prefix ^ "/") file

let suppressed_in ~source d = suppressed (suppressions source) d

let finish ~source found =
  let allows = suppressions source in
  List.filter (fun d -> not (suppressed allows d)) !found
  |> List.sort_uniq Diagnostic.compare

let make_ctx ~file ~defines_compare found =
  {
    file;
    in_lib = in_dir "lib" file;
    in_core = in_dir "lib/core" file;
    in_sim = in_dir "lib/sim" file;
    defines_compare;
    report = (fun d -> found := d :: !found);
  }

let lint_structure ~file ~source structure =
  let found = ref [] in
  let ctx =
    make_ctx ~file ~defines_compare:(file_defines_compare structure) found
  in
  scan_toplevel ctx (collect_mutable_fields structure) structure;
  let it = deep_iterator ctx in
  it.structure it structure;
  finish ~source found

let rec scan_signature ctx items =
  List.iter
    (fun item ->
      match item.psig_desc with
      | Psig_type (_, decls) -> List.iter (check_type_decl ctx) decls
      | Psig_module { pmd_type = { pmty_desc = Pmty_signature sg; _ }; _ } ->
          scan_signature ctx sg
      | _ -> ())
    items

let lint_signature ~file ~source signature =
  let found = ref [] in
  let ctx = make_ctx ~file ~defines_compare:true found in
  scan_signature ctx signature;
  finish ~source found

let parse_error_rule = "parse-error"

let parse_failure ~file (loc : Location.t) what =
  let p = loc.loc_start in
  {
    Diagnostic.file;
    line = (if p.pos_lnum > 0 then p.pos_lnum else 1);
    col = (if p.pos_cnum >= p.pos_bol then p.pos_cnum - p.pos_bol else 0);
    rule = parse_error_rule;
    message = what;
  }

let lint_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  if Filename.check_suffix file ".mli" then
    match Parse.interface lexbuf with
    | signature -> lint_signature ~file ~source signature
    | exception Syntaxerr.Error err ->
        [ parse_failure ~file (Syntaxerr.location_of_error err) "syntax error" ]
    | exception Lexer.Error (_, loc) ->
        [ parse_failure ~file loc "lexer error" ]
  else
    match Parse.implementation lexbuf with
    | structure -> lint_structure ~file ~source structure
    | exception Syntaxerr.Error err ->
        [ parse_failure ~file (Syntaxerr.location_of_error err) "syntax error" ]
    | exception Lexer.Error (_, loc) ->
        [ parse_failure ~file loc "lexer error" ]

let lint_path file =
  let source = In_channel.with_open_text file In_channel.input_all in
  if Filename.check_suffix file ".mli" then
    match Pparse.parse_interface ~tool_name:"rpilint" file with
    | signature -> lint_signature ~file ~source signature
    | exception Syntaxerr.Error err ->
        [ parse_failure ~file (Syntaxerr.location_of_error err) "syntax error" ]
    | exception Lexer.Error (_, loc) ->
        [ parse_failure ~file loc "lexer error" ]
  else
    match Pparse.parse_implementation ~tool_name:"rpilint" file with
    | structure -> lint_structure ~file ~source structure
    | exception Syntaxerr.Error err ->
        [ parse_failure ~file (Syntaxerr.location_of_error err) "syntax error" ]
    | exception Lexer.Error (_, loc) ->
        [ parse_failure ~file loc "lexer error" ]

let missing_mli files =
  let interfaces =
    List.filter (fun f -> Filename.check_suffix f ".mli") files
  in
  List.filter_map
    (fun f ->
      if
        Filename.check_suffix f ".ml"
        && in_dir "lib" f
        && not (List.exists (String.equal (f ^ "i")) interfaces)
      then
        Some
          {
            Diagnostic.file = f;
            line = 1;
            col = 0;
            rule = Rule.missing_mli.Rule.id;
            message =
              Printf.sprintf "library module has no interface; add %si" f;
          }
      else None)
    files
  |> List.sort Diagnostic.compare

let apply_baseline baseline diags =
  List.filter
    (fun (d : Diagnostic.t) ->
      not
        (Baseline.mem baseline ~rule:d.Diagnostic.rule ~file:d.Diagnostic.file))
    diags
