(** The rpilint rule engine.

    Purely syntactic: rules walk vanilla compiler-libs Parsetrees, so no
    typing environment is needed and inline snippets lint exactly like
    checked-out files.  Path-scoped rules (no-obj-magic, stdout-in-lib,
    missing-mli: [lib/]; failwith-in-core: [lib/core/]) key off the
    [~file] argument, which should be the repo-relative path
    (["lib/bgp/route.ml"], no leading ["./"]).

    Suppression: a source comment [(* rpilint: allow <rule-id> ... *)] on
    line [l] suppresses matching findings on [l] and [l + 1]. *)

val lint_structure :
  file:string -> source:string -> Parsetree.structure -> Diagnostic.t list
(** Run every structure rule.  [source] is the file's text, used only to
    honour suppression comments (the Parsetree has none). *)

val lint_signature :
  file:string -> source:string -> Parsetree.signature -> Diagnostic.t list
(** Interfaces get the mutable-record-type check only (no expressions). *)

val lint_source : file:string -> string -> Diagnostic.t list
(** Parse [source] (as an interface when [file] ends in [.mli], an
    implementation otherwise) and lint it.  A syntax error yields a
    single ["parse-error"] diagnostic instead of raising. *)

val lint_path : string -> Diagnostic.t list
(** Read and lint one checked-out file, parsing with [Pparse] (so AST
    files and preprocessor hooks behave exactly as the compiler's own
    driver).  Same error behaviour as {!lint_source}. *)

val parse_error_rule : string
(** The pseudo rule id carried by unparseable-input diagnostics. *)

val missing_mli : string list -> Diagnostic.t list
(** Given every walked file path, one finding per [lib/] implementation
    without a sibling interface. *)

val apply_baseline : Baseline.t -> Diagnostic.t list -> Diagnostic.t list
(** Drop findings covered by the checked-in baseline. *)

val suppressed_in : source:string -> Diagnostic.t -> bool
(** Whether a [(* rpilint: allow <rule-id> *)] comment in [source]
    covers this diagnostic — the same line-or-line-above matching the
    Parsetree engine applies, shared here so the typed engine honours
    identical suppression machinery. *)
