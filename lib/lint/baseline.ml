type entry = { rule : string; path : string }
type t = entry list

let empty = []

(* "lib/prng" covers every file under it; "lib/stats/table.ml" covers one
   file.  Paths are compared textually, so entries use the same relative
   spelling the driver reports ("lib/...", no leading "./"). *)
let covers entry ~file =
  String.equal entry.path file
  || String.starts_with ~prefix:(entry.path ^ "/") file

let mem t ~rule ~file =
  List.exists (fun e -> String.equal e.rule rule && covers e ~file) t

let parse_string contents =
  let lines = String.split_on_char '\n' contents in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if String.equal line "" || line.[0] = '#' then go (n + 1) acc rest
        else
          match String.index_opt line ' ' with
          | None ->
              Error
                (Printf.sprintf
                   "baseline line %d: expected \"<rule-id> <path>\", got %S" n
                   line)
          | Some i ->
              let rule = String.sub line 0 i in
              let path =
                String.trim (String.sub line (i + 1) (String.length line - i - 1))
              in
              if Option.is_none (Rule.find rule) then
                Error (Printf.sprintf "baseline line %d: unknown rule %S" n rule)
              else if String.equal path "" then
                Error (Printf.sprintf "baseline line %d: missing path" n)
              else go (n + 1) ({ rule; path } :: acc) rest)
  in
  go 1 [] lines

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | contents -> parse_string contents
  | exception Sys_error msg -> Error msg
