(** The checked-in allowlist ([lint.allow]): findings that were reviewed
    and deliberately kept.  One entry per line, ["<rule-id> <path>"],
    where [path] is either a file or a directory prefix; ['#'] starts a
    comment.  The baseline suppresses a (rule, file) pair wholesale — it
    records debt at file granularity so line churn never invalidates it. *)

type t

val empty : t

val parse_string : string -> (t, string) result
(** Parse baseline text.  Unknown rule ids are an error so the baseline
    cannot silently rot when rules are renamed. *)

val load : string -> (t, string) result
(** [parse_string] over a file; [Error] on IO failure. *)

val mem : t -> rule:string -> file:string -> bool
(** Is the finding covered by an entry (exact file or directory prefix)? *)
