type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
}

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_string d =
  Printf.sprintf "%s:%d:%d [%s] %s" d.file d.line d.col d.rule d.message

let to_json d =
  Rpi_json.Obj
    [
      ("file", Rpi_json.String d.file);
      ("line", Rpi_json.Int d.line);
      ("col", Rpi_json.Int d.col);
      ("rule", Rpi_json.String d.rule);
      ("message", Rpi_json.String d.message);
    ]
