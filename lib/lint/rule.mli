(** The catalogue of rpilint rules.  Each rule has a stable kebab-case
    [id] (used in diagnostics, suppression comments and the baseline
    file), a one-line [summary] and the [rationale] shown by
    [rpilint --rules]. *)

type t = { id : string; summary : string; rationale : string }

val mutable_toplevel : t
val poly_compare : t
val catch_all_handler : t
val no_obj_magic : t
val stdout_in_lib : t
val missing_mli : t
val failwith_in_core : t
val list_length_in_compare : t
val engine_internals : t

val all : t list
(** Every shipped rule, in documentation order. *)

val find : string -> t option
(** Look a rule up by [id]. *)
