(** The catalogue of rpilint rules.  Each rule has a stable kebab-case
    [id] (used in diagnostics, suppression comments and the baseline
    file), the [engine] that evaluates it — [Parsetree] rules are purely
    syntactic, [Typedtree] rules run over dune's [.cmt] artifacts with
    types and a whole-library call graph — a one-line [summary] and the
    [rationale] shown by [rpilint --list]. *)

type engine = Parsetree | Typedtree

type t = { id : string; engine : engine; summary : string; rationale : string }

val mutable_toplevel : t
val poly_compare : t
val catch_all_handler : t
val no_obj_magic : t
val stdout_in_lib : t
val missing_mli : t
val failwith_in_core : t
val list_length_in_compare : t
val engine_internals : t
val domain_race : t
val hot_path_alloc : t
val intern_id_escape : t
val blocking_in_eventloop : t

val all : t list
(** Every shipped rule, in documentation order. *)

val find : string -> t option
(** Look a rule up by [id]. *)

val typed : t list
(** The [Typedtree] subset of {!all}, in the same order. *)

val untyped : t list
(** The [Parsetree] subset of {!all}, in the same order. *)

val engine_name : engine -> string
(** ["parsetree"] / ["typedtree"] — the spelling used by [--list] and
    the [--rules] group selectors. *)
