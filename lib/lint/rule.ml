type t = { id : string; summary : string; rationale : string }

let mutable_toplevel =
  {
    id = "mutable-toplevel";
    summary =
      "module-level mutable value (ref/Hashtbl.create/array/...) or mutable \
       record type";
    rationale =
      "Shared module-level mutable state races under OCaml 5 domains; the \
       parallel runner executes experiments concurrently.  Per-call state or \
       state carried in Context.t behind a mutex is safe; Atomic/Mutex/\
       Condition values are exempt.";
  }

let poly_compare =
  {
    id = "poly-compare";
    summary =
      "polymorphic Stdlib.compare / (=) / (<>) on a structural value";
    rationale =
      "Polymorphic compare walks the runtime representation: it orders \
       variants by declaration accident, raises on functional values, and \
       is a measurable cost on hot decision/sort paths.  Use the module's \
       dedicated compare/equal or an explicit rank function.";
  }

let catch_all_handler =
  {
    id = "catch-all-handler";
    summary = "try ... with _ -> swallows every exception";
    rationale =
      "A wildcard handler silently eats Out_of_memory, Stack_overflow and \
       programming errors alongside the one failure it meant to absorb, \
       corrupting results instead of failing loudly.  Match the specific \
       exception or let it propagate.";
  }

let no_obj_magic =
  {
    id = "no-obj-magic";
    summary = "Obj.* / Marshal.* in library code";
    rationale =
      "Obj.magic defeats the type system and Marshal round-trips are \
       unchecked at read time; neither belongs in inference code whose \
       whole value is that its results can be trusted.";
  }

let stdout_in_lib =
  {
    id = "stdout-in-lib";
    summary = "printing to stdout from library code";
    rationale =
      "Library output belongs in returned values (Exp.outcome, rendered \
       tables) so the runner, the JSON emitters and the tests all see the \
       same bytes; stray prints interleave nondeterministically under the \
       parallel runner.";
  }

let missing_mli =
  {
    id = "missing-mli";
    summary = "library module without an .mli interface";
    rationale =
      "An explicit interface is what keeps module-level state private and \
       the API surface reviewable; every lib/ module ships one.";
  }

let failwith_in_core =
  {
    id = "failwith-in-core";
    summary = "failwith / assert false in lib/core inference code";
    rationale =
      "The paper pipelines run for minutes over many inputs; a stringly \
       failure in the middle loses which input broke.  Core inference \
       signals errors with a typed Error or a dedicated exception.";
  }

let list_length_in_compare =
  {
    id = "list-length-in-compare";
    summary = "List.length / List.nth inside a comparator";
    rationale =
      "A comparator runs O(n log n) times under sort and once per candidate \
       in a selection scan; walking a list inside it turns a cheap \
       comparison into a linear pass each time.  Precompute the length \
       (store it alongside the list, as Engine.route does with path_len) \
       or use List.compare_lengths.";
  }

let engine_internals =
  {
    id = "engine-internals";
    summary =
      "direct construction of the simulator's decision-arena view (dc_* \
       record) outside lib/sim";
    rationale =
      "Decision.ctx is a borrowed view of the engine's flat candidate arena; \
       only the propagation core knows the slot_base layout and when the \
       arrays are live.  Code elsewhere implements Decision.S and lets \
       Engine.propagate supply the ctx — a hand-rolled arena drifts from \
       the real slot layout silently.";
  }

let all =
  [
    mutable_toplevel;
    poly_compare;
    catch_all_handler;
    no_obj_magic;
    stdout_in_lib;
    missing_mli;
    failwith_in_core;
    list_length_in_compare;
    engine_internals;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all
