type engine = Parsetree | Typedtree

type t = { id : string; engine : engine; summary : string; rationale : string }

let mutable_toplevel =
  {
    id = "mutable-toplevel";
    engine = Parsetree;
    summary =
      "module-level mutable value (ref/Hashtbl.create/array/...) or mutable \
       record type";
    rationale =
      "Shared module-level mutable state races under OCaml 5 domains; the \
       parallel runner executes experiments concurrently.  Per-call state or \
       state carried in Context.t behind a mutex is safe; Atomic/Mutex/\
       Condition values are exempt.";
  }

let poly_compare =
  {
    id = "poly-compare";
    engine = Parsetree;
    summary =
      "polymorphic Stdlib.compare / (=) / (<>) on a structural value";
    rationale =
      "Polymorphic compare walks the runtime representation: it orders \
       variants by declaration accident, raises on functional values, and \
       is a measurable cost on hot decision/sort paths.  Use the module's \
       dedicated compare/equal or an explicit rank function.";
  }

let catch_all_handler =
  {
    id = "catch-all-handler";
    engine = Parsetree;
    summary = "try ... with _ -> swallows every exception";
    rationale =
      "A wildcard handler silently eats Out_of_memory, Stack_overflow and \
       programming errors alongside the one failure it meant to absorb, \
       corrupting results instead of failing loudly.  Match the specific \
       exception or let it propagate.";
  }

let no_obj_magic =
  {
    id = "no-obj-magic";
    engine = Parsetree;
    summary = "Obj.* / Marshal.* in library code";
    rationale =
      "Obj.magic defeats the type system and Marshal round-trips are \
       unchecked at read time; neither belongs in inference code whose \
       whole value is that its results can be trusted.";
  }

let stdout_in_lib =
  {
    id = "stdout-in-lib";
    engine = Parsetree;
    summary = "printing to stdout from library code";
    rationale =
      "Library output belongs in returned values (Exp.outcome, rendered \
       tables) so the runner, the JSON emitters and the tests all see the \
       same bytes; stray prints interleave nondeterministically under the \
       parallel runner.";
  }

let missing_mli =
  {
    id = "missing-mli";
    engine = Parsetree;
    summary = "library module without an .mli interface";
    rationale =
      "An explicit interface is what keeps module-level state private and \
       the API surface reviewable; every lib/ module ships one.";
  }

let failwith_in_core =
  {
    id = "failwith-in-core";
    engine = Parsetree;
    summary = "failwith / assert false in lib/core inference code";
    rationale =
      "The paper pipelines run for minutes over many inputs; a stringly \
       failure in the middle loses which input broke.  Core inference \
       signals errors with a typed Error or a dedicated exception.";
  }

let list_length_in_compare =
  {
    id = "list-length-in-compare";
    engine = Parsetree;
    summary = "List.length / List.nth inside a comparator";
    rationale =
      "A comparator runs O(n log n) times under sort and once per candidate \
       in a selection scan; walking a list inside it turns a cheap \
       comparison into a linear pass each time.  Precompute the length \
       (store it alongside the list, as Engine.route does with path_len) \
       or use List.compare_lengths.";
  }

let engine_internals =
  {
    id = "engine-internals";
    engine = Parsetree;
    summary =
      "direct construction of the simulator's decision-arena view (dc_* \
       record) outside lib/sim";
    rationale =
      "Decision.ctx is a borrowed view of the engine's flat candidate arena; \
       only the propagation core knows the slot_base layout and when the \
       arrays are live.  Code elsewhere implements Decision.S and lets \
       Engine.propagate supply the ctx — a hand-rolled arena drifts from \
       the real slot layout silently.";
  }

let domain_race =
  {
    id = "domain-race";
    engine = Typedtree;
    summary =
      "module-level mutable state reachable from a closure passed to \
       Pool.run / Domain.spawn";
    rationale =
      "A function that runs on the domain pool executes concurrently with \
       its siblings; any module-level ref/Hashtbl/array it reads or writes \
       (transitively, through the whole-library call graph) is a data race \
       unless the value is an Atomic or every access is mutex-guarded.  \
       This is the typed, interprocedural form of mutable-toplevel: it \
       follows calls across modules from the actual spawn sites.";
  }

let hot_path_alloc =
  {
    id = "hot-path-alloc";
    engine = Typedtree;
    summary =
      "allocation (closure, tuple/record/list, boxed float, Printf, \
       partial application) in a [@rpilint.hot] function";
    rationale =
      "Functions marked [@rpilint.hot] are the propagation inner loop and \
       the Decision comparators: they run per candidate visit and must \
       stay allocation-free so the solver never triggers the GC mid-run.  \
       Type information separates immediates (ints, constant constructors) \
       from boxed values, so the rule flags exactly the expressions that \
       cons on the OCaml heap.";
  }

let intern_id_escape =
  {
    id = "intern-id-escape";
    engine = Typedtree;
    summary =
      "interned Path_intern.id value flowing into a serializer \
       (Rpi_json / Render / Protocol / dump renderers)";
    rationale =
      "An interned path id is an index into the per-run table that \
       produced it — meaningless in any output, golden or wire format \
       (DESIGN.md §7 invariant 2).  The typed engine tracks the id type \
       through expressions and rejects any that reaches a JSON \
       constructor, the ingest Render module, the wire Protocol or a \
       dump renderer; convert with Path_intern.to_list first.";
  }

let blocking_in_eventloop =
  {
    id = "blocking-in-eventloop";
    engine = Typedtree;
    summary =
      "blocking Unix primitive (read/write/sleep/connect/accept/...) \
       reachable from Eventloop or Conn code";
    rationale =
      "The serving core is a readiness-driven multiplexer: every pool \
       domain runs one select loop over all of its live connections, so a \
       single blocking syscall parks the domain and stalls every \
       connection it owns.  All I/O inside Eventloop/Conn reachable code \
       must go through the non-blocking Conn wrappers (fds registered \
       with set_nonblock, EAGAIN handled); Unix.select is exempt — it is \
       the loop's one sanctioned parking point — and Mutex is covered by \
       the try_lock accept discipline, not this rule.";
  }

let all =
  [
    mutable_toplevel;
    poly_compare;
    catch_all_handler;
    no_obj_magic;
    stdout_in_lib;
    missing_mli;
    failwith_in_core;
    list_length_in_compare;
    engine_internals;
    domain_race;
    hot_path_alloc;
    intern_id_escape;
    blocking_in_eventloop;
  ]

let find id = List.find_opt (fun r -> String.equal r.id id) all

let typed = List.filter (fun r -> r.engine = Typedtree) all
let untyped = List.filter (fun r -> r.engine = Parsetree) all

let engine_name = function Parsetree -> "parsetree" | Typedtree -> "typedtree"
