(* The typed rule engine: interprocedural rules over dune's .cmt
   artifacts (compiler-libs [Cmt_format]/[Typedtree]).  Where the
   Parsetree engine sees one file's syntax, this one sees types,
   resolved [Path.t]s and a whole-library call-graph approximation, so
   it can answer questions the syntactic rules cannot: what runs inside
   a domain closure, whether an expression allocates, and where an
   interned id flows.

   Approximations (see DESIGN.md §7c for the full list):
   - The call graph is reference-based: any identifier a binding
     mentions counts as a callee.  Sound for reachability (over-),
     blind through values stored in data structures and through
     [include]-re-exported bindings (under-).
   - A scope that takes a [Mutex.lock]/[Mutex.protect] anywhere is
     treated as guarded for domain-race — lock discipline is not
     verified, only presence.
   - hot-path-alloc checks a function's own body; allocations inside
     its callees are not charged to it. *)

open Typedtree

module SSet = Set.Make (String)

type unit_info = {
  tu_file : string;  (* repo-relative source path, as the compiler saw it *)
  tu_source : string;  (* source text, for suppression comments *)
  tu_modname : string list;  (* normalized module path, e.g. ["Rpi_sim"; "Engine"] *)
  tu_structure : Typedtree.structure;
}

let cmt_error_rule = "cmt-error"

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)

(* "Rpi_sim__Engine" -> ["Rpi_sim"; "Engine"]; dune's generated alias
   modules ("Rpi_sim__") leave an empty component, dropped here. *)
let split_dunder s =
  let n = String.length s in
  let parts = ref [] in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      parts := String.sub s !start (!i - !start) :: !parts;
      i := !i + 2;
      start := !i
    end
    else incr i
  done;
  parts := String.sub s !start (n - !start) :: !parts;
  List.filter (fun c -> String.length c > 0) (List.rev !parts)

let path_components p =
  match Path.flatten p with
  | `Contains_apply -> []
  | `Ok (id, parts) -> List.concat_map split_dunder (Ident.name id :: parts)

let key_of components = String.concat "." components

let rec ends_with ~suffix l =
  let nl = List.length l and ns = List.length suffix in
  if nl < ns then false
  else if nl = ns then List.equal String.equal suffix l
  else match l with [] -> false | _ :: tl -> ends_with ~suffix tl

(* ------------------------------------------------------------------ *)
(* Type shape helpers                                                  *)

let rec head_constr ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> Some (p, args)
  | Types.Tpoly (t, _) -> head_constr t
  | _ -> None

let rec type_mentions ~depth pred ty =
  depth < 8
  &&
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) ->
      pred (path_components p)
      || List.exists (type_mentions ~depth:(depth + 1) pred) args
  | Types.Ttuple ts -> List.exists (type_mentions ~depth:(depth + 1) pred) ts
  | Types.Tpoly (t, _) -> type_mentions ~depth:(depth + 1) pred t
  | _ -> false

(* [let x = e] binds through [Tpat_var]; [let x : t = e] elaborates to
   an alias pattern — both are the same named top-level binding to us. *)
let binding_ident (vb : value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, name) -> Some (id, name.Asttypes.txt)
  | Tpat_alias (_, id, name) -> Some (id, name.Asttypes.txt)
  | _ -> None

let is_intern_id_type ty =
  type_mentions ~depth:0
    (fun comps -> ends_with ~suffix:[ "Path_intern"; "id" ] comps)
    ty

(* ------------------------------------------------------------------ *)
(* Diagnostics                                                         *)

let diag_at ~file (loc : Location.t) rule message =
  let p = loc.Location.loc_start in
  {
    Diagnostic.file;
    line = (if p.Lexing.pos_lnum > 0 then p.Lexing.pos_lnum else 1);
    col = (if p.Lexing.pos_cnum >= p.Lexing.pos_bol then p.Lexing.pos_cnum - p.Lexing.pos_bol else 0);
    rule;
    message;
  }

(* ------------------------------------------------------------------ *)
(* domain-race                                                         *)

(* A mutable module-level binding, by its normalized key. *)
type global = { g_file : string; g_what : string }

let compare_access ((la : Location.t), ka) ((lb : Location.t), kb) =
  let pa = la.Location.loc_start and pb = lb.Location.loc_start in
  let c = Int.compare pa.Lexing.pos_lnum pb.Lexing.pos_lnum in
  if c <> 0 then c
  else
    let c = Int.compare pa.Lexing.pos_cnum pb.Lexing.pos_cnum in
    if c <> 0 then c else String.compare ka kb

(* What one lexical region references: used for top-level bindings,
   local bindings (by Ident stamp) and spawn-site arguments.  The fields
   mutate during a single-domain traversal and every scope is private to
   one lint run, so the shared-state concern behind mutable-toplevel
   does not apply. *)
type scope = {
  (* rpilint: allow mutable-toplevel *)
  mutable sc_refs : SSet.t;  (* keys of referenced top-level bindings *)
  mutable sc_locals : (int * string) list;  (* keys of referenced local bindings *)
  mutable sc_accesses : (Location.t * string) list;  (* mutable-global hits *)
  mutable sc_guarded : bool;  (* takes a Mutex somewhere in the region *)
}

let fresh_scope () =
  { sc_refs = SSet.empty; sc_locals = []; sc_accesses = []; sc_guarded = false }

type def = { d_file : string; d_scope : scope }

type spawn = {
  sp_file : string;
  sp_loc : Location.t;
  sp_callee : string;  (* "Pool.run" / "Domain.spawn", for the message *)
  sp_scope : scope;  (* the argument expressions *)
  sp_locals : (int * string, scope) Hashtbl.t;  (* the enclosing unit's local scopes *)
}

let spawn_callee comps =
  if ends_with ~suffix:[ "Pool"; "run" ] comps then Some "Pool.run"
  else if ends_with ~suffix:[ "Domain"; "spawn" ] comps then Some "Domain.spawn"
  else None

let mutex_take comps =
  ends_with ~suffix:[ "Mutex"; "lock" ] comps
  || ends_with ~suffix:[ "Mutex"; "try_lock" ] comps
  || ends_with ~suffix:[ "Mutex"; "protect" ] comps

(* Is a module-level binding of this type shared mutable state?  Keyed on
   the head type constructor; [mutable_records] holds the keys (and
   same-unit stamps) of record types declared with a [mutable] field.
   Atomic/Mutex/Condition/Semaphore values never match. *)
let mutable_type ~record_keys ~record_stamps ty =
  match head_constr ty with
  | None -> None
  | Some (p, _) -> (
      let comps = path_components p in
      let tail2 m = ends_with ~suffix:[ m; "t" ] comps in
      if ends_with ~suffix:[ "ref" ] comps then Some "ref cell"
      else if ends_with ~suffix:[ "array" ] comps then Some "array"
      else if ends_with ~suffix:[ "bytes" ] comps then Some "bytes"
      else if tail2 "Hashtbl" then Some "Hashtbl.t"
      else if tail2 "Buffer" then Some "Buffer.t"
      else if tail2 "Queue" then Some "Queue.t"
      else if tail2 "Stack" then Some "Stack.t"
      else if SSet.mem (key_of comps) record_keys then Some "mutable record"
      else
        match p with
        | Path.Pident id when Hashtbl.mem record_stamps (Ident.hash id, Ident.name id) ->
            Some "mutable record"
        | _ -> None)

(* First pass over a unit: top-level value bindings (with nesting through
   sub-structures), record types with mutable fields. *)
let rec structure_bindings prefix str k =
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match binding_ident vb with
              | Some (id, name) -> k (prefix, id, name, vb)
              | None -> ())
            vbs
      | Tstr_module mb -> module_bindings prefix mb k
      | Tstr_recmodule mbs -> List.iter (fun mb -> module_bindings prefix mb k) mbs
      | _ -> ())
    str.str_items

and module_bindings prefix mb k =
  let name =
    match mb.mb_name.Asttypes.txt with Some n -> n | None -> "_"
  in
  let rec expr me =
    match me.mod_desc with
    | Tmod_structure str -> structure_bindings (prefix @ [ name ]) str k
    | Tmod_constraint (me, _, _, _) -> expr me
    | _ -> ()
  in
  expr mb.mb_expr

let collect_mutable_record_types units =
  let keys = ref SSet.empty in
  let stamps = Hashtbl.create 64 in
  List.iter
    (fun u ->
      let rec items prefix str =
        List.iter
          (fun item ->
            match item.str_desc with
            | Tstr_type (_, decls) ->
                List.iter
                  (fun td ->
                    match td.typ_kind with
                    | Ttype_record labels
                      when List.exists
                             (fun l -> l.ld_mutable = Asttypes.Mutable)
                             labels ->
                        keys :=
                          SSet.add
                            (key_of (prefix @ [ td.typ_name.Asttypes.txt ]))
                            !keys;
                        Hashtbl.replace stamps
                          (Ident.hash td.typ_id, Ident.name td.typ_id)
                          ()
                    | _ -> ())
                  decls
            | Tstr_module mb ->
                let name =
                  match mb.mb_name.Asttypes.txt with Some n -> n | None -> "_"
                in
                let rec expr me =
                  match me.mod_desc with
                  | Tmod_structure str -> items (prefix @ [ name ]) str
                  | Tmod_constraint (me, _, _, _) -> expr me
                  | _ -> ()
                in
                expr mb.mb_expr
            | _ -> ())
          str.str_items
      in
      items u.tu_modname u.tu_structure)
    units;
  (!keys, stamps)

(* Second pass over one top-level binding: populate its scope, the local
   scopes of nested bindings, and any spawn sites it contains.  [active]
   is the stack of scopes the walker is currently inside — every
   reference event updates all of them. *)
let walk_binding ~unit_file ~globals ~top_stamps ~locals ~spawns scope0 expr0 =
  let active = ref [ scope0 ] in
  let on_ref path loc =
    let comps = path_components path in
    let record key =
      List.iter
        (fun sc ->
          sc.sc_refs <- SSet.add key sc.sc_refs;
          if Hashtbl.mem globals key then
            sc.sc_accesses <- (loc, key) :: sc.sc_accesses)
        !active
    in
    (match path with
    | Path.Pident id -> (
        let stamp_key = (Ident.hash id, Ident.name id) in
        match Hashtbl.find_opt top_stamps stamp_key with
        | Some key -> record key
        | None ->
            if Hashtbl.mem locals stamp_key then
              List.iter
                (fun sc -> sc.sc_locals <- stamp_key :: sc.sc_locals)
                !active
            else record (key_of comps))
    | _ -> record (key_of comps));
    if mutex_take comps then List.iter (fun sc -> sc.sc_guarded <- true) !active
  in
  let with_scope sc f =
    active := sc :: !active;
    f ();
    active := List.tl !active
  in
  let iter =
    let expr it e =
      (match e.exp_desc with
      | Texp_ident (p, _, _) -> on_ref p e.exp_loc
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          match spawn_callee (path_components p) with
          | Some callee ->
              let sp_scope = fresh_scope () in
              List.iter
                (fun (_, arg) ->
                  match arg with
                  | Some a ->
                      with_scope sp_scope (fun () ->
                          Tast_iterator.default_iterator.expr it a)
                  | None -> ())
                args;
              spawns :=
                {
                  sp_file = unit_file;
                  sp_loc = e.exp_loc;
                  sp_callee = callee;
                  sp_scope;
                  sp_locals = locals;
                }
                :: !spawns
          | None -> ())
      | _ -> ());
      match e.exp_desc with
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
        when Option.is_some (spawn_callee (path_components p)) ->
          (* arguments already walked above, inside the spawn scope *)
          ()
      | _ -> Tast_iterator.default_iterator.expr it e
    in
    let value_binding it vb =
      (match binding_ident vb with
      | Some (id, _) ->
          let sc = fresh_scope () in
          Hashtbl.replace locals (Ident.hash id, Ident.name id) sc;
          with_scope sc (fun () -> Tast_iterator.default_iterator.expr it vb.vb_expr)
      | None -> Tast_iterator.default_iterator.value_binding it vb);
      ()
    in
    { Tast_iterator.default_iterator with expr; value_binding }
  in
  iter.expr iter expr0

(* Expand a scope through the unit's local bindings (fixpoint over
   referenced stamps), accumulating the transitive refs and the accesses
   of every unguarded region. *)
let expand_scope ~locals scope =
  let refs = ref scope.sc_refs in
  let accesses = ref (if scope.sc_guarded then [] else scope.sc_accesses) in
  let seen = Hashtbl.create 16 in
  let rec visit_local key =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      match Hashtbl.find_opt locals key with
      | None -> ()
      | Some sc ->
          refs := SSet.union sc.sc_refs !refs;
          if not sc.sc_guarded then accesses := sc.sc_accesses @ !accesses;
          List.iter visit_local sc.sc_locals
    end
  in
  List.iter visit_local scope.sc_locals;
  (!refs, !accesses)

let run_domain_race units report =
  let record_keys, record_stamps = collect_mutable_record_types units in
  let globals : (string, global) Hashtbl.t = Hashtbl.create 64 in
  let defs : (string, def) Hashtbl.t = Hashtbl.create 512 in
  let pending = ref [] in
  (* Pass 1: register every top-level binding and mutable global. *)
  List.iter
    (fun u ->
      let top_stamps = Hashtbl.create 64 in
      structure_bindings u.tu_modname u.tu_structure (fun (prefix, id, name, vb) ->
          let key = key_of (prefix @ [ name ]) in
          Hashtbl.replace top_stamps (Ident.hash id, Ident.name id) key;
          (match
             mutable_type ~record_keys ~record_stamps vb.vb_expr.exp_type
           with
          | Some what ->
              Hashtbl.replace globals key { g_file = u.tu_file; g_what = what }
          | None -> ());
          pending := (u, top_stamps, key, vb) :: !pending))
    units;
  (* Pass 2: walk bodies now that the global table is complete. *)
  let spawns = ref [] in
  List.iter
    (fun (u, top_stamps, key, vb) ->
      let locals = Hashtbl.create 32 in
      let scope = fresh_scope () in
      walk_binding ~unit_file:u.tu_file ~globals ~top_stamps ~locals ~spawns
        scope vb.vb_expr;
      Hashtbl.replace defs key { d_file = u.tu_file; d_scope = scope })
    (List.rev !pending);
  (* Pass 3: from each spawn site, close over the call graph and report
     every unguarded access to a mutable global.  Spawn sites are
     processed in (file, line) order and the first reporter of an access
     wins, so the output is deterministic. *)
  let reported = Hashtbl.create 16 in
  let spawn_sorted =
    List.sort
      (fun a b ->
        let c = String.compare a.sp_file b.sp_file in
        if c <> 0 then c
        else
          Int.compare a.sp_loc.Location.loc_start.Lexing.pos_lnum
            b.sp_loc.Location.loc_start.Lexing.pos_lnum)
      !spawns
  in
  List.iter
    (fun sp ->
      let refs0, accesses0 = expand_scope ~locals:sp.sp_locals sp.sp_scope in
      let refs0 =
        if sp.sp_scope.sc_guarded then refs0
        else SSet.union sp.sp_scope.sc_refs refs0
      in
      let visited = ref SSet.empty in
      let acc = ref accesses0 in
      let rec bfs key =
        if not (SSet.mem key !visited) then begin
          visited := SSet.add key !visited;
          match Hashtbl.find_opt defs key with
          | None -> ()
          | Some d ->
              if not d.d_scope.sc_guarded then
                acc := d.d_scope.sc_accesses @ !acc;
              SSet.iter bfs d.d_scope.sc_refs
        end
      in
      SSet.iter bfs refs0;
      let line = sp.sp_loc.Location.loc_start.Lexing.pos_lnum in
      List.iter
        (fun ((loc : Location.t), gkey) ->
          let g = Hashtbl.find globals gkey in
          let dkey =
            ( g.g_file,
              loc.Location.loc_start.Lexing.pos_lnum,
              loc.Location.loc_start.Lexing.pos_cnum
              - loc.Location.loc_start.Lexing.pos_bol )
          in
          if not (Hashtbl.mem reported dkey) then begin
            Hashtbl.replace reported dkey ();
            report
              (diag_at ~file:g.g_file loc Rule.domain_race.Rule.id
                 (Printf.sprintf
                    "module-level mutable state '%s' (%s) is read or written \
                     on a path reachable from the closure passed to %s at \
                     %s:%d; make it Atomic, guard every access with a mutex, \
                     or give each domain its own copy"
                    gkey g.g_what sp.sp_callee sp.sp_file line))
          end)
        (List.sort_uniq compare_access !acc))
    spawn_sorted

(* ------------------------------------------------------------------ *)
(* hot-path-alloc                                                      *)

let hot_attr = "rpilint.hot"

let has_hot_attr attrs =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.Parsetree.attr_name.Asttypes.txt hot_attr)
    attrs

let printf_module comps =
  match comps with
  | ("Printf" | "Format" | "Scanf") :: _ :: _ -> true
  | "Stdlib" :: ("Printf" | "Format" | "Scanf") :: _ :: _ -> true
  | _ -> false

(* Known allocating stdlib entry points, matched on the path tail.  Not
   exhaustive — the structural checks below catch the common literals —
   but these are the calls whose allocation hides behind a name. *)
let known_allocator comps =
  let tail2 =
    match List.rev comps with
    | f :: m :: _ -> Some (m, f)
    | _ -> None
  in
  match List.rev comps with
  | [ "ref" ] | [ "ref"; "Stdlib" ] -> Some "ref"
  | _ -> (
      match tail2 with
      | Some
          ( "Array",
            (( "make" | "create" | "init" | "make_matrix" | "copy" | "append"
             | "sub" | "concat" | "of_list" | "to_list" | "of_seq" | "to_seq"
             | "map" | "mapi" | "split" | "combine" ) as f) ) ->
          Some ("Array." ^ f)
      | Some
          ( "List",
            (( "map" | "mapi" | "rev_map" | "init" | "append" | "rev"
             | "rev_append" | "concat" | "concat_map" | "flatten" | "filter"
             | "filter_map" | "partition" | "split" | "combine" | "merge"
             | "sort" | "stable_sort" | "sort_uniq" | "fast_sort" | "of_seq"
             | "to_seq" | "cons" ) as f) ) ->
          Some ("List." ^ f)
      | Some
          ( "String",
            (( "make" | "init" | "sub" | "concat" | "cat" | "map" | "mapi"
             | "split_on_char" | "of_seq" | "to_seq" | "to_bytes" | "of_bytes"
             | "uppercase_ascii" | "lowercase_ascii" ) as f) ) ->
          Some ("String." ^ f)
      | Some
          ( "Bytes",
            (( "create" | "make" | "init" | "copy" | "of_string" | "to_string"
             | "sub" | "extend" | "cat" | "concat" ) as f) ) ->
          Some ("Bytes." ^ f)
      | Some ("Buffer", (("create" | "contents" | "to_bytes" | "sub") as f)) ->
          Some ("Buffer." ^ f)
      | Some ("Hashtbl", (("create" | "copy" | "fold" | "to_seq" | "of_seq") as f))
        ->
          Some ("Hashtbl." ^ f)
      | Some (("Queue" | "Stack"), ("create" | "copy" | "to_seq")) ->
          Some "Queue/Stack"
      | Some ("Option", (("map" | "bind" | "some" | "join") as f)) ->
          Some ("Option." ^ f)
      | Some ("Result", (("map" | "bind" | "map_error") as f)) ->
          Some ("Result." ^ f)
      | Some ("Seq", f) -> Some ("Seq." ^ f)
      | Some (_, ("^" | "@" | "^^")) -> Some "string/list append"
      | _ -> (
          match comps with
          | [ ("^" | "@" | "^^") ] -> Some "string/list append"
          | _ -> None))

let result_type_alloc ty =
  match Types.get_desc ty with
  | Types.Tarrow _ -> Some "partial application (allocates a closure)"
  | Types.Tconstr (p, _, _)
    when ends_with ~suffix:[ "float" ] (path_components p) ->
      Some "boxed float result"
  | _ -> None

let check_hot_body ~file ~name body report =
  let flag loc what =
    report
      (diag_at ~file loc Rule.hot_path_alloc.Rule.id
         (Printf.sprintf
            "[@rpilint.hot] function '%s' allocates: %s — hot-path code must \
             not allocate; hoist it out of the loop or justify with \
             (* rpilint: allow hot-path-alloc *)"
            name what))
  in
  let expr it e =
    (match e.exp_desc with
    | Texp_function _ -> flag e.exp_loc "a closure"
    | Texp_tuple _ -> flag e.exp_loc "a tuple"
    | Texp_record _ -> flag e.exp_loc "a record"
    | Texp_array _ -> flag e.exp_loc "an array literal"
    | Texp_construct (_, cd, args) when args <> [] ->
        flag e.exp_loc
          (Printf.sprintf "constructor '%s' (boxed)" cd.Types.cstr_name)
    | Texp_variant (_, Some _) -> flag e.exp_loc "a polymorphic variant"
    | Texp_lazy _ -> flag e.exp_loc "a lazy thunk"
    | Texp_pack _ -> flag e.exp_loc "a first-class module"
    | Texp_object _ -> flag e.exp_loc "an object"
    | Texp_letop _ -> flag e.exp_loc "a binding operator"
    | Texp_apply (f, _) -> (
        (match f.exp_desc with
        | Texp_ident (p, _, _) ->
            let comps = path_components p in
            if printf_module comps then
              flag e.exp_loc
                "a Printf/Format call (the format interpreter allocates)"
            else (
              match known_allocator comps with
              | Some what -> flag e.exp_loc (what ^ " (allocates its result)")
              | None -> ())
        | _ -> ());
        match result_type_alloc e.exp_type with
        | Some what -> flag e.exp_loc what
        | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  (* The outer fun-chain (and any `function` match spine) is the hot
     function itself, not an allocation at call time: descend into case
     bodies and guards, then check everything below. *)
  let rec spine e =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (fun g -> iter.expr iter g) c.c_guard;
            spine c.c_rhs)
          cases
    | _ -> iter.expr iter e
  in
  spine body

let run_hot_path_alloc units report =
  List.iter
    (fun u ->
      let vb_hook it vb =
        (if has_hot_attr vb.vb_attributes then
           let name =
             match binding_ident vb with Some (_, n) -> n | None -> "_"
           in
           check_hot_body ~file:u.tu_file ~name vb.vb_expr report);
        Tast_iterator.default_iterator.value_binding it vb
      in
      let iter = { Tast_iterator.default_iterator with value_binding = vb_hook } in
      iter.structure iter u.tu_structure)
    units

(* ------------------------------------------------------------------ *)
(* intern-id-escape                                                    *)

let serializer_modules = [ "Rpi_json"; "Render"; "Protocol"; "Feed"; "Table_dump"; "Show_ip_bgp"; "Rpsl" ]

let sink_components comps =
  (* Any *module* component (everything but the final value name) that
     names a serializer. *)
  let rec modules = function
    | [] | [ _ ] -> []
    | m :: rest -> m :: modules rest
  in
  List.find_opt (fun c -> List.mem c serializer_modules) (modules comps)

let type_sink ty =
  match head_constr ty with
  | Some (p, _) -> (
      let comps = path_components p in
      match sink_components (comps @ [ "" ]) with
      | Some m -> Some m
      | None -> None)
  | None -> None

let report_id_args ~file ~sink args report =
  let expr it e =
    (if is_intern_id_type e.exp_type then
       report
         (diag_at ~file e.exp_loc Rule.intern_id_escape.Rule.id
            (Printf.sprintf
               "interned Path_intern.id value escapes into serializer '%s'; \
                ids are indices into a per-run table and must never be \
                serialized — convert with Path_intern.to_list (or report a \
                derived value) first"
               sink)));
    Tast_iterator.default_iterator.expr it e
  in
  let iter = { Tast_iterator.default_iterator with expr } in
  List.iter
    (fun arg ->
      match arg with Some a -> iter.expr iter a | None -> ())
    args

let run_intern_id_escape units report =
  List.iter
    (fun u ->
      let in_sink_unit =
        List.exists (fun c -> List.mem c serializer_modules) u.tu_modname
      in
      let expr it e =
        (match e.exp_desc with
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
            match sink_components (path_components p) with
            | Some sink ->
                report_id_args ~file:u.tu_file ~sink
                  (List.map snd args)
                  report
            | None -> ())
        | Texp_construct (_, cd, args) -> (
            match type_sink cd.Types.cstr_res with
            | Some sink when args <> [] ->
                report_id_args ~file:u.tu_file ~sink
                  (List.map Option.some args)
                  report
            | _ -> ())
        | _ ->
            if in_sink_unit && is_intern_id_type e.exp_type then
              report
                (diag_at ~file:u.tu_file e.exp_loc Rule.intern_id_escape.Rule.id
                   (Printf.sprintf
                      "interned Path_intern.id value inside serializer module \
                       '%s'; ids must be converted before serialization code \
                       ever sees them"
                      (key_of u.tu_modname))));
        Tast_iterator.default_iterator.expr it e
      in
      let iter = { Tast_iterator.default_iterator with expr } in
      iter.structure iter u.tu_structure)
    units

(* ------------------------------------------------------------------ *)
(* blocking-in-eventloop                                                *)

(* Unix primitives that park the calling thread until the kernel is
   ready.  [Unix.select] is deliberately absent — it is the loop's one
   sanctioned parking point — as are [close]/[set_nonblock]/socket
   setup, which do not wait on a peer. *)
let blocking_callee comps =
  match List.rev comps with
  | f :: "Unix" :: _ -> begin
      match f with
      | "read" | "write" | "write_substring" | "single_write" | "connect"
      | "accept" | "sleep" | "sleepf" | "recv" | "recvfrom" | "send"
      | "send_substring" | "sendto" | "gethostbyname" | "gethostbyaddr"
      | "getaddrinfo" | "getnameinfo" | "system" | "wait" | "waitpid" ->
          Some ("Unix." ^ f)
      | _ -> None
    end
  | _ -> None

let eventloop_unit modname =
  List.exists
    (fun c -> String.equal c "Eventloop" || String.equal c "Conn")
    modname

(* Roots are every top-level binding in an Eventloop/Conn unit; the
   reference-based call graph (same approximation as domain-race)
   carries reachability across modules, so a helper elsewhere that
   sleeps or does blocking I/O is charged when loop code can reach it. *)
let run_blocking_in_eventloop units report =
  let defs : (string, SSet.t * (string * Location.t * string) list) Hashtbl.t =
    Hashtbl.create 512
  in
  let roots = ref [] in
  List.iter
    (fun u ->
      let top_stamps = Hashtbl.create 64 in
      structure_bindings u.tu_modname u.tu_structure (fun (prefix, id, name, _) ->
          Hashtbl.replace top_stamps
            (Ident.hash id, Ident.name id)
            (key_of (prefix @ [ name ])));
      let is_root = eventloop_unit u.tu_modname in
      structure_bindings u.tu_modname u.tu_structure (fun (prefix, _, name, vb) ->
          let key = key_of (prefix @ [ name ]) in
          let refs = ref SSet.empty in
          let hits = ref [] in
          let expr it e =
            (match e.exp_desc with
            | Texp_ident (p, _, _) ->
                let comps = path_components p in
                let ref_key =
                  match p with
                  | Path.Pident id -> (
                      match
                        Hashtbl.find_opt top_stamps (Ident.hash id, Ident.name id)
                      with
                      | Some k -> k
                      | None -> key_of comps)
                  | _ -> key_of comps
                in
                refs := SSet.add ref_key !refs;
                (match blocking_callee comps with
                | Some callee -> hits := (u.tu_file, e.exp_loc, callee) :: !hits
                | None -> ())
            | _ -> ());
            Tast_iterator.default_iterator.expr it e
          in
          let iter = { Tast_iterator.default_iterator with expr } in
          iter.expr iter vb.vb_expr;
          Hashtbl.replace defs key (!refs, List.rev !hits);
          if is_root then roots := key :: !roots))
    units;
  let reported = Hashtbl.create 16 in
  List.iter
    (fun root ->
      let visited = ref SSet.empty in
      let rec bfs key =
        if not (SSet.mem key !visited) then begin
          visited := SSet.add key !visited;
          match Hashtbl.find_opt defs key with
          | None -> ()
          | Some (refs, hits) ->
              List.iter
                (fun (file, (loc : Location.t), callee) ->
                  let p = loc.Location.loc_start in
                  let dkey = (file, p.Lexing.pos_lnum, p.Lexing.pos_cnum) in
                  if not (Hashtbl.mem reported dkey) then begin
                    Hashtbl.replace reported dkey ();
                    report
                      (diag_at ~file loc Rule.blocking_in_eventloop.Rule.id
                         (Printf.sprintf
                            "blocking primitive '%s' is reachable from \
                             event-loop code (via '%s'); a blocked syscall \
                             parks the whole domain and stalls every \
                             connection it owns — use the non-blocking Conn \
                             wrappers, or justify a non-blocking fd with \
                             (* rpilint: allow blocking-in-eventloop *)"
                            callee root))
                  end)
                hits;
              SSet.iter bfs refs
        end
      in
      bfs root)
    (List.sort String.compare !roots)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)

let dedup_diags diags =
  (* Nested sink applications can report one expression twice with
     different sink names; collapse to the first in sort order so the
     output is byte-stable. *)
  let seen = Hashtbl.create 64 in
  List.filter
    (fun (d : Diagnostic.t) ->
      let key = (d.Diagnostic.file, d.Diagnostic.line, d.Diagnostic.col, d.Diagnostic.rule) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    (List.sort Diagnostic.compare diags)

let lint_units ?rules units =
  let rules =
    match rules with
    | Some rs -> rs
    | None -> List.map (fun r -> r.Rule.id) Rule.typed
  in
  let want id = List.exists (String.equal id) rules in
  let found = ref [] in
  let report d = found := d :: !found in
  if want Rule.domain_race.Rule.id then run_domain_race units report;
  if want Rule.hot_path_alloc.Rule.id then run_hot_path_alloc units report;
  if want Rule.intern_id_escape.Rule.id then run_intern_id_escape units report;
  if want Rule.blocking_in_eventloop.Rule.id then
    run_blocking_in_eventloop units report;
  let sources =
    List.map (fun u -> (u.tu_file, u.tu_source)) units
  in
  dedup_diags !found
  |> List.filter (fun (d : Diagnostic.t) ->
         match List.assoc_opt d.Diagnostic.file sources with
         | Some source -> not (Engine.suppressed_in ~source d)
         | None -> true)

let read_source candidates =
  List.find_map
    (fun path ->
      if Sys.file_exists path && not (Sys.is_directory path) then
        match In_channel.with_open_text path In_channel.input_all with
        | source -> Some source
        | exception Sys_error _ -> None
      else None)
    candidates

let load_cmt ?source_root path =
  match Cmt_format.read_cmt path with
  | exception (Sys_error msg | Failure msg) -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated cmt file")
  | exception Cmi_format.Error _ -> Error (path ^ ": not a cmt file (cmi or version mismatch)")
  | cmt -> (
      match (cmt.Cmt_format.cmt_annots, cmt.Cmt_format.cmt_sourcefile) with
      | Cmt_format.Implementation str, Some src
        when Filename.check_suffix src ".ml" ->
          let candidates =
            src
            :: Filename.concat cmt.Cmt_format.cmt_builddir src
            ::
            (match source_root with
            | Some root -> [ Filename.concat root src ]
            | None -> [])
          in
          (match read_source candidates with
          | Some source ->
              Ok
                (Some
                   {
                     tu_file = src;
                     tu_source = source;
                     tu_modname = split_dunder cmt.Cmt_format.cmt_modname;
                     tu_structure = str;
                   })
          | None -> Ok None)
      | _ -> Ok None)
