module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Gen = Rpi_topo.Gen
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module Atom = Rpi_sim.Atom
module Policy = Rpi_sim.Policy
module Engine = Rpi_sim.Engine
module Decision = Rpi_sim.Decision
module Vantage = Rpi_sim.Vantage
module Prng = Rpi_prng.Prng
module Int_tbl = Hashtbl.Make (Int)

let log_src = Logs.Src.create "rpi.dataset" ~doc:"scenario builder"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  seed : int;
  topology : Gen.config;
  prefixes_per_tier : int * int * int * int;
  p_selective : float;
  p_no_export_up : float;
  p_split : float;
  p_aggregate : float;
  p_peer_withhold : float;
  p_prepend : float;
  p_transit_selective : float;
  p_atypical_neighbor : float;
  p_atypical_prefix : float;
  p_prefix_override : float;
  n_collector_peers : int;
  n_lg : int;
  atoms_per_as : int;
}

let default_config =
  {
    seed = 42;
    topology = Gen.default_config;
    prefixes_per_tier = (8, 6, 4, 3);
    p_selective = 0.85;
    p_no_export_up = 0.10;
    p_split = 0.02;
    p_aggregate = 0.03;
    p_peer_withhold = 0.05;
    p_prepend = 0.08;
    p_transit_selective = 0.30;
    p_atypical_neighbor = 0.05;
    p_atypical_prefix = 0.008;
    p_prefix_override = 0.02;
    n_collector_peers = 40;
    n_lg = 15;
    atoms_per_as = 3;
  }

let small_config =
  {
    default_config with
    topology =
      {
        Gen.default_config with
        Gen.n_tier1 = 6;
        n_tier2 = 24;
        n_tier3 = 80;
        n_stub = 200;
      };
    n_collector_peers = 16;
    n_lg = 8;
  }

type t = {
  config : config;
  topo : Gen.t;
  graph : As_graph.t;
  policies : Policy.t Asn.Map.t;
  atoms : Atom.t list;
  lp_overrides : (Asn.t * Asn.t * int) list Int_tbl.t;
  transit_scopes : Asn.Set.t Asn.Map.t;
  network : Engine.network;
  decision : Decision.t;
  retain : Asn.Set.t;
  results : Engine.result list;
  collector_peers : Asn.t list;
  collector : Rib.t;
  lg_ases : Asn.t list;
  lg_tables : (Asn.t * Rib.t) list;
}

(* --- prefix allocation ---
   AS number i (by position in the global AS list) owns the /20 block at
   offset i * 2^12.  Its own announcements use the first 8 /24 slots; slots
   8..15 are reserved for space the AS delegates to customers (the
   aggregation case). *)

let block_of_index i = Prefix.make (Ipv4.of_int32_exn (i * 4096)) 20

let slot_prefix ~block ~slot =
  let base = Ipv4.to_int (Prefix.network block) in
  Prefix.make (Ipv4.of_int32_exn (base + (slot * 256))) 24

(* --- policy assignment --- *)

let draw_import rng graph asn ~atypical =
  let lp_customer = Prng.choice rng [| 110; 120 |] in
  let lp_provider = Prng.choice rng [| 80; 90 |] in
  let base =
    {
      Policy.default_import with
      Policy.lp_customer;
      lp_sibling = lp_customer - 5;
      lp_peer = 100;
      lp_provider;
    }
  in
  if not atypical then base
  else begin
    (* One neighbour override that violates the typical order: a peer or
       provider granted more preference than customers. *)
    let candidates = As_graph.peers graph asn @ As_graph.providers graph asn in
    match candidates with
    | [] -> base
    | _ :: _ ->
        let nb = Prng.choice_list rng candidates in
        {
          base with
          Policy.lp_neighbor = Asn.Map.singleton nb (lp_customer + 10);
        }
  end

(* --- atom construction --- *)

let proper_subset rng members =
  match members with
  | [] | [ _ ] -> None
  | _ :: _ :: _ ->
      let n = List.length members in
      (* Bias towards announcing through a single upstream: the common
         traffic-engineering pattern ("force inbound through the cheap
         link"), and what makes SA prefixes visible at many providers. *)
      let size = if Prng.chance rng 0.6 then 1 else Prng.int_in rng 1 (n - 1) in
      Some (Asn.Set.of_list (Prng.sample rng size members))

let build ?(config = default_config) ?(decision = Decision.vanilla) () =
  let root = Prng.create ~seed:config.seed in
  let topo_rng = Prng.split root in
  let policy_rng = Prng.split root in
  let atom_rng = Prng.split root in
  let override_rng = Prng.split root in
  let topo = Gen.generate ~config:config.topology topo_rng in
  let graph = topo.Gen.graph in
  let ases = As_graph.ases graph in
  let index_of =
    let tbl = Asn.Table.create (List.length ases) in
    List.iteri (fun i a -> Asn.Table.add tbl a i) ases;
    fun a -> Asn.Table.find tbl a
  in
  let tiers = Gen.tiers_ground_truth topo in
  let max_prefixes a =
    let t1, t2, t3, ts = config.prefixes_per_tier in
    match Asn.Map.find_opt a tiers with
    | Some 1 -> t1
    | Some 2 -> t2
    | Some 3 -> t3
    | Some _ | None -> ts
  in
  (* Looking-Glass cast: the famous ASs present in the graph, Tier-1s
     first. *)
  let famous = Gen.famous_tier1 @ Gen.famous_tier2 in
  let lg_ases =
    List.filter (fun a -> As_graph.mem_as graph a) famous
    |> List.filteri (fun i _ -> i < config.n_lg)
  in
  (* Policies: everyone gets an import policy; LG ASs get community
     schemes.  Neighbour-wide atypical overrides only go to non-vantage
     ASs — at a vantage, one such override would colour a large share of
     the table, where the paper observes atypical preference on a tiny
     fraction of prefixes (handled below at prefix granularity). *)
  let policies =
    List.fold_left
      (fun acc asn ->
        let is_lg = List.exists (Asn.equal asn) lg_ases in
        let atypical = (not is_lg) && Prng.chance policy_rng config.p_atypical_neighbor in
        let import = draw_import policy_rng graph asn ~atypical in
        let scheme =
          if List.exists (Asn.equal asn) lg_ases then
            Some (if Prng.bool policy_rng then Policy.default_scheme else Policy.multi_scheme)
          else None
        in
        Asn.Map.add asn { Policy.asn; import; scheme } acc)
      Asn.Map.empty ases
  in
  (* Atoms. *)
  let next_atom = ref 0 in
  let fresh_atom_id () =
    let id = !next_atom in
    incr next_atom;
    id
  in
  let aggregator_blocks : Prefix.t list Asn.Table.t = Asn.Table.create 64 in
  let delegation_slots : int Asn.Table.t = Asn.Table.create 64 in
  let atoms =
    List.concat_map
      (fun origin ->
        let block = block_of_index (index_of origin) in
        let n_prefixes = Prng.int_in atom_rng 1 (max_prefixes origin) in
        let prefixes = List.init n_prefixes (fun slot -> slot_prefix ~block ~slot) in
        let providers = As_graph.providers graph origin in
        let peers = As_graph.peers graph origin in
        let multihomed = List.length providers > 1 in
        let selective = multihomed && Prng.chance atom_rng config.p_selective in
        (* Partition prefixes into up to [atoms_per_as] groups. *)
        let n_atoms = Prng.int_in atom_rng 1 (min config.atoms_per_as n_prefixes) in
        let groups = Array.make n_atoms [] in
        List.iteri (fun i p -> groups.(i mod n_atoms) <- p :: groups.(i mod n_atoms)) prefixes;
        (* Per-atom, per-peer independent withholding, so a peer may export
           "most but not all" of its prefixes over one session (the pattern
           behind Table 10's 86%..100%). *)
        let draw_withhold () =
          List.fold_left
            (fun acc peer ->
              if Prng.chance atom_rng config.p_peer_withhold then Asn.Set.add peer acc
              else acc)
            Asn.Set.empty peers
        in
        let base_atoms =
          Array.to_list groups
          |> List.filter (fun g -> g <> [])
          |> List.map (fun group ->
                 if selective && Prng.chance atom_rng 0.9 then begin
                   if Prng.chance atom_rng config.p_no_export_up then begin
                     (* Community mechanism: announce to every direct
                        provider but tag a subset "do not export up"; the
                        route escapes only through the untagged ones, so a
                        provider above a tagged hop sees an SA prefix even
                        though the hop itself was served. *)
                     let tagged =
                       match proper_subset atom_rng providers with
                       | Some s -> s
                       | None -> Asn.Set.empty
                     in
                     Atom.make ~id:(fresh_atom_id ()) ~origin ~no_export_up:tagged
                       ~withhold_peers:(draw_withhold ()) (List.rev group)
                   end
                   else begin
                     match proper_subset atom_rng providers with
                     | Some subset ->
                         Atom.make ~id:(fresh_atom_id ()) ~origin
                           ~provider_scope:(Atom.Only_providers subset) ~withhold_peers:(draw_withhold ())
                           (List.rev group)
                     | None ->
                         Atom.make ~id:(fresh_atom_id ()) ~origin ~withhold_peers:(draw_withhold ())
                           (List.rev group)
                   end
                 end
                 else if multihomed && Prng.chance atom_rng config.p_prepend then begin
                   (* The softer inbound-TE tool: pad the path towards the
                      de-preferred providers instead of hiding the prefix
                      from them. *)
                   let padded =
                     match proper_subset atom_rng providers with
                     | Some subset ->
                         List.map
                           (fun nb -> (nb, Prng.int_in atom_rng 1 3))
                           (Asn.Set.elements subset)
                     | None -> []
                   in
                   Atom.make ~id:(fresh_atom_id ()) ~origin ~prepend_to:padded
                     ~withhold_peers:(draw_withhold ()) (List.rev group)
                 end
                 else Atom.make ~id:(fresh_atom_id ()) ~origin ~withhold_peers:(draw_withhold ()) (List.rev group))
        in
        (* Case 1: prefix splitting — a /25 inside the first prefix,
           exported to a complementary provider subset. *)
        let split_atoms =
          if multihomed && Prng.chance atom_rng config.p_split then begin
            match (prefixes, proper_subset atom_rng providers) with
            | covering :: _, Some subset -> begin
                match Prefix.split covering with
                | Some (specific, _) ->
                    [
                      Atom.make ~id:(fresh_atom_id ()) ~origin
                        ~provider_scope:(Atom.Only_providers subset) ~withhold_peers:(draw_withhold ())
                        [ specific ];
                    ]
                | None -> []
              end
            | _, _ -> []
          end
          else []
        in
        (* Case 2: provider aggregation — an extra prefix carved from a
           provider's block; that provider accepts but never re-exports. *)
        let aggregate_atoms =
          if multihomed && Prng.chance atom_rng config.p_aggregate then begin
            let aggregator = Prng.choice_list atom_rng providers in
            let slot =
              let used = Option.value ~default:8 (Asn.Table.find_opt delegation_slots aggregator) in
              if used > 15 then None
              else begin
                Asn.Table.replace delegation_slots aggregator (used + 1);
                Some used
              end
            in
            match slot with
            | None -> []
            | Some slot ->
                let ablock = block_of_index (index_of aggregator) in
                let delegated = slot_prefix ~block:ablock ~slot in
                (* The aggregator must originate the covering block. *)
                let existing =
                  Option.value ~default:[] (Asn.Table.find_opt aggregator_blocks aggregator)
                in
                if not (List.exists (Prefix.equal ablock) existing) then
                  Asn.Table.replace aggregator_blocks aggregator (ablock :: existing);
                [
                  Atom.make ~id:(fresh_atom_id ()) ~origin
                    ~suppressed_at:(Asn.Set.singleton aggregator) ~withhold_peers:(draw_withhold ())
                    [ delegated ];
                ]
          end
          else []
        in
        base_atoms @ split_atoms @ aggregate_atoms)
      ases
  in
  (* Covering blocks for aggregators, announced unrestricted. *)
  let covering_atoms =
    Asn.Table.fold
      (fun aggregator blocks acc ->
        List.map
          (fun block -> Atom.make ~id:(fresh_atom_id ()) ~origin:aggregator [ block ])
          blocks
        @ acc)
      aggregator_blocks []
  in
  let atoms = atoms @ covering_atoms in
  (* Prefix-granular local-pref overrides at LG vantages: the Fig. 2
     non-next-hop minority, plus a smaller share that violates the typical
     order (Table 2's atypical prefixes). *)
  let lp_overrides : (Asn.t * Asn.t * int) list Int_tbl.t = Int_tbl.create 256 in
  let add_override atom_id triple =
    let existing = Option.value ~default:[] (Int_tbl.find_opt lp_overrides atom_id) in
    Int_tbl.replace lp_overrides atom_id (triple :: existing)
  in
  List.iter
    (fun (atom : Atom.t) ->
      List.iter
        (fun vantage ->
          if Prng.chance override_rng config.p_prefix_override then begin
            let neighbors = As_graph.neighbors graph vantage in
            match neighbors with
            | [] -> ()
            | _ :: _ ->
                let nb, _ = Prng.choice_list override_rng neighbors in
                let lp = Prng.choice override_rng [| 70; 95; 105; 130 |] in
                add_override atom.Atom.id (vantage, nb, lp)
          end;
          if Prng.chance override_rng config.p_atypical_prefix then begin
            (* Grant a peer or provider more preference than customers get
               — for this atom's prefixes only. *)
            let candidates =
              As_graph.peers graph vantage @ As_graph.providers graph vantage
            in
            match candidates with
            | [] -> ()
            | _ :: _ ->
                let nb = Prng.choice_list override_rng candidates in
                let lp_customer =
                  match Asn.Map.find_opt vantage policies with
                  | Some p -> p.Policy.import.Policy.lp_customer
                  | None -> 110
                in
                add_override atom.Atom.id (vantage, nb, lp_customer + 10)
          end)
        lg_ases)
    atoms;
  (* Collector peers: all Tier-1s plus the highest-degree Tier-2s. *)
  let tier2_sorted =
    List.sort
      (fun a b -> Int.compare (As_graph.degree graph b) (As_graph.degree graph a))
      topo.Gen.tier2
  in
  let collector_peers =
    let extra = max 0 (config.n_collector_peers - List.length topo.Gen.tier1) in
    topo.Gen.tier1 @ List.filteri (fun i _ -> i < extra) tier2_sorted
  in
  let retain =
    Asn.Set.union
      (Asn.Set.of_list collector_peers)
      (Asn.Set.union (Asn.Set.of_list lg_ases) (Asn.Set.of_list topo.Gen.tier1))
  in
  let policy_of_asn a =
    match Asn.Map.find_opt a policies with
    | Some p -> p
    | None -> Policy.default a
  in
  (* Intermediate selective announcement: multihomed transit ASs (not the
     collector-visible vantages, whose tables we want complete) restrict
     customer-route re-export to a provider subset. *)
  let transit_rng = Prng.split root in
  let transit_scopes =
    List.fold_left
      (fun acc asn ->
        let providers = As_graph.providers graph asn in
        let has_customers = As_graph.customers graph asn <> [] in
        (* Only small transit ASs do this: a large Tier-2 restricting its
           customer-route exports would black-hole a whole region of the
           hierarchy, which operators at that scale do not do. *)
        let small_transit =
          match Asn.Map.find_opt asn tiers with Some 3 -> true | _ -> false
        in
        if
          has_customers && small_transit
          && List.length providers > 1
          && Prng.chance transit_rng config.p_transit_selective
        then begin
          match proper_subset transit_rng providers with
          | Some subset -> Asn.Map.add asn subset acc
          | None -> acc
        end
        else acc)
      Asn.Map.empty ases
  in
  (* The per-atom override triples, flattened to the quadruples
     [Engine.prepare] compiles into each AS's resolved policy.  Per-atom
     list order is preserved: [Policy.compile]'s duplicate-key precedence
     (last external entry wins) must see the entries in the order they
     were recorded here. *)
  let lp_override_quads =
    Int_tbl.fold
      (fun atom_id triples acc ->
        List.map (fun (holder, nb, lp) -> (atom_id, holder, nb, lp)) triples @ acc)
      lp_overrides []
  in
  let network =
    Engine.prepare ~graph
      ~import:(fun a -> (policy_of_asn a).Policy.import)
      ~transit_scope:(fun a -> Asn.Map.find_opt a transit_scopes)
      ~lp_overrides:lp_override_quads ()
  in
  Log.info (fun m -> m "propagating %d atoms over %d ASs" (List.length atoms) (List.length ases));
  let results = Engine.propagate_all network ~retain ~decision atoms in
  let collector = Vantage.collector_rib ~peers:collector_peers results in
  let lg_tables =
    List.map (fun a -> (a, Vantage.rib_at ~policy:(policy_of_asn a) ~vantage:a results)) lg_ases
  in
  {
    config;
    topo;
    graph;
    policies;
    atoms;
    lp_overrides;
    transit_scopes;
    network;
    decision;
    retain;
    results;
    collector_peers;
    collector;
    lg_ases;
    lg_tables;
  }

let policy_of t a =
  match Asn.Map.find_opt a t.policies with
  | Some p -> p
  | None -> Policy.default a

let lg_table t a = List.assoc_opt a t.lg_tables

(* Accessors for rebuilding the scenario's network (or an incremental
   state over it) outside [build] — e.g. the repropagation differential
   oracles and the churn benchmarks, which must hand [Engine.prepare]
   exactly the inputs [build] used.  [lp_override_quads] re-folds the
   same table [build] folded, so the quadruple order (and with it
   [Policy.compile]'s duplicate-key precedence) is identical. *)
let lp_override_quads t =
  Int_tbl.fold
    (fun atom_id triples acc ->
      List.map (fun (holder, nb, lp) -> (atom_id, holder, nb, lp)) triples @ acc)
    t.lp_overrides []

let import_of t a = (policy_of t a).Policy.import
let transit_scope_of t a = Asn.Map.find_opt a t.transit_scopes

let origins_ground_truth t =
  let by_origin = Asn.Table.create 256 in
  List.iter
    (fun (atom : Atom.t) ->
      let existing = Option.value ~default:[] (Asn.Table.find_opt by_origin atom.Atom.origin) in
      Asn.Table.replace by_origin atom.Atom.origin (atom.Atom.prefixes @ existing))
    t.atoms;
  Asn.Table.fold (fun origin prefixes acc -> (origin, prefixes) :: acc) by_origin []
  |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)

let rerun_with_atoms t atoms =
  Engine.propagate_all t.network ~retain:t.retain ~decision:t.decision atoms

type result_cache = (Atom.t * Engine.result) Int_tbl.t

let create_result_cache () = Int_tbl.create 256

let rerun_with_atoms_cached t cache atoms =
  List.map
    (fun (atom : Atom.t) ->
      match Int_tbl.find_opt cache atom.Atom.id with
      | Some (cached_atom, result) when Atom.equal cached_atom atom -> result
      | Some _ | None ->
          let result =
            Engine.propagate t.network ~retain:t.retain ~decision:t.decision atom
          in
          Int_tbl.replace cache atom.Atom.id (atom, result);
          result)
    atoms

let observed_paths t =
  let collector_paths =
    Rib.fold
      (fun _ routes acc ->
        List.fold_left
          (fun acc (r : Rpi_bgp.Route.t) ->
            match Rpi_bgp.As_path.to_list r.Rpi_bgp.Route.as_path with
            | [] -> acc
            | hops -> hops :: acc)
          acc routes)
      t.collector []
  in
  let lg_paths =
    List.concat_map
      (fun (vantage, rib) -> Rpi_core.Sa_verify.observed_paths_of_rib ~vantage rib)
      t.lg_tables
  in
  collector_paths @ lg_paths
