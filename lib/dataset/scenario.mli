(** End-to-end synthetic dataset: the stand-in for "Oregon RouteView on
    Nov. 18, 2002, plus 15 Looking Glass servers".

    From one seed, builds: a synthetic Internet topology; per-AS import
    policies (typical preference with a configurable atypical minority and
    a prefix-granular override minority); per-AS prefix allocations grouped
    into announcement atoms with an export-policy mix (selective
    announcement, no-export-up communities, prefix splitting, provider
    aggregation, per-peer withholding); runs the propagation engine; and
    extracts a RouteViews-style collector table plus Looking-Glass tables
    for a set of vantage ASs. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module As_graph = Rpi_topo.As_graph
module Prefix = Rpi_net.Prefix
module Atom = Rpi_sim.Atom
module Policy = Rpi_sim.Policy
module Engine = Rpi_sim.Engine
module Decision = Rpi_sim.Decision

type config = {
  seed : int;
  topology : Rpi_topo.Gen.config;
  prefixes_per_tier : int * int * int * int;
      (** Max prefixes originated per AS for tiers 1/2/3/stub (each AS
          draws 1..max). *)
  p_selective : float;
      (** Multihomed AS originates its atoms to a proper provider subset. *)
  p_no_export_up : float;
      (** Given selective, use the community mechanism instead of simply
          not announcing (the paper's §5.1.5 ~21/79 split). *)
  p_split : float;  (** Multihomed AS performs prefix splitting (Case 1). *)
  p_aggregate : float;  (** Customer prefix aggregated by a provider (Case 2). *)
  p_peer_withhold : float;  (** An AS withholds its atoms from one peer. *)
  p_prepend : float;
      (** A multihomed, non-selective atom pads its AS path towards a
          provider subset instead (the milder inbound-TE tool). *)
  p_transit_selective : float;
      (** A multihomed transit AS re-exports customer routes to only a
          proper subset of its providers — the paper's intermediate-AS
          source of SA prefixes (it is what makes single-homed origins
          appear in Table 8). *)
  p_atypical_neighbor : float;
      (** Non-vantage AS carries one neighbour-wide preference override
          violating the typical order (kept rare; it perturbs routing the
          way the paper's unverifiable minority does). *)
  p_atypical_prefix : float;
      (** Per (vantage, atom): a prefix-granular override that violates the
          typical order — the source of Table 2's small atypical
          percentages. *)
  p_prefix_override : float;
      (** Per (vantage, atom): a prefix-granular local-pref override (not
          necessarily atypical) — the source of Fig. 2's ~2% non-next-hop
          assignments. *)
  n_collector_peers : int;  (** Feeds of the RouteViews-style collector. *)
  n_lg : int;  (** Looking-Glass vantage count. *)
  atoms_per_as : int;  (** Max atoms an AS splits its prefixes into. *)
}

val default_config : config
(** Seed 42, the default topology (~1540 ASs), and a policy mix tuned to
    land in the paper's reported ranges. *)

val small_config : config
(** A ~300-AS variant for tests and the persistence timeline. *)

type t = {
  config : config;
  topo : Rpi_topo.Gen.t;
  graph : As_graph.t;
  policies : Policy.t Asn.Map.t;
  atoms : Atom.t list;
  lp_overrides : (Asn.t * Asn.t * int) list Hashtbl.Make(Int).t;
      (** Atom id -> prefix-granular import overrides. *)
  transit_scopes : Asn.Set.t Asn.Map.t;
      (** Intermediate ASs restricting customer-route re-export, with the
          provider subset they announce to. *)
  network : Engine.network;
  decision : Decision.t;
      (** The decision process every propagation (including reruns) uses. *)
  retain : Asn.Set.t;
  results : Engine.result list;
  collector_peers : Asn.t list;
  collector : Rib.t;  (** The RouteViews-style table. *)
  lg_ases : Asn.t list;
  lg_tables : (Asn.t * Rib.t) list;
}

val build : ?config:config -> ?decision:Decision.t -> unit -> t
(** Deterministic in [config.seed].  [decision] (default
    {!Decision.vanilla}) selects the decision process the engine runs the
    scenario under — e.g. {!Decision.neighbor_specific} rebuilds the same
    topology, policies and export specs under NS-BGP. *)

val policy_of : t -> Asn.t -> Policy.t
val lg_table : t -> Asn.t -> Rib.t option

val lp_override_quads : t -> (int * Asn.t * Asn.t * int) list
(** The drawn prefix-granularity overrides as {!Engine.prepare}
    [lp_overrides] quadruples [(atom_id, holder, neighbor, lp)] — lets a
    caller rebuild a network equivalent to this scenario's (e.g. the
    batch side of an incremental-repropagation differential test). *)

val import_of : t -> Asn.t -> Policy.import_policy
(** The import policy [Engine.prepare] was fed for this AS. *)

val transit_scope_of : t -> Asn.t -> Asn.Set.t option
(** The selective-transit provider scope, if this AS drew one. *)

val origins_ground_truth : t -> (Asn.t * Prefix.t list) list
(** (origin, prefixes) per AS, from the atoms — the oracle counterpart of
    {!Rpi_core.Export_infer.origins_of_rib}. *)

val rerun_with_atoms : t -> Atom.t list -> Engine.result list
(** Re-propagate a modified atom list on the same network and retain set
    (used by the persistence timeline). *)

type result_cache
(** Per-atom propagation results keyed by atom id, reused across epochs
    while the atom is structurally unchanged ({!Atom.equal}).  Propagation
    is deterministic, so a cache hit returns the identical result. *)

val create_result_cache : unit -> result_cache

val rerun_with_atoms_cached : t -> result_cache -> Atom.t list -> Engine.result list
(** Like {!rerun_with_atoms}, but only atoms that changed since their
    cached propagation (or were never propagated) run the engine; results
    come back in atom-list order either way. *)

val observed_paths : t -> Asn.t list list
(** All AS paths visible across collector and Looking-Glass tables, for
    relationship inference and path-activity checks. *)
