module Asn = Rpi_bgp.Asn
module Path_intern = Rpi_bgp.Path_intern
module Relationship = Rpi_topo.Relationship

(* Export-class codes: the candidate arena stores the class as a small
   int so change detection and export filtering are scalar compares. *)
let class_none = 0
let class_customer = 1
let class_peer = 2
let class_provider = 3
let class_sibling = 4

let class_code = function
  | None -> class_none
  | Some Relationship.Customer -> class_customer
  | Some Relationship.Peer -> class_peer
  | Some Relationship.Provider -> class_provider
  | Some Relationship.Sibling -> class_sibling

(* Decoding returns constant blocks, so it never allocates an option. *)
let class_decode = function
  | 1 -> Some Relationship.Customer
  | 2 -> Some Relationship.Peer
  | 3 -> Some Relationship.Provider
  | 4 -> Some Relationship.Sibling
  | _ -> None

type ctx = {
  dc_intern : Path_intern.t;
  dc_meta : int array;
  dc_path : Path_intern.id array;
  dc_len : int array;
  dc_lp : int array;
  dc_sender_asn : int array;
}

type granularity = Per_as | Per_neighbor

module type S = sig
  val name : string
  val granularity : granularity
  val prefer : ctx -> int -> int -> int
  val export_ok : ctx -> rel:Relationship.t -> int -> bool
end

type t = (module S)

(* The Gao–Rexford rules shared by both shipped modules.  [prefer] is the
   arena form of [Engine.compare_candidates]: higher lp, then shorter
   path, then smaller sender ASN, then lexicographic path.  [export_ok]
   is the valley-free discipline: customer-class (and sibling-relayed)
   routes go everywhere, peer and provider routes only to customers and
   siblings, and the no-up tag pins a route below its receiver. *)
let[@rpilint.hot] gao_prefer ctx a b =
  match Int.compare ctx.dc_lp.(b) ctx.dc_lp.(a) with
  | 0 -> begin
      match Int.compare ctx.dc_len.(a) ctx.dc_len.(b) with
      | 0 -> begin
          match Int.compare ctx.dc_sender_asn.(a) ctx.dc_sender_asn.(b) with
          | 0 -> Path_intern.compare_lex ctx.dc_intern ctx.dc_path.(a) ctx.dc_path.(b)
          | c -> c
        end
      | c -> c
    end
  | c -> c

let[@rpilint.hot] gao_export_ok ctx ~rel slot =
  if slot < 0 then true (* the origin's own route exports everywhere *)
  else begin
    let meta = ctx.dc_meta.(slot) in
    let cls = meta land 7 in
    let to_down =
      match rel with
      | Relationship.Customer | Relationship.Sibling -> true
      | Relationship.Peer | Relationship.Provider -> false
    in
    (cls = class_none || cls = class_customer || cls = class_sibling || to_down)
    && (meta land 8 = 0 || to_down)
  end

module Vanilla = struct
  let name = "vanilla"
  let granularity = Per_as
  let prefer = gao_prefer
  let export_ok = gao_export_ok
end

module Neighbor_specific = struct
  let name = "neighbor-specific"
  let granularity = Per_neighbor
  let prefer = gao_prefer
  let export_ok = gao_export_ok
end

let vanilla : t = (module Vanilla)
let neighbor_specific : t = (module Neighbor_specific)

(* Dispatch by name, not module identity: a re-wrapped module keeping the
   name "vanilla" asserts byte-identity with the specialised fast path
   (the rpicheck property [decision_vanilla_matches_reference] exercises
   the generic path through exactly such a renamed copy). *)
let is_vanilla (module D : S) = String.equal D.name Vanilla.name
let name_of (module D : S) = D.name
