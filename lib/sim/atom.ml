module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix

type provider_scope = All_providers | Only_providers of Asn.Set.t

type t = {
  id : int;
  origin : Asn.t;
  prefixes : Prefix.t list;
  provider_scope : provider_scope;
  no_export_up : Asn.Set.t;
  withhold_peers : Asn.Set.t;
  suppressed_at : Asn.Set.t;
  prepend_to : (Asn.t * int) list;
}

let make ~id ~origin ?(provider_scope = All_providers) ?(no_export_up = Asn.Set.empty)
    ?(withhold_peers = Asn.Set.empty) ?(suppressed_at = Asn.Set.empty) ?(prepend_to = [])
    prefixes =
  {
    id;
    origin;
    prefixes;
    provider_scope;
    no_export_up;
    withhold_peers;
    suppressed_at;
    prepend_to;
  }

let prepend_count t ~neighbor =
  match
    List.find_opt (fun (nb, _) -> Asn.equal nb neighbor) t.prepend_to
  with
  | Some (_, n) -> max 0 n
  | None -> 0

let vanilla ~id ~origin prefixes = make ~id ~origin prefixes

let is_selective t =
  (match t.provider_scope with
  | All_providers -> false
  | Only_providers _ -> true)
  || not (Asn.Set.is_empty t.no_export_up)

let scope_equal a b =
  match (a, b) with
  | All_providers, All_providers -> true
  | Only_providers x, Only_providers y -> Asn.Set.equal x y
  | (All_providers | Only_providers _), _ -> false

let equal a b =
  a.id = b.id
  && Asn.equal a.origin b.origin
  && List.equal Prefix.equal a.prefixes b.prefixes
  && scope_equal a.provider_scope b.provider_scope
  && Asn.Set.equal a.no_export_up b.no_export_up
  && Asn.Set.equal a.withhold_peers b.withhold_peers
  && Asn.Set.equal a.suppressed_at b.suppressed_at
  && List.equal
       (fun (nb1, n1) (nb2, n2) -> Asn.equal nb1 nb2 && Int.equal n1 n2)
       a.prepend_to b.prepend_to

let prefix_count t = List.length t.prefixes

let pp fmt t =
  let scope =
    match t.provider_scope with
    | All_providers -> "all"
    | Only_providers s ->
        Printf.sprintf "{%s}"
          (Asn.Set.elements s |> List.map Asn.to_string |> String.concat ",")
  in
  Format.fprintf fmt "atom#%d origin=%a prefixes=%d providers=%s" t.id Asn.pp t.origin
    (List.length t.prefixes) scope
