(** Evolution of export policies over time, for the persistence study
    (Figs. 6 and 7): operators occasionally re-balance inbound traffic by
    re-announcing to different provider subsets, prefixes suffer brief
    outages, and some multihomed ASs run BGP {e conditional advertisement}
    (Section 5.1.5): a backup provider only sees the prefix while the
    primary link is down. *)

module Asn = Rpi_bgp.Asn

type churn = {
  p_policy_change : float;
      (** Per epoch, probability a selectively-announced atom re-samples
          its export policy (possibly becoming non-selective and back). *)
  p_outage : float;
      (** Per epoch, probability an atom is withdrawn for that epoch. *)
  p_late_start : float;
      (** Probability an atom only appears from a random epoch onward
          (prefixes newly announced during the window). *)
  p_early_stop : float;
      (** Probability an atom disappears from a random epoch onward
          (prefixes decommissioned during the window). *)
  p_conditional : float;
      (** Probability a multihomed atom runs conditional advertisement:
          announced to a primary provider normally, switched to a backup
          provider during primary-link failures. *)
  p_primary_down : float;
      (** Per epoch, probability a conditional atom's primary link is down
          (the backup announcement activates). *)
}

val monthly_churn : churn
(** Day-granularity churn: the visible policy changes the paper observes
    over a month (~1/6 of SA prefixes shift), plus prefix arrivals and
    departures that spread the uptime histogram of Fig. 7. *)

val hourly_churn : churn
(** Hour-granularity churn: almost perfectly stable within a day. *)

type epoch = {
  index : int;
  atoms : Atom.t list;  (** Atoms visible in this epoch (outages removed). *)
}

type delta = {
  added : Atom.t list;  (** In [b] but not [a] (by atom id). *)
  removed : Atom.t list;  (** In [a] but not [b] (by atom id). *)
  changed : (Atom.t * Atom.t) list;
      (** [(old, new)] pairs present in both but not [Atom.equal];
          listed in [b]'s order. *)
}

val delta_between : epoch -> epoch -> delta
(** Structural diff of two epochs' atom lists, keyed by atom id. *)

val updates_between : epoch -> epoch -> Rpi_bgp.Update.t list
(** The origin-level BGP update stream that turns epoch [a]'s announced
    state into epoch [b]'s: withdraws for prefixes that left the announced
    set (removed atoms, and prefixes dropped from a changed atom), then
    announces for every prefix of an added or changed atom (BGP replaces
    on re-announcement, so changed atoms need no withdraw first).  Each
    update is self-originated ([from_as] = [to_as] = origin, empty AS
    path, source [Local]).  Order is deterministic: withdraws before
    announces, each sorted by (atom id, prefix-list order). *)

val evolve :
  Rpi_prng.Prng.t ->
  graph:Rpi_topo.As_graph.t ->
  churn:churn ->
  epochs:int ->
  Atom.t list ->
  epoch list
(** Markov evolution: each epoch derives from the previous one.  Policy
    changes re-sample the provider scope of the atom's origin uniformly
    among non-empty subsets of its providers (or all providers); outages
    are memoryless; conditional atoms flip between their primary and
    backup scope with the primary link's state. *)
