module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

let wheel ?origin ?rim ?(pref_rim = 120) () =
  let origin =
    match origin with
    | Some a -> a
    | None -> Asn.of_int 64500
  in
  let rim =
    match rim with
    | Some r -> r
    | None -> List.map Asn.of_int [ 64501; 64502; 64503 ]
  in
  let n = List.length rim in
  if n < 3 then invalid_arg "Gadget.wheel: rim needs at least 3 ASs";
  let all = origin :: rim in
  if List.length (List.sort_uniq Asn.compare all) <> n + 1 then
    invalid_arg "Gadget.wheel: ASs must be distinct";
  let graph =
    List.fold_left
      (fun g rim_as -> As_graph.add_p2c g ~provider:rim_as ~customer:origin)
      As_graph.empty rim
  in
  let rim_arr = Array.of_list rim in
  let graph = ref graph in
  for k = 0 to n - 1 do
    graph := As_graph.add_p2p !graph rim_arr.(k) rim_arr.((k + 1) mod n)
  done;
  (* The wheel: rim AS k prefers routes via rim AS k+1 (mod n), each above
     its own customer route to the origin. *)
  let next = Array.to_list (Array.mapi (fun k a -> (a, rim_arr.((k + 1) mod n))) rim_arr) in
  let import asn =
    match List.find_opt (fun (holder, _) -> Asn.equal holder asn) next with
    | Some (_, preferred) ->
        {
          Policy.default_import with
          Policy.lp_neighbor = Asn.Map.singleton preferred pref_rim;
        }
    | None -> Policy.default_import
  in
  (!graph, import)

let bad_gadget ?origin ?rim ?pref_rim () =
  let rim =
    match rim with Some (a, b, c) -> Some [ a; b; c ] | None -> None
  in
  wheel ?origin ?rim ?pref_rim ()
