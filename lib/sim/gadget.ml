module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

let bad_gadget ?origin ?rim ?(pref_rim = 120) () =
  let origin =
    match origin with
    | Some a -> a
    | None -> Asn.of_int 64500
  in
  let a, b, c =
    match rim with
    | Some r -> r
    | None -> (Asn.of_int 64501, Asn.of_int 64502, Asn.of_int 64503)
  in
  let all = [ origin; a; b; c ] in
  if List.length (List.sort_uniq Asn.compare all) <> 4 then
    invalid_arg "Gadget.bad_gadget: ASs must be distinct";
  let graph =
    List.fold_left
      (fun g rim_as -> As_graph.add_p2c g ~provider:rim_as ~customer:origin)
      As_graph.empty [ a; b; c ]
  in
  let graph = As_graph.add_p2p graph a b in
  let graph = As_graph.add_p2p graph b c in
  let graph = As_graph.add_p2p graph c a in
  (* The wheel: a prefers routes via b, b via c, c via a — each above its
     own customer route to the origin. *)
  let next = [ (a, b); (b, c); (c, a) ] in
  let import asn =
    match List.find_opt (fun (holder, _) -> Asn.equal holder asn) next with
    | Some (_, preferred) ->
        {
          Policy.default_import with
          Policy.lp_neighbor = Asn.Map.singleton preferred pref_rim;
        }
    | None -> Policy.default_import
  in
  (graph, import)
