(** Policy-aware BGP route propagation.

    For one announcement atom, computes the stable routing state of the
    whole AS graph under the configured import and export policies, and
    returns the tables (candidate routes + best route) of a chosen set of
    vantage ASs.

    The solver is an asynchronous-fixpoint worklist: an AS whose best route
    changes re-exports to its neighbours according to the standard
    relationship rules (customer routes to everyone; peer and provider
    routes only to customers and siblings) refined by the atom's export
    spec (selective provider scope, "no-export-up" community, per-peer
    withholding, aggregation suppression).  With preference policies that
    respect the Gao–Rexford conditions — which the generated scenarios do,
    up to the paper's small "atypical" minority — a unique stable state
    exists and the worklist converges quickly; a step cap guards against
    pathological dispute wheels. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship

type route = {
  path : Asn.t list;
      (** AS path as it would appear in this AS's table: announcing
          neighbour first, origin last; empty for the origin itself. *)
  path_len : int;
      (** [List.length path], maintained at construction so the decision
          comparator never walks the list. *)
  learned_from : Asn.t option;  (** [None] for the origin's own route. *)
  rel : Relationship.t option;
      (** How this AS classifies [learned_from]. *)
  export_class : Relationship.t option;
      (** Effective class driving the export rules; preserved across
          sibling hops so that a peer route relayed by a sibling cannot
          climb the hierarchy again ([None] for the origin's own route). *)
  lp : int;  (** Local preference assigned on import (0 for the origin). *)
  no_up : bool;  (** Route carries the "do not announce further up" tag. *)
}

type table = {
  candidates : route list;  (** All routes received, best first. *)
  best : route option;
}

type result = {
  atom : Atom.t;
  tables : table Asn.Map.t;  (** Only the ASs requested in [retain]. *)
  converged : bool;
  steps : int;  (** Worklist pops consumed. *)
}

type network
(** The AS graph frozen into an int-indexed CSR ({!Rpi_topo.Csr}) with
    import policies resolved into index-based arrays — built once,
    shared read-only by every per-atom propagation (including parallel
    fan-out across domains). *)

val prepare :
  graph:As_graph.t ->
  import:(Asn.t -> Policy.import_policy) ->
  ?transit_scope:(Asn.t -> Asn.Set.t option) ->
  ?lp_overrides:(int * Asn.t * Asn.t * int) list ->
  unit ->
  network
(** [transit_scope a]: when [Some set], AS [a] re-exports customer-learned
    routes only to the providers in [set] — selective announcement by an
    intermediate AS (the paper's second source of SA prefixes).  [None]
    (the default) re-exports to all providers.

    [lp_overrides]: [(atom_id, holder, neighbor, lp)] quadruples refining
    the holder's import policy for one atom (prefix-granularity local
    preference).  They are compiled into each AS's {!Policy.resolved}
    lookup here, once, instead of being threaded through every propagate
    call; entries naming an unknown holder are ignored. *)

val graph_of : network -> As_graph.t

val propagate :
  network -> retain:Asn.Set.t -> ?decision:Decision.t -> Atom.t -> result
(** [decision] (default {!Decision.vanilla}) supplies the decision
    process; the name ["vanilla"] dispatches to a specialised fast path,
    any other module runs the generic pluggable solver over the same
    arena.

    The solver runs on interned paths and flat per-AS candidate arenas
    (integer AS indices, path ids with memoized length); the [result] is
    converted back to the list-of-routes representation only for the
    retained ASs.  The intern table is private to the call, so concurrent
    propagations share nothing.
    @raise Invalid_argument when the atom's origin is not in the graph. *)

val propagate_reference : network -> retain:Asn.Set.t -> Atom.t -> result
(** The direct list-of-routes solver {!propagate} is checked against: same
    worklist order, same decisions, byte-identical results (the rpicheck
    properties [interned_engine_matches_reference] and
    [decision_vanilla_matches_reference] pin this down).  Slower; exists
    for differential testing only. *)

val propagate_all :
  network ->
  retain:Asn.Set.t ->
  ?decision:Decision.t ->
  ?jobs:int ->
  Atom.t list ->
  result list
(** One propagation per atom, with solver scratch (arenas, intern
    table, worklist) allocated once and reused across the batch instead
    of once per atom.  [jobs > 1] fans the atoms out over that many
    domains (the calling domain included) on the shared pool discipline:
    atoms are claimed in ~[4*jobs] contiguous chunks so per-task
    dispatch amortizes, each worker reuses its own scratch, and results
    are merged in declaration order — the output is byte-identical for
    every job count and chunking.  Default 1 (no spawns). *)

val iter_propagated :
  network ->
  retain:Asn.Set.t ->
  ?decision:Decision.t ->
  Atom.t list ->
  f:(result -> unit) ->
  unit
(** Streaming variant of {!propagate_all} (sequential): calls [f] on
    each atom's result in declaration order, holding only one result
    live at a time.  At 15k+ ASes this is what keeps collector / Looking
    Glass table extraction from materializing every per-atom result
    list at once — fold the vantage tables inside [f] (see
    {!Vantage.extend_collector_rib}) and drop the rest. *)

(** {2 Incremental re-propagation}

    A prepared network fixes the link universe and the candidate-arena
    geometry; an incremental {!state} layers a mutable configuration
    overlay (per-slot activity, relationships, import preferences,
    state-owned compiled policies) plus one live candidate arena per
    announced atom on top of it.  {!repropagate} applies a batch of
    {!Delta.t}s, seeds each touched atom's worklist from the senders over
    touched adjacencies (the dirty-cone frontier) and re-solves only what
    the wavefront reaches — untouched atoms are skipped outright.

    Under the Gao–Rexford conditions the stable state is unique, so the
    re-solved state matches a fresh {!propagate} on the equivalently
    modified network byte-for-byte (candidate order included); the
    rpicheck properties [repropagate_matches_batch],
    [repropagate_idempotent_on_noop] and
    [repropagate_commutes_with_coalescing] pin this down for both shipped
    decision processes. *)

module Delta : sig
  type t =
    | Link_down of Asn.t * Asn.t
        (** Mask a prepared link (both directions).  Downing an
            already-down link is a no-op. *)
    | Link_up of Asn.t * Asn.t
        (** Revive a masked link with its current labels.  Only links
            present in the prepared graph can come up. *)
    | Rel_set of Asn.t * Asn.t * Relationship.t
        (** [(a, b, rel)]: [a] now classifies [b] as [rel] (inverse label
            implied on [b]'s side).  Applies whether the link is up or
            down. *)
    | Lp_set of { atom_id : int; holder : Asn.t; neighbor : Asn.t; lp : int }
        (** Set (or replace) the holder's per-(neighbour, atom) import
            preference — the incremental form of a prepare-time
            [lp_overrides] quadruple; an unknown holder is dropped the
            same way. *)
    | Announce of Atom.t
        (** Start (or restart) propagating the atom.  Re-announcing a
            structurally unchanged atom ({!Atom.equal}) is a no-op; a
            changed atom with the same id is re-solved from scratch. *)
    | Withdraw of int  (** Stop propagating the atom with this id. *)

  val coalesce : t list -> t list
  (** Collapse deltas writing the same configuration cell to the last
      write, keeping first-occurrence order: link up/down per link,
      relationship per link, lp override per (atom, holder, neighbour)
      triple, announce/withdraw per atom id.  Applying a list and
      applying its coalesced form yield identical states. *)

  val render : t -> string

  val of_event : atom_of:(int -> Atom.t) -> Rpi_topo.Churn.event -> t
  (** Lift a churn-stream event; [atom_of] supplies the atom record for
      [Announce] ids (the churn generator only deals in ids). *)
end

type state
(** Live incremental solver state over one prepared network. *)

val init_state : ?decision:Decision.t -> network -> state
(** Fresh state: every link up with its prepared labels, no atoms
    announced.  [decision] (default {!Decision.vanilla}) fixes the
    decision process for the state's lifetime. *)

val repropagate : network -> state -> Delta.t list -> state
(** Apply the deltas to the overlay and re-solve the affected cone of
    every touched atom in place; returns the same (mutated) state for
    chaining.  [network] must be the state's own prepared network.
    @raise Invalid_argument on a foreign network, on a link delta naming
    an AS or link outside the prepared graph, or on announcing an atom
    whose origin is not in the graph. *)

val state_results : state -> retain:Asn.Set.t -> result list
(** One result per announced atom, in atom-id order, against the current
    overlay.  [steps] accumulates worklist pops over the atom's lifetime;
    [converged] reports the atom's most recent solve. *)

val state_atoms : state -> Atom.t list
(** The announced atoms, in atom-id order. *)

val state_graph : state -> As_graph.t
(** The effective graph under the overlay: prepared links that are up,
    with their current relationship labels; ASs isolated by link masking
    are kept.  A fresh {!prepare} over this graph (plus the accumulated
    lp overrides) is the batch equivalent of the state. *)

val state_decision : state -> Decision.t

val best_at : result -> Asn.t -> route option
(** Best route of a retained AS ([None] when unreachable or not retained). *)

val reachable_count : result -> int
(** Retained ASs holding at least one route. *)

val compare_candidates : route -> route -> int
(** The preference order used to select the best candidate: higher local
    preference, then shorter path, then deterministic tie-breaks. *)
