(** Policy-aware BGP route propagation.

    For one announcement atom, computes the stable routing state of the
    whole AS graph under the configured import and export policies, and
    returns the tables (candidate routes + best route) of a chosen set of
    vantage ASs.

    The solver is an asynchronous-fixpoint worklist: an AS whose best route
    changes re-exports to its neighbours according to the standard
    relationship rules (customer routes to everyone; peer and provider
    routes only to customers and siblings) refined by the atom's export
    spec (selective provider scope, "no-export-up" community, per-peer
    withholding, aggregation suppression).  With preference policies that
    respect the Gao–Rexford conditions — which the generated scenarios do,
    up to the paper's small "atypical" minority — a unique stable state
    exists and the worklist converges quickly; a step cap guards against
    pathological dispute wheels. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship

type route = {
  path : Asn.t list;
      (** AS path as it would appear in this AS's table: announcing
          neighbour first, origin last; empty for the origin itself. *)
  path_len : int;
      (** [List.length path], maintained at construction so the decision
          comparator never walks the list. *)
  learned_from : Asn.t option;  (** [None] for the origin's own route. *)
  rel : Relationship.t option;
      (** How this AS classifies [learned_from]. *)
  export_class : Relationship.t option;
      (** Effective class driving the export rules; preserved across
          sibling hops so that a peer route relayed by a sibling cannot
          climb the hierarchy again ([None] for the origin's own route). *)
  lp : int;  (** Local preference assigned on import (0 for the origin). *)
  no_up : bool;  (** Route carries the "do not announce further up" tag. *)
}

type table = {
  candidates : route list;  (** All routes received, best first. *)
  best : route option;
}

type result = {
  atom : Atom.t;
  tables : table Asn.Map.t;  (** Only the ASs requested in [retain]. *)
  converged : bool;
  steps : int;  (** Worklist pops consumed. *)
}

type network
(** The AS graph with import policies resolved into index-based arrays —
    built once, shared by every per-atom propagation. *)

val prepare :
  graph:As_graph.t ->
  import:(Asn.t -> Policy.import_policy) ->
  ?transit_scope:(Asn.t -> Asn.Set.t option) ->
  ?lp_overrides:(int * Asn.t * Asn.t * int) list ->
  unit ->
  network
(** [transit_scope a]: when [Some set], AS [a] re-exports customer-learned
    routes only to the providers in [set] — selective announcement by an
    intermediate AS (the paper's second source of SA prefixes).  [None]
    (the default) re-exports to all providers.

    [lp_overrides]: [(atom_id, holder, neighbor, lp)] quadruples refining
    the holder's import policy for one atom (prefix-granularity local
    preference).  They are compiled into each AS's {!Policy.resolved}
    lookup here, once, instead of being threaded through every propagate
    call; entries naming an unknown holder are ignored. *)

val graph_of : network -> As_graph.t

val propagate :
  network -> retain:Asn.Set.t -> ?decision:Decision.t -> Atom.t -> result
(** [decision] (default {!Decision.vanilla}) supplies the decision
    process; the name ["vanilla"] dispatches to a specialised fast path,
    any other module runs the generic pluggable solver over the same
    arena.

    The solver runs on interned paths and flat per-AS candidate arenas
    (integer AS indices, path ids with memoized length); the [result] is
    converted back to the list-of-routes representation only for the
    retained ASs.  The intern table is private to the call, so concurrent
    propagations share nothing.
    @raise Invalid_argument when the atom's origin is not in the graph. *)

val propagate_reference : network -> retain:Asn.Set.t -> Atom.t -> result
(** The direct list-of-routes solver {!propagate} is checked against: same
    worklist order, same decisions, byte-identical results (the rpicheck
    properties [interned_engine_matches_reference] and
    [decision_vanilla_matches_reference] pin this down).  Slower; exists
    for differential testing only. *)

val propagate_all :
  network ->
  retain:Asn.Set.t ->
  ?decision:Decision.t ->
  ?jobs:int ->
  Atom.t list ->
  result list
(** One propagation per atom.  [jobs > 1] fans the atoms out over that
    many domains (the calling domain included) on the shared pool
    discipline; results are merged in declaration order, so the output is
    identical for every job count.  Default 1 (no spawns). *)

val best_at : result -> Asn.t -> route option
(** Best route of a retained AS ([None] when unreachable or not retained). *)

val reachable_count : result -> int
(** Retained ASs holding at least one route. *)

val compare_candidates : route -> route -> int
(** The preference order used to select the best candidate: higher local
    preference, then shorter path, then deterministic tie-breaks. *)
