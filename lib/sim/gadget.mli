(** Canonical dispute-wheel topologies for stability testing.

    BAD GADGET (Griffin–Shepherd–Wilfong) is the smallest configuration
    with no stable routing state: an origin multihomed to three mutually
    peering ASs, each preferring the route relayed by the next peer around
    the rim over its own direct customer route.  Vanilla BGP oscillates
    forever on it (the engine's step cap reports [converged = false]);
    NS-BGP's per-neighbour selection converges, because what each rim AS
    exports to its peers — its customer route, the only one the
    valley-free discipline allows out — no longer depends on which route
    it currently prefers for itself. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

val wheel :
  ?origin:Asn.t ->
  ?rim:Asn.t list ->
  ?pref_rim:int ->
  unit ->
  As_graph.t * (Asn.t -> Policy.import_policy)
(** The n-rim generalization: an origin multihomed to [n >= 3] mutually
    peering rim ASs arranged in a cycle, each holding an [lp_neighbor]
    override valuing routes from the next rim peer at [pref_rim]
    (default 120, above the typical customer preference 110 — the
    violation of the Gao–Rexford preference condition that makes the
    wheel turn).  Odd rim sizes have no stable state under per-AS
    selection (vanilla oscillates; NS-BGP converges to the
    preferred-peer wheel); even sizes admit stable 2-colourings.
    Defaults: origin AS 64500, rim 64501–64503.
    @raise Invalid_argument when the ASs are not distinct or the rim has
    fewer than 3 ASs. *)

val bad_gadget :
  ?origin:Asn.t ->
  ?rim:Asn.t * Asn.t * Asn.t ->
  ?pref_rim:int ->
  unit ->
  As_graph.t * (Asn.t -> Policy.import_policy)
(** [wheel] at the canonical size 3 (tuple-typed rim for the existing
    call sites).
    @raise Invalid_argument when the four ASs are not distinct. *)
