(** Canonical dispute-wheel topologies for stability testing.

    BAD GADGET (Griffin–Shepherd–Wilfong) is the smallest configuration
    with no stable routing state: an origin multihomed to three mutually
    peering ASs, each preferring the route relayed by the next peer around
    the rim over its own direct customer route.  Vanilla BGP oscillates
    forever on it (the engine's step cap reports [converged = false]);
    NS-BGP's per-neighbour selection converges, because what each rim AS
    exports to its peers — its customer route, the only one the
    valley-free discipline allows out — no longer depends on which route
    it currently prefers for itself. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

val bad_gadget :
  ?origin:Asn.t ->
  ?rim:Asn.t * Asn.t * Asn.t ->
  ?pref_rim:int ->
  unit ->
  As_graph.t * (Asn.t -> Policy.import_policy)
(** The graph plus the import-policy assignment encoding the dispute
    wheel: each rim AS holds an [lp_neighbor] override valuing routes
    from the next rim peer at [pref_rim] (default 120, above the typical
    customer preference 110 — the violation of the Gao–Rexford preference
    condition that makes the wheel turn).  Defaults: origin AS 64500, rim
    64501–64503.  [pref_rim] must exceed the customer class value for the
    gadget to oscillate.
    @raise Invalid_argument when the four ASs are not distinct. *)
