module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Ipv4 = Rpi_net.Ipv4
module Relationship = Rpi_topo.Relationship

let next_hop_of asn =
  let n = Asn.to_int asn land 0xFFFF in
  Ipv4.of_octets 10 (n lsr 8) (n land 0xFF) 1

let router_id_of asn ~router =
  let n = Asn.to_int asn land 0xFFFF in
  Ipv4.of_octets 172 (16 + (router land 0x0F)) (n lsr 8) (n land 0xFF)

let no_reexport_community ~origin = Community.make origin Policy.no_reexport_code

let communities_of policy ~origin (r : Engine.route) =
  let base =
    if r.Engine.no_up then Community.Set.singleton (no_reexport_community ~origin)
    else Community.Set.empty
  in
  match (policy.Policy.scheme, r.Engine.learned_from, r.Engine.rel) with
  | Some scheme, Some neighbor, Some rel -> begin
      match Policy.tag scheme ~self:policy.Policy.asn ~neighbor rel with
      | Some c -> Community.Set.add c base
      | None -> base
    end
  | (Some _ | None), _, _ -> base

let route_of_engine ~policy ~prefix ~origin ?(igp_metric = 0) (r : Engine.route) =
  match r.Engine.learned_from with
  | None ->
      Route.make ~prefix ~next_hop:(Ipv4.of_int32_exn 0) ~as_path:As_path.empty
        ~source:Route.Local ~origin:Route.Igp
        ~router_id:(router_id_of policy.Policy.asn ~router:0)
        ()
  | Some neighbor ->
      Route.make ~prefix ~next_hop:(next_hop_of neighbor)
        ~as_path:(As_path.of_list r.Engine.path) ~local_pref:r.Engine.lp
        ~communities:(communities_of policy ~origin r) ~source:Route.Ebgp
        ~igp_metric ~router_id:(next_hop_of neighbor) ~peer_as:neighbor ()

let extend_rib_at ~policy ~vantage rib results =
  List.fold_left
    (fun rib (result : Engine.result) ->
      match Asn.Map.find_opt vantage result.Engine.tables with
      | None -> rib
      | Some table ->
          let origin = result.Engine.atom.Atom.origin in
          List.fold_left
            (fun rib prefix ->
              List.fold_left
                (fun rib r -> Rib.add_route (route_of_engine ~policy ~prefix ~origin r) rib)
                rib table.Engine.candidates)
            rib result.Engine.atom.Atom.prefixes)
    rib results

let rib_at ~policy ~vantage results = extend_rib_at ~policy ~vantage Rib.empty results

let extend_collector_rib ~peers rib results =
  List.fold_left
    (fun rib (result : Engine.result) ->
      let origin = result.Engine.atom.Atom.origin in
      List.fold_left
        (fun rib peer ->
          match Engine.best_at result peer with
          | None -> rib
          | Some r ->
              let as_path = As_path.of_list (peer :: r.Engine.path) in
              let communities =
                if r.Engine.no_up then
                  Community.Set.singleton (no_reexport_community ~origin)
                else Community.Set.empty
              in
              List.fold_left
                (fun rib prefix ->
                  let route =
                    Route.make ~prefix ~next_hop:(next_hop_of peer) ~as_path ~communities
                      ~source:Route.Ebgp ~router_id:(next_hop_of peer) ~peer_as:peer ()
                  in
                  Rib.add_route route rib)
                rib result.Engine.atom.Atom.prefixes)
        rib peers)
    rib results

let collector_rib ~peers results = extend_collector_rib ~peers Rib.empty results

let router_views ~policy ~vantage ~routers results =
  if routers < 1 then invalid_arg "Vantage.router_views: need at least one router";
  (* A backbone router terminates the eBGP sessions of a subset of the
     AS's neighbours (deterministic by (neighbour, router)); routes from
     other sessions reach it over iBGP carrying the session router's
     assignment.  Per-router IGP metrics make routers pick different
     equally-preferred exits. *)
  let session_here ~router nb =
    let h = (Asn.to_int nb * 2654435761) lxor (router * 40503) in
    h land 0xFF < 160 (* ~62% of sessions visible per router *)
  in
  List.init routers (fun router ->
      List.fold_left
        (fun rib (result : Engine.result) ->
          match Asn.Map.find_opt vantage result.Engine.tables with
          | None -> rib
          | Some table ->
              let origin = result.Engine.atom.Atom.origin in
              let visible =
                List.filter
                  (fun (r : Engine.route) ->
                    match r.Engine.learned_from with
                    | None -> true
                    | Some nb -> session_here ~router nb)
                  table.Engine.candidates
              in
              (* Always keep the AS-level best (it reaches every router
                 over iBGP). *)
              let visible =
                match (table.Engine.best, visible) with
                | Some best, _ when not (List.memq best visible) -> best :: visible
                | _, _ -> visible
              in
              List.fold_left
                (fun rib prefix ->
                  List.fold_left
                    (fun rib (r : Engine.route) ->
                      let igp_metric =
                        match r.Engine.learned_from with
                        | None -> 0
                        | Some nb -> 1 + ((Asn.to_int nb * 31) + (router * 17)) mod 50
                      in
                      Rib.add_route
                        (route_of_engine ~policy ~prefix ~origin ~igp_metric r)
                        rib)
                    rib visible)
                rib result.Engine.atom.Atom.prefixes)
        Rib.empty results)
