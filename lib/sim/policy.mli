(** Per-AS routing-policy configuration consumed by the simulator.

    Import policy fixes the local preference an AS assigns to a route by
    the class of the announcing neighbour, with optional per-neighbour and
    per-(neighbour, atom) overrides — the three granularities the paper
    observes (class-wide, next-hop-AS-based, prefix-based).

    A community scheme describes how an AS tags routes with the
    relationship of the announcing neighbour (the convention the paper's
    Appendix exploits for verification, cf. Table 11). *)

module Asn = Rpi_bgp.Asn
module Relationship = Rpi_topo.Relationship
module Community = Rpi_bgp.Community

type import_policy = {
  lp_customer : int;
  lp_sibling : int;
  lp_peer : int;
  lp_provider : int;
  lp_neighbor : int Asn.Map.t;  (** Per-neighbour override of the class value. *)
  lp_atom : (Asn.t * int * int) list;
      (** Per-(neighbour, atom id) override — the "prefix-based" minority.
          Triples [(neighbor, atom_id, lp)]. *)
}

val default_import : import_policy
(** Typical preference: customer 110, sibling 105, peer 100, provider 90. *)

val class_pref : import_policy -> Relationship.t -> int

val static_pref : import_policy -> neighbor:Asn.t -> rel:Relationship.t -> int
(** The atom-independent preference: neighbour override, then class
    value. *)

val lp_for : import_policy -> neighbor:Asn.t -> rel:Relationship.t -> atom:int -> int
  [@@deprecated "use Policy.compile / Policy.resolve (or static_pref)"]
(** Resolution order: (neighbour, atom) override, then neighbour override,
    then class value.
    @deprecated Superseded by the compiled form: {!compile} once, then
    {!resolve} per import.  Per-call list scans of [lp_atom] do not
    belong on the propagation hot path. *)

type resolved
(** An {!import_policy} with every per-(neighbour, atom) override —
    [lp_atom] entries and externally supplied engine overrides — compiled
    into one hashed lookup.  Built once in [Engine.prepare], queried per
    import. *)

val compile : ?overrides:(Asn.t * int * int) list -> import_policy -> resolved
(** [overrides] are external [(neighbor, atom_id, lp)] entries (the
    engine's historical [?lp_overrides] channel); they take precedence
    over the policy's own [lp_atom] entries for the same (neighbour,
    atom) key.  Among duplicate external entries the last wins; among
    duplicate [lp_atom] entries the first wins — both matching the
    behaviour of the mechanisms they replace. *)

val resolve : resolved -> neighbor:Asn.t -> rel:Relationship.t -> atom:int -> int
(** Resolution order: compiled (neighbour, atom) override, then neighbour
    override, then class value. *)

val resolve_static : resolved -> neighbor:Asn.t -> rel:Relationship.t -> int
(** {!resolve} minus the per-atom layer — exact for policies where
    {!is_dynamic} is false. *)

val is_dynamic : resolved -> bool
(** Whether any (neighbour, atom) override exists, i.e. {!resolve} can
    disagree with {!resolve_static}. *)

val copy_resolved : resolved -> resolved
(** A deep copy whose override table is independent of the original —
    {!override_resolved} on the copy never disturbs the source.  Used by
    the incremental engine, whose state owns its policy layer. *)

val override_resolved : resolved -> neighbor:Asn.t -> atom:int -> lp:int -> unit
(** Set (or replace) the per-(neighbour, atom) override in place.
    Equivalent to re-running {!compile} with the entry appended to
    [overrides]: the new value wins over both earlier external entries and
    [lp_atom] entries for the same key. *)

val is_typical_classes : import_policy -> bool
(** Class values respect customer > peer > provider (the paper's "typical
    local preference"), ignoring overrides. *)

type community_scheme = {
  customer_codes : int list;  (** 16-bit code values tagging customer routes. *)
  peer_codes : int list;
  provider_codes : int list;
}

val default_scheme : community_scheme
(** Single-value scheme in the style of Table 11: customers 4000, peers
    1000, providers 2000. *)

val multi_scheme : community_scheme
(** Several values per class (like AS12859's 1000/1010/1020 for peers). *)

val tag : community_scheme -> self:Asn.t -> neighbor:Asn.t -> Relationship.t -> Community.t option
(** The community the AS attaches to routes from this neighbour; the code
    within a class is chosen deterministically by the neighbour's number.
    Sibling routes are not tagged. *)

val code_class : community_scheme -> int -> Relationship.t option
(** Reverse lookup: which relationship class does a code belong to?  Ranges
    are interpreted as half-open bands between the smallest codes of each
    class, mirroring how the paper groups "same" community values. *)

val no_reexport_code : int
(** The 16-bit code (65000) conventionally meaning "do not announce this
    route further up"; attached with the origin's AS number. *)

type t = {
  asn : Asn.t;
  import : import_policy;
  scheme : community_scheme option;
}

val default : Asn.t -> t
