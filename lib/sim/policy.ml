module Asn = Rpi_bgp.Asn
module Relationship = Rpi_topo.Relationship
module Community = Rpi_bgp.Community

type import_policy = {
  lp_customer : int;
  lp_sibling : int;
  lp_peer : int;
  lp_provider : int;
  lp_neighbor : int Asn.Map.t;
  lp_atom : (Asn.t * int * int) list;
}

let default_import =
  {
    lp_customer = 110;
    lp_sibling = 105;
    lp_peer = 100;
    lp_provider = 90;
    lp_neighbor = Asn.Map.empty;
    lp_atom = [];
  }

let class_pref p = function
  | Relationship.Customer -> p.lp_customer
  | Relationship.Sibling -> p.lp_sibling
  | Relationship.Peer -> p.lp_peer
  | Relationship.Provider -> p.lp_provider

let static_pref p ~neighbor ~rel =
  match Asn.Map.find_opt neighbor p.lp_neighbor with
  | Some lp -> lp
  | None -> class_pref p rel

let lp_for p ~neighbor ~rel ~atom =
  let atom_override =
    List.find_map
      (fun (n, a, lp) -> if Asn.equal n neighbor && a = atom then Some lp else None)
      p.lp_atom
  in
  match atom_override with
  | Some lp -> lp
  | None -> static_pref p ~neighbor ~rel

(* Compiled resolution: the three override granularities — external
   per-atom triples, [lp_atom], [lp_neighbor] — collapsed into one
   hashed (neighbour, atom) lookup plus the static fallback.  Precedence
   is baked in at compile time instead of being re-decided per import:
   externals are inserted replace-wise in list order (duplicates: the
   last entry wins, matching the historical [Hashtbl.replace] fold over
   engine [lp_overrides]), then [lp_atom] entries add-if-absent (its
   historical [List.find_map] made the first match win, and an external
   always shadowed it). *)

module Pair_tbl = Hashtbl.Make (struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = Int.equal a1 a2 && Int.equal b1 b2
  let hash (a, b) = (a * 1_000_003) lxor b
end)

type resolved = { r_policy : import_policy; r_pairs : int Pair_tbl.t }

let compile ?(overrides = []) p =
  let n_entries = List.length overrides + List.length p.lp_atom in
  let pairs = Pair_tbl.create (max 1 n_entries) in
  List.iter
    (fun (neighbor, atom, lp) -> Pair_tbl.replace pairs (Asn.to_int neighbor, atom) lp)
    overrides;
  List.iter
    (fun (neighbor, atom, lp) ->
      let key = (Asn.to_int neighbor, atom) in
      if not (Pair_tbl.mem pairs key) then Pair_tbl.add pairs key lp)
    p.lp_atom;
  { r_policy = p; r_pairs = pairs }

let resolve r ~neighbor ~rel ~atom =
  match Pair_tbl.find_opt r.r_pairs (Asn.to_int neighbor, atom) with
  | Some lp -> lp
  | None -> static_pref r.r_policy ~neighbor ~rel

let resolve_static r ~neighbor ~rel = static_pref r.r_policy ~neighbor ~rel
let is_dynamic r = Pair_tbl.length r.r_pairs > 0

(* The incremental engine owns a mutable copy of each compiled policy:
   [copy_resolved] severs the pair table from the prepared network's, and
   [override_resolved] performs the same replace-wise write a fresh
   [compile] with the entry appended to [overrides] would produce (the
   last external entry wins and shadows any [lp_atom] entry). *)
let copy_resolved r = { r with r_pairs = Pair_tbl.copy r.r_pairs }

let override_resolved r ~neighbor ~atom ~lp =
  Pair_tbl.replace r.r_pairs (Asn.to_int neighbor, atom) lp

let is_typical_classes p = p.lp_customer > p.lp_peer && p.lp_peer > p.lp_provider

type community_scheme = {
  customer_codes : int list;
  peer_codes : int list;
  provider_codes : int list;
}

let default_scheme =
  { customer_codes = [ 4000 ]; peer_codes = [ 1000 ]; provider_codes = [ 2000 ] }

let multi_scheme =
  {
    customer_codes = [ 4000; 4010 ];
    peer_codes = [ 1000; 1010; 1020 ];
    provider_codes = [ 2000; 2010; 2020 ];
  }

let pick codes neighbor =
  match codes with
  | [] -> None
  | _ :: _ -> Some (List.nth codes (Asn.to_int neighbor mod List.length codes))

let tag scheme ~self ~neighbor rel =
  let codes =
    match rel with
    | Relationship.Customer -> Some scheme.customer_codes
    | Relationship.Peer -> Some scheme.peer_codes
    | Relationship.Provider -> Some scheme.provider_codes
    | Relationship.Sibling -> None
  in
  match codes with
  | None -> None
  | Some codes -> begin
      match pick codes neighbor with
      | Some code -> Some (Community.make self code)
      | None -> None
    end

let code_class scheme code =
  (* Band interpretation: a code belongs to the class whose smallest code
     is the largest one not exceeding it — "12859:1010 and 12859:1020 are
     the same because they fall in the peer band". *)
  let base codes = List.fold_left min max_int codes in
  let bands =
    [
      (Relationship.Customer, base scheme.customer_codes);
      (Relationship.Peer, base scheme.peer_codes);
      (Relationship.Provider, base scheme.provider_codes);
    ]
    |> List.filter (fun (_, b) -> b <> max_int)
    |> List.sort (fun (_, a) (_, b) -> Int.compare a b)
  in
  let rec locate current = function
    | [] -> current
    | (rel, b) :: rest -> if code >= b then locate (Some rel) rest else current
  in
  locate None bands

let no_reexport_code = 65000

type t = { asn : Asn.t; import : import_policy; scheme : community_scheme option }

let default asn = { asn; import = default_import; scheme = None }
