(** Announcement atoms: a group of prefixes originated by one AS under one
    export behaviour.

    All prefixes of an atom follow identical AS-level paths (the "policy
    atoms" of Afek et al. that the paper relates its findings to), so route
    propagation runs once per atom rather than once per prefix. *)

module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix

type provider_scope =
  | All_providers  (** Announce to every direct provider. *)
  | Only_providers of Asn.Set.t
      (** Selective announcement: this subset of direct providers only. *)

type t = {
  id : int;  (** Unique within a scenario. *)
  origin : Asn.t;
  prefixes : Prefix.t list;
  provider_scope : provider_scope;
  no_export_up : Asn.Set.t;
      (** Direct providers that receive the atom tagged "do not announce
          further up" (community-driven selective announcement). *)
  withhold_peers : Asn.Set.t;  (** Direct peers that do not receive it. *)
  suppressed_at : Asn.Set.t;
      (** ASs that accept the atom but never re-export it (providers
          aggregating customer space — Case 2 of Section 5.1.5). *)
  prepend_to : (Asn.t * int) list;
      (** AS-path prepending for inbound traffic engineering: towards each
          listed direct neighbour the origin inserts that many extra
          copies of itself (the softer alternative to selective
          announcement that the paper's Section 2.2.2 lists). *)
}

val vanilla : id:int -> origin:Asn.t -> Prefix.t list -> t
(** Announce everywhere, no restrictions. *)

val make :
  id:int ->
  origin:Asn.t ->
  ?provider_scope:provider_scope ->
  ?no_export_up:Asn.Set.t ->
  ?withhold_peers:Asn.Set.t ->
  ?suppressed_at:Asn.Set.t ->
  ?prepend_to:(Asn.t * int) list ->
  Prefix.t list ->
  t

val prepend_count : t -> neighbor:Asn.t -> int
(** Extra copies of the origin inserted towards that neighbour (0 when
    none configured). *)

val equal : t -> t -> bool
(** Structural equality of the whole export spec (id, origin, prefixes in
    order, provider scope, community sets, prepending) — what the timeline
    differ uses to decide that an atom's announcement changed. *)

val is_selective : t -> bool
(** True when the export spec restricts propagation towards providers
    (subset scope or a community tag) — the ground-truth notion of
    "selective announcement". *)

val prefix_count : t -> int
val pp : Format.formatter -> t -> unit
