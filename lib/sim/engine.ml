module Asn = Rpi_bgp.Asn
module Path_intern = Rpi_bgp.Path_intern
module As_graph = Rpi_topo.As_graph
module Csr = Rpi_topo.Csr
module Relationship = Rpi_topo.Relationship

let log_src = Logs.Src.create "rpi.sim.engine" ~doc:"BGP propagation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type route = {
  path : Asn.t list;
  path_len : int;
  learned_from : Asn.t option;
  rel : Relationship.t option;
  export_class : Relationship.t option;
  lp : int;
  no_up : bool;
}

type table = { candidates : route list; best : route option }

type result = {
  atom : Atom.t;
  tables : table Asn.Map.t;
  converged : bool;
  steps : int;
}

(* Export-class codes live with the decision-process contract: the
   candidate arena stores the class as a small int so change detection
   and export filtering are scalar compares. *)
let class_none = Decision.class_none
let class_customer = Decision.class_customer
let class_sibling = Decision.class_sibling
let class_code = Decision.class_code
let class_decode = Decision.class_decode

(* The network's adjacency is a CSR (see [Rpi_topo.Csr]): node [i]'s
   out-edges are the contiguous index range [slot_base.(i),
   slot_base.(i+1)), each edge a row of flat parallel arrays.  Because
   the reverse edge of [t] — [edge_slot.(t)] — is also the receiver-side
   slot where [t]'s export lands, one index space serves two readings:

     read at an out-edge index [t]: [edge_to]/[edge_asn]/[edge_rel] are
     the receiver and the holder's classification of it;

     read at a slot index [s = edge_slot.(t)]: [edge_to.(s)] is the
     slot's *sender*, [edge_asn_int.(s)] its ASN (the decision modules'
     tie-break column), and [edge_rel.(s)] the receiver's classification
     of that sender.

   Everything the inner loops need is therefore one array load away —
   no per-visit functional-map lookups, no per-edge records. *)
type network = {
  graph : As_graph.t;
  ases : Asn.t array;
  index : int Asn.Table.t;
  neighbors : (int * Asn.t * Relationship.t) array array;
      (* per-AS adjacency triples, kept for the reference solver only *)
  resolved : Policy.resolved array;
      (* import preference compiled to one lookup per AS (lp_atom entries
         and prepare-time lp_overrides folded in) *)
  transit_scopes : Asn.Set.t option array;
  lp_dynamic : bool array;  (* receiver has per-(neighbour, atom) entries *)
  slot_base : int array;  (* CSR offsets, length n+1 *)
  edge_to : int array;
  edge_asn : Asn.t array;
  edge_asn_int : int array;
  edge_rel : Relationship.t array;
  edge_slot : int array;  (* reverse edge index = receiver-side slot *)
  (* Slot-indexed statics derived from the CSR at prepare time. *)
  slot_rel : Relationship.t option array;
      (* preallocated [Some edge_rel.(s)], for the table conversion *)
  slot_class : int array;  (* [class_code (Some edge_rel.(s))] *)
  slot_recv_lp : int array;
      (* receiver-side import preference for the slot's edge, exact
         unless the receiver has per-(neighbour, atom) entries
         (lp_dynamic) *)
}

let prepare ~graph ~import ?(transit_scope = fun _ -> None) ?(lp_overrides = []) () =
  let csr = Csr.of_graph graph in
  let { Csr.ases; index; off = slot_base; dst = edge_to; dst_asn = edge_asn;
        rel = edge_rel; back = edge_slot } =
    csr
  in
  let n = Array.length ases in
  let total_slots = slot_base.(n) in
  (* The reference solver walks per-AS triples; everything hot reads the
     CSR arrays directly. *)
  let neighbors =
    Array.init n (fun i ->
        Array.init
          (slot_base.(i + 1) - slot_base.(i))
          (fun k ->
            let t = slot_base.(i) + k in
            (edge_to.(t), edge_asn.(t), edge_rel.(t))))
  in
  let import_policies = Array.map import ases in
  (* External per-atom overrides, grouped by holder with their sequence
     order preserved (compile's duplicate-key precedence depends on it);
     entries naming an unknown holder are dropped, like the per-call
     triples they replace. *)
  let overrides_of = Array.make n [] in
  List.iter
    (fun (atom_id, holder, neighbor, lp) ->
      match Asn.Table.find_opt index holder with
      | Some h -> overrides_of.(h) <- (neighbor, atom_id, lp) :: overrides_of.(h)
      | None -> ())
    lp_overrides;
  let resolved =
    Array.mapi
      (fun i p -> Policy.compile ~overrides:(List.rev overrides_of.(i)) p)
      import_policies
  in
  let lp_dynamic = Array.map Policy.is_dynamic resolved in
  let edge_asn_int = Array.map Asn.to_int edge_asn in
  let slot_rel = Array.map (fun r -> Some r) edge_rel in
  let slot_class = Array.map (fun r -> class_code (Some r)) edge_rel in
  let slot_recv_lp = Array.make total_slots 0 in
  for j = 0 to n - 1 do
    for s = slot_base.(j) to slot_base.(j + 1) - 1 do
      (* Slot [s] of receiver [j]: [edge_asn.(s)]/[edge_rel.(s)] read at a
         slot index are the sender's ASN and [j]'s classification of it. *)
      slot_recv_lp.(s) <-
        Policy.resolve_static resolved.(j) ~neighbor:edge_asn.(s) ~rel:edge_rel.(s)
    done
  done;
  {
    graph;
    ases;
    index;
    neighbors;
    resolved;
    transit_scopes = Array.map transit_scope ases;
    lp_dynamic;
    slot_base;
    edge_to;
    edge_asn;
    edge_asn_int;
    edge_rel;
    edge_slot;
    slot_rel;
    slot_class;
    slot_recv_lp;
  }

let graph_of net = net.graph

(* Candidate preference: higher lp, then shorter path, then smaller
   announcing neighbour, then lexicographic path — a deterministic total
   order standing in for the tie-break tail of the decision process. *)
let compare_candidates a b =
  match Int.compare b.lp a.lp with
  | 0 -> begin
      match Int.compare a.path_len b.path_len with
      | 0 -> begin
          match Option.compare Asn.compare a.learned_from b.learned_from with
          | 0 -> List.compare Asn.compare a.path b.path
          | c -> c
        end
      | c -> c
    end
  | c -> c

let route_equal a b =
  a.lp = b.lp && a.no_up = b.no_up
  && Option.equal Asn.equal a.learned_from b.learned_from
  && Option.equal Relationship.equal a.export_class b.export_class
  && List.equal Asn.equal a.path b.path

(* Would AS [holder] (holding route [r] for [atom]) export it to neighbour
   [nb] classified as [nb_rel]?  [Some tag] = yes, carrying no_up = tag. *)
let export_decision atom ~holder ~(r : route) ~nb ~nb_rel =
  let is_origin =
    match r.learned_from with
    | None -> true
    | Some _ -> false
  in
  if (not is_origin) && Asn.Set.mem holder atom.Atom.suppressed_at then None
  else begin
    let class_ok =
      if is_origin then true
      else begin
        (* The export class survives sibling hops: a peer route relayed by
           a sibling is still a peer route and must not climb again
           (valley-free discipline over sibling-transparent paths). *)
        match r.export_class with
        | Some (Relationship.Customer | Relationship.Sibling) | None -> true
        | Some (Relationship.Peer | Relationship.Provider) -> begin
            (* Peer/provider routes go to customers and siblings only. *)
            match nb_rel with
            | Relationship.Customer | Relationship.Sibling -> true
            | Relationship.Peer | Relationship.Provider -> false
          end
      end
    in
    let no_up_ok =
      (not r.no_up)
      ||
      match nb_rel with
      | Relationship.Customer | Relationship.Sibling -> true
      | Relationship.Peer | Relationship.Provider -> false
    in
    let origin_scope_ok =
      if not is_origin then true
      else begin
        match nb_rel with
        | Relationship.Customer | Relationship.Sibling -> true
        | Relationship.Peer -> not (Asn.Set.mem nb atom.Atom.withhold_peers)
        | Relationship.Provider -> begin
            match atom.Atom.provider_scope with
            | Atom.All_providers -> true
            | Atom.Only_providers set -> Asn.Set.mem nb set
          end
      end
    in
    if class_ok && no_up_ok && origin_scope_ok then
      Some (r.no_up || (is_origin && Asn.Set.mem nb atom.Atom.no_export_up))
    else None
  end

(* ------------------------------------------------------------------ *)
(* Interned fast path.

   The solver below is the production propagation: candidates live in a
   struct-of-arrays arena over the network's flat slot space — interned
   path id, memoized length, local preference, export-class code and the
   no-up tag, each a scalar array indexed by global slot.  Sender identity
   and classification are static per slot (precomputed in [prepare]), so
   accepting an export is five scalar writes and the solver allocates
   nothing per visit.  It makes exactly the decisions of
   [propagate_reference] (same worklist order, same change detection,
   same preference order), which the rpicheck property
   [interned_engine_matches_reference] pins down byte-for-byte. *)

(* The origin's own (path-less) route, shared per process. *)
let origin_route =
  {
    path = [];
    path_len = 0;
    learned_from = None;
    rel = None;
    export_class = None;
    lp = 0;
    no_up = false;
  }

(* Thin conversion from the arena back to the public list-of-routes
   representation, shared by the vanilla, pluggable and incremental
   solvers; only the retained vantage ASs pay for it.  [slot_rel] is
   passed explicitly because the incremental state owns a mutable copy
   of the per-slot relationships (the prepared network's is stale after
   a [Delta.Rel_set]). *)
let arena_tables net ~tbl ~origin_i ~slot_rel ~s_meta ~s_path ~s_len ~s_lp
    ~b_slot ~b_path ~b_lp ~b_meta retain =
  let { ases; index; slot_base; edge_to; _ } = net in
  (* [edge_to] read at a slot index is the slot's sender. *)
  let to_route s =
    {
      path = Path_intern.to_list tbl s_path.(s);
      path_len = s_len.(s);
      learned_from = Some ases.(edge_to.(s));
      rel = slot_rel.(s);
      export_class = class_decode (s_meta.(s) land 7);
      lp = s_lp.(s);
      no_up = s_meta.(s) land 8 <> 0;
    }
  in
  Asn.Set.fold
    (fun a acc ->
      match Asn.Table.find_opt index a with
      | None -> acc
      | Some i ->
          let cands = ref [] in
          for s = slot_base.(i + 1) - 1 downto slot_base.(i) do
            if s_meta.(s) >= 0 then cands := to_route s :: !cands
          done;
          let cands = if i = origin_i then origin_route :: !cands else !cands in
          (* [compare_candidates] is total on distinct candidates (two
             routes at one AS differ at least in learned_from), so the
             sorted order is unique whatever the arena order was. *)
          let sorted = List.sort compare_candidates cands in
          (* The best is rebuilt from the copied-out scalars, not the
             live slot, so a cap-stopped run reports the best as of the
             AS's last visit — exactly what the reference solver
             stores.  Path length is memoized in the intern table. *)
          let best =
            match b_slot.(i) with
            | -2 -> None
            | -1 -> Some origin_route
            | s ->
                Some
                  {
                    path = Path_intern.to_list tbl b_path.(i);
                    path_len = Path_intern.length tbl b_path.(i);
                    learned_from = Some ases.(edge_to.(s));
                    rel = slot_rel.(s);
                    export_class = class_decode (b_meta.(i) land 7);
                    lp = b_lp.(i);
                    no_up = b_meta.(i) land 8 <> 0;
                  }
          in
          Asn.Map.add a { candidates = sorted; best } acc)
    retain Asn.Map.empty

(* Reusable solver scratch: the intern table, the candidate arena, the
   best rows and the ring worklist for one propagation run, allocated
   once per network and reset in O(occupied state) between runs.  Batch
   fan-out over many atoms re-solves into the same scratch instead of
   re-allocating ~6 arrays of [total_slots] per atom — at 15k+ ASes the
   allocations (and the intern-table growth) otherwise dominate.

   Reset leaves [s_path]/[s_len]/[s_lp] and the best-row scalars stale
   on purpose: every read of those arrays is gated behind a sentinel
   ([s_meta.(s) >= 0], [b_slot.(i) >= 0]) or an [s_meta] compare that
   fails for an empty slot, so a reset scratch is observationally a
   fresh one — the rpicheck differentials pin this by re-solving varied
   atoms through one scratch and comparing against fresh runs. *)
type scratch = {
  w_tbl : Path_intern.t;
  (* Candidate arena: slot [slot_base.(j) + k] is what receiver j holds
     from the sender in slot k of its adjacency, as parallel scalar
     arrays.  [s_meta] packs presence, export class and the no-up tag
     into one int: -1 when the slot is empty, else
     [class lor (no_up lsl 3)]. *)
  w_s_meta : int array;
  w_s_path : Path_intern.id array;
  w_s_len : int array;
  w_s_lp : int array;
  (* Best at last visit, copied out of the arena (slot contents mutate in
     place): [b_slot.(i)] is the winning global slot, -1 the origin's own
     route, -2 none.  Distinct slots of one receiver always have distinct
     senders, so slot identity plus the copied scalars is exactly the
     old-best content [route_equal] would compare. *)
  w_b_slot : int array;
  w_b_path : Path_intern.id array;
  w_b_lp : int array;
  w_b_meta : int array;
  w_x_slot : int array;  (* Per_neighbor selections; [||] under Per_as *)
  (* Worklist as a fixed int ring: [queued] dedups, so occupancy never
     exceeds [n] and pushes allocate nothing. *)
  w_ring : int array;
  w_queued : bool array;
  mutable w_used : bool;
}

let make_scratch ?(decision = Decision.vanilla) net =
  let module D = (val decision : Decision.S) in
  let n = Array.length net.ases in
  let total_slots = net.slot_base.(n) in
  {
    (* Pre-sized for the working set: growth doubles the cell arrays and
       rehashes the probe table, so a table born at ~2n cells (relayed
       paths intern one cell per exporting AS, plus origin variants)
       rarely grows at all. *)
    w_tbl = Path_intern.create ~capacity:(max 512 (2 * n)) ();
    w_s_meta = Array.make total_slots (-1);
    w_s_path = Array.make total_slots Path_intern.nil;
    w_s_len = Array.make total_slots 0;
    w_s_lp = Array.make total_slots 0;
    w_b_slot = Array.make n (-2);
    w_b_path = Array.make n Path_intern.nil;
    w_b_lp = Array.make n 0;
    w_b_meta = Array.make n 0;
    w_x_slot =
      (match D.granularity with
      | Decision.Per_as -> [||]
      | Decision.Per_neighbor -> Array.make total_slots (-2));
    w_ring = Array.make (n + 1) 0;
    w_queued = Array.make n false;
    w_used = false;
  }

let reset_scratch w =
  if w.w_used then begin
    Array.fill w.w_s_meta 0 (Array.length w.w_s_meta) (-1);
    Array.fill w.w_b_slot 0 (Array.length w.w_b_slot) (-2);
    if Array.length w.w_x_slot > 0 then
      Array.fill w.w_x_slot 0 (Array.length w.w_x_slot) (-2);
    (* A cap-stopped run exits with entries still queued. *)
    Array.fill w.w_queued 0 (Array.length w.w_queued) false;
    Path_intern.reset w.w_tbl
  end;
  w.w_used <- true

let propagate_vanilla scratch net ~retain atom =
  let {
    ases;
    index;
    resolved;
    transit_scopes;
    lp_dynamic;
    slot_base;
    edge_to;
    edge_asn;
    edge_asn_int;
    edge_rel;
    edge_slot;
    slot_class;
    slot_recv_lp;
    _;
  } =
    net
  in
  let n = Array.length ases in
  let origin = atom.Atom.origin in
  let origin_i =
    match Asn.Table.find_opt index origin with
    | Some i -> i
    | None -> invalid_arg "Engine.propagate: origin not in graph"
  in
  (* Paths are interned per scratch and the scratch is confined to one
     domain, so parallel atom fan-out shares nothing and stays
     deterministic. *)
  reset_scratch scratch;
  let tbl = scratch.w_tbl in
  let s_meta = scratch.w_s_meta in
  let s_path = scratch.w_s_path in
  let s_len = scratch.w_s_len in
  let s_lp = scratch.w_s_lp in
  let b_slot = scratch.w_b_slot in
  let b_path = scratch.w_b_path in
  let b_lp = scratch.w_b_lp in
  let b_meta = scratch.w_b_meta in
  let ring = scratch.w_ring in
  let ring_head = ref 0 in
  let ring_tail = ref 0 in
  let queued = scratch.w_queued in
  let[@rpilint.hot] enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      ring.(!ring_tail) <- i;
      ring_tail := if !ring_tail = n then 0 else !ring_tail + 1
    end
  in
  enqueue origin_i;
  let steps = ref 0 in
  let cap = 200 * (n + 1) in
  (* [beats a b]: slot [a]'s candidate precedes slot [b]'s in the
     preference order of [compare_candidates] — higher lp, then shorter
     path, then smaller sender ASN, then lexicographic path.  The order is
     total on distinct slots (senders differ), so the last tie-break never
     decides between occupied slots of one receiver. *)
  let[@rpilint.hot] beats a b =
    match Int.compare s_lp.(b) s_lp.(a) with
    | 0 -> begin
        match Int.compare s_len.(a) s_len.(b) with
        | 0 -> begin
            match Int.compare edge_asn_int.(a) edge_asn_int.(b) with
            | 0 -> Path_intern.compare_lex tbl s_path.(a) s_path.(b) < 0
            | c -> c < 0
          end
        | c -> c < 0
      end
    | c -> c < 0
  in
  (* The selection scan carries its running best as a loop argument (not
     a ref cell) so a visit that changes nothing allocates nothing. *)
  let[@rpilint.hot] rec select_from s hi best =
    if s >= hi then best
    else if s_meta.(s) >= 0 && (best < 0 || beats s best) then
      select_from (s + 1) hi s
    else select_from (s + 1) hi best
  in
  let[@rpilint.hot] select i =
    if i = origin_i then -1
    else select_from slot_base.(i) slot_base.(i + 1) (-2)
  in
  let[@rpilint.hot] visit i =
    let holder = ases.(i) in
    let nb = select i in
    let ob = b_slot.(i) in
    let changed =
      if nb < 0 || ob < 0 then nb <> ob
      else
        not
          (nb = ob && b_lp.(i) = s_lp.(nb) && b_meta.(i) = s_meta.(nb)
          && Path_intern.equal b_path.(i) s_path.(nb))
    in
    (* The origin's best never changes after initialisation, but its first
       visit must run the export step. *)
    if changed || (i = origin_i && !steps = 1) then begin
      b_slot.(i) <- nb;
      if nb >= 0 then begin
        b_path.(i) <- s_path.(nb);
        b_lp.(i) <- s_lp.(nb);
        b_meta.(i) <- s_meta.(nb)
      end;
      if nb = -2 then begin
        (* No route any more: withdraw from every neighbour. *)
        for t = slot_base.(i) to slot_base.(i + 1) - 1 do
          let s = edge_slot.(t) in
          if s_meta.(s) >= 0 then begin
            s_meta.(s) <- -1;
            enqueue edge_to.(t)
          end
        done
      end
      else begin
        let is_origin = nb = -1 in
        let r_path = if is_origin then Path_intern.nil else s_path.(nb) in
        let r_len = if is_origin then 0 else s_len.(nb) in
        let r_lp = if is_origin then 0 else s_lp.(nb) in
        let r_meta = if is_origin then class_none else s_meta.(nb) in
        let r_class = r_meta land 7 in
        let r_no_up = r_meta land 8 <> 0 in
        let suppressed = (not is_origin) && Asn.Set.mem holder atom.Atom.suppressed_at in
        let holder_int = Asn.to_int holder in
        (* A relayed route is prepended exactly once, so its interned
           export path is the same for every neighbour: one hash probe
           per export round, not one per edge.  Only the origin prepends
           per neighbour (AS-path prepending). *)
        let relay_path =
          if is_origin || suppressed then Path_intern.nil
          else Path_intern.cons_n tbl holder 1 r_path
        in
        (* Per-edge visits dominate the whole solver, so the hot loop
           computes the export as scalars and compares them against the
           stored candidate first: re-visits that change nothing (the
           steady state once the wavefront passes) allocate nothing. *)
        for t = slot_base.(i) to slot_base.(i + 1) - 1 do
            let s = edge_slot.(t) in
            let export_ok =
              (not suppressed)
              && begin
                   (* Intermediate selective announcement: a relayed
                      customer-class route only climbs to providers in
                      the holder's transit scope. *)
                   is_origin
                   ||
                   match edge_rel.(t) with
                   | Relationship.Provider -> begin
                       match transit_scopes.(i) with
                       | Some scope -> Asn.Set.mem edge_asn.(t) scope
                       | None -> true
                     end
                   | Relationship.Customer | Relationship.Peer | Relationship.Sibling ->
                       true
                 end
              && begin
                   (* The export class survives sibling hops: peer and
                      provider routes go to customers and siblings only. *)
                   is_origin
                   || r_class = class_none || r_class = class_customer
                   || r_class = class_sibling
                   ||
                   match edge_rel.(t) with
                   | Relationship.Customer | Relationship.Sibling -> true
                   | Relationship.Peer | Relationship.Provider -> false
                 end
              && begin
                   (not r_no_up)
                   ||
                   match edge_rel.(t) with
                   | Relationship.Customer | Relationship.Sibling -> true
                   | Relationship.Peer | Relationship.Provider -> false
                 end
              && begin
                   (not is_origin)
                   ||
                   match edge_rel.(t) with
                   | Relationship.Customer | Relationship.Sibling -> true
                   | Relationship.Peer ->
                       not (Asn.Set.mem edge_asn.(t) atom.Atom.withhold_peers)
                   | Relationship.Provider -> begin
                       match atom.Atom.provider_scope with
                       | Atom.All_providers -> true
                       | Atom.Only_providers set -> Asn.Set.mem edge_asn.(t) set
                     end
                 end
              (* Loop rejection: the exported path is the holder
                 prepended to its own path, so the neighbour appears on
                 it iff it is the holder itself or already on the held
                 path. *)
              && edge_asn_int.(t) <> holder_int
              && not (Path_intern.mem tbl edge_asn.(t) r_path)
            in
            if not export_ok then begin
              if s_meta.(s) >= 0 then begin
                s_meta.(s) <- -1;
                enqueue edge_to.(t)
              end
            end
            else begin
              let tag =
                r_no_up || (is_origin && Asn.Set.mem edge_asn.(t) atom.Atom.no_export_up)
              in
              (* The origin may pad its own announcement towards
                 selected neighbours (AS-path prepending). *)
              let copies =
                if is_origin then 1 + Atom.prepend_count atom ~neighbor:edge_asn.(t)
                else 1
              in
              let path' =
                if is_origin then Path_intern.cons_n tbl holder copies r_path
                else relay_path
              in
              (* [edge_rel] read at the slot index is the receiver's
                 classification of the holder (the old back-relationship). *)
              let is_sibling_edge =
                match edge_rel.(s) with
                | Relationship.Sibling -> true
                | Relationship.Customer | Relationship.Peer | Relationship.Provider -> false
              in
              let lp =
                if is_sibling_edge && not is_origin then
                  (* Siblings behave like one AS: the preference assigned
                     by the sending sibling carries over (re-assigning a
                     flat sibling value above peer and provider creates
                     DISAGREE-style oscillation between
                     mutually-preferring siblings).  The origin's own
                     route gets the receiver's sibling class value. *)
                  r_lp
                else if lp_dynamic.(edge_to.(t)) then
                  Policy.resolve resolved.(edge_to.(t)) ~neighbor:holder
                    ~rel:edge_rel.(s) ~atom:atom.Atom.id
                else slot_recv_lp.(s)
              in
              let export_class_code =
                if is_sibling_edge then
                  if r_class = class_none then class_customer else r_class
                else slot_class.(s)
              in
              let meta' = if tag then export_class_code lor 8 else export_class_code in
              (* An empty slot's meta is -1, so presence is part of the
                 same compare. *)
              let unchanged =
                s_meta.(s) = meta' && s_lp.(s) = lp
                && Path_intern.equal s_path.(s) path'
              in
              if not unchanged then begin
                s_meta.(s) <- meta';
                s_path.(s) <- path';
                s_len.(s) <- copies + r_len;
                s_lp.(s) <- lp;
                enqueue edge_to.(t)
              end
            end
        done
      end
    end
  in
  while !ring_head <> !ring_tail && !steps <= cap do
    incr steps;
    let i = ring.(!ring_head) in
    ring_head := if !ring_head = n then 0 else !ring_head + 1;
    queued.(i) <- false;
    visit i
  done;
  let converged = !ring_head = !ring_tail in
  if not converged then
    Log.warn (fun m ->
        m "propagation of atom %d did not converge within %d steps" atom.Atom.id cap);
  let tables =
    arena_tables net ~tbl ~origin_i ~slot_rel:net.slot_rel ~s_meta ~s_path
      ~s_len ~s_lp ~b_slot ~b_path ~b_lp ~b_meta retain
  in
  { atom; tables; converged; steps = !steps }

(* ------------------------------------------------------------------ *)
(* Generic pluggable solver.

   Same mechanics as the vanilla fast path — the ring worklist, the
   interned arena, the atom's export spec, loop rejection, compiled
   import preferences — with the decision process abstracted behind a
   {!Decision.S} module.  Under [Per_as] granularity it reproduces the
   fast path's visit sequence exactly (the rpicheck property
   [decision_vanilla_matches_reference] pins a renamed vanilla module to
   byte-identical results including [steps]); under [Per_neighbor] each
   directed adjacency selects its own most preferred exportable
   candidate — NS-BGP — with one selection cell per adjacency laid out
   over the [slot_base] prefix sums. *)

let propagate_pluggable scratch net ~retain ~decision atom =
  let module D = (val decision : Decision.S) in
  let {
    ases;
    index;
    resolved;
    transit_scopes;
    lp_dynamic;
    slot_base;
    edge_to;
    edge_asn;
    edge_asn_int;
    edge_rel;
    edge_slot;
    slot_class;
    slot_recv_lp;
    _;
  } =
    net
  in
  let n = Array.length ases in
  let origin = atom.Atom.origin in
  let origin_i =
    match Asn.Table.find_opt index origin with
    | Some i -> i
    | None -> invalid_arg "Engine.propagate: origin not in graph"
  in
  reset_scratch scratch;
  let tbl = scratch.w_tbl in
  let s_meta = scratch.w_s_meta in
  let s_path = scratch.w_s_path in
  let s_len = scratch.w_s_len in
  let s_lp = scratch.w_s_lp in
  let ctx =
    {
      Decision.dc_intern = tbl;
      dc_meta = s_meta;
      dc_path = s_path;
      dc_len = s_len;
      dc_lp = s_lp;
      dc_sender_asn = edge_asn_int;
    }
  in
  let b_slot = scratch.w_b_slot in
  let b_path = scratch.w_b_path in
  let b_lp = scratch.w_b_lp in
  let b_meta = scratch.w_b_meta in
  (* Per-adjacency selection state ([Per_neighbor] only): what source the
     holder last chose for each of its edges — the arena row the NS-BGP
     mode adds on top of the per-AS [b_slot] row.  Cell [t] belongs to
     out-edge [t] of its holder (the holder's degree equals its
     receiver-slot count, so the CSR edge space serves both layouts). *)
  let x_slot = scratch.w_x_slot in
  let ring = scratch.w_ring in
  let ring_head = ref 0 in
  let ring_tail = ref 0 in
  let queued = scratch.w_queued in
  let[@rpilint.hot] enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      ring.(!ring_tail) <- i;
      ring_tail := if !ring_tail = n then 0 else !ring_tail + 1
    end
  in
  enqueue origin_i;
  let steps = ref 0 in
  let cap = 200 * (n + 1) in
  (* Engine-side legality of announcing source [src] (a slot, or -1 for
     the origin's own route) over out-edge [t]: aggregation suppression,
     transit scope, the atom's origin-scope spec, loop rejection.  The
     decision module never sees these — it only answers the policy
     question via [D.export_ok]. *)
  let[@rpilint.hot] mechanics_ok i holder_int t src =
    if src < 0 then
      edge_asn_int.(t) <> holder_int
      &&
      match edge_rel.(t) with
      | Relationship.Customer | Relationship.Sibling -> true
      | Relationship.Peer -> not (Asn.Set.mem edge_asn.(t) atom.Atom.withhold_peers)
      | Relationship.Provider -> begin
          match atom.Atom.provider_scope with
          | Atom.All_providers -> true
          | Atom.Only_providers set -> Asn.Set.mem edge_asn.(t) set
        end
    else
      (not (Asn.Set.mem ases.(i) atom.Atom.suppressed_at))
      && begin
           match edge_rel.(t) with
           | Relationship.Provider -> begin
               match transit_scopes.(i) with
               | Some scope -> Asn.Set.mem edge_asn.(t) scope
               | None -> true
             end
           | Relationship.Customer | Relationship.Peer | Relationship.Sibling -> true
         end
      && edge_asn_int.(t) <> holder_int
      && not (Path_intern.mem tbl edge_asn.(t) s_path.(src))
  in
  (* Write the export of [src] over out-edge [t] into the receiver's
     slot, enqueueing the receiver when the stored candidate changed. *)
  let[@rpilint.hot] export_to holder t src =
    let s = edge_slot.(t) in
    let is_origin_route = src < 0 in
    let r_path = if is_origin_route then Path_intern.nil else s_path.(src) in
    let r_len = if is_origin_route then 0 else s_len.(src) in
    let r_lp = if is_origin_route then 0 else s_lp.(src) in
    let r_meta = if is_origin_route then class_none else s_meta.(src) in
    let r_class = r_meta land 7 in
    let r_no_up = r_meta land 8 <> 0 in
    let tag =
      r_no_up || (is_origin_route && Asn.Set.mem edge_asn.(t) atom.Atom.no_export_up)
    in
    let copies =
      if is_origin_route then 1 + Atom.prepend_count atom ~neighbor:edge_asn.(t) else 1
    in
    let path' = Path_intern.cons_n tbl holder copies r_path in
    let is_sibling_edge =
      match edge_rel.(s) with
      | Relationship.Sibling -> true
      | Relationship.Customer | Relationship.Peer | Relationship.Provider -> false
    in
    let lp =
      if is_sibling_edge && not is_origin_route then r_lp
      else if lp_dynamic.(edge_to.(t)) then
        Policy.resolve resolved.(edge_to.(t)) ~neighbor:holder ~rel:edge_rel.(s)
          ~atom:atom.Atom.id
      else slot_recv_lp.(s)
    in
    let export_class_code =
      if is_sibling_edge then if r_class = class_none then class_customer else r_class
      else slot_class.(s)
    in
    let meta' = if tag then export_class_code lor 8 else export_class_code in
    let unchanged =
      s_meta.(s) = meta' && s_lp.(s) = lp && Path_intern.equal s_path.(s) path'
    in
    if not unchanged then begin
      s_meta.(s) <- meta';
      s_path.(s) <- path';
      s_len.(s) <- copies + r_len;
      s_lp.(s) <- lp;
      enqueue edge_to.(t)
    end
  in
  let[@rpilint.hot] withdraw t =
    let s = edge_slot.(t) in
    if s_meta.(s) >= 0 then begin
      s_meta.(s) <- -1;
      enqueue edge_to.(t)
    end
  in
  (* The AS's own best candidate — what it installs for forwarding — by
     the module's preference; -1 the origin's own route, -2 none.  As in
     the fast path, the scan threads its running best through loop
     arguments instead of a ref cell. *)
  let[@rpilint.hot] rec select_from s hi best =
    if s >= hi then best
    else if s_meta.(s) >= 0 && (best < 0 || D.prefer ctx s best < 0) then
      select_from (s + 1) hi s
    else select_from (s + 1) hi best
  in
  let[@rpilint.hot] select i =
    if i = origin_i then -1
    else select_from slot_base.(i) slot_base.(i + 1) (-2)
  in
  let[@rpilint.hot] visit_per_as i holder holder_int =
    let nb = select i in
    let ob = b_slot.(i) in
    let changed =
      if nb < 0 || ob < 0 then nb <> ob
      else
        not
          (nb = ob && b_lp.(i) = s_lp.(nb) && b_meta.(i) = s_meta.(nb)
          && Path_intern.equal b_path.(i) s_path.(nb))
    in
    (* Same gating as the vanilla fast path: the origin's best never
       changes after initialisation, but its first visit must run the
       export step. *)
    if changed || (i = origin_i && !steps = 1) then begin
      b_slot.(i) <- nb;
      if nb >= 0 then begin
        b_path.(i) <- s_path.(nb);
        b_lp.(i) <- s_lp.(nb);
        b_meta.(i) <- s_meta.(nb)
      end;
      for t = slot_base.(i) to slot_base.(i + 1) - 1 do
        if
          nb <> -2
          && mechanics_ok i holder_int t nb
          && D.export_ok ctx ~rel:edge_rel.(t) nb
        then export_to holder t nb
        else withdraw t
      done
    end
  in
  (* The per-edge selection scan of the NS-BGP mode: the most preferred
     candidate that is both mechanically announceable and policy-exportable
     over out-edge [t]. *)
  let[@rpilint.hot] rec edge_best i holder_int t s hi best =
    if s >= hi then best
    else if
      s_meta.(s) >= 0
      && mechanics_ok i holder_int t s
      && D.export_ok ctx ~rel:edge_rel.(t) s
      && (best < 0 || D.prefer ctx s best < 0)
    then edge_best i holder_int t (s + 1) hi s
    else edge_best i holder_int t (s + 1) hi best
  in
  let[@rpilint.hot] visit_per_neighbor i holder holder_int =
    (* No per-AS change gate: each edge carries its own selection, so
       every visit re-derives all of them and relies on the per-slot
       unchanged compare to keep the worklist quiet. *)
    let nb = select i in
    b_slot.(i) <- nb;
    if nb >= 0 then begin
      b_path.(i) <- s_path.(nb);
      b_lp.(i) <- s_lp.(nb);
      b_meta.(i) <- s_meta.(nb)
    end;
    let lo = slot_base.(i) in
    let hi = slot_base.(i + 1) in
    for t = lo to hi - 1 do
      let src =
        if i = origin_i then
          if mechanics_ok i holder_int t (-1) && D.export_ok ctx ~rel:edge_rel.(t) (-1)
          then -1
          else -2
        else edge_best i holder_int t lo hi (-2)
      in
      x_slot.(t) <- src;
      if src = -2 then withdraw t else export_to holder t src
    done
  in
  while !ring_head <> !ring_tail && !steps <= cap do
    incr steps;
    let i = ring.(!ring_head) in
    ring_head := if !ring_head = n then 0 else !ring_head + 1;
    queued.(i) <- false;
    let holder = ases.(i) in
    let holder_int = Asn.to_int holder in
    match D.granularity with
    | Decision.Per_as -> visit_per_as i holder holder_int
    | Decision.Per_neighbor -> visit_per_neighbor i holder holder_int
  done;
  let converged = !ring_head = !ring_tail in
  if not converged then
    Log.warn (fun m ->
        m "propagation of atom %d (decision %s) did not converge within %d steps"
          atom.Atom.id D.name cap);
  let tables =
    arena_tables net ~tbl ~origin_i ~slot_rel:net.slot_rel ~s_meta ~s_path
      ~s_len ~s_lp ~b_slot ~b_path ~b_lp ~b_meta retain
  in
  { atom; tables; converged; steps = !steps }

(* Solve one atom into an existing scratch.  The name "vanilla" claims
   byte-identity with the specialised fast path, so it is safe (and
   profitable) to dispatch there. *)
let propagate_on scratch net ~retain ~decision atom =
  if Decision.is_vanilla decision then propagate_vanilla scratch net ~retain atom
  else propagate_pluggable scratch net ~retain ~decision atom

let propagate net ~retain ?(decision = Decision.vanilla) atom =
  propagate_on (make_scratch ~decision net) net ~retain ~decision atom

(* ------------------------------------------------------------------ *)
(* Reference solver: the direct list-of-routes implementation the
   interned fast path is checked against.  Kept deliberately naive. *)

let propagate_reference net ~retain atom =
  let { ases; index; neighbors; resolved; transit_scopes; _ } = net in
  let n = Array.length ases in
  let origin = atom.Atom.origin in
  let origin_i =
    match Asn.Table.find_opt index origin with
    | Some i -> i
    | None -> invalid_arg "Engine.propagate: origin not in graph"
  in
  let lp_at holder_i ~neighbor ~rel =
    Policy.resolve resolved.(holder_i) ~neighbor ~rel ~atom:atom.Atom.id
  in
  (* State: candidates.(i) maps neighbour index -> route received. *)
  let candidates : (int * route) list array = Array.make n [] in
  let best : route option array = Array.make n None in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.push i queue
    end
  in
  enqueue origin_i;
  let steps = ref 0 in
  let cap = 200 * (n + 1) in
  let select i =
    if i = origin_i then Some origin_route
    else begin
      match candidates.(i) with
      | [] -> None
      | (_, first) :: rest ->
          Some
            (List.fold_left
               (fun acc (_, r) -> if compare_candidates r acc < 0 then r else acc)
               first rest)
    end
  in
  while (not (Queue.is_empty queue)) && !steps <= cap do
    incr steps;
    let i = Queue.pop queue in
    queued.(i) <- false;
    let holder = ases.(i) in
    let new_best = select i in
    let changed =
      match (best.(i), new_best) with
      | None, None -> false
      | Some a, Some b -> not (route_equal a b)
      | None, Some _ | Some _, None -> true
    in
    (* The origin's best never changes after initialisation, but its first
       visit must run the export step. *)
    if changed || (i = origin_i && !steps = 1) then begin
      best.(i) <- new_best;
      Array.iter
        (fun (j, nb, nb_rel) ->
          let exported =
            match new_best with
            | None -> None
            | Some r -> begin
                let transit_ok =
                  (* Intermediate selective announcement: a relayed
                     customer-class route only climbs to providers in the
                     holder's transit scope. *)
                  match (r.learned_from, nb_rel) with
                  | Some _, Relationship.Provider -> begin
                      match transit_scopes.(i) with
                      | Some scope -> Asn.Set.mem nb scope
                      | None -> true
                    end
                  | (Some _ | None), _ -> true
                in
                if not transit_ok then None
                else begin
                match export_decision atom ~holder ~r ~nb ~nb_rel with
                | None -> None
                | Some tag ->
                    (* The origin may pad its own announcement towards
                       selected neighbours (AS-path prepending). *)
                    let copies =
                      match r.learned_from with
                      | None -> 1 + Atom.prepend_count atom ~neighbor:nb
                      | Some _ -> 1
                    in
                    let path' = List.init copies (fun _ -> holder) @ r.path in
                    if List.exists (Asn.equal nb) path' then None
                    else begin
                      let back_rel = Relationship.invert nb_rel in
                      (* how nb classifies holder *)
                      let lp =
                        match back_rel with
                        | Relationship.Sibling -> begin
                            (* Siblings behave like one AS: the preference
                               assigned by the sending sibling carries over
                               (re-assigning a flat sibling value above peer
                               and provider creates DISAGREE-style
                               oscillation between mutually-preferring
                               siblings).  The origin's own route gets the
                               receiver's sibling class value. *)
                            match r.learned_from with
                            | None ->
                                lp_at j ~neighbor:holder ~rel:back_rel
                            | Some _ -> r.lp
                          end
                        | Relationship.Customer | Relationship.Peer
                        | Relationship.Provider ->
                            lp_at j ~neighbor:holder ~rel:back_rel
                      in
                      let export_class =
                        match back_rel with
                        | Relationship.Sibling -> begin
                            match r.export_class with
                            | None -> Some Relationship.Customer
                            | Some c -> Some c
                          end
                        | Relationship.Customer | Relationship.Peer
                        | Relationship.Provider ->
                            Some back_rel
                      in
                      Some
                        {
                          path = path';
                          path_len = copies + r.path_len;
                          learned_from = Some holder;
                          rel = Some back_rel;
                          export_class;
                          lp;
                          no_up = tag;
                        }
                    end
                end
              end
          in
          let old = List.assoc_opt i candidates.(j) in
          let cand_changed =
            match (old, exported) with
            | None, None -> false
            | Some a, Some b -> not (route_equal a b)
            | None, Some _ | Some _, None -> true
          in
          if cand_changed then begin
            let rest = List.remove_assoc i candidates.(j) in
            candidates.(j) <-
              (match exported with
              | Some r -> (i, r) :: rest
              | None -> rest);
            enqueue j
          end)
        neighbors.(i)
    end
  done;
  let converged = Queue.is_empty queue in
  if not converged then
    Log.warn (fun m ->
        m "propagation of atom %d did not converge within %d steps" atom.Atom.id cap);
  let tables =
    Asn.Set.fold
      (fun a acc ->
        match Asn.Table.find_opt index a with
        | None -> acc
        | Some i ->
            let cands = List.map snd candidates.(i) in
            let cands = if i = origin_i then origin_route :: cands else cands in
            let sorted = List.sort compare_candidates cands in
            Asn.Map.add a { candidates = sorted; best = best.(i) } acc)
      retain Asn.Map.empty
  in
  { atom; tables; converged; steps = !steps }

let propagate_all net ~retain ?(decision = Decision.vanilla) ?(jobs = 1) atoms =
  let arr = Array.of_list atoms in
  let m = Array.length arr in
  let jobs = max 1 (min jobs m) in
  if jobs = 1 then begin
    (* One scratch reused across the whole batch: arena and intern-table
       setup is paid once, not per atom — the same fix, at batch
       granularity, that the sharded path below applies per worker. *)
    let scratch = make_scratch ~decision net in
    List.map (fun atom -> propagate_on scratch net ~retain ~decision atom) atoms
  end
  else begin
    (* Sharded fan-out: atoms are split into ~4x[jobs] contiguous chunks
       claimed off one atomic counter — coarse enough that per-task
       dispatch (and per-worker scratch setup) amortizes over many
       atoms, fine enough that an unlucky chunk of slow atoms doesn't
       serialize the tail.  Each worker owns one scratch (reset between
       atoms is observationally a fresh one), every result cell is
       written by exactly one domain, and the merge reads them back in
       declaration order — so the result is byte-identical whatever the
       domain count or chunking. *)
    let n_chunks = min m (4 * jobs) in
    let slots = Array.make m None in
    let next = Atomic.make 0 in
    let worker _id =
      let scratch = make_scratch ~decision net in
      let rec loop () =
        let c = Atomic.fetch_and_add next 1 in
        if c < n_chunks then begin
          let lo = c * m / n_chunks and hi = (c + 1) * m / n_chunks in
          for k = lo to hi - 1 do
            slots.(k) <-
              Some
                (try Ok (propagate_on scratch net ~retain ~decision arr.(k))
                 with e -> Error (e, Printexc.get_raw_backtrace ()))
          done;
          loop ()
        end
      in
      loop ()
    in
    Rpi_pool.Pool.run ~jobs worker;
    Array.to_list slots
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let iter_propagated net ~retain ?(decision = Decision.vanilla) atoms ~f =
  match atoms with
  | [] -> ()
  | _ :: _ ->
      (* Streaming fan-out: one scratch, one live result at a time, in
         declaration order — callers fold vantage tables incrementally
         instead of materializing every per-AS result list at once. *)
      let scratch = make_scratch ~decision net in
      List.iter (fun atom -> f (propagate_on scratch net ~retain ~decision atom)) atoms

(* ------------------------------------------------------------------ *)
(* Incremental re-propagation.

   A prepared network fixes the link universe and the slot geometry; the
   incremental [state] layers a mutable configuration overlay on top of
   it — per-slot activity bits, relationships, static import preferences,
   state-owned compiled policies — plus one live candidate arena per
   announced atom.  [repropagate] applies a batch of deltas to the
   overlay, seeds each atom's worklist from the touched senders (the
   dirty-cone frontier) and re-solves only what the wavefront actually
   reaches: untouched atoms are skipped outright, and within a touched
   atom the per-slot unchanged-compare stops the wave as soon as the
   re-derived candidates match the stored ones.

   The solver below is the generic pluggable visit adapted to read the
   overlay instead of the edge's precomputed fields.  Under the vanilla
   decision it makes exactly the decisions of [propagate] on the
   equivalent freshly-prepared network — the rpicheck property
   [repropagate_matches_batch] pins the full results (candidate order
   included) byte-for-byte, for both shipped decision processes. *)

module Int_tbl = Hashtbl.Make (Int)

module Delta = struct
  type t =
    | Link_down of Asn.t * Asn.t
    | Link_up of Asn.t * Asn.t
    | Rel_set of Asn.t * Asn.t * Relationship.t
    | Lp_set of { atom_id : int; holder : Asn.t; neighbor : Asn.t; lp : int }
    | Announce of Atom.t
    | Withdraw of int

  (* Coalescing key: two deltas coalesce iff they write the same
     configuration cell.  Link up/down share one key per undirected link
     (both write its activity bit); [Rel_set] has its own per-link key
     (activity and label are independent state); [Lp_set] is keyed by the
     override triple; [Announce]/[Withdraw] both write the atom's
     announced-state. *)
  type key =
    | K_active of int * int
    | K_rel of int * int
    | K_lp of int * int * int
    | K_atom of int

  let link_key a b =
    let ai = Asn.to_int a and bi = Asn.to_int b in
    if ai <= bi then (ai, bi) else (bi, ai)

  let key = function
    | Link_down (a, b) | Link_up (a, b) ->
        let x, y = link_key a b in
        K_active (x, y)
    | Rel_set (a, b, _) ->
        let x, y = link_key a b in
        K_rel (x, y)
    | Lp_set { atom_id; holder; neighbor; _ } ->
        K_lp (atom_id, Asn.to_int holder, Asn.to_int neighbor)
    | Announce atom -> K_atom atom.Atom.id
    | Withdraw id -> K_atom id

  let coalesce ds =
    let last = Hashtbl.create 16 in
    List.iter (fun d -> Hashtbl.replace last (key d) d) ds;
    let emitted = Hashtbl.create 16 in
    List.filter_map
      (fun d ->
        let k = key d in
        if Hashtbl.mem emitted k then None
        else begin
          Hashtbl.add emitted k ();
          Some (Hashtbl.find last k)
        end)
      ds

  let render = function
    | Link_down (a, b) ->
        Printf.sprintf "link-down AS%d AS%d" (Asn.to_int a) (Asn.to_int b)
    | Link_up (a, b) ->
        Printf.sprintf "link-up AS%d AS%d" (Asn.to_int a) (Asn.to_int b)
    | Rel_set (a, b, rel) ->
        Printf.sprintf "rel-set AS%d AS%d %s" (Asn.to_int a) (Asn.to_int b)
          (Relationship.to_string rel)
    | Lp_set { atom_id; holder; neighbor; lp } ->
        Printf.sprintf "lp-set atom %d AS%d from AS%d -> %d" atom_id
          (Asn.to_int holder) (Asn.to_int neighbor) lp
    | Announce atom -> Printf.sprintf "announce %d" atom.Atom.id
    | Withdraw id -> Printf.sprintf "withdraw %d" id

  let of_event ~atom_of = function
    | Rpi_topo.Churn.Link_down (a, b) -> Link_down (a, b)
    | Rpi_topo.Churn.Link_up (a, b) -> Link_up (a, b)
    | Rpi_topo.Churn.Rel_change (a, b, rel) -> Rel_set (a, b, rel)
    | Rpi_topo.Churn.Announce id -> Announce (atom_of id)
    | Rpi_topo.Churn.Withdraw id -> Withdraw id
end

(* One announced atom's live solver state: its private intern table and
   the same four arena rows + four best rows the batch solvers use, kept
   alive between repropagations so the next delta only pays for its own
   cone. *)
type cell = {
  c_atom : Atom.t;
  c_origin_i : int;
  c_tbl : Path_intern.t;
  c_s_meta : int array;
  c_s_path : Path_intern.id array;
  c_s_len : int array;
  c_s_lp : int array;
  c_b_slot : int array;
  c_b_path : Path_intern.id array;
  c_b_lp : int array;
  c_b_meta : int array;
  c_x_slot : int array;  (* Per_neighbor selections; [||] under Per_as *)
  mutable c_converged : bool;
  mutable c_steps : int;  (* worklist pops, accumulated over repropagations *)
}

type state = {
  st_net : network;
  st_decision : Decision.t;
  (* Mutable configuration overlay, indexed like the prepared network's
     per-slot arrays.  [st_rel.(s)] is the receiver's current view of the
     slot's sender; [st_rel_opt] mirrors it as preallocated [Some] blocks
     (updated on the cold [Rel_set] path) so the hot loops and
     [arena_tables] never allocate an option. *)
  st_active : bool array;
  st_rel : Relationship.t array;
  st_rel_opt : Relationship.t option array;
  st_class_code : int array;  (* class_code of [st_rel.(s)] *)
  st_recv_lp : int array;  (* static import preference per slot *)
  st_resolved : Policy.resolved array;  (* state-owned copies *)
  st_lp_dynamic : bool array;
  (* Shared solver scratch: cells are solved one at a time, so one ring,
     one dedup row and one forced row serve them all. *)
  st_ring : int array;
  st_queued : bool array;
  st_forced : bool array;
  st_cells : cell Int_tbl.t;  (* keyed by atom id *)
}

let init_state ?(decision = Decision.vanilla) net =
  let n = Array.length net.ases in
  let total_slots = net.slot_base.(n) in
  {
    st_net = net;
    st_decision = decision;
    st_active = Array.make total_slots true;
    (* [edge_rel] read at a slot index is the receiver's view of the
       slot's sender — exactly the overlay's initial contents. *)
    st_rel = Array.copy net.edge_rel;
    st_rel_opt = Array.copy net.slot_rel;
    st_class_code = Array.copy net.slot_class;
    st_recv_lp = Array.copy net.slot_recv_lp;
    st_resolved = Array.map Policy.copy_resolved net.resolved;
    st_lp_dynamic = Array.copy net.lp_dynamic;
    st_ring = Array.make (n + 1) 0;
    st_queued = Array.make n false;
    st_forced = Array.make n false;
    st_cells = Int_tbl.create 64;
  }

let state_decision st = st.st_decision

let state_atoms st =
  Int_tbl.fold (fun _ c acc -> c.c_atom :: acc) st.st_cells []
  |> List.sort (fun a b -> Int.compare a.Atom.id b.Atom.id)

(* The effective graph under the overlay: prepared edges that are up,
   with their current labels; every AS kept even when isolated, so a
   fresh [prepare] on this graph has the same AS universe (the
   differential properties depend on it). *)
let state_graph st =
  let net = st.st_net in
  let n = Array.length net.ases in
  let g = ref (Array.fold_left As_graph.add_as As_graph.empty net.ases) in
  for i = 0 to n - 1 do
    for t = net.slot_base.(i) to net.slot_base.(i + 1) - 1 do
      let j = net.edge_to.(t) in
      let s = net.edge_slot.(t) in
      if j > i && st.st_active.(s) then
        g :=
          As_graph.add_edge !g net.ases.(i) net.ases.(j)
            (Relationship.invert st.st_rel.(s))
    done
  done;
  !g

(* Re-solve one cell from the seeded frontier.  [seeds] are the AS
   indices whose export step must run even when their own best is
   unchanged — the senders over touched adjacencies; their forced visit
   re-derives (or withdraws) the touched slots in place, and from there
   the ordinary change-driven worklist takes over. *)
let solve_cell st cell seeds =
  let module D = (val st.st_decision : Decision.S) in
  let net = st.st_net in
  let { ases; slot_base; edge_to; edge_asn; edge_asn_int; edge_slot; _ } = net in
  let n = Array.length ases in
  let atom = cell.c_atom in
  let origin_i = cell.c_origin_i in
  let tbl = cell.c_tbl in
  let s_meta = cell.c_s_meta in
  let s_path = cell.c_s_path in
  let s_len = cell.c_s_len in
  let s_lp = cell.c_s_lp in
  let b_slot = cell.c_b_slot in
  let b_path = cell.c_b_path in
  let b_lp = cell.c_b_lp in
  let b_meta = cell.c_b_meta in
  let x_slot = cell.c_x_slot in
  let active = st.st_active in
  let rel_of = st.st_rel in
  let class_of = st.st_class_code in
  let recv_lp = st.st_recv_lp in
  let resolved = st.st_resolved in
  let lp_dynamic = st.st_lp_dynamic in
  let transit_scopes = net.transit_scopes in
  let ctx =
    {
      Decision.dc_intern = tbl;
      dc_meta = s_meta;
      dc_path = s_path;
      dc_len = s_len;
      dc_lp = s_lp;
      dc_sender_asn = edge_asn_int;
    }
  in
  let ring = st.st_ring in
  let queued = st.st_queued in
  let forced = st.st_forced in
  let ring_head = ref 0 in
  let ring_tail = ref 0 in
  let[@rpilint.hot] enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      ring.(!ring_tail) <- i;
      ring_tail := if !ring_tail = n then 0 else !ring_tail + 1
    end
  in
  List.iter
    (fun i ->
      forced.(i) <- true;
      enqueue i)
    seeds;
  (* Same mechanics as the batch pluggable solver, with every
     edge-precomputed field replaced by its overlay read: the holder's
     view of the receiver is the invert of the receiver's per-slot view
     ([Relationship.invert] maps immediates to immediates), and an
     inactive slot admits no export at all — the forced sender visit is
     what clears a downed link's slots. *)
  let[@rpilint.hot] mechanics_ok i holder_int t src =
    let s = edge_slot.(t) in
    active.(s)
    &&
    let e_rel = Relationship.invert rel_of.(s) in
    if src < 0 then
      edge_asn_int.(t) <> holder_int
      &&
      match e_rel with
      | Relationship.Customer | Relationship.Sibling -> true
      | Relationship.Peer -> not (Asn.Set.mem edge_asn.(t) atom.Atom.withhold_peers)
      | Relationship.Provider -> begin
          match atom.Atom.provider_scope with
          | Atom.All_providers -> true
          | Atom.Only_providers set -> Asn.Set.mem edge_asn.(t) set
        end
    else
      (not (Asn.Set.mem ases.(i) atom.Atom.suppressed_at))
      && begin
           match e_rel with
           | Relationship.Provider -> begin
               match transit_scopes.(i) with
               | Some scope -> Asn.Set.mem edge_asn.(t) scope
               | None -> true
             end
           | Relationship.Customer | Relationship.Peer | Relationship.Sibling -> true
         end
      && edge_asn_int.(t) <> holder_int
      && not (Path_intern.mem tbl edge_asn.(t) s_path.(src))
  in
  let[@rpilint.hot] export_to holder t src =
    let s = edge_slot.(t) in
    let is_origin_route = src < 0 in
    let r_path = if is_origin_route then Path_intern.nil else s_path.(src) in
    let r_len = if is_origin_route then 0 else s_len.(src) in
    let r_lp = if is_origin_route then 0 else s_lp.(src) in
    let r_meta = if is_origin_route then class_none else s_meta.(src) in
    let r_class = r_meta land 7 in
    let r_no_up = r_meta land 8 <> 0 in
    let tag =
      r_no_up || (is_origin_route && Asn.Set.mem edge_asn.(t) atom.Atom.no_export_up)
    in
    let copies =
      if is_origin_route then 1 + Atom.prepend_count atom ~neighbor:edge_asn.(t) else 1
    in
    let path' = Path_intern.cons_n tbl holder copies r_path in
    let back_rel = rel_of.(s) in
    let is_sibling_edge =
      match back_rel with
      | Relationship.Sibling -> true
      | Relationship.Customer | Relationship.Peer | Relationship.Provider -> false
    in
    let lp =
      if is_sibling_edge && not is_origin_route then r_lp
      else if lp_dynamic.(edge_to.(t)) then
        Policy.resolve resolved.(edge_to.(t)) ~neighbor:holder ~rel:back_rel
          ~atom:atom.Atom.id
      else recv_lp.(s)
    in
    let export_class_code =
      if is_sibling_edge then if r_class = class_none then class_customer else r_class
      else class_of.(s)
    in
    let meta' = if tag then export_class_code lor 8 else export_class_code in
    let unchanged =
      s_meta.(s) = meta' && s_lp.(s) = lp && Path_intern.equal s_path.(s) path'
    in
    if not unchanged then begin
      s_meta.(s) <- meta';
      s_path.(s) <- path';
      s_len.(s) <- copies + r_len;
      s_lp.(s) <- lp;
      enqueue edge_to.(t)
    end
  in
  let[@rpilint.hot] withdraw t =
    let s = edge_slot.(t) in
    if s_meta.(s) >= 0 then begin
      s_meta.(s) <- -1;
      enqueue edge_to.(t)
    end
  in
  let[@rpilint.hot] rec select_from s hi best =
    if s >= hi then best
    else if s_meta.(s) >= 0 && (best < 0 || D.prefer ctx s best < 0) then
      select_from (s + 1) hi s
    else select_from (s + 1) hi best
  in
  let[@rpilint.hot] select i =
    if i = origin_i then -1
    else select_from slot_base.(i) slot_base.(i + 1) (-2)
  in
  let[@rpilint.hot] visit_per_as i holder holder_int force =
    let nb = select i in
    let ob = b_slot.(i) in
    let changed =
      if nb < 0 || ob < 0 then nb <> ob
      else
        not
          (nb = ob && b_lp.(i) = s_lp.(nb) && b_meta.(i) = s_meta.(nb)
          && Path_intern.equal b_path.(i) s_path.(nb))
    in
    (* The forced flag replaces the batch solvers' first-step origin
       special case: a seeded sender re-runs its export step whether or
       not its own best moved, so the touched slots get re-derived (or
       withdrawn) even though nothing upstream changed. *)
    if changed || force then begin
      b_slot.(i) <- nb;
      if nb >= 0 then begin
        b_path.(i) <- s_path.(nb);
        b_lp.(i) <- s_lp.(nb);
        b_meta.(i) <- s_meta.(nb)
      end;
      for t = slot_base.(i) to slot_base.(i + 1) - 1 do
        if
          nb <> -2
          && mechanics_ok i holder_int t nb
          && D.export_ok ctx ~rel:(Relationship.invert rel_of.(edge_slot.(t))) nb
        then export_to holder t nb
        else withdraw t
      done
    end
  in
  let[@rpilint.hot] rec edge_best i holder_int t s hi best =
    if s >= hi then best
    else if
      s_meta.(s) >= 0
      && mechanics_ok i holder_int t s
      && D.export_ok ctx ~rel:(Relationship.invert rel_of.(edge_slot.(t))) s
      && (best < 0 || D.prefer ctx s best < 0)
    then edge_best i holder_int t (s + 1) hi s
    else edge_best i holder_int t (s + 1) hi best
  in
  let[@rpilint.hot] visit_per_neighbor i holder holder_int =
    (* As in the batch Per_neighbor visit: no per-AS change gate, every
       visit re-derives all edges and the per-slot unchanged compare
       keeps the worklist quiet. *)
    let nb = select i in
    b_slot.(i) <- nb;
    if nb >= 0 then begin
      b_path.(i) <- s_path.(nb);
      b_lp.(i) <- s_lp.(nb);
      b_meta.(i) <- s_meta.(nb)
    end;
    let lo = slot_base.(i) in
    let hi = slot_base.(i + 1) in
    for t = lo to hi - 1 do
      let src =
        if i = origin_i then
          if
            mechanics_ok i holder_int t (-1)
            && D.export_ok ctx ~rel:(Relationship.invert rel_of.(edge_slot.(t))) (-1)
          then -1
          else -2
        else edge_best i holder_int t lo hi (-2)
      in
      x_slot.(t) <- src;
      if src = -2 then withdraw t else export_to holder t src
    done
  in
  let steps = ref 0 in
  let cap = 200 * (n + 1) in
  while !ring_head <> !ring_tail && !steps <= cap do
    incr steps;
    let i = ring.(!ring_head) in
    ring_head := if !ring_head = n then 0 else !ring_head + 1;
    queued.(i) <- false;
    let force = forced.(i) in
    forced.(i) <- false;
    let holder = ases.(i) in
    let holder_int = Asn.to_int holder in
    match D.granularity with
    | Decision.Per_as -> visit_per_as i holder holder_int force
    | Decision.Per_neighbor -> visit_per_neighbor i holder holder_int
  done;
  let converged = !ring_head = !ring_tail in
  if not converged then begin
    Log.warn (fun m ->
        m "repropagation of atom %d (decision %s) did not converge within %d steps"
          atom.Atom.id D.name cap);
    (* Scrub the shared scratch rows for the next cell. *)
    while !ring_head <> !ring_tail do
      let i = ring.(!ring_head) in
      ring_head := if !ring_head = n then 0 else !ring_head + 1;
      queued.(i) <- false;
      forced.(i) <- false
    done
  end;
  cell.c_converged <- converged;
  cell.c_steps <- cell.c_steps + !steps

let fresh_cell st atom =
  let net = st.st_net in
  let n = Array.length net.ases in
  let total_slots = net.slot_base.(n) in
  let origin_i =
    match Asn.Table.find_opt net.index atom.Atom.origin with
    | Some i -> i
    | None -> invalid_arg "Engine.repropagate: origin not in graph"
  in
  let module D = (val st.st_decision : Decision.S) in
  {
    c_atom = atom;
    c_origin_i = origin_i;
    c_tbl = Path_intern.create ~capacity:(max 512 n) ();
    c_s_meta = Array.make total_slots (-1);
    c_s_path = Array.make total_slots Path_intern.nil;
    c_s_len = Array.make total_slots 0;
    c_s_lp = Array.make total_slots 0;
    c_b_slot = Array.make n (-2);
    c_b_path = Array.make n Path_intern.nil;
    c_b_lp = Array.make n 0;
    c_b_meta = Array.make n 0;
    c_x_slot =
      (match D.granularity with
      | Decision.Per_as -> [||]
      | Decision.Per_neighbor -> Array.make total_slots (-2));
    c_converged = true;
    c_steps = 0;
  }

let repropagate net st deltas =
  if not (net == st.st_net) then
    invalid_arg "Engine.repropagate: state was built for a different network";
  let { ases; index; _ } = net in
  (* Resolve an undirected link to its two endpoint indices and directed
     slots; deltas naming a link outside the prepared universe are
     programming errors (the geometry is fixed at prepare time).  The
     forward out-edge t (i->j) IS the slot of j's export into i, and its
     reverse [edge_slot.(t)] the slot of i's export into j. *)
  let link_slots what a b =
    let find_edge i j =
      let rec go t hi =
        if t >= hi then -1 else if net.edge_to.(t) = j then t else go (t + 1) hi
      in
      go net.slot_base.(i) net.slot_base.(i + 1)
    in
    match (Asn.Table.find_opt index a, Asn.Table.find_opt index b) with
    | Some i, Some j -> begin
        match find_edge i j with
        | -1 ->
            invalid_arg
              (Printf.sprintf "Engine.repropagate: %s names link AS%d-AS%d absent from the prepared graph"
                 what (Asn.to_int a) (Asn.to_int b))
        | t -> (i, j, net.edge_slot.(t), t)
      end
    | _ ->
        invalid_arg
          (Printf.sprintf "Engine.repropagate: %s names an AS absent from the prepared graph" what)
  in
  (* Phase 1: apply every delta to the configuration overlay (and the
     cell table), collecting the forced frontier — applying config first
     and solving once per cell is what makes a delta list and its
     coalesced form indistinguishable. *)
  let base_forced = ref [] in
  let seen_forced = Hashtbl.create 16 in
  let force_all i =
    if not (Hashtbl.mem seen_forced i) then begin
      Hashtbl.add seen_forced i ();
      base_forced := i :: !base_forced
    end
  in
  let atom_forced : int list Int_tbl.t = Int_tbl.create 8 in
  let force_atom id i =
    let prev = try Int_tbl.find atom_forced id with Not_found -> [] in
    if not (List.mem i prev) then Int_tbl.replace atom_forced id (i :: prev)
  in
  List.iter
    (fun d ->
      match d with
      | Delta.Link_down (a, b) ->
          let i, j, s_ij, s_ji = link_slots "Link_down" a b in
          st.st_active.(s_ij) <- false;
          st.st_active.(s_ji) <- false;
          force_all i;
          force_all j
      | Delta.Link_up (a, b) ->
          let i, j, s_ij, s_ji = link_slots "Link_up" a b in
          st.st_active.(s_ij) <- true;
          st.st_active.(s_ji) <- true;
          force_all i;
          force_all j
      | Delta.Rel_set (a, b, rel) ->
          (* [a] now classifies [b] as [rel].  Slot [s_ij] holds what [a]
             (sender i) exports into [b]'s arena, so its stored
             relationship is [b]'s view of [a] — the invert — and
             symmetrically for [s_ji]. *)
          let i, j, s_ij, s_ji = link_slots "Rel_set" a b in
          let back = Relationship.invert rel in
          st.st_rel.(s_ij) <- back;
          st.st_rel_opt.(s_ij) <- Some back;
          st.st_class_code.(s_ij) <- class_code (Some back);
          st.st_recv_lp.(s_ij) <-
            Policy.resolve_static st.st_resolved.(j) ~neighbor:ases.(i) ~rel:back;
          st.st_rel.(s_ji) <- rel;
          st.st_rel_opt.(s_ji) <- Some rel;
          st.st_class_code.(s_ji) <- class_code (Some rel);
          st.st_recv_lp.(s_ji) <-
            Policy.resolve_static st.st_resolved.(i) ~neighbor:ases.(j) ~rel;
          force_all i;
          force_all j
      | Delta.Lp_set { atom_id; holder; neighbor; lp } -> begin
          (* Same tolerance as prepare-time [lp_overrides]: an unknown
             holder is dropped.  The overlay write is global (policy
             config outlives announcements); only the named atom's cell
             needs re-solving, seeded at the sender whose exports the
             override re-prices. *)
          match Asn.Table.find_opt index holder with
          | None -> ()
          | Some h ->
              Policy.override_resolved st.st_resolved.(h) ~neighbor ~atom:atom_id ~lp;
              st.st_lp_dynamic.(h) <- true;
              (match Asn.Table.find_opt index neighbor with
              | Some s -> force_atom atom_id s
              | None -> ())
        end
      | Delta.Announce atom -> begin
          match Int_tbl.find_opt st.st_cells atom.Atom.id with
          | Some cell when Atom.equal cell.c_atom atom -> ()
          | Some _ | None ->
              (* New or structurally changed atom: solve from scratch,
                 seeded at the origin (the forced visit stands in for the
                 batch solvers' first-step origin special case). *)
              let cell = fresh_cell st atom in
              Int_tbl.replace st.st_cells atom.Atom.id cell;
              force_atom atom.Atom.id cell.c_origin_i
        end
      | Delta.Withdraw id ->
          Int_tbl.remove st.st_cells id;
          Int_tbl.remove atom_forced id)
    deltas;
  let base = List.rev !base_forced in
  (* Phase 2: re-solve the touched cells in atom-id order (cells are
     independent; the order only fixes which cell pays the shared
     scratch warm-up).  A cell with an empty frontier is untouched and
     skipped outright — the whole point of the exercise. *)
  let ids =
    Int_tbl.fold (fun id _ acc -> id :: acc) st.st_cells [] |> List.sort Int.compare
  in
  List.iter
    (fun id ->
      let cell = Int_tbl.find st.st_cells id in
      let extra = try Int_tbl.find atom_forced id with Not_found -> [] in
      let seeds = base @ List.rev extra in
      if seeds <> [] then solve_cell st cell seeds)
    ids;
  st

let state_results st ~retain =
  let net = st.st_net in
  let ids =
    Int_tbl.fold (fun id _ acc -> id :: acc) st.st_cells [] |> List.sort Int.compare
  in
  List.map
    (fun id ->
      let cell = Int_tbl.find st.st_cells id in
      let tables =
        arena_tables net ~tbl:cell.c_tbl ~origin_i:cell.c_origin_i
          ~slot_rel:st.st_rel_opt ~s_meta:cell.c_s_meta ~s_path:cell.c_s_path
          ~s_len:cell.c_s_len ~s_lp:cell.c_s_lp ~b_slot:cell.c_b_slot
          ~b_path:cell.c_b_path ~b_lp:cell.c_b_lp ~b_meta:cell.c_b_meta retain
      in
      {
        atom = cell.c_atom;
        tables;
        converged = cell.c_converged;
        steps = cell.c_steps;
      })
    ids

let best_at result a =
  match Asn.Map.find_opt a result.tables with
  | Some t -> t.best
  | None -> None

let reachable_count result =
  Asn.Map.fold
    (fun _ t n ->
      match t.best with
      | Some _ -> n + 1
      | None -> n)
    result.tables 0
