module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship

let log_src = Logs.Src.create "rpi.sim.engine" ~doc:"BGP propagation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

type route = {
  path : Asn.t list;
  path_len : int;
  learned_from : Asn.t option;
  rel : Relationship.t option;
  export_class : Relationship.t option;
  lp : int;
  no_up : bool;
}

type table = { candidates : route list; best : route option }

type result = {
  atom : Atom.t;
  tables : table Asn.Map.t;
  converged : bool;
  steps : int;
}

type network = {
  graph : As_graph.t;
  ases : Asn.t array;
  index : int Asn.Table.t;
  neighbors : (int * Asn.t * Relationship.t) array array;
  import_policies : Policy.import_policy array;
  transit_scopes : Asn.Set.t option array;
}

let prepare ~graph ~import ?(transit_scope = fun _ -> None) () =
  let ases = Array.of_list (As_graph.ases graph) in
  let n = Array.length ases in
  let index = Asn.Table.create (max 16 n) in
  Array.iteri (fun i a -> Asn.Table.add index a i) ases;
  let neighbors =
    Array.map
      (fun a ->
        As_graph.neighbors graph a
        |> List.map (fun (b, rel) -> (Asn.Table.find index b, b, rel))
        |> Array.of_list)
      ases
  in
  {
    graph;
    ases;
    index;
    neighbors;
    import_policies = Array.map import ases;
    transit_scopes = Array.map transit_scope ases;
  }

let graph_of net = net.graph

(* Candidate preference: higher lp, then shorter path, then smaller
   announcing neighbour, then lexicographic path — a deterministic total
   order standing in for the tie-break tail of the decision process. *)
let compare_candidates a b =
  match Int.compare b.lp a.lp with
  | 0 -> begin
      match Int.compare a.path_len b.path_len with
      | 0 -> begin
          match Option.compare Asn.compare a.learned_from b.learned_from with
          | 0 -> List.compare Asn.compare a.path b.path
          | c -> c
        end
      | c -> c
    end
  | c -> c

let route_equal a b =
  a.lp = b.lp && a.no_up = b.no_up
  && Option.equal Asn.equal a.learned_from b.learned_from
  && Option.equal Relationship.equal a.export_class b.export_class
  && List.equal Asn.equal a.path b.path

(* Would AS [holder] (holding route [r] for [atom]) export it to neighbour
   [nb] classified as [nb_rel]?  [Some tag] = yes, carrying no_up = tag. *)
let export_decision atom ~holder ~(r : route) ~nb ~nb_rel =
  let is_origin =
    match r.learned_from with
    | None -> true
    | Some _ -> false
  in
  if (not is_origin) && Asn.Set.mem holder atom.Atom.suppressed_at then None
  else begin
    let class_ok =
      if is_origin then true
      else begin
        (* The export class survives sibling hops: a peer route relayed by
           a sibling is still a peer route and must not climb again
           (valley-free discipline over sibling-transparent paths). *)
        match r.export_class with
        | Some (Relationship.Customer | Relationship.Sibling) | None -> true
        | Some (Relationship.Peer | Relationship.Provider) -> begin
            (* Peer/provider routes go to customers and siblings only. *)
            match nb_rel with
            | Relationship.Customer | Relationship.Sibling -> true
            | Relationship.Peer | Relationship.Provider -> false
          end
      end
    in
    let no_up_ok =
      (not r.no_up)
      ||
      match nb_rel with
      | Relationship.Customer | Relationship.Sibling -> true
      | Relationship.Peer | Relationship.Provider -> false
    in
    let origin_scope_ok =
      if not is_origin then true
      else begin
        match nb_rel with
        | Relationship.Customer | Relationship.Sibling -> true
        | Relationship.Peer -> not (Asn.Set.mem nb atom.Atom.withhold_peers)
        | Relationship.Provider -> begin
            match atom.Atom.provider_scope with
            | Atom.All_providers -> true
            | Atom.Only_providers set -> Asn.Set.mem nb set
          end
      end
    in
    if class_ok && no_up_ok && origin_scope_ok then
      Some (r.no_up || (is_origin && Asn.Set.mem nb atom.Atom.no_export_up))
    else None
  end

let propagate net ~retain ?(lp_overrides = []) atom =
  let { ases; index; neighbors; import_policies; transit_scopes; graph = _ } = net in
  let n = Array.length ases in
  let origin = atom.Atom.origin in
  let origin_i =
    match Asn.Table.find_opt index origin with
    | Some i -> i
    | None -> invalid_arg "Engine.propagate: origin not in graph"
  in
  (* Per-atom lp override lookup, keyed by holder*n + neighbor. *)
  let override_tbl = Hashtbl.create 16 in
  List.iter
    (fun (holder, nb, lp) ->
      match (Asn.Table.find_opt index holder, Asn.Table.find_opt index nb) with
      | Some h, Some m -> Hashtbl.replace override_tbl ((h * n) + m) lp
      | (Some _ | None), _ -> ())
    lp_overrides;
  let lp_at holder_i ~neighbor ~neighbor_i ~rel =
    match Hashtbl.find_opt override_tbl ((holder_i * n) + neighbor_i) with
    | Some lp -> lp
    | None ->
        Policy.lp_for import_policies.(holder_i) ~neighbor ~rel ~atom:atom.Atom.id
  in
  (* State: candidates.(i) maps neighbour index -> route received. *)
  let candidates : (int * route) list array = Array.make n [] in
  let best : route option array = Array.make n None in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue i =
    if not queued.(i) then begin
      queued.(i) <- true;
      Queue.push i queue
    end
  in
  let origin_route =
    {
      path = [];
      path_len = 0;
      learned_from = None;
      rel = None;
      export_class = None;
      lp = 0;
      no_up = false;
    }
  in
  enqueue origin_i;
  let steps = ref 0 in
  let cap = 200 * (n + 1) in
  let select i =
    if i = origin_i then Some origin_route
    else begin
      match candidates.(i) with
      | [] -> None
      | (_, first) :: rest ->
          Some
            (List.fold_left
               (fun acc (_, r) -> if compare_candidates r acc < 0 then r else acc)
               first rest)
    end
  in
  while (not (Queue.is_empty queue)) && !steps <= cap do
    incr steps;
    let i = Queue.pop queue in
    queued.(i) <- false;
    let holder = ases.(i) in
    let new_best = select i in
    let changed =
      match (best.(i), new_best) with
      | None, None -> false
      | Some a, Some b -> not (route_equal a b)
      | None, Some _ | Some _, None -> true
    in
    (* The origin's best never changes after initialisation, but its first
       visit must run the export step. *)
    if changed || (i = origin_i && !steps = 1) then begin
      best.(i) <- new_best;
      Array.iter
        (fun (j, nb, nb_rel) ->
          let exported =
            match new_best with
            | None -> None
            | Some r -> begin
                let transit_ok =
                  (* Intermediate selective announcement: a relayed
                     customer-class route only climbs to providers in the
                     holder's transit scope. *)
                  match (r.learned_from, nb_rel) with
                  | Some _, Relationship.Provider -> begin
                      match transit_scopes.(i) with
                      | Some scope -> Asn.Set.mem nb scope
                      | None -> true
                    end
                  | (Some _ | None), _ -> true
                in
                if not transit_ok then None
                else begin
                match export_decision atom ~holder ~r ~nb ~nb_rel with
                | None -> None
                | Some tag ->
                    (* The origin may pad its own announcement towards
                       selected neighbours (AS-path prepending). *)
                    let copies =
                      match r.learned_from with
                      | None -> 1 + Atom.prepend_count atom ~neighbor:nb
                      | Some _ -> 1
                    in
                    let path' = List.init copies (fun _ -> holder) @ r.path in
                    if List.exists (Asn.equal nb) path' then None
                    else begin
                      let back_rel = Relationship.invert nb_rel in
                      (* how nb classifies holder *)
                      let lp =
                        match back_rel with
                        | Relationship.Sibling -> begin
                            (* Siblings behave like one AS: the preference
                               assigned by the sending sibling carries over
                               (re-assigning a flat sibling value above peer
                               and provider creates DISAGREE-style
                               oscillation between mutually-preferring
                               siblings).  The origin's own route gets the
                               receiver's sibling class value. *)
                            match r.learned_from with
                            | None ->
                                lp_at j ~neighbor:holder ~neighbor_i:i ~rel:back_rel
                            | Some _ -> r.lp
                          end
                        | Relationship.Customer | Relationship.Peer
                        | Relationship.Provider ->
                            lp_at j ~neighbor:holder ~neighbor_i:i ~rel:back_rel
                      in
                      let export_class =
                        match back_rel with
                        | Relationship.Sibling -> begin
                            match r.export_class with
                            | None -> Some Relationship.Customer
                            | Some c -> Some c
                          end
                        | Relationship.Customer | Relationship.Peer
                        | Relationship.Provider ->
                            Some back_rel
                      in
                      Some
                        {
                          path = path';
                          path_len = copies + r.path_len;
                          learned_from = Some holder;
                          rel = Some back_rel;
                          export_class;
                          lp;
                          no_up = tag;
                        }
                    end
                end
              end
          in
          let old = List.assoc_opt i candidates.(j) in
          let cand_changed =
            match (old, exported) with
            | None, None -> false
            | Some a, Some b -> not (route_equal a b)
            | None, Some _ | Some _, None -> true
          in
          if cand_changed then begin
            let rest = List.remove_assoc i candidates.(j) in
            candidates.(j) <-
              (match exported with
              | Some r -> (i, r) :: rest
              | None -> rest);
            enqueue j
          end)
        neighbors.(i)
    end
  done;
  let converged = Queue.is_empty queue in
  if not converged then
    Log.warn (fun m ->
        m "propagation of atom %d did not converge within %d steps" atom.Atom.id cap);
  let tables =
    Asn.Set.fold
      (fun a acc ->
        match Asn.Table.find_opt index a with
        | None -> acc
        | Some i ->
            let cands = List.map snd candidates.(i) in
            let cands = if i = origin_i then origin_route :: cands else cands in
            let sorted = List.sort compare_candidates cands in
            Asn.Map.add a { candidates = sorted; best = best.(i) } acc)
      retain Asn.Map.empty
  in
  { atom; tables; converged; steps = !steps }

let propagate_all net ~retain ?lp_overrides atoms =
  let overrides_for =
    match lp_overrides with
    | Some f -> f
    | None -> fun _ -> []
  in
  List.map
    (fun atom ->
      propagate net ~retain ~lp_overrides:(overrides_for atom.Atom.id) atom)
    atoms

let best_at result a =
  match Asn.Map.find_opt a result.tables with
  | Some t -> t.best
  | None -> None

let reachable_count result =
  Asn.Map.fold
    (fun _ t n ->
      match t.best with
      | Some _ -> n + 1
      | None -> n)
    result.tables 0
