(** Pluggable decision processes over the engine's interned candidate
    arena.

    The solver in {!Engine} separates BGP {e mechanics} (worklist
    scheduling, loop rejection, the atom's export spec, import-preference
    resolution) from the {e decision process} (which candidate an AS
    prefers, which routes it is willing to export over an edge).  A
    decision process is a first-class module over the flat
    struct-of-arrays arena the solver already runs on — integer slots,
    interned path ids, packed class bits — so pluggability costs zero
    allocation on the hot path.

    {2 Arena contract}

    A {!ctx} is a read-only window onto the solver's live state.  Modules
    may rely on:

    - a slot [s >= 0] passed to {!S.prefer} or {!S.export_ok} is
      {e occupied}: [dc_meta.(s) >= 0];
    - [dc_meta.(s) land 7] is the export-class code ({!class_code}) and
      [dc_meta.(s) land 8] the "no export up" tag;
    - [dc_path.(s)] is an id valid in [dc_intern], [dc_len.(s)] its
      memoized length, [dc_lp.(s)] the import local preference,
      [dc_sender_asn.(s)] the announcing neighbour's AS number;
    - distinct slots offered to one [prefer] call have distinct senders.

    Modules must {e not} mutate the arrays or retain the [ctx] beyond the
    call: the solver rewrites slots in place between calls.  rpilint's
    [engine-internals] check flags construction of {!ctx} outside
    [lib/sim]. *)

module Asn = Rpi_bgp.Asn
module Path_intern = Rpi_bgp.Path_intern
module Relationship = Rpi_topo.Relationship

(** {1 Export-class codes}

    The arena stores a candidate's effective export class as a small int
    so change detection and export filtering are scalar compares. *)

val class_none : int
(** The origin's own route (no announcing neighbour). *)

val class_customer : int

val class_peer : int
val class_provider : int
val class_sibling : int

val class_code : Relationship.t option -> int
val class_decode : int -> Relationship.t option

type ctx = {
  dc_intern : Path_intern.t;  (** This propagation run's path table. *)
  dc_meta : int array;
      (** Per slot: -1 when empty, else [class lor (no_up lsl 3)]. *)
  dc_path : Path_intern.id array;  (** Interned path id per slot. *)
  dc_len : int array;  (** Memoized path length per slot. *)
  dc_lp : int array;  (** Import local preference per slot. *)
  dc_sender_asn : int array;
      (** AS number of the slot's announcing neighbour (static). *)
}

type granularity =
  | Per_as
      (** One best route per AS, exported (subject to {!S.export_ok}) to
          every neighbour — classic BGP. *)
  | Per_neighbor
      (** One best route per (AS, neighbour): each edge carries the most
          preferred candidate exportable over it — NS-BGP
          (Wang–Schapira–Rexford).  The engine keeps one selection cell
          per directed adjacency, so memory grows from one row per AS to
          one per adjacency (the [slot_base] prefix-sum layout). *)

module type S = sig
  val name : string
  (** Stable identifier; ["vanilla"] selects the engine's specialised
      fast path, byte-identical to {!Engine.propagate_reference}. *)

  val granularity : granularity

  val prefer : ctx -> int -> int -> int
  (** [prefer ctx a b < 0] when slot [a]'s candidate is preferred over
      slot [b]'s.  Must be a total order on the occupied slots of one
      receiver (distinct slots have distinct senders, so a sender-ASN
      tie-break suffices). *)

  val export_ok : ctx -> rel:Relationship.t -> int -> bool
  (** May the holder announce the candidate in the given slot to a
      neighbour it classifies as [rel]?  Slot [-1] stands for the
      origin's own (path-less, class-free) route.  Only policy gets
      decided here; mechanics (loop rejection, the atom's export spec,
      aggregation suppression, transit scope) stay with the engine. *)
end

type t = (module S)

val vanilla : t
(** Gao–Rexford: higher local preference, then shorter path, then
    deterministic tie-breaks; customer routes export everywhere, peer and
    provider routes only downhill.  The scheme the byte-identity goldens
    pin. *)

val neighbor_specific : t
(** NS-BGP: the same preference and export rules evaluated per (AS,
    neighbour).  Converges on dispute-wheel gadgets where {!vanilla}
    oscillates into the step cap. *)

val is_vanilla : t -> bool
(** By {!S.name} — replacing the module but keeping the name ["vanilla"]
    claims byte-identity with the fast path. *)

val name_of : t -> string

module Vanilla : S
(** The vanilla rules as a reusable building block: custom modules can
    delegate [prefer]/[export_ok] and change only one axis. *)
