(** Extraction of observable BGP tables from propagation results.

    Produces the two kinds of dataset the paper uses: Looking-Glass style
    tables (the full RIB of one AS, with local preference and the AS's
    community tags) and a RouteViews-style collector table (the best routes
    of every feeding peer, without local preference). *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module Ipv4 = Rpi_net.Ipv4

val next_hop_of : Asn.t -> Ipv4.t
(** Deterministic synthetic next-hop address for a neighbour
    (10.x.y.1 encoding the AS number). *)

val router_id_of : Asn.t -> router:int -> Ipv4.t
(** Synthetic router identity [router] within an AS. *)

val rib_at : policy:Policy.t -> vantage:Asn.t -> Engine.result list -> Rib.t
(** The Looking-Glass view of [vantage]: every candidate route it received,
    for every prefix of every atom, with local preference as assigned by
    its import policy and communities tagged per its community scheme.
    Routes the AS originates itself appear as [Local] routes. *)

val extend_rib_at :
  policy:Policy.t -> vantage:Asn.t -> Rib.t -> Engine.result list -> Rib.t
(** {!rib_at} folded onto an existing table instead of an empty one — the
    incremental persistence experiments remove a changed atom's stale
    routes and extend with just the re-propagated results. *)

val collector_rib : peers:Asn.t list -> Engine.result list -> Rib.t
(** RouteViews-style table: for each feeding peer, its best route per
    prefix (AS path prepended with the peer itself), no local preference.
    Origin-tagged "no-export-up" communities stay visible, as transitive
    communities do in practice. *)

val extend_collector_rib : peers:Asn.t list -> Rib.t -> Engine.result list -> Rib.t
(** {!collector_rib} folded onto an existing table — the streaming form:
    feed it one result at a time from {!Engine.iter_propagated} and the
    collector table builds up without every per-atom result being live
    at once (the way paper-scale runs must do it). *)

val no_reexport_community : origin:Asn.t -> Rpi_bgp.Community.t
(** The community marking "origin asked its provider not to re-export". *)

val router_views :
  policy:Policy.t -> vantage:Asn.t -> routers:int -> Engine.result list -> Rib.t list
(** Per-router views of one AS (the paper's 30 AT&T backbone routers):
    identical AS-level candidates and local preferences, but per-router IGP
    metrics, so routers may pick different equally-preferred exits. *)
