module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Prng = Rpi_prng.Prng

type churn = {
  p_policy_change : float;
  p_outage : float;
  p_late_start : float;
  p_early_stop : float;
  p_conditional : float;
  p_primary_down : float;
}

let monthly_churn =
  {
    p_policy_change = 0.010;
    p_outage = 0.01;
    p_late_start = 0.08;
    p_early_stop = 0.06;
    p_conditional = 0.03;
    p_primary_down = 0.03;
  }

let hourly_churn =
  {
    p_policy_change = 0.002;
    p_outage = 0.004;
    p_late_start = 0.02;
    p_early_stop = 0.015;
    p_conditional = 0.03;
    p_primary_down = 0.003;
  }

type epoch = { index : int; atoms : Atom.t list }

type delta = {
  added : Atom.t list;
  removed : Atom.t list;
  changed : (Atom.t * Atom.t) list;
}

let delta_between a b =
  let by_id atoms =
    let tbl = Hashtbl.create (List.length atoms) in
    List.iter (fun (atom : Atom.t) -> Hashtbl.replace tbl atom.Atom.id atom) atoms;
    tbl
  in
  let old_tbl = by_id a.atoms and new_tbl = by_id b.atoms in
  let added =
    List.filter (fun (atom : Atom.t) -> not (Hashtbl.mem old_tbl atom.Atom.id)) b.atoms
  in
  let removed =
    List.filter (fun (atom : Atom.t) -> not (Hashtbl.mem new_tbl atom.Atom.id)) a.atoms
  in
  let changed =
    List.filter_map
      (fun (atom : Atom.t) ->
        match Hashtbl.find_opt old_tbl atom.Atom.id with
        | Some old when not (Atom.equal old atom) -> Some (old, atom)
        | Some _ | None -> None)
      b.atoms
  in
  { added; removed; changed }

let by_atom_id (x : Atom.t) (y : Atom.t) = Int.compare x.Atom.id y.Atom.id

(* Origination events between two epochs: a withdraw per prefix that left
   the announced set, an announce per prefix of a new or re-specified atom
   (BGP replaces on re-announcement, so a changed atom needs no explicit
   withdraw first).  The updates are self-originated — [from_as] and
   [to_as] are both the origin, the path empty — because they describe
   what the origin injects, before any propagation. *)
let updates_between a b =
  let d = delta_between a b in
  let withdraw_atom (atom : Atom.t) =
    List.map
      (fun prefix -> Rpi_bgp.Update.withdraw ~from_as:atom.Atom.origin ~to_as:atom.Atom.origin prefix)
      atom.Atom.prefixes
  in
  let announce_atom (atom : Atom.t) =
    List.map
      (fun prefix ->
        let route =
          Rpi_bgp.Route.make ~prefix
            ~next_hop:(Rpi_net.Ipv4.of_int32_exn 0)
            ~as_path:Rpi_bgp.As_path.empty ~source:Rpi_bgp.Route.Local ()
        in
        Rpi_bgp.Update.announce ~from_as:atom.Atom.origin ~to_as:atom.Atom.origin route)
      atom.Atom.prefixes
  in
  (* A changed atom re-announces every current prefix; prefixes dropped
     from its list (none under [evolve], but the differ is general) are
     withdrawn explicitly. *)
  let dropped_prefix_withdraws =
    List.concat_map
      (fun ((old : Atom.t), (fresh : Atom.t)) ->
        List.filter_map
          (fun prefix ->
            if List.exists (Rpi_net.Prefix.equal prefix) fresh.Atom.prefixes then None
            else
              Some
                (Rpi_bgp.Update.withdraw ~from_as:old.Atom.origin ~to_as:old.Atom.origin
                   prefix))
          old.Atom.prefixes)
      (List.sort (fun (x, _) (y, _) -> by_atom_id x y) d.changed)
  in
  let withdraws =
    List.concat_map withdraw_atom (List.sort by_atom_id d.removed)
    @ dropped_prefix_withdraws
  in
  let announces =
    List.concat_map announce_atom
      (List.sort by_atom_id (d.added @ List.map snd d.changed))
  in
  withdraws @ announces

(* Re-sample the provider scope of [atom]: any non-empty subset of the
   origin's providers, or all of them. *)
let resample_scope rng graph (atom : Atom.t) =
  let providers = As_graph.providers graph atom.Atom.origin in
  match providers with
  | [] | [ _ ] -> { atom with Atom.provider_scope = Atom.All_providers }
  | _ :: _ :: _ ->
      if Prng.chance rng 0.4 then { atom with Atom.provider_scope = Atom.All_providers }
      else begin
        let chosen =
          List.filter (fun _ -> Prng.bool rng) providers
        in
        let chosen =
          match chosen with
          | [] -> [ Prng.choice_list rng providers ]
          | _ :: _ -> chosen
        in
        (* Keep the subset proper so the atom stays selective. *)
        let chosen =
          if List.length chosen = List.length providers then List.tl providers else chosen
        in
        { atom with Atom.provider_scope = Atom.Only_providers (Asn.Set.of_list chosen) }
      end

let evolve rng ~graph ~churn ~epochs atoms =
  if epochs < 1 then invalid_arg "Timeline.evolve: need at least one epoch";
  (* Lifetime window per atom: a minority of prefixes arrives or departs
     mid-window, spreading the uptime distribution. *)
  let lifetimes =
    List.map
      (fun (atom : Atom.t) ->
        let start =
          if Prng.chance rng churn.p_late_start then Prng.int rng epochs else 0
        in
        let stop =
          if Prng.chance rng churn.p_early_stop then
            Prng.int_in rng start (epochs - 1)
          else epochs - 1
        in
        (atom.Atom.id, (start, stop)))
      atoms
  in
  let alive id index =
    match List.assoc_opt id lifetimes with
    | Some (start, stop) -> index >= start && index <= stop
    | None -> true
  in
  (* Conditional advertisement assignments: (atom id -> primary, backup)
     scopes, fixed for the whole window. *)
  let conditionals =
    List.filter_map
      (fun (atom : Atom.t) ->
        let providers = As_graph.providers graph atom.Atom.origin in
        match providers with
        | _ :: _ :: _ when Prng.chance rng churn.p_conditional ->
            let primary = Prng.choice_list rng providers in
            let backup =
              Prng.choice_list rng
                (List.filter (fun p -> not (Asn.equal p primary)) providers)
            in
            Some (atom.Atom.id, (primary, backup))
        | _ :: _ | [] -> None)
      atoms
  in
  let conditional_scope id =
    match List.assoc_opt id conditionals with
    | Some (primary, backup) ->
        let active = if Prng.chance rng churn.p_primary_down then backup else primary in
        Some (Atom.Only_providers (Asn.Set.singleton active))
    | None -> None
  in
  let rec go index current acc =
    if index >= epochs then List.rev acc
    else begin
      let current =
        List.map
          (fun (atom : Atom.t) ->
            match conditional_scope atom.Atom.id with
            | Some scope -> { atom with Atom.provider_scope = scope }
            | None ->
                let eligible =
                  Atom.is_selective atom
                  || List.length (As_graph.providers graph atom.Atom.origin) > 1
                in
                if
                  index > 0 && eligible
                  && Prng.chance rng churn.p_policy_change
                then resample_scope rng graph atom
                else atom)
          current
      in
      let visible =
        List.filter
          (fun (atom : Atom.t) ->
            alive atom.Atom.id index && not (Prng.chance rng churn.p_outage))
          current
      in
      go (index + 1) current ({ index; atoms = visible } :: acc)
    end
  in
  go 0 atoms []
