(** The single definition of how a BGP update stream mutates a vantage's
    Adj-RIB-In, plus the codecs that make streams storable and diffable.

    Every consumer — {!State}, the from-scratch batch recompute the
    property harness checks it against, and the daemon's replay loop —
    folds updates through {!apply}, so all of them see byte-identical rib
    evolution.

    Locally originated routes (no [peer_as]) cannot be expressed by a
    plain neighbour update; the stream encodes them as updates whose
    [from_as] {e is} the vantage: such an announce inserts its route
    untouched, such a withdraw drops the local candidates
    ({!Rpi_bgp.Rib.withdraw_local}). *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Update = Rpi_bgp.Update

val apply : vantage:Asn.t -> Update.t -> Rib.t -> Rib.t
(** Fold one update into the vantage's table.  Updates from the vantage
    itself are local-route operations (see above); all others go through
    {!Rpi_bgp.Update.apply} (loop check, [peer_as] stamping).  Duplicate
    announces replace the same-session candidate and spurious withdraws
    find nothing to drop — both are no-ops on the resulting table. *)

val apply_all : vantage:Asn.t -> Update.t list -> Rib.t -> Rib.t

val diff : vantage:Asn.t -> old_rib:Rib.t -> Rib.t -> Update.t list
(** The update stream that turns [old_rib] into the new table when folded
    through {!apply}: per prefix (ascending), withdraws for vanished
    sessions, then announces for new or changed routes (sorted by
    {!Rpi_bgp.Route.compare}).  A change to the local-candidate set is one
    local withdraw plus re-announces, mirroring [withdraw_local]'s
    all-at-once semantics.  Deterministic: equal inputs yield equal
    streams. *)

val route_to_json : Rpi_bgp.Route.t -> Rpi_json.t
val route_of_json : Rpi_json.t -> (Rpi_bgp.Route.t, string) result

val update_to_json : Update.t -> Rpi_json.t
val update_of_json : Rpi_json.t -> (Update.t, string) result

val render_stream : Update.t list -> string
(** NDJSON, one update per line (the daemon's replay-file format). *)

val parse_stream : string -> (Update.t list, string) result
(** Inverse of {!render_stream}; blank lines are skipped, the first
    malformed line fails the parse with its line number. *)
