module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module Update = Rpi_bgp.Update
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4

let apply ~vantage (u : Update.t) rib =
  if Asn.equal u.Update.from_as vantage then begin
    match u.Update.payload with
    | Update.Announce route -> Rib.add_route route rib
    | Update.Withdraw prefix -> Rib.withdraw_local prefix rib
  end
  else Update.apply u rib

let apply_all ~vantage updates rib =
  List.fold_left (fun rib u -> apply ~vantage u rib) rib updates

let is_local (r : Route.t) = Option.is_none r.Route.peer_as

let session_equal (a : Route.t) (b : Route.t) =
  Option.equal Asn.equal a.Route.peer_as b.Route.peer_as
  && Ipv4.equal a.Route.router_id b.Route.router_id

(* An announce that round-trips through [apply]: peered routes are sent
   from their peer (Update.apply re-stamps [peer_as] from the sender),
   local routes from the vantage itself. *)
let announce_of_route ~vantage (r : Route.t) =
  match r.Route.peer_as with
  | Some peer -> Update.announce ~from_as:peer ~to_as:vantage r
  | None -> Update.announce ~from_as:vantage ~to_as:vantage r

let diff ~vantage ~old_rib new_rib =
  let prefixes =
    List.sort_uniq Prefix.compare (Rib.prefixes old_rib @ Rib.prefixes new_rib)
  in
  List.concat_map
    (fun prefix ->
      let olds = Rib.candidates old_rib prefix in
      let news = Rib.candidates new_rib prefix in
      let old_locals = List.filter is_local olds in
      let new_locals = List.filter is_local news in
      let locals_changed =
        not
          (List.equal Route.equal
             (List.sort Route.compare old_locals)
             (List.sort Route.compare new_locals))
      in
      (* [Rib.withdraw_local] drops every local candidate at once, so a
         local change withdraws the lot and re-announces the new set. *)
      let local_withdraws =
        if locals_changed && old_locals <> [] then
          [ Update.withdraw ~from_as:vantage ~to_as:vantage prefix ]
        else []
      in
      let local_announces = if locals_changed then new_locals else [] in
      let peer_withdraws =
        List.filter_map
          (fun (o : Route.t) ->
            match o.Route.peer_as with
            | None -> None
            | Some peer ->
                if List.exists (session_equal o) news then None
                else Some (Update.withdraw ~from_as:peer ~to_as:vantage prefix))
          (List.sort Route.compare olds)
      in
      let peer_announces =
        List.filter
          (fun (n : Route.t) ->
            (not (is_local n))
            && not (List.exists (fun o -> session_equal o n && Route.equal o n) olds))
          news
      in
      let announces =
        List.map (announce_of_route ~vantage)
          (List.sort Route.compare (local_announces @ peer_announces))
      in
      local_withdraws @ peer_withdraws @ announces)
    prefixes

(* --- NDJSON codec ------------------------------------------------- *)

let source_to_string = function
  | Route.Ebgp -> "ebgp"
  | Route.Ibgp -> "ibgp"
  | Route.Local -> "local"

let source_of_string = function
  | "ebgp" -> Ok Route.Ebgp
  | "ibgp" -> Ok Route.Ibgp
  | "local" -> Ok Route.Local
  | s -> Error (Printf.sprintf "unknown route source %S" s)

let route_to_json (r : Route.t) =
  let base =
    [
      ("prefix", Rpi_json.String (Prefix.to_string r.Route.prefix));
      ("next_hop", Rpi_json.String (Ipv4.to_string r.Route.next_hop));
      ("as_path", Rpi_json.String (As_path.to_string r.Route.as_path));
      ("origin", Rpi_json.String (Route.origin_to_string r.Route.origin));
      ("source", Rpi_json.String (source_to_string r.Route.source));
      ("igp_metric", Rpi_json.Int r.Route.igp_metric);
      ("router_id", Rpi_json.String (Ipv4.to_string r.Route.router_id));
    ]
  in
  let opt name f = function
    | Some v -> [ (name, f v) ]
    | None -> []
  in
  Rpi_json.Obj
    (base
    @ opt "local_pref" (fun v -> Rpi_json.Int v) r.Route.local_pref
    @ opt "med" (fun v -> Rpi_json.Int v) r.Route.med
    @ opt "peer_as" (fun a -> Rpi_json.Int (Asn.to_int a)) r.Route.peer_as
    @
    if Community.Set.is_empty r.Route.communities then []
    else
      [ ("communities", Rpi_json.String (Community.Set.to_string r.Route.communities)) ]
    )

let field name = function
  | Rpi_json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_field name json =
  match field name json with
  | Some (Rpi_json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let int_field name json =
  match field name json with
  | Some (Rpi_json.Int n) -> Ok n
  | Some _ -> Error (Printf.sprintf "field %S is not an int" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let opt_int_field name json =
  match field name json with
  | Some (Rpi_json.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S is not an int" name)
  | None -> Ok None

let route_of_json json =
  let ( let* ) = Result.bind in
  let* prefix = Result.bind (string_field "prefix" json) Prefix.of_string in
  let* next_hop = Result.bind (string_field "next_hop" json) Ipv4.of_string in
  let* as_path = Result.bind (string_field "as_path" json) As_path.of_string in
  let* origin = Result.bind (string_field "origin" json) Route.origin_of_string in
  let* source = Result.bind (string_field "source" json) source_of_string in
  let* igp_metric = int_field "igp_metric" json in
  let* router_id = Result.bind (string_field "router_id" json) Ipv4.of_string in
  let* local_pref = opt_int_field "local_pref" json in
  let* med = opt_int_field "med" json in
  let* peer_as = opt_int_field "peer_as" json in
  let* communities =
    match field "communities" json with
    | Some (Rpi_json.String s) -> Community.Set.of_string s
    | Some _ -> Error "field \"communities\" is not a string"
    | None -> Ok Community.Set.empty
  in
  Ok
    (Route.make ~prefix ~next_hop ~as_path ~origin ?local_pref ?med ~communities
       ~source ~igp_metric ~router_id
       ?peer_as:(Option.map Asn.of_int peer_as)
       ())

let update_to_json (u : Update.t) =
  let head kind =
    [
      ("type", Rpi_json.String kind);
      ("from", Rpi_json.Int (Asn.to_int u.Update.from_as));
      ("to", Rpi_json.Int (Asn.to_int u.Update.to_as));
    ]
  in
  match u.Update.payload with
  | Update.Announce r -> Rpi_json.Obj (head "announce" @ [ ("route", route_to_json r) ])
  | Update.Withdraw p ->
      Rpi_json.Obj (head "withdraw" @ [ ("prefix", Rpi_json.String (Prefix.to_string p)) ])

let update_of_json json =
  let ( let* ) = Result.bind in
  let* kind = string_field "type" json in
  let* from_as = Result.map Asn.of_int (int_field "from" json) in
  let* to_as = Result.map Asn.of_int (int_field "to" json) in
  match kind with
  | "announce" -> begin
      match field "route" json with
      | Some route_json ->
          let* route = route_of_json route_json in
          Ok (Update.announce ~from_as ~to_as route)
      | None -> Error "announce without \"route\""
    end
  | "withdraw" ->
      let* prefix = Result.bind (string_field "prefix" json) Prefix.of_string in
      Ok (Update.withdraw ~from_as ~to_as prefix)
  | other -> Error (Printf.sprintf "unknown update type %S" other)

let render_stream updates =
  String.concat ""
    (List.map (fun u -> Rpi_json.to_string (update_to_json u) ^ "\n") updates)

let parse_stream text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if String.equal line "" then go (lineno + 1) acc rest
        else begin
          match Result.bind (Rpi_json.of_string line) update_of_json with
          | Ok u -> go (lineno + 1) (u :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        end
  in
  go 1 [] lines
