module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module Update = Rpi_bgp.Update
module Decision = Rpi_bgp.Decision
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Paths = Rpi_topo.Paths
module Prefix = Rpi_net.Prefix
module Export_infer = Rpi_core.Export_infer
module Import_infer = Rpi_core.Import_infer
module Peer_export = Rpi_core.Peer_export

type origin_mode = Derived | Fixed of (Asn.t * Prefix.t list) list

(* Everything the reports need to know about one prefix, recomputed only
   when an update touches the prefix.  [compute_entry] is the sole writer,
   so an entry is always the batch algorithms' verdicts for the current
   candidate set. *)
type entry = {
  e_class : Export_infer.prefix_class;
  e_best_origin : Asn.t option;
  e_verdict : Import_infer.prefix_verdict;
  e_obs : (Relationship.t * int) list;  (** import (class, local-pref) pairs *)
  e_origins : Asn.t list;  (** distinct origin ASs among candidates *)
  e_direct : Asn.t list;  (** origins also seen with themselves as next hop *)
  e_sessions : (Asn.t * int) list;  (** routes per feeding neighbour *)
  e_nroutes : int;
}

type stats = {
  prefixes : int;
  routes : int;
  origin_ases : int;
  feeding_sessions : int;
}

type counters = {
  updates_applied : int;
  refreshes : int;
  prefixes_recomputed : int;
  dirty_pairs : int;
}

type t = {
  graph : As_graph.t;
  vantage : Asn.t;
  origins : origin_mode ref;
  lock : Mutex.t;
  rib : Rib.t ref;
  entries : (Prefix.t, entry) Hashtbl.t;
  dirty : (Prefix.t, Asn.Set.t) Hashtbl.t;
      (** The invalidation frontier: (prefix, next-hop AS) pairs touched
          by updates since the last refresh. *)
  generation : int ref;  (** bumped per applied update *)
  (* aggregates, maintained subtract-old/add-new on entry replacement *)
  route_total : int ref;
  best_origin_count : int Asn.Table.t;  (** prefixes per best-route origin *)
  session_count : int Asn.Table.t;  (** routes per feeding neighbour *)
  own_count : int Asn.Table.t;  (** prefixes originated per AS *)
  direct_count : int Asn.Table.t;  (** of those, announced directly *)
  imp_compared : int ref;
  imp_typical : int ref;
  imp_atypical : int ref;
  class_value_count : (int * int, int) Hashtbl.t;
      (** observations per (relationship rank, local-pref) *)
  customer_memo : bool Asn.Table.t;  (** Paths.is_customer, graph is fixed *)
  (* memoized report materializations, keyed by generation *)
  memo_sa : (int * Export_infer.report) option ref;
  memo_import : (int * Import_infer.report) option ref;
  memo_peer : (int * Peer_export.report) option ref;
  memo_stats : (int * stats) option ref;
  (* observability *)
  n_applied : int ref;
  n_refreshes : int ref;
  n_recomputed : int ref;
}

let bump tbl key delta =
  let v = delta + Option.value ~default:0 (Asn.Table.find_opt tbl key) in
  if v = 0 then Asn.Table.remove tbl key else Asn.Table.replace tbl key v

let count_of tbl key = Option.value ~default:0 (Asn.Table.find_opt tbl key)

let is_customer t origin =
  match Asn.Table.find_opt t.customer_memo origin with
  | Some b -> b
  | None ->
      let b = Paths.is_customer t.graph ~provider:t.vantage origin in
      Asn.Table.replace t.customer_memo origin b;
      b

let compute_entry t prefix =
  match Rib.candidates !(t.rib) prefix with
  | [] -> None
  | routes ->
      let best = Decision.select_best routes in
      let e_best_origin = Option.bind best Route.origin_as in
      let e_class = Export_infer.classify_prefix t.graph ~provider:t.vantage !(t.rib) prefix in
      let obs = Import_infer.observations_for t.graph ~vantage:t.vantage !(t.rib) prefix in
      let e_obs =
        List.map
          (fun (o : Import_infer.observation) ->
            (o.Import_infer.rel, o.Import_infer.local_pref))
          obs
      in
      let e_verdict = Import_infer.judge obs in
      let origins_of =
        List.filter_map (fun r -> Route.origin_as r) routes
        |> List.sort_uniq Asn.compare
      in
      let e_direct =
        List.filter
          (fun origin ->
            List.exists
              (fun r ->
                Option.equal Asn.equal (Route.origin_as r) (Some origin)
                && Option.equal Asn.equal (Route.next_hop_as r) (Some origin))
              routes)
          origins_of
      in
      let e_sessions =
        List.fold_left
          (fun acc (r : Route.t) ->
            match r.Route.peer_as with
            | None -> acc
            | Some peer -> begin
                match List.assoc_opt peer acc with
                | Some n ->
                    (peer, n + 1) :: List.filter (fun (p, _) -> not (Asn.equal p peer)) acc
                | None -> (peer, 1) :: acc
              end)
          [] routes
      in
      Some
        {
          e_class;
          e_best_origin;
          e_verdict;
          e_obs;
          e_origins = origins_of;
          e_direct;
          e_sessions;
          e_nroutes = List.length routes;
        }

(* Add ([sign] = 1) or retire ([sign] = -1) one entry's contribution to
   every aggregate.  Symmetry here is the whole invariant: an entry leaves
   the aggregates exactly as it entered them. *)
let account t sign entry =
  t.route_total := !(t.route_total) + (sign * entry.e_nroutes);
  Option.iter (fun origin -> bump t.best_origin_count origin sign) entry.e_best_origin;
  List.iter (fun (peer, n) -> bump t.session_count peer (sign * n)) entry.e_sessions;
  List.iter (fun origin -> bump t.own_count origin sign) entry.e_origins;
  List.iter (fun origin -> bump t.direct_count origin sign) entry.e_direct;
  (match entry.e_verdict with
  | Import_infer.Typical ->
      t.imp_compared := !(t.imp_compared) + sign;
      t.imp_typical := !(t.imp_typical) + sign
  | Import_infer.Atypical ->
      t.imp_compared := !(t.imp_compared) + sign;
      t.imp_atypical := !(t.imp_atypical) + sign
  | Import_infer.Incomparable -> ());
  List.iter
    (fun (rel, lp) ->
      let key = (Relationship.rank rel, lp) in
      let v = sign + Option.value ~default:0 (Hashtbl.find_opt t.class_value_count key) in
      if v = 0 then Hashtbl.remove t.class_value_count key
      else Hashtbl.replace t.class_value_count key v)
    entry.e_obs

let refresh t =
  if Hashtbl.length t.dirty > 0 then begin
    let prefixes = Hashtbl.fold (fun p _ acc -> p :: acc) t.dirty [] in
    List.iter
      (fun prefix ->
        (match Hashtbl.find_opt t.entries prefix with
        | Some old ->
            account t (-1) old;
            Hashtbl.remove t.entries prefix
        | None -> ());
        match compute_entry t prefix with
        | Some entry ->
            account t 1 entry;
            Hashtbl.replace t.entries prefix entry
        | None -> ())
      prefixes;
    t.n_recomputed := !(t.n_recomputed) + List.length prefixes;
    t.n_refreshes := !(t.n_refreshes) + 1;
    Hashtbl.reset t.dirty
  end

let create ~graph ~vantage ?(origins = Derived) ?(initial = Rib.empty) () =
  let t =
    {
      graph;
      vantage;
      origins = ref origins;
      lock = Mutex.create ();
      rib = ref initial;
      entries = Hashtbl.create 1024;
      dirty = Hashtbl.create 64;
      generation = ref 0;
      route_total = ref 0;
      best_origin_count = Asn.Table.create 256;
      session_count = Asn.Table.create 64;
      own_count = Asn.Table.create 256;
      direct_count = Asn.Table.create 256;
      imp_compared = ref 0;
      imp_typical = ref 0;
      imp_atypical = ref 0;
      class_value_count = Hashtbl.create 32;
      customer_memo = Asn.Table.create 256;
      memo_sa = ref None;
      memo_import = ref None;
      memo_peer = ref None;
      memo_stats = ref None;
      n_applied = ref 0;
      n_refreshes = ref 0;
      n_recomputed = ref 0;
    }
  in
  List.iter (fun p -> Hashtbl.replace t.dirty p Asn.Set.empty) (Rib.prefixes initial);
  t

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let mark_dirty t prefix ~next_hop =
  let hops = Option.value ~default:Asn.Set.empty (Hashtbl.find_opt t.dirty prefix) in
  Hashtbl.replace t.dirty prefix (Asn.Set.add next_hop hops)

let apply_locked t (u : Update.t) =
  t.rib := Feed.apply ~vantage:t.vantage u !(t.rib);
  mark_dirty t (Update.prefix u) ~next_hop:u.Update.from_as;
  t.generation := !(t.generation) + 1;
  t.n_applied := !(t.n_applied) + 1

let apply t u = locked t (fun () -> apply_locked t u)

let apply_all t updates =
  locked t (fun () -> List.iter (fun u -> apply_locked t u) updates)

let rib t = locked t (fun () -> !(t.rib))
let generation t = locked t (fun () -> !(t.generation))

let stats t =
  locked t (fun () ->
      match !(t.memo_stats) with
      | Some (g, s) when g = !(t.generation) -> s
      | Some _ | None ->
          refresh t;
          let s =
            {
              prefixes = Hashtbl.length t.entries;
              routes = !(t.route_total);
              origin_ases = Asn.Table.length t.best_origin_count;
              feeding_sessions = Asn.Table.length t.session_count;
            }
          in
          t.memo_stats := Some (!(t.generation), s);
          s)

(* Rebuild [Export_infer.analyze]'s report from cached per-prefix
   classifications: same origin-group iteration, same counters, same sa
   order — but no per-prefix decision process and no customer DFS. *)
let materialize_sa t origins =
  let customers_seen = ref 0 in
  let customer_prefixes = ref 0 in
  let sa = ref [] in
  let customer_routed = ref 0 in
  let unreachable = ref 0 in
  List.iter
    (fun (origin, prefixes) ->
      if (not (Asn.equal origin t.vantage)) && is_customer t origin then begin
        incr customers_seen;
        List.iter
          (fun prefix ->
            incr customer_prefixes;
            let klass =
              match Hashtbl.find_opt t.entries prefix with
              | Some entry -> entry.e_class
              | None -> Export_infer.Unreachable
            in
            match klass with
            | Export_infer.Customer_route -> incr customer_routed
            | Export_infer.Unreachable -> incr unreachable
            | Export_infer.Sa_prefix { next_hop; via } ->
                sa :=
                  { Export_infer.prefix; origin; next_hop; via } :: !sa)
          prefixes
      end)
    origins;
  let sa = List.rev !sa in
  {
    Export_infer.provider = t.vantage;
    customers_seen = !customers_seen;
    customer_prefixes = !customer_prefixes;
    sa;
    customer_routed = !customer_routed;
    unreachable = !unreachable;
    pct_sa =
      (if !customer_prefixes = 0 then 0.0
       else
         100.0 *. float_of_int (List.length sa) /. float_of_int !customer_prefixes);
  }

(* [Export_infer.origins_of_rib] from the entry cache: prefixes grouped by
   the best route's origin in table-iteration order, groups ascending. *)
let derived_origins t =
  let by_origin = Asn.Table.create 256 in
  Rib.iter
    (fun prefix _ ->
      match Hashtbl.find_opt t.entries prefix with
      | Some { e_best_origin = Some origin; _ } ->
          let existing = Option.value ~default:[] (Asn.Table.find_opt by_origin origin) in
          Asn.Table.replace by_origin origin (prefix :: existing)
      | Some { e_best_origin = None; _ } | None -> ())
    !(t.rib);
  Asn.Table.fold (fun origin prefixes acc -> (origin, List.rev prefixes) :: acc) by_origin []
  |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)

let sa_report t =
  locked t (fun () ->
      match !(t.memo_sa) with
      | Some (g, r) when g = !(t.generation) -> r
      | Some _ | None ->
          refresh t;
          let origins =
            match !(t.origins) with
            | Fixed origins -> origins
            | Derived -> derived_origins t
          in
          let r = materialize_sa t origins in
          t.memo_sa := Some (!(t.generation), r);
          r)

let sa_status t prefix =
  locked t (fun () ->
      refresh t;
      match Hashtbl.find_opt t.entries prefix with
      | Some entry -> entry.e_class
      | None -> Export_infer.Unreachable)

let import_report t =
  locked t (fun () ->
      match !(t.memo_import) with
      | Some (g, r) when g = !(t.generation) -> r
      | Some _ | None ->
          refresh t;
          let class_values =
            List.map
              (fun rel ->
                let rank = Relationship.rank rel in
                let vs =
                  Hashtbl.fold
                    (fun (r, lp) n acc -> if r = rank && n > 0 then lp :: acc else acc)
                    t.class_value_count []
                  |> List.sort_uniq Int.compare
                in
                (rel, vs))
              Relationship.all
            |> List.filter (fun (_, vs) -> vs <> [])
          in
          let compared = !(t.imp_compared) in
          let r =
            {
              Import_infer.vantage = t.vantage;
              prefixes_total = Hashtbl.length t.entries;
              prefixes_compared = compared;
              typical = !(t.imp_typical);
              atypical = !(t.imp_atypical);
              pct_typical =
                (if compared = 0 then 100.0
                 else 100.0 *. float_of_int !(t.imp_typical) /. float_of_int compared);
              class_values;
            }
          in
          t.memo_import := Some (!(t.generation), r);
          r)

let peer_report t =
  locked t (fun () ->
      match !(t.memo_peer) with
      | Some (g, r) when g = !(t.generation) -> r
      | Some _ | None ->
          refresh t;
          let profiles =
            List.filter_map
              (fun peer ->
                let own = count_of t.own_count peer in
                let direct = count_of t.direct_count peer in
                if own = 0 then None
                else
                  Some
                    {
                      Peer_export.peer;
                      own_prefixes = own;
                      direct;
                      announces_all = direct = own;
                    })
              (As_graph.peers t.graph t.vantage)
          in
          let peers_total = List.length profiles in
          let peers_announcing =
            List.length (List.filter (fun p -> p.Peer_export.announces_all) profiles)
          in
          let r =
            {
              Peer_export.vantage = t.vantage;
              peers = profiles;
              peers_total;
              peers_announcing;
              pct_announcing =
                (if peers_total = 0 then 100.0
                 else
                   100.0 *. float_of_int peers_announcing /. float_of_int peers_total);
            }
          in
          t.memo_peer := Some (!(t.generation), r);
          r)

let origin_groups t =
  locked t (fun () ->
      refresh t;
      derived_origins t)

let set_origins t origins =
  locked t (fun () ->
      t.origins := origins;
      (* Only the SA view reads the origin universe. *)
      t.memo_sa := None)

let counters t =
  locked t (fun () ->
      {
        updates_applied = !(t.n_applied);
        refreshes = !(t.n_refreshes);
        prefixes_recomputed = !(t.n_recomputed);
        dirty_pairs = Hashtbl.fold (fun _ hops n -> n + max 1 (Asn.Set.cardinal hops)) t.dirty 0;
      })

let vantage t = t.vantage
let graph t = t.graph
