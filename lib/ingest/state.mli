(** Incremental policy inference over a streaming Adj-RIB-In.

    A state holds one vantage's table plus a per-prefix cache of every
    verdict the batch algorithms ({!Rpi_core.Export_infer.analyze},
    {!Rpi_core.Import_infer.analyze}, {!Rpi_core.Peer_export.analyze},
    table summary stats) would derive for that prefix.  Updates do not
    recompute anything: they fold into the rib and record a
    (prefix, next-hop AS) pair in the {e dirty set}.  The first report
    request after a batch of updates refreshes only the dirty prefixes —
    retiring each stale entry's contribution from the aggregate counters
    and adding the fresh one's — then materializes the report from cached
    verdicts.  Reports are memoized per generation, so repeated queries
    between updates are cache hits.

    Invariants (see DESIGN.md):
    - a prefix's cached verdicts depend only on that prefix's candidate
      set and the (immutable) AS graph, so dirty-prefix granularity is
      exact, never approximate;
    - entry accounting is symmetric: an entry retires from every
      aggregate exactly what it added, so counter drift is impossible;
    - materialized reports are byte-identical (through
      {!Rpi_json}/{!Render}) to the batch recompute over the same table —
      the [incremental_matches_batch] property enforces this.

    All operations are thread-safe (internal mutex): the daemon queries a
    state from server domains while the replay loop applies updates. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix

type origin_mode =
  | Derived
      (** Group prefixes by best-route origin from the table itself, as
          {!Rpi_core.Export_infer.origins_of_rib} does. *)
  | Fixed of (Asn.t * Prefix.t list) list
      (** Analyze against an externally supplied origin universe (the
          collector's, in the experiments): prefixes absent from the
          table count as unreachable. *)

type t

val create :
  graph:Rpi_topo.As_graph.t ->
  vantage:Asn.t ->
  ?origins:origin_mode ->
  ?initial:Rib.t ->
  unit ->
  t
(** [origins] defaults to [Derived]; [initial] (default empty) seeds the
    table, with every seeded prefix dirty. *)

val apply : t -> Rpi_bgp.Update.t -> unit
(** Fold one update through {!Feed.apply} and mark its prefix dirty.
    O(rib insert) — no inference runs here. *)

val apply_all : t -> Rpi_bgp.Update.t list -> unit

val rib : t -> Rib.t
val vantage : t -> Asn.t

val graph : t -> Rpi_topo.As_graph.t
(** The immutable AS graph this state infers against (no lock needed —
    the graph never changes after {!create}).  Snapshot publishers pair
    it with {!rib} to re-derive per-prefix verdicts outside the state's
    mutex. *)

val generation : t -> int
(** Applied-update count; bumps on every {!apply}. *)

type stats = {
  prefixes : int;
  routes : int;
  origin_ases : int;  (** distinct best-route origins *)
  feeding_sessions : int;  (** distinct neighbour ASs over all candidates *)
}

val stats : t -> stats
(** The [bgptool stats] summary, from aggregates. *)

val sa_report : t -> Rpi_core.Export_infer.report
(** The Fig. 4 SA analysis with this state's vantage as the provider,
    equal to [Export_infer.analyze graph ~provider:vantage ~origins rib]
    for the current table. *)

val sa_status : t -> Prefix.t -> Rpi_core.Export_infer.prefix_class
(** One prefix's classification (absent prefixes are unreachable). *)

val import_report : t -> Rpi_core.Import_infer.report
(** Equal to [Import_infer.analyze graph ~vantage rib]. *)

val peer_report : t -> Rpi_core.Peer_export.report
(** Equal to [Peer_export.analyze graph ~vantage rib] (the reference
    universe is the state's own table). *)

val origin_groups : t -> (Asn.t * Prefix.t list) list
(** The [Derived] origin universe of the current table, equal to
    [Export_infer.origins_of_rib (rib t)] — what a collector state feeds
    to per-vantage states as their [Fixed] origins. *)

val set_origins : t -> origin_mode -> unit
(** Swap the origin universe (the replay loop does this per epoch as the
    collector's origins evolve).  Invalidates only the SA memo. *)

type counters = {
  updates_applied : int;
  refreshes : int;  (** dirty-set flushes *)
  prefixes_recomputed : int;  (** total entries rebuilt across refreshes *)
  dirty_pairs : int;  (** (prefix, next-hop) pairs currently pending *)
}

val counters : t -> counters
