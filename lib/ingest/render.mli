(** The one place report JSON is shaped.  [bgptool stats]/[bgptool sa],
    the rpiserved responses and the property harness's batch recompute all
    render through these functions, so "byte-identical" across them is a
    property of the code structure, not of test coverage. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix

val stats :
  prefixes:int -> routes:int -> origin_ases:int -> feeding_sessions:int -> Rpi_json.t

val stats_of_rib : Rib.t -> Rpi_json.t
(** Batch path: count from the table (what [bgptool stats --json] emits). *)

val stats_of_state : State.t -> Rpi_json.t
(** Incremental path: read the state's aggregates. *)

val sa : viewpoint:string -> Rpi_core.Export_infer.report -> Rpi_json.t
(** The [bgptool sa --json] object; [viewpoint] labels how the table was
    narrowed (["own-feed"], ["multi-feed-fallback"], ["live"]). *)

val sa_status :
  provider:Asn.t -> prefix:Prefix.t -> Rpi_core.Export_infer.prefix_class -> Rpi_json.t
(** One prefix's classification: status ["customer-route"],
    ["unreachable"], or ["selective"] with [next_hop]/[via]. *)

val import_pref : Rpi_core.Import_infer.report -> Rpi_json.t
val peer_export : Rpi_core.Peer_export.report -> Rpi_json.t
