module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module Prefix = Rpi_net.Prefix
module Relationship = Rpi_topo.Relationship
module Export_infer = Rpi_core.Export_infer
module Import_infer = Rpi_core.Import_infer
module Peer_export = Rpi_core.Peer_export

let stats ~prefixes ~routes ~origin_ases ~feeding_sessions =
  Rpi_json.Obj
    [
      ("prefixes", Rpi_json.Int prefixes);
      ("routes", Rpi_json.Int routes);
      ("origin_ases", Rpi_json.Int origin_ases);
      ("feeding_sessions", Rpi_json.Int feeding_sessions);
    ]

let stats_of_rib rib =
  let origins = Export_infer.origins_of_rib rib in
  let peers =
    Rib.fold
      (fun _ routes acc ->
        List.fold_left
          (fun acc (r : Route.t) ->
            match r.Route.peer_as with
            | Some p -> Asn.Set.add p acc
            | None -> acc)
          acc routes)
      rib Asn.Set.empty
  in
  stats ~prefixes:(Rib.prefix_count rib) ~routes:(Rib.route_count rib)
    ~origin_ases:(List.length origins)
    ~feeding_sessions:(Asn.Set.cardinal peers)

let stats_of_state state =
  let s = State.stats state in
  stats ~prefixes:s.State.prefixes ~routes:s.State.routes
    ~origin_ases:s.State.origin_ases ~feeding_sessions:s.State.feeding_sessions

let sa ~viewpoint (report : Export_infer.report) =
  Rpi_json.Obj
    [
      ("provider", Rpi_json.String (Asn.to_label report.Export_infer.provider));
      ("viewpoint", Rpi_json.String viewpoint);
      ("customers_seen", Rpi_json.Int report.Export_infer.customers_seen);
      ("customer_prefixes", Rpi_json.Int report.Export_infer.customer_prefixes);
      ("sa_count", Rpi_json.Int (List.length report.Export_infer.sa));
      ("pct_sa", Rpi_json.Float report.Export_infer.pct_sa);
      ( "sa",
        Rpi_json.List
          (List.map
             (fun (r : Export_infer.sa_record) ->
               Rpi_json.Obj
                 [
                   ("prefix", Rpi_json.String (Prefix.to_string r.Export_infer.prefix));
                   ("origin", Rpi_json.String (Asn.to_label r.Export_infer.origin));
                   ( "via",
                     Rpi_json.String (Relationship.to_string r.Export_infer.via) );
                   ("next_hop", Rpi_json.String (Asn.to_label r.Export_infer.next_hop));
                 ])
             report.Export_infer.sa) );
    ]

let sa_status ~provider ~prefix klass =
  let base =
    [
      ("provider", Rpi_json.String (Asn.to_label provider));
      ("prefix", Rpi_json.String (Prefix.to_string prefix));
    ]
  in
  Rpi_json.Obj
    (base
    @
    match klass with
    | Export_infer.Customer_route -> [ ("status", Rpi_json.String "customer-route") ]
    | Export_infer.Unreachable -> [ ("status", Rpi_json.String "unreachable") ]
    | Export_infer.Sa_prefix { next_hop; via } ->
        [
          ("status", Rpi_json.String "selective");
          ("next_hop", Rpi_json.String (Asn.to_label next_hop));
          ("via", Rpi_json.String (Relationship.to_string via));
        ])

let import_pref (report : Import_infer.report) =
  Rpi_json.Obj
    [
      ("vantage", Rpi_json.String (Asn.to_label report.Import_infer.vantage));
      ("prefixes_total", Rpi_json.Int report.Import_infer.prefixes_total);
      ("prefixes_compared", Rpi_json.Int report.Import_infer.prefixes_compared);
      ("typical", Rpi_json.Int report.Import_infer.typical);
      ("atypical", Rpi_json.Int report.Import_infer.atypical);
      ("pct_typical", Rpi_json.Float report.Import_infer.pct_typical);
      ( "class_values",
        Rpi_json.Obj
          (List.map
             (fun (rel, values) ->
               ( Relationship.to_string rel,
                 Rpi_json.List (List.map (fun v -> Rpi_json.Int v) values) ))
             report.Import_infer.class_values) );
    ]

let peer_export (report : Peer_export.report) =
  Rpi_json.Obj
    [
      ("vantage", Rpi_json.String (Asn.to_label report.Peer_export.vantage));
      ("peers_total", Rpi_json.Int report.Peer_export.peers_total);
      ("peers_announcing", Rpi_json.Int report.Peer_export.peers_announcing);
      ("pct_announcing", Rpi_json.Float report.Peer_export.pct_announcing);
      ( "peers",
        Rpi_json.List
          (List.map
             (fun (p : Peer_export.peer_profile) ->
               Rpi_json.Obj
                 [
                   ("peer", Rpi_json.String (Asn.to_label p.Peer_export.peer));
                   ("own_prefixes", Rpi_json.Int p.Peer_export.own_prefixes);
                   ("direct", Rpi_json.Int p.Peer_export.direct);
                   ("announces_all", Rpi_json.Bool p.Peer_export.announces_all);
                 ])
             report.Peer_export.peers) );
    ]
