module Prng = Rpi_prng.Prng
module Asn = Rpi_bgp.Asn
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Route = Rpi_bgp.Route
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module Rpsl = Rpi_irr.Rpsl
module Table = Rpi_stats.Table
module Scenario = Rpi_dataset.Scenario

let asn rng = Asn.of_int (Prng.int_in rng 1 65535)

let prefix rng = Prefix.random rng ~min_len:8 ~max_len:28

let as_path rng =
  let hops = Prng.int rng 6 in
  let seq = List.init hops (fun _ -> asn rng) in
  let segments =
    let seq_segments = if seq = [] then [] else [ As_path.Seq seq ] in
    if hops > 0 && Prng.chance rng 0.15 then begin
      let members = List.init (Prng.int_in rng 1 3) (fun _ -> asn rng) in
      seq_segments @ [ As_path.Set (Asn.Set.of_list members) ]
    end
    else seq_segments
  in
  As_path.of_segments segments

let communities rng =
  let n = Prng.int rng 3 in
  let base =
    List.init n (fun _ -> Community.make (asn rng) (Prng.int rng 1000))
  in
  let base = if Prng.chance rng 0.1 then Community.no_export :: base else base in
  Community.Set.of_list base

let route rng ~index =
  let path = as_path rng in
  let next_hop = Ipv4.of_octets 10 (index lsr 8 land 0xff) (index land 0xff) 1 in
  let local_pref = if Prng.bool rng then None else Some (Prng.int_in rng 50 200) in
  let med = if Prng.bool rng then None else Some (Prng.int rng 500) in
  Route.make ~prefix:(prefix rng) ~next_hop ~as_path:path
    ~origin:(Prng.choice rng [| Route.Igp; Route.Egp; Route.Incomplete |])
    ?local_pref ?med ~communities:(communities rng) ~router_id:next_hop
    ?peer_as:(As_path.first_hop path) ()

let rib rng =
  let n_prefixes = Prng.int_in rng 1 12 in
  let index = ref 0 in
  let routes =
    List.concat_map
      (fun _ ->
        let p = prefix rng in
        List.init (Prng.int_in rng 1 4) (fun _ ->
            incr index;
            { (route rng ~index:!index) with Route.prefix = p }))
      (List.init n_prefixes Fun.id)
  in
  Rib.of_routes routes

let tables rng =
  let n = Prng.int_in rng 1 4 in
  List.init n (fun i -> (Asn.of_int (100 + (i * 137) + Prng.int rng 100), rib rng))

let registry_name rng =
  let len = Prng.int_in rng 3 10 in
  String.init len (fun _ ->
      Prng.choice rng [| 'A'; 'B'; 'C'; 'N'; 'E'; 'T'; '0'; '3'; '7'; '-' |])

let filter_expr rng =
  match Prng.int rng 3 with
  | 0 -> "ANY"
  | 1 -> Printf.sprintf "AS%d" (Prng.int_in rng 1 65535)
  | _ -> Printf.sprintf "AS-%s" (registry_name rng)

let aut_num rng =
  let imports =
    List.init (Prng.int rng 4) (fun _ ->
        {
          Rpsl.from_as = asn rng;
          pref = (if Prng.bool rng then Some (Prng.int rng 100) else None);
          accept = filter_expr rng;
        })
  in
  let exports =
    List.init (Prng.int rng 4) (fun _ ->
        { Rpsl.to_as = asn rng; announce = filter_expr rng })
  in
  Rpsl.make ~asn:(asn rng) ~as_name:(registry_name rng) ~imports ~exports
    ~changed:(Prng.int_in rng 19980101 20031231)
    ~source:(Prng.choice rng [| "RADB"; "RIPE"; "ARIN"; "APNIC" |])
    ()

let registry rng =
  let n = Prng.int_in rng 1 5 in
  List.mapi
    (fun i obj -> { obj with Rpsl.asn = Asn.of_int (200 + (i * 91)) })
    (List.init n (fun _ -> aut_num rng))

(* Strings that stress the escaping paths: quotes, backslashes, control
   bytes, raw UTF-8, newlines. *)
let wild_string rng max_len =
  let pool =
    [|
      "a"; "z"; "Q"; "7"; " "; "\""; "\\"; "\n"; "\t"; "\001"; "\031"; "/";
      "\xc3\xa9"; "\xf0\x9f\x98\x80"; "{"; "]"; ":"; ",";
    |]
  in
  let n = Prng.int rng (max_len + 1) in
  String.concat "" (List.init n (fun _ -> Prng.choice rng pool))

let json rng =
  let scalar rng =
    match Prng.int rng 5 with
    | 0 -> Rpi_json.Null
    | 1 -> Rpi_json.Bool (Prng.bool rng)
    | 2 -> Rpi_json.Int (Prng.int_in rng (-1_000_000_000_000) 1_000_000_000_000)
    | 3 ->
        let v = Prng.float rng 1e9 -. Prng.float rng 1e9 in
        Rpi_json.Float (if Prng.chance rng 0.3 then Float.round v else v)
    | _ -> Rpi_json.String (wild_string rng 12)
  in
  let rec go rng depth =
    if depth <= 0 then scalar rng
    else begin
      match Prng.int rng 4 with
      | 0 | 1 -> scalar rng
      | 2 ->
          Rpi_json.List (List.init (Prng.int rng 4) (fun _ -> go rng (depth - 1)))
      | _ ->
          Rpi_json.Obj
            (List.init (Prng.int rng 4) (fun _ ->
                 (wild_string rng 8, go rng (depth - 1))))
    end
  in
  go rng (Prng.int rng 4)

let outcome rng =
  let metrics =
    List.init
      (Prng.int_in rng 1 5)
      (fun _ ->
        let v =
          if Prng.chance rng 0.05 then Float.nan
          else Prng.float rng 1e6 -. Prng.float rng 1e3
        in
        (wild_string rng 10, v))
  in
  let table rng =
    let n_cols = Prng.int_in rng 1 3 in
    let columns =
      List.init n_cols (fun _ ->
          (wild_string rng 6, if Prng.bool rng then Table.Left else Table.Right))
    in
    let title = if Prng.bool rng then Some (wild_string rng 8) else None in
    let t = Table.create ?title columns in
    for _ = 1 to Prng.int rng 4 do
      Table.add_row t (List.init n_cols (fun _ -> wild_string rng 8))
    done;
    t
  in
  {
    Rpi_experiments.Exp.id = wild_string rng 8;
    title = wild_string rng 16;
    rendered = "";
    metrics;
    tables = List.init (Prng.int rng 3) (fun _ -> table rng);
  }

let junk_text rng =
  let line rng =
    match Prng.int rng 7 with
    | 0 -> ""
    | 1 -> "RIB|" ^ wild_string rng 20
    | 2 -> "BGP" ^ wild_string rng 20
    | 3 -> "*" ^ wild_string rng 20
    | 4 -> "#" ^ wild_string rng 20
    | 5 -> String.make (Prng.int_in rng 200 1000) (Char.chr (Prng.int_in rng 1 255))
    | _ ->
        String.init (Prng.int rng 80) (fun _ ->
            let c = Prng.int_in rng 1 255 in
            if c = Char.code '\n' then '|' else Char.chr c)
  in
  String.concat "\n" (List.init (Prng.int_in rng 1 6) (fun _ -> line rng))

let pocket_topology =
  {
    Rpi_topo.Gen.default_config with
    Rpi_topo.Gen.n_tier1 = 4;
    n_tier2 = 8;
    n_tier3 = 16;
    n_stub = 60;
    sibling_pairs = 2;
  }

let pocket_config ~seed =
  {
    Scenario.default_config with
    Scenario.seed;
    topology = pocket_topology;
    prefixes_per_tier = (3, 3, 2, 2);
    n_collector_peers = 8;
    n_lg = 5;
    atoms_per_as = 2;
  }
