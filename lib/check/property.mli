(** The property-testing engine: seed-addressable random cases, greedy
    shrinking to a minimal counterexample, and machine-readable outcomes.

    Unlike qcheck, every case draws from a {!Rpi_prng.Prng.t} whose seed is
    a pure function of (run seed, property name, case index) — so a failure
    report quotes exactly the numbers needed to replay it, and two runs
    with the same seed produce byte-identical NDJSON. *)

type counterexample = {
  case : int;  (** 0-based index of the failing case. *)
  case_seed : int;  (** The PRNG seed that regenerates the failing input. *)
  reason : string;  (** What the check reported (after shrinking). *)
  input : string;  (** Rendering of the (shrunk) failing input. *)
  shrink_steps : int;  (** How many shrinking steps were applied. *)
}

type status =
  | Pass
  | Fail of counterexample

type outcome = {
  name : string;
  seed : int;  (** The run seed the outcome was produced under. *)
  cases_run : int;  (** Cases executed (stops at the first failure). *)
  checks : int;  (** Total sub-assertions over the passing cases. *)
  status : status;
}

type t
(** A named property, packaged with its generator, shrinker and check. *)

val make :
  name:string ->
  ?shrink:('a -> 'a list) ->
  gen:(Rpi_prng.Prng.t -> 'a) ->
  show:('a -> string) ->
  check:('a -> (int, string) result) ->
  unit ->
  t
(** [check x] returns [Ok n] when the case passes ([n] counts the
    sub-assertions it made, for reporting) and [Error reason] when it
    fails.  An exception escaping [check] (or [gen]) is itself a failure,
    never a crash of the harness.  [shrink] proposes strictly smaller
    candidates; the engine greedily descends to the first candidate that
    still fails, up to a step budget. *)

val name : t -> string

val run : t -> seed:int -> cases:int -> outcome
(** Deterministic in [(seed, cases)]. *)

val case_seed : seed:int -> name:string -> case:int -> int
(** The seed case [case] of property [name] draws from under run seed
    [seed] (exposed so a failure can be replayed in isolation). *)

val passed : outcome -> bool

val outcome_to_json : outcome -> Rpi_json.t
(** One NDJSON object: [{"property", "seed", "cases", "checks",
    "status"}], plus a ["counterexample"] object on failure.  Contains no
    timings or paths, so equal seeds give byte-identical lines. *)

val render : outcome -> string
(** Human-readable one-block report; failures include the replay hint. *)
