(** Corpus mutators for fault injection: given a well-formed serialized
    dump, produce hostile variants (truncation, byte flips, line drops /
    duplications / shuffles, garbage interleave, splices) that parsers
    must survive with an [Error]/skip diagnostic, never an exception. *)

module Prng = Rpi_prng.Prng

type kind =
  | Truncate  (** Cut at an arbitrary byte offset. *)
  | Byte_flip  (** Replace one byte with an arbitrary byte. *)
  | Drop_line
  | Dup_line
  | Swap_lines
  | Shuffle_lines
  | Garbage_line  (** Insert a line of hostile bytes. *)
  | Splice  (** Join two misaligned halves of the text. *)
  | Blank  (** Replace everything with the empty string. *)

val kind_to_string : kind -> string

val apply : Prng.t -> kind -> string -> string

val mutant : Prng.t -> string -> string
(** One random mutation, ~30% of the time compounded with a second. *)

val mutants : Prng.t -> count:int -> string -> string list

val shrink_text : string -> string list
(** Structurally smaller variants (halves, single-line drops) used by the
    harness to minimize a failing mutant. *)

val lines_of : string -> string list
(** [String.split_on_char '\n'] minus blank lines — the unit the salvage
    accounting below counts in. *)

val surviving_lines : original:string -> mutant:string -> string list
(** The mutant's lines that are byte-identical to some line of the
    original — the lines a lenient parser has no excuse to lose. *)
