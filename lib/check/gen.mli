(** Random-value generators for the property harness: BGP routes, tables,
    RPSL registries, JSON trees, experiment outcomes, raw junk text, and a
    pocket-sized end-to-end scenario configuration.

    Everything draws from a {!Rpi_prng.Prng.t}, so a value is a pure
    function of the generator state — the harness can regenerate any case
    from its seed. *)

module Prng = Rpi_prng.Prng

val asn : Prng.t -> Rpi_bgp.Asn.t
val prefix : Prng.t -> Rpi_net.Prefix.t

val as_path : Prng.t -> Rpi_bgp.As_path.t
(** 0–5 hops; ~15% of non-empty paths end in an AS_SET (aggregation). *)

val route : Prng.t -> index:int -> Rpi_bgp.Route.t
(** A route whose [next_hop]/[router_id] encode [index], so any set of
    routes generated with distinct indices has distinct router identities
    (keeps the decision process a strict total order in tests). *)

val rib : Prng.t -> Rpi_bgp.Rib.t
(** 1–12 prefixes, 1–4 candidate routes each. *)

val tables : Prng.t -> (Rpi_bgp.Asn.t * Rpi_bgp.Rib.t) list
(** 1–4 vantages with distinct AS numbers, for snapshot round-trips. *)

val aut_num : Prng.t -> Rpi_irr.Rpsl.aut_num
val registry : Prng.t -> Rpi_irr.Rpsl.aut_num list

val json : Prng.t -> Rpi_json.t
(** Depth-bounded tree over every constructor; floats are always finite
    (NaN/infinities serialize to [null] by design and cannot round-trip). *)

val outcome : Prng.t -> Rpi_experiments.Exp.outcome
(** A synthetic experiment outcome with adversarial strings (quotes,
    control bytes, UTF-8) in ids, metric names and table cells. *)

val junk_text : Prng.t -> string
(** A few lines of hostile bytes for format detection: pipe characters,
    format keywords, long lines, control characters, NULs. *)

val pocket_config : seed:int -> Rpi_dataset.Scenario.config
(** A deliberately tiny scenario (~100 ASs) the metamorphic oracles can
    afford to build once per run and query hundreds of times. *)
