module Prng = Rpi_prng.Prng
module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module Table_dump = Rpi_mrt.Table_dump
module Show_ip_bgp = Rpi_mrt.Show_ip_bgp
module Loader = Rpi_mrt.Loader
module Rpsl = Rpi_irr.Rpsl
module Scenario = Rpi_dataset.Scenario
module Export_infer = Rpi_core.Export_infer
module Import_infer = Rpi_core.Import_infer
module Relationship = Rpi_topo.Relationship
module Gao = Rpi_relinfer.Gao
module Engine = Rpi_sim.Engine
module Atom = Rpi_sim.Atom
module Decision = Rpi_sim.Decision
module Gadget = Rpi_sim.Gadget
module Validate = Rpi_relinfer.Validate
module Runner = Rpi_runner.Runner
module Update = Rpi_bgp.Update
module Churn = Rpi_topo.Churn
module Feed = Rpi_ingest.Feed
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render
module Topo_gen = Rpi_topo.Gen

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = Filename.temp_file "rpicheck" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> remove_tree dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let rec json_equal a b =
  match (a, b) with
  | Rpi_json.Null, Rpi_json.Null -> true
  | Rpi_json.Bool x, Rpi_json.Bool y -> Bool.equal x y
  | Rpi_json.Int x, Rpi_json.Int y -> Int.equal x y
  | Rpi_json.Float x, Rpi_json.Float y ->
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Rpi_json.String x, Rpi_json.String y -> String.equal x y
  | Rpi_json.List x, Rpi_json.List y -> List.equal json_equal x y
  | Rpi_json.Obj x, Rpi_json.Obj y ->
      List.equal
        (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && json_equal v1 v2)
        x y
  | ( ( Rpi_json.Null | Rpi_json.Bool _ | Rpi_json.Int _ | Rpi_json.Float _
      | Rpi_json.String _ | Rpi_json.List _ | Rpi_json.Obj _ ),
      _ ) ->
      false

(* ------------------------------------------------------------------ *)
(* Round-trip properties                                               *)
(* ------------------------------------------------------------------ *)

let table_dump_roundtrip =
  Property.make ~name:"table-dump-roundtrip"
    ~gen:(fun rng -> (Gen.asn rng, Prng.int rng 1_000_000_000, Gen.rib rng))
    ~show:(fun (vantage, ts, rib) ->
      Table_dump.rib_to_string ~timestamp:ts ~vantage_as:vantage rib)
    ~check:(fun (vantage, ts, rib) ->
      let s1 = Table_dump.rib_to_string ~timestamp:ts ~vantage_as:vantage rib in
      match Table_dump.parse s1 with
      | Error e -> Error ("strict parse rejected its own serialization: " ^ e)
      | Ok entries ->
          let reserialized =
            String.concat ""
              (List.map (fun e -> Table_dump.entry_to_line e ^ "\n") entries)
          in
          if not (String.equal reserialized s1) then
            Error "entry_to_line of parsed entries differs from the original bytes"
          else begin
            match Table_dump.parse_to_rib s1 with
            | Error e -> Error e
            | Ok rib2 ->
                let s2 = Table_dump.rib_to_string ~timestamp:ts ~vantage_as:vantage rib2 in
                if String.equal s2 s1 then Ok 3
                else Error "RIB rebuild does not re-serialize byte-identically"
          end)
    ()

let show_ip_bgp_roundtrip =
  Property.make ~name:"show-ip-bgp-roundtrip" ~gen:Gen.rib ~show:Show_ip_bgp.render
    ~check:(fun rib ->
      let s1 = Show_ip_bgp.render rib in
      match Show_ip_bgp.parse s1 with
      | Error e -> Error ("parse rejected its own rendering: " ^ e)
      | Ok rib2 ->
          if Rib.route_count rib2 <> Rib.route_count rib then
            Error
              (Printf.sprintf "route count changed: %d -> %d" (Rib.route_count rib)
                 (Rib.route_count rib2))
          else if Rib.prefix_count rib2 <> Rib.prefix_count rib then
            Error "prefix count changed"
          else if String.equal (Show_ip_bgp.render rib2) s1 then Ok 3
          else Error "render |> parse |> render is not a fixpoint")
    ()

let snapshot_roundtrip =
  Property.make ~name:"snapshot-roundtrip" ~gen:Gen.tables
    ~show:(fun tables ->
      String.concat "\n"
        (List.map
           (fun (asn, rib) ->
             Printf.sprintf "AS%s:\n%s" (Asn.to_string asn)
               (Table_dump.rib_to_string ~vantage_as:asn rib))
           tables))
    ~check:(fun tables ->
      with_temp_dir (fun dir ->
          let dir1 = Filename.concat dir "first" in
          let dir2 = Filename.concat dir "second" in
          Loader.save_snapshot ~dir:dir1 tables;
          match Loader.load_snapshot ~dir:dir1 with
          | Error e -> Error ("load_snapshot failed on its own save: " ^ e)
          | Ok loaded ->
              if List.length loaded <> List.length tables then
                Error
                  (Printf.sprintf "vantage count changed: %d -> %d"
                     (List.length tables) (List.length loaded))
              else begin
                Loader.save_snapshot ~dir:dir2 loaded;
                let mismatched =
                  List.filter
                    (fun (asn, _) ->
                      let file =
                        Printf.sprintf "AS%s.dump" (Asn.to_string asn)
                      in
                      not
                        (String.equal
                           (read_file (Filename.concat dir1 file))
                           (read_file (Filename.concat dir2 file))))
                    tables
                in
                match mismatched with
                | [] -> Ok (1 + List.length tables)
                | (asn, _) :: _ ->
                    Error
                      (Printf.sprintf "AS%s.dump not byte-identical after reload"
                         (Asn.to_string asn))
              end))
    ()

let rpsl_roundtrip =
  Property.make ~name:"rpsl-roundtrip" ~gen:Gen.registry ~show:Rpsl.render_many
    ~check:(fun objs ->
      let text = Rpsl.render_many objs in
      match Rpsl.parse text with
      | Error e -> Error ("parse rejected its own rendering: " ^ e)
      | Ok objs2 ->
          if List.length objs2 <> List.length objs then
            Error
              (Printf.sprintf "object count changed: %d -> %d" (List.length objs)
                 (List.length objs2))
          else if String.equal (Rpsl.render_many objs2) text then Ok 2
          else Error "render |> parse |> render is not a fixpoint")
    ()

let detect_format_total =
  Property.make ~name:"detect-format-total" ~gen:Gen.junk_text
    ~show:(fun s -> String.escaped s)
    ~shrink:Mutate.shrink_text
    ~check:(fun text ->
      let format = Loader.detect_format text in
      (* parse_any must be total on arbitrary bytes. *)
      let (_ : (Rib.t, string) result) = Loader.parse_any text in
      let first =
        List.find_opt
          (fun l -> String.length (String.trim l) > 0)
          (String.split_on_char '\n' text)
        |> Option.map String.trim |> Option.value ~default:""
      in
      let expect_dump = String.starts_with ~prefix:"RIB|" first in
      let expect_show = String.starts_with ~prefix:"BGP" first in
      match format with
      | `Table_dump when expect_show -> Error "BGP header detected as table_dump"
      | `Show_ip_bgp when expect_dump -> Error "RIB| line detected as show_ip_bgp"
      | `Unknown when expect_dump || expect_show ->
          Error "known leader line detected as unknown"
      | `Table_dump | `Show_ip_bgp | `Unknown -> Ok 2)
    ()

(* ------------------------------------------------------------------ *)
(* Fault injection                                                     *)
(* ------------------------------------------------------------------ *)

type fault_case = { original : string; mutants : string list }

let mutants_per_case = 20

let fault_property ~name ~make_original ~check_one =
  Property.make ~name
    ~gen:(fun rng ->
      let original = make_original rng in
      { original; mutants = Mutate.mutants rng ~count:mutants_per_case original })
    ~show:(fun c ->
      String.concat "\n"
        ([ "ORIGINAL:"; c.original ]
        @ List.concat_map (fun m -> [ "MUTANT:"; m ]) c.mutants))
    ~shrink:(fun c ->
      match c.mutants with
      | [ m ] -> List.map (fun m' -> { c with mutants = [ m' ] }) (Mutate.shrink_text m)
      | ms -> List.map (fun m -> { c with mutants = [ m ] }) ms)
    ~check:(fun c ->
      List.fold_left
        (fun acc m ->
          match acc with
          | Error _ -> acc
          | Ok n -> begin
              match check_one ~original:c.original m with
              | Ok k -> Ok (n + k)
              | Error e -> Error e
            end)
        (Ok 0) c.mutants)
    ()

let fault_table_dump =
  fault_property ~name:"fault-table-dump"
    ~make_original:(fun rng ->
      Table_dump.rib_to_string ~vantage_as:(Gen.asn rng) (Gen.rib rng))
    ~check_one:(fun ~original m ->
      match Table_dump.parse m with
      | exception e -> Error ("parse raised: " ^ Printexc.to_string e)
      | (_ : (Table_dump.entry list, string) result) -> begin
          match Table_dump.parse_lenient m with
          | exception e -> Error ("parse_lenient raised: " ^ Printexc.to_string e)
          | entries, _skipped ->
              let survivors = Mutate.surviving_lines ~original ~mutant:m in
              if List.length entries >= List.length survivors then Ok 2
              else
                Error
                  (Printf.sprintf "salvaged %d entries, but %d intact lines survive"
                     (List.length entries) (List.length survivors))
        end)

let fault_show_ip_bgp =
  (* Only rows that carry their own network token are position-independent;
     continuation rows legitimately die with their leader. *)
  let self_contained line =
    String.length line >= 2
    && line.[0] = '*'
    &&
    match
      String.split_on_char ' ' (String.sub line 2 (String.length line - 2))
      |> List.filter (fun t -> String.length t > 0)
    with
    | tok :: _ -> String.contains tok '/'
    | [] -> false
  in
  fault_property ~name:"fault-show-ip-bgp"
    ~make_original:(fun rng -> Show_ip_bgp.render (Gen.rib rng))
    ~check_one:(fun ~original m ->
      match Show_ip_bgp.parse m with
      | exception e -> Error ("parse raised: " ^ Printexc.to_string e)
      | (_ : (Rib.t, string) result) -> begin
          match Show_ip_bgp.parse_lenient m with
          | exception e -> Error ("parse_lenient raised: " ^ Printexc.to_string e)
          | routes, _skipped ->
              let survivors =
                Mutate.surviving_lines ~original ~mutant:m
                |> List.filter self_contained
              in
              if List.length routes >= List.length survivors then Ok 2
              else
                Error
                  (Printf.sprintf "salvaged %d routes, but %d intact rows survive"
                     (List.length routes) (List.length survivors))
        end)

(* Blank-line-delimited blocks, chunked exactly the way Rpsl.parse does. *)
let rpsl_blocks text =
  let flush chunk acc =
    let body = String.concat "\n" (List.rev chunk) in
    if String.length (String.trim body) = 0 then acc else body :: acc
  in
  let rec go chunk acc = function
    | [] -> List.rev (flush chunk acc)
    | line :: rest ->
        if String.length (String.trim line) = 0 then go [] (flush chunk acc) rest
        else go (line :: chunk) acc rest
  in
  go [] [] (String.split_on_char '\n' text)

let fault_rpsl =
  fault_property ~name:"fault-rpsl"
    ~make_original:(fun rng -> Rpsl.render_many (Gen.registry rng))
    ~check_one:(fun ~original m ->
      match Rpsl.parse m with
      | exception e -> Error ("parse raised: " ^ Printexc.to_string e)
      | (_ : (Rpsl.aut_num list, string) result) -> begin
          match Rpsl.parse_lenient m with
          | exception e -> Error ("parse_lenient raised: " ^ Printexc.to_string e)
          | objs, _errs ->
              let originals = rpsl_blocks original in
              let survivors =
                rpsl_blocks m
                |> List.filter (fun b -> List.exists (String.equal b) originals)
              in
              if List.length objs >= List.length survivors then Ok 2
              else
                Error
                  (Printf.sprintf "salvaged %d objects, but %d intact blocks survive"
                     (List.length objs) (List.length survivors))
        end)

(* ------------------------------------------------------------------ *)
(* Wire protocol and serving core                                      *)
(* ------------------------------------------------------------------ *)

module Protocol = Rpi_serve.Protocol
module Registry = Rpi_serve.Registry
module Server = Rpi_serve.Server
module As_graph = Rpi_topo.As_graph
module As_path = Rpi_bgp.As_path
module Ipv4_octets = Rpi_net.Ipv4

(* Drain [text] through the pure incremental decoder, collecting the
   frame bodies and the terminal state. *)
let decode_all text =
  let buf = Bytes.of_string text in
  let total = Bytes.length buf in
  let rec go pos acc =
    if pos >= total then (List.rev acc, `Clean_eof)
    else
      match Protocol.decode buf ~pos ~len:(total - pos) with
      | `Frame (body, used) -> go (pos + used) (body :: acc)
      | `Need_more -> (List.rev acc, `Truncated)
      | `Bad msg -> (List.rev acc, `Bad msg)
  in
  go 0 []

(* The same bytes through the blocking reader, via a pipe.  Callers
   guard the size: the whole text is written before any read, so it
   must stay under the pipe buffer. *)
let read_frame_all text =
  let rd, wr = Unix.pipe () in
  Fun.protect
    ~finally:(fun () -> Unix.close rd)
    (fun () ->
      let len = String.length text in
      let n = Unix.write_substring wr text 0 len in
      Unix.close wr;
      if n <> len then failwith "short pipe write";
      let rec go acc =
        match Protocol.read_frame rd with
        | Ok (Some body) -> go (body :: acc)
        | Ok None -> (List.rev acc, `Clean_eof)
        | Error msg -> (List.rev acc, `Err msg)
      in
      go [])

(* Mutated wire frames must fail cleanly and identically on both decode
   paths: the pure incremental decoder the event loop uses and the
   blocking [read_frame] the CLI client uses mirror each other\'s
   validation byte for byte, never raise, and never hand back a body
   over [Protocol.max_frame] — so an adversarial length prefix cannot
   force a large allocation. *)
let fault_wire_frame =
  fault_property ~name:"fault-wire-frame"
    ~make_original:(fun rng ->
      let n = Prng.int_in rng 2 5 in
      let bodies =
        List.init n (fun _ ->
            match Prng.int rng 4 with
            | 0 -> Rpi_json.to_string (Protocol.request_to_json Protocol.Stats)
            | 1 -> Rpi_json.to_string (Protocol.request_to_json Protocol.Snapshot)
            | 2 ->
                Rpi_json.to_string
                  (Protocol.request_to_json (Protocol.Import_pref (Gen.asn rng)))
            | _ ->
                Rpi_json.to_string
                  (Protocol.request_to_json
                     (Protocol.Sa_status
                        { asn = Gen.asn rng; prefix = Some (Gen.prefix rng) })))
      in
      String.concat "" (List.map Protocol.frame_of_body bodies))
    ~check_one:(fun ~original:_ m ->
      match decode_all m with
      | exception e -> Error ("decode raised: " ^ Printexc.to_string e)
      | frames, terminal ->
          if
            List.exists (fun b -> String.length b > Protocol.max_frame) frames
          then Error "decode produced a body over max_frame"
          else if String.length m > 60_000 then
            (* Too big for a single pipe write; the pure-decoder checks
               above already ran. *)
            Ok (1 + List.length frames)
          else begin
            match read_frame_all m with
            | exception e -> Error ("read_frame raised: " ^ Printexc.to_string e)
            | frames', terminal' ->
                if not (List.equal String.equal frames frames') then
                  Error
                    (Printf.sprintf
                       "decoders disagree: decode recovered %d frames, \
                        read_frame %d"
                       (List.length frames) (List.length frames'))
                else begin
                  match (terminal, terminal') with
                  | `Clean_eof, `Clean_eof -> Ok (2 + List.length frames)
                  (* A frame truncated by the mutation: the incremental
                     decoder waits for more bytes, the blocking reader
                     sees EOF mid-frame and errors. *)
                  | `Truncated, `Err _ -> Ok (2 + List.length frames)
                  | `Bad a, `Err b when String.equal a b ->
                      Ok (2 + List.length frames)
                  | `Bad a, `Err b ->
                      Error
                        (Printf.sprintf "error strings diverge: %S vs %S" a b)
                  | `Clean_eof, `Err e ->
                      Error ("read_frame errored at clean EOF: " ^ e)
                  | (`Truncated | `Bad _), `Clean_eof ->
                      Error "read_frame saw clean EOF where decode did not"
                end
          end)

(* A small deterministic serving fixture shared by every case: the
   server starts lazily on first use and is torn down at exit. *)
let serve_vantage = Asn.of_int 100

let serve_prefixes =
  [ "10.11.0.0/16"; "10.12.0.0/16"; "40.0.0.0/8"; "203.0.113.0/24" ]

let serve_registry () =
  let a = Asn.of_int in
  let p s = Rpi_net.Prefix.of_string_exn s in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:serve_vantage ~customer:(a 10) in
  let g = As_graph.add_p2c g ~provider:(a 10) ~customer:(a 11) in
  let g = As_graph.add_p2p g serve_vantage (a 20) in
  let g = As_graph.add_p2c g ~provider:(a 30) ~customer:serve_vantage in
  let g = As_graph.add_p2c g ~provider:(a 20) ~customer:(a 11) in
  let route ~lp ~peer ~rid path prefix =
    Route.make ~prefix ~next_hop:(Ipv4_octets.of_octets 192 0 2 rid)
      ~as_path:(As_path.of_list (List.map a path))
      ~local_pref:lp
      ~router_id:(Ipv4_octets.of_octets 192 0 2 rid)
      ~peer_as:(a peer) ()
  in
  let rib =
    Rib.of_routes
      [
        route ~lp:120 ~peer:10 ~rid:1 [ 10; 11 ] (p "10.11.0.0/16");
        route ~lp:90 ~peer:20 ~rid:2 [ 20; 11 ] (p "10.12.0.0/16");
        route ~lp:80 ~peer:30 ~rid:3 [ 30; 40 ] (p "40.0.0.0/8");
      ]
  in
  let state = State.create ~graph:g ~vantage:serve_vantage ~initial:rib () in
  Registry.create ~collector:state ~vantages:[ (serve_vantage, state) ]

let serve_fixture =
  lazy
    (let registry = serve_registry () in
     let path =
       Filename.concat
         (Filename.get_temp_dir_name ())
         (Printf.sprintf "rpicheck-serve-%d.sock" (Unix.getpid ()))
     in
     let address = Server.Unix_socket path in
     let server = Server.create ~address registry in
     let domain = Domain.spawn (fun () -> Server.serve ~jobs:1 server) in
     at_exit (fun () ->
         Server.shutdown server;
         Domain.join domain;
         Server.close server);
     address)

(* Every verb except [Metrics], whose counters move between cases. *)
let gen_serve_request rng =
  match Prng.int rng 6 with
  | 0 -> Protocol.Stats
  | 1 -> Protocol.Snapshot
  | 2 -> Protocol.Import_pref serve_vantage
  | 3 -> Protocol.Sa_status { asn = serve_vantage; prefix = None }
  | 4 ->
      Protocol.Sa_status
        {
          asn = serve_vantage;
          prefix =
            Some
              (Rpi_net.Prefix.of_string_exn (Prng.choice_list rng serve_prefixes));
        }
  | _ ->
      (* Unknown vantage: the error response must pipeline too. *)
      Protocol.Sa_status { asn = Asn.of_int 999; prefix = None }

let show_serve_requests reqs =
  String.concat "\n"
    (List.map
       (fun r -> Rpi_json.to_string (Protocol.request_to_json r))
       reqs)

let shrink_serve_requests = function
  | [] | [ _ ] -> []
  | reqs -> List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) reqs) reqs

(* Pipelining is transparent: writing every request up front on one
   connection yields byte-identical responses, in order, to opening a
   fresh connection per request. *)
let pipelined_matches_serial =
  Property.make ~name:"pipelined-matches-serial"
    ~gen:(fun rng ->
      let n = Prng.int_in rng 1 12 in
      List.init n (fun _ -> gen_serve_request rng))
    ~show:show_serve_requests ~shrink:shrink_serve_requests
    ~check:(fun reqs ->
      let address = Lazy.force serve_fixture in
      let serial =
        List.map
          (fun r ->
            match Server.query address r with
            | Ok json -> Ok (Rpi_json.to_string json)
            | Error e -> Error ("serial query: " ^ e))
          reqs
      in
      match List.find_opt Result.is_error serial with
      | Some (Error e) -> Error e
      | Some (Ok _) -> assert false
      | None ->
          let serial = List.filter_map Result.to_option serial in
          let fd = Server.connect address in
          Fun.protect
            ~finally:(fun () -> Unix.close fd)
            (fun () ->
              List.iter
                (fun r -> Protocol.write_json fd (Protocol.request_to_json r))
                reqs;
              let pipelined =
                List.map
                  (fun _ ->
                    match Protocol.read_json fd with
                    | Ok (Some json) -> Ok (Rpi_json.to_string json)
                    | Ok None -> Error "pipelined: connection closed early"
                    | Error e -> Error ("pipelined read: " ^ e))
                  reqs
              in
              match List.find_opt Result.is_error pipelined with
              | Some (Error e) -> Error e
              | Some (Ok _) -> assert false
              | None ->
                  let pipelined = List.filter_map Result.to_option pipelined in
                  let rec diff_at i = function
                    | [], [] -> Ok i
                    | s :: srest, q :: qrest ->
                        if String.equal s q then diff_at (i + 1) (srest, qrest)
                        else
                          Error
                            (Printf.sprintf
                               "response %d differs: serial %s, pipelined %s" i
                               s q)
                    | _ -> Error "response count mismatch"
                  in
                  diff_at 0 (serial, pipelined)))
    ()

(* ------------------------------------------------------------------ *)
(* JSON / NDJSON                                                       *)
(* ------------------------------------------------------------------ *)

let shrink_json t =
  let drop_each l rebuild =
    List.mapi (fun i _ -> rebuild (List.filteri (fun j _ -> j <> i) l)) l
  in
  match t with
  | Rpi_json.List l ->
      (Rpi_json.Null :: drop_each l (fun l -> Rpi_json.List l)) @ l
  | Rpi_json.Obj kvs ->
      (Rpi_json.Null :: drop_each kvs (fun kvs -> Rpi_json.Obj kvs)) @ List.map snd kvs
  | Rpi_json.String s when String.length s > 0 ->
      [ Rpi_json.String (String.sub s 0 (String.length s / 2)) ]
  | _ -> []

let json_roundtrip =
  Property.make ~name:"json-roundtrip" ~gen:Gen.json ~show:Rpi_json.to_string
    ~shrink:shrink_json
    ~check:(fun t ->
      let s = Rpi_json.to_string t in
      match Rpi_json.of_string s with
      | Error e -> Error ("serialized tree does not parse: " ^ e)
      | Ok t2 ->
          if not (json_equal t t2) then Error "parsed tree differs"
          else if String.equal (Rpi_json.to_string t2) s then Ok 2
          else Error "reserialization differs")
    ()

let runner_ndjson_roundtrip =
  Property.make ~name:"runner-ndjson-roundtrip" ~gen:Gen.outcome
    ~show:(fun o -> Rpi_json.to_string (Runner.outcome_to_json o))
    ~check:(fun o ->
      let line = Rpi_json.to_string (Runner.outcome_to_json o) in
      match Rpi_json.of_string line with
      | Error e -> Error ("runner NDJSON does not parse back: " ^ e)
      | Ok parsed ->
          if String.equal (Rpi_json.to_string parsed) line then Ok 2
          else Error "NDJSON line does not reserialize identically")
    ()

(* ------------------------------------------------------------------ *)
(* Scenario-backed metamorphic oracles                                 *)
(* ------------------------------------------------------------------ *)

(* Well below the accuracy EXPERIMENTS.md records for the full scenario
   (95-98%): the pocket topology compresses degrees so Gao's degree-based
   tie-breaks have less signal, and measured accuracy across seeds lands
   in the 0.80-0.89 band.  The floor catches algorithmic regressions
   (a broken heuristic drops towards the ~0.4 majority-class baseline),
   not statistical jitter. *)
let gao_accuracy_floor = 0.75

let asn_set_show asns =
  "{" ^ String.concat "," (List.map Asn.to_string asns) ^ "}"

let scenario_properties ~seed =
  let scen = lazy (Scenario.build ~config:(Gen.pocket_config ~seed) ()) in
  let paths = lazy (Scenario.observed_paths (Lazy.force scen)) in
  let gao_config =
    { Gao.default_config with Gao.peer_degree_ratio = 6.0 }
  in
  let inferred = lazy (Gao.infer ~config:gao_config (Lazy.force paths)) in
  let sa_subset_monotone =
    Property.make ~name:"sa-subset-monotone"
      ~gen:(fun rng ->
        let t = Lazy.force scen in
        let peers = t.Scenario.collector_peers in
        let provider = Prng.choice_list rng peers in
        let others = List.filter (fun a -> not (Asn.equal a provider)) peers in
        let subset = provider :: Prng.sample rng (Prng.int rng (List.length others + 1)) others in
        (provider, subset))
      ~show:(fun (provider, subset) ->
        Printf.sprintf "provider=AS%s feed-subset=%s" (Asn.to_string provider)
          (asn_set_show subset))
      ~shrink:(fun (provider, subset) ->
        subset
        |> List.filter (fun a -> not (Asn.equal a provider))
        |> List.map (fun drop ->
               (provider, List.filter (fun a -> not (Asn.equal a drop)) subset)))
      ~check:(fun (provider, subset) ->
        let t = Lazy.force scen in
        let full = t.Scenario.collector in
        let in_subset a = List.exists (Asn.equal a) subset in
        let sub =
          Rib.of_routes
            (List.filter
               (fun (r : Route.t) ->
                 match r.Route.peer_as with
                 | Some p -> in_subset p
                 | None -> false)
               (Rib.all_routes full))
        in
        let sa_keys rib =
          let origins = Export_infer.origins_of_rib rib in
          let view = Export_infer.viewpoint_of_feed ~feed:provider rib in
          let report =
            Export_infer.analyze t.Scenario.graph ~provider ~origins view
          in
          List.map
            (fun (r : Export_infer.sa_record) ->
              Prefix.to_string r.Export_infer.prefix ^ "@AS"
              ^ Asn.to_string r.Export_infer.origin)
            report.Export_infer.sa
        in
        let sa_sub = sa_keys sub in
        let sa_full = sa_keys full in
        let escaped =
          List.filter (fun k -> not (List.exists (String.equal k) sa_full)) sa_sub
        in
        match escaped with
        | [] -> Ok (1 + List.length sa_sub)
        | k :: _ ->
            Error
              (Printf.sprintf
                 "SA prefix %s inferred from the feed subset but not from the full \
                  collector (monotonicity violated)"
                 k))
      ()
  in
  let import_renumber_invariant =
    Property.make ~name:"import-renumber-invariant"
      ~gen:(fun rng ->
        let t = Lazy.force scen in
        (Prng.choice_list rng t.Scenario.lg_ases, Prng.int_in rng 1 0x3FFFFFFF))
      ~show:(fun (vantage, key) ->
        Printf.sprintf "vantage=AS%s xor-key=%#x" (Asn.to_string vantage) key)
      ~shrink:(fun (vantage, key) ->
        if key > 1 then [ (vantage, key / 2); (vantage, key land (key - 1)) ] else [])
      ~check:(fun (vantage, key) ->
        let t = Lazy.force scen in
        let rib =
          match Scenario.lg_table t vantage with
          | Some rib -> rib
          | None -> Rib.empty
        in
        let renumber p =
          let len = Prefix.length p in
          let mask = (-1) lsl (32 - len) land 0xFFFFFFFF in
          let network = Ipv4.to_int (Prefix.network p) in
          Prefix.make (Ipv4.of_int32_exn (network lxor (key land mask))) len
        in
        let rib' =
          Rib.of_routes
            (List.map
               (fun (r : Route.t) -> { r with Route.prefix = renumber r.Route.prefix })
               (Rib.all_routes rib))
        in
        let a = Import_infer.analyze t.Scenario.graph ~vantage rib in
        let b = Import_infer.analyze t.Scenario.graph ~vantage rib' in
        let class_values_equal =
          List.equal
            (fun (r1, vs1) (r2, vs2) ->
              Relationship.equal r1 r2 && List.equal Int.equal vs1 vs2)
            a.Import_infer.class_values b.Import_infer.class_values
        in
        if a.Import_infer.prefixes_total <> b.Import_infer.prefixes_total then
          Error "prefixes_total changed under renumbering"
        else if a.Import_infer.prefixes_compared <> b.Import_infer.prefixes_compared
        then Error "prefixes_compared changed under renumbering"
        else if a.Import_infer.typical <> b.Import_infer.typical then
          Error "typical count changed under renumbering"
        else if a.Import_infer.atypical <> b.Import_infer.atypical then
          Error "atypical count changed under renumbering"
        else if not (Float.equal a.Import_infer.pct_typical b.Import_infer.pct_typical)
        then Error "pct_typical changed under renumbering"
        else if not class_values_equal then
          Error "per-class local-pref values changed under renumbering"
        else Ok 6)
      ()
  in
  let gao_permutation_invariant =
    Property.make ~name:"gao-permutation-invariant"
      ~gen:(fun rng -> Prng.shuffle_list rng (Lazy.force paths))
      ~show:(fun shuffled -> Printf.sprintf "permutation of %d paths" (List.length shuffled))
      ~check:(fun shuffled ->
        let base = Lazy.force inferred in
        let permuted = Gao.infer ~config:gao_config shuffled in
        let report = Validate.compare_graphs ~truth:base ~inferred:permuted in
        if
          report.Validate.missing = 0
          && report.Validate.extra = 0
          && report.Validate.edges_correct = report.Validate.edges_compared
        then Ok 3
        else
          Error
            (Printf.sprintf
               "inference depends on path order: %d/%d labels agree, %d missing, %d \
                extra edges"
               report.Validate.edges_correct report.Validate.edges_compared
               report.Validate.missing report.Validate.extra))
      ()
  in
  let gao_ground_truth =
    let accuracy =
      lazy
        (let t = Lazy.force scen in
         Validate.accuracy
           (Validate.compare_graphs ~truth:t.Scenario.graph
              ~inferred:(Lazy.force inferred)))
    in
    Property.make ~name:"gao-ground-truth-agreement"
      ~gen:(fun (_ : Prng.t) -> ())
      ~show:(fun () -> "ground-truth comparison on the pocket scenario")
      ~check:(fun () ->
        let acc = Lazy.force accuracy in
        if acc >= gao_accuracy_floor then Ok 1
        else
          Error
            (Printf.sprintf "relationship accuracy %.3f below the %.2f floor" acc
               gao_accuracy_floor))
      ()
  in
  let incremental_matches_batch =
    (* The tentpole invariant of the ingest subsystem: after ANY update
       interleaving — including duplicate announces and spurious withdraws,
       which must be no-ops — the incremental state's sa/stats NDJSON is
       byte-identical to a from-scratch batch recompute over the same
       table. *)
    let js = Rpi_json.to_string in
    let announce_of_route vantage (r : Route.t) =
      let from_as = Option.value ~default:vantage r.Route.peer_as in
      Update.announce ~from_as ~to_as:vantage r
    in
    Property.make ~name:"incremental_matches_batch"
      ~gen:(fun rng ->
        let t = Lazy.force scen in
        let vantage = Prng.choice_list rng t.Scenario.collector_peers in
        let view =
          Export_infer.viewpoint_of_feed ~feed:vantage t.Scenario.collector
        in
        let base = Feed.diff ~vantage ~old_rib:Rib.empty view in
        let keep = List.filter (fun _ -> Prng.int rng 4 > 0) base in
        let withdraw_of (u : Update.t) =
          Update.withdraw ~from_as:u.Update.from_as ~to_as:u.Update.to_as
            (Update.prefix u)
        in
        let withdraws =
          List.filter_map
            (fun u -> if Prng.int rng 3 = 0 then Some (withdraw_of u) else None)
            keep
        in
        (* Fault injection: exact duplicates of live announces, and
           withdraws from a session that never announced the prefix. *)
        let duplicates = List.filter (fun _ -> Prng.int rng 5 = 0) keep in
        let spurious =
          List.filter_map
            (fun (u : Update.t) ->
              if Prng.int rng 5 = 0 then
                Some
                  (Update.withdraw ~from_as:(Asn.of_int 65533) ~to_as:vantage
                     (Update.prefix u))
              else None)
            base
        in
        let updates =
          Prng.shuffle_list rng (keep @ withdraws @ duplicates @ spurious)
        in
        (vantage, updates))
      ~show:(fun (vantage, updates) ->
        Printf.sprintf "vantage=AS%s\n%s" (Asn.to_string vantage)
          (Feed.render_stream updates))
      ~shrink:(fun (vantage, updates) ->
        List.mapi
          (fun i _ -> (vantage, List.filteri (fun j _ -> j <> i) updates))
          updates)
      ~check:(fun (vantage, updates) ->
        let t = Lazy.force scen in
        let graph = t.Scenario.graph in
        let state = State.create ~graph ~vantage () in
        State.apply_all state updates;
        let batch_rib = Feed.apply_all ~vantage updates Rib.empty in
        let compare_reports tag =
          let stats_inc = js (Render.stats_of_state state) in
          let stats_batch = js (Render.stats_of_rib batch_rib) in
          if not (String.equal stats_inc stats_batch) then
            Error
              (Printf.sprintf "%s: stats diverge\nincremental: %s\nbatch:       %s"
                 tag stats_inc stats_batch)
          else begin
            let report =
              Export_infer.analyze graph ~provider:vantage
                ~origins:(Export_infer.origins_of_rib batch_rib)
                batch_rib
            in
            let sa_inc = js (Render.sa ~viewpoint:"live" (State.sa_report state)) in
            let sa_batch = js (Render.sa ~viewpoint:"live" report) in
            if String.equal sa_inc sa_batch then Ok 2
            else Error (Printf.sprintf "%s: sa reports diverge" tag)
          end
        in
        if not (Rib.equal (State.rib state) batch_rib) then
          Error "incremental table diverges from Feed.apply_all fold"
        else begin
          match compare_reports "after interleaving" with
          | Error _ as e -> e
          | Ok n -> begin
              (* Idempotence at the fixed point: re-announcing a live route
                 and withdrawing from an absent session must change
                 nothing. *)
              let faults =
                (match Rib.prefixes batch_rib with
                | [] -> []
                | prefix :: _ -> begin
                    match Rib.candidates batch_rib prefix with
                    | r :: _ -> [ announce_of_route vantage r ]
                    | [] -> []
                  end)
                @
                match Rib.prefixes batch_rib with
                | [] -> []
                | prefix :: _ ->
                    [
                      Update.withdraw ~from_as:(Asn.of_int 65533) ~to_as:vantage
                        prefix;
                    ]
              in
              State.apply_all state faults;
              if not (Rib.equal (State.rib state) batch_rib) then
                Error "fault replay changed the table (not idempotent)"
              else begin
                match compare_reports "after fault replay" with
                | Error _ as e -> e
                | Ok m -> Ok (n + m + 2)
              end
            end
        end)
      ()
  in
  (* Byte-level equality of engine results — convergence trace included —
     shared by the solver-differential properties below. *)
  let engine_route_equal (a : Engine.route) (b : Engine.route) =
    a.Engine.lp = b.Engine.lp
    && a.Engine.path_len = b.Engine.path_len
    && a.Engine.no_up = b.Engine.no_up
    && Option.equal Asn.equal a.Engine.learned_from b.Engine.learned_from
    && Option.equal Relationship.equal a.Engine.rel b.Engine.rel
    && Option.equal Relationship.equal a.Engine.export_class b.Engine.export_class
    && List.equal Asn.equal a.Engine.path b.Engine.path
  in
  let engine_table_equal (a : Engine.table) (b : Engine.table) =
    Option.equal engine_route_equal a.Engine.best b.Engine.best
    && List.equal engine_route_equal a.Engine.candidates b.Engine.candidates
  in
  let result_equal (a : Engine.result) (b : Engine.result) =
    a.Engine.converged = b.Engine.converged
    && a.Engine.steps = b.Engine.steps
    && Asn.Map.equal engine_table_equal a.Engine.tables b.Engine.tables
  in
  let interned_engine_matches_reference =
    (* The production solver runs on interned paths and flat index arenas;
       this pins it to the retained list-of-routes reference solver —
       identical tables, identical convergence trace — and propagate_all
       to its jobs=1 merge for every domain count. *)
    Property.make ~name:"interned_engine_matches_reference"
      ~gen:(fun rng ->
        let t = Lazy.force scen in
        let atoms = Array.of_list t.Scenario.atoms in
        let n = Array.length atoms in
        let start = Prng.int rng n in
        let len = 1 + Prng.int rng (min 6 n) in
        List.init len (fun k -> atoms.((start + k) mod n)))
      ~show:(fun batch ->
        Printf.sprintf "atoms [%s]"
          (String.concat ";"
             (List.map (fun (a : Atom.t) -> string_of_int a.Atom.id) batch)))
      ~shrink:(fun batch ->
        match batch with
        | [] | [ _ ] -> []
        | _ -> List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) batch) batch)
      ~check:(fun batch ->
        let t = Lazy.force scen in
        let net = t.Scenario.network in
        let retain = t.Scenario.retain in
        let mismatches =
          List.filter
            (fun (a : Atom.t) ->
              let fast = Engine.propagate net ~retain a in
              let ref_ = Engine.propagate_reference net ~retain a in
              not (result_equal fast ref_))
            batch
        in
        match mismatches with
        | a :: _ ->
            Error
              (Printf.sprintf
                 "interned solver diverges from the reference on atom %d" a.Atom.id)
        | [] ->
            let runs =
              List.map
                (fun jobs -> Engine.propagate_all net ~retain ~jobs batch)
                [ 1; 2; 4 ]
            in
            let all_equal =
              match runs with
              | base :: rest ->
                  List.for_all (fun r -> List.equal result_equal base r) rest
              | [] -> true
            in
            if all_equal then Ok (2 * List.length batch)
            else Error "propagate_all result depends on the jobs count")
      ()
  in
  let decision_vanilla_matches_reference =
    (* The generic pluggable solver under [Per_as] granularity must make
       exactly the decisions of the specialised fast path and the
       reference solver.  Dispatch is by module name, so a renamed copy
       of Vanilla forces the generic path. *)
    let generic : Decision.t =
      (module struct
        let name = "vanilla/generic"
        let granularity = Decision.Per_as
        let prefer = Decision.Vanilla.prefer
        let export_ok = Decision.Vanilla.export_ok
      end)
    in
    Property.make ~name:"decision_vanilla_matches_reference"
      ~gen:(fun rng ->
        let t = Lazy.force scen in
        let atoms = Array.of_list t.Scenario.atoms in
        let n = Array.length atoms in
        let start = Prng.int rng n in
        let len = 1 + Prng.int rng (min 4 n) in
        List.init len (fun k -> atoms.((start + k) mod n)))
      ~show:(fun batch ->
        Printf.sprintf "atoms [%s]"
          (String.concat ";"
             (List.map (fun (a : Atom.t) -> string_of_int a.Atom.id) batch)))
      ~shrink:(fun batch ->
        match batch with
        | [] | [ _ ] -> []
        | _ -> List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) batch) batch)
      ~check:(fun batch ->
        let t = Lazy.force scen in
        let net = t.Scenario.network in
        let retain = t.Scenario.retain in
        let bad =
          List.filter
            (fun (a : Atom.t) ->
              let fast = Engine.propagate net ~retain a in
              let plug = Engine.propagate net ~retain ~decision:generic a in
              let ref_ = Engine.propagate_reference net ~retain a in
              not (result_equal fast plug && result_equal plug ref_))
            batch
        in
        match bad with
        | a :: _ ->
            Error
              (Printf.sprintf
                 "pluggable vanilla diverges from fast path/reference on atom %d"
                 a.Atom.id)
        | [] -> Ok (3 * List.length batch))
      ()
  in
  let ns_bgp_converges_on_gadget =
    (* BAD GADGET has no stable state under per-AS selection, so the
       vanilla solver runs into its step cap; NS-BGP converges on the
       same configuration, because what each rim AS exports to its peers
       — its customer route, the only one the valley-free discipline
       lets out — no longer depends on the route it currently prefers
       for itself. *)
    Property.make ~name:"ns_bgp_converges_on_gadget"
      ~gen:(fun rng ->
        let o = 64000 + Prng.int rng 900 in
        let a = o + 1 + Prng.int rng 20 in
        let b = a + 1 + Prng.int rng 20 in
        let c = b + 1 + Prng.int rng 20 in
        (o, a, b, c, 111 + Prng.int rng 40))
      ~show:(fun (o, a, b, c, pref) ->
        Printf.sprintf "origin AS%d rim AS%d/AS%d/AS%d pref %d" o a b c pref)
      ~check:(fun (o, a, b, c, pref) ->
        let origin = Asn.of_int o in
        let a1 = Asn.of_int a and a2 = Asn.of_int b and a3 = Asn.of_int c in
        let graph, import =
          Gadget.bad_gadget ~origin ~rim:(a1, a2, a3) ~pref_rim:pref ()
        in
        let network = Engine.prepare ~graph ~import () in
        let retain = Asn.Set.of_list (Rpi_topo.As_graph.ases graph) in
        let atom =
          Atom.vanilla ~id:0 ~origin [ Prefix.make (Ipv4.of_octets 10 9 9 0) 24 ]
        in
        let vanilla = Engine.propagate network ~retain atom in
        let ns =
          Engine.propagate network ~retain ~decision:Decision.neighbor_specific atom
        in
        if vanilla.Engine.converged then
          Error "vanilla BGP converged on BAD GADGET (expected oscillation)"
        else if not ns.Engine.converged then
          Error "NS-BGP failed to converge on BAD GADGET"
        else begin
          (* The NS fixed point is the wheel every AS wanted: each rim AS
             settles on the route relayed by its preferred peer. *)
          let bad =
            List.filter
              (fun (holder, preferred) ->
                match Engine.best_at ns holder with
                | Some r ->
                    not
                      (Option.equal Asn.equal r.Engine.learned_from (Some preferred)
                      && r.Engine.lp = pref)
                | None -> true)
              [ (a1, a2); (a2, a3); (a3, a1) ]
          in
          match bad with
          | [] -> Ok 2
          | _ :: _ -> Error "NS-BGP fixed point is not the preferred-peer wheel"
        end)
      ()
  in
  (* --- incremental repropagation battery ------------------------------ *)
  (* Typical-preference pocket scenario for the repropagation properties:
     with the atypical/override minorities zeroed, every import policy is
     Gao–Rexford typical, the provider hierarchy is acyclic (and the churn
     generator keeps it that way), so the stable routing state is unique —
     "incremental == batch, byte-for-byte" is a theorem here, not an
     accident of visit order. *)
  let typical =
    lazy
      (Scenario.build
         ~config:
           {
             (Gen.pocket_config ~seed) with
             Scenario.p_atypical_neighbor = 0.0;
             p_atypical_prefix = 0.0;
             p_prefix_override = 0.0;
           }
         ())
  in
  (* Full-result equality minus [steps]: the incremental solver re-solves
     only the dirty cone, so its worklist-pop count legitimately differs
     from a from-scratch batch run; everything observable — candidate
     sets, their order, bests, convergence — must match. *)
  let result_equal_modulo_steps (a : Engine.result) (b : Engine.result) =
    a.Engine.converged = b.Engine.converged
    && Atom.equal a.Engine.atom b.Engine.atom
    && Asn.Map.equal engine_table_equal a.Engine.tables b.Engine.tables
  in
  let decision_of_name name =
    if String.equal name "neighbor-specific" then Decision.neighbor_specific
    else Decision.vanilla
  in
  let pick_decision_name rng =
    if Prng.bool rng then "vanilla" else "neighbor-specific"
  in
  let pick_atoms rng t k =
    let atoms = Array.of_list t.Scenario.atoms in
    let n = Array.length atoms in
    let start = Prng.int rng n in
    List.init (min k n) (fun i -> atoms.((start + i) mod n))
  in
  (* A random applicable delta sequence: topology/announcement churn from
     the seeded generator, plus lp-override edits restricted to links the
     stream's relationship migrations leave alone — so each override value
     can be drawn inside the neighbour's (final) class band and the
     policies stay typical end to end. *)
  let gen_deltas rng t (atoms : Atom.t list) =
    let atom_ids = List.map (fun (a : Atom.t) -> a.Atom.id) atoms in
    let cfg =
      {
        Churn.p_flap = 0.6;
        p_rel_change = 0.5;
        p_withdraw = 0.4;
        max_down_epochs = 3;
        max_out_epochs = 3;
      }
    in
    let stream =
      Churn.generate ~config:cfg rng ~graph:t.Scenario.graph ~atom_ids
        ~epochs:(2 + Prng.int rng 5)
    in
    let events = List.concat_map (fun (e : Churn.epoch) -> e.Churn.events) stream in
    let atom_of id = List.find (fun (a : Atom.t) -> a.Atom.id = id) atoms in
    let churn_deltas = List.map (Engine.Delta.of_event ~atom_of) events in
    let migrated a b =
      List.exists
        (function
          | Churn.Rel_change (x, y, _) ->
              (Asn.equal x a && Asn.equal y b) || (Asn.equal x b && Asn.equal y a)
          | _ -> false)
        events
    in
    let graph = t.Scenario.graph in
    let ases = Array.of_list (Rpi_topo.As_graph.ases graph) in
    let lp_deltas =
      List.concat_map
        (fun (atom : Atom.t) ->
          if not (Prng.chance rng 0.7) then []
          else begin
            let holder = Prng.choice rng ases in
            let candidates =
              Rpi_topo.As_graph.neighbors graph holder
              |> List.filter (fun (nb, rel) ->
                     (not (Relationship.equal rel Relationship.Sibling))
                     && not (migrated holder nb))
            in
            match candidates with
            | [] -> []
            | _ :: _ ->
                let nb, rel = Prng.choice_list rng candidates in
                (* Stay inside the class band (customer > peer > provider)
                   so the override never makes the policy atypical. *)
                let lp =
                  match rel with
                  | Relationship.Customer -> Prng.int_in rng 104 118
                  | Relationship.Peer -> Prng.int_in rng 96 103
                  | Relationship.Provider -> Prng.int_in rng 82 94
                  | Relationship.Sibling -> 100 (* unreachable: filtered *)
                in
                [
                  Engine.Delta.Lp_set
                    { atom_id = atom.Atom.id; holder; neighbor = nb; lp };
                ]
          end)
        atoms
    in
    churn_deltas @ lp_deltas
  in
  let show_case (dname, atoms, deltas) =
    Printf.sprintf "%s atoms [%s] deltas [%s]" dname
      (String.concat ";"
         (List.map (fun (a : Atom.t) -> string_of_int a.Atom.id) atoms))
      (String.concat "; " (List.map Engine.Delta.render deltas))
  in
  let announce_all atoms = List.map (fun a -> Engine.Delta.Announce a) atoms in
  let lp_quads_of deltas =
    List.filter_map
      (function
        | Engine.Delta.Lp_set { atom_id; holder; neighbor; lp } ->
            Some (atom_id, holder, neighbor, lp)
        | _ -> None)
      deltas
  in
  (* Fresh batch network equivalent to the state's current overlay. *)
  let batch_network t st deltas =
    Engine.prepare
      ~graph:(Engine.state_graph st)
      ~import:(Scenario.import_of t)
      ~transit_scope:(Scenario.transit_scope_of t)
      ~lp_overrides:(Scenario.lp_override_quads t @ lp_quads_of deltas)
      ()
  in
  let repropagate_matches_batch =
    Property.make ~name:"repropagate_matches_batch"
      ~gen:(fun rng ->
        let t = Lazy.force typical in
        let atoms = pick_atoms rng t (1 + Prng.int rng 3) in
        let deltas = gen_deltas rng t atoms in
        (pick_decision_name rng, atoms, deltas))
      ~show:show_case
      ~shrink:(fun (dname, atoms, deltas) ->
        match deltas with
        | [] | [ _ ] -> []
        | _ ->
            List.mapi
              (fun i _ -> (dname, atoms, List.filteri (fun j _ -> j <> i) deltas))
              deltas)
      ~check:(fun (dname, atoms, deltas) ->
        let t = Lazy.force typical in
        let net = t.Scenario.network in
        let retain = t.Scenario.retain in
        let decision = decision_of_name dname in
        let st = Engine.init_state ~decision net in
        let (_ : Engine.state) = Engine.repropagate net st (announce_all atoms) in
        let inc0 = Engine.state_results st ~retain in
        let batch0 =
          Engine.propagate_all net ~retain ~decision (Engine.state_atoms st)
        in
        if not (List.equal result_equal_modulo_steps inc0 batch0) then
          Error "announce-from-scratch state diverges from batch propagate"
        else begin
          (* Apply the sequence in two chunks: repropagate must compose
             across calls, not just within one. *)
          let n_deltas = List.length deltas in
          let split_at =
            if n_deltas < 2 then n_deltas else n_deltas / 2
          in
          let chunk1 = List.filteri (fun i _ -> i < split_at) deltas in
          let chunk2 = List.filteri (fun i _ -> i >= split_at) deltas in
          let (_ : Engine.state) = Engine.repropagate net st chunk1 in
          let (_ : Engine.state) = Engine.repropagate net st chunk2 in
          let net' = batch_network t st deltas in
          let batch =
            Engine.propagate_all net' ~retain ~decision (Engine.state_atoms st)
          in
          let inc = Engine.state_results st ~retain in
          if List.equal result_equal_modulo_steps inc batch then
            Ok (2 + List.length deltas)
          else
            Error
              "repropagated state diverges from a fresh batch solve of the \
               modified network"
        end)
      ()
  in
  let repropagate_idempotent_on_noop =
    Property.make ~name:"repropagate_idempotent_on_noop"
      ~gen:(fun rng ->
        let t = Lazy.force typical in
        let atoms = pick_atoms rng t (1 + Prng.int rng 2) in
        let edges =
          Rpi_topo.As_graph.fold_edges (fun a b rel acc -> (a, b, rel) :: acc)
            t.Scenario.graph []
          |> Array.of_list
        in
        let a, b, rel = Prng.choice rng edges in
        let atom = List.nth atoms (Prng.int rng (List.length atoms)) in
        let noops =
          match Prng.int rng 5 with
          | 0 -> [ Engine.Delta.Link_down (a, b); Engine.Delta.Link_up (a, b) ]
          | 1 -> [ Engine.Delta.Rel_set (a, b, rel) ]
          | 2 -> [ Engine.Delta.Withdraw atom.Atom.id; Engine.Delta.Announce atom ]
          | 3 -> [ Engine.Delta.Announce atom ]
          | _ ->
              [
                Engine.Delta.Link_down (a, b);
                Engine.Delta.Link_down (a, b);
                Engine.Delta.Link_up (a, b);
              ]
        in
        (pick_decision_name rng, atoms, noops))
      ~show:show_case
      ~check:(fun (dname, atoms, noops) ->
        let t = Lazy.force typical in
        let net = t.Scenario.network in
        let retain = t.Scenario.retain in
        let decision = decision_of_name dname in
        let st = Engine.init_state ~decision net in
        let (_ : Engine.state) = Engine.repropagate net st (announce_all atoms) in
        let before = Engine.state_results st ~retain in
        let graph_before = Rpi_topo.As_graph.render_edges (Engine.state_graph st) in
        let (_ : Engine.state) = Engine.repropagate net st noops in
        let after = Engine.state_results st ~retain in
        let graph_after = Rpi_topo.As_graph.render_edges (Engine.state_graph st) in
        if not (String.equal graph_before graph_after) then
          Error "no-op delta pair changed the effective graph"
        else if List.equal result_equal_modulo_steps before after then
          Ok (1 + List.length noops)
        else Error "no-op delta pair changed the routing state")
      ()
  in
  let repropagate_commutes_with_coalescing =
    Property.make ~name:"repropagate_commutes_with_coalescing"
      ~gen:(fun rng ->
        let t = Lazy.force typical in
        let atoms = pick_atoms rng t (1 + Prng.int rng 2) in
        let deltas = gen_deltas rng t atoms in
        (* Replaying a prefix doubles up keys so [coalesce] has real work
           to do (last write wins per key on both sides). *)
        let replay =
          List.filteri (fun i _ -> i < Prng.int rng (1 + List.length deltas)) deltas
        in
        (pick_decision_name rng, atoms, deltas @ replay))
      ~show:show_case
      ~shrink:(fun (dname, atoms, deltas) ->
        match deltas with
        | [] | [ _ ] -> []
        | _ ->
            List.mapi
              (fun i _ -> (dname, atoms, List.filteri (fun j _ -> j <> i) deltas))
              deltas)
      ~check:(fun (dname, atoms, deltas) ->
        let t = Lazy.force typical in
        let net = t.Scenario.network in
        let retain = t.Scenario.retain in
        let decision = decision_of_name dname in
        let raw = Engine.init_state ~decision net in
        let (_ : Engine.state) = Engine.repropagate net raw (announce_all atoms) in
        let (_ : Engine.state) = Engine.repropagate net raw deltas in
        let coal = Engine.init_state ~decision net in
        let (_ : Engine.state) = Engine.repropagate net coal (announce_all atoms) in
        let (_ : Engine.state) =
          Engine.repropagate net coal (Engine.Delta.coalesce deltas)
        in
        let raw_graph = Rpi_topo.As_graph.render_edges (Engine.state_graph raw) in
        let coal_graph = Rpi_topo.As_graph.render_edges (Engine.state_graph coal) in
        if not (String.equal raw_graph coal_graph) then
          Error "coalesced deltas yield a different effective graph"
        else if
          List.equal result_equal_modulo_steps
            (Engine.state_results raw ~retain)
            (Engine.state_results coal ~retain)
        then Ok (1 + List.length deltas)
        else Error "coalesced deltas yield a different routing state")
      ()
  in
  let scaled_csr_matches_reference =
    (* The CSR fast path at the scale the engine is built for: a 1k-AS
       heavy-tailed topology out of the O(n+E) generator (not the pocket
       scenario's ~100 ASs), solved by the scratch-reusing CSR engine,
       the sharded batch, and the list-of-routes reference — all three
       byte-identical, for both shipped decision processes. *)
    let scaled =
      lazy
        (let topo =
           Topo_gen.generate_scaled
             ~config:(Topo_gen.scale_config ~n:1000)
             (Prng.create ~seed:(seed + 101))
         in
         let network =
           Engine.prepare ~graph:topo.Topo_gen.graph
             ~import:(fun _ -> Rpi_sim.Policy.default_import)
             ()
         in
         let retain = Asn.Set.of_list topo.Topo_gen.tier1 in
         (Array.of_list topo.Topo_gen.stubs, network, retain))
    in
    Property.make ~name:"scaled_csr_matches_reference"
      ~gen:(fun rng ->
        let stubs, _, _ = Lazy.force scaled in
        let n = Array.length stubs in
        let len = 2 + Prng.int rng 3 in
        List.init len (fun k -> (Prng.int rng n, k)))
      ~show:(fun picks ->
        Printf.sprintf "stub-origins [%s]"
          (String.concat ";" (List.map (fun (i, _) -> string_of_int i) picks)))
      ~shrink:(fun picks ->
        match picks with
        | [] | [ _ ] -> []
        | _ -> List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) picks) picks)
      ~check:(fun picks ->
        let stubs, net, retain = Lazy.force scaled in
        let atoms =
          List.map
            (fun (i, k) ->
              let prefix =
                Prefix.make (Ipv4.of_octets 10 (i land 0xFF) ((i lsr 8) land 0xFF) 0) 24
              in
              Atom.vanilla ~id:k ~origin:stubs.(i) [ prefix ])
            picks
        in
        let bad =
          List.filter
            (fun (a : Atom.t) ->
              let fast = Engine.propagate net ~retain a in
              let ref_ = Engine.propagate_reference net ~retain a in
              not (result_equal fast ref_))
            atoms
        in
        match bad with
        | a :: _ ->
            Error
              (Printf.sprintf
                 "CSR solver diverges from the reference on scaled atom %d" a.Atom.id)
        | [] ->
            let sharded =
              Engine.propagate_all net ~retain
                ~decision:Decision.neighbor_specific ~jobs:2 atoms
            in
            let fresh =
              List.map
                (Engine.propagate net ~retain ~decision:Decision.neighbor_specific)
                atoms
            in
            if List.equal result_equal sharded fresh then Ok (3 * List.length atoms)
            else
              Error
                "sharded Per_neighbor batch diverges from fresh per-atom solves \
                 on the scaled topology")
      ()
  in
  [
    sa_subset_monotone;
    import_renumber_invariant;
    gao_permutation_invariant;
    gao_ground_truth;
    interned_engine_matches_reference;
    decision_vanilla_matches_reference;
    scaled_csr_matches_reference;
    ns_bgp_converges_on_gadget;
    incremental_matches_batch;
    repropagate_matches_batch;
    repropagate_idempotent_on_noop;
    repropagate_commutes_with_coalescing;
  ]

let suite ~seed =
  [
    table_dump_roundtrip;
    show_ip_bgp_roundtrip;
    snapshot_roundtrip;
    rpsl_roundtrip;
    detect_format_total;
    fault_table_dump;
    fault_show_ip_bgp;
    fault_rpsl;
    fault_wire_frame;
    pipelined_matches_serial;
    json_roundtrip;
    runner_ndjson_roundtrip;
  ]
  @ scenario_properties ~seed

let names ~seed = List.map Property.name (suite ~seed)
