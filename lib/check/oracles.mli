(** The property catalogue: metamorphic/differential oracles over the whole
    pipeline (parsers, snapshot IO, JSON emission, SA-prefix inference,
    import-policy inference, Gao relationship inference) plus the
    fault-injection properties that feed every parser mutated corpora.

    The scenario-backed oracles share one pocket-sized scenario, built
    lazily from the run seed on first use. *)

val suite : seed:int -> Property.t list
(** All properties, in reporting order.  Deterministic in [seed]. *)

val names : seed:int -> string list
(** The property names [suite] would report, for [--list] and
    [--properties] validation. *)
