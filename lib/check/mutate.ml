module Prng = Rpi_prng.Prng

type kind =
  | Truncate
  | Byte_flip
  | Drop_line
  | Dup_line
  | Swap_lines
  | Shuffle_lines
  | Garbage_line
  | Splice
  | Blank

let kind_to_string = function
  | Truncate -> "truncate"
  | Byte_flip -> "byte-flip"
  | Drop_line -> "drop-line"
  | Dup_line -> "dup-line"
  | Swap_lines -> "swap-lines"
  | Shuffle_lines -> "shuffle-lines"
  | Garbage_line -> "garbage-line"
  | Splice -> "splice"
  | Blank -> "blank"

let split_lines s = String.split_on_char '\n' s
let join_lines lines = String.concat "\n" lines

let garbage rng =
  let len = Prng.int rng 60 in
  String.init len (fun _ ->
      let c = Prng.int_in rng 0 255 in
      if c = Char.code '\n' then '|' else Char.chr c)

let apply rng kind s =
  let lines = split_lines s in
  let n_lines = List.length lines in
  match kind with
  | Blank -> ""
  | Truncate ->
      if String.length s = 0 then s else String.sub s 0 (Prng.int rng (String.length s))
  | Byte_flip ->
      if String.length s = 0 then s
      else begin
        let b = Bytes.of_string s in
        Bytes.set b (Prng.int rng (Bytes.length b)) (Char.chr (Prng.int_in rng 0 255));
        Bytes.to_string b
      end
  | Drop_line ->
      let victim = Prng.int rng n_lines in
      join_lines (List.filteri (fun i _ -> i <> victim) lines)
  | Dup_line ->
      let victim = Prng.int rng n_lines in
      join_lines
        (List.concat (List.mapi (fun i l -> if i = victim then [ l; l ] else [ l ]) lines))
  | Swap_lines ->
      if n_lines < 2 then s
      else begin
        let i = Prng.int rng n_lines and j = Prng.int rng n_lines in
        let arr = Array.of_list lines in
        let tmp = arr.(i) in
        arr.(i) <- arr.(j);
        arr.(j) <- tmp;
        join_lines (Array.to_list arr)
      end
  | Shuffle_lines -> join_lines (Prng.shuffle_list rng lines)
  | Garbage_line ->
      let at = Prng.int rng (n_lines + 1) in
      let rec insert i = function
        | rest when i = at -> garbage rng :: rest
        | [] -> [ garbage rng ]
        | l :: rest -> l :: insert (i + 1) rest
      in
      join_lines (insert 0 lines)
  | Splice ->
      if String.length s < 2 then s
      else begin
        let i = Prng.int rng (String.length s) in
        let j = Prng.int rng (String.length s) in
        String.sub s 0 i ^ String.sub s j (String.length s - j)
      end

let kinds =
  [
    Truncate; Byte_flip; Byte_flip; Drop_line; Dup_line; Swap_lines; Shuffle_lines;
    Garbage_line; Garbage_line; Splice; Blank;
  ]

let mutant rng s =
  let once = apply rng (Prng.choice_list rng kinds) s in
  if Prng.chance rng 0.3 then apply rng (Prng.choice_list rng kinds) once else once

let mutants rng ~count s = List.init count (fun _ -> mutant rng s)

let shrink_text s =
  if String.length s = 0 then []
  else begin
    let lines = split_lines s in
    let n = List.length lines in
    if n > 1 then begin
      let half = n / 2 in
      let firsts = List.filteri (fun i _ -> i < half) lines in
      let seconds = List.filteri (fun i _ -> i >= half) lines in
      let drops =
        if n <= 12 then
          List.init n (fun v -> join_lines (List.filteri (fun i _ -> i <> v) lines))
        else []
      in
      join_lines firsts :: join_lines seconds :: drops
    end
    else begin
      let len = String.length s in
      if len <= 1 then [ "" ]
      else [ String.sub s 0 (len / 2); String.sub s (len / 2) (len - (len / 2)) ]
    end
  end

let lines_of s = split_lines s |> List.filter (fun l -> String.length (String.trim l) > 0)

let surviving_lines ~original ~mutant =
  let originals = lines_of original in
  lines_of mutant
  |> List.filter (fun l -> List.exists (String.equal l) originals)
