module Prng = Rpi_prng.Prng

type counterexample = {
  case : int;
  case_seed : int;
  reason : string;
  input : string;
  shrink_steps : int;
}

type status =
  | Pass
  | Fail of counterexample

type outcome = {
  name : string;
  seed : int;
  cases_run : int;
  checks : int;
  status : status;
}

type t = { name : string; exec : seed:int -> cases:int -> outcome }

let name t = t.name

(* FNV-1a over the property name: stable across runs and OCaml versions,
   unlike Hashtbl.hash. *)
let fnv s =
  String.fold_left (fun h c -> (h lxor Char.code c) * 0x01000193 land max_int) 0x811c9dc5 s

let case_seed ~seed ~name ~case =
  (seed * 0x9e3779b1) lxor fnv name lxor (case * 0x85ebca77) land max_int

let max_shrink_steps = 400

let make ~name ?(shrink = fun _ -> []) ~gen ~show ~check () =
  let run_check x =
    try check x with e -> Error ("uncaught exception: " ^ Printexc.to_string e)
  in
  let shrink_to_minimal x reason =
    let rec go x reason steps =
      if steps >= max_shrink_steps then (x, reason, steps)
      else begin
        let still_failing =
          List.find_map
            (fun cand ->
              match run_check cand with
              | Error r -> Some (cand, r)
              | Ok _ -> None)
            (shrink x)
        in
        match still_failing with
        | Some (cand, r) -> go cand r (steps + 1)
        | None -> (x, reason, steps)
      end
    in
    go x reason 0
  in
  let exec ~seed ~cases =
    let rec loop case checks =
      if case >= cases then { name; seed; cases_run = cases; checks; status = Pass }
      else begin
        let cs = case_seed ~seed ~name ~case in
        let rng = Prng.create ~seed:cs in
        match (try Ok (gen rng) with e -> Error (Printexc.to_string e)) with
        | Error msg ->
            {
              name;
              seed;
              cases_run = case + 1;
              checks;
              status =
                Fail
                  {
                    case;
                    case_seed = cs;
                    reason = "generator raised: " ^ msg;
                    input = "<generator failure>";
                    shrink_steps = 0;
                  };
            }
        | Ok x -> begin
            match run_check x with
            | Ok n -> loop (case + 1) (checks + n)
            | Error reason ->
                let x, reason, shrink_steps = shrink_to_minimal x reason in
                {
                  name;
                  seed;
                  cases_run = case + 1;
                  checks;
                  status =
                    Fail { case; case_seed = cs; reason; input = show x; shrink_steps };
                }
          end
      end
    in
    loop 0 0
  in
  { name; exec }

let run t ~seed ~cases = t.exec ~seed ~cases

let passed (o : outcome) =
  match o.status with
  | Pass -> true
  | Fail _ -> false

let outcome_to_json (o : outcome) =
  let base =
    [
      ("property", Rpi_json.String o.name);
      ("seed", Rpi_json.Int o.seed);
      ("cases", Rpi_json.Int o.cases_run);
      ("checks", Rpi_json.Int o.checks);
      ( "status",
        Rpi_json.String
          (match o.status with
          | Pass -> "pass"
          | Fail _ -> "fail") );
    ]
  in
  match o.status with
  | Pass -> Rpi_json.Obj base
  | Fail c ->
      Rpi_json.Obj
        (base
        @ [
            ( "counterexample",
              Rpi_json.Obj
                [
                  ("case", Rpi_json.Int c.case);
                  ("case_seed", Rpi_json.Int c.case_seed);
                  ("shrink_steps", Rpi_json.Int c.shrink_steps);
                  ("reason", Rpi_json.String c.reason);
                  ("input", Rpi_json.String c.input);
                ] );
          ])

let render (o : outcome) =
  match o.status with
  | Pass ->
      Printf.sprintf "PASS %-28s %d cases, %d checks" o.name o.cases_run o.checks
  | Fail c ->
      String.concat "\n"
        [
          Printf.sprintf "FAIL %-28s case %d (case seed %d, %d shrink steps)" o.name
            c.case c.case_seed c.shrink_steps;
          Printf.sprintf "     reason: %s" c.reason;
          Printf.sprintf "     input:  %s"
            (String.concat "\n             " (String.split_on_char '\n' c.input));
          Printf.sprintf "     replay: rpicheck --seed %d --properties %s" o.seed o.name;
        ]
