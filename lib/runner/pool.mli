(** The domain-pool discipline shared by the experiment runner and the
    rpiserved accept loop — a re-export of [Rpi_pool.Pool], which is where
    the implementation lives so that layers below the runner (the
    propagation engine's atom-level fan-out) can share it. *)

include module type of Rpi_pool.Pool
