(* Re-export: the pool discipline lives in lib/pool/ (rpi_pool) so layers
   below the runner — the propagation engine's atom fan-out in
   lib/sim/ — can use it without depending on the experiment catalogue. *)
include Rpi_pool.Pool
