(** Parallel experiment runner on OCaml 5 domains.

    A fixed-size pool of domains pulls experiments off a shared queue,
    executes them against one shared {!Rpi_experiments.Context.t} (safe:
    the context is immutable except for its mutex-protected SA cache), and
    collects the structured outcomes {e deterministically in declaration
    order}, with a per-experiment wall-clock timing.  The rendered text of
    a parallel run is byte-identical to a sequential one.

    This is the single execution entry point shared by the
    [bin/experiments] CLI, the bench harness, and the examples. *)

module Exp = Rpi_experiments.Exp
module Context = Rpi_experiments.Context

type timed = {
  outcome : Exp.outcome;
  elapsed_s : float;  (** Wall-clock seconds this experiment took. *)
}

type report = {
  jobs : int;  (** Number of domains the pool actually used. *)
  wall_clock_s : float;  (** Wall-clock seconds for the whole batch. *)
  schedule : string list;
      (** Experiment ids in hand-out order: declaration order when
          [jobs = 1], descending {!Exp.t.cost} (ties by declaration order)
          when [jobs > 1].  Purely observational — results are unaffected. *)
  results : timed list;  (** One per experiment, in declaration order. *)
}

val default_jobs : unit -> int
(** The [RPI_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  An unparseable
    [RPI_JOBS] is reported on stderr and ignored. *)

val run : ?jobs:int -> Context.t -> Exp.t list -> report
(** Execute the experiments on [jobs] domains (default {!default_jobs},
    clamped to the number of experiments; [jobs <= 1] runs everything in
    the calling domain with no spawns).  On several domains the shared
    queue hands experiments out longest-first by their {!Exp.t.cost} hint.
    Results come back in the order the experiments were given, regardless
    of completion or hand-out order.  If an experiment raises, the
    exception is re-raised (with its backtrace) after every domain has
    been joined. *)

val render : report -> string
(** The rendered reports joined with a blank line — byte-identical to
    [Exp.run_all] on the same context. *)

val outcome_to_json : Exp.outcome -> Rpi_json.t
(** [{"id", "title", "metrics": {name: value}, "tables": [{"title"?,
    "columns": [{"name", "align"}], "rows": [[cell]]}]}] — the rendered
    text is deliberately omitted; it is derivable and large. *)

val timed_to_json : timed -> Rpi_json.t
(** {!outcome_to_json} plus an ["elapsed_s"] field. *)

val report_to_json : report -> Rpi_json.t
(** [{"jobs", "wall_clock_s", "experiments": [timed...]}]. *)
