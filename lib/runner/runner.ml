module Exp = Rpi_experiments.Exp
module Context = Rpi_experiments.Context
module Table = Rpi_stats.Table
module Json = Rpi_json

type timed = { outcome : Exp.outcome; elapsed_s : float }

type report = {
  jobs : int;
  wall_clock_s : float;
  schedule : string list;
  results : timed list;
}

let default_jobs = Pool.default_jobs

let now = Unix.gettimeofday

let run_one ctx (exp : Exp.t) =
  let t0 = now () in
  let outcome = exp.Exp.run ctx in
  { outcome; elapsed_s = now () -. t0 }

let run ?jobs ctx exps =
  let requested = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let exps = Array.of_list exps in
  let n = Array.length exps in
  let jobs = min requested (max 1 n) in
  let t0 = now () in
  (* Hand-out order for the work-stealing loop: most expensive first
     (stable on the declaration index for equal costs), so the batch never
     ends with one long experiment overhanging on an otherwise idle pool.
     A single domain keeps declaration order — the hint cannot help there,
     and the sequential trace stays the familiar one. *)
  let order = Array.init n (fun i -> i) in
  if jobs > 1 then
    Array.sort
      (fun a b ->
        match Float.compare exps.(b).Exp.cost exps.(a).Exp.cost with
        | 0 -> Int.compare a b
        | c -> c)
      order;
  (* Each slot is written by exactly one domain (indices are handed out by
     the atomic counter), and read only after every domain is joined. *)
  let slots = Array.make n None in
  if jobs = 1 then
    Array.iteri (fun i exp -> slots.(i) <- Some (Ok (run_one ctx exp))) exps
  else begin
    let next = Atomic.make 0 in
    let worker _id =
      let rec loop () =
        let k = Atomic.fetch_and_add next 1 in
        if k < n then begin
          let i = order.(k) in
          slots.(i) <-
            Some
              (try Ok (run_one ctx exps.(i))
               with e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    Pool.run ~jobs worker
  end;
  let results =
    Array.to_list slots
    |> List.map (function
         | Some (Ok r) -> r
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  in
  let schedule = Array.to_list (Array.map (fun i -> exps.(i).Exp.id) order) in
  { jobs; wall_clock_s = now () -. t0; schedule; results }

let render report =
  String.concat "\n" (List.map (fun r -> r.outcome.Exp.rendered) report.results)

let table_to_json t =
  let title =
    match Table.title t with Some s -> [ ("title", Json.String s) ] | None -> []
  in
  Json.Obj
    (title
    @ [
        ( "columns",
          Json.List
            (List.map
               (fun (name, align) ->
                 Json.Obj
                   [
                     ("name", Json.String name);
                     ( "align",
                       Json.String
                         (match align with Table.Left -> "left" | Table.Right -> "right") );
                   ])
               (Table.columns t)) );
        ( "rows",
          Json.List
            (List.map
               (fun row -> Json.List (List.map (fun c -> Json.String c) row))
               (Table.rows t)) );
      ])

let outcome_to_json (o : Exp.outcome) =
  Json.Obj
    [
      ("id", Json.String o.Exp.id);
      ("title", Json.String o.Exp.title);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) o.Exp.metrics));
      ("tables", Json.List (List.map table_to_json o.Exp.tables));
    ]

let timed_to_json { outcome; elapsed_s } =
  match outcome_to_json outcome with
  | Json.Obj fields -> Json.Obj (fields @ [ ("elapsed_s", Json.Float elapsed_s) ])
  | other -> other

let report_to_json { jobs; wall_clock_s; schedule; results } =
  Json.Obj
    [
      ("jobs", Json.Int jobs);
      ("wall_clock_s", Json.Float wall_clock_s);
      ("schedule", Json.List (List.map (fun id -> Json.String id) schedule));
      ("experiments", Json.List (List.map timed_to_json results));
    ]
