type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> float_to buf v
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          add_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  add_to buf t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'
