type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to buf v =
  if not (Float.is_finite v) then Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> float_to buf v
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_to buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          add_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 256 in
  add_to buf t;
  Buffer.contents buf

let to_channel oc t =
  output_string oc (to_string t);
  output_char oc '\n'

(* ------------------------------------------------------------------ *)
(* Parsing — a recursive-descent reader for the same dialect the
   serializer emits (strict JSON plus raw non-ASCII bytes in strings). *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !pos + String.length word <= n && String.equal (String.sub s !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
      | Some v -> v
      | None -> fail "bad \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF
                   && !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                then begin
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                  else fail "unpaired surrogate"
                end
                else cp
              in
              (match Uchar.of_int cp with
              | u -> Buffer.add_utf_8_uchar buf u
              | exception Invalid_argument _ -> fail "invalid \\u codepoint")
          | _ -> fail "bad escape");
          go ()
      | Some c when Char.code c < 0x20 -> fail "unescaped control character"
      | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let rec consume () =
      match peek () with
      | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
          advance ();
          consume ()
      | _ -> ()
    in
    consume ();
    let text = String.sub s start (!pos - start) in
    let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
    if is_float then
      match float_of_string_opt text with
      | Some v -> Float v
      | None -> fail (Printf.sprintf "bad number %S" text)
    else
      match int_of_string_opt text with
      | Some v -> Int v
      | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some v -> Float v
          | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> String (parse_string ())
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if (match peek () with Some ']' -> true | _ -> false) then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if (match peek () with Some '}' -> true | _ -> false) then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
