(** A minimal JSON tree and serializer — enough to emit machine-readable
    experiment outcomes, CLI reports, and benchmark baselines without an
    external dependency.  Serialization only; no parser. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline).  Floats are
    emitted with enough digits to round-trip; NaN and infinities become
    [null] (JSON has no representation for them). *)

val to_channel : out_channel -> t -> unit
(** [to_string] plus a trailing newline — one JSON document per line. *)
