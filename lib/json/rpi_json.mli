(** A minimal JSON tree, serializer and parser — enough to emit and
    round-trip machine-readable experiment outcomes, CLI reports, lint
    findings and benchmark baselines without an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering (no trailing newline).  Floats are
    emitted with enough digits to round-trip; NaN and infinities become
    [null] (JSON has no representation for them). *)

val to_channel : out_channel -> t -> unit
(** [to_string] plus a trailing newline — one JSON document per line. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (strict JSON; [\uXXXX] escapes, including
    surrogate pairs, decode to UTF-8 bytes, and raw non-ASCII bytes pass
    through — the dialect {!to_string} emits).  Whole numbers parse as
    [Int] (falling back to [Float] beyond [max_int]); anything with a
    fraction or exponent parses as [Float].  [Error] carries a message
    with the byte offset of the failure. *)
