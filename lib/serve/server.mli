(** The rpiserved socket server: a {!Rpi_runner.Pool}-backed accept loop
    answering {!Protocol} requests from a {!Registry}.

    Workers share one non-blocking listening socket and park in
    [Unix.select] on it plus an internal shutdown pipe; {!shutdown}
    (callable from a signal handler) writes the pipe once and every
    worker drains: in-flight requests complete, no new frames are read,
    and {!serve} returns. *)

type address = Unix_socket of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** ["unix:PATH"] or ["HOST:PORT"]. *)

val address_to_string : address -> string

type metrics = {
  connections : int;
  requests : int;
  errors : int;  (** Parse failures and error responses. *)
  busy_s : float;  (** Summed request handling time. *)
}

type t

val create : ?log:(Rpi_json.t -> unit) -> address:address -> Registry.t -> t
(** Bind and listen.  [log] receives one access-log object per request
    ([worker], [cmd], [ok], [elapsed_us]).  A pre-existing unix socket
    path is removed first.
    @raise Unix.Unix_error if the address cannot be bound. *)

val serve : ?jobs:int -> t -> unit
(** Run the accept loop on the calling domain plus [jobs - 1] spawned
    ones ({!Rpi_runner.Pool.run} discipline).  Returns after
    {!shutdown}. *)

val shutdown : t -> unit
(** Begin graceful drain.  Async-signal-safe enough for a [Sys.signal]
    handler: one atomic flag set plus one pipe write. *)

val draining : t -> bool
(** True once {!shutdown} has been called — what a replay feeder polls as
    its [stop] condition. *)

val close : t -> unit
(** Release the listening socket and shutdown pipe; unlinks a unix socket
    path.  Call after {!serve} returns. *)

val metrics : t -> metrics

(** {2 Client side} *)

val connect : address -> Unix.file_descr

val query : address -> Protocol.request -> (Rpi_json.t, string) result
(** One-shot client: connect, send the request, read one response frame,
    close.  What [bgptool query] uses. *)
