(** The rpiserved socket server: {!Eventloop} multiplexers on an
    {!Rpi_runner.Pool}, answering {!Protocol} requests from a
    {!Registry} snapshot.

    Every pool domain runs one readiness loop over a shared non-blocking
    listener (accept balanced by a shared lock) and its own connections
    — pipelined requests, write backpressure, explicit load shedding
    (see {!Eventloop.config}).  {!shutdown} (callable from a signal
    handler) writes an internal pipe once and every loop drains:
    already-queued responses flush under a bounded grace, no new frames
    are read, and {!serve} returns. *)

type address = Unix_socket of string | Tcp of string * int

val address_of_string : string -> (address, string) result
(** ["unix:PATH"] or ["HOST:PORT"]. *)

val address_to_string : address -> string

type metrics = {
  connections : int;
  requests : int;
  errors : int;  (** Parse failures, protocol violations and error responses. *)
  sheds : int;  (** Connections/requests refused with the [overloaded] frame. *)
  busy_s : float;  (** Summed request handling time. *)
}

type t

val create :
  ?log:(Rpi_json.t -> unit) ->
  ?config:Eventloop.config ->
  address:address ->
  Registry.t ->
  t
(** Bind and listen.  [log] receives one access-log object per request
    ([worker], [cmd], [ok], [elapsed_us]); [config] defaults to
    {!Eventloop.default_config}.  A pre-existing unix socket path is
    removed first.
    @raise Unix.Unix_error if the address cannot be bound. *)

val serve : ?jobs:int -> t -> unit
(** Run one event loop on the calling domain plus [jobs - 1] spawned
    ones ({!Rpi_runner.Pool.run} discipline).  Returns after
    {!shutdown}. *)

val shutdown : t -> unit
(** Begin graceful drain.  Async-signal-safe enough for a [Sys.signal]
    handler: one atomic flag set plus one pipe write. *)

val draining : t -> bool
(** True once {!shutdown} has been called — what a replay feeder polls as
    its [stop] condition. *)

val close : t -> unit
(** Release the listening socket and shutdown pipe; unlinks a unix socket
    path.  Call after {!serve} returns. *)

val metrics : t -> metrics

(** {2 Client side} *)

val connect : address -> Unix.file_descr

val query :
  ?timeout:float ->
  ?attempts:int ->
  address ->
  Protocol.request ->
  (Rpi_json.t, string) result
(** One-shot client: connect, send the request, read one response frame,
    close.  What [bgptool query] uses.

    [timeout] bounds each attempt's socket reads and writes (seconds);
    [attempts] (default 1) bounds reconnect-with-backoff: transient
    failures — connection refused/reset, server draining mid-frame, a
    timeout, or an [overloaded] shed frame — sleep [0.05 * 2^k] and
    retry on a fresh connection.  When attempts run out on a shed frame
    the frame itself is returned as [Ok] so callers can distinguish
    overload ({!Protocol.is_overloaded}) from failure. *)
