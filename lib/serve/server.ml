type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad listen address %S (want unix:PATH or HOST:PORT)" s)
  | Some i ->
      let head = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal head "unix" then
        if String.equal tail "" then Error "unix: needs a socket path"
        else Ok (Unix_socket tail)
      else begin
        match int_of_string_opt tail with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp (head, port))
        | Some _ | None -> Error (Printf.sprintf "bad port in listen address %S" s)
      end

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type metrics = {
  connections : int;
  requests : int;
  errors : int;
  busy_s : float;  (** summed request handling time *)
}

type t = {
  registry : Registry.t;
  address : address;
  listen_fd : Unix.file_descr;
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  stopping : bool Atomic.t;
  log : (Rpi_json.t -> unit) option;
  m_connections : int Atomic.t;
  m_requests : int Atomic.t;
  m_errors : int Atomic.t;
  m_busy_us : int Atomic.t;  (* float seconds don't fetch_and_add *)
}

let bind_listen address =
  let fd =
    match address with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let addr =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let create ?log ~address registry =
  let listen_fd = bind_listen address in
  let pipe_rd, pipe_wr = Unix.pipe () in
  {
    registry;
    address;
    listen_fd;
    pipe_rd;
    pipe_wr;
    stopping = Atomic.make false;
    log;
    m_connections = Atomic.make 0;
    m_requests = Atomic.make 0;
    m_errors = Atomic.make 0;
    m_busy_us = Atomic.make 0;
  }

let metrics t =
  {
    connections = Atomic.get t.m_connections;
    requests = Atomic.get t.m_requests;
    errors = Atomic.get t.m_errors;
    busy_s = float_of_int (Atomic.get t.m_busy_us) /. 1e6;
  }

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake every worker parked in select; a single byte fans out because
       nobody drains the pipe. *)
    try ignore (Unix.write t.pipe_wr (Bytes.of_string "x") 0 1)
    with Unix.Unix_error (_, _, _) -> ()
  end

let stopping t = Atomic.get t.stopping
let draining = stopping

let record t ~ok ~elapsed =
  Atomic.incr t.m_requests;
  if not ok then Atomic.incr t.m_errors;
  ignore (Atomic.fetch_and_add t.m_busy_us (int_of_float (elapsed *. 1e6)))

let access_log t ~worker ~cmd ~ok ~elapsed =
  match t.log with
  | None -> ()
  | Some log ->
      log
        (Rpi_json.Obj
           [
             ("worker", Rpi_json.Int worker);
             ("cmd", Rpi_json.String cmd);
             ("ok", Rpi_json.Bool ok);
             ("elapsed_us", Rpi_json.Int (int_of_float (elapsed *. 1e6)));
           ])

let cmd_label = function
  | Protocol.Sa_status { prefix = None; _ } -> "sa-status"
  | Protocol.Sa_status { prefix = Some _; _ } -> "sa-status/prefix"
  | Protocol.Import_pref _ -> "import-pref"
  | Protocol.Stats -> "stats"
  | Protocol.Snapshot -> "snapshot"

(* Wait until [fd] is readable or the shutdown pipe fires.  [`Ready] means
   data (or a peer) is waiting on [fd]. *)
let rec wait_readable t fd =
  match Unix.select [ fd; t.pipe_rd ] [] [] (-1.0) with
  | readable, _, _ ->
      if List.memq t.pipe_rd readable then `Stop
      else if List.memq fd readable then `Ready
      else wait_readable t fd
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if stopping t then `Stop else wait_readable t fd

(* One connection: serve frames until the peer closes or drain starts.
   An in-flight request always completes — drain only refuses to start
   reading the next frame. *)
let serve_connection t ~worker fd =
  let rec loop () =
    match wait_readable t fd with
    | `Stop -> ()
    | `Ready -> begin
        match Protocol.read_frame fd with
        | Ok None -> ()
        | Error msg ->
            Protocol.write_json fd (Protocol.error_response msg);
            record t ~ok:false ~elapsed:0.0
        | Ok (Some body) ->
            let t0 = Unix.gettimeofday () in
            let response, label, ok =
              match Result.bind (Rpi_json.of_string body) Protocol.request_of_json with
              | Ok request ->
                  (Registry.respond t.registry request, cmd_label request, true)
              | Error msg -> (Protocol.error_response msg, "parse-error", false)
            in
            let ok =
              ok
              &&
              match response with
              | Rpi_json.Obj (("error", _) :: _) -> false
              | _ -> true
            in
            Protocol.write_json fd response;
            let elapsed = Unix.gettimeofday () -. t0 in
            record t ~ok ~elapsed;
            access_log t ~worker ~cmd:label ~ok ~elapsed;
            if not (stopping t) then loop ()
      end
  in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () -> try loop () with Unix.Unix_error (Unix.EPIPE, _, _) -> ())

let accept_loop t ~worker =
  let rec loop () =
    if not (stopping t) then begin
      match wait_readable t t.listen_fd with
      | `Stop -> ()
      | `Ready -> begin
          (* Workers race on the same non-blocking listener; losers get
             EAGAIN and go back to select. *)
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ ->
              Atomic.incr t.m_connections;
              serve_connection t ~worker fd;
              loop ()
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
              loop ()
        end
    end
  in
  loop ()

let serve ?jobs t = Rpi_runner.Pool.run ?jobs (fun worker -> accept_loop t ~worker)

let close t =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    [ t.listen_fd; t.pipe_rd; t.pipe_wr ];
  match t.address with
  | Unix_socket path -> if Sys.file_exists path then Sys.remove path
  | Tcp _ -> ()

(* --- client side --------------------------------------------------- *)

let connect address =
  match address with
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let query address request =
  let fd = connect address in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    (fun () ->
      Protocol.write_json fd (Protocol.request_to_json request);
      match Protocol.read_json fd with
      | Ok (Some json) -> Ok json
      | Ok None -> Error "server closed the connection without answering"
      | Error _ as e -> e)
