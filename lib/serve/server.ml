type address = Unix_socket of string | Tcp of string * int

let address_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad listen address %S (want unix:PATH or HOST:PORT)" s)
  | Some i ->
      let head = String.sub s 0 i in
      let tail = String.sub s (i + 1) (String.length s - i - 1) in
      if String.equal head "unix" then
        if String.equal tail "" then Error "unix: needs a socket path"
        else Ok (Unix_socket tail)
      else begin
        match int_of_string_opt tail with
        | Some port when port > 0 && port < 65536 -> Ok (Tcp (head, port))
        | Some _ | None -> Error (Printf.sprintf "bad port in listen address %S" s)
      end

let address_to_string = function
  | Unix_socket path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type metrics = {
  connections : int;
  requests : int;
  errors : int;
  sheds : int;
  busy_s : float;  (** summed request handling time *)
}

type t = {
  registry : Registry.t;
  address : address;
  config : Eventloop.config;
  listen_fd : Unix.file_descr;
  pipe_rd : Unix.file_descr;
  pipe_wr : Unix.file_descr;
  stopping : bool Atomic.t;
  accept_lock : Mutex.t;
  log : (Rpi_json.t -> unit) option;
  stats : Eventloop.stats;
}

(* A write to a peer-closed socket must surface as EPIPE so the
   connection state machine (and the client helpers' retry logic) can
   handle it — the default SIGPIPE disposition kills the whole process
   instead, taking every loop domain with it.  Idempotent; set on both
   the serving and the connecting path so CLI clients are covered too. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ -> ()

let bind_listen address =
  let fd =
    match address with
    | Unix_socket path ->
        if Sys.file_exists path then Sys.remove path;
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        fd
    | Tcp (host, port) ->
        let addr =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (addr, port));
        fd
  in
  Unix.listen fd 64;
  Unix.set_nonblock fd;
  fd

let create ?log ?(config = Eventloop.default_config) ~address registry =
  ignore_sigpipe ();
  let listen_fd = bind_listen address in
  let pipe_rd, pipe_wr = Unix.pipe () in
  {
    registry;
    address;
    config;
    listen_fd;
    pipe_rd;
    pipe_wr;
    stopping = Atomic.make false;
    accept_lock = Mutex.create ();
    log;
    stats = Eventloop.make_stats ();
  }

let metrics t =
  let s = t.stats in
  {
    connections = Eventloop.connections_seen s;
    requests = Eventloop.requests_total s;
    errors = Eventloop.errors_total s;
    sheds = Eventloop.sheds_total s;
    busy_s = Eventloop.busy_seconds s;
  }

let shutdown t =
  if not (Atomic.exchange t.stopping true) then begin
    (* Wake every loop parked in select; a single byte fans out because
       nobody drains the pipe. *)
    try ignore (Unix.write t.pipe_wr (Bytes.of_string "x") 0 1)
    with Unix.Unix_error (_, _, _) -> ()
  end

let stopping t = Atomic.get t.stopping
let draining = stopping

let serve ?jobs t =
  Rpi_runner.Pool.run ?jobs (fun worker ->
      Eventloop.run ~config:t.config ~registry:t.registry
        ~listen_fd:t.listen_fd ~wake_fd:t.pipe_rd ~accept_lock:t.accept_lock
        ~draining:(fun () -> stopping t)
        ~stats:t.stats ?log:t.log ~worker ())

let close t =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
    [ t.listen_fd; t.pipe_rd; t.pipe_wr ];
  match t.address with
  | Unix_socket path -> if Sys.file_exists path then Sys.remove path
  | Tcp _ -> ()

(* --- client side --------------------------------------------------- *)

let connect address =
  ignore_sigpipe ();
  match address with
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Tcp (host, port) ->
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

(* A connect/read/write failure a fresh connection might not repeat:
   the server restarting (refused / unreachable socket path), a shed or
   drained connection (reset / EOF mid-frame), or a timeout. *)
let transient_unix_error = function
  | Unix.ECONNREFUSED | Unix.ECONNRESET | Unix.ECONNABORTED | Unix.EPIPE
  | Unix.ENOENT | Unix.ETIMEDOUT | Unix.EAGAIN | Unix.EWOULDBLOCK ->
      true
  | _ -> false

let query_once ?timeout address request =
  match connect address with
  | exception Unix.Unix_error (e, _, _) when transient_unix_error e ->
      `Retry (Printf.sprintf "connect: %s" (Unix.error_message e))
  | exception Unix.Unix_error (e, _, _) ->
      `Fail (Printf.sprintf "connect: %s" (Unix.error_message e))
  | fd ->
      Fun.protect
        ~finally:(fun () ->
          try Unix.close fd with Unix.Unix_error (_, _, _) -> ())
        (fun () ->
          Option.iter
            (fun s ->
              Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO s)
            timeout;
          match
            (* A shed connection may be closed server-side before our
               write lands; its overloaded frame is still queued for
               reading, so a broken-pipe write is not fatal here. *)
            (try Protocol.write_json fd (Protocol.request_to_json request)
             with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
               ());
            Protocol.read_json fd
          with
          | Ok (Some json) ->
              if Protocol.is_overloaded json then `Overloaded json
              else `Ok json
          | Ok None -> `Retry "server closed the connection without answering"
          | Error msg -> `Fail msg
          | exception
              Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              (* SO_RCVTIMEO/SO_SNDTIMEO expire as EAGAIN. *)
              `Retry "timed out waiting for the server"
          | exception Unix.Unix_error (e, _, _) when transient_unix_error e ->
              `Retry (Unix.error_message e)
          | exception Unix.Unix_error (e, _, _) -> `Fail (Unix.error_message e))

(* Bounded reconnect-with-backoff: transient failures sleep
   0.05 * 2^attempt then retry on a fresh connection; an [overloaded]
   shed frame also retries (the server asked us to back off) but is
   reported distinctly once attempts run out. *)
let query ?timeout ?(attempts = 1) address request =
  let attempts = max 1 attempts in
  let rec go k last =
    if k >= attempts then
      match last with
      | `Overloaded json -> Ok json
      | `Msg msg ->
          Error
            (if attempts > 1 then
               Printf.sprintf "%s (after %d attempts)" msg attempts
             else msg)
    else begin
      if k > 0 then Unix.sleepf (0.05 *. (2.0 ** float_of_int (k - 1)));
      match query_once ?timeout address request with
      | `Ok json -> Ok json
      | `Fail msg -> Error msg
      | `Retry msg -> go (k + 1) (`Msg msg)
      | `Overloaded json -> go (k + 1) (`Overloaded json)
    end
  in
  go 0 (`Msg "no attempts made")
