module Asn = Rpi_bgp.Asn
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render

type t = {
  collector : State.t;
  vantages : (Asn.t * State.t) list;
}

let create ~collector ~vantages = { collector; vantages }

let find t asn =
  List.find_opt (fun (a, _) -> Asn.equal a asn) t.vantages |> Option.map snd

let snapshot t =
  Rpi_mrt.Table_dump.rib_to_string
    ~vantage_as:(State.vantage t.collector)
    (State.rib t.collector)

let respond t request =
  match request with
  | Protocol.Stats -> Render.stats_of_state t.collector
  | Protocol.Snapshot ->
      Rpi_json.Obj
        [
          ("format", Rpi_json.String "table_dump");
          ("dump", Rpi_json.String (snapshot t));
        ]
  | Protocol.Sa_status { asn; prefix } -> begin
      match find t asn with
      | None ->
          Protocol.error_response
            (Printf.sprintf "%s is not a served vantage" (Asn.to_label asn))
      | Some state -> begin
          match prefix with
          | None -> Render.sa ~viewpoint:"own-feed" (State.sa_report state)
          | Some prefix ->
              Render.sa_status ~provider:asn ~prefix (State.sa_status state prefix)
        end
    end
  | Protocol.Import_pref asn -> begin
      match find t asn with
      | None ->
          Protocol.error_response
            (Printf.sprintf "%s is not a served vantage" (Asn.to_label asn))
      | Some state -> Render.import_pref (State.import_report state)
    end
