module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render

type view = {
  v_graph : Rpi_topo.As_graph.t;
  v_rib : Rib.t;
  v_sa : Rpi_json.t;
  v_import : Rpi_json.t;
  (* The same two reports rendered to wire bytes at publish time, so
     the event loop's hot dispatch is a field read, not a JSON walk. *)
  v_sa_str : string;
  v_import_str : string;
}

type snapshot = {
  generation : int;
  stats : Rpi_json.t;
  stats_str : string;
  collector_vantage : Asn.t;
  collector_rib : Rib.t;
  views : (Asn.t * view) list;
}

type t = {
  collector : State.t;
  vantages : (Asn.t * State.t) list;
  snap : snapshot Atomic.t;
}

(* Build a fresh immutable snapshot from the live states.  Only the
   publisher takes the states' mutexes; the per-state report memos make
   this cheap when nothing changed since the last refresh.  The rendered
   report objects are exactly what [respond] used to compute per request
   against the live state, so answers stay byte-identical — they just
   come from the last published generation instead of racing ingestion. *)
let build_snapshot ~generation collector vantages =
  let views =
    List.map
      (fun (asn, st) ->
        let v_sa = Render.sa ~viewpoint:"own-feed" (State.sa_report st) in
        let v_import = Render.import_pref (State.import_report st) in
        ( asn,
          {
            v_graph = State.graph st;
            v_rib = State.rib st;
            v_sa;
            v_import;
            v_sa_str = Rpi_json.to_string v_sa;
            v_import_str = Rpi_json.to_string v_import;
          } ))
      vantages
  in
  let stats = Render.stats_of_state collector in
  {
    generation;
    stats;
    stats_str = Rpi_json.to_string stats;
    collector_vantage = State.vantage collector;
    collector_rib = State.rib collector;
    views;
  }

let publish t =
  let old = Atomic.get t.snap in
  Atomic.set t.snap
    (build_snapshot ~generation:(old.generation + 1) t.collector t.vantages)

let create ~collector ~vantages =
  {
    collector;
    vantages;
    snap = Atomic.make (build_snapshot ~generation:0 collector vantages);
  }

let find t asn =
  List.find_opt (fun (a, _) -> Asn.equal a asn) t.vantages |> Option.map snd

let current t = Atomic.get t.snap
let generation t = (current t).generation

let snapshot t =
  let snap = current t in
  Rpi_mrt.Table_dump.rib_to_string ~vantage_as:snap.collector_vantage
    snap.collector_rib

let find_view snap asn =
  List.find_opt (fun (a, _) -> Asn.equal a asn) snap.views |> Option.map snd

let unknown_vantage asn =
  Protocol.error_response
    (Printf.sprintf "%s is not a served vantage" (Asn.to_label asn))

(* Answer from one atomically-loaded snapshot: every field read below
   comes from the same generation, so a response can never mix state
   from two epochs no matter how ingestion interleaves. *)
let respond_snapshot snap request =
  match request with
  | Protocol.Stats -> snap.stats
  | Protocol.Snapshot ->
      Rpi_json.Obj
        [
          ("format", Rpi_json.String "table_dump");
          ( "dump",
            Rpi_json.String
              (Rpi_mrt.Table_dump.rib_to_string
                 ~vantage_as:snap.collector_vantage snap.collector_rib) );
        ]
  | Protocol.Sa_status { asn; prefix } -> begin
      match find_view snap asn with
      | None -> unknown_vantage asn
      | Some view -> begin
          match prefix with
          | None -> view.v_sa
          | Some prefix ->
              Render.sa_status ~provider:asn ~prefix
                (Rpi_core.Export_infer.classify_prefix view.v_graph
                   ~provider:asn view.v_rib prefix)
        end
    end
  | Protocol.Import_pref asn -> begin
      match find_view snap asn with
      | None -> unknown_vantage asn
      | Some view -> view.v_import
    end
  | Protocol.Metrics ->
      (* The event loop intercepts [metrics] before dispatching here;
         answering it from the registry (e.g. in offline tests) reports
         that no loop is attached. *)
      Protocol.error_response "metrics are served by the event loop"

let respond t request = respond_snapshot (current t) request

(* Rendered dispatch for the event loop: snapshot-backed verbs answer
   with the string rendered once at publish time; everything else
   (per-prefix classification, unknown vantages, the table dump) is
   rendered on the fly from the same snapshot, so answers stay
   byte-identical either way.  The bool is [false] exactly when the
   response is an error object, sparing the loop a re-parse. *)
let render_fresh snap request =
  let doc = respond_snapshot snap request in
  let ok =
    match doc with Rpi_json.Obj (("error", _) :: _) -> false | _ -> true
  in
  (Rpi_json.to_string doc, ok)

let respond_rendered t request =
  let snap = current t in
  match request with
  | Protocol.Stats -> (snap.stats_str, true)
  | Protocol.Sa_status { asn; prefix = None } -> begin
      match find_view snap asn with
      | Some view -> (view.v_sa_str, true)
      | None -> render_fresh snap request
    end
  | Protocol.Import_pref asn -> begin
      match find_view snap asn with
      | Some view -> (view.v_import_str, true)
      | None -> render_fresh snap request
    end
  | _ -> render_fresh snap request
