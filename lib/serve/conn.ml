(* One client connection's state machine: incremental, non-blocking
   buffers on both sides.  The fd is registered non-blocking by the
   event loop before a [t] is made, so the raw [Unix.read]/[Unix.write]
   calls below can never park a domain — they return EAGAIN instead.
   That boundary is what the blocking-in-eventloop lint rule polices;
   these two wrappers are its one sanctioned crossing. *)

type phase =
  | Active  (* reading requests, writing responses *)
  | Closing  (* no more reads; flush what's queued, then close *)

type t = {
  fd : Unix.file_descr;
  mutable rbuf : Bytes.t;  (* buffered input; valid bytes are [0, rlen) *)
  mutable rlen : int;
  mutable rpos : int;  (* parse cursor into rbuf *)
  mutable wbuf : Bytes.t;  (* queued output; unsent bytes are [wpos, wlen) *)
  mutable wlen : int;
  mutable wpos : int;
  mutable phase : phase;
}

let create fd =
  {
    fd;
    rbuf = Bytes.create 4096;
    rlen = 0;
    rpos = 0;
    wbuf = Bytes.create 4096;
    wlen = 0;
    wpos = 0;
    phase = Active;
  }

let fd t = t.fd
let phase t = t.phase
let start_closing t = t.phase <- Closing
let pending_out t = t.wlen - t.wpos
let buffered_in t = t.rlen - t.rpos

(* Drop consumed bytes so the buffer never grows with the total bytes
   seen, only with the largest in-flight frame / response backlog. *)
let compact_read t =
  if t.rpos > 0 then begin
    let live = t.rlen - t.rpos in
    if live > 0 then Bytes.blit t.rbuf t.rpos t.rbuf 0 live;
    t.rlen <- live;
    t.rpos <- 0
  end

let compact_write t =
  if t.wpos > 0 then begin
    let live = t.wlen - t.wpos in
    if live > 0 then Bytes.blit t.wbuf t.wpos t.wbuf 0 live;
    t.wlen <- live;
    t.wpos <- 0
  end

let ensure_read_room t need =
  compact_read t;
  if Bytes.length t.rbuf - t.rlen < need then begin
    let cap = max (Bytes.length t.rbuf * 2) (t.rlen + need) in
    let nbuf = Bytes.create cap in
    Bytes.blit t.rbuf 0 nbuf 0 t.rlen;
    t.rbuf <- nbuf
  end

let ensure_write_room t need =
  compact_write t;
  if Bytes.length t.wbuf - t.wlen < need then begin
    let cap = max (Bytes.length t.wbuf * 2) (t.wlen + need) in
    let nbuf = Bytes.create cap in
    Bytes.blit t.wbuf 0 nbuf 0 t.wlen;
    t.wbuf <- nbuf
  end

let fill ?(chunk = 65536) t =
  ensure_read_room t chunk;
  match
    (* rpilint: allow blocking-in-eventloop *)
    Unix.read t.fd t.rbuf t.rlen chunk
  with
  | 0 -> `Eof
  | n ->
      t.rlen <- t.rlen + n;
      `Data
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      `Blocked
  | exception Unix.Unix_error (_, _, _) -> `Error

let next_frame t =
  match Protocol.decode t.rbuf ~pos:t.rpos ~len:(t.rlen - t.rpos) with
  | `Frame (body, consumed) ->
      t.rpos <- t.rpos + consumed;
      if t.rpos = t.rlen then begin
        t.rpos <- 0;
        t.rlen <- 0
      end;
      `Frame body
  | `Need_more ->
      compact_read t;
      `Need_more
  | `Bad _ as bad -> bad

let enqueue t body =
  let frame = Protocol.frame_of_body body in
  let n = String.length frame in
  ensure_write_room t n;
  Bytes.blit_string frame 0 t.wbuf t.wlen n;
  t.wlen <- t.wlen + n

let enqueue_json t json = enqueue t (Rpi_json.to_string json)

let flush t =
  let rec go () =
    let pending = t.wlen - t.wpos in
    if pending = 0 then begin
      t.wpos <- 0;
      t.wlen <- 0;
      `Flushed
    end
    else begin
      match
        (* rpilint: allow blocking-in-eventloop *)
        Unix.write t.fd t.wbuf t.wpos pending
      with
      | n ->
          t.wpos <- t.wpos + n;
          go ()
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          compact_write t;
          `Blocked
      | exception Unix.Unix_error (_, _, _) -> `Error
    end
  in
  go ()

let close t =
  t.phase <- Closing;
  try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()
