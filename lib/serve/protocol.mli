(** The rpiserved wire protocol: length-prefixed NDJSON frames.

    A frame is ["<len>\n<body>"] where [body] is exactly one JSON document
    followed by a newline and [len] is the byte length of [body], newline
    included.  Requests are objects like
    [{"cmd":"sa-status","asn":"AS3549","prefix":"10.0.0.0/24"}]; responses
    are the report objects of {!Rpi_ingest.Render} or
    [{"error":"message"}]. *)

module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix

type request =
  | Sa_status of { asn : Asn.t; prefix : Prefix.t option }
      (** Without a prefix: the vantage's full SA report.  With one: that
          prefix's classification. *)
  | Import_pref of Asn.t  (** Import local-pref typicality (Table 2). *)
  | Stats  (** Collector table summary (the [bgptool stats] object). *)
  | Snapshot  (** The collector table as a TABLE_DUMP text. *)
  | Metrics
      (** Prometheus-style serving counters and latency histogram,
          answered by the event loop itself without touching the
          registry. *)

val request_to_json : request -> Rpi_json.t
val request_of_json : Rpi_json.t -> (request, string) result

val request_of_args : string list -> (request, string) result
(** Parse a CLI-shaped query, e.g. [["sa-status"; "AS10"; "10.0.0.0/24"]]
    — what [bgptool query] sends. *)

val error_response : string -> Rpi_json.t

val overloaded_response : Rpi_json.t
(** The load-shedding error frame: [{"error":...,"overloaded":true}].
    Sent when the server refuses a connection or request instead of
    queueing it; clients should back off and retry. *)

val is_overloaded : Rpi_json.t -> bool
(** True iff a response is the {!overloaded_response} shed frame. *)

val max_frame : int
(** Documented wire limit on one frame body: 1 MiB.  Lengths above it
    are rejected before any allocation. *)

val frame_of_body : string -> string
(** The full wire bytes for one frame (header + body + newline). *)

val write_frame : Unix.file_descr -> string -> unit
(** Frame one already-serialized JSON document (no trailing newline). *)

val read_frame : Unix.file_descr -> (string option, string) result
(** [Ok None] on clean EOF before a frame starts; [Error _] on a
    malformed header, an oversized length, or EOF mid-frame.  The
    returned body has its trailing newline stripped. *)

val decode :
  Bytes.t ->
  pos:int ->
  len:int ->
  [ `Frame of string * int | `Need_more | `Bad of string ]
(** Pure incremental frame parser over buffered bytes.  [`Frame (body,
    consumed)] yields one complete body (trailing newline stripped) and
    how many bytes it consumed starting at [pos]; [`Need_more] means the
    buffer holds only a frame prefix; [`Bad _] is a protocol violation
    (malformed or oversized header) and the connection should die after
    an error frame.  Validation matches {!read_frame} byte-for-byte. *)

val write_json : Unix.file_descr -> Rpi_json.t -> unit
val read_json : Unix.file_descr -> (Rpi_json.t option, string) result
