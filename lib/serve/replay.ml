module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Update = Rpi_bgp.Update
module Timeline = Rpi_sim.Timeline
module Vantage = Rpi_sim.Vantage
module Scenario = Rpi_dataset.Scenario
module Export_infer = Rpi_core.Export_infer
module Feed = Rpi_ingest.Feed
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render

(* The collector state's vantage label.  AS0 never originates updates, so
   the {!Feed.apply} local-route convention (from_as = vantage) can never
   trigger for collector feeds. *)
let collector_label = Asn.of_int 0

type step = {
  index : int;
  collector_updates : Update.t list;
  vantage_updates : (Asn.t * Update.t list) list;
  expected_collector : Rib.t;
  expected_views : (Asn.t * Rib.t) list;
}

type t = {
  scenario : Scenario.t;
  vantages : Asn.t list;
  steps : step list;
  registry : Registry.t;
  position : int Atomic.t;
}

let default_vantages scenario =
  match scenario.Scenario.collector_peers with
  | a :: b :: _ -> [ a; b ]
  | peers -> peers

let observe scenario ~vantages (ep : Timeline.epoch) =
  let results = Scenario.rerun_with_atoms scenario ep.Timeline.atoms in
  let collector =
    Vantage.collector_rib ~peers:scenario.Scenario.collector_peers results
  in
  let views =
    List.map
      (fun v -> (v, Export_infer.viewpoint_of_feed ~feed:v collector))
      vantages
  in
  (collector, views)

let plan ?(config = Scenario.small_config) ?(churn = Timeline.monthly_churn)
    ?vantages ~epochs () =
  let scenario = Scenario.build ~config () in
  let vantages =
    match vantages with Some vs -> vs | None -> default_vantages scenario
  in
  let rng = Rpi_prng.Prng.create ~seed:(config.Scenario.seed + epochs) in
  let timeline =
    Timeline.evolve rng ~graph:scenario.Scenario.graph ~churn ~epochs
      scenario.Scenario.atoms
  in
  let _, _, rev_steps =
    List.fold_left
      (fun (prev_col, prev_views, acc) (ep : Timeline.epoch) ->
        let col, views = observe scenario ~vantages ep in
        let collector_updates =
          Feed.diff ~vantage:collector_label ~old_rib:prev_col col
        in
        let vantage_updates =
          List.map2
            (fun (v, old_view) (_, new_view) ->
              (v, Feed.diff ~vantage:v ~old_rib:old_view new_view))
            prev_views views
        in
        ( col,
          views,
          {
            index = ep.Timeline.index;
            collector_updates;
            vantage_updates;
            expected_collector = col;
            expected_views = views;
          }
          :: acc ))
      (Rib.empty, List.map (fun v -> (v, Rib.empty)) vantages, [])
      timeline
  in
  let graph = scenario.Scenario.graph in
  let registry =
    Registry.create
      ~collector:(State.create ~graph ~vantage:collector_label ())
      ~vantages:
        (List.map
           (fun v ->
             (v, State.create ~graph ~vantage:v ~origins:(State.Fixed []) ()))
           vantages)
  in
  { scenario; vantages; steps = List.rev rev_steps; registry; position = Atomic.make 0 }

let registry t = t.registry
let length t = List.length t.steps
let position t = Atomic.get t.position

(* Apply one epoch's update streams, then re-key every vantage state's
   origin universe to the collector's current origin groups (the batch
   experiments analyze against [origins_of_rib collector], so the live
   states must too).  Only the replay driver calls this — the server
   domains touch the states through their own internal locks. *)
let step t =
  match List.nth_opt t.steps (Atomic.get t.position) with
  | None -> false
  | Some s ->
      Atomic.incr t.position;
      State.apply_all t.registry.Registry.collector s.collector_updates;
      List.iter
        (fun (v, updates) ->
          match Registry.find t.registry v with
          | Some state -> State.apply_all state updates
          | None -> ())
        s.vantage_updates;
      let origins = State.origin_groups t.registry.Registry.collector in
      List.iter
        (fun (_, state) -> State.set_origins state (State.Fixed origins))
        t.registry.Registry.vantages;
      (* Make the epoch visible to the query path: one snapshot swap,
         after which every server answer comes from this generation. *)
      Registry.publish t.registry;
      true

(* Sleep in short slices so a drain request interrupts an epoch gap
   promptly. *)
let interruptible_sleep ~stop seconds =
  let slice = 0.05 in
  let rec go remaining =
    if remaining > 0.0 && not (stop ()) then begin
      Unix.sleepf (Float.min slice remaining);
      go (remaining -. slice)
    end
  in
  go seconds

let run ?(epoch_ms = 1000) ?(stop = fun () -> false) ?on_epoch t =
  let rec loop () =
    if not (stop ()) then begin
      if step t then begin
        (match on_epoch with Some f -> f (Atomic.get t.position - 1) | None -> ());
        interruptible_sleep ~stop (float_of_int epoch_ms /. 1000.0);
        loop ()
      end
    end
  in
  loop ()

(* --- selftest ------------------------------------------------------- *)

type selftest_report = { epochs_checked : int; comparisons : int }

(* Step through every epoch comparing the incremental states against a
   from-scratch batch recompute over the expected tables — tables by
   {!Rib.equal}, reports byte-for-byte through {!Rpi_json}.  Consumes the
   plan (must be at position 0); stops at the first mismatch. *)
let selftest t =
  if Atomic.get t.position <> 0 then invalid_arg "Replay.selftest: plan already stepped";
  let js = Rpi_json.to_string in
  let graph = t.scenario.Scenario.graph in
  let rec go comparisons =
    match List.nth_opt t.steps (Atomic.get t.position) with
    | None -> Ok { epochs_checked = Atomic.get t.position; comparisons }
    | Some s ->
        ignore (step t);
        let collector = t.registry.Registry.collector in
        let fail fmt =
          Printf.ksprintf
            (fun msg -> Error (Printf.sprintf "epoch %d: %s" s.index msg))
            fmt
        in
        if not (Rib.equal (State.rib collector) s.expected_collector) then
          fail "incremental collector table diverged from batch"
        else if
          not
            (String.equal
               (js (Render.stats_of_state collector))
               (js (Render.stats_of_rib s.expected_collector)))
        then fail "collector stats diverged from batch"
        else begin
          let origins = Export_infer.origins_of_rib s.expected_collector in
          let rec check_vantages comparisons = function
            | [] -> go comparisons
            | (v, expected_view) :: rest -> begin
                match Registry.find t.registry v with
                | None -> fail "vantage %s missing from registry" (Asn.to_label v)
                | Some state ->
                    if not (Rib.equal (State.rib state) expected_view) then
                      fail "vantage %s table diverged from batch" (Asn.to_label v)
                    else begin
                      let batch =
                        Export_infer.analyze graph ~provider:v ~origins
                          expected_view
                      in
                      let batch_json = js (Render.sa ~viewpoint:"own-feed" batch) in
                      let live_json =
                        js (Render.sa ~viewpoint:"own-feed" (State.sa_report state))
                      in
                      if not (String.equal batch_json live_json) then
                        fail "vantage %s sa report diverged from batch"
                          (Asn.to_label v)
                      else check_vantages (comparisons + 2) rest
                    end
              end
          in
          check_vantages (comparisons + 2) s.expected_views
        end
  in
  go 0
