(** The readiness-driven serving core.

    One loop per pool domain: each parks in [Unix.select] over the
    shutdown pipe, the shared non-blocking listener and its own live
    connections, accepts under a shared lock (one domain drains the
    backlog per readiness event), and drives each {!Conn} state machine
    — pipelined frames parsed in order, responses answered from the
    {!Registry}'s current snapshot, writes flushed as the peer allows.

    Shedding is explicit: admission beyond [max_connections] and frames
    beyond the per-turn [max_turn_requests] budget get
    {!Protocol.overloaded_response} immediately; a write queue above
    [write_high_water] pauses parsing for that connection until it
    drains (backpressure, not an error).

    The [metrics] protocol verb is answered here, from the shared
    {!stats} — Prometheus-style counters and a cumulative latency
    histogram. *)

type config = {
  max_connections : int;  (** live connections across all loops *)
  max_turn_requests : int;  (** dispatches per loop turn before shedding *)
  write_high_water : int;  (** queued output bytes that pause parsing *)
  accept_burst : int;  (** accepts per readiness event *)
  read_chunk : int;  (** bytes per non-blocking read *)
}

val default_config : config
(** 1024 connections, 512 requests/turn, 256 KiB high water, 32-accept
    bursts, 64 KiB reads. *)

type stats
(** Shared serving counters; one value serves every loop domain. *)

val make_stats : unit -> stats
val requests_total : stats -> int
val connections_seen : stats -> int
val errors_total : stats -> int
val sheds_total : stats -> int
val busy_seconds : stats -> float

val metrics_json : stats -> Rpi_json.t
(** The [metrics] verb's response object. *)

val run :
  config:config ->
  registry:Registry.t ->
  listen_fd:Unix.file_descr ->
  wake_fd:Unix.file_descr ->
  accept_lock:Mutex.t ->
  draining:(unit -> bool) ->
  stats:stats ->
  ?log:(Rpi_json.t -> unit) ->
  worker:int ->
  unit ->
  unit
(** Run one loop until [draining ()] turns true (signalled by a byte on
    [wake_fd]); queued responses are flushed under a bounded grace
    period, then every owned connection is closed. *)
