(** One client connection's incremental state machine.

    A connection owns a growable read buffer fed by non-blocking reads
    and a write queue drained by non-blocking writes; {!next_frame}
    parses as many complete {!Protocol} frames as the read buffer holds
    (pipelining), and {!enqueue} appends framed responses in order.  The
    event loop decides when to call {!fill}/{!flush} from readiness, and
    applies backpressure by not parsing while {!pending_out} sits above
    its high-water mark.

    The fd must already be non-blocking: the internal reads and writes
    rely on EAGAIN, never on blocking. *)

type phase =
  | Active  (** reading requests, writing responses *)
  | Closing  (** no more reads; flush what's queued, then close *)

type t

val create : Unix.file_descr -> t
(** Wrap an fd the caller has already set non-blocking. *)

val fd : t -> Unix.file_descr
val phase : t -> phase

val start_closing : t -> unit
(** Stop reading; the loop flushes the remaining output then closes.
    Used for shed/protocol-violation farewells and drain. *)

val pending_out : t -> int
(** Bytes queued but not yet written — the backpressure signal. *)

val buffered_in : t -> int
(** Bytes read but not yet parsed. *)

val fill : ?chunk:int -> t -> [ `Data | `Eof | `Blocked | `Error ]
(** One non-blocking read of up to [chunk] (default 64 KiB) bytes into
    the read buffer. *)

val next_frame : t -> [ `Frame of string | `Need_more | `Bad of string ]
(** Parse one frame from the buffered input, consuming it.  Call
    repeatedly to drain pipelined requests; [`Bad] is a protocol
    violation and the connection should say goodbye and close. *)

val enqueue : t -> string -> unit
(** Frame one response body onto the write queue. *)

val enqueue_json : t -> Rpi_json.t -> unit

val flush : t -> [ `Flushed | `Blocked | `Error ]
(** Write queued bytes until done or EAGAIN. *)

val close : t -> unit
(** Close the fd (idempotent, errors swallowed). *)
