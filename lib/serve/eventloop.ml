(* The readiness-driven serving core: one loop per pool domain, each
   owning the connections it accepted.  Every turn parks in
   [Unix.select] over the shutdown pipe, the shared listener and this
   loop's live fds, then services writes (frees backpressure), accepts
   (guarded by a shared lock so exactly one domain drains the backlog
   per readiness), and reads — parsing as many pipelined frames as each
   connection's buffer holds and answering in order from the registry's
   current snapshot.

   Load shedding is explicit, never queueing: admission beyond
   [max_connections] and frames beyond the per-turn [max_turn_requests]
   budget are answered with {!Protocol.overloaded_response} immediately
   (and counted in [sheds]); a connection whose write queue sits above
   [write_high_water] simply stops being parsed until it drains —
   backpressure, not an error. *)

module J = Rpi_json

type config = {
  max_connections : int;
  max_turn_requests : int;
  write_high_water : int;
  accept_burst : int;
  read_chunk : int;
}

let default_config =
  {
    max_connections = 1024;
    max_turn_requests = 512;
    write_high_water = 256 * 1024;
    accept_burst = 32;
    read_chunk = 64 * 1024;
  }

(* --- metrics ------------------------------------------------------- *)

let verb_count = 7

let verb_label = function
  | 0 -> "sa-status"
  | 1 -> "sa-status/prefix"
  | 2 -> "import-pref"
  | 3 -> "stats"
  | 4 -> "snapshot"
  | 5 -> "metrics"
  | _ -> "parse-error"

let verb_index = function
  | Protocol.Sa_status { prefix = None; _ } -> 0
  | Protocol.Sa_status { prefix = Some _; _ } -> 1
  | Protocol.Import_pref _ -> 2
  | Protocol.Stats -> 3
  | Protocol.Snapshot -> 4
  | Protocol.Metrics -> 5

let parse_error_verb = 6

let bucket_limits_us =
  [ 50; 100; 250; 500; 1000; 2500; 5000; 10000; 25000; 50000; 100000 ]

type stats = {
  connections_total : int Atomic.t;
  connections_active : int Atomic.t;
  requests_by_verb : int Atomic.t array;
  errors : int Atomic.t;
  sheds : int Atomic.t;
  busy_us : int Atomic.t;
  latency : int Atomic.t array;  (* one slot per bucket limit, plus +Inf *)
}

let make_stats () =
  {
    connections_total = Atomic.make 0;
    connections_active = Atomic.make 0;
    requests_by_verb = Array.init verb_count (fun _ -> Atomic.make 0);
    errors = Atomic.make 0;
    sheds = Atomic.make 0;
    busy_us = Atomic.make 0;
    latency =
      Array.init (List.length bucket_limits_us + 1) (fun _ -> Atomic.make 0);
  }

let observe_latency stats us =
  let rec slot i = function
    | [] -> i
    | limit :: rest -> if us <= limit then i else slot (i + 1) rest
  in
  Atomic.incr stats.latency.(slot 0 bucket_limits_us)

let requests_total stats =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 stats.requests_by_verb

let connections_seen stats = Atomic.get stats.connections_total
let errors_total stats = Atomic.get stats.errors
let sheds_total stats = Atomic.get stats.sheds
let busy_seconds stats = float_of_int (Atomic.get stats.busy_us) /. 1e6

(* Prometheus-style: [le] buckets are cumulative, ending at [le_inf] =
   total observations. *)
let metrics_json stats =
  let requests =
    List.init verb_count (fun i ->
        (verb_label i, J.Int (Atomic.get stats.requests_by_verb.(i))))
  in
  let bucket_labels =
    List.map (Printf.sprintf "le_%d") bucket_limits_us @ [ "le_inf" ]
  in
  let cumulative = ref 0 in
  let latency =
    List.mapi
      (fun i label ->
        cumulative := !cumulative + Atomic.get stats.latency.(i);
        (label, J.Int !cumulative))
      bucket_labels
  in
  J.Obj
    [
      ("connections_total", J.Int (Atomic.get stats.connections_total));
      ("connections_active", J.Int (Atomic.get stats.connections_active));
      ("requests_total", J.Obj requests);
      ("errors_total", J.Int (Atomic.get stats.errors));
      ("sheds_total", J.Int (Atomic.get stats.sheds));
      ( "busy_seconds_total",
        J.Float (float_of_int (Atomic.get stats.busy_us) /. 1e6) );
      ("latency_us", J.Obj latency);
    ]

(* --- the loop ------------------------------------------------------ *)

type loop = {
  config : config;
  registry : Registry.t;
  listen_fd : Unix.file_descr;
  wake_fd : Unix.file_descr;  (* the shutdown pipe's read end *)
  accept_lock : Mutex.t;
  draining : unit -> bool;
  stats : stats;
  log : (J.t -> unit) option;
  worker : int;
  mutable conns : Conn.t list;
  mutable turn_budget : int;
}

let access_log l ~cmd ~ok ~elapsed_us =
  match l.log with
  | None -> ()
  | Some log ->
      log
        (J.Obj
           [
             ("worker", J.Int l.worker);
             ("cmd", J.String cmd);
             ("ok", J.Bool ok);
             ("elapsed_us", J.Int elapsed_us);
           ])

let drop l conn =
  if List.memq conn l.conns then begin
    l.conns <- List.filter (fun c -> not (c == conn)) l.conns;
    Atomic.decr l.stats.connections_active;
    Conn.close conn
  end

(* Answer one parsed frame.  The registry dispatch reads exactly one
   published snapshot; [metrics] is answered here, straight from the
   loop's shared counters. *)
let handle_frame l conn body =
  let t0 = Unix.gettimeofday () in
  let response, ok, verb =
    match Result.bind (J.of_string body) Protocol.request_of_json with
    | Ok Protocol.Metrics ->
        ( Rpi_json.to_string (metrics_json l.stats),
          true,
          verb_index Protocol.Metrics )
    | Ok request ->
        let body, ok = Registry.respond_rendered l.registry request in
        (body, ok, verb_index request)
    | Error msg ->
        ( Rpi_json.to_string (Protocol.error_response msg),
          false,
          parse_error_verb )
  in
  Conn.enqueue conn response;
  let elapsed_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  Atomic.incr l.stats.requests_by_verb.(verb);
  if not ok then Atomic.incr l.stats.errors;
  ignore (Atomic.fetch_and_add l.stats.busy_us elapsed_us);
  observe_latency l.stats elapsed_us;
  access_log l ~cmd:(verb_label verb) ~ok ~elapsed_us

(* Drain the connection's parse buffer: as many frames as it holds, in
   order — this is where pipelining happens.  Stops early on
   backpressure (write queue above high water) so a slow reader cannot
   make us buffer unbounded responses. *)
let rec parse_ready l conn =
  if
    Conn.phase conn = Conn.Active
    && Conn.pending_out conn < l.config.write_high_water
  then begin
    match Conn.next_frame conn with
    | `Need_more -> ()
    | `Bad msg ->
        Atomic.incr l.stats.errors;
        Conn.enqueue_json conn (Protocol.error_response msg);
        Conn.start_closing conn
    | `Frame body ->
        if l.turn_budget <= 0 then begin
          Atomic.incr l.stats.sheds;
          Conn.enqueue_json conn Protocol.overloaded_response
        end
        else begin
          l.turn_budget <- l.turn_budget - 1;
          handle_frame l conn body
        end;
        parse_ready l conn
  end

(* Opportunistic flush after producing output; select drives the rest. *)
let try_flush l conn =
  if Conn.pending_out conn > 0 then begin
    match Conn.flush conn with
    | `Flushed | `Blocked -> ()
    | `Error -> drop l conn
  end;
  if
    List.memq conn l.conns
    && Conn.phase conn = Conn.Closing
    && Conn.pending_out conn = 0
  then drop l conn

let service_read l conn =
  match Conn.fill ~chunk:l.config.read_chunk conn with
  | `Eof | `Error -> drop l conn
  | `Blocked -> ()
  | `Data ->
      parse_ready l conn;
      try_flush l conn

let service_write l conn =
  match Conn.flush conn with
  | `Error -> drop l conn
  | `Flushed | `Blocked ->
      if Conn.phase conn = Conn.Closing && Conn.pending_out conn = 0 then
        drop l conn
      else begin
        (* Freed write-queue space may unblock parsing of buffered
           pipelined requests. *)
        parse_ready l conn;
        try_flush l conn
      end

let admit l fd =
  Unix.set_nonblock fd;
  Atomic.incr l.stats.connections_total;
  Atomic.incr l.stats.connections_active;
  let conn = Conn.create fd in
  l.conns <- conn :: l.conns;
  if Atomic.get l.stats.connections_active > l.config.max_connections then begin
    (* Shed at admission: say why, then close once the frame is out. *)
    Atomic.incr l.stats.sheds;
    Conn.enqueue_json conn Protocol.overloaded_response;
    Conn.start_closing conn;
    try_flush l conn
  end

let do_accept l =
  (* One domain drains the backlog per readiness event; the others see a
     held lock and go back to select.  try_lock keeps the loop
     non-blocking — the lint rule's point. *)
  if Mutex.try_lock l.accept_lock then begin
    Fun.protect
      ~finally:(fun () -> Mutex.unlock l.accept_lock)
      (fun () ->
        let rec go n =
          if n > 0 then begin
            match
              (* The listener is registered non-blocking in
                 Server.bind_listen, so accept returns EAGAIN instead of
                 parking the domain. *)
              (* rpilint: allow blocking-in-eventloop *)
              Unix.accept ~cloexec:true l.listen_fd
            with
            | fd, _ ->
                admit l fd;
                go (n - 1)
            | exception
                Unix.Unix_error
                  ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
                ()
            | exception Unix.Unix_error (_, _, _) -> ()
          end
        in
        go l.config.accept_burst)
  end

(* Bounded farewell: flush what's already queued (in-flight requests
   complete), then close everything.  A peer that stopped reading
   forfeits its tail after the grace period. *)
let drain_exit l =
  let deadline = Unix.gettimeofday () +. 1.0 in
  let rec go () =
    let pending = List.filter (fun c -> Conn.pending_out c > 0) l.conns in
    if pending <> [] && Unix.gettimeofday () < deadline then begin
      match Unix.select [] (List.map Conn.fd pending) [] 0.05 with
      | _, writable, _ ->
          List.iter
            (fun c ->
              if List.mem (Conn.fd c) writable then ignore (Conn.flush c))
            pending;
          go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    end
  in
  go ();
  List.iter
    (fun c ->
      Atomic.decr l.stats.connections_active;
      Conn.close c)
    l.conns;
  l.conns <- []

let wants_read l conn =
  Conn.phase conn = Conn.Active
  && Conn.pending_out conn < l.config.write_high_water

let rec loop l =
  if l.draining () then drain_exit l
  else begin
    l.turn_budget <- l.config.max_turn_requests;
    let reads =
      l.wake_fd :: l.listen_fd
      :: List.filter_map
           (fun c -> if wants_read l c then Some (Conn.fd c) else None)
           l.conns
    in
    let writes =
      List.filter_map
        (fun c -> if Conn.pending_out c > 0 then Some (Conn.fd c) else None)
        l.conns
    in
    match Unix.select reads writes [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop l
    | readable, writable, _ ->
        if l.draining () then drain_exit l
        else begin
          (* Writes first: draining a queue may unblock parsing. *)
          List.iter
            (fun c ->
              if List.mem (Conn.fd c) writable then service_write l c)
            l.conns;
          if List.mem l.listen_fd readable then do_accept l;
          List.iter
            (fun c ->
              if List.memq c l.conns && List.mem (Conn.fd c) readable then
                service_read l c)
            l.conns;
          loop l
        end
  end

let run ~config ~registry ~listen_fd ~wake_fd ~accept_lock ~draining ~stats
    ?log ~worker () =
  let l =
    {
      config;
      registry;
      listen_fd;
      wake_fd;
      accept_lock;
      draining;
      stats;
      log;
      worker;
      conns = [];
      turn_budget = config.max_turn_requests;
    }
  in
  loop l
