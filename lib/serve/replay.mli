(** The daemon's data source: the persistence-study timeline (Figs. 6–7)
    turned into per-epoch BGP update streams.

    A plan precomputes, for every epoch, the {!Rpi_ingest.Feed.diff}
    stream that turns the previous epoch's collector table (and each
    served vantage's own-feed viewpoint) into the next one's, plus the
    expected batch tables for cross-checking.  Stepping the plan applies
    those streams to the live {!Registry} states — the propagation engine
    never runs again after planning, so serving latency is bounded by the
    dirty-set refresh alone. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Update = Rpi_bgp.Update
module Scenario = Rpi_dataset.Scenario

val collector_label : Asn.t
(** AS0 — the collector state's vantage label.  Never a real origin, so
    the local-route feed convention cannot trigger for collector feeds. *)

type step = {
  index : int;  (** Epoch index. *)
  collector_updates : Update.t list;
  vantage_updates : (Asn.t * Update.t list) list;
  expected_collector : Rib.t;  (** Batch collector table after this step. *)
  expected_views : (Asn.t * Rib.t) list;
      (** Batch own-feed viewpoints after this step. *)
}

type t = {
  scenario : Scenario.t;
  vantages : Asn.t list;
  steps : step list;
  registry : Registry.t;
  position : int Atomic.t;  (** Next step to apply; replay driver only. *)
}

val plan :
  ?config:Scenario.config ->
  ?churn:Rpi_sim.Timeline.churn ->
  ?vantages:Asn.t list ->
  epochs:int ->
  unit ->
  t
(** Build the scenario ([Scenario.small_config] by default), evolve the
    timeline ([Timeline.monthly_churn] by default), and precompute every
    epoch's update streams.  [vantages] defaults to the first two
    collector peers.  Deterministic in [config.seed] and [epochs]. *)

val registry : t -> Registry.t
val length : t -> int
val position : t -> int

val step : t -> bool
(** Apply the next epoch's updates to the registry states and re-key the
    vantage states' [Fixed] origins from the collector's current origin
    groups.  Returns [false] when the plan is exhausted.  Must be called
    from a single driver; the states' own locks make concurrent server
    queries safe. *)

val run : ?epoch_ms:int -> ?stop:(unit -> bool) -> ?on_epoch:(int -> unit) -> t -> unit
(** Step through the remaining epochs, sleeping [epoch_ms] (default 1000)
    between steps.  [stop] is polled between steps and during the sleep
    (in 50 ms slices), so a drain request interrupts promptly. *)

type selftest_report = { epochs_checked : int; comparisons : int }

val selftest : t -> (selftest_report, string) result
(** Step through every epoch, comparing incremental state against the
    from-scratch batch recompute: tables by {!Rib.equal}, collector stats
    and per-vantage SA reports byte-for-byte through {!Rpi_json}.
    Consumes the plan (requires position 0); stops at the first
    mismatch. *)
