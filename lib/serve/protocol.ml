module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix

type request =
  | Sa_status of { asn : Asn.t; prefix : Prefix.t option }
  | Import_pref of Asn.t
  | Stats
  | Snapshot
  | Metrics

let request_to_json = function
  | Sa_status { asn; prefix } ->
      Rpi_json.Obj
        ([
           ("cmd", Rpi_json.String "sa-status");
           ("asn", Rpi_json.String (Asn.to_label asn));
         ]
        @
        match prefix with
        | Some p -> [ ("prefix", Rpi_json.String (Prefix.to_string p)) ]
        | None -> [])
  | Import_pref asn ->
      Rpi_json.Obj
        [
          ("cmd", Rpi_json.String "import-pref");
          ("asn", Rpi_json.String (Asn.to_label asn));
        ]
  | Stats -> Rpi_json.Obj [ ("cmd", Rpi_json.String "stats") ]
  | Snapshot -> Rpi_json.Obj [ ("cmd", Rpi_json.String "snapshot") ]
  | Metrics -> Rpi_json.Obj [ ("cmd", Rpi_json.String "metrics") ]

let field name = function
  | Rpi_json.Obj fields -> List.assoc_opt name fields
  | _ -> None

let string_field name json =
  match field name json with
  | Some (Rpi_json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %S is not a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let asn_field json = Result.bind (string_field "asn" json) Asn.of_string

let request_of_json json =
  let ( let* ) = Result.bind in
  let* cmd = string_field "cmd" json in
  match cmd with
  | "sa-status" ->
      let* asn = asn_field json in
      let* prefix =
        match field "prefix" json with
        | Some (Rpi_json.String s) -> Result.map Option.some (Prefix.of_string s)
        | Some _ -> Error "field \"prefix\" is not a string"
        | None -> Ok None
      in
      Ok (Sa_status { asn; prefix })
  | "import-pref" ->
      let* asn = asn_field json in
      Ok (Import_pref asn)
  | "stats" -> Ok Stats
  | "snapshot" -> Ok Snapshot
  | "metrics" -> Ok Metrics
  | other -> Error (Printf.sprintf "unknown command %S" other)

let request_of_args = function
  | [ "sa-status"; asn ] ->
      Result.map (fun asn -> Sa_status { asn; prefix = None }) (Asn.of_string asn)
  | [ "sa-status"; asn; prefix ] ->
      Result.bind (Asn.of_string asn) (fun asn ->
          Result.map
            (fun p -> Sa_status { asn; prefix = Some p })
            (Prefix.of_string prefix))
  | [ "import-pref"; asn ] -> Result.map (fun a -> Import_pref a) (Asn.of_string asn)
  | [ "stats" ] -> Ok Stats
  | [ "snapshot" ] -> Ok Snapshot
  | [ "metrics" ] -> Ok Metrics
  | args ->
      Error
        (Printf.sprintf
           "cannot parse query %S (expected: sa-status <asn> [prefix] | import-pref \
            <asn> | stats | snapshot | metrics)"
           (String.concat " " args))

let error_response message = Rpi_json.Obj [ ("error", Rpi_json.String message) ]

let overloaded_response =
  Rpi_json.Obj
    [
      ("error", Rpi_json.String "server overloaded, retry later");
      ("overloaded", Rpi_json.Bool true);
    ]

let is_overloaded = function
  | Rpi_json.Obj fields -> (
      match List.assoc_opt "overloaded" fields with
      | Some (Rpi_json.Bool b) -> b
      | _ -> false)
  | _ -> false

(* --- length-prefixed NDJSON framing ------------------------------- *)

(* A frame is "<len>\n<body>" where <body> is one JSON document followed
   by a newline and <len> is the byte length of <body> (newline
   included).  The length line caps a malformed peer's damage; the body
   stays valid NDJSON for anyone watching the wire.

   [max_frame] is the documented wire limit: 1 MiB.  No legitimate
   request or response comes close (the largest is a snapshot dump of a
   bench-scale table, well under 256 KiB), and capping it here means an
   adversarial length prefix can never force a large [Bytes.create] —
   the length is validated before any body allocation, and the header
   itself is capped at [max_header_digits] digits so a stream of digit
   bytes cannot grow the accumulator without bound. *)

let max_frame = 1024 * 1024
let max_header_digits = 8

let rec write_all fd bytes off len =
  if len > 0 then begin
    let n = Unix.write fd bytes off len in
    write_all fd bytes (off + n) (len - n)
  end

let frame_of_body body =
  let body = body ^ "\n" in
  Printf.sprintf "%d\n%s" (String.length body) body

let write_frame fd body =
  let frame = frame_of_body body in
  write_all fd (Bytes.unsafe_of_string frame) 0 (String.length frame)

let read_byte fd =
  let b = Bytes.create 1 in
  match Unix.read fd b 0 1 with
  | 0 -> None
  | _ -> Some (Bytes.get b 0)

let read_exactly fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some (Bytes.unsafe_to_string buf)
    else begin
      match Unix.read fd buf off (len - off) with
      | 0 -> None
      | n -> go (off + n)
    end
  in
  go 0

let read_frame fd =
  let rec length acc first =
    match read_byte fd with
    | None -> if first then Ok None else Error "connection closed inside a frame header"
    | Some '\n' -> begin
        match int_of_string_opt acc with
        | Some n when n >= 1 && n <= max_frame -> Ok (Some n)
        | Some _ | None -> Error (Printf.sprintf "bad frame length %S" acc)
      end
    | Some c when c >= '0' && c <= '9' ->
        if String.length acc >= max_header_digits then
          Error "frame header too long"
        else length (acc ^ String.make 1 c) false
    | Some c -> Error (Printf.sprintf "unexpected byte %C in frame header" c)
  in
  match length "" true with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some len) -> begin
      match read_exactly fd len with
      | None -> Error "connection closed inside a frame body"
      | Some body ->
          let body =
            if String.length body > 0 && body.[String.length body - 1] = '\n' then
              String.sub body 0 (String.length body - 1)
            else body
          in
          Ok (Some body)
    end

(* Pure incremental decoder over a caller-owned buffer: the event loop's
   [Conn] feeds it the bytes it has so far and consumes frames as they
   complete.  Mirrors [read_frame]'s validation exactly — same limits,
   same error strings — so a mutated frame fails identically on either
   path. *)
let decode buf ~pos ~len =
  let limit = pos + len in
  let rec header i =
    if i >= limit then
      if i - pos > max_header_digits then `Bad "frame header too long"
      else `Need_more
    else
      match Bytes.get buf i with
      | '\n' -> begin
          let digits = Bytes.sub_string buf pos (i - pos) in
          match int_of_string_opt digits with
          | Some n when n >= 1 && n <= max_frame -> body (i + 1) n
          | Some _ | None -> `Bad (Printf.sprintf "bad frame length %S" digits)
        end
      | c when c >= '0' && c <= '9' ->
          if i - pos >= max_header_digits then `Bad "frame header too long"
          else header (i + 1)
      | c -> `Bad (Printf.sprintf "unexpected byte %C in frame header" c)
  and body start n =
    if limit - start < n then `Need_more
    else
      let raw = Bytes.sub_string buf start n in
      let stripped =
        if String.length raw > 0 && raw.[String.length raw - 1] = '\n' then
          String.sub raw 0 (String.length raw - 1)
        else raw
      in
      `Frame (stripped, start + n - pos)
  in
  header pos

let write_json fd json = write_frame fd (Rpi_json.to_string json)

let read_json fd =
  match read_frame fd with
  | Error _ as e -> e
  | Ok None -> Ok None
  | Ok (Some body) -> Result.map Option.some (Rpi_json.of_string body)
