(** The set of live {!Rpi_ingest.State}s a server answers from — one
    collector-table state (for [stats] and [snapshot]) plus one state per
    served vantage — paired with a read-mostly {e snapshot}: an immutable
    value holding every rendered report and table the query path needs,
    swapped atomically by {!publish}.

    Queries load the snapshot with one [Atomic.get] and never touch a
    state mutex, so ingestion ([State.apply]) never blocks on readers and
    readers never observe a half-applied epoch: every field of a response
    comes from the same published generation.  The ingestion side calls
    {!publish} when it wants new data visible (the replay loop does so
    once per epoch). *)

module Asn = Rpi_bgp.Asn
module State = Rpi_ingest.State

type snapshot
(** One immutable published generation. *)

type t = {
  collector : State.t;
  vantages : (Asn.t * State.t) list;
  snap : snapshot Atomic.t;
}

val create : collector:State.t -> vantages:(Asn.t * State.t) list -> t
(** Publishes generation 0 from the states' current contents. *)

val find : t -> Asn.t -> State.t option

val publish : t -> unit
(** Build a fresh snapshot from the live states and swap it in.  Only the
    caller blocks on the states' mutexes; concurrent queries keep
    answering from the previous generation until the swap lands. *)

val current : t -> snapshot
(** One atomic load of the latest published snapshot. *)

val generation : t -> int
(** The published generation counter (0 after {!create}, +1 per
    {!publish}). *)

val snapshot : t -> string
(** The collector table rendered as TABLE_DUMP text — pipe it back into
    [bgptool stats] to cross-check the live [stats] answer. *)

val respond_snapshot : snapshot -> Protocol.request -> Rpi_json.t
(** Answer one request entirely from one snapshot value. *)

val respond : t -> Protocol.request -> Rpi_json.t
(** [respond t r] is [respond_snapshot (current t) r].  Unknown vantages
    yield {!Protocol.error_response}; report objects come from
    {!Rpi_ingest.Render}, so they are byte-identical to the batch CLI's
    output for the same table. *)

val respond_rendered : t -> Protocol.request -> string * bool
(** [respond t r] already rendered to wire bytes: the snapshot-backed
    verbs ([stats], whole-report [sa-status], [import-pref]) return the
    string rendered once at {!publish} time, everything else renders on
    the fly from the same snapshot — both byte-identical to
    [Rpi_json.to_string (respond t r)].  The bool is [false] exactly
    when the response is an error object.  This is the event loop's
    dispatch path. *)
