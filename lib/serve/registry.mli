(** The set of live {!Rpi_ingest.State}s a server answers from: one
    collector-table state (for [stats] and [snapshot]) plus one state per
    served vantage, each holding that provider's own-feed viewpoint. *)

module Asn = Rpi_bgp.Asn
module State = Rpi_ingest.State

type t = {
  collector : State.t;
  vantages : (Asn.t * State.t) list;
}

val create : collector:State.t -> vantages:(Asn.t * State.t) list -> t
val find : t -> Asn.t -> State.t option

val snapshot : t -> string
(** The collector table rendered as TABLE_DUMP text — pipe it back into
    [bgptool stats] to cross-check the live [stats] answer. *)

val respond : t -> Protocol.request -> Rpi_json.t
(** Dispatch one request to the owning state.  Unknown vantages yield
    {!Protocol.error_response}; report objects come from
    {!Rpi_ingest.Render}, so they are byte-identical to the batch CLI's
    output for the same table. *)
