type origin = Igp | Egp | Incomplete

type source = Ebgp | Ibgp | Local

type t = {
  prefix : Rpi_net.Prefix.t;
  next_hop : Rpi_net.Ipv4.t;
  as_path : As_path.t;
  origin : origin;
  local_pref : int option;
  med : int option;
  communities : Community.Set.t;
  source : source;
  igp_metric : int;
  router_id : Rpi_net.Ipv4.t;
  peer_as : Asn.t option;
}

let default_local_pref = 100

let make ~prefix ~next_hop ~as_path ?(origin = Igp) ?local_pref ?med
    ?(communities = Community.Set.empty) ?(source = Ebgp) ?(igp_metric = 0)
    ?(router_id = Rpi_net.Ipv4.of_int32_exn 0) ?peer_as () =
  {
    prefix;
    next_hop;
    as_path;
    origin;
    local_pref;
    med;
    communities;
    source;
    igp_metric;
    router_id;
    peer_as;
  }

let effective_local_pref r =
  match r.local_pref with Some v -> v | None -> default_local_pref

let effective_med r =
  match r.med with Some v -> v | None -> 0

let next_hop_as r =
  match As_path.first_hop r.as_path with
  | Some _ as hop -> hop
  | None -> r.peer_as

let origin_as r = As_path.origin_as r.as_path

let has_community c r = Community.Set.mem c r.communities
let add_community c r = { r with communities = Community.Set.add c r.communities }
let with_local_pref v r = { r with local_pref = Some v }

(* Declaration-order ranks: an explicit total order for sorts and
   dedup, so nothing structural-compares these variants.  The decision
   process has its own semantic ranks in Decision (where Local outranks
   eBGP); these are for canonical ordering only. *)
let origin_rank = function Igp -> 0 | Egp -> 1 | Incomplete -> 2
let source_rank = function Ebgp -> 0 | Ibgp -> 1 | Local -> 2

let origin_to_string = function
  | Igp -> "i"
  | Egp -> "e"
  | Incomplete -> "?"

let origin_of_string = function
  | "i" | "IGP" -> Ok Igp
  | "e" | "EGP" -> Ok Egp
  | "?" | "incomplete" -> Ok Incomplete
  | s -> Error (Printf.sprintf "invalid origin %S" s)

let pp fmt r =
  Format.fprintf fmt "%a via %a path [%a] lp=%d origin=%s"
    Rpi_net.Prefix.pp r.prefix Rpi_net.Ipv4.pp r.next_hop As_path.pp r.as_path
    (effective_local_pref r) (origin_to_string r.origin)

let compare a b =
  let cmp =
    [
      (fun () -> Rpi_net.Prefix.compare a.prefix b.prefix);
      (fun () -> As_path.compare a.as_path b.as_path);
      (fun () -> Rpi_net.Ipv4.compare a.next_hop b.next_hop);
      (fun () -> Int.compare (origin_rank a.origin) (origin_rank b.origin));
      (fun () -> Option.compare Int.compare a.local_pref b.local_pref);
      (fun () -> Option.compare Int.compare a.med b.med);
      (fun () -> Community.Set.compare a.communities b.communities);
      (fun () -> Int.compare (source_rank a.source) (source_rank b.source));
      (fun () -> Int.compare a.igp_metric b.igp_metric);
      (fun () -> Rpi_net.Ipv4.compare a.router_id b.router_id);
      (fun () -> Option.compare Asn.compare a.peer_as b.peer_as);
    ]
  in
  let rec first = function
    | [] -> 0
    | f :: rest -> begin
        match f () with
        | 0 -> first rest
        | c -> c
      end
  in
  first cmp

let equal a b = compare a b = 0
