(* Hash-consed AS paths.  A path is a cons-list of (head ASN, tail id)
   cells; interning maps each distinct cell to a small int, so two equal
   paths always carry the same id and equality is integer equality.
   Length, origin and a membership bloom are memoized per cell at
   construction, which is what lets the propagation engine compare and
   loop-check candidates without ever walking a list.

   A table is append-only and single-domain: the engine creates one per
   propagation run, so ids are meaningful only relative to their table and
   must never be serialized or shared across runs. *)

type id = int

let nil = 0

type stats = { hits : int; misses : int; unique : int }

(* Per-run scratch, never shared across domains (each propagation run owns
   its table), so the mutable fields are safe by construction. *)
type t = {
  (* rpilint: allow mutable-toplevel *)
  mutable heads : int array;  (* head ASN per cell; -1 for nil *)
  mutable tails : int array;  (* tail id per cell; -1 for nil *)
  mutable lens : int array;  (* memoized path length *)
  mutable origins : int array;  (* memoized last element; -1 for nil *)
  mutable masks : int array;  (* membership bloom over the whole path *)
  mutable slots : int array;  (* open-addressing (head, tail) -> id; -1 empty *)
  mutable slot_mask : int;  (* Array.length slots - 1, a power of two *)
  mutable next : int;  (* next fresh id; ids 1 .. next-1 are live *)
  mutable hits : int;
  mutable misses : int;
}

let member_bit asn = 1 lsl (asn * 0x9E3779B1 land max_int mod 63)
let cell_hash head tail = (head * 0x9E3779B1) lxor (tail * 0x61C88647) land max_int

let create ?(capacity = 64) () =
  let cap = max 16 capacity in
  let rec pow2 c = if c >= 2 * cap then c else pow2 (2 * c) in
  let slot_cap = pow2 32 in
  let cells v = Array.make cap v in
  {
    heads = cells (-1);
    tails = cells (-1);
    lens = cells 0;
    origins = cells (-1);
    masks = cells 0;
    slots = Array.make slot_cap (-1);
    slot_mask = slot_cap - 1;
    next = 1;
    hits = 0;
    misses = 0;
  }

(* Index of the slot holding (head, tail), or of the empty slot where it
   belongs.  Load factor stays under 1/2, so the linear probe terminates. *)
let probe ~slots ~slot_mask ~heads ~tails head tail =
  let rec go idx =
    let s = slots.(idx) in
    if s < 0 || (heads.(s) = head && tails.(s) = tail) then idx
    else go ((idx + 1) land slot_mask)
  in
  go (cell_hash head tail land slot_mask)

let grow_cells t =
  let cap = Array.length t.heads in
  let double a fill =
    let b = Array.make (2 * cap) fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.heads <- double t.heads (-1);
  t.tails <- double t.tails (-1);
  t.lens <- double t.lens 0;
  t.origins <- double t.origins (-1);
  t.masks <- double t.masks 0

let grow_slots t =
  let slot_cap = 2 * Array.length t.slots in
  let slots = Array.make slot_cap (-1) in
  let slot_mask = slot_cap - 1 in
  for s = 1 to t.next - 1 do
    let idx =
      probe ~slots ~slot_mask ~heads:t.heads ~tails:t.tails t.heads.(s) t.tails.(s)
    in
    slots.(idx) <- s
  done;
  t.slots <- slots;
  t.slot_mask <- slot_mask

let cons t head tail =
  let h = Asn.to_int head in
  let idx = probe ~slots:t.slots ~slot_mask:t.slot_mask ~heads:t.heads ~tails:t.tails h tail in
  let found = t.slots.(idx) in
  if found >= 0 then begin
    t.hits <- t.hits + 1;
    found
  end
  else begin
    t.misses <- t.misses + 1;
    let id = t.next in
    t.next <- id + 1;
    if id >= Array.length t.heads then grow_cells t;
    t.heads.(id) <- h;
    t.tails.(id) <- tail;
    t.lens.(id) <- t.lens.(tail) + 1;
    t.origins.(id) <- (if tail = nil then h else t.origins.(tail));
    t.masks.(id) <- t.masks.(tail) lor member_bit h;
    t.slots.(idx) <- id;
    if 2 * t.next >= Array.length t.slots then grow_slots t;
    id
  end

(* Forget every interned path but keep the grown arrays: a reset table
   behaves exactly like a fresh [create] with the accumulated capacity,
   which is what lets a solver scratch be reused across atoms without
   re-paying growth.  Cell row 0 is the nil sentinel and its memoized
   fields (lens 0, origins -1, masks 0) are established by [create] and
   never overwritten — [cons] only writes ids >= 1 — so only the slot
   table and counters need clearing. *)
let reset t =
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  t.next <- 1;
  t.hits <- 0;
  t.misses <- 0

let capacity t = Array.length t.heads

let rec cons_n t head n tail = if n <= 0 then tail else cons_n t head (n - 1) (cons t head tail)
let of_list t path = List.fold_right (fun a id -> cons t a id) path nil

let rec to_list t id =
  if id = nil then [] else Asn.of_int t.heads.(id) :: to_list t t.tails.(id)

let length t id = t.lens.(id)
let first_hop t id = if id = nil then None else Some (Asn.of_int t.heads.(id))
let origin t id = if id = nil then None else Some (Asn.of_int t.origins.(id))
let equal (a : id) b = Int.equal a b

let mem t asn id =
  let x = Asn.to_int asn in
  if t.masks.(id) land member_bit x = 0 then false
  else begin
    let rec walk id = id <> nil && (t.heads.(id) = x || walk t.tails.(id)) in
    walk id
  end

(* Lexicographic over the stored ASNs — [Asn.compare] is numeric, so
   comparing the raw ints is the same order ([List.compare Asn.compare] on
   the corresponding lists). *)
let compare_lex t a b =
  let rec go a b =
    if a = b then 0
    else if a = nil then -1
    else if b = nil then 1
    else begin
      match Int.compare t.heads.(a) t.heads.(b) with
      | 0 -> go t.tails.(a) t.tails.(b)
      | c -> c
    end
  in
  go a b

let stats t = { hits = t.hits; misses = t.misses; unique = t.next - 1 }
