type t = int

let of_int n =
  if n < 0 || n > 0xFFFFFFFF then invalid_arg "Asn.of_int: out of range";
  n

let to_int n = n

let of_string s =
  let body =
    if String.starts_with ~prefix:"AS" s || String.starts_with ~prefix:"as" s then
      String.sub s 2 (String.length s - 2)
    else s
  in
  match int_of_string_opt body with
  | Some n when n >= 0 && n <= 0xFFFFFFFF -> Ok n
  | Some _ | None -> Error (Printf.sprintf "invalid AS number %S" s)

let of_string_exn s =
  match of_string s with Ok n -> n | Error msg -> invalid_arg msg

let to_string = string_of_int
let to_label n = "AS" ^ string_of_int n

let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp fmt n = Format.pp_print_string fmt (to_label n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
