module Prefix = Rpi_net.Prefix
module Trie = Rpi_net.Prefix_trie

type t = Route.t list Trie.t

let empty = Trie.empty

let same_session (a : Route.t) (b : Route.t) =
  Option.equal Asn.equal a.peer_as b.peer_as
  && Rpi_net.Ipv4.equal a.router_id b.router_id

let add_route route t =
  Trie.update route.Route.prefix
    (fun existing ->
      let others =
        match existing with
        | None -> []
        | Some routes -> List.filter (fun r -> not (same_session r route)) routes
      in
      Some (route :: others))
    t

let remove_routes prefix t = Trie.remove prefix t

let withdraw ~peer_as prefix t =
  Trie.update prefix
    (fun existing ->
      match existing with
      | None -> None
      | Some routes -> begin
          let kept =
            List.filter
              (fun (r : Route.t) -> not (Option.equal Asn.equal r.peer_as (Some peer_as)))
              routes
          in
          match kept with
          | [] -> None
          | _ :: _ -> Some kept
        end)
    t

let withdraw_local prefix t =
  Trie.update prefix
    (fun existing ->
      match existing with
      | None -> None
      | Some routes -> begin
          let kept =
            List.filter (fun (r : Route.t) -> Option.is_some r.peer_as) routes
          in
          match kept with
          | [] -> None
          | _ :: _ -> Some kept
        end)
    t

let of_routes routes = List.fold_left (fun t r -> add_route r t) empty routes

let candidates t prefix =
  match Trie.find prefix t with
  | Some routes -> routes
  | None -> []

let best ?config t prefix = Decision.select_best ?config (candidates t prefix)

let prefixes t = Trie.keys t
let prefix_count t = Trie.cardinal t

let route_count t = Trie.fold (fun _ routes n -> n + List.length routes) t 0

let fold f t init = Trie.fold f t init
let iter f t = Trie.iter f t

let best_routes ?config t =
  Trie.to_list t
  |> List.filter_map (fun (_, routes) -> Decision.select_best ?config routes)

let all_routes t = Trie.to_list t |> List.concat_map snd

(* Candidate-list order within a prefix is arrival order, which differs
   between a rib built in one pass and one reached through withdraw +
   re-announce; equality must not see it. *)
let equal a b =
  List.equal Route.equal
    (List.sort Route.compare (all_routes a))
    (List.sort Route.compare (all_routes b))

let longest_match t addr = Trie.longest_match addr t

let filter_prefixes pred t = Trie.filter (fun p _ -> pred p) t

let merge a b = Trie.fold (fun _ routes acc -> List.fold_left (fun t r -> add_route r t) acc routes) b a

type diff = {
  added : Prefix.t list;
  removed : Prefix.t list;
  best_changed : (Prefix.t * Route.t option * Route.t option) list;
  unchanged : int;
}

let diff ?config ~old_rib new_rib =
  let added = ref [] and removed = ref [] and changed = ref [] and same = ref 0 in
  iter
    (fun prefix _ ->
      match candidates old_rib prefix with
      | [] -> added := prefix :: !added
      | _ :: _ ->
          let old_best = best ?config old_rib prefix in
          let new_best = best ?config new_rib prefix in
          let hop r = Option.bind r Route.next_hop_as in
          if Option.equal Asn.equal (hop old_best) (hop new_best) then incr same
          else changed := (prefix, old_best, new_best) :: !changed)
    new_rib;
  iter
    (fun prefix _ ->
      match candidates new_rib prefix with
      | [] -> removed := prefix :: !removed
      | _ :: _ -> ())
    old_rib;
  {
    added = List.rev !added;
    removed = List.rev !removed;
    best_changed = List.rev !changed;
    unchanged = !same;
  }
