(** A BGP routing table (RIB) snapshot: for every prefix, the candidate
    routes received from neighbours and the best route per the decision
    process.  This is the "BGP table from the viewpoint of AS u" object that
    all of the paper's inference algorithms consume. *)

type t

val empty : t

val add_route : Route.t -> t -> t
(** Insert a candidate route.  A route replaces an existing candidate with
    the same (peer_as, router_id) for that prefix — one route per session,
    as in a real Adj-RIB-In. *)

val remove_routes : Rpi_net.Prefix.t -> t -> t
(** Drop all candidates for a prefix. *)

val withdraw : peer_as:Asn.t -> Rpi_net.Prefix.t -> t -> t
(** Drop the candidate learned from the given neighbour. *)

val withdraw_local : Rpi_net.Prefix.t -> t -> t
(** Drop locally-originated candidates (no [peer_as]) for the prefix —
    the withdraw counterpart of inserting an own-prefix route, which
    [withdraw] cannot reach because it matches a neighbour AS. *)

val equal : t -> t -> bool
(** Same candidate set per prefix, ignoring candidate-list order (which
    is arrival order and differs across withdraw/re-announce histories). *)

val of_routes : Route.t list -> t
val candidates : t -> Rpi_net.Prefix.t -> Route.t list

val best : ?config:Decision.config -> t -> Rpi_net.Prefix.t -> Route.t option
(** Best route for the prefix per {!Decision.select_best}. *)

val prefixes : t -> Rpi_net.Prefix.t list
val prefix_count : t -> int
val route_count : t -> int

val fold : (Rpi_net.Prefix.t -> Route.t list -> 'acc -> 'acc) -> t -> 'acc -> 'acc
val iter : (Rpi_net.Prefix.t -> Route.t list -> unit) -> t -> unit

val best_routes : ?config:Decision.config -> t -> Route.t list
(** The loc-RIB: one best route per prefix, in prefix order. *)

val all_routes : t -> Route.t list
(** Every candidate (the full table with backup paths), prefix order. *)

val longest_match : t -> Rpi_net.Ipv4.t -> (Rpi_net.Prefix.t * Route.t list) option

val filter_prefixes : (Rpi_net.Prefix.t -> bool) -> t -> t

val merge : t -> t -> t
(** Union of candidates (same-session routes from the right table win). *)

type diff = {
  added : Rpi_net.Prefix.t list;  (** Prefixes only in the newer table. *)
  removed : Rpi_net.Prefix.t list;  (** Prefixes only in the older table. *)
  best_changed : (Rpi_net.Prefix.t * Route.t option * Route.t option) list;
      (** Prefixes whose best route's next-hop AS differs:
          [(prefix, old_best, new_best)]. *)
  unchanged : int;
}

val diff : ?config:Decision.config -> old_rib:t -> t -> diff
(** Snapshot delta, the unit of the paper's day-over-day persistence
    study: what appeared, what vanished, what re-routed. *)
