(** Hash-consed AS paths.

    An intern table maps AS paths (built head-first out of cons cells) to
    small integer ids with memoized length, origin and first hop, so path
    equality is integer equality and the propagation engine's comparator
    never walks a list.  Tables are append-only for the duration of a run
    and are not domain-safe: create one per propagation run (the engine
    does), never share one across domains, and never serialize ids — they
    are meaningless outside the table that produced them. *)

type t
(** The intern table. *)

type id = private int
(** An interned path.  Ids from different tables are unrelated. *)

val nil : id
(** The empty path. *)

val create : ?capacity:int -> unit -> t
(** A fresh table; [capacity] is a hint for the expected number of
    distinct cells.  Pre-size generously for large runs: growth doubles
    every cell array and rehashes the slot table, so a table created at
    its working-set size never pays either cost. *)

val reset : t -> unit
(** Forget every interned path (all previously returned ids become
    invalid) but keep the grown capacity.  A reset table behaves like a
    fresh {!create} of the accumulated size — this is what lets one
    table be reused across many propagation runs. *)

val capacity : t -> int
(** Current cell capacity (grows monotonically; survives {!reset}). *)

val cons : t -> Asn.t -> id -> id
(** [cons t a p] interns the path [a :: p].  O(1) amortized. *)

val cons_n : t -> Asn.t -> int -> id -> id
(** [cons_n t a k p] prepends [k] copies of [a] (AS-path prepending);
    [k <= 0] returns [p] unchanged. *)

val of_list : t -> Asn.t list -> id
val to_list : t -> id -> Asn.t list

val length : t -> id -> int
(** Memoized; O(1). *)

val first_hop : t -> id -> Asn.t option
(** The head (announcing neighbour); [None] for {!nil}.  O(1). *)

val origin : t -> id -> Asn.t option
(** The last element (originating AS); [None] for {!nil}.  O(1). *)

val equal : id -> id -> bool
(** Path equality, for ids from the same table.  O(1). *)

val mem : t -> Asn.t -> id -> bool
(** Loop check: does the AS appear on the path?  A per-cell membership
    bloom rejects most misses in O(1); hits walk the path. *)

val compare_lex : t -> id -> id -> int
(** Lexicographic by AS number — the same order as
    [List.compare Asn.compare] on the corresponding lists. *)

type stats = { hits : int; misses : int; unique : int }

val stats : t -> stats
(** [hits]/[misses] count {!cons} calls that found / allocated a cell;
    [unique] is the number of live cells. *)
