(** A BGP route: one prefix plus the attributes the decision process and the
    policy-inference algorithms consume. *)

type origin =
  | Igp  (** Originated by an IGP ("i" in show ip bgp). *)
  | Egp  (** Legacy EGP origin ("e"). *)
  | Incomplete  (** Redistributed ("?"). *)

type source =
  | Ebgp  (** Learned from an external peer. *)
  | Ibgp  (** Learned from an internal peer. *)
  | Local  (** Originated by this router. *)

type t = {
  prefix : Rpi_net.Prefix.t;
  next_hop : Rpi_net.Ipv4.t;
  as_path : As_path.t;
  origin : origin;
  local_pref : int option;  (** [None] means the default (100) applies. *)
  med : int option;
  communities : Community.Set.t;
  source : source;
  igp_metric : int;  (** Distance to the egress border router. *)
  router_id : Rpi_net.Ipv4.t;  (** Advertising router's ID (final tie-break). *)
  peer_as : Asn.t option;  (** Neighbouring AS the route came from. *)
}

val default_local_pref : int
(** 100, the conventional default. *)

val make :
  prefix:Rpi_net.Prefix.t ->
  next_hop:Rpi_net.Ipv4.t ->
  as_path:As_path.t ->
  ?origin:origin ->
  ?local_pref:int ->
  ?med:int ->
  ?communities:Community.Set.t ->
  ?source:source ->
  ?igp_metric:int ->
  ?router_id:Rpi_net.Ipv4.t ->
  ?peer_as:Asn.t ->
  unit ->
  t

val effective_local_pref : t -> int
(** [local_pref] or the default when unset. *)

val effective_med : t -> int
(** MED, treating absence as 0 (the common "missing-as-best" convention). *)

val next_hop_as : t -> Asn.t option
(** First AS of the path — the neighbour through which the route arrived.
    Falls back to [peer_as] for an empty path. *)

val origin_as : t -> Asn.t option
(** Last AS of the path; for locally originated routes, [None]. *)

val has_community : Community.t -> t -> bool
val add_community : Community.t -> t -> t
val with_local_pref : int -> t -> t

val origin_rank : origin -> int
(** Declaration-order rank (Igp < Egp < Incomplete) — the explicit total
    order {!compare} uses; the decision process ranks separately in
    [Decision]. *)

val source_rank : source -> int
(** Declaration-order rank (Ebgp < Ibgp < Local), for {!compare} only. *)

val origin_to_string : origin -> string
(** ["i"], ["e"] or ["?"]. *)

val origin_of_string : string -> (origin, string) result
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int
