module Asn = Rpi_bgp.Asn
module Path_intern = Rpi_bgp.Path_intern
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship

type config = { sibling_threshold : int; peer_degree_ratio : float }

let default_config = { sibling_threshold = 1; peer_degree_ratio = 60.0 }

(* Collapse consecutive duplicates (AS-path prepending). *)
let dedup path =
  let rec go = function
    | a :: (b :: _ as rest) -> if Asn.equal a b then go rest else a :: go rest
    | ([ _ ] | []) as tail -> tail
  in
  go path

module Pair = struct
  type t = Asn.t * Asn.t

  (* Keys are unordered pairs, kept (lo, hi). *)
  let compare (a1, b1) (a2, b2) =
    match Asn.compare a1 a2 with
    | 0 -> Asn.compare b1 b2
    | c -> c
end

module Pair_map = Map.Make (Pair)
module Pair_set = Set.Make (Pair)

let degrees paths =
  let adjacency =
    List.fold_left
      (fun acc path ->
        let path = dedup path in
        let rec walk acc = function
          | a :: (b :: _ as rest) ->
              let add x y acc =
                let set =
                  match Asn.Map.find_opt x acc with
                  | Some s -> s
                  | None -> Asn.Set.empty
                in
                Asn.Map.add x (Asn.Set.add y set) acc
              in
              walk (add a b (add b a acc)) rest
          | [ _ ] | [] -> acc
        in
        walk acc path)
      Asn.Map.empty paths
  in
  Asn.Map.map Asn.Set.cardinal adjacency

let top_provider_index degree path =
  let deg a =
    match Asn.Map.find_opt a degree with
    | Some d -> d
    | None -> 0
  in
  let _, top, _ =
    List.fold_left
      (fun (i, best_i, best_d) a ->
        let d = deg a in
        if d > best_d then (i + 1, i, d) else (i + 1, best_i, best_d))
      (0, 0, min_int) path
  in
  top

let infer ?(config = default_config) paths =
  (* Observed tables repeat the same AS path massively (one copy per
     prefix), so the sweep below runs once per *unique* deduped path with
     its multiplicity: transit votes are commutative sums, so a path seen
     k times contributes exactly k identical votes, and the degree
     adjacency plus the peering candidate / non-peering sets are
     set-valued, making multiplicity irrelevant there.  Interning makes
     the uniqueness check one hash probe per hop, and the accumulators run
     on hashed int pairs; the ordered maps and sets the labelling phases
     need are rebuilt once at the end, so the result is the same graph the
     purely-functional formulation produces. *)
  let tbl = Path_intern.create ~capacity:4096 () in
  let counts : (Path_intern.id, int) Hashtbl.t = Hashtbl.create 4096 in
  List.iter
    (fun p ->
      let id = Path_intern.of_list tbl (dedup p) in
      match Hashtbl.find_opt counts id with
      | Some k -> Hashtbl.replace counts id (k + 1)
      | None -> Hashtbl.add counts id 1)
    paths;
  let uniq =
    Hashtbl.fold
      (fun id k acc -> (Array.of_list (Path_intern.to_list tbl id), k) :: acc)
      counts []
  in
  (* Degree = number of distinct neighbours over the observed adjacencies;
     multiplicities don't matter, so unique paths suffice (this matches
     [degrees] on the raw path list). *)
  let adjacency : (int * int, unit) Hashtbl.t = Hashtbl.create 4096 in
  let degree_tbl : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun ((arr : Asn.t array), _) ->
      for i = 0 to Array.length arr - 2 do
        let a = Asn.to_int arr.(i) and b = Asn.to_int arr.(i + 1) in
        let key = if a <= b then (a, b) else (b, a) in
        if a <> b && not (Hashtbl.mem adjacency key) then begin
          Hashtbl.add adjacency key ();
          let bump x =
            match Hashtbl.find_opt degree_tbl x with
            | Some d -> Hashtbl.replace degree_tbl x (d + 1)
            | None -> Hashtbl.add degree_tbl x 1
          in
          bump a;
          bump b
        end
      done)
    uniq;
  let deg_int a =
    match Hashtbl.find_opt degree_tbl a with
    | Some d -> d
    | None -> 0
  in
  let deg a = deg_int (Asn.to_int a) in
  (* transit votes: key (u, v) with u < v as ints, value (votes "v provides
     for u", votes "u provides for v"). *)
  let votes : (int * int, (int * int) ref) Hashtbl.t = Hashtbl.create 4096 in
  let vote ~w ~customer ~provider =
    let c = Asn.to_int customer and p = Asn.to_int provider in
    let key = if c <= p then (c, p) else (p, c) in
    let fwd = c <= p in
    (* fwd: first component is the customer. *)
    let cell =
      match Hashtbl.find_opt votes key with
      | Some r -> r
      | None ->
          let r = ref (0, 0) in
          Hashtbl.add votes key r;
          r
    in
    let a, b = !cell in
    cell := if fwd then (a + w, b) else (a, b + w)
  in
  let non_peering : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let candidates : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let add_pair t a b =
    let a = Asn.to_int a and b = Asn.to_int b in
    let key = if a <= b then (a, b) else (b, a) in
    if not (Hashtbl.mem t key) then Hashtbl.add t key ()
  in
  let process ((arr : Asn.t array), w) =
    let n = Array.length arr in
    if n >= 2 then begin
      (* Top provider: highest degree, ties to the first (same rule as
         [top_provider_index]). *)
      let j = ref 0 in
      let best = ref min_int in
      for i = 0 to n - 1 do
        let d = deg arr.(i) in
        if d > !best then begin
          best := d;
          j := i
        end
      done;
      let j = !j in
      for i = 0 to n - 2 do
        let a = arr.(i) and b = arr.(i + 1) in
        if i < j then vote ~w ~customer:a ~provider:b else vote ~w ~customer:b ~provider:a;
        (* Pairs strictly inside the uphill or downhill sections cannot be
           peering. *)
        if i + 1 < j || i > j then add_pair non_peering a b
      done;
      (* The top provider can peer with at most one path neighbour: the
         higher-degree side. *)
      let candidate =
        if j > 0 && j < n - 1 then
          Some (if deg arr.(j - 1) >= deg arr.(j + 1) then arr.(j - 1) else arr.(j + 1))
        else if j > 0 then Some arr.(j - 1)
        else if j < n - 1 then Some arr.(j + 1)
        else None
      in
      match candidate with
      | Some c -> add_pair candidates arr.(j) c
      | None -> ()
    end
  in
  List.iter process uniq;
  (* Assign transit labels, iterating pairs in the deterministic order the
     ordered map gave the original formulation. *)
  let vote_map =
    Hashtbl.fold
      (fun (u, v) cell acc -> Pair_map.add (Asn.of_int u, Asn.of_int v) !cell acc)
      votes Pair_map.empty
  in
  let graph =
    Pair_map.fold
      (fun (u, v) (v_provides_u, u_provides_v) g ->
        let l = config.sibling_threshold in
        if v_provides_u > 0 && u_provides_v > 0 && v_provides_u <= l && u_provides_v <= l
        then As_graph.add_s2s g u v
        else if v_provides_u > u_provides_v then As_graph.add_p2c g ~provider:v ~customer:u
        else if u_provides_v > v_provides_u then As_graph.add_p2c g ~provider:u ~customer:v
        else As_graph.add_s2s g u v)
      vote_map As_graph.empty
  in
  (* Peering phase: relabel qualifying candidates. *)
  let candidate_set =
    Hashtbl.fold
      (fun (u, v) () acc -> Pair_set.add (Asn.of_int u, Asn.of_int v) acc)
      candidates Pair_set.empty
  in
  Pair_set.fold
    (fun (u, v) g ->
      let key = (Asn.to_int u, Asn.to_int v) in
      if Hashtbl.mem non_peering key then g
      else begin
        let du = float_of_int (max 1 (deg u)) and dv = float_of_int (max 1 (deg v)) in
        let ratio = if du > dv then du /. dv else dv /. du in
        if ratio < config.peer_degree_ratio then As_graph.add_p2p g u v else g
      end)
    candidate_set graph
