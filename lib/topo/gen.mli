(** Synthetic Internet topology generator.

    Builds an annotated AS graph with the structural features the paper's
    inference algorithms depend on: a fully meshed clique of transit-free
    Tier-1 ASs, a tiered provider hierarchy with preferential attachment
    (yielding a heavy-tailed degree distribution), configurable multihoming,
    and peering whose density decreases down the hierarchy.

    AS numbers are chosen to echo the paper's cast (AS1, AS7018, AS3549,
    AS1239, ... as Tier-1s; AS5511, AS7474, ... as Tier-2s) so experiment
    output reads like the paper's tables; remaining ASs are numbered from
    [first_dynamic_asn] upward. *)

module Asn = Rpi_bgp.Asn

type config = {
  n_tier1 : int;  (** Size of the transit-free clique. *)
  n_tier2 : int;  (** Large regional/national transit providers. *)
  n_tier3 : int;  (** Small transit providers. *)
  n_stub : int;  (** Edge ASs with no customers. *)
  multihoming_prob : float;  (** Probability a non-Tier-1 AS buys >1 upstream. *)
  max_providers : int;  (** Cap on providers per AS. *)
  tier2_peering_degree : float;  (** Mean peering edges per Tier-2 AS. *)
  tier3_peering_degree : float;  (** Mean peering edges per Tier-3 AS. *)
  sibling_pairs : int;  (** Number of sibling edges to plant. *)
  tier3_upstream_mix : float * float;
      (** (tier2, tier1): class each Tier-3 provider pick is drawn from. *)
  stub_upstream_mix : float * float * float;
      (** (tier3, tier2, tier1): class each stub provider pick is drawn
          from.  The Tier-1/Tier-2 shares produce the heavy degree skew of
          the measured Internet. *)
  tier12_peering_fraction : float;
      (** Fraction of the largest Tier-2s that peer with a few Tier-1s. *)
}

val default_config : config
(** ~1840 ASs: 10 Tier-1, 80 Tier-2, 350 Tier-3, 1400 stubs, 60%
    multihoming; stub attachment mixed across tiers so Tier-1 degrees
    dominate. *)

type t = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  tier2 : Asn.t list;
  tier3 : Asn.t list;
  stubs : Asn.t list;
}

val tiers_ground_truth : t -> int Asn.Map.t
(** Tier labels as generated (the oracle {!Tier.classify} is scored
    against). *)

val validate : config -> (unit, string) result
(** Reject configurations the generators cannot honour: fewer than two
    Tier-1s, negative tier sizes or sibling targets, provider caps below
    1, upstream mixes that are negative or do not sum to 1, and — the
    scale guard — tier sizes whose dynamic AS
    numbering would run past the 32-bit ASN space above
    [first_dynamic_asn].  Both generators call this and raise
    [Invalid_argument] with the same message on [Error]. *)

val generate : ?config:config -> Rpi_prng.Prng.t -> t
(** Deterministic for a given generator state.  Rebuilds degree-weighted
    candidate lists per provider pick — quadratic in the AS count, so
    suitable up to a few thousand ASs; use {!generate_scaled} beyond
    that.
    @raise Invalid_argument when {!validate} rejects the config. *)

val scale_config : n:int -> config
(** A heavy-tailed configuration for approximately [n] total ASs
    (Tier-1 clique capped at 16, Tier-2 ~n/60, Tier-3 ~n/7, the rest
    stubs), keeping the default attachment mixes and peering densities.
    @raise Invalid_argument when [n < 64]. *)

val generate_scaled : ?config:config -> Rpi_prng.Prng.t -> t
(** Same topology family as {!generate} (clique, tiered preferential
    attachment, declining peering density, Tier-3 siblings) but built in
    an int-indexed node space with ticket-array preferential attachment —
    O(n + E) generation instead of quadratic, practical at 15k–100k ASs.
    Deterministic for a given generator state, but draws a different
    stream than {!generate}: the two produce different (same-family)
    graphs from equal seeds.
    @raise Invalid_argument when {!validate} rejects the config. *)

val famous_tier1 : Asn.t list
(** The paper's Tier-1 cast, used for the first Tier-1 slots:
    AS1, AS7018, AS3549, AS1239, AS701, AS209, AS2914, AS3561, AS6453,
    AS6461. *)

val famous_tier2 : Asn.t list
(** Paper Tier-2/Looking-Glass cast: AS5511, AS7474, AS577, AS6539,
    AS6538, AS6762, AS3216, ... used for the first Tier-2 slots. *)

val first_dynamic_asn : int
(** AS numbers at and above this value are generated sequentially. *)
