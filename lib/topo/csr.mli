(** Int-indexed compressed-sparse-row (CSR) view of {!As_graph}.

    Built once (typically by [Engine.prepare]) and then shared
    read-only across domains, this replaces per-visit functional-map
    lookups with flat array indexing on the propagation hot path.

    Nodes are numbered [0..n-1] in ascending ASN order; node [i]'s
    out-edges occupy [off.(i), off.(i+1)) sorted by neighbour ASN —
    the same order {!As_graph.neighbors} returns, so traversals over
    the CSR visit neighbours in the identical order and downstream
    results stay byte-identical.

    Because adjacency is symmetric, out-degree = in-degree per node and
    the directed-edge index space doubles as a receiver-side slot
    space: [back.(t)] — the index of the reverse edge — is also the
    slot where the edge's destination stores state about its sender. *)

module Asn = Rpi_bgp.Asn

type t = {
  ases : Asn.t array;  (** node id -> ASN, ascending *)
  index : int Asn.Table.t;  (** ASN -> node id *)
  off : int array;  (** length n+1; prefix sums of out-degrees *)
  dst : int array;  (** edge -> destination node id *)
  dst_asn : Asn.t array;  (** edge -> destination ASN *)
  rel : Relationship.t array;
      (** edge i->j -> how [i] classifies [j] (per {!As_graph.relationship}) *)
  back : int array;  (** edge i->j -> index of the reverse edge j->i *)
}

val of_graph : As_graph.t -> t
(** O(E log d) freeze of a graph.  @raise Invalid_argument if the
    adjacency is not symmetric (cannot happen for graphs built through
    {!As_graph}'s constructors). *)

val node_count : t -> int
val edge_count : t -> int
(** Directed edge count, i.e. [2 * As_graph.edge_count]. *)

val degree : t -> int -> int
