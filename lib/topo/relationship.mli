(** Commercial relationships between neighbouring ASs.

    Throughout the library a relationship value is read from the point of
    view of an AS looking at one of its neighbours: [Customer] means "the
    neighbour is my customer". *)

type t =
  | Customer  (** The neighbour pays me for transit. *)
  | Provider  (** I pay the neighbour for transit. *)
  | Peer  (** Settlement-free peering. *)
  | Sibling  (** Same organisation; mutual transit. *)

val invert : t -> t
(** How the neighbour sees me: customers' providers are providers, peers
    stay peers. *)

val to_string : t -> string
val of_string : string -> (t, string) result
val rank : t -> int
(** Declaration-order rank (Customer 0 … Sibling 3): the explicit total
    order behind {!compare}/{!equal}. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val all : t list
(** The four relationships, in declaration order. *)
