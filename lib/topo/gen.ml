module Asn = Rpi_bgp.Asn
module Prng = Rpi_prng.Prng

type config = {
  n_tier1 : int;
  n_tier2 : int;
  n_tier3 : int;
  n_stub : int;
  multihoming_prob : float;
  max_providers : int;
  tier2_peering_degree : float;
  tier3_peering_degree : float;
  sibling_pairs : int;
  tier3_upstream_mix : float * float;
      (* (tier2, tier1) probability a tier-3 provider pick comes from each
         class; must sum to 1. *)
  stub_upstream_mix : float * float * float;
      (* (tier3, tier2, tier1) class mix for stub provider picks. *)
  tier12_peering_fraction : float;
      (* Fraction of the largest Tier-2s that obtain settlement-free
         peering with a few Tier-1s. *)
}

let default_config =
  {
    n_tier1 = 10;
    n_tier2 = 80;
    n_tier3 = 350;
    n_stub = 1400;
    multihoming_prob = 0.6;
    max_providers = 4;
    tier2_peering_degree = 4.0;
    tier3_peering_degree = 1.5;
    sibling_pairs = 10;
    tier3_upstream_mix = (0.85, 0.15);
    stub_upstream_mix = (0.60, 0.25, 0.15);
    tier12_peering_fraction = 0.25;
  }

type t = {
  graph : As_graph.t;
  tier1 : Asn.t list;
  tier2 : Asn.t list;
  tier3 : Asn.t list;
  stubs : Asn.t list;
}

let famous_tier1 =
  List.map Asn.of_int [ 1; 7018; 3549; 1239; 701; 209; 2914; 3561; 6453; 6461 ]

let famous_tier2 =
  List.map Asn.of_int
    [ 5511; 7474; 577; 6539; 6538; 6762; 3216; 6667; 2578; 513; 12359; 8262; 559; 12859; 3320; 1299 ]

let first_dynamic_asn = 20000

let max_asn = 0xFFFF_FFFF

(* The famous casts all sit below [first_dynamic_asn] today, but [allocate]
   must not silently mint a duplicate if that ever changes (or if a caller
   supplies a custom pool): dynamic numbering skips anything famous. *)
let famous_set =
  List.fold_left
    (fun s a -> Asn.Set.add a s)
    Asn.Set.empty
    (famous_tier1 @ famous_tier2)

(* Allocate [n] AS numbers, preferring the famous pool then counting up
   (skipping numbers already taken by a famous AS). *)
let allocate pool next n =
  let rec bump next = if Asn.Set.mem (Asn.of_int next) famous_set then bump (next + 1) else next in
  let rec go pool next k acc =
    if k = 0 then (List.rev acc, pool, next)
    else begin
      match pool with
      | a :: rest -> go rest next (k - 1) (a :: acc)
      | [] ->
          let next = bump next in
          go [] (next + 1) (k - 1) (Asn.of_int next :: acc)
    end
  in
  go pool next n []

let validate config =
  let mix_ok parts = List.for_all (fun p -> p >= 0.0) parts && abs_float (List.fold_left ( +. ) 0.0 parts -. 1.0) < 1e-6 in
  let t3_t2, t3_t1 = config.tier3_upstream_mix in
  let st_t3, st_t2, st_t1 = config.stub_upstream_mix in
  let dynamic_needed =
    max 0 (config.n_tier1 - List.length famous_tier1)
    + max 0 (config.n_tier2 - List.length famous_tier2)
    + config.n_tier3 + config.n_stub
  in
  let asn_budget = max_asn - first_dynamic_asn + 1 in
  if config.n_tier1 < 2 then Error "need at least 2 Tier-1 ASs"
  else if config.n_tier2 < 0 || config.n_tier3 < 0 || config.n_stub < 0 then
    Error "tier sizes must be non-negative"
  else if config.max_providers < 1 then Error "max_providers must be at least 1"
  else if config.sibling_pairs < 0 then Error "sibling_pairs must be non-negative"
    (* sibling_pairs above the achievable pair count is a target, not an
       error: planting stops at the attempts cap, as it always has. *)
  else if dynamic_needed > asn_budget then
    Error
      (Printf.sprintf
         "tier sizes need %d dynamic AS numbers but only %d exist above %d"
         dynamic_needed asn_budget first_dynamic_asn)
  else if not (mix_ok [ t3_t2; t3_t1 ]) then
    Error "tier3_upstream_mix must be non-negative and sum to 1"
  else if not (mix_ok [ st_t3; st_t2; st_t1 ]) then
    Error "stub_upstream_mix must be non-negative and sum to 1"
  else if config.multihoming_prob < 0.0 || config.multihoming_prob > 1.0 then
    Error "multihoming_prob must be in [0, 1]"
  else if config.tier12_peering_fraction < 0.0 || config.tier12_peering_fraction > 1.0 then
    Error "tier12_peering_fraction must be in [0, 1]"
  else Ok ()

let validate_exn ~who config =
  match validate config with
  | Ok () -> ()
  | Error msg -> invalid_arg (who ^ ": " ^ msg)

(* Pick up to [k] distinct providers from [candidates], weighting each by
   its current degree + 1 (preferential attachment). *)
let pick_providers rng graph candidates k =
  let rec go chosen remaining k =
    if k = 0 || remaining = [] then chosen
    else begin
      let weighted =
        List.map (fun a -> (a, float_of_int (As_graph.degree graph a + 1))) remaining
      in
      let pick = Prng.weighted_choice rng weighted in
      let remaining = List.filter (fun a -> not (Asn.equal a pick)) remaining in
      go (pick :: chosen) remaining (k - 1)
    end
  in
  List.rev (go [] candidates k)

(* Pick [k] distinct providers, drawing each pick's class first (the mix)
   and the member by preferential attachment within the class.  This skews
   degrees towards the top of the hierarchy, as in the measured Internet
   (the paper's Table 1 spans degree 14 to 1330). *)
let pick_providers_mixed rng graph classes k =
  let rec go chosen k attempts =
    if k = 0 || attempts > 20 * k then chosen
    else begin
      let pool = Prng.weighted_choice rng classes in
      let available = List.filter (fun a -> not (List.exists (Asn.equal a) chosen)) pool in
      match available with
      | [] -> go chosen k (attempts + 1)
      | _ :: _ -> begin
          match pick_providers rng graph available 1 with
          | [ pick ] -> go (pick :: chosen) (k - 1) (attempts + 1)
          | _ -> go chosen k (attempts + 1)
        end
    end
  in
  List.rev (go [] k 0)

let provider_count rng config =
  if Prng.chance rng config.multihoming_prob then
    Prng.int_in rng 2 (max 2 config.max_providers)
  else 1

(* Add [target_mean * |members| / 2] random peering edges inside [members],
   skipping pairs already adjacent and pairs of incomparable size —
   settlement-free peering only happens between networks of similar scale,
   which is also what keeps peer edges separable from provider-customer
   edges by degree ratio. *)
let comparable graph a b ~max_ratio =
  let da = float_of_int (max 1 (As_graph.degree graph a)) in
  let db = float_of_int (max 1 (As_graph.degree graph b)) in
  (if da > db then da /. db else db /. da) <= max_ratio

let add_peering ?(max_ratio = 3.0) rng graph members target_mean =
  let arr = Array.of_list members in
  let n = Array.length arr in
  if n < 2 then graph
  else begin
    let edges = int_of_float (target_mean *. float_of_int n /. 2.0) in
    let rec go graph k attempts =
      if k = 0 || attempts > edges * 30 then graph
      else begin
        let a = Prng.choice rng arr in
        let b = Prng.choice rng arr in
        if
          Asn.equal a b || As_graph.mem_edge graph a b
          || not (comparable graph a b ~max_ratio)
        then go graph k (attempts + 1)
        else go (As_graph.add_p2p graph a b) (k - 1) (attempts + 1)
      end
    in
    go graph edges 0
  end

let generate ?(config = default_config) rng =
  validate_exn ~who:"Gen.generate" config;
  let tier1, _, next = allocate famous_tier1 first_dynamic_asn config.n_tier1 in
  let tier2, _, next = allocate famous_tier2 next config.n_tier2 in
  let tier3, _, next = allocate [] next config.n_tier3 in
  let stubs, _, _ = allocate [] next config.n_stub in
  let graph = List.fold_left As_graph.add_as As_graph.empty tier1 in
  (* Tier-1: full peering mesh. *)
  let graph =
    List.fold_left
      (fun g a ->
        List.fold_left
          (fun g b -> if Asn.compare a b < 0 then As_graph.add_p2p g a b else g)
          g tier1)
      graph tier1
  in
  (* Tier-2: providers drawn from Tier-1. *)
  let graph =
    List.fold_left
      (fun g a ->
        let k = provider_count rng config in
        let providers = pick_providers rng g tier1 k in
        List.fold_left (fun g p -> As_graph.add_p2c g ~provider:p ~customer:a) g providers)
      graph tier2
  in
  (* Tier-3: providers drawn mostly from Tier-2, with a Tier-1 bypass
     share. *)
  let t3_t2, t3_t1 = config.tier3_upstream_mix in
  let graph =
    List.fold_left
      (fun g a ->
        let k = provider_count rng config in
        let providers = pick_providers_mixed rng g [ (tier2, t3_t2); (tier1, t3_t1) ] k in
        List.fold_left (fun g p -> As_graph.add_p2c g ~provider:p ~customer:a) g providers)
      graph tier3
  in
  (* Stubs: mostly Tier-3 attached, with direct Tier-2/Tier-1 shares. *)
  let st_t3, st_t2, st_t1 = config.stub_upstream_mix in
  let graph =
    List.fold_left
      (fun g a ->
        let k = provider_count rng config in
        let providers =
          pick_providers_mixed rng g [ (tier3, st_t3); (tier2, st_t2); (tier1, st_t1) ] k
        in
        List.fold_left (fun g p -> As_graph.add_p2c g ~provider:p ~customer:a) g providers)
      graph stubs
  in
  (* Peering is added once all transit attachment is in place, so that the
     comparable-size requirement works on final degrees. *)
  let graph = add_peering rng graph tier2 config.tier2_peering_degree in
  let graph = add_peering rng graph tier3 config.tier3_peering_degree in
  (* A few sibling pairs among Tier-3 ASs. *)
  let tier3_arr = Array.of_list tier3 in
  let rec add_siblings g k attempts =
    if k = 0 || attempts > config.sibling_pairs * 20 || Array.length tier3_arr < 2 then g
    else begin
      let a = Prng.choice rng tier3_arr in
      let b = Prng.choice rng tier3_arr in
      if Asn.equal a b || As_graph.mem_edge g a b then add_siblings g k (attempts + 1)
      else add_siblings (As_graph.add_s2s g a b) (k - 1) (attempts + 1)
    end
  in
  let graph = add_siblings graph config.sibling_pairs 0 in
  (* The largest Tier-2s obtain peering with a few Tier-1s (this is what
     gives real Tier-1s their dozens of peers rather than just the
     clique). *)
  let tier2_by_degree =
    List.sort (fun a b -> Int.compare (As_graph.degree graph b) (As_graph.degree graph a)) tier2
  in
  let n_peerers =
    int_of_float (config.tier12_peering_fraction *. float_of_int (List.length tier2))
  in
  let graph =
    List.fold_left
      (fun g t2 ->
        let count = Prng.int_in rng 1 (min 3 (max 1 (List.length tier1))) in
        let chosen = Prng.sample rng count tier1 in
        List.fold_left
          (fun g t1 -> if As_graph.mem_edge g t1 t2 then g else As_graph.add_p2p g t1 t2)
          g chosen)
      graph
      (List.filteri (fun i _ -> i < n_peerers) tier2_by_degree)
  in
  { graph; tier1; tier2; tier3; stubs }

let tiers_ground_truth t =
  let tag tier acc ases = List.fold_left (fun m a -> Asn.Map.add a tier m) acc ases in
  let m = tag 1 Asn.Map.empty t.tier1 in
  let m = tag 2 m t.tier2 in
  let m = tag 3 m t.tier3 in
  tag 4 m t.stubs

let scale_config ~n =
  if n < 64 then invalid_arg "Gen.scale_config: need at least 64 ASs";
  let n_tier1 = min 16 (max 4 (4 + (n / 1500))) in
  let n_tier2 = max 8 (n / 60) in
  let n_tier3 = max 20 (n / 7) in
  let n_stub = max 0 (n - n_tier1 - n_tier2 - n_tier3) in
  {
    default_config with
    n_tier1;
    n_tier2;
    n_tier3;
    n_stub;
    sibling_pairs = max 10 (n / 200);
  }

(* {2 Scaled generation}

   [generate] rebuilds a weighted candidate list for every provider pick
   (O(n) per pick over functional-map degrees), which is quadratic in the
   AS count — fine at 2k ASs, hopeless at 100k.  [generate_scaled] works
   in an int-indexed node space with ticket-array preferential attachment:
   each ticketed node appears [degree + 1] times in its class's ticket
   array (one base ticket plus one per incident edge), so a uniform draw
   from the array IS a degree+1-weighted draw, in O(1).  Edges accumulate
   in a plain list and the annotated graph is built once at the end —
   O(n + E) generation plus the O(E log n) graph freeze. *)

(* Ticket arrays are strictly per-call scratch: every instance is created
   inside [generate_scaled], grows while that single invocation attaches
   edges, and dies with it — never stored, returned, or shared across
   domains. *)
(* rpilint: allow mutable-toplevel *)
type tickets = { mutable tk_buf : int array; mutable tk_len : int }

let tickets_make cap = { tk_buf = Array.make (max cap 16) 0; tk_len = 0 }

let tickets_push t x =
  if t.tk_len = Array.length t.tk_buf then begin
    let b = Array.make (2 * t.tk_len) 0 in
    Array.blit t.tk_buf 0 b 0 t.tk_len;
    t.tk_buf <- b
  end;
  t.tk_buf.(t.tk_len) <- x;
  t.tk_len <- t.tk_len + 1

let tickets_pick rng t = t.tk_buf.(Prng.int rng t.tk_len)

let generate_scaled ?(config = default_config) rng =
  validate_exn ~who:"Gen.generate_scaled" config;
  let t1 = config.n_tier1 and t2 = config.n_tier2 in
  let t3 = config.n_tier3 and st = config.n_stub in
  let n = t1 + t2 + t3 + st in
  (* Node ids: tier1 [0,t1), tier2 [t1,t1+t2), tier3, then stubs. *)
  let tier1_lo = 0 and tier2_lo = t1 in
  let tier3_lo = t1 + t2 and stub_lo = t1 + t2 + t3 in
  let asn_of = Array.make n (Asn.of_int 0) in
  let fill lo ases = List.iteri (fun i a -> asn_of.(lo + i) <- a) ases in
  let tier1, _, next = allocate famous_tier1 first_dynamic_asn t1 in
  let tier2, _, next = allocate famous_tier2 next t2 in
  let tier3, _, next = allocate [] next t3 in
  let stubs, _, _ = allocate [] next st in
  fill tier1_lo tier1;
  fill tier2_lo tier2;
  fill tier3_lo tier3;
  fill stub_lo stubs;
  let deg = Array.make n 0 in
  (* Ticket arrays for the three provider classes; stubs are never picked.
     Sized at 3x membership so typical degree growth stays in place. *)
  let t1_tickets = tickets_make (3 * t1) in
  let t2_tickets = tickets_make (3 * max 1 t2) in
  let t3_tickets = tickets_make (3 * max 1 t3) in
  let tickets_of i =
    if i < tier2_lo then Some t1_tickets
    else if i < tier3_lo then Some t2_tickets
    else if i < stub_lo then Some t3_tickets
    else None
  in
  for i = 0 to stub_lo - 1 do
    match tickets_of i with Some t -> tickets_push t i | None -> ()
  done;
  let edges = ref [] in
  let edge_set = Hashtbl.create (4 * n) in
  let edge_key a b = if a < b then (a * n) + b else (b * n) + a in
  let mem_edge a b = Hashtbl.mem edge_set (edge_key a b) in
  (* [rel] is how [a] classifies [b]. *)
  let add_edge a b rel =
    Hashtbl.replace edge_set (edge_key a b) ();
    edges := (a, b, rel) :: !edges;
    deg.(a) <- deg.(a) + 1;
    deg.(b) <- deg.(b) + 1;
    (match tickets_of a with Some t -> tickets_push t a | None -> ());
    match tickets_of b with Some t -> tickets_push t b | None -> ()
  in
  (* Tier-1: full peering mesh. *)
  for a = 0 to t1 - 1 do
    for b = a + 1 to t1 - 1 do
      add_edge a b Relationship.Peer
    done
  done;
  (* Distinct degree-weighted provider picks for [c], class drawn from the
     mix first.  [k <= max_providers] so the linear distinctness scan is
     O(1) in practice. *)
  let pick_providers_mixed c classes k =
    let chosen = ref [] and picked = ref 0 and attempts = ref 0 in
    while !picked < k && !attempts <= 20 * k do
      incr attempts;
      let pool = Prng.weighted_choice rng classes in
      if pool.tk_len > 0 then begin
        let p = tickets_pick rng pool in
        if not (List.mem p !chosen) then begin
          chosen := p :: !chosen;
          incr picked;
          add_edge p c Relationship.Customer
        end
      end
    done
  in
  (* Tier-2: providers drawn from Tier-1. *)
  for c = tier2_lo to tier3_lo - 1 do
    pick_providers_mixed c [ (t1_tickets, 1.0) ] (provider_count rng config)
  done;
  (* Tier-3: mostly Tier-2 with a Tier-1 bypass share. *)
  let t3_t2, t3_t1 = config.tier3_upstream_mix in
  for c = tier3_lo to stub_lo - 1 do
    pick_providers_mixed c
      [ (t2_tickets, t3_t2); (t1_tickets, t3_t1) ]
      (provider_count rng config)
  done;
  (* Stubs: mostly Tier-3 attached, with direct Tier-2/Tier-1 shares. *)
  let st_t3, st_t2, st_t1 = config.stub_upstream_mix in
  for c = stub_lo to n - 1 do
    pick_providers_mixed c
      [ (t3_tickets, st_t3); (t2_tickets, st_t2); (t1_tickets, st_t1) ]
      (provider_count rng config)
  done;
  let comparable a b ~max_ratio =
    let da = float_of_int (max 1 deg.(a)) and db = float_of_int (max 1 deg.(b)) in
    (if da > db then da /. db else db /. da) <= max_ratio
  in
  let add_peering ?(max_ratio = 3.0) lo count target_mean =
    if count >= 2 then begin
      let target = int_of_float (target_mean *. float_of_int count /. 2.0) in
      let added = ref 0 and attempts = ref 0 in
      while !added < target && !attempts <= target * 30 do
        incr attempts;
        let a = lo + Prng.int rng count and b = lo + Prng.int rng count in
        if a <> b && (not (mem_edge a b)) && comparable a b ~max_ratio then begin
          add_edge a b Relationship.Peer;
          incr added
        end
      done
    end
  in
  add_peering tier2_lo t2 config.tier2_peering_degree;
  add_peering tier3_lo t3 config.tier3_peering_degree;
  (* Sibling pairs among Tier-3 ASs. *)
  if t3 >= 2 then begin
    let added = ref 0 and attempts = ref 0 in
    while !added < config.sibling_pairs && !attempts <= config.sibling_pairs * 20 do
      incr attempts;
      let a = tier3_lo + Prng.int rng t3 and b = tier3_lo + Prng.int rng t3 in
      if a <> b && not (mem_edge a b) then begin
        add_edge a b Relationship.Sibling;
        incr added
      end
    done
  end;
  (* The largest Tier-2s obtain peering with a few Tier-1s. *)
  let tier2_by_degree = Array.init t2 (fun i -> tier2_lo + i) in
  Array.sort (fun a b -> Int.compare deg.(b) deg.(a)) tier2_by_degree;
  let n_peerers = int_of_float (config.tier12_peering_fraction *. float_of_int t2) in
  for i = 0 to min n_peerers t2 - 1 do
    let t2_node = tier2_by_degree.(i) in
    let count = Prng.int_in rng 1 (min 3 (max 1 t1)) in
    let chosen = Prng.sample rng count (List.init t1 (fun j -> j)) in
    List.iter
      (fun t1_node ->
        if not (mem_edge t1_node t2_node) then add_edge t1_node t2_node Relationship.Peer)
      chosen
  done;
  (* Freeze: register every AS (so isolated nodes survive) then replay the
     edge list in generation order. *)
  let graph = Array.fold_left As_graph.add_as As_graph.empty asn_of in
  let graph =
    List.fold_left
      (fun g (a, b, rel) -> As_graph.add_edge g asn_of.(a) asn_of.(b) rel)
      graph (List.rev !edges)
  in
  { graph; tier1; tier2; tier3; stubs }
