(** Seeded topology/announcement churn streams for the incremental engine.

    A churn stream is a list of epochs, each carrying the events that fire
    at that epoch: link flaps (down with a bounded outage, then a scheduled
    revival), announce/withdraw cycles over a fixed atom-id universe, and
    relationship migrations.  Every event is applicable by construction —
    links are drawn from the input graph, [Link_up] only revives a link
    that is down, [Announce] only re-announces a withdrawn atom, and a
    migration always changes the label to a different one.

    Relationship migrations additionally preserve customer–provider
    acyclicity {e with sibling groups merged}: a flip that would close a
    directed customer→provider cycle — including one that closes through
    a chain of sibling links, since siblings relay routes both ways with
    class and preference carried — is skipped, because outside the
    Gao–Rexford hierarchy the stable routing state stops being unique
    and "incremental == batch" is no longer well-defined.

    The stream is a pure function of the generator state: the same seeded
    {!Rpi_prng.Prng.t} yields a byte-identical stream ({!render}). *)

module Asn = Rpi_bgp.Asn

type event =
  | Link_down of Asn.t * Asn.t
  | Link_up of Asn.t * Asn.t
  | Rel_change of Asn.t * Asn.t * Relationship.t
      (** [(a, b, rel)]: [a] now classifies [b] as [rel] (inverse label
          implied on [b]'s side). *)
  | Withdraw of int  (** Atom id. *)
  | Announce of int  (** Atom id (re-announcement after a withdraw). *)

type epoch = { index : int; events : event list }

type config = {
  p_flap : float;  (** Per-epoch chance of downing one currently-up link. *)
  p_rel_change : float;  (** Per-epoch chance of one relationship migration. *)
  p_withdraw : float;  (** Per-epoch chance of withdrawing one announced atom. *)
  max_down_epochs : int;  (** A downed link revives within this many epochs. *)
  max_out_epochs : int;  (** A withdrawn atom re-announces within this many. *)
}

val default_config : config

val generate :
  ?config:config ->
  Rpi_prng.Prng.t ->
  graph:As_graph.t ->
  atom_ids:int list ->
  epochs:int ->
  epoch list
(** One epoch record per index in [0, epochs): scheduled revivals first
    (link ups, re-announcements), then at most one flap, one migration and
    one withdrawal, drawn by the config probabilities.  All atoms start
    announced and all links start up. *)

val render_event : event -> string
val render : epoch list -> string
(** One ["<epoch> <event>"] line per event — the canonical byte-level form
    determinism tests compare. *)
