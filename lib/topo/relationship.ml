type t = Customer | Provider | Peer | Sibling

let invert = function
  | Customer -> Provider
  | Provider -> Customer
  | Peer -> Peer
  | Sibling -> Sibling

let to_string = function
  | Customer -> "customer"
  | Provider -> "provider"
  | Peer -> "peer"
  | Sibling -> "sibling"

let of_string = function
  | "customer" -> Ok Customer
  | "provider" -> Ok Provider
  | "peer" -> Ok Peer
  | "sibling" -> Ok Sibling
  | s -> Error (Printf.sprintf "invalid relationship %S" s)

(* Declaration-order rank: keeps the order explicit instead of leaning on
   structural compare of the variant representation. *)
let rank = function Customer -> 0 | Provider -> 1 | Peer -> 2 | Sibling -> 3
let compare a b = Int.compare (rank a) (rank b)
let equal a b = rank a = rank b
let pp fmt t = Format.pp_print_string fmt (to_string t)

let all = [ Customer; Provider; Peer; Sibling ]
