module Asn = Rpi_bgp.Asn

let downward_neighbors g a =
  (* Customer edges descend; sibling edges are transparent. *)
  As_graph.neighbors g a
  |> List.filter_map (fun (b, rel) ->
         match rel with
         | Relationship.Customer | Relationship.Sibling -> Some b
         | Relationship.Provider | Relationship.Peer -> None)

let is_direct_customer g ~provider target =
  match As_graph.relationship g provider target with
  | Some Relationship.Customer -> true
  | Some (Relationship.Provider | Relationship.Peer | Relationship.Sibling) | None -> false

let customer_path g ~provider target =
  if Asn.equal provider target then Some [ provider ]
  else begin
    let visited = ref Asn.Set.empty in
    let rec dfs a =
      if Asn.Set.mem a !visited then None
      else begin
        visited := Asn.Set.add a !visited;
        if Asn.equal a target then Some [ a ]
        else begin
          let rec try_children = function
            | [] -> None
            | child :: rest -> begin
                match dfs child with
                | Some path -> Some (a :: path)
                | None -> try_children rest
              end
          in
          try_children (downward_neighbors g a)
        end
      end
    in
    dfs provider
  end

let customer_cone g a =
  let rec visit visited frontier =
    match frontier with
    | [] -> visited
    | x :: rest ->
        let fresh =
          downward_neighbors g x |> List.filter (fun b -> not (Asn.Set.mem b visited))
        in
        let visited = List.fold_left (fun s b -> Asn.Set.add b s) visited fresh in
        visit visited (fresh @ rest)
  in
  Asn.Set.remove a (visit (Asn.Set.singleton a) [ a ])

let customer_cone_size g a = Asn.Set.cardinal (customer_cone g a)

(* An AS path from a BGP table reads receiver-side first, origin last.  The
   origin announces uphill to providers, crosses at most one peering edge at
   the top, then the route descends to the receiver; read from the receiver
   end the hop relationships therefore follow
     Provider* (Peer)? Customer*
   where each hop (a, b) is labelled with how [a] classifies [b].  Sibling
   hops are transparent in any section. *)
let is_valley_free g path =
  (* Collapse AS-path prepending: consecutive repeats of one AS are a
     single hop. *)
  let rec dedup = function
    | a :: (b :: _ as rest) -> if Asn.equal a b then dedup rest else a :: dedup rest
    | ([ _ ] | []) as tail -> tail
  in
  let path = dedup path in
  let rec hops = function
    | a :: (b :: _ as rest) -> begin
        match As_graph.relationship g a b with
        | None -> None
        | Some rel -> begin
            match hops rest with
            | None -> None
            | Some tl -> Some (rel :: tl)
          end
      end
    | [ _ ] | [] -> Some []
  in
  match hops path with
  | None -> false
  | Some rels ->
      (* States: 0 = ascending section, 1 = just crossed the peering edge,
         2 = descending section. *)
      let step state rel =
        match (state, rel) with
        | Some 0, Relationship.Provider -> Some 0
        | Some 0, Relationship.Sibling -> Some 0
        | Some 0, Relationship.Peer -> Some 1
        | Some 0, Relationship.Customer -> Some 2
        | Some 1, Relationship.Customer -> Some 2
        | Some 1, Relationship.Sibling -> Some 1
        | Some 1, (Relationship.Provider | Relationship.Peer) -> None
        | Some 2, Relationship.Customer -> Some 2
        | Some 2, Relationship.Sibling -> Some 2
        | Some 2, (Relationship.Provider | Relationship.Peer) -> None
        | Some _, _ -> None
        | None, _ -> None
      in
      begin
        match List.fold_left step (Some 0) rels with
        | Some _ -> true
        | None -> false
      end

let classify_path g ~observer path =
  match path with
  | [] -> None
  | first :: _ -> As_graph.relationship g observer first

let is_customer_path g path =
  let rec go = function
    | a :: (b :: _ as rest) -> begin
        match As_graph.relationship g a b with
        | Some (Relationship.Customer | Relationship.Sibling) -> go rest
        | Some (Relationship.Provider | Relationship.Peer) | None -> false
      end
    | [ _ ] | [] -> true
  in
  go path

let provider_chain_exists g ~from_as target =
  let rec climb visited frontier =
    match frontier with
    | [] -> false
    | x :: rest ->
        if Asn.equal x target then true
        else begin
          let ups =
            As_graph.neighbors g x
            |> List.filter_map (fun (b, rel) ->
                   match rel with
                   | Relationship.Provider | Relationship.Sibling -> Some b
                   | Relationship.Customer | Relationship.Peer -> None)
            |> List.filter (fun b -> not (Asn.Set.mem b visited))
          in
          let visited = List.fold_left (fun s b -> Asn.Set.add b s) visited ups in
          climb visited (ups @ rest)
        end
  in
  climb (Asn.Set.singleton from_as) [ from_as ]

(* Membership in the provider's customer cone, asked the cheap way round:
   climbing provider/sibling edges up from [target] reaches [provider] iff
   a customer/sibling walk descends from [provider] to [target] (the two
   edge sets are the same edges read from opposite ends), and the upward
   frontier is bounded by the hierarchy's depth rather than by the size of
   a large provider's cone. *)
let is_customer g ~provider target =
  (not (Asn.equal provider target)) && provider_chain_exists g ~from_as:target provider
