module Asn = Rpi_bgp.Asn
module Prng = Rpi_prng.Prng

type event =
  | Link_down of Asn.t * Asn.t
  | Link_up of Asn.t * Asn.t
  | Rel_change of Asn.t * Asn.t * Relationship.t
  | Withdraw of int
  | Announce of int

type epoch = { index : int; events : event list }

type config = {
  p_flap : float;
  p_rel_change : float;
  p_withdraw : float;
  max_down_epochs : int;
  max_out_epochs : int;
}

let default_config =
  {
    p_flap = 0.4;
    p_rel_change = 0.15;
    p_withdraw = 0.25;
    max_down_epochs = 12;
    max_out_epochs = 20;
  }

let render_event = function
  | Link_down (a, b) -> Printf.sprintf "down AS%d AS%d" (Asn.to_int a) (Asn.to_int b)
  | Link_up (a, b) -> Printf.sprintf "up AS%d AS%d" (Asn.to_int a) (Asn.to_int b)
  | Rel_change (a, b, rel) ->
      Printf.sprintf "rel AS%d AS%d %s" (Asn.to_int a) (Asn.to_int b)
        (Relationship.to_string rel)
  | Withdraw id -> Printf.sprintf "withdraw %d" id
  | Announce id -> Printf.sprintf "announce %d" id

let render epochs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun { index; events } ->
      List.iter
        (fun ev -> Buffer.add_string buf (Printf.sprintf "%d %s\n" index (render_event ev)))
        events)
    epochs;
  Buffer.contents buf

let generate ?(config = default_config) rng ~graph ~atom_ids ~epochs =
  (* Link universe, fixed by the input graph; churn only flips per-link
     activity and labels, tracked in parallel arrays confined to this
     call. *)
  let pairs =
    As_graph.fold_edges (fun a b rel acc -> (a, b, rel) :: acc) graph []
    |> List.rev |> Array.of_list
  in
  let n_links = Array.length pairs in
  let link_a = Array.map (fun (a, _, _) -> a) pairs in
  let link_b = Array.map (fun (_, b, _) -> b) pairs in
  let link_rel = Array.map (fun (_, _, rel) -> rel) pairs in
  let link_up = Array.make n_links true in
  let link_revive = Array.make n_links (-1) in
  let atom_arr = Array.of_list atom_ids in
  let n_atoms = Array.length atom_arr in
  let atom_announced = Array.make n_atoms true in
  let atom_revive = Array.make n_atoms (-1) in
  (* Customer–provider acyclicity guard.  Relationship migrations are the
     one churn event that can leave the Gao–Rexford hierarchy: a flip
     that closes a directed customer→…→customer cycle admits multiple
     stable routing states (DISAGREE), and then "incremental == batch"
     stops being a theorem.  The generator therefore keeps the provider
     digraph view (edge customer → provider) and refuses any migration
     that would create a cycle, the same way real provider hierarchies
     stay acyclic.  Sibling links merge their endpoints for this
     purpose — a sibling relays routes both ways with class and
     preference carried, so a customer→…→customer cycle that closes
     through a sibling pair is just as much a dispute (the Gao
     conditions are stated on the sibling-merged hierarchy).  The DFS
     therefore also crosses sibling links, in both directions, as
     zero-cost steps.  [creates_cycle ~skip ~from_as ~to_as]: would the
     directed edge [from_as → to_as] close a cycle, with link [skip]'s
     current label ignored (it is being replaced)?  DFS from [to_as]
     looking for [from_as]. *)
  let creates_cycle ~skip ~from_as ~to_as =
    let seen = Hashtbl.create 64 in
    let rec reach a =
      Asn.equal a from_as
      || (not (Hashtbl.mem seen (Asn.to_int a)))
         && begin
              Hashtbl.add seen (Asn.to_int a) ();
              let hit = ref false in
              for k = 0 to n_links - 1 do
                if (not !hit) && k <> skip then
                  match link_rel.(k) with
                  | Relationship.Customer ->
                      if Asn.equal link_b.(k) a && reach link_a.(k) then hit := true
                  | Relationship.Provider ->
                      if Asn.equal link_a.(k) a && reach link_b.(k) then hit := true
                  | Relationship.Sibling ->
                      if Asn.equal link_a.(k) a && reach link_b.(k) then hit := true
                      else if Asn.equal link_b.(k) a && reach link_a.(k) then
                        hit := true
                  | Relationship.Peer -> ()
              done;
              !hit
            end
    in
    reach to_as
  in
  let pick_index marks wanted =
    (* Deterministic pick among indices with [marks.(k) = wanted]. *)
    let matching = ref [] in
    Array.iteri (fun k up -> if Bool.equal up wanted then matching := k :: !matching) marks;
    match !matching with [] -> None | ks -> Some (Prng.choice_list rng (List.rev ks))
  in
  let out = ref [] in
  for index = 0 to epochs - 1 do
    let events = ref [] in
    let emit ev = events := ev :: !events in
    (* Scheduled revivals fire first so a link downed in epoch [e] is
       guaranteed back up by [e + max_down_epochs + 1] and every Link_up
       references a link that is actually down. *)
    for k = 0 to n_links - 1 do
      if (not link_up.(k)) && link_revive.(k) = index then begin
        link_up.(k) <- true;
        link_revive.(k) <- -1;
        emit (Link_up (link_a.(k), link_b.(k)))
      end
    done;
    for k = 0 to n_atoms - 1 do
      if (not atom_announced.(k)) && atom_revive.(k) = index then begin
        atom_announced.(k) <- true;
        atom_revive.(k) <- -1;
        emit (Announce atom_arr.(k))
      end
    done;
    if n_links > 0 && Prng.chance rng config.p_flap then begin
      match pick_index link_up true with
      | None -> ()
      | Some k ->
          link_up.(k) <- false;
          link_revive.(k) <- index + 1 + Prng.int rng config.max_down_epochs;
          emit (Link_down (link_a.(k), link_b.(k)))
    end;
    if n_links > 0 && Prng.chance rng config.p_rel_change then begin
      let k = Prng.int rng n_links in
      let rel =
        match Prng.int rng 3 with
        | 0 -> Relationship.Customer
        | 1 -> Relationship.Peer
        | _ -> Relationship.Provider
      in
      if not (Relationship.equal rel link_rel.(k)) then begin
        let safe =
          match rel with
          | Relationship.Customer ->
              (* link_b.(k) becomes a customer of link_a.(k): adds the
                 directed edge b → a. *)
              not (creates_cycle ~skip:k ~from_as:link_b.(k) ~to_as:link_a.(k))
          | Relationship.Provider ->
              not (creates_cycle ~skip:k ~from_as:link_a.(k) ~to_as:link_b.(k))
          | Relationship.Peer | Relationship.Sibling -> true
        in
        if safe then begin
          link_rel.(k) <- rel;
          emit (Rel_change (link_a.(k), link_b.(k), rel))
        end
      end
    end;
    if n_atoms > 0 && Prng.chance rng config.p_withdraw then begin
      match pick_index atom_announced true with
      | None -> ()
      | Some k ->
          atom_announced.(k) <- false;
          atom_revive.(k) <- index + 1 + Prng.int rng config.max_out_epochs;
          emit (Withdraw atom_arr.(k))
    end;
    out := { index; events = List.rev !events } :: !out
  done;
  List.rev !out
