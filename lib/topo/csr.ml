(* Int-indexed compressed-sparse-row view of the AS graph.

   [As_graph] is a persistent map-of-maps: ideal for incremental edits
   and text round-trips, hopeless as a hot-path representation at 15k+
   ASes where every adjacency walk pays O(log n) pointer chasing per
   step.  This module freezes a graph into flat parallel arrays, built
   once and shared read-only across domains.

   Layout: nodes are numbered 0..n-1 in ascending ASN order (the order
   [As_graph.ases] returns).  Directed edge records live in parallel
   arrays of length m = 2 * edge_count; node [i]'s out-edges occupy the
   contiguous range [off.(i), off.(i+1)) and are sorted by neighbour
   ASN — exactly the order [As_graph.neighbors] yields, so consumers
   that previously walked the map see the same visit order byte for
   byte.

   The one non-obvious field is [back]: because the graph is symmetric,
   every directed edge i->j has a reverse j->i, and [back.(t)] is its
   index.  Since out-degree equals in-degree per node, the same index
   space doubles as a receiver-side "slot" space: the slot where j
   stores what i sent it IS the reverse edge j->i.  Solvers exploit
   this to key their candidate arenas directly by edge index. *)

module Asn = Rpi_bgp.Asn

type t = {
  ases : Asn.t array;  (** node id -> ASN, ascending *)
  index : int Asn.Table.t;  (** ASN -> node id *)
  off : int array;  (** length n+1; prefix sums of out-degrees *)
  dst : int array;  (** edge -> destination node id *)
  dst_asn : Asn.t array;  (** edge -> destination ASN *)
  rel : Relationship.t array;
      (** edge i->j -> how [i] classifies [j] (per [As_graph.relationship]) *)
  back : int array;  (** edge i->j -> index of the reverse edge j->i *)
}

let node_count t = Array.length t.ases
let edge_count t = t.off.(Array.length t.ases)
let degree t i = t.off.(i + 1) - t.off.(i)

let of_graph g =
  let ases = Array.of_list (As_graph.ases g) in
  let n = Array.length ases in
  let index = Asn.Table.create (max 16 (2 * n)) in
  Array.iteri (fun i a -> Asn.Table.replace index a i) ases;
  (* One [neighbors] call per node: the bindings come back sorted by
     ASN, which is also the node numbering, so [dst] rows are sorted by
     node id and reverse edges can be found by binary search. *)
  let adj = Array.map (fun a -> As_graph.neighbors g a) ases in
  let off = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i) + List.length adj.(i)
  done;
  let m = off.(n) in
  let dst = Array.make m 0 in
  let dst_asn = Array.make m (Asn.of_int 0) in
  let rel = Array.make m Relationship.Customer in
  Array.iteri
    (fun i nbrs ->
      let k = ref off.(i) in
      List.iter
        (fun (b, r) ->
          dst.(!k) <- Asn.Table.find index b;
          dst_asn.(!k) <- b;
          rel.(!k) <- r;
          incr k)
        nbrs)
    adj;
  let back = Array.make m 0 in
  for i = 0 to n - 1 do
    for t = off.(i) to off.(i + 1) - 1 do
      let j = dst.(t) in
      (* Locate [i] in [j]'s sorted row; symmetry guarantees presence. *)
      let lo = ref off.(j) and hi = ref (off.(j + 1) - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if dst.(mid) < i then lo := mid + 1 else hi := mid
      done;
      if dst.(!lo) <> i then
        invalid_arg "Csr.of_graph: asymmetric adjacency (missing reverse edge)";
      back.(t) <- !lo
    done
  done;
  { ases; index; off; dst; dst_asn; rel; back }
