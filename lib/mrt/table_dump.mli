(** Machine-readable BGP table dumps, modelled on the one-entry-per-line
    pipe-separated output of [bgpdump -m] for MRT TABLE_DUMP files — the
    format RouteViews archives are processed in.

    Line grammar (11 pipe-separated fields):

    {v
    RIB|<unix-time>|<vantage-as>|<peer-as>|<prefix>|<as-path>|<origin>|<next-hop>|<local-pref>|<med>|<communities>
    v}

    [origin] is [i], [e] or [?]; [local-pref], [med] and [communities] use
    [-] when absent; the AS path uses the textual form of
    {!Rpi_bgp.As_path} (AS_SETs in braces). *)

type entry = {
  timestamp : int;
  vantage_as : Rpi_bgp.Asn.t;
  route : Rpi_bgp.Route.t;
}

val entry_to_line : entry -> string

val entry_of_line : string -> (entry, string) result
(** Errors carry the offending field. *)

val write_rib :
  ?timestamp:int -> vantage_as:Rpi_bgp.Asn.t -> Rpi_bgp.Rib.t -> Buffer.t -> unit
(** Serialise every candidate route of the table, prefix order. *)

val rib_to_string : ?timestamp:int -> vantage_as:Rpi_bgp.Asn.t -> Rpi_bgp.Rib.t -> string

val parse : string -> (entry list, string) result
(** Parse a whole dump; blank lines and [#] comments are skipped.  The
    error message carries the 1-based line number. *)

val parse_lenient : string -> entry list * (int * string) list
(** Best-effort parse of an untrusted dump: every well-formed line becomes
    an entry, every malformed line a [(line_number, diagnostic)] pair —
    never an exception.  [parse] is this with a zero-tolerance policy. *)

val parse_to_rib : string -> (Rpi_bgp.Rib.t, string) result
(** Parse and fold all entries into a table (vantage/timestamp metadata is
    dropped; per-session replacement semantics of {!Rpi_bgp.Rib.add_route}
    apply). *)

val save_file : string -> ?timestamp:int -> vantage_as:Rpi_bgp.Asn.t -> Rpi_bgp.Rib.t -> unit
val load_file : string -> (entry list, string) result
(** IO failures (missing or unreadable file) surface as [Error], not
    [Sys_error]. *)
