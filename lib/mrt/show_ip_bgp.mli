(** Cisco-style [show ip bgp] rendering and parsing — the format Looking
    Glass servers expose and the paper scraped for its fine-grained tables.

    Two views are supported:
    - the summary table ([show ip bgp]): one line per candidate route with
      status codes ([*] valid, [>] best), network, next hop, MED, local
      preference, weight and AS path + origin code;
    - the per-prefix detail ([show ip bgp <prefix>]): the block with paths,
      local preference and the community list, as in the paper's Appendix
      example. *)

val render : ?router_id:Rpi_net.Ipv4.t -> Rpi_bgp.Rib.t -> string
(** The summary table, best route first within each prefix, remaining
    candidates in decision-preference order — a canonical rendering, so
    two tables holding the same routes produce the same bytes and
    [parse |> render] is a fixpoint. *)

val parse : string -> (Rpi_bgp.Rib.t, string) result
(** Parse a summary table back into a RIB.  Header lines are skipped;
    continuation lines (empty network column) inherit the previous
    network.  Local preference and MED columns parse back into the route;
    the best marker is validated against nothing (the RIB recomputes
    best). *)

val parse_lenient : string -> Rpi_bgp.Route.t list * (int * string) list
(** Best-effort parse of an untrusted table: every well-formed row becomes
    a route (returned flat, without the RIB's per-session replacement, so
    callers can count salvaged rows), every malformed row a
    [(line_number, diagnostic)] pair — never an exception. *)

val render_prefix_detail : Rpi_bgp.Rib.t -> Rpi_net.Prefix.t -> string
(** The [show ip bgp <prefix>] block: paths with next hop, origin, local
    preference, best marker and communities. *)

type detail = {
  prefix : Rpi_net.Prefix.t;
  paths : (Rpi_bgp.As_path.t * int option * Rpi_bgp.Community.Set.t * bool) list;
      (** [(as_path, local_pref, communities, best)] per available path. *)
}

val parse_prefix_detail : string -> (detail, string) result
