module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib

let dump_file dir asn = Filename.concat dir (Printf.sprintf "AS%s.dump" (Asn.to_string asn))

let save_snapshot ~dir ?timestamp tables =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (asn, rib) -> Table_dump.save_file (dump_file dir asn) ?timestamp ~vantage_as:asn rib)
    tables

let load_snapshot ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "no such directory %S" dir)
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f ->
             String.length f > 7
             && String.starts_with ~prefix:"AS" f
             && Filename.check_suffix f ".dump")
      |> List.sort String.compare
    in
    let parse_one acc file =
      match acc with
      | Error _ as e -> e
      | Ok tables -> begin
          let asn_str = String.sub file 2 (String.length file - 7) in
          match Asn.of_string asn_str with
          | Error e -> Error (Printf.sprintf "%s: %s" file e)
          | Ok asn -> begin
              match Table_dump.load_file (Filename.concat dir file) with
              | Error e -> Error (Printf.sprintf "%s: %s" file e)
              | Ok entries ->
                  let rib =
                    List.fold_left
                      (fun rib (e : Table_dump.entry) -> Rib.add_route e.Table_dump.route rib)
                      Rib.empty entries
                  in
                  Ok ((asn, rib) :: tables)
            end
        end
    in
    Result.map
      (List.sort (fun (a, _) (b, _) -> Asn.compare a b))
      (List.fold_left parse_one (Ok []) files)
  end

let detect_format text =
  let rec first_line = function
    | [] -> ""
    | l :: rest -> if String.trim l = "" then first_line rest else String.trim l
  in
  let line = first_line (String.split_on_char '\n' text) in
  if String.starts_with ~prefix:"RIB|" line then `Table_dump
  else if
    String.starts_with ~prefix:"BGP" line
    || (String.length line >= 3 && line.[0] = '*')
  then
    `Show_ip_bgp
  else if String.length line >= 1 && line.[0] = '#' then `Table_dump
  else `Unknown

let parse_any text =
  match detect_format text with
  | `Table_dump -> Table_dump.parse_to_rib text
  | `Show_ip_bgp -> Show_ip_bgp.parse text
  | `Unknown -> Error "unrecognised table format"
