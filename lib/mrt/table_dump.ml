module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4

type entry = { timestamp : int; vantage_as : Asn.t; route : Route.t }

let opt_int = function
  | Some v -> string_of_int v
  | None -> "-"

let entry_to_line { timestamp; vantage_as; route } =
  let communities =
    if Community.Set.is_empty route.Route.communities then "-"
    else Community.Set.to_string route.Route.communities
  in
  String.concat "|"
    [
      "RIB";
      string_of_int timestamp;
      Asn.to_string vantage_as;
      (match route.Route.peer_as with
      | Some peer -> Asn.to_string peer
      | None -> "-");
      Prefix.to_string route.Route.prefix;
      As_path.to_string route.Route.as_path;
      Route.origin_to_string route.Route.origin;
      Ipv4.to_string route.Route.next_hop;
      opt_int route.Route.local_pref;
      opt_int route.Route.med;
      communities;
    ]

let parse_opt_int field s =
  if String.equal s "-" then Ok None
  else begin
    match int_of_string_opt s with
    | Some v -> Ok (Some v)
    | None -> Error (Printf.sprintf "invalid %s %S" field s)
  end

let entry_of_line line =
  match String.split_on_char '|' line with
  | [ "RIB"; ts; vantage; peer; prefix; path; origin; next_hop; lp; med; communities ] ->
      let ( let* ) = Result.bind in
      let* timestamp =
        match int_of_string_opt ts with
        | Some t -> Ok t
        | None -> Error (Printf.sprintf "invalid timestamp %S" ts)
      in
      let* vantage_as = Asn.of_string vantage in
      let* peer_as =
        if String.equal peer "-" then Ok None
        else Result.map Option.some (Asn.of_string peer)
      in
      let* prefix = Prefix.of_string prefix in
      let* as_path = As_path.of_string path in
      let* origin = Route.origin_of_string origin in
      let* next_hop = Ipv4.of_string next_hop in
      let* local_pref = parse_opt_int "local-pref" lp in
      let* med = parse_opt_int "med" med in
      let* communities =
        if String.equal communities "-" then Ok Community.Set.empty
        else Community.Set.of_string communities
      in
      let route =
        Route.make ~prefix ~next_hop ~as_path ~origin ?local_pref ?med ~communities
          ~router_id:next_hop
          ?peer_as ()
      in
      Ok { timestamp; vantage_as; route }
  | "RIB" :: _ -> Error "wrong field count"
  | _ -> Error "not a RIB line"

let write_rib ?(timestamp = 0) ~vantage_as rib buf =
  Rib.iter
    (fun _ routes ->
      List.iter
        (fun route ->
          Buffer.add_string buf (entry_to_line { timestamp; vantage_as; route });
          Buffer.add_char buf '\n')
        (List.rev routes))
    rib

let rib_to_string ?timestamp ~vantage_as rib =
  let buf = Buffer.create 4096 in
  write_rib ?timestamp ~vantage_as rib buf;
  Buffer.contents buf

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (n + 1) acc rest
        else begin
          match entry_of_line trimmed with
          | Ok entry -> go (n + 1) (entry :: acc) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        end
  in
  go 1 [] lines

let parse_lenient text =
  let lines = String.split_on_char '\n' text in
  let rec go n entries skipped = function
    | [] -> (List.rev entries, List.rev skipped)
    | line :: rest ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (n + 1) entries skipped rest
        else begin
          match entry_of_line trimmed with
          | Ok entry -> go (n + 1) (entry :: entries) skipped rest
          | Error e -> go (n + 1) entries ((n, e) :: skipped) rest
        end
  in
  go 1 [] [] lines

let parse_to_rib text =
  match parse text with
  | Error _ as e -> e
  | Ok entries ->
      Ok (List.fold_left (fun rib e -> Rib.add_route e.route rib) Rib.empty entries)

let save_file path ?timestamp ~vantage_as rib =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (rib_to_string ?timestamp ~vantage_as rib))

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> parse (In_channel.input_all ic))
