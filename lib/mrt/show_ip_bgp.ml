module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Rib = Rpi_bgp.Rib
module Decision = Rpi_bgp.Decision
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4

let header router_id =
  String.concat "\n"
    [
      Printf.sprintf "BGP table version is 1, local router ID is %s"
        (Ipv4.to_string router_id);
      "Status codes: s suppressed, d damped, h history, * valid, > best, i - internal";
      "Origin codes: i - IGP, e - EGP, ? - incomplete";
      "";
      "   Network            Next Hop            Metric LocPrf Weight Path";
    ]

let route_line ~best ~show_network route =
  let status = if best then "*>" else "* " in
  let network = if show_network then Prefix.to_string route.Route.prefix else "" in
  let path_str =
    let p = As_path.to_string route.Route.as_path in
    let origin = Route.origin_to_string route.Route.origin in
    if p = "" then origin else p ^ " " ^ origin
  in
  Printf.sprintf "%s %-18s %-19s %6s %6s %6d %s" status network
    (Ipv4.to_string route.Route.next_hop)
    (match route.Route.med with
    | Some m -> string_of_int m
    | None -> "0")
    (* "-" rather than Cisco's blank column: a blank is ambiguous once the
       line is whitespace-split (path members are numbers too). *)
    (match route.Route.local_pref with
    | Some lp -> string_of_int lp
    | None -> "-")
    0 path_str

let render ?(router_id = Ipv4.of_octets 172 16 1 1) rib =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header router_id);
  Buffer.add_char buf '\n';
  Rib.iter
    (fun prefix routes ->
      (* Canonical candidate order: decision preference (a strict total
         order) with the decision process's own pick first, so any table
         holding the same route set renders to the same bytes — parse |>
         render is a fixpoint. *)
      let sorted = List.stable_sort (fun a b -> Decision.compare_routes a b) routes in
      let ordered =
        match Decision.select_best sorted with
        | Some b -> b :: List.filter (fun r -> not (Route.equal r b)) sorted
        | None -> sorted
      in
      List.iteri
        (fun i r ->
          Buffer.add_string buf (route_line ~best:(i = 0) ~show_network:(i = 0) r);
          Buffer.add_char buf '\n')
        ordered;
      ignore prefix)
    rib;
  Buffer.contents buf

(* --- summary parser --- *)

let is_header_line line =
  let starts prefix = String.length line >= String.length prefix
                      && String.sub line 0 (String.length prefix) = prefix in
  starts "BGP table" || starts "Status codes" || starts "Origin codes"
  || starts "   Network"

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* One data row (sans the two status-code columns), shared by the strict
   and lenient parsers.  [current] is the network in scope for
   continuation rows. *)
let parse_row ~current line =
  if String.length line < 2 || line.[0] <> '*' then Error "unrecognised row"
  else begin
    let body = String.sub line 2 (String.length line - 2) in
    let tokens = split_ws body in
    (* Continuation rows have no network token (no '/'). *)
    let network, tokens =
      match tokens with
      | tok :: rest_tokens when String.contains tok '/' ->
          (Prefix.of_string tok |> Result.to_option, rest_tokens)
      | _ -> (current, tokens)
    in
    match network with
    | None -> Error "no network in scope"
    | Some prefix -> begin
        match tokens with
        | next_hop :: med :: locprf :: weight_and_path -> begin
            (* Fields after the next hop: metric, locprf ("-" when unset),
               weight, then the path and origin code. *)
            let ( let* ) = Result.bind in
            let* next_hop = Ipv4.of_string next_hop in
            let* med =
              match int_of_string_opt med with
              | Some m -> Ok m
              | None -> Error (Printf.sprintf "bad metric %S" med)
            in
            let* locprf =
              if String.equal locprf "-" then Ok None
              else begin
                match int_of_string_opt locprf with
                | Some lp -> Ok (Some lp)
                | None -> Error (Printf.sprintf "bad locprf %S" locprf)
              end
            in
            let* path_tokens =
              match weight_and_path with
              | _weight :: path_tokens -> Ok path_tokens
              | [] -> Error "missing path"
            in
            let* origin, path_tokens =
              match List.rev path_tokens with
              | o :: rev_path -> begin
                  match Route.origin_of_string o with
                  | Ok origin -> Ok (origin, List.rev rev_path)
                  | Error e -> Error e
                end
              | [] -> Error "missing origin"
            in
            let* as_path = As_path.of_string (String.concat " " path_tokens) in
            let peer_as = As_path.first_hop as_path in
            Ok
              ( prefix,
                Route.make ~prefix ~next_hop ~as_path ~origin ?local_pref:locprf
                  ~med ~router_id:next_hop ?peer_as () )
          end
        | _ -> Error "truncated row"
      end
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec go n current rib = function
    | [] -> Ok rib
    | line :: rest ->
        if String.trim line = "" || is_header_line line then go (n + 1) current rib rest
        else begin
          match parse_row ~current line with
          | Ok (prefix, route) -> go (n + 1) (Some prefix) (Rib.add_route route rib) rest
          | Error e -> Error (Printf.sprintf "line %d: %s" n e)
        end
  in
  go 1 None Rib.empty lines

let parse_lenient text =
  let lines = String.split_on_char '\n' text in
  let rec go n current routes skipped = function
    | [] -> (List.rev routes, List.rev skipped)
    | line :: rest ->
        if String.trim line = "" || is_header_line line then
          go (n + 1) current routes skipped rest
        else begin
          match parse_row ~current line with
          | Ok (prefix, route) ->
              go (n + 1) (Some prefix) (route :: routes) skipped rest
          | Error e -> go (n + 1) current routes ((n, e) :: skipped) rest
        end
  in
  go 1 None [] [] lines

(* --- per-prefix detail --- *)

let render_prefix_detail rib prefix =
  let routes = Rib.candidates rib prefix in
  let best = Decision.select_best routes in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "BGP routing table entry for %s\n" (Prefix.to_string prefix));
  Buffer.add_string buf
    (Printf.sprintf "Paths: (%d available, best #1)\n" (List.length routes));
  let ordered =
    match best with
    | Some b -> b :: List.filter (fun r -> not (Route.equal r b)) routes
    | None -> routes
  in
  List.iter
    (fun (r : Route.t) ->
      let path_str =
        let p = As_path.to_string r.Route.as_path in
        if p = "" then "Local" else p
      in
      Buffer.add_string buf (Printf.sprintf "  %s\n" path_str);
      Buffer.add_string buf
        (Printf.sprintf "    %s from %s\n"
           (Ipv4.to_string r.Route.next_hop)
           (Ipv4.to_string r.Route.router_id));
      let is_best =
        match best with
        | Some b -> Route.equal b r
        | None -> false
      in
      Buffer.add_string buf
        (Printf.sprintf "      Origin %s, metric %d, localpref %d%s\n"
           (match r.Route.origin with
           | Route.Igp -> "IGP"
           | Route.Egp -> "EGP"
           | Route.Incomplete -> "incomplete")
           (Route.effective_med r)
           (Route.effective_local_pref r)
           (if is_best then ", best" else ""));
      if not (Community.Set.is_empty r.Route.communities) then
        Buffer.add_string buf
          (Printf.sprintf "      Community: %s\n" (Community.Set.to_string r.Route.communities)))
    ordered;
  Buffer.contents buf

type detail = {
  prefix : Prefix.t;
  paths : (As_path.t * int option * Community.Set.t * bool) list;
}

let parse_prefix_detail text =
  let lines = String.split_on_char '\n' text |> List.map String.trim in
  let ( let* ) = Result.bind in
  let* prefix =
    match lines with
    | first :: _ when String.length first > 27
                      && String.starts_with ~prefix:"BGP routing table entry for" first ->
        Prefix.of_string (String.trim (String.sub first 27 (String.length first - 27)))
    | _ -> Error "missing table entry header"
  in
  (* Walk the block: a path line is a bare AS path (or "Local"); attribute
     lines start with Origin/Community/from. *)
  let is_attr line =
    let starts p = String.starts_with ~prefix:p line in
    starts "Origin" || starts "Community:" || String.contains line ','
    || starts "Paths:" || starts "BGP "
  in
  let looks_like_path line =
    line <> ""
    && (String.equal line "Local"
       || String.for_all (fun c -> (c >= '0' && c <= '9') || c = ' ' || c = '{' || c = '}' || c = ',') line)
    && not (String.contains line '.')
  in
  let rec walk acc current = function
    | [] -> Ok (List.rev (match current with Some c -> c :: acc | None -> acc))
    | line :: rest ->
        if looks_like_path line && not (is_attr line) then begin
          let parsed =
            if String.equal line "Local" then Ok As_path.empty
            else As_path.of_string line
          in
          match parsed with
          | Ok path ->
              let acc = match current with Some c -> c :: acc | None -> acc in
              walk acc (Some (path, None, Community.Set.empty, false)) rest
          | Error e -> Error e
        end
        else begin
          match current with
          | None -> walk acc current rest
          | Some (path, lp, comms, best) ->
              let current =
                if String.starts_with ~prefix:"Origin " line then begin
                  let best = best ||
                    (let suffix = ", best" in
                     let ll = String.length line and sl = String.length suffix in
                     ll >= sl &&
                     (let rec find i =
                        i + sl <= ll
                        && (String.equal (String.sub line i sl) suffix
                           || find (i + 1))
                      in
                      find 0))
                  in
                  let lp =
                    split_ws line
                    |> List.map (fun t ->
                           if String.length t > 0 && t.[String.length t - 1] = ',' then
                             String.sub t 0 (String.length t - 1)
                           else t)
                    |> (fun tokens ->
                         let rec after = function
                           | "localpref" :: v :: _ -> int_of_string_opt v
                           | _ :: rest -> after rest
                           | [] -> None
                         in
                         after tokens)
                  in
                  Some (path, lp, comms, best)
                end
                else if String.starts_with ~prefix:"Community:" line then begin
                  let body = String.sub line 10 (String.length line - 10) in
                  match Community.Set.of_string (String.trim body) with
                  | Ok set -> Some (path, lp, Community.Set.union comms set, best)
                  | Error _ -> Some (path, lp, comms, best)
                end
                else Some (path, lp, comms, best)
              in
              walk acc current rest
        end
  in
  let* paths = walk [] None (List.tl lines) in
  Ok { prefix; paths }
