module Asn = Rpi_bgp.Asn

type import_rule = { from_as : Asn.t; pref : int option; accept : string }

type export_rule = { to_as : Asn.t; announce : string }

type aut_num = {
  asn : Asn.t;
  as_name : string;
  imports : import_rule list;
  exports : export_rule list;
  changed : int;
  source : string;
}

let make ~asn ?(as_name = "UNNAMED") ?(imports = []) ?(exports = []) ?(changed = 20021104)
    ?(source = "RADB") () =
  { asn; as_name; imports; exports; changed; source }

let render_import r =
  match r.pref with
  | Some pref ->
      Printf.sprintf "import:      from %s action pref = %d; accept %s"
        (Asn.to_label r.from_as) pref r.accept
  | None ->
      Printf.sprintf "import:      from %s accept %s" (Asn.to_label r.from_as) r.accept

let render_export r =
  Printf.sprintf "export:      to %s announce %s" (Asn.to_label r.to_as) r.announce

let render obj =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "aut-num:     %s\n" (Asn.to_label obj.asn));
  Buffer.add_string buf (Printf.sprintf "as-name:     %s\n" obj.as_name);
  List.iter
    (fun r ->
      Buffer.add_string buf (render_import r);
      Buffer.add_char buf '\n')
    obj.imports;
  List.iter
    (fun r ->
      Buffer.add_string buf (render_export r);
      Buffer.add_char buf '\n')
    obj.exports;
  Buffer.add_string buf (Printf.sprintf "changed:     noc@example.net %08d\n" obj.changed);
  Buffer.add_string buf (Printf.sprintf "source:      %s\n" obj.source);
  Buffer.contents buf

let render_many objs = String.concat "\n" (List.map render objs)

let split_attr line =
  match String.index_opt line ':' with
  | None -> None
  | Some i ->
      let key = String.trim (String.sub line 0 i) in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      Some (key, value)

let tokens s = String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* "from AS2 action pref = 10; accept ANY" or "from AS2 accept ANY" *)
let parse_import value =
  match tokens value with
  | "from" :: peer :: rest -> begin
      match Asn.of_string peer with
      | Error e -> Error e
      | Ok from_as -> begin
          (* Optional "action pref = N;" section before "accept". *)
          let rec split_action acc = function
            | "accept" :: filter -> Ok (List.rev acc, String.concat " " filter)
            | tok :: rest -> split_action (tok :: acc) rest
            | [] -> Error "import rule missing accept"
          in
          match split_action [] rest with
          | Error e -> Error e
          | Ok (action_tokens, accept) ->
              let pref =
                let rec find = function
                  | "pref" :: "=" :: v :: _ ->
                      int_of_string_opt (String.concat "" (String.split_on_char ';' v))
                  | tok :: _ when String.starts_with ~prefix:"pref=" tok
                    ->
                      let v = String.sub tok 5 (String.length tok - 5) in
                      int_of_string_opt (String.concat "" (String.split_on_char ';' v))
                  | _ :: rest -> find rest
                  | [] -> None
                in
                find action_tokens
              in
              Ok { from_as; pref; accept }
        end
    end
  | _ -> Error (Printf.sprintf "malformed import %S" value)

let parse_export value =
  match tokens value with
  | "to" :: peer :: "announce" :: filter -> begin
      match Asn.of_string peer with
      | Error e -> Error e
      | Ok to_as -> Ok { to_as; announce = String.concat " " filter }
    end
  | _ -> Error (Printf.sprintf "malformed export %S" value)

let parse_object text =
  let lines = String.split_on_char '\n' text in
  let init = (None, "UNNAMED", [], [], 0, "RADB") in
  let step acc line =
    match acc with
    | Error _ as e -> e
    | Ok (asn, name, imports, exports, changed, source) -> begin
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' || trimmed.[0] = '%' then acc
        else begin
          match split_attr line with
          | None -> acc (* tolerate stray lines *)
          | Some (key, value) -> begin
              match key with
              | "aut-num" -> begin
                  match Asn.of_string value with
                  | Ok a -> Ok (Some a, name, imports, exports, changed, source)
                  | Error e -> Error e
                end
              | "as-name" -> Ok (asn, value, imports, exports, changed, source)
              | "import" -> begin
                  match parse_import value with
                  | Ok r -> Ok (asn, name, r :: imports, exports, changed, source)
                  | Error e -> Error e
                end
              | "export" -> begin
                  match parse_export value with
                  | Ok r -> Ok (asn, name, imports, r :: exports, changed, source)
                  | Error e -> Error e
                end
              | "changed" -> begin
                  match List.rev (tokens value) with
                  | date :: _ -> begin
                      match int_of_string_opt date with
                      | Some d -> Ok (asn, name, imports, exports, d, source)
                      | None -> Ok (asn, name, imports, exports, changed, source)
                    end
                  | [] -> acc
                end
              | "source" -> Ok (asn, name, imports, exports, changed, value)
              | _ -> acc (* other RPSL attributes are irrelevant here *)
            end
        end
      end
  in
  match List.fold_left step (Ok init) lines with
  | Error e -> Error e
  | Ok (None, _, _, _, _, _) -> Error "object has no aut-num attribute"
  | Ok (Some asn, as_name, imports, exports, changed, source) ->
      Ok
        {
          asn;
          as_name;
          imports = List.rev imports;
          exports = List.rev exports;
          changed;
          source;
        }

let parse text =
  (* Objects are separated by blank lines. *)
  let lines = String.split_on_char '\n' text in
  let flush chunk acc =
    let body = String.concat "\n" (List.rev chunk) in
    if String.trim body = "" then Ok acc
    else begin
      match parse_object body with
      | Ok obj -> Ok (obj :: acc)
      | Error _ as e -> e
    end
  in
  let rec go chunk acc = function
    | [] -> begin
        match flush chunk acc with
        | Ok objs -> Ok (List.rev objs)
        | Error e -> Error e
      end
    | line :: rest ->
        if String.trim line = "" then begin
          match flush chunk acc with
          | Ok acc -> go [] acc rest
          | Error e -> Error e
        end
        else go (line :: chunk) acc rest
  in
  go [] [] lines

let parse_lenient text =
  let lines = String.split_on_char '\n' text in
  let flush chunk (objs, errs) =
    let body = String.concat "\n" (List.rev chunk) in
    if String.trim body = "" then (objs, errs)
    else begin
      match parse_object body with
      | Ok obj -> (obj :: objs, errs)
      | Error e -> (objs, e :: errs)
    end
  in
  let rec go chunk acc = function
    | [] ->
        let objs, errs = flush chunk acc in
        (List.rev objs, List.rev errs)
    | line :: rest ->
        if String.trim line = "" then go [] (flush chunk acc) rest
        else go (line :: chunk) acc rest
  in
  go [] ([], []) lines

let pref_of_import r = r.pref
