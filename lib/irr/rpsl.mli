(** A working subset of the Routing Policy Specification Language (RPSL,
    RFC 2622): the [aut-num] objects with [import]/[export] policy lines
    that the paper mines from the Internet Routing Registry for Table 3.

    Supported line forms:

    {v
    aut-num:     AS1
    as-name:     EXAMPLE-NET
    import:      from AS2 action pref = 10; accept ANY
    import:      from AS3 accept AS3
    export:      to AS2 announce AS1
    changed:     noc@example.net 20021104
    source:      RADB
    v}

    Note RPSL [pref] is inverse to BGP local preference: smaller values are
    preferred. *)

module Asn = Rpi_bgp.Asn

type import_rule = {
  from_as : Asn.t;
  pref : int option;  (** RPSL preference (smaller wins); [None] if no action. *)
  accept : string;  (** Filter expression, kept verbatim ("ANY", "AS3", ...). *)
}

type export_rule = {
  to_as : Asn.t;
  announce : string;  (** Filter expression, kept verbatim. *)
}

type aut_num = {
  asn : Asn.t;
  as_name : string;
  imports : import_rule list;
  exports : export_rule list;
  changed : int;  (** Date of last update, as YYYYMMDD. *)
  source : string;  (** Registry name, e.g. "RADB". *)
}

val make :
  asn:Asn.t ->
  ?as_name:string ->
  ?imports:import_rule list ->
  ?exports:export_rule list ->
  ?changed:int ->
  ?source:string ->
  unit ->
  aut_num

val render : aut_num -> string
(** RPSL text of one object, terminated by a blank line. *)

val render_many : aut_num list -> string

val parse_object : string -> (aut_num, string) result
(** Parse one object's text. *)

val parse : string -> (aut_num list, string) result
(** Parse a registry file: objects separated by blank lines; unknown
    attributes are preserved-skipped; [%] and [#] comment lines ignored. *)

val parse_lenient : string -> aut_num list * string list
(** Best-effort parse of an untrusted registry: every blank-line-delimited
    block that parses becomes an object, every malformed block one
    diagnostic — never an exception. *)

val pref_of_import : import_rule -> int option
(** Just the [pref] field (documented accessor for symmetry). *)
