module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Policy = Rpi_sim.Policy
module Prng = Rpi_prng.Prng

type config = {
  p_stale : float;
  p_missing_rule : float;
  p_noisy_pref : float;
  p_leaky_export : float;
  fresh_date : int;
  stale_date : int;
}

let default_config =
  {
    p_stale = 0.25;
    p_missing_rule = 0.08;
    p_noisy_pref = 0.02;
    p_leaky_export = 0.02;
    fresh_date = 20021104;
    stale_date = 20010312;
  }

let pref_of_lp lp = max 1 (200 - lp)

let registry ?(config = default_config) rng ~graph ~policies =
  let objects =
    List.map
      (fun asn ->
        let policy = policies asn in
        let neighbors = As_graph.neighbors graph asn in
        let imports =
          List.filter_map
            (fun (nb, rel) ->
              if Prng.chance rng config.p_missing_rule then None
              else begin
                let lp = Policy.static_pref policy.Policy.import ~neighbor:nb ~rel in
                let pref =
                  if Prng.chance rng config.p_noisy_pref then Prng.int_in rng 50 150
                  else pref_of_lp lp
                in
                let accept =
                  match rel with
                  | Relationship.Customer | Relationship.Sibling -> Asn.to_label nb
                  | Relationship.Peer -> Asn.to_label nb
                  | Relationship.Provider -> "ANY"
                in
                Some { Rpsl.from_as = nb; pref = Some pref; accept }
              end)
            neighbors
        in
        let exports =
          List.map
            (fun (nb, rel) ->
              let announce =
                match rel with
                | Relationship.Customer | Relationship.Sibling -> "ANY"
                | Relationship.Peer | Relationship.Provider ->
                    (* A small share of registered policies is leak-shaped
                       (full-table export towards a peer or provider), as
                       the misconfiguration literature documents. *)
                    if Prng.chance rng config.p_leaky_export then "ANY"
                    else Printf.sprintf "%s:customers" (Asn.to_label asn)
              in
              { Rpsl.to_as = nb; announce })
            neighbors
        in
        let changed =
          if Prng.chance rng config.p_stale then config.stale_date else config.fresh_date
        in
        Rpsl.make ~asn
          ~as_name:(Printf.sprintf "NET-%s" (Asn.to_string asn))
          ~imports ~exports ~changed ())
      (As_graph.ases graph)
  in
  Db.of_objects objects
