module Asn = Rpi_bgp.Asn

type t = Rpsl.aut_num Asn.Map.t

let empty = Asn.Map.empty

let of_objects objs =
  List.fold_left (fun db (o : Rpsl.aut_num) -> Asn.Map.add o.Rpsl.asn o db) empty objs

let cardinal = Asn.Map.cardinal
let find db asn = Asn.Map.find_opt asn db
let ases db = Asn.Map.bindings db |> List.map fst
let objects db = Asn.Map.bindings db |> List.map snd

let fresh ~since db = Asn.Map.filter (fun _ (o : Rpsl.aut_num) -> o.Rpsl.changed >= since) db

let with_min_imports n db =
  Asn.Map.filter (fun _ (o : Rpsl.aut_num) -> List.length o.Rpsl.imports >= n) db

let render db = Rpsl.render_many (objects db)

let parse text = Result.map of_objects (Rpsl.parse text)

let save_file path db =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (render db))

let load_file path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> parse (In_channel.input_all ic))
