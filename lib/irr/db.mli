(** An IRR registry: a collection of aut-num objects with the hygiene
    filters the paper applies (drop objects not updated during the
    measurement year; keep only well-connected ASs). *)

module Asn = Rpi_bgp.Asn

type t

val of_objects : Rpsl.aut_num list -> t
(** Later duplicates of an AS replace earlier ones (registry semantics). *)

val empty : t
val cardinal : t -> int
val find : t -> Asn.t -> Rpsl.aut_num option
val ases : t -> Asn.t list
val objects : t -> Rpsl.aut_num list

val fresh : since:int -> t -> t
(** Keep objects whose [changed] date (YYYYMMDD) is at least [since] — the
    paper discards ASs not updated during 2002. *)

val with_min_imports : int -> t -> t
(** Keep ASs whose object carries at least that many import rules (the
    paper keeps ASs with more than 50 neighbours). *)

val render : t -> string
val parse : string -> (t, string) result
val save_file : string -> t -> unit
val load_file : string -> (t, string) result
(** IO failures (missing or unreadable file) surface as [Error], not
    [Sys_error]. *)
