(** The domain-pool discipline shared by the experiment runner and the
    rpiserved accept loop: the calling domain is worker 0, [jobs - 1]
    extra domains are spawned, and every domain is joined before [run]
    returns — even when worker 0 raises (the exception is re-raised with
    its backtrace after the join, so no domain leaks). *)

val default_jobs : unit -> int
(** The [RPI_JOBS] environment variable when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()].  An unparseable
    [RPI_JOBS] is reported on stderr and ignored. *)

val run : ?jobs:int -> (int -> unit) -> unit
(** [run ~jobs worker] executes [worker i] on [jobs] domains (default
    {!default_jobs}), [i] ranging over [0 .. jobs - 1] with 0 in the
    calling domain.  [jobs <= 1] runs in the caller with no spawns. *)
