let env_var = "RPI_JOBS"

let default () =
  match Sys.getenv_opt env_var with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Printf.eprintf
            "warning: ignoring %s=%S (expected a positive integer); using %d domains\n%!"
            env_var s
            (Domain.recommended_domain_count ());
          Domain.recommended_domain_count ()
    end
  | None -> Domain.recommended_domain_count ()

let resolve = function
  | Some n -> max 1 n
  | None -> default ()

let term =
  let open Cmdliner in
  let doc =
    "Number of worker domains, the calling domain included (default: the \
     $(env) environment variable, else the recommended domain count; 1 runs \
     sequentially)."
  in
  let env = Cmd.Env.info env_var in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~env ~docv:"N" ~doc)
