let default_jobs () =
  match Sys.getenv_opt "RPI_JOBS" with
  | Some s -> begin
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          Printf.eprintf
            "warning: ignoring RPI_JOBS=%S (expected a positive integer); using %d domains\n%!"
            s
            (Domain.recommended_domain_count ());
          Domain.recommended_domain_count ()
    end
  | None -> Domain.recommended_domain_count ()

let run ?jobs worker =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  if jobs = 1 then worker 0
  else begin
    (* The calling domain is worker 0, so [jobs] includes it. *)
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    let caller = try Ok (worker 0) with e -> Error (e, Printexc.get_raw_backtrace ()) in
    List.iter Domain.join domains;
    match caller with
    | Ok () -> ()
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end
