let default_jobs () = Jobs.default ()

let run ?jobs worker =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  if jobs = 1 then worker 0
  else begin
    (* The calling domain is worker 0, so [jobs] includes it. *)
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    let caller = try Ok (worker 0) with e -> Error (e, Printexc.get_raw_backtrace ()) in
    (* Join every domain even if one raised: [Domain.join] re-raises the
       worker's exception, and bailing out mid-list would leak the
       remaining domains (a server pool's loops never get reaped).
       Collect the first failure and re-raise it after the roll call. *)
    let spawned =
      List.fold_left
        (fun acc d ->
          match Domain.join d with
          | () -> acc
          | exception e ->
              if Option.is_some acc then acc
              else Some (e, Printexc.get_raw_backtrace ()))
        None domains
    in
    match (caller, spawned) with
    | Ok (), None -> ()
    | Error (e, bt), _ | Ok (), Some (e, bt) ->
        Printexc.raise_with_backtrace e bt
  end
