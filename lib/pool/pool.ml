let default_jobs () = Jobs.default ()

let run ?jobs worker =
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  if jobs = 1 then worker 0
  else begin
    (* The calling domain is worker 0, so [jobs] includes it. *)
    let domains = List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1))) in
    let caller = try Ok (worker 0) with e -> Error (e, Printexc.get_raw_backtrace ()) in
    List.iter Domain.join domains;
    match caller with
    | Ok () -> ()
    | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  end
