(** The single source of truth for worker-domain counts.

    Every CLI and the pool itself resolve the same triad the same way:
    an explicit [--jobs]/[-j] flag, else the [RPI_JOBS] environment
    variable, else [Domain.recommended_domain_count ()].  Binaries take
    the cmdliner {!term} and pass its value straight through as an
    [?jobs] optional argument; libraries call {!resolve} (or let
    {!Pool.run} default). *)

val env_var : string
(** ["RPI_JOBS"]. *)

val default : unit -> int
(** [RPI_JOBS] when set to a positive integer, otherwise
    [Domain.recommended_domain_count ()].  An unparseable [RPI_JOBS] is
    reported on stderr and ignored. *)

val resolve : int option -> int
(** [resolve (Some n)] is [max 1 n]; [resolve None] is [default ()]. *)

val term : int option Cmdliner.Term.t
(** The shared [--jobs]/[-j] option (environment fallback [RPI_JOBS],
    docv [N], consistent wording).  [None] when neither flag nor
    environment is given — pass it on as the [?jobs] argument and let
    the pool apply {!default}. *)
