(** Shared evaluation context: one scenario plus everything derived from it
    that several experiments reuse (inferred relationships, observed-path
    index, synthetic IRR, collector origins, the memoized SA analyses).

    A context is safe to share between domains: every field except the SA
    cache ([sa_cache]/[sa_pending]) is immutable after [create], and the
    cache is only touched under its mutex. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

type t = {
  scenario : Rpi_dataset.Scenario.t;
  inferred : As_graph.t;
      (** Raw Gao relationship inference over all observed paths. *)
  corrected : As_graph.t;
      (** [inferred] with every Looking-Glass vantage's own adjacencies
          re-labelled from its community tags — the paper's Section 4.3
          verification step, which it applies before the import-policy and
          export-policy analyses. *)
  path_index : Rpi_core.Sa_verify.path_index;
  irr : Rpi_irr.Db.t;
  collector_origins : (Asn.t * Rpi_net.Prefix.t list) list;
  focus_tier1 : Asn.t list;  (** AS1, AS3549, AS7018 when present. *)
  sa_lock : Mutex.t;
  sa_done : Condition.t;
      (** Signalled when an in-flight SA analysis finishes (or fails). *)
  sa_pending : (int, unit) Hashtbl.t;
      (** Providers whose SA analysis is being computed right now —
          single-flight claims, so racing domains wait instead of
          duplicating the work. *)
  sa_cache : (int, Rpi_ingest.State.t) Hashtbl.t;
      (** Per-provider incremental inference states, memoized across
          experiments.  Each holds the provider's viewpoint table plus
          cached per-prefix verdicts, so {!advance_feed} invalidates only
          touched prefixes.  Access only through {!sa_view} /
          {!sa_report} / {!advance_feed}, which take [sa_lock]. *)
}

val create :
  ?config:Rpi_dataset.Scenario.config ->
  ?gao_config:Rpi_relinfer.Gao.config ->
  unit ->
  t
(** [gao_config] defaults to Gao's parameters with the peering degree
    ratio lowered to 6 — the synthetic topology compresses absolute
    degrees (hundreds, not thousands), so the discriminating ratio between
    a Tier-1 and its customers is smaller than the measured Internet's. *)

val use_ground_truth_graph : t -> t
(** Swap the inferred graph for the oracle annotated graph (ablation:
    how much do inference errors matter downstream?).  The returned
    context has a fresh, empty SA cache. *)

val sa_view : t -> Asn.t -> Rpi_bgp.Rib.t * Rpi_core.Export_infer.report
(** The provider's viewpoint (its own collector feed) and the SA analysis
    over it, memoized in the context.  Thread-safe and single-flight:
    concurrent calls from several domains return identical reports, and a
    domain racing on a provider someone else is already analyzing waits
    for that result instead of recomputing it. *)

val sa_report : t -> Asn.t -> Rpi_core.Export_infer.report
(** [snd (sa_view t provider)]. *)

val advance_feed : t -> Asn.t -> Rpi_bgp.Update.t list -> unit
(** Apply a live update stream to the provider's cached viewpoint state
    (building it from the collector first if needed).  The next
    {!sa_view}/{!sa_report} refreshes only the prefixes the stream
    touched — delta-driven invalidation instead of a full recompute. *)

val feed_counters : t -> Asn.t -> Rpi_ingest.State.counters
(** The provider state's work counters (updates applied, refreshes,
    prefixes recomputed) — what the bench and tests assert on. *)

val lg_rib_exn : t -> Asn.t -> Rpi_bgp.Rib.t
(** @raise Invalid_argument when the AS is not a Looking-Glass vantage. *)

val paths_for_prefix : t -> Rpi_net.Prefix.t -> Asn.t list list
(** Every AS path observed for the prefix, across the collector and all
    Looking-Glass tables (Looking-Glass paths prepended with their
    vantage). *)
