module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module As_graph = Rpi_topo.As_graph
module Scenario = Rpi_dataset.Scenario
module Export_infer = Rpi_core.Export_infer
module State = Rpi_ingest.State

type t = {
  scenario : Scenario.t;
  inferred : As_graph.t;
  corrected : As_graph.t;
  path_index : Rpi_core.Sa_verify.path_index;
  irr : Rpi_irr.Db.t;
  collector_origins : (Asn.t * Rpi_net.Prefix.t list) list;
  focus_tier1 : Asn.t list;
  sa_lock : Mutex.t;
  sa_done : Condition.t;
  sa_pending : (int, unit) Hashtbl.t;
  sa_cache : (int, State.t) Hashtbl.t;
}

(* Section 4.3: re-label a vantage's own adjacencies from the community
   tags its table carries. *)
let correct_with_communities inferred lg_tables =
  List.fold_left
    (fun graph (vantage, rib) ->
      let has_providers = As_graph.providers graph vantage <> [] in
      let semantics =
        Rpi_core.Community_verify.infer_semantics ~vantage ~has_providers rib
      in
      let tags = Rpi_core.Community_verify.neighbor_tags ~vantage rib in
      List.fold_left
        (fun graph (nb, code) ->
          match Rpi_core.Community_verify.classify_neighbor semantics ~code with
          | Some rel -> As_graph.add_edge graph vantage nb rel
          | None -> graph)
        graph tags)
    inferred lg_tables

let default_gao_config =
  { Rpi_relinfer.Gao.default_config with Rpi_relinfer.Gao.peer_degree_ratio = 6.0 }

let create ?config ?(gao_config = default_gao_config) () =
  let scenario = Scenario.build ?config () in
  let paths = Scenario.observed_paths scenario in
  let inferred = Rpi_relinfer.Gao.infer ~config:gao_config paths in
  let corrected = correct_with_communities inferred scenario.Scenario.lg_tables in
  let path_index = Rpi_core.Sa_verify.index_paths paths in
  let irr_rng = Rpi_prng.Prng.create ~seed:(scenario.Scenario.config.Scenario.seed + 7919) in
  let irr =
    Rpi_irr.Gen.registry irr_rng ~graph:scenario.Scenario.graph
      ~policies:(Scenario.policy_of scenario)
  in
  let collector_origins =
    Rpi_core.Export_infer.origins_of_rib scenario.Scenario.collector
  in
  let focus_tier1 =
    List.filter
      (fun a -> As_graph.mem_as scenario.Scenario.graph a)
      (List.map Asn.of_int [ 1; 3549; 7018 ])
  in
  {
    scenario;
    inferred;
    corrected;
    path_index;
    irr;
    collector_origins;
    focus_tier1;
    sa_lock = Mutex.create ();
    sa_done = Condition.create ();
    sa_pending = Hashtbl.create 8;
    sa_cache = Hashtbl.create 8;
  }

let use_ground_truth_graph t =
  (* The SA analysis depends on the graph, so the swapped context gets a
     fresh cache — sharing the original's would serve stale reports. *)
  {
    t with
    inferred = t.scenario.Scenario.graph;
    corrected = t.scenario.Scenario.graph;
    sa_lock = Mutex.create ();
    sa_done = Condition.create ();
    sa_pending = Hashtbl.create 8;
    sa_cache = Hashtbl.create 8;
  }

(* The per-provider incremental state, memoized in the context (several
   tables reuse it).  The provider's viewpoint is its own collector feed
   (its best routes with itself stripped from the paths) — using the best
   route across all feeds would classify from the collector's viewpoint,
   not the provider's.  The state caches per-prefix verdicts, so a later
   {!advance_feed} invalidates only the touched prefixes instead of
   recomputing the whole analysis.

   The cache is shared across domains when experiments run on the parallel
   runner, so every access happens under [sa_lock].  Misses are
   single-flight: the first domain to ask for a provider claims the key in
   [sa_pending], builds the state outside the lock, and publishes the
   entry; domains racing on the same key block on [sa_done] instead of
   duplicating the multi-second initial analysis.  If the building domain
   raises, it releases the claim so a waiter can retry. *)
let sa_state (t : t) provider =
  let key = Asn.to_int provider in
  let rec claim () =
    match Hashtbl.find_opt t.sa_cache key with
    | Some state -> `Ready state
    | None ->
        if Hashtbl.mem t.sa_pending key then begin
          Condition.wait t.sa_done t.sa_lock;
          claim ()
        end
        else begin
          Hashtbl.add t.sa_pending key ();
          `Compute
        end
  in
  Mutex.lock t.sa_lock;
  let decision = claim () in
  Mutex.unlock t.sa_lock;
  match decision with
  | `Ready state -> state
  | `Compute ->
      let publish entry =
        Mutex.lock t.sa_lock;
        Hashtbl.remove t.sa_pending key;
        (match entry with
        | Some state -> Hashtbl.add t.sa_cache key state
        | None -> ());
        Condition.broadcast t.sa_done;
        Mutex.unlock t.sa_lock
      in
      (match
         let viewpoint =
           Export_infer.viewpoint_of_feed ~feed:provider
             t.scenario.Scenario.collector
         in
         State.create ~graph:t.corrected ~vantage:provider
           ~origins:(State.Fixed t.collector_origins) ~initial:viewpoint ()
       with
      | state ->
          publish (Some state);
          state
      | exception e ->
          publish None;
          raise e)

let sa_view t provider =
  let state = sa_state t provider in
  (State.rib state, State.sa_report state)

let sa_report t provider = State.sa_report (sa_state t provider)

let advance_feed t provider updates =
  let state = sa_state t provider in
  State.apply_all state updates

let feed_counters t provider = State.counters (sa_state t provider)

let lg_rib_exn t a =
  match Scenario.lg_table t.scenario a with
  | Some rib -> rib
  | None -> invalid_arg (Printf.sprintf "%s is not a Looking-Glass vantage" (Asn.to_label a))

let paths_for_prefix t prefix =
  let of_routes ?prepend routes =
    List.filter_map
      (fun (r : Rpi_bgp.Route.t) ->
        match Rpi_bgp.As_path.to_list r.Rpi_bgp.Route.as_path with
        | [] -> None
        | hops -> begin
            match prepend with
            | Some vantage -> Some (vantage :: hops)
            | None -> Some hops
          end)
      routes
  in
  let collector_paths =
    of_routes (Rpi_bgp.Rib.candidates t.scenario.Scenario.collector prefix)
  in
  let lg_paths =
    List.concat_map
      (fun (vantage, rib) ->
        of_routes ~prepend:vantage (Rpi_bgp.Rib.candidates rib prefix))
      t.scenario.Scenario.lg_tables
  in
  collector_paths @ lg_paths
