(** One experiment per table and figure of the paper's evaluation.

    Each experiment returns a structured {!outcome} instead of an opaque
    string: the rendered text report (what the paper reports vs what this
    reproduction measures), the headline metrics as machine-readable
    [(name, value)] pairs, and the underlying {!Rpi_stats.Table.t} values
    — so results can be printed, emitted as JSON, diffed across runs, or
    asserted on in tests.

    Experiments are pure functions of the {!Context.t} (the per-provider
    SA analyses they share are memoized inside the context behind a
    mutex), so any subset may run concurrently on separate domains — see
    [Rpi_runner.Runner]. *)

type outcome = {
  id : string;  (** Catalogue identifier, e.g. ["table5"]. *)
  title : string;  (** One-line description. *)
  rendered : string;  (** Paper-style text report (header + tables + notes). *)
  metrics : (string * float) list;
      (** Headline numbers, never empty: the values the text report quotes
          (percentages, counts, medians), keyed by stable snake_case names. *)
  tables : Rpi_stats.Table.t list;
      (** The tables embedded in [rendered], in order of appearance. *)
}

type t = {
  id : string;
  title : string;
  cost : float;
      (** Relative wall-clock cost hint (roughly seconds on the default
          scenario).  The parallel runner hands out expensive experiments
          first so a long job never starts last and overhangs the batch;
          the hint has no effect on results or on their order. *)
  run : Context.t -> outcome;
}
(** A catalogue entry; [run] produces an outcome whose [id]/[title] match. *)

val table1 : Context.t -> outcome
(** Data sources: collector peering + Looking-Glass vantages (AS, degree,
    tier, region). *)

val table2 : Context.t -> outcome
(** Typical local preference per Looking-Glass AS. *)

val table3 : Context.t -> outcome
(** Typical preference for well-connected ASs from the synthetic IRR. *)

val table4 : Context.t -> outcome
(** AS relationships verified via community tags, per vantage. *)

val table5 : Context.t -> outcome
(** Percentage of SA prefixes for the collector-visible providers. *)

val table6 : Context.t -> outcome
(** Per-customer SA share for customers common to the three focus
    Tier-1s. *)

val table7 : Context.t -> outcome
(** Verification of SA prefixes for the three focus Tier-1s. *)

val table8 : Context.t -> outcome
(** Multihomed vs single-homed SA origins. *)

val table9 : Context.t -> outcome
(** Prefix splitting / aggregation vs total SA prefixes. *)

val table10 : Context.t -> outcome
(** Peers announcing their own prefixes to the focus Tier-1s. *)

val case3 : Context.t -> outcome
(** Section 5.1.5 Case 3: announce / withhold split over (origin, direct
    provider) pairs. *)

val fig2 : Context.t -> outcome
(** Local-pref consistency with next-hop AS: (a) per vantage, (b) per
    emulated backbone router of AS7018. *)

val fig6_fig7 : ?days:int -> ?hours:int -> Context.t -> outcome
(** Persistence of SA prefixes: time series and uptime histograms, from a
    churned re-simulation (defaults: 31 daily and 12 hourly epochs on a
    reduced scenario for wall-clock sanity). *)

val churn_persistence : ?epochs:int -> Context.t -> outcome
(** Extension: the Figs. 6-7 persistence machinery driven by
    topology-level churn — seeded link flaps, relationship migrations and
    announce/withdraw cycles from {!Rpi_topo.Churn} — with each epoch
    re-solved by the incremental engine ({!Rpi_sim.Engine.repropagate})
    instead of a fresh batch propagation (default 240 epochs on the
    reduced scenario). *)

val fig9 : Context.t -> outcome
(** Rank vs announced-prefix-count plots for community semantics
    inference, for three vantages of contrasting size. *)

val ablation_curving : Context.t -> outcome
(** DESIGN ablation: how many best routes at the focus Tier-1s change when
    local preference is ignored (shortest-path BGP) — the "curving routes"
    effect. *)

val ablation_vantage_count : Context.t -> outcome
(** DESIGN ablation: Gao inference accuracy as collector feeds are added. *)

val ablation_graph_oracle : Context.t -> outcome
(** DESIGN ablation: Table 5 recomputed with the ground-truth graph versus
    the inferred graph — the error inherited from relationship
    inference. *)

val ext_prepend : Context.t -> outcome
(** Extension: AS-path prepending — the soft inbound-TE tool of
    Section 2.2.2 — detected in the tables and scored against the
    configured ground truth. *)

val ext_atoms : Context.t -> outcome
(** Extension: policy atoms (Afek et al., cited in Section 5.1.5) inferred
    from the collector table, with the paper's claim — atoms are created
    by origin routing policies — checked against the oracle. *)

val ext_availability : Context.t -> outcome
(** Extension: "connectivity does not mean reachability" quantified —
    potential vs actual next-hop diversity at the focus Tier-1s. *)

val ext_irr_export : Context.t -> outcome
(** Extension: export rules in the IRR audited against the inferred
    relationships for leak-shaped policies. *)

val ext_tiers : Context.t -> outcome
(** Extension: the tier classifier (used to label Tables 2/3/5) scored
    against the generator's ground truth. *)

val stability : ?seeds:int list -> Context.t -> outcome
(** Robustness: the headline metrics (typical-preference median, Tier-1 SA
    share, relationship-inference accuracy) recomputed on freshly built
    reduced worlds for several seeds — the reproduction's qualitative
    claims should hold in every world. *)

val all : t list
(** The full catalogue, in the paper's presentation order — the order
    [run_all] and the parallel runner report results in. *)

val find : string -> t option
(** Look an experiment up by its catalogue [id]. *)

val run_all : Context.t -> string
(** Render every experiment sequentially and join the reports with a blank
    line — byte-identical to the pre-[outcome] string API.  Prefer
    [Rpi_runner.Runner.run] (then [Runner.render]) to execute on several
    domains. *)
