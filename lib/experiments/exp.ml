module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Tier = Rpi_topo.Tier
module Prefix = Rpi_net.Prefix
module Prefix_set = Rpi_net.Prefix_set
module Scenario = Rpi_dataset.Scenario
module Ground_truth = Rpi_dataset.Ground_truth
module Import_infer = Rpi_core.Import_infer
module Nexthop = Rpi_core.Nexthop_consistency
module Export_infer = Rpi_core.Export_infer
module Sa_verify = Rpi_core.Sa_verify
module Sa_causes = Rpi_core.Sa_causes
module Homing = Rpi_core.Homing
module Persistence = Rpi_core.Persistence
module Peer_export = Rpi_core.Peer_export
module Community_verify = Rpi_core.Community_verify
module Irr_import = Rpi_core.Irr_import
module Table = Rpi_stats.Table
module Series = Rpi_stats.Series
module Dist = Rpi_stats.Dist

type outcome = {
  id : string;
  title : string;
  rendered : string;
  metrics : (string * float) list;
  tables : Table.t list;
}

type t = { id : string; title : string; cost : float; run : Context.t -> outcome }

let mk ~id ~title ?(metrics = []) ?(tables = []) rendered =
  { id; title; rendered; metrics; tables }

let fi = float_of_int

let header id paper =
  Printf.sprintf "=== %s ===\nPaper reports: %s\n" id paper

(* Synthetic "location" flavour for Table 1, in the paper's proportions. *)
let region_of asn =
  match Asn.to_int asn * 2654435761 land 0xFF mod 10 with
  | 0 | 1 | 2 | 3 | 4 -> "NA"
  | 5 | 6 | 7 | 8 -> "Eu"
  | _ -> "Au/As"

(* The per-provider SA analysis is memoized in the context (several tables
   reuse it) behind a mutex, so experiments sharing a context may run on
   concurrent domains. *)
let sa_view = Context.sa_view
let sa_report = Context.sa_report

(* --- Table 1 --- *)

let table1 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let g = s.Scenario.graph in
  let tiers = Tier.classify g in
  let t = Table.create [ ("AS", Table.Left); ("role", Table.Left); ("degree", Table.Right);
                         ("tier", Table.Right); ("location", Table.Left) ] in
  Table.add_row t
    [
      "collector";
      Printf.sprintf "RouteViews-style, %d peers" (List.length s.Scenario.collector_peers);
      "-"; "-"; "-";
    ];
  List.iter
    (fun a ->
      Table.add_row t
        [
          Asn.to_label a;
          "looking-glass";
          Table.cell_int (As_graph.degree g a);
          (match Asn.Map.find_opt a tiers with
          | Some tier -> Table.cell_int tier
          | None -> "?");
          region_of a;
        ])
    s.Scenario.lg_ases;
  mk ~id:"table1" ~title:"data sources"
    ~metrics:
      [
        ("ases", fi (As_graph.as_count g));
        ("edges", fi (As_graph.edge_count g));
        ("collector_prefixes", fi (Rib.prefix_count s.Scenario.collector));
        ("collector_peers", fi (List.length s.Scenario.collector_peers));
        ("lg_vantages", fi (List.length s.Scenario.lg_ases));
      ]
    ~tables:[ t ]
    (header "Table 1" "68 tables: Oregon RouteViews (56 peers) + 15 Looking Glass ASs, degrees 14..1330"
    ^ Table.render t
    ^ Printf.sprintf "Synthetic dataset: %d ASs, %d edges, %d prefixes at the collector.\n"
        (As_graph.as_count g) (As_graph.edge_count g)
        (Rib.prefix_count s.Scenario.collector))

(* --- Table 2 --- *)

let table2 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("AS", Table.Left); ("% typical local pref", Table.Right);
        ("prefixes compared", Table.Right) ]
  in
  let pcts =
    List.map
      (fun (a, rib) ->
        let r = Import_infer.analyze ctx.Context.corrected ~vantage:a rib in
        Table.add_row t
          [
            Asn.to_label a;
            Table.cell_pct ~decimals:3 r.Import_infer.pct_typical;
            Table.cell_int r.Import_infer.prefixes_compared;
          ];
        r.Import_infer.pct_typical)
      s.Scenario.lg_tables
  in
  mk ~id:"table2" ~title:"typical local preference (BGP tables)"
    ~metrics:
      [
        ("vantages", fi (List.length pcts));
        ("pct_typical_min", Option.value ~default:0.0 (Dist.min_value pcts));
        ("pct_typical_median", Dist.median pcts);
        ("pct_typical_max", Option.value ~default:0.0 (Dist.max_value pcts));
      ]
    ~tables:[ t ]
    (header "Table 2" "typical local preference on 94.3%..100% of prefixes for 15 ASs"
    ^ Table.render t
    ^ Printf.sprintf "Measured: min %.2f%%, median %.2f%%, max %.2f%%.\n"
        (Option.value ~default:0.0 (Dist.min_value pcts))
        (Dist.median pcts)
        (Option.value ~default:0.0 (Dist.max_value pcts)))

(* --- Table 3 --- *)

let table3 (ctx : Context.t) =
  let reports = Irr_import.analyze_db ~min_rules:10 ~min_pairs:8 ctx.Context.corrected ctx.Context.irr in
  let g = ctx.Context.scenario.Scenario.graph in
  let sorted =
    List.sort
      (fun (a : Irr_import.report) b ->
        Int.compare (As_graph.degree g a.Irr_import.asn) (As_graph.degree g b.Irr_import.asn))
      reports
  in
  let shown = List.filteri (fun i _ -> i < 62) sorted in
  let t =
    Table.create
      [ ("AS", Table.Left); ("degree", Table.Right); ("% typical", Table.Right) ]
  in
  List.iter
    (fun (r : Irr_import.report) ->
      Table.add_row t
        [
          Asn.to_label r.Irr_import.asn;
          Table.cell_int (As_graph.degree g r.Irr_import.asn);
          Table.cell_pct ~decimals:2 r.Irr_import.pct_typical;
        ])
    shown;
  let pcts = List.map (fun (r : Irr_import.report) -> r.Irr_import.pct_typical) sorted in
  mk ~id:"table3" ~title:"typical local preference (IRR)"
    ~metrics:
      [
        ("objects", fi (List.length sorted));
        ("pct_typical_min", Option.value ~default:0.0 (Dist.min_value pcts));
        ("pct_typical_median", if pcts = [] then 0.0 else Dist.median pcts);
        ("pct_typical_max", Option.value ~default:0.0 (Dist.max_value pcts));
      ]
    ~tables:[ t ]
    (header "Table 3"
       "typical local preference for 62 well-connected ASs from the IRR, 80%..100%"
    ^ Table.render t
    ^ Printf.sprintf
        "Measured over %d fresh, well-connected aut-num objects: min %.1f%%, median %.1f%%, max %.1f%%.\n"
        (List.length sorted)
        (Option.value ~default:0.0 (Dist.min_value pcts))
        (if pcts = [] then 0.0 else Dist.median pcts)
        (Option.value ~default:0.0 (Dist.max_value pcts)))

(* --- Table 4 --- *)

let table4 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("AS", Table.Left); ("neighbors checked", Table.Right); ("% verified", Table.Right) ]
  in
  let pcts =
    List.filter_map
      (fun (a, rib) ->
        let r = Community_verify.verify ~vantage:a ~inferred:ctx.Context.inferred rib in
        if r.Community_verify.neighbors_checked = 0 then None
        else begin
          Table.add_row t
            [
              Asn.to_label a;
              Table.cell_int r.Community_verify.neighbors_checked;
              Table.cell_pct ~decimals:2 r.Community_verify.pct_verified;
            ];
          Some r.Community_verify.pct_verified
        end)
      s.Scenario.lg_tables
  in
  mk ~id:"table4" ~title:"relationship verification via communities"
    ~metrics:
      [
        ("vantages", fi (List.length pcts));
        ("pct_verified_median", if pcts = [] then 0.0 else Dist.median pcts);
      ]
    ~tables:[ t ]
    (header "Table 4"
       "94.1%..99.55% of the AS relationships of 9 ASs verified via community tags"
    ^ Table.render t
    ^ Printf.sprintf "Measured: median %.2f%% across %d vantages.\n"
        (if pcts = [] then 0.0 else Dist.median pcts)
        (List.length pcts))

(* --- Table 5 --- *)

let table5 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let providers =
    (* The collector-visible providers: Tier-1 feeds first, then the LG
       Tier-2s, mirroring the paper's 16 ASs. *)
    let tier1 = s.Scenario.topo.Rpi_topo.Gen.tier1 in
    let lg_t2 = List.filter (fun a -> not (List.mem a tier1)) s.Scenario.lg_ases in
    tier1 @ List.filteri (fun i _ -> i < 6) lg_t2
  in
  let t =
    Table.create
      [ ("AS", Table.Left); ("customer prefixes", Table.Right); ("SA prefixes", Table.Right);
        ("% SA", Table.Right) ]
  in
  let pcts =
    List.map
      (fun provider ->
        let r = sa_report ctx provider in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_int r.Export_infer.customer_prefixes;
            Table.cell_int (List.length r.Export_infer.sa);
            Table.cell_pct r.Export_infer.pct_sa;
          ];
        r.Export_infer.pct_sa)
      providers
  in
  mk ~id:"table5" ~title:"SA-prefix share per provider"
    ~metrics:
      [
        ("providers", fi (List.length providers));
        ("pct_sa_mean", if pcts = [] then 0.0 else Dist.mean pcts);
        ("pct_sa_max", Option.value ~default:0.0 (Dist.max_value pcts));
      ]
    ~tables:[ t ]
    (header "Table 5" "SA prefixes at 16 ASs: 0%..48.6% (Tier-1s typically 14%..32%)"
    ^ Table.render t)

(* --- Table 6 --- *)

let table6 (ctx : Context.t) =
  let g = ctx.Context.corrected in
  let focus = ctx.Context.focus_tier1 in
  let is_common_customer origin =
    List.for_all (fun p -> Rpi_topo.Paths.is_customer g ~provider:p origin) focus
  in
  let rows =
    List.filter_map
      (fun (origin, prefixes) ->
        if (not (is_common_customer origin)) || List.length prefixes < 2 then None
        else begin
          let sa_for_all prefix =
            List.for_all
              (fun provider ->
                let viewpoint = fst (sa_view ctx provider) in
                match Export_infer.classify_prefix g ~provider viewpoint prefix with
                | Export_infer.Sa_prefix _ -> true
                | Export_infer.Customer_route | Export_infer.Unreachable -> false)
              focus
          in
          let sa_count = List.length (List.filter sa_for_all prefixes) in
          Some (origin, List.length prefixes, sa_count)
        end)
      ctx.Context.collector_origins
  in
  (* The paper picks customers originating a significant number of
     prefixes and showing SA behaviour; rank by SA count, then size. *)
  let top =
    List.sort
      (fun (_, n1, sa1) (_, n2, sa2) ->
        match Int.compare sa2 sa1 with
        | 0 -> Int.compare n2 n1
        | c -> c)
      rows
    |> List.filteri (fun i _ -> i < 8)
  in
  let t =
    Table.create
      [ ("Customer", Table.Left); ("# prefixes", Table.Right);
        ("# SA for all three", Table.Right); ("%", Table.Right) ]
  in
  List.iter
    (fun (origin, n, sa) ->
      Table.add_row t
        [
          Asn.to_label origin;
          Table.cell_int n;
          Table.cell_int sa;
          Table.cell_pct (100.0 *. float_of_int sa /. float_of_int (max 1 n));
        ])
    top;
  let shares =
    List.map (fun (_, n, sa) -> 100.0 *. fi sa /. fi (max 1 n)) top
  in
  mk ~id:"table6" ~title:"per-customer SA share"
    ~metrics:
      [
        ("customers", fi (List.length top));
        ("pct_sa_mean", if shares = [] then 0.0 else Dist.mean shares);
        ("pct_sa_max", Option.value ~default:0.0 (Dist.max_value shares));
      ]
    ~tables:[ t ]
    (header "Table 6"
       "8 customers below AS1+AS3549+AS7018 with 17%..97% of their prefixes SA"
    ^ Table.render t)

(* --- Table 7 --- *)

let table7 (ctx : Context.t) =
  let t =
    Table.create
      [ ("Provider", Table.Left); ("# SA prefixes", Table.Right); ("% verified", Table.Right) ]
  in
  let pcts =
    List.map
      (fun provider ->
        let sa = (sa_report ctx provider).Export_infer.sa in
        let r =
          Sa_verify.verify ctx.Context.corrected ctx.Context.path_index ~provider sa
        in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_int r.Sa_verify.total;
            Table.cell_pct r.Sa_verify.pct_verified;
          ];
        r.Sa_verify.pct_verified)
      ctx.Context.focus_tier1
  in
  (* Oracle cross-check: are inferred SA prefixes actually SA per the
     engine state? *)
  let oracle_checked, oracle_correct =
    List.fold_left
      (fun (checked, correct) provider ->
        List.fold_left
          (fun (checked, correct) (r : Export_infer.sa_record) ->
            match
              Ground_truth.expected_sa ctx.Context.scenario ~provider
                r.Export_infer.prefix
            with
            | Some true -> (checked + 1, correct + 1)
            | Some false -> (checked + 1, correct)
            | None -> (checked, correct))
          (checked, correct)
          (sa_report ctx provider).Export_infer.sa)
      (0, 0) ctx.Context.focus_tier1
  in
  mk ~id:"table7" ~title:"SA-prefix verification"
    ~metrics:
      [
        ("pct_verified_mean", if pcts = [] then 0.0 else Dist.mean pcts);
        ("oracle_checked", fi oracle_checked);
        ("oracle_pct", Dist.pct (oracle_correct, oracle_checked));
      ]
    ~tables:[ t ]
    (header "Table 7" "95%..97.6% of SA prefixes verified for AS1, AS3549, AS7018"
    ^ Table.render t
    ^ Printf.sprintf "Oracle: %d/%d inferred SA prefixes confirmed against engine state (%.1f%%).\n"
        oracle_correct oracle_checked
        (Dist.pct (oracle_correct, oracle_checked)))

(* --- Table 8 --- *)

let table8 (ctx : Context.t) =
  let t =
    Table.create
      [ ("Provider", Table.Left); ("multihomed", Table.Right); ("single-homed", Table.Right);
        ("% multihomed", Table.Right) ]
  in
  let pcts =
    List.map
      (fun provider ->
        let sa = (sa_report ctx provider).Export_infer.sa in
        let r = Homing.analyze ctx.Context.corrected ~provider sa in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_int r.Homing.multihomed;
            Table.cell_int r.Homing.single_homed;
            Table.cell_pct r.Homing.pct_multihomed;
          ];
        r.Homing.pct_multihomed)
      ctx.Context.focus_tier1
  in
  mk ~id:"table8" ~title:"multihoming of SA origins"
    ~metrics:
      [
        ("providers", fi (List.length pcts));
        ("pct_multihomed_mean", if pcts = [] then 0.0 else Dist.mean pcts);
      ]
    ~tables:[ t ]
    (header "Table 8" "~75% of ASs behind SA prefixes are multihomed, ~25% single-homed"
    ^ Table.render t)

(* --- Table 9 --- *)

let table9 (ctx : Context.t) =
  let t =
    Table.create
      [ ("Provider", Table.Left); ("# SA", Table.Right); ("# splitting", Table.Right);
        ("# aggregable", Table.Right) ]
  in
  let totals =
    List.map
      (fun provider ->
        let viewpoint, report = sa_view ctx provider in
        let sa = report.Export_infer.sa in
        let split = Sa_causes.splitting viewpoint sa in
        let agg = Sa_causes.aggregable viewpoint sa in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_int (List.length sa);
            Table.cell_int (List.length split);
            Table.cell_int (List.length agg);
          ];
        (List.length sa, List.length split, List.length agg))
      ctx.Context.focus_tier1
  in
  let sum f = List.fold_left (fun acc x -> acc + f x) 0 totals in
  mk ~id:"table9" ~title:"splitting/aggregation vs SA"
    ~metrics:
      [
        ("sa_total", fi (sum (fun (a, _, _) -> a)));
        ("splitting_total", fi (sum (fun (_, b, _) -> b)));
        ("aggregable_total", fi (sum (fun (_, _, c) -> c)));
      ]
    ~tables:[ t ]
    (header "Table 9"
       "splitting (63..127) and aggregable (104..218) prefixes are tiny shares of SA totals (3431..9120)"
    ^ Table.render t
    ^ "Both causes are an order of magnitude below the SA count: selective announcing dominates.\n")

(* --- Table 10 --- *)

let table10 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("AS", Table.Left); ("peers with visible prefixes", Table.Right);
        ("% announcing all directly", Table.Right) ]
  in
  let pcts =
    List.filter_map
      (fun vantage ->
        match Scenario.lg_table s vantage with
        | None -> None
        | Some rib ->
            let r =
              Peer_export.analyze ctx.Context.corrected ~vantage
                ~reference:s.Scenario.collector rib
            in
            Table.add_row t
              [
                Asn.to_label vantage;
                Table.cell_int r.Peer_export.peers_total;
                Table.cell_pct r.Peer_export.pct_announcing;
              ];
            Some r.Peer_export.pct_announcing)
      ctx.Context.focus_tier1
  in
  mk ~id:"table10" ~title:"peer export completeness"
    ~metrics:
      [
        ("vantages", fi (List.length pcts));
        ("pct_announcing_mean", if pcts = [] then 0.0 else Dist.mean pcts);
      ]
    ~tables:[ t ]
    (header "Table 10" "86%, 100%, 89% of peers announce their own prefixes directly"
    ^ Table.render t)

(* --- Case 3 --- *)

let case3 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("Provider", Table.Left); ("announce", Table.Right);
        ("withhold", Table.Right); ("undetermined", Table.Right);
        ("% announce", Table.Right) ]
  in
  let pcts =
    List.map
      (fun provider ->
        let viewpoint, report = sa_view ctx provider in
        let sa = report.Export_infer.sa in
        let r =
          Sa_causes.analyze ctx.Context.corrected ~viewpoint
            ~paths_of:(Context.paths_for_prefix ctx)
            ~feeds:s.Scenario.collector_peers ~provider sa
        in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_int r.Sa_causes.case3_announce;
            Table.cell_int r.Sa_causes.case3_withhold;
            Table.cell_int r.Sa_causes.case3_undetermined;
            Table.cell_pct r.Sa_causes.pct_announce;
          ];
        r.Sa_causes.pct_announce)
      ctx.Context.focus_tier1
  in
  mk ~id:"case3" ~title:"announce/withhold split to direct providers"
    ~metrics:
      [
        ("providers", fi (List.length pcts));
        ("pct_announce_mean", if pcts = [] then 0.0 else Dist.mean pcts);
      ]
    ~tables:[ t ]
    (header "Case 3 (Sec 5.1.5)"
       "~21% of SA prefixes announced to the failing direct provider (the community mechanism), ~79% withheld (AS1)"
    ^ Table.render t)

(* --- Fig. 2 --- *)

let fig2 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("AS", Table.Left); ("% prefixes with next-hop-based LP", Table.Right);
        ("single-valued neighbors", Table.Right) ]
  in
  let lg_pcts =
    List.map
      (fun (a, rib) ->
        let r = Nexthop.analyze rib in
        Table.add_row t
          [
            Asn.to_label a;
            Table.cell_pct ~decimals:2 r.Nexthop.pct_nexthop_based;
            Table.cell_pct ~decimals:1 r.Nexthop.pct_single_valued_neighbors;
          ];
        r.Nexthop.pct_nexthop_based)
      s.Scenario.lg_tables
  in
  (* (b): 30 emulated backbone routers of AS7018. *)
  let as7018 = Asn.of_int 7018 in
  let router_part, router_tables, router_metrics =
    match Scenario.lg_table s as7018 with
    | None -> ("AS7018 not in this scenario; skipping the per-router view.\n", [], [])
    | Some _ ->
        let policy = Scenario.policy_of s as7018 in
        let views =
          Rpi_sim.Vantage.router_views ~policy ~vantage:as7018 ~routers:30
            s.Scenario.results
        in
        let reports = Nexthop.analyze_routers views in
        let pcts = List.map (fun r -> r.Nexthop.pct_nexthop_based) reports in
        let tb = Table.create [ ("router", Table.Right); ("% next-hop based", Table.Right) ] in
        List.iteri
          (fun i r ->
            Table.add_row tb
              [ Table.cell_int (i + 1); Table.cell_pct ~decimals:2 r.Nexthop.pct_nexthop_based ])
          reports;
        ( Printf.sprintf "(b) AS7018 across 30 backbone routers: min %.2f%%, max %.2f%%\n"
            (Option.value ~default:0.0 (Dist.min_value pcts))
            (Option.value ~default:0.0 (Dist.max_value pcts))
          ^ Table.render tb,
          [ tb ],
          [
            ("router_pct_min", Option.value ~default:0.0 (Dist.min_value pcts));
            ("router_pct_max", Option.value ~default:0.0 (Dist.max_value pcts));
          ] )
  in
  mk ~id:"fig2" ~title:"local-pref consistency with next hop"
    ~metrics:
      ([
         ("vantages", fi (List.length lg_pcts));
         ("pct_nexthop_min", Option.value ~default:0.0 (Dist.min_value lg_pcts));
         ("pct_nexthop_max", Option.value ~default:0.0 (Dist.max_value lg_pcts));
       ]
      @ router_metrics)
    ~tables:(t :: router_tables)
    (header "Fig. 2" "~98% of prefixes have local preference determined by the next-hop AS"
    ^ "(a) per Looking-Glass AS\n" ^ Table.render t ^ router_part)

(* --- Figs. 6 and 7 --- *)

let fig6_fig7 ?(days = 31) ?(hours = 12) (ctx : Context.t) =
  (* Re-simulate on a reduced scenario so that per-epoch propagation stays
     cheap; the SA machinery is identical. *)
  let config =
    { Scenario.small_config with Scenario.seed = ctx.Context.scenario.Scenario.config.Scenario.seed }
  in
  let s = Scenario.build ~config () in
  let provider = Asn.of_int 1 in
  let policy = Scenario.policy_of s provider in
  let origins_of atoms =
    let tbl = Asn.Table.create 64 in
    List.iter
      (fun (atom : Rpi_sim.Atom.t) ->
        let existing = Option.value ~default:[] (Asn.Table.find_opt tbl atom.Rpi_sim.Atom.origin) in
        Asn.Table.replace tbl atom.Rpi_sim.Atom.origin (atom.Rpi_sim.Atom.prefixes @ existing))
      atoms;
    Asn.Table.fold (fun o ps acc -> (o, ps) :: acc) tbl []
  in
  (* Incremental observation: the vantage table is carried across epochs.
     [Timeline.updates_between]'s messages name exactly the prefixes whose
     candidate routes may have changed — those are invalidated with
     [Rib.remove_routes] — and only the added/changed atoms re-propagate
     (cache hits for everything else, including atoms restored unchanged
     after an outage).  Equivalent to rebuilding from the full atom list,
     which test_experiments checks by [Rib.equal]. *)
  let observe epochs_atoms =
    let cache = Scenario.create_result_cache () in
    let step (prev, rib) (ep : Rpi_sim.Timeline.epoch) =
      match prev with
      | None ->
          let results =
            Scenario.rerun_with_atoms_cached s cache ep.Rpi_sim.Timeline.atoms
          in
          Rpi_sim.Vantage.rib_at ~policy ~vantage:provider results
      | Some prev_ep ->
          let touched =
            List.map Rpi_bgp.Update.prefix
              (Rpi_sim.Timeline.updates_between prev_ep ep)
          in
          let rib = List.fold_left (Fun.flip Rib.remove_routes) rib touched in
          let delta = Rpi_sim.Timeline.delta_between prev_ep ep in
          let fresh =
            delta.Rpi_sim.Timeline.added
            @ List.map snd delta.Rpi_sim.Timeline.changed
          in
          let results = Scenario.rerun_with_atoms_cached s cache fresh in
          Rpi_sim.Vantage.extend_rib_at ~policy ~vantage:provider rib results
    in
    let _, observations =
      List.fold_left
        (fun (st, acc) (ep : Rpi_sim.Timeline.epoch) ->
          let rib = step st ep in
          let report =
            Export_infer.analyze s.Scenario.graph ~provider
              ~origins:(origins_of ep.Rpi_sim.Timeline.atoms) rib
          in
          let sa =
            Prefix_set.of_list
              (List.map (fun (r : Export_infer.sa_record) -> r.Export_infer.prefix)
                 report.Export_infer.sa)
          in
          let all = Prefix_set.of_list (Rib.prefixes rib) in
          ( (Some ep, rib),
            { Persistence.all_prefixes = all; sa_prefixes = sa } :: acc ))
        ((None, Rib.empty), [])
        epochs_atoms
    in
    List.rev observations
  in
  let run_window ~epochs ~churn =
    let rng = Rpi_prng.Prng.create ~seed:(config.Scenario.seed + epochs) in
    let timeline =
      Rpi_sim.Timeline.evolve rng ~graph:s.Scenario.graph ~churn ~epochs s.Scenario.atoms
    in
    observe timeline
  in
  let daily = run_window ~epochs:days ~churn:Rpi_sim.Timeline.monthly_churn in
  let hourly = run_window ~epochs:hours ~churn:Rpi_sim.Timeline.hourly_churn in
  let render_window label observations =
    let series = Persistence.series_of observations in
    let up = Persistence.uptimes observations in
    let plot =
      Series.ascii_timeseries ~labels:[ "All prefixes"; "SA prefixes" ]
        [
          List.map float_of_int series.Persistence.all_counts;
          List.map float_of_int series.Persistence.sa_counts;
        ]
    in
    let t =
      Table.create
        [ ("uptime", Table.Right); ("remaining SA", Table.Right);
          ("shifting SA->non-SA", Table.Right) ]
    in
    let bins lst k = match List.assoc_opt k lst with Some v -> v | None -> 0 in
    for k = 1 to up.Persistence.max_uptime do
      Table.add_row t
        [
          Table.cell_int k;
          Table.cell_int (bins up.Persistence.remaining_sa k);
          Table.cell_int (bins up.Persistence.shifting k);
        ]
    done;
    ( Printf.sprintf "%s\n%s%s%% of SA prefixes shifted SA->non-SA: %.1f%%\n" label plot
        (Table.render t) up.Persistence.pct_shifting,
      t,
      up.Persistence.pct_shifting )
  in
  let daily_text, daily_table, daily_shift =
    render_window (Printf.sprintf "Fig 6(a)/7(a): %d daily epochs, AS1" days) daily
  in
  let hourly_text, hourly_table, hourly_shift =
    render_window (Printf.sprintf "Fig 6(b)/7(b): %d hourly epochs, AS1" hours) hourly
  in
  mk ~id:"fig6+7" ~title:"SA persistence over time"
    ~metrics:
      [
        ("daily_epochs", fi days);
        ("hourly_epochs", fi hours);
        ("daily_pct_shifting", daily_shift);
        ("hourly_pct_shifting", hourly_shift);
      ]
    ~tables:[ daily_table; hourly_table ]
    (header "Figs. 6-7"
       "SA counts stable over a month and a day; ~1/6 of SA prefixes shift within a month, almost none within a day"
    ^ daily_text ^ hourly_text)

(* --- Churn persistence (incremental engine) --- *)

let churn_persistence ?(epochs = 240) (ctx : Context.t) =
  (* Fig. 6/7-style SA persistence, but under topology-level churn — link
     flaps, relationship migrations, announce/withdraw cycles from the
     seeded churn generator — re-solved per epoch by the incremental
     engine ([Engine.repropagate]) instead of a fresh batch propagation.
     Only the dirty cone of each event re-runs, which is what makes a
     long timeline affordable. *)
  let config =
    { Scenario.small_config with Scenario.seed = ctx.Context.scenario.Scenario.config.Scenario.seed }
  in
  let s = Scenario.build ~config () in
  let provider = Asn.of_int 1 in
  let policy = Scenario.policy_of s provider in
  let atoms = s.Scenario.atoms in
  let atom_of id = List.find (fun (a : Rpi_sim.Atom.t) -> a.Rpi_sim.Atom.id = id) atoms in
  let atom_ids = List.map (fun (a : Rpi_sim.Atom.t) -> a.Rpi_sim.Atom.id) atoms in
  let rng = Rpi_prng.Prng.create ~seed:(config.Scenario.seed + epochs) in
  let stream =
    Rpi_topo.Churn.generate rng ~graph:s.Scenario.graph ~atom_ids ~epochs
  in
  let net = s.Scenario.network in
  let st = Rpi_sim.Engine.init_state net in
  let (_ : Rpi_sim.Engine.state) =
    Rpi_sim.Engine.repropagate net st
      (List.map (fun a -> Rpi_sim.Engine.Delta.Announce a) atoms)
  in
  let n_events = ref 0 in
  let observe () =
    let results = Rpi_sim.Engine.state_results st ~retain:s.Scenario.retain in
    let rib = Rpi_sim.Vantage.rib_at ~policy ~vantage:provider results in
    let origins =
      let tbl = Asn.Table.create 64 in
      List.iter
        (fun (atom : Rpi_sim.Atom.t) ->
          let existing =
            Option.value ~default:[] (Asn.Table.find_opt tbl atom.Rpi_sim.Atom.origin)
          in
          Asn.Table.replace tbl atom.Rpi_sim.Atom.origin
            (atom.Rpi_sim.Atom.prefixes @ existing))
        (Rpi_sim.Engine.state_atoms st);
      Asn.Table.fold (fun o ps acc -> (o, ps) :: acc) tbl []
    in
    let report =
      Export_infer.analyze
        (Rpi_sim.Engine.state_graph st)
        ~provider ~origins rib
    in
    let sa =
      Prefix_set.of_list
        (List.map (fun (r : Export_infer.sa_record) -> r.Export_infer.prefix)
           report.Export_infer.sa)
    in
    let all = Prefix_set.of_list (Rib.prefixes rib) in
    { Persistence.all_prefixes = all; sa_prefixes = sa }
  in
  let observations =
    List.map
      (fun (ep : Rpi_topo.Churn.epoch) ->
        let deltas =
          List.map
            (Rpi_sim.Engine.Delta.of_event ~atom_of)
            ep.Rpi_topo.Churn.events
        in
        n_events := !n_events + List.length deltas;
        let (_ : Rpi_sim.Engine.state) = Rpi_sim.Engine.repropagate net st deltas in
        observe ())
      stream
  in
  let series = Persistence.series_of observations in
  let up = Persistence.uptimes observations in
  let plot =
    Series.ascii_timeseries ~labels:[ "All prefixes"; "SA prefixes" ]
      [
        List.map float_of_int series.Persistence.all_counts;
        List.map float_of_int series.Persistence.sa_counts;
      ]
  in
  let t =
    Table.create
      [ ("uptime", Table.Right); ("remaining SA", Table.Right);
        ("shifting SA->non-SA", Table.Right) ]
  in
  (* Long timelines make for tall histograms; aggregate the uptime axis
     into ~16 ranges (the bins are sparse — point-sampling them would
     show an empty table). *)
  let step = max 1 ((up.Persistence.max_uptime + 15) / 16) in
  let sum lst lo hi =
    List.fold_left (fun acc (k, v) -> if k >= lo && k <= hi then acc + v else acc) 0 lst
  in
  let lo = ref 1 in
  while !lo <= up.Persistence.max_uptime do
    let hi = min up.Persistence.max_uptime (!lo + step - 1) in
    Table.add_row t
      [
        (if !lo = hi then string_of_int !lo else Printf.sprintf "%d-%d" !lo hi);
        Table.cell_int (sum up.Persistence.remaining_sa !lo hi);
        Table.cell_int (sum up.Persistence.shifting !lo hi);
      ];
    lo := hi + 1
  done;
  mk ~id:"churn-persistence" ~title:"SA persistence under topology churn"
    ~metrics:
      [
        ("epochs", fi epochs);
        ("events", fi !n_events);
        ("pct_shifting", up.Persistence.pct_shifting);
        ("final_all",
         fi (match List.rev series.Persistence.all_counts with n :: _ -> n | [] -> 0));
        ("final_sa",
         fi (match List.rev series.Persistence.sa_counts with n :: _ -> n | [] -> 0));
      ]
    ~tables:[ t ]
    (header "Churn persistence"
       "(extension: Figs. 6-7 persistence machinery driven by link flaps, \
        relationship migrations and announce/withdraw cycles, re-solved \
        incrementally)"
    ^ Printf.sprintf "%d epochs, %d churn events, AS1 vantage\n" epochs !n_events
    ^ plot ^ Table.render t
    ^ Printf.sprintf "%% of SA prefixes shifted SA->non-SA: %.1f%%\n"
        up.Persistence.pct_shifting)

(* --- Fig. 9 --- *)

let fig9 (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let g = s.Scenario.graph in
  let pick_small =
    (* A low-degree Looking-Glass AS plays AS8736's role. *)
    List.fold_left
      (fun acc a ->
        match acc with
        | None -> Some a
        | Some best -> if As_graph.degree g a < As_graph.degree g best then Some a else acc)
      None s.Scenario.lg_ases
  in
  let vantages =
    List.filter_map
      (fun a -> if As_graph.mem_as g a then Some a else None)
      (List.map Asn.of_int [ 1; 3549 ])
    @ (match pick_small with Some a -> [ a ] | None -> [])
  in
  let plotted =
    List.length
      (List.filter (fun a -> Option.is_some (Scenario.lg_table s a)) vantages)
  in
  let body =
    String.concat ""
      (List.map
         (fun a ->
           match Scenario.lg_table s a with
           | None -> ""
           | Some rib ->
               let counts = Community_verify.prefix_counts rib in
               let points =
                 List.mapi (fun i (_, n) -> (float_of_int (i + 1), float_of_int n)) counts
               in
               let top =
                 List.filteri (fun i _ -> i < 5) counts
                 |> List.map (fun (nb, n) -> Printf.sprintf "%s:%d" (Asn.to_label nb) n)
                 |> String.concat "  "
               in
               Printf.sprintf "%s (degree %d): prefixes per next-hop AS, rank order\n%stop: %s\n"
                 (Asn.to_label a) (As_graph.degree g a)
                 (Series.ascii_loglog points)
                 top)
         vantages)
  in
  mk ~id:"fig9" ~title:"prefix-count rank plots"
    ~metrics:[ ("vantages_plotted", fi plotted) ]
    (header "Fig. 9"
       "rank vs announced-prefix plots: top announcers are peers/providers, the tail customers"
    ^ body)

(* --- Ablations --- *)

let ablation_curving (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let no_lp = { Rpi_bgp.Decision.default_config with Rpi_bgp.Decision.use_local_pref = false } in
  let t =
    Table.create
      [ ("Provider", Table.Left); ("prefixes", Table.Right);
        ("best changes without LP", Table.Right); ("% curving", Table.Right) ]
  in
  let pcts =
    List.filter_map
      (fun provider ->
        match Scenario.lg_table s provider with
        | None -> None
        | Some rib ->
            let total = ref 0 and changed = ref 0 in
            Rib.iter
              (fun prefix _ ->
                incr total;
                let with_lp = Rib.best rib prefix in
                let without = Rib.best ~config:no_lp rib prefix in
                match (with_lp, without) with
                | Some a, Some b ->
                    if not (Option.equal Asn.equal (Route.next_hop_as a) (Route.next_hop_as b))
                    then incr changed
                | _, _ -> ())
              rib;
            Table.add_row t
              [
                Asn.to_label provider;
                Table.cell_int !total;
                Table.cell_int !changed;
                Table.cell_pct (Dist.pct (!changed, !total));
              ];
            Some (Dist.pct (!changed, !total)))
      ctx.Context.focus_tier1
  in
  mk ~id:"ablation-curving" ~title:"decision without local pref"
    ~metrics:
      [
        ("providers", fi (List.length pcts));
        ("pct_curving_mean", if pcts = [] then 0.0 else Dist.mean pcts);
      ]
    ~tables:[ t ]
    (header "Ablation: decision without local preference"
       "(design ablation; the paper's premise is that LP overrides shortest-path)"
    ^ Table.render t)

let ablation_vantage_count (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let truth = s.Scenario.graph in
  (* Paths per collector peer. *)
  let paths_by_peer =
    Rib.fold
      (fun _ routes acc ->
        List.fold_left
          (fun acc (r : Route.t) ->
            match (r.Route.peer_as, Rpi_bgp.As_path.to_list r.Route.as_path) with
            | Some peer, (_ :: _ as hops) -> (peer, hops) :: acc
            | _, _ -> acc)
          acc routes)
      s.Scenario.collector []
  in
  let t =
    Table.create
      [ ("collector feeds", Table.Right); ("edges compared", Table.Right);
        ("accuracy", Table.Right) ]
  in
  let feed_counts = [ 1; 2; 5; 10; 20; List.length s.Scenario.collector_peers ] in
  let accuracies =
    List.map
      (fun k ->
        let keep = List.filteri (fun i _ -> i < k) s.Scenario.collector_peers in
        let paths =
          List.filter_map
            (fun (peer, hops) ->
              if List.exists (Asn.equal peer) keep then Some hops else None)
            paths_by_peer
        in
        let inferred = Rpi_relinfer.Gao.infer paths in
        let report = Rpi_relinfer.Validate.compare_graphs ~truth ~inferred in
        Table.add_row t
          [
            Table.cell_int k;
            Table.cell_int report.Rpi_relinfer.Validate.edges_compared;
            Table.cell_pct (100.0 *. Rpi_relinfer.Validate.accuracy report);
          ];
        (k, 100.0 *. Rpi_relinfer.Validate.accuracy report))
      feed_counts
  in
  let accuracy_at_full =
    match List.rev accuracies with (_, a) :: _ -> a | [] -> 0.0
  in
  mk ~id:"ablation-vantages" ~title:"inference accuracy vs feeds"
    ~metrics:
      [
        ("feed_counts", fi (List.length feed_counts));
        ("accuracy_single_feed", (match accuracies with (_, a) :: _ -> a | [] -> 0.0));
        ("accuracy_all_feeds", accuracy_at_full);
      ]
    ~tables:[ t ]
    (header "Ablation: relationship-inference accuracy vs vantage count"
       "(design ablation; the paper relies on 56 feeds being enough)"
    ^ Table.render t)

let ablation_graph_oracle (ctx : Context.t) =
  let oracle_ctx = Context.use_ground_truth_graph ctx in
  let t =
    Table.create
      [ ("Provider", Table.Left); ("% SA (inferred graph)", Table.Right);
        ("% SA (oracle graph)", Table.Right) ]
  in
  let pairs =
    List.map
      (fun provider ->
        let inferred_r = sa_report ctx provider in
        let oracle_r =
          Export_infer.analyze oracle_ctx.Context.corrected ~provider
            ~origins:oracle_ctx.Context.collector_origins
            oracle_ctx.Context.scenario.Scenario.collector
        in
        Table.add_row t
          [
            Asn.to_label provider;
            Table.cell_pct inferred_r.Export_infer.pct_sa;
            Table.cell_pct oracle_r.Export_infer.pct_sa;
          ];
        (inferred_r.Export_infer.pct_sa, oracle_r.Export_infer.pct_sa))
      ctx.Context.focus_tier1
  in
  let inferred_pcts = List.map fst pairs and oracle_pcts = List.map snd pairs in
  mk ~id:"ablation-oracle" ~title:"inferred vs oracle graph"
    ~metrics:
      [
        ("pct_sa_inferred_mean", if pairs = [] then 0.0 else Dist.mean inferred_pcts);
        ("pct_sa_oracle_mean", if pairs = [] then 0.0 else Dist.mean oracle_pcts);
      ]
    ~tables:[ t ]
    (header "Ablation: inferred vs ground-truth AS relationships"
       "(the paper argues inference error is negligible — Table 4)"
    ^ Table.render t)

(* --- Extensions --- *)

let ext_prepend (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let r = Rpi_core.Prepend_infer.analyze s.Scenario.collector in
  let t =
    Table.create
      [ ("copies", Table.Right); ("routes", Table.Right) ]
  in
  List.iter
    (fun (copies, n) -> Table.add_row t [ Table.cell_int copies; Table.cell_int n ])
    r.Rpi_core.Prepend_infer.copies_histogram;
  let truth =
    List.length
      (List.filter
         (fun (a : Rpi_sim.Atom.t) -> a.Rpi_sim.Atom.prepend_to <> [])
         s.Scenario.atoms)
  in
  let detected_origin_preps =
    List.filter (fun rcd -> rcd.Rpi_core.Prepend_infer.at_origin)
      r.Rpi_core.Prepend_infer.records
  in
  let detected_preppers =
    List.map (fun rcd -> rcd.Rpi_core.Prepend_infer.prepender) detected_origin_preps
    |> List.sort_uniq Asn.compare
  in
  let true_preppers =
    List.filter_map
      (fun (a : Rpi_sim.Atom.t) ->
        if a.Rpi_sim.Atom.prepend_to <> [] then Some a.Rpi_sim.Atom.origin else None)
      s.Scenario.atoms
    |> List.sort_uniq Asn.compare
  in
  let correct =
    List.length
      (List.filter (fun a -> List.exists (Asn.equal a) true_preppers) detected_preppers)
  in
  mk ~id:"ext-prepend" ~title:"AS-path prepending detection"
    ~metrics:
      [
        ("pct_prepended", r.Rpi_core.Prepend_infer.pct_prepended);
        ("preppers_detected", fi (List.length detected_preppers));
        ("precision_pct", Dist.pct (correct, List.length detected_preppers));
      ]
    ~tables:[ t ]
    (header "Extension: AS-path prepending"
       "(Section 2.2.2 lists prepending as the soft inbound-TE alternative; not quantified in the paper)"
    ^ Printf.sprintf "%d/%d routes at the collector carry a prepended path (%.1f%%).\n"
        r.Rpi_core.Prepend_infer.routes_prepended r.Rpi_core.Prepend_infer.routes_total
        r.Rpi_core.Prepend_infer.pct_prepended
    ^ Table.render t
    ^ Printf.sprintf
        "Oracle: %d ASs configured prepending; %d distinct origin-prependers detected, %d of them real (precision %.0f%%).\n"
        truth
        (List.length detected_preppers)
        correct
        (Dist.pct (correct, List.length detected_preppers)))

let ext_atoms (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let r = Rpi_core.Policy_atoms.infer s.Scenario.collector in
  let truth_of prefix =
    Option.map
      (fun (a : Rpi_sim.Atom.t) -> a.Rpi_sim.Atom.id)
      (Ground_truth.atom_of_prefix s prefix)
  in
  let purity = Rpi_core.Policy_atoms.purity r ~ground_truth:truth_of in
  mk ~id:"ext-atoms" ~title:"policy atoms and their causes"
    ~metrics:
      [
        ("atoms", fi r.Rpi_core.Policy_atoms.atom_count);
        ("mean_size", r.Rpi_core.Policy_atoms.mean_size);
        ("purity_pct", 100.0 *. purity);
      ]
    (header "Extension: policy atoms"
       "Afek et al. (IMW 2002): most policy atoms are created by origin routing policies (Sec 5.1.5)"
    ^ Printf.sprintf
        "%d prefixes form %d policy atoms (mean size %.2f, max %d, %d singletons).\n"
        r.Rpi_core.Policy_atoms.prefixes_total r.Rpi_core.Policy_atoms.atom_count
        r.Rpi_core.Policy_atoms.mean_size r.Rpi_core.Policy_atoms.max_size
        r.Rpi_core.Policy_atoms.singleton_count
    ^ Printf.sprintf
        "Purity against ground-truth announcement atoms: %.1f%% of inferred atoms map into a single configured atom.\n"
        (100.0 *. purity))

let ext_availability (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let t =
    Table.create
      [ ("Observer", Table.Left); ("mean potential next hops", Table.Right);
        ("mean actual next hops", Table.Right); ("availability", Table.Right);
        ("starved prefixes", Table.Right) ]
  in
  let stats =
    List.filter_map
      (fun observer ->
        match Scenario.lg_table s observer with
        | None -> None
        | Some rib ->
            let r =
              Rpi_core.Availability.analyze ctx.Context.corrected ~observer
                ~origins:ctx.Context.collector_origins rib
            in
            Table.add_row t
              [
                Asn.to_label observer;
                Table.cell_float r.Rpi_core.Availability.mean_potential;
                Table.cell_float r.Rpi_core.Availability.mean_actual;
                Table.cell_pct (100.0 *. r.Rpi_core.Availability.availability_ratio);
                Table.cell_int r.Rpi_core.Availability.starved;
              ];
            Some
              ( 100.0 *. r.Rpi_core.Availability.availability_ratio,
                r.Rpi_core.Availability.starved ))
      ctx.Context.focus_tier1
  in
  let ratios = List.map fst stats in
  let starved_total = List.fold_left (fun acc (_, s) -> acc + s) 0 stats in
  mk ~id:"ext-availability" ~title:"connectivity vs reachability"
    ~metrics:
      [
        ("observers", fi (List.length stats));
        ("availability_pct_mean", if ratios = [] then 0.0 else Dist.mean ratios);
        ("starved_total", fi starved_total);
      ]
    ~tables:[ t ]
    (header "Extension: path availability"
       "\"much less available paths in the Internet than shown in the AS connectivity graph\" (Sec 1, 5.1.2)"
    ^ Table.render t
    ^ "A starved prefix has >= 2 graph-level next hops but at most one actual route.\n")

let ext_irr_export (ctx : Context.t) =
  let r = Rpi_core.Irr_export.analyze ctx.Context.corrected ctx.Context.irr in
  let t =
    Table.create
      [ ("AS", Table.Left); ("towards", Table.Left); ("relationship", Table.Left);
        ("filter", Table.Left) ]
  in
  List.iteri
    (fun i (v : Rpi_core.Irr_export.violation) ->
      if i < 10 then
        Table.add_row t
          [
            Asn.to_label v.Rpi_core.Irr_export.asn;
            Asn.to_label v.Rpi_core.Irr_export.to_as;
            Relationship.to_string v.Rpi_core.Irr_export.rel;
            v.Rpi_core.Irr_export.announce;
          ])
    r.Rpi_core.Irr_export.violations;
  mk ~id:"ext-irr-export" ~title:"IRR export-rule audit"
    ~metrics:
      [
        ("objects", fi r.Rpi_core.Irr_export.objects_checked);
        ("leak_rules", fi (List.length r.Rpi_core.Irr_export.violations));
        ("pct_clean_objects", r.Rpi_core.Irr_export.pct_clean_objects);
      ]
    ~tables:[ t ]
    (header "Extension: IRR export audit"
       "(the paper mines imports only; exports can be audited against Sec 2.2.2's rules)"
    ^ Printf.sprintf
        "%d objects, %d classified export rules, %d leak-shaped rules; %.1f%% of objects clean.\n"
        r.Rpi_core.Irr_export.objects_checked r.Rpi_core.Irr_export.rules_checked
        (List.length r.Rpi_core.Irr_export.violations)
        r.Rpi_core.Irr_export.pct_clean_objects
    ^ Table.render t)

let ext_tiers (ctx : Context.t) =
  let s = ctx.Context.scenario in
  let classified = Tier.classify s.Scenario.graph in
  let truth = Rpi_topo.Gen.tiers_ground_truth s.Scenario.topo in
  let agree, total =
    Asn.Map.fold
      (fun a truth_tier (agree, total) ->
        match Asn.Map.find_opt a classified with
        | Some t -> ((if t = truth_tier then agree + 1 else agree), total + 1)
        | None -> (agree, total))
      truth (0, 0)
  in
  let t = Table.create [ ("tier", Table.Right); ("classified", Table.Right) ] in
  List.iter
    (fun (tier, count) -> Table.add_row t [ Table.cell_int tier; Table.cell_int count ])
    (Tier.histogram classified);
  mk ~id:"ext-tiers" ~title:"tier classification accuracy"
    ~metrics:
      [ ("agreement_pct", Dist.pct (agree, total)); ("ases_compared", fi total) ]
    ~tables:[ t ]
    (header "Extension: tier classification"
       "(the paper classifies ASs to tiers per Subramanian et al. [8])"
    ^ Table.render t
    ^ Printf.sprintf "Agreement with the generator's ground truth: %d/%d (%.1f%%).\n" agree
        total
        (Dist.pct (agree, total))
    ^ "Disagreements come from bypass links: an AS attaching above its generation class\n\
       (a Tier-3 buying from a Tier-1, a stub buying from a Tier-2) classifies one tier up —\n\
       the classifier follows the provider hierarchy, not the generator's labels.\n")

(* --- NS-BGP: pluggable decision processes --- *)

(* Two demonstrations of the Decision API.  First the stability claim:
   on the BAD GADGET dispute wheel vanilla BGP oscillates against the
   step cap while NS-BGP's per-neighbour selection converges.  Then the
   policy-characterization angle: rebuilding the same synthetic world
   under either decision process and comparing the SA-prefix share each
   Tier-1 provider exhibits (the Table 5 statistic) shows how much of the
   paper's headline signal is an artifact of one-best-route export. *)
let ns_bgp (ctx : Context.t) =
  let module Engine = Rpi_sim.Engine in
  let module Decision = Rpi_sim.Decision in
  let module Gadget = Rpi_sim.Gadget in
  let graph, import = Gadget.bad_gadget () in
  let network = Engine.prepare ~graph ~import () in
  let retain = Asn.Set.of_list (As_graph.ases graph) in
  let origin = Asn.of_int 64500 in
  let atom =
    Rpi_sim.Atom.vanilla ~id:0 ~origin
      [ Prefix.of_string_exn "192.0.2.0/24" ]
  in
  let vanilla = Engine.propagate network ~retain atom in
  let ns = Engine.propagate network ~retain ~decision:Decision.neighbor_specific atom in
  let gadget_t =
    Table.create
      [ ("decision process", Table.Left); ("converged", Table.Left);
        ("steps", Table.Right) ]
  in
  List.iter
    (fun (name, (r : Engine.result)) ->
      Table.add_row gadget_t
        [
          name;
          (if r.Engine.converged then "yes" else "no");
          Table.cell_int r.Engine.steps;
        ])
    [ ("vanilla", vanilla); ("neighbor-specific", ns) ];
  (* The same world twice, once per decision process. *)
  let seed = ctx.Context.scenario.Scenario.config.Scenario.seed in
  let config = { Scenario.small_config with Scenario.seed } in
  let base = Scenario.build ~config () in
  let nsb = Scenario.build ~config ~decision:Decision.neighbor_specific () in
  let share (s : Scenario.t) provider =
    let origins = Export_infer.origins_of_rib s.Scenario.collector in
    let viewpoint =
      Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector
    in
    (Export_infer.analyze s.Scenario.graph ~provider ~origins viewpoint)
      .Export_infer.pct_sa
  in
  let providers = base.Scenario.topo.Rpi_topo.Gen.tier1 in
  let sa_t =
    Table.create
      [ ("AS", Table.Left); ("% SA (vanilla)", Table.Right);
        ("% SA (NS-BGP)", Table.Right) ]
  in
  let pairs =
    List.map
      (fun p ->
        let v = share base p and n = share nsb p in
        Table.add_row sa_t [ Asn.to_label p; Table.cell_pct v; Table.cell_pct n ];
        (v, n))
      providers
  in
  let v_mean = Dist.mean (List.map fst pairs) in
  let n_mean = Dist.mean (List.map snd pairs) in
  mk ~id:"ns-bgp" ~title:"NS-BGP decision process vs vanilla"
    ~metrics:
      [
        ("gadget_vanilla_converged", if vanilla.Engine.converged then 1.0 else 0.0);
        ("gadget_ns_converged", if ns.Engine.converged then 1.0 else 0.0);
        ("gadget_ns_steps", fi ns.Engine.steps);
        ("sa_pct_vanilla_mean", v_mean);
        ("sa_pct_ns_mean", n_mean);
      ]
    ~tables:[ gadget_t; sa_t ]
    (header "NS-BGP"
       "(extension: Wang et al. propose per-neighbour route selection; the \
        dispute wheel that oscillates under vanilla BGP converges under it)"
    ^ Table.render gadget_t
    ^ "Tier-1 SA-prefix share when the same world runs under either decision process:\n"
    ^ Table.render sa_t
    ^ Printf.sprintf "Mean Tier-1 SA share: %.2f%% vanilla vs %.2f%% NS-BGP.\n"
        v_mean n_mean)

let stability ?(seeds = [ 7; 19; 1031 ]) (ctx : Context.t) =
  ignore ctx;
  let t =
    Table.create
      [ ("seed", Table.Right); ("typical pref median", Table.Right);
        ("Tier-1 SA share", Table.Right); ("inference accuracy", Table.Right) ]
  in
  let rows =
    List.map
      (fun seed ->
        let config = { Scenario.small_config with Scenario.seed } in
        let c = Context.create ~config () in
        let s = c.Context.scenario in
        let typical_median =
          Dist.median
            (List.map
               (fun (a, rib) ->
                 (Import_infer.analyze c.Context.corrected ~vantage:a rib)
                   .Import_infer.pct_typical)
               s.Scenario.lg_tables)
        in
        let sa_shares =
          List.map
            (fun provider ->
              let viewpoint =
                Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector
              in
              (Export_infer.analyze c.Context.corrected ~provider
                 ~origins:c.Context.collector_origins viewpoint)
                .Export_infer.pct_sa)
            s.Scenario.topo.Rpi_topo.Gen.tier1
        in
        let accuracy =
          Rpi_relinfer.Validate.accuracy
            (Rpi_relinfer.Validate.compare_graphs ~truth:s.Scenario.graph
               ~inferred:c.Context.corrected)
        in
        Table.add_row t
          [
            Table.cell_int seed;
            Table.cell_pct ~decimals:2 typical_median;
            Table.cell_pct (Dist.mean sa_shares);
            Table.cell_pct (100.0 *. accuracy);
          ];
        (typical_median, 100.0 *. accuracy))
      seeds
  in
  let medians = List.map fst rows and accs = List.map snd rows in
  mk ~id:"stability" ~title:"headline metrics across seeds"
    ~metrics:
      [
        ("seeds", fi (List.length seeds));
        ("typical_median_min", Option.value ~default:0.0 (Dist.min_value medians));
        ("accuracy_min", Option.value ~default:0.0 (Dist.min_value accs));
      ]
    ~tables:[ t ]
    (header "Stability across seeds"
       "(robustness check: the qualitative bands must hold in freshly generated worlds)"
    ^ Table.render t
    ^ "Expected bands: typical preference > 90%, Tier-1 SA share in 5..45%, accuracy > 93%.\n")

(* Cost hints: measured elapsed_s on the default scenario (see
   BENCH_results.json); only their relative order matters. *)
let all =
  [
    { id = "table1"; title = "data sources"; cost = 0.004; run = table1 };
    { id = "table2"; title = "typical local preference (BGP tables)"; cost = 0.102; run = table2 };
    { id = "table3"; title = "typical local preference (IRR)"; cost = 0.002; run = table3 };
    { id = "table4"; title = "relationship verification via communities"; cost = 0.117; run = table4 };
    { id = "table5"; title = "SA-prefix share per provider"; cost = 0.517; run = table5 };
    { id = "table6"; title = "per-customer SA share"; cost = 0.014; run = table6 };
    { id = "table7"; title = "SA-prefix verification"; cost = 0.202; run = table7 };
    { id = "table8"; title = "multihoming of SA origins"; cost = 0.001; run = table8 };
    { id = "table9"; title = "splitting/aggregation vs SA"; cost = 0.028; run = table9 };
    { id = "table10"; title = "peer export completeness"; cost = 0.377; run = table10 };
    { id = "case3"; title = "announce/withhold split to direct providers"; cost = 0.267; run = case3 };
    { id = "fig2"; title = "local-pref consistency with next hop"; cost = 0.728; run = fig2 };
    { id = "fig6+7"; title = "SA persistence over time"; cost = 1.034; run = (fun ctx -> fig6_fig7 ctx) };
    { id = "churn-persistence"; title = "SA persistence under topology churn"; cost = 1.5; run = (fun ctx -> churn_persistence ctx) };
    { id = "fig9"; title = "prefix-count rank plots"; cost = 0.009; run = fig9 };
    { id = "ablation-curving"; title = "decision without local pref"; cost = 0.025; run = ablation_curving };
    { id = "ablation-vantages"; title = "inference accuracy vs feeds"; cost = 0.756; run = ablation_vantage_count };
    { id = "ablation-oracle"; title = "inferred vs oracle graph"; cost = 0.073; run = ablation_graph_oracle };
    { id = "ext-prepend"; title = "AS-path prepending detection"; cost = 0.034; run = ext_prepend };
    { id = "ext-atoms"; title = "policy atoms and their causes"; cost = 0.316; run = ext_atoms };
    { id = "ext-availability"; title = "connectivity vs reachability"; cost = 0.070; run = ext_availability };
    { id = "ext-irr-export"; title = "IRR export-rule audit"; cost = 0.001; run = ext_irr_export };
    { id = "ext-tiers"; title = "tier classification accuracy"; cost = 0.002; run = ext_tiers };
    { id = "ns-bgp"; title = "NS-BGP decision process vs vanilla"; cost = 1.2; run = ns_bgp };
    { id = "stability"; title = "headline metrics across seeds"; cost = 2.481; run = (fun ctx -> stability ctx) };
  ]

let find id = List.find_opt (fun e -> String.equal e.id id) all

let run_all ctx =
  String.concat "\n" (List.map (fun e -> (e.run ctx).rendered) all)
