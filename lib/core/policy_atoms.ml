module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route

type atom = {
  prefixes : Prefix.t list;
  origin : Asn.t option;
  signature_size : int;
}

type report = {
  prefixes_total : int;
  atoms : atom list;
  atom_count : int;
  mean_size : float;
  max_size : int;
  singleton_count : int;
}

let signature routes =
  (* One (feed, path) pair per candidate, sorted: the prefix's routing
     fingerprint across vantages. *)
  routes
  |> List.filter_map (fun (r : Route.t) ->
         match r.Route.peer_as with
         | Some feed ->
             Some (Asn.to_string feed ^ ">" ^ Rpi_bgp.As_path.to_string r.Route.as_path)
         | None -> None)
  |> List.sort String.compare
  |> String.concat "|"

let infer rib =
  let groups : (string, Prefix.t list) Hashtbl.t = Hashtbl.create 256 in
  let total = ref 0 in
  Rib.iter
    (fun prefix routes ->
      incr total;
      let key = signature routes in
      Hashtbl.replace groups key
        (prefix :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
    rib;
  let atoms =
    Hashtbl.fold
      (fun _ prefixes acc ->
        let prefixes = List.sort Prefix.compare prefixes in
        let origins =
          List.filter_map
            (fun p ->
              match Rib.best rib p with
              | Some best -> Route.origin_as best
              | None -> None)
            prefixes
          |> List.sort_uniq Asn.compare
        in
        let origin =
          match origins with
          | [ o ] -> Some o
          | [] | _ :: _ :: _ -> None
        in
        let signature_size =
          match prefixes with
          | p :: _ -> List.length (Rib.candidates rib p)
          | [] -> 0
        in
        { prefixes; origin; signature_size } :: acc)
      groups []
    (* Decorate with the size so the comparator never walks a prefix
       list; List.sort is stable, so ties keep their order either way. *)
    |> List.map (fun a -> (List.length a.prefixes, a))
    |> List.sort (fun (la, _) (lb, _) -> Int.compare lb la)
    |> List.map snd
  in
  let sizes = List.map (fun a -> List.length a.prefixes) atoms in
  {
    prefixes_total = !total;
    atoms;
    atom_count = List.length atoms;
    mean_size =
      (if atoms = [] then 0.0
       else float_of_int !total /. float_of_int (List.length atoms));
    max_size = List.fold_left max 0 sizes;
    singleton_count = List.length (List.filter (fun s -> s = 1) sizes);
  }

let purity report ~ground_truth =
  let pure, scored =
    List.fold_left
      (fun (pure, scored) atom ->
        let ids = List.filter_map ground_truth atom.prefixes in
        if List.length ids <> List.length atom.prefixes then (pure, scored)
        else begin
          match List.sort_uniq Int.compare ids with
          | [ _ ] -> (pure + 1, scored + 1)
          | [] | _ :: _ :: _ -> (pure, scored + 1)
        end)
      (0, 0) report.atoms
  in
  if scored = 0 then 1.0 else float_of_int pure /. float_of_int scored
