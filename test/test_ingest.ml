(* The incremental engine against its batch oracles: every State report
   must equal the corresponding from-scratch analysis of the same table,
   and Feed's diff/codec must round-trip streams exactly. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module Update = Rpi_bgp.Update
module As_path = Rpi_bgp.As_path
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module As_graph = Rpi_topo.As_graph
module Scenario = Rpi_dataset.Scenario
module Export_infer = Rpi_core.Export_infer
module Import_infer = Rpi_core.Import_infer
module Peer_export = Rpi_core.Peer_export
module Feed = Rpi_ingest.Feed
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render

let asn = Asn.of_int
let p s = Prefix.of_string_exn s
let js = Rpi_json.to_string

(* A small fixed vantage world: AS100's table, neighbours classified by
   the graph, with local, customer, peer and provider routes. *)
let graph () =
  let v = asn 100 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:v ~customer:(asn 10) in
  let g = As_graph.add_p2c g ~provider:(asn 10) ~customer:(asn 11) in
  let g = As_graph.add_p2p g v (asn 20) in
  let g = As_graph.add_p2c g ~provider:(asn 30) ~customer:v in
  let g = As_graph.add_p2c g ~provider:(asn 20) ~customer:(asn 11) in
  g

let route ?(lp = 100) ?peer ~rid path prefix =
  let hops = List.map asn path in
  Route.make ~prefix
    ~next_hop:(Ipv4.of_octets 192 0 2 rid)
    ~as_path:(As_path.of_list hops) ~local_pref:lp
    ~router_id:(Ipv4.of_octets 192 0 2 rid)
    ?peer_as:(Option.map asn peer) ()

let local_route prefix =
  Route.make ~prefix
    ~next_hop:(Ipv4.of_int32_exn 0)
    ~as_path:As_path.empty ~source:Route.Local
    ~router_id:(Ipv4.of_int32_exn 1)
    ()

let base_routes () =
  [
    (* customer-routed prefix of customer 11 (via customer 10) *)
    route ~peer:10 ~rid:1 ~lp:120 [ 10; 11 ] (p "10.11.0.0/16");
    (* same prefix also via peer 20, lower preference *)
    route ~peer:20 ~rid:2 ~lp:90 [ 20; 11 ] (p "10.11.0.0/16");
    (* SA prefix: customer 11 only reachable via peer 20 *)
    route ~peer:20 ~rid:2 ~lp:90 [ 20; 11 ] (p "10.12.0.0/16");
    (* provider route for an unrelated origin *)
    route ~peer:30 ~rid:3 ~lp:80 [ 30; 40 ] (p "40.0.0.0/8");
    (* peer 20's own prefix, announced directly *)
    route ~peer:20 ~rid:2 ~lp:90 [ 20 ] (p "20.0.0.0/8");
    (* the vantage's own prefix *)
    local_route (p "100.64.0.0/16");
  ]

let check_matches_batch ~msg g vantage state =
  let rib = State.rib state in
  Alcotest.(check string)
    (msg ^ ": stats json")
    (js (Render.stats_of_rib rib))
    (js (Render.stats_of_state state));
  let batch_sa =
    Export_infer.analyze g ~provider:vantage
      ~origins:(Export_infer.origins_of_rib rib)
      rib
  in
  Alcotest.(check string)
    (msg ^ ": sa json")
    (js (Render.sa ~viewpoint:"live" batch_sa))
    (js (Render.sa ~viewpoint:"live" (State.sa_report state)));
  Alcotest.(check string)
    (msg ^ ": import json")
    (js (Render.import_pref (Import_infer.analyze g ~vantage rib)))
    (js (Render.import_pref (State.import_report state)));
  Alcotest.(check string)
    (msg ^ ": peer json")
    (js (Render.peer_export (Peer_export.analyze g ~vantage rib)))
    (js (Render.peer_export (State.peer_report state)))

let test_state_matches_batch () =
  let g = graph () in
  let vantage = asn 100 in
  let state = State.create ~graph:g ~vantage () in
  let announce r = Update.announce ~from_as:(Option.value ~default:vantage (Option.map Fun.id r.Route.peer_as)) ~to_as:vantage r in
  List.iter (fun r -> State.apply state (announce r)) (base_routes ());
  check_matches_batch ~msg:"after announces" g vantage state;
  (* SA prefix classification is queryable per prefix *)
  (match State.sa_status state (p "10.12.0.0/16") with
  | Export_infer.Sa_prefix { next_hop; _ } ->
      Alcotest.(check int) "sa via peer 20" 20 (Asn.to_int next_hop)
  | Export_infer.Customer_route | Export_infer.Unreachable ->
      Alcotest.fail "10.12.0.0/16 should be selectively announced");
  (* mutate: withdraw the customer route, the prefix flips to SA via 20 *)
  State.apply state
    (Update.withdraw ~from_as:(asn 10) ~to_as:vantage (p "10.11.0.0/16"));
  check_matches_batch ~msg:"after withdraw" g vantage state;
  (match State.sa_status state (p "10.11.0.0/16") with
  | Export_infer.Sa_prefix _ -> ()
  | Export_infer.Customer_route | Export_infer.Unreachable ->
      Alcotest.fail "10.11.0.0/16 should flip to SA once the customer path is gone");
  (* duplicate announce and spurious withdraw are no-ops *)
  let before = js (Render.stats_of_state state) in
  State.apply state
    (Update.announce ~from_as:(asn 20) ~to_as:vantage
       (route ~peer:20 ~rid:2 ~lp:90 [ 20; 11 ] (p "10.12.0.0/16")));
  State.apply state
    (Update.withdraw ~from_as:(asn 77) ~to_as:vantage (p "10.12.0.0/16"));
  Alcotest.(check string) "idempotent faults" before (js (Render.stats_of_state state));
  check_matches_batch ~msg:"after faults" g vantage state;
  (* withdraw the local route through the feed convention *)
  State.apply state (Update.withdraw ~from_as:vantage ~to_as:vantage (p "100.64.0.0/16"));
  check_matches_batch ~msg:"after local withdraw" g vantage state;
  Alcotest.(check bool)
    "local candidates are gone" true
    (Rib.candidates (State.rib state) (p "100.64.0.0/16") = [])

let test_fixed_origins_unreachable () =
  let g = graph () in
  let vantage = asn 100 in
  let origins = [ (asn 11, [ p "10.11.0.0/16"; p "10.13.0.0/16" ]) ] in
  let state = State.create ~graph:g ~vantage ~origins:(State.Fixed origins) () in
  State.apply state
    (Update.announce ~from_as:(asn 10) ~to_as:vantage
       (route ~peer:10 ~rid:1 ~lp:120 [ 10; 11 ] (p "10.11.0.0/16")));
  let report = State.sa_report state in
  let batch =
    Export_infer.analyze g ~provider:vantage ~origins (State.rib state)
  in
  Alcotest.(check string)
    "fixed-origin sa json"
    (js (Render.sa ~viewpoint:"live" batch))
    (js (Render.sa ~viewpoint:"live" report));
  Alcotest.(check int) "absent prefix counted unreachable" 1
    report.Export_infer.unreachable

let test_feed_diff_roundtrip () =
  let vantage = asn 100 in
  let old_rib = Rib.of_routes (base_routes ()) in
  let new_rib =
    Rib.of_routes
      ([
         (* changed attributes on an existing session *)
         route ~peer:10 ~rid:1 ~lp:110 [ 10; 11 ] (p "10.11.0.0/16");
         (* session gone for 10.12/16; new prefix appears *)
         route ~peer:30 ~rid:3 ~lp:80 [ 30; 41 ] (p "41.0.0.0/8");
         route ~peer:20 ~rid:2 ~lp:90 [ 20 ] (p "20.0.0.0/8");
         (* local prefix replaced by a different one *)
         local_route (p "100.65.0.0/16");
       ])
  in
  let stream = Feed.diff ~vantage ~old_rib new_rib in
  let replayed = Feed.apply_all ~vantage stream old_rib in
  Alcotest.(check bool) "diff replays to the target table" true
    (Rib.equal replayed new_rib);
  Alcotest.(check bool) "empty diff on equal tables" true
    (Feed.diff ~vantage ~old_rib:new_rib new_rib = []);
  (* determinism *)
  Alcotest.(check string) "diff is deterministic"
    (Feed.render_stream stream)
    (Feed.render_stream (Feed.diff ~vantage ~old_rib new_rib))

let test_stream_codec () =
  let vantage = asn 100 in
  let stream =
    Feed.diff ~vantage ~old_rib:Rib.empty (Rib.of_routes (base_routes ()))
  in
  let text = Feed.render_stream stream in
  match Feed.parse_stream text with
  | Error e -> Alcotest.failf "parse_stream: %s" e
  | Ok parsed ->
      Alcotest.(check int) "same length" (List.length stream) (List.length parsed);
      Alcotest.(check string) "ndjson round-trips byte-identically" text
        (Feed.render_stream parsed);
      (match Feed.parse_stream "{\"type\":\"announce\"}\n" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed update must not parse");
      (match Feed.parse_stream "not json\n" with
      | Error e ->
          Alcotest.(check bool) "error carries line number" true
            (String.length e > 0 && String.starts_with ~prefix:"line 1" e)
      | Ok _ -> Alcotest.fail "garbage must not parse")

(* The scenario-scale cross-check: a provider's viewpoint feed evolved
   epoch by epoch; the state must agree with the batch pipeline at the
   final epoch. *)
let test_scenario_replay () =
  let scenario = Scenario.build ~config:Scenario.small_config () in
  let g = scenario.Scenario.graph in
  let collector = scenario.Scenario.collector in
  let provider =
    match scenario.Scenario.collector_peers with
    | peer :: _ -> peer
    | [] -> Alcotest.fail "scenario has no collector peers"
  in
  let viewpoint = Export_infer.viewpoint_of_feed ~feed:provider collector in
  let origins = Export_infer.origins_of_rib collector in
  let state =
    State.create ~graph:g ~vantage:provider ~origins:(State.Fixed origins) ()
  in
  State.apply_all state (Feed.diff ~vantage:provider ~old_rib:Rib.empty viewpoint);
  Alcotest.(check bool) "replayed viewpoint table" true
    (Rib.equal (State.rib state) viewpoint);
  let batch = Export_infer.analyze g ~provider ~origins viewpoint in
  Alcotest.(check string) "scenario sa json"
    (js (Render.sa ~viewpoint:"own-feed" batch))
    (js (Render.sa ~viewpoint:"own-feed" (State.sa_report state)));
  let c = State.counters state in
  Alcotest.(check bool) "work was incremental (one refresh)" true
    (c.State.refreshes >= 1 && c.State.dirty_pairs = 0)

let () =
  Alcotest.run "rpi_ingest"
    [
      ( "state",
        [
          Alcotest.test_case "matches batch oracles" `Quick test_state_matches_batch;
          Alcotest.test_case "fixed origins" `Quick test_fixed_origins_unreachable;
          Alcotest.test_case "scenario replay" `Quick test_scenario_replay;
        ] );
      ( "feed",
        [
          Alcotest.test_case "diff round-trip" `Quick test_feed_diff_roundtrip;
          Alcotest.test_case "ndjson codec" `Quick test_stream_codec;
        ] );
    ]
