(* Golden-pinned headline metrics for the seed-42 default scenario.

   goldens.json pins every metric of the three headline experiments
   (table2: typical local preference, table5: SA-prefix share, table10:
   peer export completeness).  The whole pipeline sits under these
   numbers — topology generation, routing simulation, dump serialization,
   relationship/import/export inference — so an unintended behaviour
   change anywhere shows up as a drifted metric here even when every
   unit test still passes.

   Regenerating after an INTENDED change:

     dune exec bin/experiments.exe -- run table2 table5 table10 --jobs 1 --json

   then copy each experiment's "metrics" object into test/goldens.json
   (keep "seed": 42).  Regenerate only when the change is understood and
   deliberate — that is the point of a golden. *)

module Scenario = Rpi_dataset.Scenario
module Context = Rpi_experiments.Context
module Exp = Rpi_experiments.Exp
module Runner = Rpi_runner.Runner

let goldens_path = "goldens.json"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* [(experiment id, [(metric name, value)])] straight out of goldens.json. *)
let load_goldens () =
  match Rpi_json.of_string (read_file goldens_path) with
  | Error e -> Alcotest.failf "goldens.json does not parse: %s" e
  | Ok (Rpi_json.Obj fields) -> begin
      (match List.assoc_opt "seed" fields with
      | Some (Rpi_json.Int 42) -> ()
      | _ -> Alcotest.fail "goldens.json must record \"seed\": 42");
      match List.assoc_opt "experiments" fields with
      | Some (Rpi_json.Obj exps) ->
          List.map
            (fun (id, metrics) ->
              match metrics with
              | Rpi_json.Obj ms ->
                  ( id,
                    List.map
                      (fun (name, v) ->
                        match v with
                        | Rpi_json.Float f -> (name, f)
                        | Rpi_json.Int i -> (name, float_of_int i)
                        | _ ->
                            Alcotest.failf "golden %s.%s is not a number" id name)
                      ms )
              | _ -> Alcotest.failf "golden %s is not an object" id)
            exps
      | _ -> Alcotest.fail "goldens.json lacks an \"experiments\" object"
    end
  | Ok _ -> Alcotest.fail "goldens.json is not an object"

let experiment id =
  match Exp.find id with
  | Some e -> e
  | None -> Alcotest.failf "no experiment %S in the catalogue" id

(* Relative tolerance: the metrics are pure functions of the seed, so in
   practice they match to the last bit, but a float-printing round trip
   through goldens.json must never be the thing that fails the build. *)
let close expected actual =
  let scale = Float.max 1.0 (Float.abs expected) in
  Float.abs (expected -. actual) <= 1e-6 *. scale

let test_headline_metrics () =
  let goldens = load_goldens () in
  if goldens = [] then Alcotest.fail "goldens.json pins no experiments";
  let ctx = Context.create ~config:Scenario.default_config () in
  let report = Runner.run ~jobs:1 ctx (List.map (fun (id, _) -> experiment id) goldens) in
  List.iter2
    (fun (id, expected_metrics) { Runner.outcome; _ } ->
      Alcotest.(check string) "outcome id" id outcome.Exp.id;
      List.iter
        (fun (name, expected) ->
          match List.assoc_opt name outcome.Exp.metrics with
          | None -> Alcotest.failf "%s: metric %S disappeared" id name
          | Some actual ->
              if not (close expected actual) then
                Alcotest.failf "%s: metric %S drifted: golden %.17g, got %.17g" id
                  name expected actual)
        expected_metrics;
      List.iter
        (fun (name, _) ->
          if not (List.mem_assoc name expected_metrics) then
            Alcotest.failf
              "%s: new metric %S is not pinned — regenerate goldens.json" id name)
        outcome.Exp.metrics)
    goldens report.Runner.results

let () =
  Alcotest.run "goldens"
    [
      ( "headline-metrics",
        [ Alcotest.test_case "table2/table5/table10 vs goldens.json" `Slow
            test_headline_metrics ] );
    ]
