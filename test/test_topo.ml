module Asn = Rpi_bgp.Asn
module Relationship = Rpi_topo.Relationship
module As_graph = Rpi_topo.As_graph
module Paths = Rpi_topo.Paths
module Tier = Rpi_topo.Tier
module Gen = Rpi_topo.Gen
module Prng = Rpi_prng.Prng

let asn = Asn.of_int

(* A small reference topology, the paper's Fig. 1 extended:
   t1a, t1b: Tier-1 clique; m1, m2 mid-tier customers of the Tier-1s;
   s1 stub below m1, s2 multihomed stub below m1 and m2. *)
let sample () =
  let t1a = asn 10 and t1b = asn 20 and m1 = asn 30 and m2 = asn 40 in
  let s1 = asn 50 and s2 = asn 60 in
  let g = As_graph.empty in
  let g = As_graph.add_p2p g t1a t1b in
  let g = As_graph.add_p2c g ~provider:t1a ~customer:m1 in
  let g = As_graph.add_p2c g ~provider:t1b ~customer:m2 in
  let g = As_graph.add_p2p g m1 m2 in
  let g = As_graph.add_p2c g ~provider:m1 ~customer:s1 in
  let g = As_graph.add_p2c g ~provider:m1 ~customer:s2 in
  let g = As_graph.add_p2c g ~provider:m2 ~customer:s2 in
  (g, t1a, t1b, m1, m2, s1, s2)

let test_relationship_invert () =
  Alcotest.(check string) "customer<->provider" "provider"
    (Relationship.to_string (Relationship.invert Relationship.Customer));
  Alcotest.(check string) "peer fixed" "peer"
    (Relationship.to_string (Relationship.invert Relationship.Peer));
  List.iter
    (fun r ->
      Alcotest.(check bool) "double inversion" true
        (Relationship.equal r (Relationship.invert (Relationship.invert r))))
    Relationship.all

let test_graph_symmetry () =
  let g, t1a, _, m1, _, _, _ = sample () in
  Alcotest.(check bool) "a sees customer" true
    (As_graph.relationship g t1a m1 = Some Relationship.Customer);
  Alcotest.(check bool) "b sees provider" true
    (As_graph.relationship g m1 t1a = Some Relationship.Provider);
  Alcotest.(check bool) "consistency" true
    (match As_graph.check_consistency g with Ok () -> true | Error _ -> false)

let test_graph_queries () =
  let g, t1a, t1b, m1, m2, s1, s2 = sample () in
  Alcotest.(check int) "as count" 6 (As_graph.as_count g);
  Alcotest.(check int) "edge count" 7 (As_graph.edge_count g);
  Alcotest.(check (list int)) "customers of m1"
    [ Asn.to_int s1; Asn.to_int s2 ]
    (List.map Asn.to_int (As_graph.customers g m1));
  Alcotest.(check (list int)) "providers of s2"
    [ Asn.to_int m1; Asn.to_int m2 ]
    (List.map Asn.to_int (As_graph.providers g s2));
  Alcotest.(check (list int)) "peers of t1a" [ Asn.to_int t1b ]
    (List.map Asn.to_int (As_graph.peers g t1a));
  Alcotest.(check int) "degree of m1" 4 (As_graph.degree g m1);
  Alcotest.(check bool) "s2 multihomed" true (As_graph.is_multihomed g s2);
  Alcotest.(check bool) "s1 single-homed" false (As_graph.is_multihomed g s1);
  Alcotest.(check bool) "s1 stub" true (As_graph.is_stub g s1);
  Alcotest.(check bool) "m1 not stub" false (As_graph.is_stub g m2)

let test_graph_self_loop () =
  Alcotest.check_raises "self loop rejected"
    (Invalid_argument "As_graph.add_edge: self-loop") (fun () ->
      ignore (As_graph.add_p2p As_graph.empty (asn 1) (asn 1)))

let test_graph_edges_roundtrip () =
  let g, _, _, _, _, _, _ = sample () in
  let g' = As_graph.of_edges (As_graph.to_edges g) in
  Alcotest.(check int) "same edges" (As_graph.edge_count g) (As_graph.edge_count g');
  List.iter
    (fun (a, b, rel) ->
      Alcotest.(check bool) "label preserved" true
        (As_graph.relationship g' a b = Some rel))
    (As_graph.to_edges g)

let test_graph_text_roundtrip () =
  let g, _, _, _, _, _, _ = sample () in
  match As_graph.parse_edges (As_graph.render_edges g) with
  | Error e -> Alcotest.fail e
  | Ok g' ->
      Alcotest.(check int) "edges preserved" (As_graph.edge_count g) (As_graph.edge_count g');
      List.iter
        (fun (a, b, rel) ->
          Alcotest.(check bool) "label preserved" true
            (As_graph.relationship g' a b = Some rel))
        (As_graph.to_edges g)

let test_graph_parse_errors () =
  Alcotest.(check bool) "junk rejected" true
    (match As_graph.parse_edges "AS1 AS2\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "bad relationship rejected" true
    (match As_graph.parse_edges "AS1 AS2 friend\n" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "comments fine" true
    (match As_graph.parse_edges "# header\n\nAS1 AS2 peer\n" with
    | Ok g -> As_graph.edge_count g = 1
    | Error _ -> false)

let test_graph_remove_edge () =
  let g, t1a, t1b, _, _, _, _ = sample () in
  let g = As_graph.remove_edge g t1a t1b in
  Alcotest.(check bool) "edge gone" false (As_graph.mem_edge g t1a t1b);
  Alcotest.(check bool) "reverse gone" false (As_graph.mem_edge g t1b t1a)

let test_customer_paths () =
  let g, t1a, t1b, m1, _, s1, s2 = sample () in
  Alcotest.(check bool) "direct" true (Paths.is_direct_customer g ~provider:m1 s1);
  Alcotest.(check bool) "indirect" true (Paths.is_customer g ~provider:t1a s1);
  Alcotest.(check bool) "not through peer" false (Paths.is_customer g ~provider:t1a (asn 40));
  Alcotest.(check bool) "t1b reaches s2" true (Paths.is_customer g ~provider:t1b s2);
  Alcotest.(check (option (list int))) "path found"
    (Some [ Asn.to_int t1a; Asn.to_int m1; Asn.to_int s1 ])
    (Option.map (List.map Asn.to_int) (Paths.customer_path g ~provider:t1a s1));
  Alcotest.(check bool) "self is not its own customer" false
    (Paths.is_customer g ~provider:t1a t1a)

let test_customer_cone () =
  let g, t1a, _, m1, _, _, _ = sample () in
  Alcotest.(check int) "cone of t1a" 3 (Paths.customer_cone_size g t1a);
  Alcotest.(check int) "cone of m1" 2 (Paths.customer_cone_size g m1);
  Alcotest.(check int) "cone of stub" 0 (Paths.customer_cone_size g (asn 50))

let test_valley_free () =
  let g, t1a, t1b, m1, m2, s1, s2 = sample () in
  (* Receiver-first paths. *)
  let vf path = Paths.is_valley_free g path in
  Alcotest.(check bool) "up only" true (vf [ m1; s1 ]);
  Alcotest.(check bool) "up peer down" true (vf [ t1a; t1b; m2; s2 ]);
  Alcotest.(check bool) "down after peer ok" true (vf [ m2; m1; s1 ]);
  (* Invalid: two peering edges (t1a-t1b then m1-m2 after descent is fine;
     construct peer after descent). *)
  Alcotest.(check bool) "peer after descent invalid" false (vf [ t1a; m1; m2 ]);
  (* Valley: descend to the stub and climb back out. *)
  Alcotest.(check bool) "valley invalid" false (vf [ m1; s2; m2 ]);
  Alcotest.(check bool) "unknown edge invalid" false (vf [ t1a; asn 999 ])

let test_classify_path () =
  let g, t1a, t1b, m1, _, s1, _ = sample () in
  Alcotest.(check bool) "customer route" true
    (Paths.classify_path g ~observer:t1a [ m1; s1 ] = Some Relationship.Customer);
  Alcotest.(check bool) "peer route" true
    (Paths.classify_path g ~observer:t1a [ t1b ] = Some Relationship.Peer);
  Alcotest.(check bool) "empty path" true (Paths.classify_path g ~observer:t1a [] = None)

let test_is_customer_path () =
  let g, t1a, _, m1, m2, s1, _ = sample () in
  Alcotest.(check bool) "descending chain" true (Paths.is_customer_path g [ t1a; m1; s1 ]);
  Alcotest.(check bool) "peer hop breaks it" false (Paths.is_customer_path g [ m1; m2 ])

let test_provider_chain () =
  let g, t1a, t1b, _, _, s1, _ = sample () in
  Alcotest.(check bool) "s1 climbs to t1a" true
    (Paths.provider_chain_exists g ~from_as:s1 t1a);
  Alcotest.(check bool) "s1 cannot climb to t1b" false
    (Paths.provider_chain_exists g ~from_as:s1 t1b)

let test_tier_classify () =
  let g, t1a, t1b, m1, m2, s1, s2 = sample () in
  let tiers = Tier.classify g in
  let tier a = Asn.Map.find a tiers in
  Alcotest.(check int) "t1a tier 1" 1 (tier t1a);
  Alcotest.(check int) "t1b tier 1" 1 (tier t1b);
  Alcotest.(check int) "m1 tier 2" 2 (tier m1);
  Alcotest.(check int) "m2 tier 2" 2 (tier m2);
  Alcotest.(check int) "s1 tier 3" 3 (tier s1);
  Alcotest.(check int) "s2 tier 3" 3 (tier s2);
  Alcotest.(check (list int)) "tier1 list"
    [ Asn.to_int t1a; Asn.to_int t1b ]
    (List.map Asn.to_int (Tier.tier1_ases g));
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 2); (2, 2); (3, 2) ]
    (Tier.histogram tiers)

(* --- Generator --- *)

let small_config =
  {
    Gen.default_config with
    Gen.n_tier1 = 5;
    n_tier2 = 20;
    n_tier3 = 60;
    n_stub = 150;
  }

let test_gen_counts () =
  let rng = Prng.create ~seed:1 in
  let t = Gen.generate ~config:small_config rng in
  Alcotest.(check int) "tier1 count" 5 (List.length t.Gen.tier1);
  Alcotest.(check int) "tier2 count" 20 (List.length t.Gen.tier2);
  Alcotest.(check int) "total ASs" 235 (As_graph.as_count t.Gen.graph)

let test_gen_clique () =
  let rng = Prng.create ~seed:2 in
  let t = Gen.generate ~config:small_config rng in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Asn.equal a b) then
            Alcotest.(check bool) "tier1 pair peers" true
              (As_graph.relationship t.Gen.graph a b = Some Relationship.Peer))
        t.Gen.tier1;
      Alcotest.(check (list int)) "tier1 has no providers" []
        (List.map Asn.to_int (As_graph.providers t.Gen.graph a)))
    t.Gen.tier1

let test_gen_everyone_connected () =
  let rng = Prng.create ~seed:3 in
  let t = Gen.generate ~config:small_config rng in
  List.iter
    (fun a ->
      Alcotest.(check bool) "has a provider" true
        (As_graph.providers t.Gen.graph a <> []))
    (t.Gen.tier2 @ t.Gen.tier3 @ t.Gen.stubs)

let test_gen_deterministic () =
  let t1 = Gen.generate ~config:small_config (Prng.create ~seed:7) in
  let t2 = Gen.generate ~config:small_config (Prng.create ~seed:7) in
  Alcotest.(check int) "same edge count"
    (As_graph.edge_count t1.Gen.graph) (As_graph.edge_count t2.Gen.graph);
  Alcotest.(check bool) "same edges" true
    (As_graph.to_edges t1.Gen.graph = As_graph.to_edges t2.Gen.graph)

let test_gen_ground_truth_tiers () =
  let rng = Prng.create ~seed:4 in
  let t = Gen.generate ~config:small_config rng in
  let truth = Gen.tiers_ground_truth t in
  let computed = Tier.classify t.Gen.graph in
  (* Generated tier-1s are exactly the provider-free ASs. *)
  List.iter
    (fun a -> Alcotest.(check int) "tier1 as classified" 1 (Asn.Map.find a computed))
    t.Gen.tier1;
  Alcotest.(check int) "truth covers all" (As_graph.as_count t.Gen.graph)
    (Asn.Map.cardinal truth)

let test_gen_famous_cast () =
  let rng = Prng.create ~seed:8 in
  let t = Gen.generate ~config:small_config rng in
  (* The first Tier-1 slots carry the paper's AS numbers, in order. *)
  Alcotest.(check (list int)) "tier1 cast" [ 1; 7018; 3549; 1239; 701 ]
    (List.map Asn.to_int t.Gen.tier1);
  (* Dynamic numbers start at the documented base and never collide with
     the famous pool. *)
  List.iter
    (fun a ->
      let n = Asn.to_int a in
      Alcotest.(check bool) "dynamic range" true (n >= Gen.first_dynamic_asn))
    t.Gen.stubs

let test_gen_consistency () =
  let rng = Prng.create ~seed:5 in
  let t = Gen.generate ~config:small_config rng in
  Alcotest.(check bool) "graph consistent" true
    (match As_graph.check_consistency t.Gen.graph with Ok () -> true | Error _ -> false)

let test_gen_valley_free_everywhere () =
  (* Every generated customer path must validate as valley-free. *)
  let rng = Prng.create ~seed:6 in
  let t = Gen.generate ~config:small_config rng in
  let g = t.Gen.graph in
  List.iter
    (fun s ->
      match As_graph.providers g s with
      | p1 :: _ -> begin
          match As_graph.providers g p1 with
          | p2 :: _ -> Alcotest.(check bool) "2-level chain vf" true (Paths.is_valley_free g [ p2; p1; s ])
          | [] -> ()
        end
      | [] -> ())
    t.Gen.stubs

(* --- Config validation and scaled generation --- *)

let test_gen_validate () =
  let ok c = match Gen.validate c with Ok () -> true | Error _ -> false in
  Alcotest.(check bool) "default config valid" true (ok Gen.default_config);
  Alcotest.(check bool) "small config valid" true (ok small_config);
  let reject name c =
    match Gen.validate c with
    | Error msg ->
        Alcotest.(check bool) (name ^ ": message non-empty") true (String.length msg > 0)
    | Ok () -> Alcotest.failf "%s: expected Error" name
  in
  reject "one tier1" { Gen.default_config with Gen.n_tier1 = 1 };
  reject "negative stubs" { Gen.default_config with Gen.n_stub = -1 };
  reject "zero providers" { Gen.default_config with Gen.max_providers = 0 };
  reject "negative siblings" { Gen.default_config with Gen.sibling_pairs = -1 };
  (* A sibling target above the achievable pair count is allowed: the
     generator plants what it can and stops at the attempts cap. *)
  Alcotest.(check bool) "sibling target above pair count is a target, not an error" true
    (ok { Gen.default_config with Gen.n_tier3 = 2; sibling_pairs = 5 });
  reject "bad tier3 mix" { Gen.default_config with Gen.tier3_upstream_mix = (0.9, 0.3) };
  reject "negative stub mix"
    { Gen.default_config with Gen.stub_upstream_mix = (1.2, 0.3, -0.5) };
  reject "asn budget" { Gen.default_config with Gen.n_stub = max_int / 2 };
  reject "bad multihoming" { Gen.default_config with Gen.multihoming_prob = 1.5 };
  (* generate surfaces the same message as Invalid_argument. *)
  let bad = { Gen.default_config with Gen.n_tier1 = 1 } in
  match Gen.validate bad with
  | Ok () -> Alcotest.fail "expected Error for n_tier1 = 1"
  | Error msg ->
      Alcotest.check_raises "generate raises validate's message"
        (Invalid_argument ("Gen.generate: " ^ msg))
        (fun () -> ignore (Gen.generate ~config:bad (Prng.create ~seed:1)))

let test_scale_config () =
  List.iter
    (fun n ->
      let c = Gen.scale_config ~n in
      (match Gen.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "scale_config ~n:%d invalid: %s" n e);
      let total = c.Gen.n_tier1 + c.Gen.n_tier2 + c.Gen.n_tier3 + c.Gen.n_stub in
      Alcotest.(check int) (Printf.sprintf "total at %d" n) n total;
      Alcotest.(check bool)
        (Printf.sprintf "heavy-tailed shape at %d" n)
        true
        (c.Gen.n_stub > c.Gen.n_tier3
        && c.Gen.n_tier3 > c.Gen.n_tier2
        && c.Gen.n_tier2 > c.Gen.n_tier1))
    [ 1000; 5000; 15000; 100000 ];
  Alcotest.check_raises "rejects tiny n"
    (Invalid_argument "Gen.scale_config: need at least 64 ASs") (fun () ->
      ignore (Gen.scale_config ~n:10))

let test_generate_scaled () =
  let config = Gen.scale_config ~n:2000 in
  let t = Gen.generate_scaled ~config (Prng.create ~seed:7) in
  let t' = Gen.generate_scaled ~config (Prng.create ~seed:7) in
  Alcotest.(check bool) "deterministic in the seed" true
    (As_graph.to_edges t.Gen.graph = As_graph.to_edges t'.Gen.graph);
  Alcotest.(check int) "as count" 2000 (As_graph.as_count t.Gen.graph);
  Alcotest.(check bool) "consistent" true
    (match As_graph.check_consistency t.Gen.graph with Ok () -> true | Error _ -> false);
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Asn.equal a b) then
            Alcotest.(check bool) "tier1 mesh" true
              (As_graph.relationship t.Gen.graph a b = Some Relationship.Peer))
        t.Gen.tier1)
    t.Gen.tier1;
  List.iter
    (fun a ->
      Alcotest.(check bool) "everyone below tier1 has a provider" true
        (As_graph.providers t.Gen.graph a <> []))
    (t.Gen.tier2 @ t.Gen.tier3 @ t.Gen.stubs);
  let all = t.Gen.tier1 @ t.Gen.tier2 @ t.Gen.tier3 @ t.Gen.stubs in
  Alcotest.(check int) "no duplicate AS numbers" (List.length all)
    (List.length (List.sort_uniq Asn.compare all))

let test_scaled_roundtrip_15k () =
  (* The paper-scale guarantee: a 15k-AS edge list survives both the
     textual and the structural round-trip unchanged. *)
  let t = Gen.generate_scaled ~config:(Gen.scale_config ~n:15000) (Prng.create ~seed:11) in
  let g = t.Gen.graph in
  Alcotest.(check int) "as count" 15000 (As_graph.as_count g);
  Alcotest.(check bool) "consistent" true
    (match As_graph.check_consistency g with Ok () -> true | Error _ -> false);
  (match As_graph.parse_edges (As_graph.render_edges g) with
  | Error e -> Alcotest.failf "render/parse failed: %s" e
  | Ok g' ->
      Alcotest.(check bool) "render/parse round-trip" true
        (As_graph.to_edges g = As_graph.to_edges g'));
  let g'' = As_graph.of_edges (As_graph.to_edges g) in
  Alcotest.(check bool) "of_edges round-trip" true
    (As_graph.to_edges g = As_graph.to_edges g'')

(* --- CSR freeze --- *)

module Csr = Rpi_topo.Csr

let test_csr_of_graph () =
  let t = Gen.generate ~config:small_config (Prng.create ~seed:3) in
  let g = t.Gen.graph in
  let c = Csr.of_graph g in
  Alcotest.(check int) "node count" (As_graph.as_count g) (Csr.node_count c);
  Alcotest.(check int) "two directed slots per edge" (2 * As_graph.edge_count g)
    (Csr.edge_count c);
  Array.iteri
    (fun i asn ->
      let nbs = As_graph.neighbors g asn in
      Alcotest.(check int) "degree" (List.length nbs) (Csr.degree c i);
      List.iteri
        (fun k (nb, rel) ->
          let e = c.Csr.off.(i) + k in
          Alcotest.(check bool) "row order mirrors As_graph.neighbors" true
            (Asn.equal c.Csr.dst_asn.(e) nb);
          Alcotest.(check bool) "relationship label" true
            (Relationship.equal c.Csr.rel.(e) rel);
          let back = c.Csr.back.(e) in
          Alcotest.(check int) "back edge returns home" i c.Csr.dst.(back);
          Alcotest.(check int) "back is an involution" e c.Csr.back.(back))
        nbs)
    c.Csr.ases

(* --- Properties --- *)

(* --- Churn generator --- *)

module Churn = Rpi_topo.Churn

(* Three topology regimes the churn suite runs under: a pocket-sized
   world, a mid-size hierarchy and the full small_config. *)
let churn_regimes =
  [
    ( "pocket",
      { Gen.default_config with Gen.n_tier1 = 2; n_tier2 = 3; n_tier3 = 4; n_stub = 6 } );
    ( "mid",
      { Gen.default_config with Gen.n_tier1 = 3; n_tier2 = 6; n_tier3 = 10; n_stub = 20 } );
    ("small", small_config);
  ]

let churn_stream ~topo_seed ~churn_seed config epochs =
  let topo = Gen.generate ~config (Prng.create ~seed:topo_seed) in
  let atom_ids = [ 1; 2; 3; 4 ] in
  let stream =
    Churn.generate
      (Prng.create ~seed:churn_seed)
      ~graph:topo.Gen.graph ~atom_ids ~epochs
  in
  (topo.Gen.graph, atom_ids, stream)

let test_churn_deterministic () =
  List.iter
    (fun (name, config) ->
      let _, _, s1 = churn_stream ~topo_seed:5 ~churn_seed:11 config 150 in
      let _, _, s2 = churn_stream ~topo_seed:5 ~churn_seed:11 config 150 in
      let _, _, s3 = churn_stream ~topo_seed:5 ~churn_seed:12 config 150 in
      Alcotest.(check string)
        (name ^ ": same seed is byte-identical")
        (Churn.render s1) (Churn.render s2);
      Alcotest.(check bool)
        (name ^ ": disjoint seeds diverge")
        false
        (String.equal (Churn.render s1) (Churn.render s3));
      Alcotest.(check bool)
        (name ^ ": stream is non-trivial")
        true
        (String.length (Churn.render s1) > 0))
    churn_regimes

(* Replay every stream against a state machine of the world it was drawn
   from: each event must be applicable at its position — links only go
   down when up and up when down, relationship migrations always change
   the label of a real link, withdrawals and announcements alternate per
   atom, and no event names an AS pair or atom outside the universe. *)
let test_churn_applicable () =
  List.iter
    (fun (name, config) ->
      let graph, atom_ids, stream = churn_stream ~topo_seed:9 ~churn_seed:23 config 150 in
      let links = Hashtbl.create 256 in
      let key a b =
        let x = Asn.to_int a and y = Asn.to_int b in
        (min x y, max x y)
      in
      As_graph.fold_edges
        (fun a b rel () -> Hashtbl.replace links (key a b) (true, rel))
        graph ();
      let atoms = Hashtbl.create 8 in
      List.iter (fun id -> Hashtbl.replace atoms id true) atom_ids;
      let fail_ev index ev msg =
        Alcotest.failf "%s: epoch %d, %s: %s" name index (Churn.render_event ev) msg
      in
      List.iter
        (fun (ep : Churn.epoch) ->
          List.iter
            (fun ev ->
              match ev with
              | Churn.Link_down (a, b) -> begin
                  match Hashtbl.find_opt links (key a b) with
                  | None -> fail_ev ep.Churn.index ev "unknown link"
                  | Some (false, _) -> fail_ev ep.Churn.index ev "already down"
                  | Some (true, rel) -> Hashtbl.replace links (key a b) (false, rel)
                end
              | Churn.Link_up (a, b) -> begin
                  match Hashtbl.find_opt links (key a b) with
                  | None -> fail_ev ep.Churn.index ev "unknown link"
                  | Some (true, _) -> fail_ev ep.Churn.index ev "already up"
                  | Some (false, rel) -> Hashtbl.replace links (key a b) (true, rel)
                end
              | Churn.Rel_change (a, b, rel) -> begin
                  match Hashtbl.find_opt links (key a b) with
                  | None -> fail_ev ep.Churn.index ev "unknown link"
                  | Some (up, old_rel) ->
                      if Relationship.equal rel old_rel then
                        fail_ev ep.Churn.index ev "label unchanged";
                      Hashtbl.replace links (key a b) (up, rel)
                end
              | Churn.Withdraw id -> begin
                  match Hashtbl.find_opt atoms id with
                  | None -> fail_ev ep.Churn.index ev "unknown atom"
                  | Some false -> fail_ev ep.Churn.index ev "already withdrawn"
                  | Some true -> Hashtbl.replace atoms id false
                end
              | Churn.Announce id -> begin
                  match Hashtbl.find_opt atoms id with
                  | None -> fail_ev ep.Churn.index ev "unknown atom"
                  | Some true -> fail_ev ep.Churn.index ev "already announced"
                  | Some false -> Hashtbl.replace atoms id true
                end)
            ep.Churn.events)
        stream)
    churn_regimes

(* Downed links and withdrawn atoms always come back: every outage heals
   within its configured max_*_epochs horizon, so anything still down or
   out at the end of the stream must have been hit inside the final
   window. *)
let test_churn_revives () =
  let epochs = 200 in
  List.iter
    (fun (name, config) ->
      let _, _, stream = churn_stream ~topo_seed:3 ~churn_seed:31 config epochs in
      let down = Hashtbl.create 16 in
      let out = Hashtbl.create 8 in
      List.iter
        (fun (ep : Churn.epoch) ->
          List.iter
            (fun ev ->
              match ev with
              | Churn.Link_down (a, b) ->
                  Hashtbl.replace down (Asn.to_int a, Asn.to_int b) ep.Churn.index
              | Churn.Link_up (a, b) -> Hashtbl.remove down (Asn.to_int a, Asn.to_int b)
              | Churn.Withdraw id -> Hashtbl.replace out id ep.Churn.index
              | Churn.Announce id -> Hashtbl.remove out id
              | Churn.Rel_change _ -> ())
            ep.Churn.events)
        stream;
      let { Churn.max_down_epochs; max_out_epochs; _ } = Churn.default_config in
      Hashtbl.iter
        (fun (a, b) at ->
          if at < epochs - 1 - max_down_epochs then
            Alcotest.failf "%s: link AS%d-AS%d downed at %d never revived" name a b at)
        down;
      Hashtbl.iter
        (fun id at ->
          if at < epochs - 1 - max_out_epochs then
            Alcotest.failf "%s: atom %d withdrawn at %d never re-announced" name id at)
        out)
    churn_regimes

let prop_gen_multihoming_rate =
  QCheck2.Test.make ~name:"multihoming rate tracks config" ~count:5
    QCheck2.Gen.(int_range 1 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = Gen.generate ~config:small_config rng in
      let g = t.Gen.graph in
      let non_t1 = t.Gen.tier2 @ t.Gen.tier3 @ t.Gen.stubs in
      let multi = List.length (List.filter (As_graph.is_multihomed g) non_t1) in
      let rate = float_of_int multi /. float_of_int (List.length non_t1) in
      rate > 0.4 && rate < 0.8)

let prop_tier_monotone =
  QCheck2.Test.make ~name:"customer tier strictly below best provider" ~count:5
    QCheck2.Gen.(int_range 1 10000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let t = Gen.generate ~config:small_config rng in
      let g = t.Gen.graph in
      let tiers = Tier.classify g in
      List.for_all
        (fun a ->
          match As_graph.providers g a with
          | [] -> Asn.Map.find a tiers = 1
          | providers ->
              let best = List.fold_left (fun acc p -> min acc (Asn.Map.find p tiers)) max_int providers in
              Asn.Map.find a tiers = best + 1)
        (As_graph.ases g))

let () =
  Alcotest.run "rpi_topo"
    [
      ( "graph",
        [
          Alcotest.test_case "relationship invert" `Quick test_relationship_invert;
          Alcotest.test_case "symmetry" `Quick test_graph_symmetry;
          Alcotest.test_case "queries" `Quick test_graph_queries;
          Alcotest.test_case "self loop" `Quick test_graph_self_loop;
          Alcotest.test_case "edges roundtrip" `Quick test_graph_edges_roundtrip;
          Alcotest.test_case "text roundtrip" `Quick test_graph_text_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_graph_parse_errors;
          Alcotest.test_case "remove edge" `Quick test_graph_remove_edge;
        ] );
      ( "paths",
        [
          Alcotest.test_case "customer paths" `Quick test_customer_paths;
          Alcotest.test_case "customer cone" `Quick test_customer_cone;
          Alcotest.test_case "valley free" `Quick test_valley_free;
          Alcotest.test_case "classify path" `Quick test_classify_path;
          Alcotest.test_case "is customer path" `Quick test_is_customer_path;
          Alcotest.test_case "provider chain" `Quick test_provider_chain;
        ] );
      ("tier", [ Alcotest.test_case "classify" `Quick test_tier_classify ]);
      ("csr", [ Alcotest.test_case "of_graph mirrors As_graph" `Quick test_csr_of_graph ]);
      ( "generator",
        [
          Alcotest.test_case "counts" `Quick test_gen_counts;
          Alcotest.test_case "tier1 clique" `Quick test_gen_clique;
          Alcotest.test_case "everyone connected" `Quick test_gen_everyone_connected;
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "ground truth tiers" `Quick test_gen_ground_truth_tiers;
          Alcotest.test_case "famous cast" `Quick test_gen_famous_cast;
          Alcotest.test_case "consistency" `Quick test_gen_consistency;
          Alcotest.test_case "valley free chains" `Quick test_gen_valley_free_everywhere;
          Alcotest.test_case "validate" `Quick test_gen_validate;
          Alcotest.test_case "scale config" `Quick test_scale_config;
          Alcotest.test_case "generate scaled" `Quick test_generate_scaled;
          Alcotest.test_case "15k round-trip" `Quick test_scaled_roundtrip_15k;
        ] );
      ( "churn",
        [
          Alcotest.test_case "deterministic in the seed" `Quick test_churn_deterministic;
          Alcotest.test_case "every event applicable" `Quick test_churn_applicable;
          Alcotest.test_case "outages always heal" `Quick test_churn_revives;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_gen_multihoming_rate; prop_tier_monotone ] );
    ]
