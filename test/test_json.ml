(* Rpi_json: the serializer's escaping and float dialect, the parser, and
   the contract that every NDJSON line the experiment runner emits parses
   back cleanly. *)

module Json = Rpi_json
module Scenario = Rpi_dataset.Scenario
module Context = Rpi_experiments.Context
module Exp = Rpi_experiments.Exp
module Runner = Rpi_runner.Runner

let test_escaping () =
  Alcotest.(check string)
    "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  Alcotest.(check string)
    "named escapes" {|"x\ny\tz\r"|}
    (Json.to_string (Json.String "x\ny\tz\r"));
  Alcotest.(check string)
    "control chars become \\u" "\"\\u0001\\u001f\""
    (Json.to_string (Json.String "\001\031"));
  Alcotest.(check string)
    "non-ASCII bytes pass through raw" "\"d\xc3\xa9j\xc3\xa0\""
    (Json.to_string (Json.String "d\xc3\xa9j\xc3\xa0"));
  Alcotest.(check string)
    "keys are escaped too" {|{"a\"b":1}|}
    (Json.to_string (Json.Obj [ ({|a"b|}, Json.Int 1) ]))

let test_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "infinities are null" "null,null"
    (Json.to_string (Json.Float Float.infinity)
    ^ ","
    ^ Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string)
    "whole floats keep a decimal point" "1.0"
    (Json.to_string (Json.Float 1.0));
  Alcotest.(check string) "fractions" "1.5" (Json.to_string (Json.Float 1.5));
  (* enough digits to round-trip *)
  match Json.of_string (Json.to_string (Json.Float 0.1)) with
  | Ok (Json.Float v) -> Alcotest.(check (float 0.0)) "0.1 round-trips" 0.1 v
  | _ -> Alcotest.fail "0.1 must parse back as a float"

let test_parser () =
  Alcotest.(check bool)
    "object with every constructor" true
    (match
       Json.of_string
         {| {"a": null, "b": [true, false], "c": -12, "d": 3.5e2, "e": "s", "f": {}} |}
     with
    | Ok
        (Json.Obj
          [
            ("a", Json.Null);
            ("b", Json.List [ Json.Bool true; Json.Bool false ]);
            ("c", Json.Int (-12));
            ("d", Json.Float 350.0);
            ("e", Json.String "s");
            ("f", Json.Obj []);
          ]) ->
        true
    | _ -> false);
  Alcotest.(check bool)
    "\\u escapes decode to UTF-8" true
    (match Json.of_string "\"\\u00e9\\ud83d\\ude00\"" with
    | Ok (Json.String s) -> String.equal s "\xc3\xa9\xf0\x9f\x98\x80"
    | _ -> false);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "\"\x01\"" ]

let gen_json =
  QCheck2.Gen.(
    sized
    @@ fix (fun self n ->
           let scalar =
             oneof
               [
                 return Json.Null;
                 map (fun b -> Json.Bool b) bool;
                 map (fun i -> Json.Int i) int;
                 (* finite floats only: NaN/inf serialize to null by design *)
                 map (fun f -> Json.Float f) (float_bound_inclusive 1e9);
                 map (fun s -> Json.String s) (string_size (int_range 0 12));
               ]
           in
           if n <= 0 then scalar
           else
             oneof
               [
                 scalar;
                 map (fun l -> Json.List l) (list_size (int_range 0 4) (self (n / 2)));
                 map
                   (fun kvs -> Json.Obj kvs)
                   (list_size (int_range 0 4)
                      (pair (string_size (int_range 0 8)) (self (n / 2))));
               ]))

let prop_roundtrip =
  QCheck2.Test.make ~name:"to_string |> of_string is the identity" ~count:500
    gen_json (fun t ->
      match Json.of_string (Json.to_string t) with
      | Ok t' -> t' = t
      | Error _ -> false)

(* The shrunk catalogue test_runner also uses: runner semantics and JSON
   shape do not depend on epoch counts. *)
let exps =
  List.map
    (fun (e : Exp.t) ->
      match e.Exp.id with
      | "fig6+7" -> { e with Exp.run = (fun c -> Exp.fig6_fig7 ~days:3 ~hours:2 c) }
      | "stability" -> { e with Exp.run = (fun c -> Exp.stability ~seeds:[ 7 ] c) }
      | _ -> e)
    Exp.all

let test_ndjson_roundtrip () =
  let config = { Scenario.small_config with Scenario.seed = 11 } in
  let report = Runner.run ~jobs:1 (Context.create ~config ()) exps in
  Alcotest.(check int)
    "one line per experiment" (List.length exps)
    (List.length report.Runner.results);
  List.iter
    (fun timed ->
      (* exactly the line `experiments run --json` writes *)
      let line = Json.to_string (Runner.timed_to_json timed) in
      match Json.of_string line with
      | Error e ->
          Alcotest.fail
            (Printf.sprintf "%s: emitted NDJSON does not parse back: %s"
               timed.Runner.outcome.Exp.id e)
      | Ok parsed ->
          Alcotest.(check string)
            (timed.Runner.outcome.Exp.id ^ " reserializes identically")
            line (Json.to_string parsed))
    report.Runner.results

let () =
  Alcotest.run "json"
    [
      ( "serialize",
        [
          Alcotest.test_case "string escaping" `Quick test_escaping;
          Alcotest.test_case "float dialect" `Quick test_floats;
        ] );
      ( "parse",
        [ Alcotest.test_case "parser" `Quick test_parser ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ] );
      ( "ndjson",
        [ Alcotest.test_case "runner emission round-trips" `Slow test_ndjson_roundtrip ]
      );
    ]
