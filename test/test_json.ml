(* Rpi_json: the serializer's escaping and float dialect, and the parser's
   handling of hand-picked valid and invalid documents.

   The generative coverage that used to live here — random-tree
   `to_string |> of_string` identity and the runner's NDJSON emission
   parsing back byte-identically — moved to the rpicheck harness
   (lib/check/oracles.ml: `json-roundtrip` and `runner-ndjson-roundtrip`),
   where it runs seed-addressably with shrinking on every `dune runtest`
   via the @check alias. *)

module Json = Rpi_json

let test_escaping () =
  Alcotest.(check string)
    "quotes and backslash" {|"a\"b\\c"|}
    (Json.to_string (Json.String {|a"b\c|}));
  Alcotest.(check string)
    "named escapes" {|"x\ny\tz\r"|}
    (Json.to_string (Json.String "x\ny\tz\r"));
  Alcotest.(check string)
    "control chars become \\u" "\"\\u0001\\u001f\""
    (Json.to_string (Json.String "\001\031"));
  Alcotest.(check string)
    "non-ASCII bytes pass through raw" "\"d\xc3\xa9j\xc3\xa0\""
    (Json.to_string (Json.String "d\xc3\xa9j\xc3\xa0"));
  Alcotest.(check string)
    "keys are escaped too" {|{"a\"b":1}|}
    (Json.to_string (Json.Obj [ ({|a"b|}, Json.Int 1) ]))

let test_floats () =
  Alcotest.(check string) "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  Alcotest.(check string)
    "infinities are null" "null,null"
    (Json.to_string (Json.Float Float.infinity)
    ^ ","
    ^ Json.to_string (Json.Float Float.neg_infinity));
  Alcotest.(check string)
    "whole floats keep a decimal point" "1.0"
    (Json.to_string (Json.Float 1.0));
  Alcotest.(check string) "fractions" "1.5" (Json.to_string (Json.Float 1.5));
  (* enough digits to round-trip *)
  match Json.of_string (Json.to_string (Json.Float 0.1)) with
  | Ok (Json.Float v) -> Alcotest.(check (float 0.0)) "0.1 round-trips" 0.1 v
  | _ -> Alcotest.fail "0.1 must parse back as a float"

let test_parser () =
  Alcotest.(check bool)
    "object with every constructor" true
    (match
       Json.of_string
         {| {"a": null, "b": [true, false], "c": -12, "d": 3.5e2, "e": "s", "f": {}} |}
     with
    | Ok
        (Json.Obj
          [
            ("a", Json.Null);
            ("b", Json.List [ Json.Bool true; Json.Bool false ]);
            ("c", Json.Int (-12));
            ("d", Json.Float 350.0);
            ("e", Json.String "s");
            ("f", Json.Obj []);
          ]) ->
        true
    | _ -> false);
  Alcotest.(check bool)
    "\\u escapes decode to UTF-8" true
    (match Json.of_string "\"\\u00e9\\ud83d\\ude00\"" with
    | Ok (Json.String s) -> String.equal s "\xc3\xa9\xf0\x9f\x98\x80"
    | _ -> false);
  List.iter
    (fun bad ->
      match Json.of_string bad with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S must not parse" bad)
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2"; "\"\x01\"" ]

let () =
  Alcotest.run "json"
    [
      ( "serialize",
        [
          Alcotest.test_case "string escaping" `Quick test_escaping;
          Alcotest.test_case "float dialect" `Quick test_floats;
        ] );
      ("parse", [ Alcotest.test_case "parser" `Quick test_parser ]);
    ]
