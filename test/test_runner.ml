(* The multicore experiment runner: parallel execution must be
   observationally identical to sequential execution (same rendered text,
   declaration order preserved), every experiment must expose
   machine-readable metrics, and the context's mutex-protected SA cache
   must serve identical reports to concurrently racing domains. *)

module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix
module Scenario = Rpi_dataset.Scenario
module Context = Rpi_experiments.Context
module Exp = Rpi_experiments.Exp
module Export_infer = Rpi_core.Export_infer
module Runner = Rpi_runner.Runner

let config = { Scenario.small_config with Scenario.seed = 3 }

(* The catalogue with the two re-simulating experiments shrunk, exactly as
   test_experiments does — the runner semantics under test do not depend
   on epoch counts. *)
let exps =
  List.map
    (fun (e : Exp.t) ->
      match e.Exp.id with
      | "fig6+7" -> { e with Exp.run = (fun c -> Exp.fig6_fig7 ~days:3 ~hours:2 c) }
      | "stability" -> { e with Exp.run = (fun c -> Exp.stability ~seeds:[ 7 ] c) }
      | _ -> e)
    Exp.all

let sequential =
  lazy (Runner.run ~jobs:1 (Context.create ~config ()) exps)

let test_parallel_equals_sequential () =
  let seq = Lazy.force sequential in
  (* A fresh context: the SA cache memoizes per-context, and the parallel
     run must produce the same bytes from a cold start. *)
  let par = Runner.run ~jobs:4 (Context.create ~config ()) exps in
  Alcotest.(check int) "used several domains" 4 par.Runner.jobs;
  Alcotest.(check int) "one result per experiment" (List.length exps)
    (List.length par.Runner.results);
  List.iter2
    (fun (e : Exp.t) (r : Runner.timed) ->
      Alcotest.(check string) ("order: " ^ e.Exp.id) e.Exp.id r.Runner.outcome.Exp.id)
    exps par.Runner.results;
  Alcotest.(check string) "rendered output identical under domains"
    (Runner.render seq) (Runner.render par)

let test_run_all_matches_runner () =
  (* The back-compat string API and the runner agree byte for byte. *)
  let ctx = Context.create ~config () in
  let via_runner = Runner.render (Runner.run ~jobs:2 ctx Exp.all) in
  Alcotest.(check string) "Exp.run_all == Runner.render" (Exp.run_all ctx) via_runner

let test_metrics_nonempty () =
  let seq = Lazy.force sequential in
  List.iter
    (fun (r : Runner.timed) ->
      let o = r.Runner.outcome in
      Alcotest.(check bool) (o.Exp.id ^ " has metrics") true (o.Exp.metrics <> []);
      List.iter
        (fun (name, v) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s is finite" o.Exp.id name)
            true (Float.is_finite v))
        o.Exp.metrics;
      Alcotest.(check bool) (o.Exp.id ^ " timed") true (r.Runner.elapsed_s >= 0.0))
    seq.Runner.results

let test_sa_cache_concurrent () =
  (* Two domains race on the same provider's SA analysis; both must see
     the same report, and the cache must end up with a single entry. *)
  let ctx = Context.create ~config () in
  let provider = List.hd ctx.Context.scenario.Scenario.topo.Rpi_topo.Gen.tier1 in
  let fingerprint (r : Export_infer.report) =
    ( r.Export_infer.customer_prefixes,
      r.Export_infer.pct_sa,
      List.map
        (fun (s : Export_infer.sa_record) -> Prefix.to_string s.Export_infer.prefix)
        r.Export_infer.sa )
  in
  let d1 = Domain.spawn (fun () -> fingerprint (Context.sa_report ctx provider)) in
  let d2 = Domain.spawn (fun () -> fingerprint (Context.sa_report ctx provider)) in
  let f1 = Domain.join d1 and f2 = Domain.join d2 in
  Alcotest.(check bool) "concurrent SA reports identical" true (f1 = f2);
  Alcotest.(check int) "cache holds one entry for the provider" 1
    (Hashtbl.length ctx.Context.sa_cache);
  (* And a later sequential call hits the same cached value. *)
  let f3 = fingerprint (Context.sa_report ctx provider) in
  Alcotest.(check bool) "cached report stable" true (f1 = f3)

let test_oracle_context_fresh_cache () =
  (* use_ground_truth_graph swaps the graph the SA analysis depends on, so
     it must not inherit the original's memoized reports. *)
  let ctx = Context.create ~config () in
  let provider = List.hd ctx.Context.scenario.Scenario.topo.Rpi_topo.Gen.tier1 in
  ignore (Context.sa_report ctx provider);
  let oracle = Context.use_ground_truth_graph ctx in
  Alcotest.(check int) "oracle context starts cold" 0 (Hashtbl.length oracle.Context.sa_cache);
  Alcotest.(check bool) "original cache untouched" true
    (Hashtbl.length ctx.Context.sa_cache > 0)

let test_default_jobs_env () =
  Unix.putenv "RPI_JOBS" "3";
  Alcotest.(check int) "RPI_JOBS honoured" 3 (Runner.default_jobs ());
  Unix.putenv "RPI_JOBS" "not-a-number";
  Alcotest.(check bool) "garbage RPI_JOBS falls back to >= 1" true
    (Runner.default_jobs () >= 1);
  Unix.putenv "RPI_JOBS" ""

let () =
  Alcotest.run "rpi_runner"
    [
      ( "runner",
        [
          Alcotest.test_case "parallel == sequential" `Slow test_parallel_equals_sequential;
          Alcotest.test_case "run_all matches runner" `Slow test_run_all_matches_runner;
          Alcotest.test_case "metrics non-empty" `Slow test_metrics_nonempty;
          Alcotest.test_case "RPI_JOBS override" `Quick test_default_jobs_env;
        ] );
      ( "sa-cache",
        [
          Alcotest.test_case "concurrent domains agree" `Quick test_sa_cache_concurrent;
          Alcotest.test_case "oracle context gets fresh cache" `Quick
            test_oracle_context_fresh_cache;
        ] );
    ]
