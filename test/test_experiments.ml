(* Integration tests: every experiment runs end-to-end on a reduced
   scenario and its headline metrics land in the qualitative bands the
   paper reports.  These are the "shape" assertions of the reproduction. *)

module Asn = Rpi_bgp.Asn
module Scenario = Rpi_dataset.Scenario
module Context = Rpi_experiments.Context
module Exp = Rpi_experiments.Exp
module Import_infer = Rpi_core.Import_infer
module Export_infer = Rpi_core.Export_infer
module Nexthop = Rpi_core.Nexthop_consistency

let ctx =
  lazy
    (Context.create
       ~config:{ Scenario.small_config with Scenario.seed = 3 }
       ())

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_all_experiments_render () =
  let c = Lazy.force ctx in
  List.iter
    (fun (e : Exp.t) ->
      (* The persistence experiments re-simulate; shrink them. *)
      let outcome =
        if e.Exp.id = "fig6+7" then Exp.fig6_fig7 ~days:4 ~hours:3 c
        else if e.Exp.id = "churn-persistence" then Exp.churn_persistence ~epochs:20 c
        else e.Exp.run c
      in
      let out = outcome.Exp.rendered in
      Alcotest.(check string) (e.Exp.id ^ " outcome id") e.Exp.id outcome.Exp.id;
      Alcotest.(check bool) (e.Exp.id ^ " has header") true (contains out "Paper reports");
      Alcotest.(check bool) (e.Exp.id ^ " non-trivial") true (String.length out > 100))
    Exp.all

let test_typical_preference_shape () =
  let c = Lazy.force ctx in
  let s = c.Context.scenario in
  let pcts =
    List.map
      (fun (a, rib) ->
        (Import_infer.analyze c.Context.corrected ~vantage:a rib).Import_infer.pct_typical)
      s.Scenario.lg_tables
  in
  let median = Rpi_stats.Dist.median pcts in
  Alcotest.(check bool)
    (Printf.sprintf "median typical %.1f%% above 90" median)
    true (median > 90.0)

let test_nexthop_shape () =
  let c = Lazy.force ctx in
  let s = c.Context.scenario in
  List.iter
    (fun (a, rib) ->
      let r = Nexthop.analyze rib in
      Alcotest.(check bool)
        (Printf.sprintf "%s next-hop-based %.1f%% above 90" (Asn.to_label a)
           r.Nexthop.pct_nexthop_based)
        true
        (r.Nexthop.pct_nexthop_based > 90.0))
    s.Scenario.lg_tables

let test_sa_shape () =
  (* SA prefixes are prevalent at Tier-1s: a non-trivial share of customer
     prefixes, far above the splitting/aggregation counts. *)
  let c = Lazy.force ctx in
  let s = c.Context.scenario in
  let provider = List.hd s.Scenario.topo.Rpi_topo.Gen.tier1 in
  let viewpoint = Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector in
  let report =
    Export_infer.analyze c.Context.corrected ~provider ~origins:c.Context.collector_origins
      viewpoint
  in
  let sa = List.length report.Export_infer.sa in
  Alcotest.(check bool)
    (Printf.sprintf "SA share %.1f%% in (1, 60)" report.Export_infer.pct_sa)
    true
    (report.Export_infer.pct_sa > 1.0 && report.Export_infer.pct_sa < 60.0);
  let split = Rpi_core.Sa_causes.splitting viewpoint report.Export_infer.sa in
  Alcotest.(check bool) "splitting is a small minority" true
    (List.length split * 4 < max 1 sa)

let test_relationship_inference_quality () =
  let c = Lazy.force ctx in
  let report =
    Rpi_relinfer.Validate.compare_graphs ~truth:c.Context.scenario.Scenario.graph
      ~inferred:c.Context.corrected
  in
  let acc = Rpi_relinfer.Validate.accuracy report in
  Alcotest.(check bool) (Printf.sprintf "accuracy %.3f above 0.93" acc) true (acc > 0.93)

let test_context_delta_invalidation () =
  (* Context's memoized SA analysis is now an incremental state: the
     cached report matches the batch recompute, and advancing the feed
     recomputes only the touched prefix. *)
  let c = Lazy.force ctx in
  let s = c.Context.scenario in
  let provider = List.hd s.Scenario.topo.Rpi_topo.Gen.tier1 in
  let rib, report = Context.sa_view c provider in
  let batch =
    Export_infer.analyze c.Context.corrected ~provider
      ~origins:c.Context.collector_origins
      (Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector)
  in
  Alcotest.(check (float 1e-9)) "cached report = batch" batch.Export_infer.pct_sa
    report.Export_infer.pct_sa;
  Alcotest.(check int) "cached sa count = batch"
    (List.length batch.Export_infer.sa)
    (List.length report.Export_infer.sa);
  let before = Context.feed_counters c provider in
  let prefix, from_as =
    (* A prefix with a peered route, so the withdraw removes something. *)
    match
      List.find_map
        (fun p ->
          match Rpi_bgp.Rib.candidates rib p with
          | (r : Rpi_bgp.Route.t) :: _ ->
              Option.map (fun a -> (p, a)) r.Rpi_bgp.Route.peer_as
          | [] -> None)
        (Rpi_bgp.Rib.prefixes rib)
    with
    | Some found -> found
    | None -> Alcotest.fail "viewpoint has no peered route"
  in
  Context.advance_feed c provider
    [ Rpi_bgp.Update.withdraw ~from_as ~to_as:provider prefix ];
  let report' = Context.sa_report c provider in
  let after = Context.feed_counters c provider in
  Alcotest.(check int) "one update applied"
    (before.Rpi_ingest.State.updates_applied + 1)
    after.Rpi_ingest.State.updates_applied;
  Alcotest.(check bool) "refresh touched exactly the withdrawn prefix" true
    (after.Rpi_ingest.State.prefixes_recomputed
    <= before.Rpi_ingest.State.prefixes_recomputed + 1);
  let batch' =
    Export_infer.analyze c.Context.corrected ~provider
      ~origins:c.Context.collector_origins
      (fst (Context.sa_view c provider))
  in
  Alcotest.(check int) "advanced report = batch over advanced table"
    (List.length batch'.Export_infer.sa)
    (List.length report'.Export_infer.sa)

let test_incremental_epoch_ribs () =
  (* The invalidation scheme fig6+7 runs on: withdraw-touched prefixes
     removed, only changed atoms re-propagated (cached otherwise), table
     extended in place.  Every epoch must equal the from-scratch rebuild. *)
  let c = Lazy.force ctx in
  let s = c.Context.scenario in
  let provider = Asn.of_int 1 in
  let policy = Scenario.policy_of s provider in
  let rng = Rpi_prng.Prng.create ~seed:11 in
  let timeline =
    Rpi_sim.Timeline.evolve rng ~graph:s.Scenario.graph
      ~churn:Rpi_sim.Timeline.monthly_churn ~epochs:5 s.Scenario.atoms
  in
  let cache = Scenario.create_result_cache () in
  let module Rib = Rpi_bgp.Rib in
  let step (prev, rib) (ep : Rpi_sim.Timeline.epoch) =
    match prev with
    | None ->
        Rpi_sim.Vantage.rib_at ~policy ~vantage:provider
          (Scenario.rerun_with_atoms_cached s cache ep.Rpi_sim.Timeline.atoms)
    | Some prev_ep ->
        let touched =
          List.map Rpi_bgp.Update.prefix
            (Rpi_sim.Timeline.updates_between prev_ep ep)
        in
        let rib = List.fold_left (Fun.flip Rib.remove_routes) rib touched in
        let delta = Rpi_sim.Timeline.delta_between prev_ep ep in
        let fresh =
          delta.Rpi_sim.Timeline.added @ List.map snd delta.Rpi_sim.Timeline.changed
        in
        Rpi_sim.Vantage.extend_rib_at ~policy ~vantage:provider rib
          (Scenario.rerun_with_atoms_cached s cache fresh)
  in
  ignore
    (List.fold_left
       (fun st (ep : Rpi_sim.Timeline.epoch) ->
         let rib = step st ep in
         let batch =
           Rpi_sim.Vantage.rib_at ~policy ~vantage:provider
             (Scenario.rerun_with_atoms s ep.Rpi_sim.Timeline.atoms)
         in
         Alcotest.(check bool)
           (Printf.sprintf "epoch %d incremental rib = batch rib"
              ep.Rpi_sim.Timeline.index)
           true (Rib.equal rib batch);
         (Some ep, rib))
       (None, Rib.empty) timeline)

let test_run_all_smoke () =
  (* run_all stitches every section together without raising. *)
  let c = Lazy.force ctx in
  let out = Exp.run_all c in
  Alcotest.(check bool) "mentions every table" true
    (List.for_all
       (fun t -> contains out t)
       [ "Table 1"; "Table 5"; "Table 10"; "Fig. 2"; "Fig. 9" ])

let () =
  Alcotest.run "rpi_experiments"
    [
      ( "integration",
        [
          Alcotest.test_case "all experiments render" `Slow test_all_experiments_render;
          Alcotest.test_case "typical preference shape" `Quick test_typical_preference_shape;
          Alcotest.test_case "next-hop consistency shape" `Quick test_nexthop_shape;
          Alcotest.test_case "SA shape" `Quick test_sa_shape;
          Alcotest.test_case "inference quality" `Quick test_relationship_inference_quality;
          Alcotest.test_case "context delta invalidation" `Quick
            test_context_delta_invalidation;
          Alcotest.test_case "incremental epoch ribs" `Slow test_incremental_epoch_ribs;
          Alcotest.test_case "run_all smoke" `Slow test_run_all_smoke;
        ] );
    ]
