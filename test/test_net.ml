module Ipv4 = Rpi_net.Ipv4
module Prefix = Rpi_net.Prefix
module Trie = Rpi_net.Prefix_trie
module Pset = Rpi_net.Prefix_set

let addr = Ipv4.of_string_exn
let p = Prefix.of_string_exn

let prefix_testable = Alcotest.testable Prefix.pp Prefix.equal

(* --- Ipv4 --- *)

let test_ipv4_roundtrip () =
  List.iter
    (fun s -> Alcotest.(check string) s s (Ipv4.to_string (addr s)))
    [ "0.0.0.0"; "255.255.255.255"; "10.1.2.3"; "192.168.250.23"; "12.0.0.1" ]

let test_ipv4_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" s)
        true
        (match Ipv4.of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "a.b.c.d"; "1..2.3"; "01x.2.3.4"; "-1.2.3.4" ]

let test_ipv4_octets () =
  Alcotest.(check string) "octets" "12.10.1.0" (Ipv4.to_string (Ipv4.of_octets 12 10 1 0))

let test_ipv4_order () =
  Alcotest.(check bool) "10.0.0.0 < 11.0.0.0" true (Ipv4.compare (addr "10.0.0.0") (addr "11.0.0.0") < 0)

let test_ipv4_succ () =
  Alcotest.(check string) "succ" "10.0.1.0" (Ipv4.to_string (Ipv4.succ (addr "10.0.0.255")));
  Alcotest.(check string) "wraps" "0.0.0.0" (Ipv4.to_string (Ipv4.succ (addr "255.255.255.255")))

let test_ipv4_bit () =
  let a = addr "128.0.0.1" in
  Alcotest.(check bool) "bit 0" true (Ipv4.bit a 0);
  Alcotest.(check bool) "bit 1" false (Ipv4.bit a 1);
  Alcotest.(check bool) "bit 31" true (Ipv4.bit a 31)

(* --- Prefix --- *)

let test_prefix_canonical () =
  Alcotest.check prefix_testable "host bits cleared" (p "10.1.0.0/16") (Prefix.make (addr "10.1.255.255") 16)

let test_prefix_parse () =
  Alcotest.(check string) "roundtrip" "12.0.0.0/19" (Prefix.to_string (p "12.0.0.0/19"));
  Alcotest.check prefix_testable "bare address is /32" (p "1.2.3.4/32") (p "1.2.3.4");
  Alcotest.(check bool)
    "bad length rejected" true
    (match Prefix.of_string "1.2.3.4/33" with Error _ -> true | Ok _ -> false)

let test_prefix_contains () =
  Alcotest.(check bool) "inside" true (Prefix.contains (p "10.0.0.0/8") (addr "10.200.3.4"));
  Alcotest.(check bool) "outside" false (Prefix.contains (p "10.0.0.0/8") (addr "11.0.0.1"));
  Alcotest.(check bool) "default contains all" true (Prefix.contains Prefix.default_route (addr "200.1.2.3"))

let test_prefix_subsumes () =
  Alcotest.(check bool) "/19 subsumes /24" true (Prefix.subsumes (p "12.0.0.0/19") (p "12.0.10.0/24"));
  Alcotest.(check bool) "self subsumes" true (Prefix.subsumes (p "12.0.0.0/19") (p "12.0.0.0/19"));
  Alcotest.(check bool) "not strict on self" false (Prefix.strictly_subsumes (p "12.0.0.0/19") (p "12.0.0.0/19"));
  Alcotest.(check bool) "longer cannot subsume" false (Prefix.subsumes (p "12.0.10.0/24") (p "12.0.0.0/19"))

let test_prefix_split_aggregate () =
  match Prefix.split (p "10.0.0.0/23") with
  | None -> Alcotest.fail "split failed"
  | Some (lo, hi) ->
      Alcotest.check prefix_testable "low half" (p "10.0.0.0/24") lo;
      Alcotest.check prefix_testable "high half" (p "10.0.1.0/24") hi;
      begin
        match Prefix.aggregate lo hi with
        | Some parent -> Alcotest.check prefix_testable "re-aggregates" (p "10.0.0.0/23") parent
        | None -> Alcotest.fail "aggregate failed"
      end;
      Alcotest.(check bool)
        "non-siblings do not aggregate" true
        (Prefix.aggregate (p "10.0.1.0/24") (p "10.0.2.0/24") = None)

let test_prefix_split_32 () =
  Alcotest.(check bool) "cannot split /32" true (Prefix.split (p "1.2.3.4/32") = None)

let test_prefix_split_to () =
  let subs = Prefix.split_to (p "10.0.0.0/22") 24 in
  Alcotest.(check int) "four /24s" 4 (List.length subs);
  Alcotest.(check (list string)) "enumerated"
    [ "10.0.0.0/24"; "10.0.1.0/24"; "10.0.2.0/24"; "10.0.3.0/24" ]
    (List.map Prefix.to_string subs)

let test_prefix_supernet () =
  Alcotest.(check (option string)) "parent"
    (Some "10.0.0.0/23")
    (Option.map Prefix.to_string (Prefix.supernet (p "10.0.1.0/24")));
  Alcotest.(check bool) "no parent of default" true (Prefix.supernet Prefix.default_route = None)

let test_prefix_addresses () =
  Alcotest.(check string) "first" "10.0.0.0" (Ipv4.to_string (Prefix.first_address (p "10.0.0.0/24")));
  Alcotest.(check string) "last" "10.0.0.255" (Ipv4.to_string (Prefix.last_address (p "10.0.0.0/24")))

let test_prefix_order () =
  Alcotest.(check bool) "shorter first on same network" true
    (Prefix.compare (p "10.0.0.0/16") (p "10.0.0.0/24") < 0)

(* --- Trie --- *)

let test_trie_basic () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.1.0.0/16") 2 in
  Alcotest.(check (option int)) "exact /8" (Some 1) (Trie.find (p "10.0.0.0/8") t);
  Alcotest.(check (option int)) "exact /16" (Some 2) (Trie.find (p "10.1.0.0/16") t);
  Alcotest.(check (option int)) "absent" None (Trie.find (p "10.2.0.0/16") t);
  Alcotest.(check int) "cardinal" 2 (Trie.cardinal t)

let test_trie_replace_remove () =
  let t = Trie.empty |> Trie.add (p "10.0.0.0/8") 1 |> Trie.add (p "10.0.0.0/8") 9 in
  Alcotest.(check (option int)) "replaced" (Some 9) (Trie.find (p "10.0.0.0/8") t);
  Alcotest.(check int) "still one entry" 1 (Trie.cardinal t);
  let t = Trie.remove (p "10.0.0.0/8") t in
  Alcotest.(check bool) "empty after removal" true (Trie.is_empty t)

let test_trie_longest_match () =
  let t =
    Trie.empty
    |> Trie.add (p "0.0.0.0/0") 0
    |> Trie.add (p "10.0.0.0/8") 8
    |> Trie.add (p "10.1.0.0/16") 16
  in
  let check_lm addr_s expected =
    match Trie.longest_match (addr addr_s) t with
    | Some (_, v) -> Alcotest.(check int) addr_s expected v
    | None -> Alcotest.failf "%s: no match" addr_s
  in
  check_lm "10.1.2.3" 16;
  check_lm "10.2.0.1" 8;
  check_lm "11.0.0.1" 0

let test_trie_longest_match_empty () =
  Alcotest.(check bool) "no match in empty" true (Trie.longest_match (addr "1.1.1.1") Trie.empty = None)

let test_trie_subsumed_by () =
  let t =
    Trie.of_list
      [ (p "10.0.0.0/8", "a"); (p "10.1.0.0/16", "b"); (p "10.1.2.0/24", "c"); (p "11.0.0.0/8", "d") ]
  in
  let under = Trie.subsumed_by (p "10.0.0.0/8") t |> List.map fst |> List.map Prefix.to_string in
  Alcotest.(check (list string)) "all under 10/8" [ "10.0.0.0/8"; "10.1.0.0/16"; "10.1.2.0/24" ] under;
  let strict = Trie.strict_more_specifics (p "10.0.0.0/8") t |> List.map fst in
  Alcotest.(check int) "strict excludes self" 2 (List.length strict)

let test_trie_supernets () =
  let t =
    Trie.of_list [ (p "0.0.0.0/0", 0); (p "10.0.0.0/8", 8); (p "10.1.0.0/16", 16) ]
  in
  let ups = Trie.supernets_of (p "10.1.2.0/24") t |> List.map snd in
  Alcotest.(check (list int)) "shortest first" [ 0; 8; 16 ] ups;
  Alcotest.(check bool) "has strict supernet" true (Trie.has_strict_supernet (p "10.1.0.0/16") t);
  Alcotest.(check bool) "default has none" false (Trie.has_strict_supernet (p "0.0.0.0/0") t)

let test_trie_to_list_sorted () =
  let ps = [ p "9.0.0.0/8"; p "10.0.0.0/8"; p "10.0.0.0/16"; p "10.128.0.0/9" ] in
  let t = Trie.of_list (List.map (fun q -> (q, ())) (List.rev ps)) in
  Alcotest.(check (list string))
    "sorted order"
    (List.map Prefix.to_string ps)
    (List.map (fun (q, ()) -> Prefix.to_string q) (Trie.to_list t))

let test_trie_update () =
  let t = Trie.empty |> Trie.update (p "10.0.0.0/8") (fun _ -> Some 1) in
  let t = Trie.update (p "10.0.0.0/8") (Option.map succ) t in
  Alcotest.(check (option int)) "updated" (Some 2) (Trie.find (p "10.0.0.0/8") t);
  let t = Trie.update (p "10.0.0.0/8") (fun _ -> None) t in
  Alcotest.(check bool) "removed" true (Trie.is_empty t)

let test_trie_map_filter () =
  let t = Trie.of_list [ (p "1.0.0.0/8", 1); (p "2.0.0.0/8", 2); (p "3.0.0.0/8", 3) ] in
  let doubled = Trie.map (fun v -> v * 2) t in
  Alcotest.(check (option int)) "mapped" (Some 4) (Trie.find (p "2.0.0.0/8") doubled);
  let odd = Trie.filter (fun _ v -> v mod 2 = 1) t in
  Alcotest.(check int) "filtered" 2 (Trie.cardinal odd)

let test_trie_default_route () =
  (* 0.0.0.0/0 is the zero-depth root entry: it matches the entire
     address space (both extremes included), is its own exact match, and
     subsumes every other binding. *)
  let t = Trie.empty |> Trie.add (p "0.0.0.0/0") 0 |> Trie.add (p "128.0.0.0/1") 1 in
  let lm a =
    match Trie.longest_match (addr a) t with
    | Some (_, v) -> v
    | None -> Alcotest.failf "%s: no match under a default route" a
  in
  Alcotest.(check int) "lowest address" 0 (lm "0.0.0.0");
  Alcotest.(check int) "highest address hits the /1" 1 (lm "255.255.255.255");
  Alcotest.(check int) "just below the /1" 0 (lm "127.255.255.255");
  Alcotest.(check (option int)) "default is an exact match" (Some 0)
    (Trie.find (p "0.0.0.0/0") t);
  Alcotest.(check int) "default subsumes everything" 2
    (List.length (Trie.subsumed_by (p "0.0.0.0/0") t));
  Alcotest.(check (list int)) "default is every prefix's supernet" [ 0; 1 ]
    (Trie.supernets_of (p "255.0.0.0/8") t |> List.map snd)

let test_trie_host_routes () =
  (* /32s sit at maximum depth: exact match, longest match and covering
     queries must all agree, including at the address-space extremes. *)
  let t =
    Trie.of_list
      [
        (p "10.0.0.0/24", 24);
        (p "10.0.0.1/32", 1);
        (p "10.0.0.2/32", 2);
        (p "0.0.0.0/32", 100);
        (p "255.255.255.255/32", 101);
      ]
  in
  let lm a =
    match Trie.longest_match (addr a) t with
    | Some (_, v) -> v
    | None -> Alcotest.failf "%s: no match" a
  in
  Alcotest.(check int) "host beats covering /24" 1 (lm "10.0.0.1");
  Alcotest.(check int) "second host" 2 (lm "10.0.0.2");
  Alcotest.(check int) "non-host falls to the /24" 24 (lm "10.0.0.3");
  Alcotest.(check int) "zero host" 100 (lm "0.0.0.0");
  Alcotest.(check int) "broadcast host" 101 (lm "255.255.255.255");
  Alcotest.(check (option int)) "exact /32" (Some 1) (Trie.find (p "10.0.0.1/32") t);
  Alcotest.(check bool) "a /32 cannot split further" true
    (Prefix.split (p "10.0.0.1/32") = None);
  Alcotest.(check int) "hosts are the /24's strict more-specifics" 2
    (List.length (Trie.strict_more_specifics (p "10.0.0.0/24") t))

let test_trie_adjacent_siblings () =
  (* Two same-length siblings split a parent on one bit.  The match for
     an address in either half must pick that half — never leak to the
     adjacent sibling — even at the first/last address of each half, and
     removing one sibling falls back to the parent, not the neighbour. *)
  let t =
    Trie.of_list
      [ (p "10.0.0.0/24", 24); (p "10.0.0.0/25", 1); (p "10.0.0.128/25", 2) ]
  in
  let lm trie a =
    match Trie.longest_match (addr a) trie with
    | Some (q, v) -> (Prefix.to_string q, v)
    | None -> Alcotest.failf "%s: no match" a
  in
  Alcotest.(check (pair string int)) "first address of the low half"
    ("10.0.0.0/25", 1) (lm t "10.0.0.0");
  Alcotest.(check (pair string int)) "last address of the low half"
    ("10.0.0.0/25", 1) (lm t "10.0.0.127");
  Alcotest.(check (pair string int)) "first address of the high half"
    ("10.0.0.128/25", 2) (lm t "10.0.0.128");
  Alcotest.(check (pair string int)) "last address of the high half"
    ("10.0.0.128/25", 2) (lm t "10.0.0.255");
  let without_low = Trie.remove (p "10.0.0.0/25") t in
  Alcotest.(check (pair string int)) "orphaned half falls back to the parent"
    ("10.0.0.0/24", 24)
    (lm without_low "10.0.0.127");
  Alcotest.(check (pair string int)) "surviving sibling unaffected"
    ("10.0.0.128/25", 2)
    (lm without_low "10.0.0.128");
  Alcotest.(check bool) "sibling is not its neighbour's supernet" false
    (List.exists
       (fun (q, _) -> Prefix.equal q (p "10.0.0.0/25"))
       (Trie.supernets_of (p "10.0.0.128/25") t));
  match Prefix.aggregate (p "10.0.0.0/25") (p "10.0.0.128/25") with
  | Some parent -> Alcotest.check prefix_testable "siblings aggregate" (p "10.0.0.0/24") parent
  | None -> Alcotest.fail "adjacent siblings must aggregate"

(* --- Prefix sets --- *)

let test_pset_ops () =
  let a = Pset.of_list [ p "1.0.0.0/8"; p "2.0.0.0/8" ] in
  let b = Pset.of_list [ p "2.0.0.0/8"; p "3.0.0.0/8" ] in
  Alcotest.(check int) "union" 3 (Pset.cardinal (Pset.union a b));
  Alcotest.(check int) "inter" 1 (Pset.cardinal (Pset.inter a b));
  Alcotest.(check int) "diff" 1 (Pset.cardinal (Pset.diff a b));
  Alcotest.(check bool) "subset" true (Pset.subset (Pset.inter a b) a);
  Alcotest.(check bool) "equal self" true (Pset.equal a a)

let test_pset_queries () =
  let s = Pset.of_list [ p "10.0.0.0/8"; p "10.1.0.0/16" ] in
  Alcotest.(check bool) "covers" true (Pset.covers_address s (addr "10.9.9.9"));
  Alcotest.(check bool) "not covered" false (Pset.covers_address s (addr "11.0.0.1"));
  Alcotest.(check (option string))
    "strict supernet"
    (Some "10.0.0.0/8")
    (Option.map Prefix.to_string (Pset.any_strictly_subsuming (p "10.1.0.0/16") s));
  Alcotest.(check int) "more specifics" 1 (List.length (Pset.more_specifics (p "10.0.0.0/8") s))

let test_pset_aggregable () =
  let s = Pset.of_list [ p "10.0.0.0/24"; p "10.0.1.0/24"; p "10.0.2.0/24" ] in
  match Pset.aggregable_pairs s with
  | [ (lo, hi, parent) ] ->
      Alcotest.check prefix_testable "lo" (p "10.0.0.0/24") lo;
      Alcotest.check prefix_testable "hi" (p "10.0.1.0/24") hi;
      Alcotest.check prefix_testable "parent" (p "10.0.0.0/23") parent
  | other -> Alcotest.failf "expected one pair, got %d" (List.length other)

(* --- Properties --- *)

let gen_prefix =
  QCheck2.Gen.(
    map2
      (fun a len -> Prefix.make (Ipv4.of_int32_exn (a land 0xFFFFFFFF)) len)
      (int_bound 0xFFFFFFF |> map (fun x -> x * 16))
      (int_range 0 32))

let prop_roundtrip =
  QCheck2.Test.make ~name:"prefix string roundtrip" ~count:500 gen_prefix (fun q ->
      Prefix.equal q (Prefix.of_string_exn (Prefix.to_string q)))

let prop_split_parts =
  QCheck2.Test.make ~name:"split halves subsumed and re-aggregate" ~count:500 gen_prefix
    (fun q ->
      match Prefix.split q with
      | None -> Prefix.length q = 32
      | Some (lo, hi) ->
          Prefix.strictly_subsumes q lo && Prefix.strictly_subsumes q hi
          && (not (Prefix.equal lo hi))
          && (match Prefix.aggregate lo hi with
             | Some parent -> Prefix.equal parent q
             | None -> false))

let prop_trie_find_after_add =
  QCheck2.Test.make ~name:"trie find after add" ~count:300
    QCheck2.Gen.(list_size (int_range 0 40) gen_prefix)
    (fun qs ->
      let t = Trie.of_list (List.mapi (fun i q -> (q, i)) qs) in
      List.for_all (fun q -> Trie.find q t <> None) qs)

let prop_trie_longest_match_is_supernet =
  QCheck2.Test.make ~name:"longest match subsumes the address" ~count:300
    QCheck2.Gen.(pair (list_size (int_range 1 30) gen_prefix) (int_bound 0xFFFFFF))
    (fun (qs, a) ->
      let a = Ipv4.of_int32_exn (a * 256) in
      let t = Trie.of_list (List.map (fun q -> (q, ())) qs) in
      match Trie.longest_match a t with
      | None -> List.for_all (fun q -> not (Prefix.contains q a)) qs
      | Some (q, ()) ->
          Prefix.contains q a
          && List.for_all
               (fun q' -> (not (Prefix.contains q' a)) || Prefix.length q' <= Prefix.length q)
               qs)

let prop_trie_cardinal =
  QCheck2.Test.make ~name:"cardinal equals distinct keys" ~count:300
    QCheck2.Gen.(list_size (int_range 0 40) gen_prefix)
    (fun qs ->
      let distinct = List.sort_uniq Prefix.compare qs in
      let t = Trie.of_list (List.map (fun q -> (q, ())) qs) in
      Trie.cardinal t = List.length distinct)

let () =
  Alcotest.run "rpi_net"
    [
      ( "ipv4",
        [
          Alcotest.test_case "roundtrip" `Quick test_ipv4_roundtrip;
          Alcotest.test_case "invalid" `Quick test_ipv4_invalid;
          Alcotest.test_case "octets" `Quick test_ipv4_octets;
          Alcotest.test_case "order" `Quick test_ipv4_order;
          Alcotest.test_case "succ" `Quick test_ipv4_succ;
          Alcotest.test_case "bit" `Quick test_ipv4_bit;
        ] );
      ( "prefix",
        [
          Alcotest.test_case "canonical" `Quick test_prefix_canonical;
          Alcotest.test_case "parse" `Quick test_prefix_parse;
          Alcotest.test_case "contains" `Quick test_prefix_contains;
          Alcotest.test_case "subsumes" `Quick test_prefix_subsumes;
          Alcotest.test_case "split/aggregate" `Quick test_prefix_split_aggregate;
          Alcotest.test_case "split /32" `Quick test_prefix_split_32;
          Alcotest.test_case "split_to" `Quick test_prefix_split_to;
          Alcotest.test_case "supernet" `Quick test_prefix_supernet;
          Alcotest.test_case "addresses" `Quick test_prefix_addresses;
          Alcotest.test_case "order" `Quick test_prefix_order;
        ] );
      ( "trie",
        [
          Alcotest.test_case "basic" `Quick test_trie_basic;
          Alcotest.test_case "replace/remove" `Quick test_trie_replace_remove;
          Alcotest.test_case "longest match" `Quick test_trie_longest_match;
          Alcotest.test_case "longest match empty" `Quick test_trie_longest_match_empty;
          Alcotest.test_case "subsumed_by" `Quick test_trie_subsumed_by;
          Alcotest.test_case "supernets" `Quick test_trie_supernets;
          Alcotest.test_case "sorted listing" `Quick test_trie_to_list_sorted;
          Alcotest.test_case "update" `Quick test_trie_update;
          Alcotest.test_case "map/filter" `Quick test_trie_map_filter;
          Alcotest.test_case "default route boundaries" `Quick test_trie_default_route;
          Alcotest.test_case "host routes" `Quick test_trie_host_routes;
          Alcotest.test_case "adjacent siblings" `Quick test_trie_adjacent_siblings;
        ] );
      ( "prefix_set",
        [
          Alcotest.test_case "set ops" `Quick test_pset_ops;
          Alcotest.test_case "queries" `Quick test_pset_queries;
          Alcotest.test_case "aggregable pairs" `Quick test_pset_aggregable;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip;
            prop_split_parts;
            prop_trie_find_after_add;
            prop_trie_longest_match_is_supernet;
            prop_trie_cardinal;
          ] );
    ]
