(* The linter linted: each rule fires on a minimal snippet at the exact
   line, path scoping holds, and the legitimate patterns (local state,
   module-defined compare, suppressions, the baseline) stay quiet. *)

module Rule = Rpi_lint.Rule
module Diagnostic = Rpi_lint.Diagnostic
module Baseline = Rpi_lint.Baseline
module Engine = Rpi_lint.Engine

(* (rule, line) pairs, report order. *)
let hits ~file source =
  List.map
    (fun (d : Diagnostic.t) -> (d.Diagnostic.rule, d.Diagnostic.line))
    (Engine.lint_source ~file source)

let pair = Alcotest.(list (pair string int))

let test_mutable_toplevel () =
  Alcotest.check pair "toplevel Hashtbl"
    [ ("mutable-toplevel", 2) ]
    (hits ~file:"lib/core/fake.ml" "let ok = 1\nlet cache = Hashtbl.create 8\n");
  Alcotest.check pair "toplevel ref"
    [ ("mutable-toplevel", 1) ]
    (hits ~file:"lib/core/fake.ml" "let hits = ref 0\n");
  Alcotest.check pair "mutable record type"
    [ ("mutable-toplevel", 1) ]
    (hits ~file:"lib/core/fake.ml" "type t = { mutable count : int }\n");
  Alcotest.check pair "nested module toplevel"
    [ ("mutable-toplevel", 2) ]
    (hits ~file:"lib/core/fake.ml"
       "module Inner = struct\n  let tbl = Hashtbl.create 4\nend\n");
  Alcotest.check pair "array literal"
    [ ("mutable-toplevel", 1) ]
    (hits ~file:"lib/core/fake.ml" "let scratch = [| 0; 0 |]\n")

let test_mutable_toplevel_quiet () =
  Alcotest.check pair "local Hashtbl inside a function is fine" []
    (hits ~file:"lib/core/fake.ml"
       "let count xs =\n\
       \  let tbl = Hashtbl.create 8 in\n\
       \  List.iter (fun x -> Hashtbl.replace tbl x ()) xs;\n\
       \  Hashtbl.length tbl\n");
  Alcotest.check pair "domain-safe primitives are exempt" []
    (hits ~file:"lib/core/fake.ml"
       "let lock = Mutex.create ()\nlet hits = Atomic.make 0\n");
  Alcotest.check pair "functor bodies create per-application state" []
    (hits ~file:"lib/core/fake.ml"
       "module Make () = struct\n  let tbl = Hashtbl.create 4\nend\n")

let test_poly_compare () =
  Alcotest.check pair "Stdlib.compare"
    [ ("poly-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml" "let cmp a b = Stdlib.compare a b\n");
  Alcotest.check pair "bare compare"
    [ ("poly-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml" "let sort xs = List.sort compare xs\n");
  Alcotest.check pair "(=) on a string literal"
    [ ("poly-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml" "let is_rib l = l = \"RIB\"\n");
  Alcotest.check pair "(<>) on Some"
    [ ("poly-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml" "let f x = x <> Some 3\n")

let test_poly_compare_quiet () =
  (* The allowlisted pattern: a module defining its own compare may call
     it bare — route.ml/relationship.ml after the rank refactor. *)
  Alcotest.check pair "module-defined compare" []
    (hits ~file:"lib/bgp/fake.ml"
       "let rank = function `A -> 0 | `B -> 1\n\
        let compare a b = Int.compare (rank a) (rank b)\n\
        let equal a b = compare a b = 0\n");
  Alcotest.check pair "int and empty-string comparisons are fine" []
    (hits ~file:"lib/bgp/fake.ml"
       "let f n s xs = n = 0 && String.length s = 1 && s = \"\" && xs = []\n")

let test_catch_all () =
  Alcotest.check pair "with _ ->"
    [ ("catch-all-handler", 1) ]
    (hits ~file:"lib/mrt/fake.ml"
       "let f x = try int_of_string x with _ -> 0\n");
  Alcotest.check pair "match ... with exception _"
    [ ("catch-all-handler", 1) ]
    (hits ~file:"lib/mrt/fake.ml"
       "let f x = match int_of_string x with v -> v | exception _ -> 0\n");
  Alcotest.check pair "specific exception is fine" []
    (hits ~file:"lib/mrt/fake.ml"
       "let f x = try int_of_string x with Failure _ -> 0\n")

let test_obj_magic () =
  Alcotest.check pair "Obj.magic in lib"
    [ ("no-obj-magic", 1) ]
    (hits ~file:"lib/sim/fake.ml" "let f x = Obj.magic x\n");
  Alcotest.check pair "Marshal in lib"
    [ ("no-obj-magic", 1) ]
    (hits ~file:"lib/sim/fake.ml"
       "let f x = Marshal.to_string x []\n");
  Alcotest.check pair "Obj in bin is tolerated" []
    (hits ~file:"bin/fake.ml" "let f x = Obj.magic x\n")

let test_stdout_in_lib () =
  Alcotest.check pair "print_endline in lib"
    [ ("stdout-in-lib", 1) ]
    (hits ~file:"lib/stats/fake.ml" "let f () = print_endline \"hi\"\n");
  Alcotest.check pair "Printf.printf in lib"
    [ ("stdout-in-lib", 1) ]
    (hits ~file:"lib/stats/fake.ml" "let f n = Printf.printf \"%d\" n\n");
  Alcotest.check pair "printing from bin is fine" []
    (hits ~file:"bin/fake.ml" "let f () = print_endline \"hi\"\n");
  Alcotest.check pair "sprintf in lib is fine" []
    (hits ~file:"lib/stats/fake.ml" "let f n = Printf.sprintf \"%d\" n\n")

let test_failwith_in_core () =
  Alcotest.check pair "failwith in core"
    [ ("failwith-in-core", 1) ]
    (hits ~file:"lib/core/fake.ml" "let f () = failwith \"boom\"\n");
  Alcotest.check pair "assert false in core"
    [ ("failwith-in-core", 1) ]
    (hits ~file:"lib/core/fake.ml" "let f () = assert false\n");
  Alcotest.check pair "failwith outside core is tolerated" []
    (hits ~file:"lib/bgp/fake.ml" "let f () = failwith \"boom\"\n");
  Alcotest.check pair "ordinary assert is fine" []
    (hits ~file:"lib/core/fake.ml" "let f n = assert (n > 0)\n")

let test_list_length_in_compare () =
  Alcotest.check pair "List.length in a compare* binding (one per occurrence)"
    [ ("list-length-in-compare", 1); ("list-length-in-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml"
       "let compare_paths a b = Int.compare (List.length a) (List.length b)\n");
  Alcotest.check pair "List.nth in a compare* binding"
    [ ("list-length-in-compare", 2); ("list-length-in-compare", 2) ]
    (hits ~file:"lib/bgp/fake.ml"
       "let compare_first xs ys =\n\
       \  Int.compare (List.nth xs 0) (List.nth ys 0)\n");
  Alcotest.check pair "lambda passed to List.sort"
    [ ("list-length-in-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml"
       "let f xs = List.sort (fun a b -> Int.compare (List.length a) 0) xs\n");
  Alcotest.check pair "lambda passed to Array.stable_sort"
    [ ("list-length-in-compare", 1); ("list-length-in-compare", 1) ]
    (hits ~file:"lib/bgp/fake.ml"
       "let f a = Array.stable_sort (fun x y -> Int.compare (List.length x) (List.nth y 0)) a\n");
  Alcotest.check pair "local compare* binding inside a function"
    [ ("list-length-in-compare", 2); ("list-length-in-compare", 2) ]
    (hits ~file:"lib/bgp/fake.ml"
       "let f xs =\n\
       \  let compare_rows a b = Int.compare (List.length a) (List.length b) in\n\
       \  List.sort compare_rows xs\n")

let test_list_length_in_compare_quiet () =
  Alcotest.check pair "List.length outside comparators is fine" []
    (hits ~file:"lib/bgp/fake.ml" "let f xs = List.length xs\n");
  Alcotest.check pair "compare* using a precomputed length is fine" []
    (hits ~file:"lib/bgp/fake.ml"
       "let compare_rows a b = Int.compare (fst a) (fst b)\n");
  Alcotest.check pair "List.compare_lengths is the endorsed spelling" []
    (hits ~file:"lib/bgp/fake.ml"
       "let compare_paths a b = List.compare_lengths a b\n");
  Alcotest.check pair "sort with a named comparator is fine at the call site" []
    (hits ~file:"lib/bgp/fake.ml" "let f xs = List.sort Int.compare xs\n");
  Alcotest.check pair "List.length in sort's *input*, not its comparator" []
    (hits ~file:"lib/bgp/fake.ml"
       "let f xs = List.sort Int.compare (List.map List.length xs)\n")

let test_engine_internals () =
  Alcotest.check pair "dc_* record literal outside lib/sim"
    [ ("engine-internals", 1) ]
    (hits ~file:"lib/check/fake.ml"
       "let v meta = { Rpi_sim.Decision.dc_meta = meta; dc_lp = meta }\n");
  Alcotest.check pair "functional update of a ctx outside lib/sim"
    [ ("engine-internals", 1) ]
    (hits ~file:"bench/fake.ml" "let v c lp = { c with dc_lp = lp }\n");
  Alcotest.check pair "the engine itself may build its arena views" []
    (hits ~file:"lib/sim/fake.ml"
       "let v meta = { Rpi_sim.Decision.dc_meta = meta; dc_lp = meta }\n");
  Alcotest.check pair "unrelated record fields stay quiet" []
    (hits ~file:"lib/check/fake.ml" "let v x = { contents = x }\n")

let test_missing_mli () =
  let diags =
    Engine.missing_mli
      [ "lib/core/a.ml"; "lib/core/b.ml"; "lib/core/b.mli"; "bin/c.ml" ]
  in
  Alcotest.check pair "only the uncovered lib module"
    [ ("missing-mli", 1) ]
    (List.map (fun (d : Diagnostic.t) -> (d.Diagnostic.rule, d.Diagnostic.line)) diags);
  Alcotest.(check string)
    "names the file" "lib/core/a.ml"
    (match diags with d :: _ -> d.Diagnostic.file | [] -> "")

let test_suppression () =
  Alcotest.check pair "comment above the line" []
    (hits ~file:"lib/core/fake.ml"
       "(* rpilint: allow mutable-toplevel *)\nlet cache = Hashtbl.create 8\n");
  Alcotest.check pair "trailing comment on the line" []
    (hits ~file:"lib/core/fake.ml"
       "let cache = Hashtbl.create 8 (* rpilint: allow mutable-toplevel *)\n");
  Alcotest.check pair "suppression is rule-specific"
    [ ("mutable-toplevel", 2) ]
    (hits ~file:"lib/core/fake.ml"
       "(* rpilint: allow poly-compare *)\nlet cache = Hashtbl.create 8\n");
  Alcotest.check pair "suppression does not leak past the next line"
    [ ("mutable-toplevel", 3) ]
    (hits ~file:"lib/core/fake.ml"
       "(* rpilint: allow mutable-toplevel *)\nlet ok = 1\nlet cache = Hashtbl.create 8\n")

let test_baseline () =
  let baseline =
    match
      Baseline.parse_string
        "# comment\nmutable-toplevel lib/prng/prng.ml\npoly-compare lib/topo\n"
    with
    | Ok b -> b
    | Error e -> Alcotest.fail e
  in
  let d file rule = { Diagnostic.file; line = 1; col = 0; rule; message = "m" } in
  Alcotest.(check int)
    "exact file and directory prefix are filtered" 1
    (List.length
       (Engine.apply_baseline baseline
          [
            d "lib/prng/prng.ml" "mutable-toplevel";
            d "lib/topo/relationship.ml" "poly-compare";
            d "lib/bgp/route.ml" "poly-compare";
          ]));
  (match Baseline.parse_string "no-such-rule lib/x.ml\n" with
  | Ok _ -> Alcotest.fail "unknown rule id must be rejected"
  | Error _ -> ());
  match Baseline.parse_string "gibberish\n" with
  | Ok _ -> Alcotest.fail "entry without a path must be rejected"
  | Error _ -> ()

let test_parse_error () =
  match Engine.lint_source ~file:"lib/core/fake.ml" "let = in" with
  | [ d ] ->
      Alcotest.(check string) "parse-error rule" Engine.parse_error_rule
        d.Diagnostic.rule
  | other ->
      Alcotest.fail
        (Printf.sprintf "expected one parse-error diagnostic, got %d"
           (List.length other))

let test_diagnostic_output () =
  let d =
    {
      Diagnostic.file = "lib/bgp/route.ml";
      line = 77;
      col = 17;
      rule = "poly-compare";
      message = "msg";
    }
  in
  Alcotest.(check string)
    "text format" "lib/bgp/route.ml:77:17 [poly-compare] msg"
    (Diagnostic.to_string d);
  match Rpi_json.of_string (Rpi_json.to_string (Diagnostic.to_json d)) with
  | Ok (Rpi_json.Obj fields) ->
      Alcotest.(check (option string))
        "rule field"
        (Some "poly-compare")
        (match List.assoc_opt "rule" fields with
        | Some (Rpi_json.String s) -> Some s
        | _ -> None)
  | Ok _ | Error _ -> Alcotest.fail "diagnostic JSON must parse back to an object"

let test_rule_catalogue () =
  Alcotest.(check int) "thirteen shipped rules" 13 (List.length Rule.all);
  Alcotest.(check int) "four typedtree rules" 4 (List.length Rule.typed);
  Alcotest.(check int) "nine parsetree rules" 9 (List.length Rule.untyped);
  List.iter
    (fun (r : Rule.t) ->
      Alcotest.(check bool)
        (r.Rule.id ^ " resolvable")
        true
        (match Rule.find r.Rule.id with Some _ -> true | None -> false))
    Rule.all

(* ------------------------------------------------------------------ *)
(* Typedtree rules.

   These need a typing environment, so fixtures are typechecked
   in-process against the stdlib ([Compmisc.initial_env]).  Fixtures
   that exercise intern-id-escape define their own local [Path_intern]
   and [Rpi_json] modules — the rules match on normalized path
   components, so a locally-scoped module with the right name behaves
   exactly like the real one without needing the repo's cmi files on
   the load path. *)

module Typed_engine = Rpi_lint.Typed_engine

let typing_env =
  lazy
    (Compmisc.init_path ();
     Compmisc.initial_env ())

let typecheck_unit ?(modname = [ "Fixture" ]) ~file source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf file;
  let parsed = Parse.implementation lexbuf in
  let str, _, _, _, _ =
    Typemod.type_structure (Lazy.force typing_env) parsed
  in
  {
    Typed_engine.tu_file = file;
    tu_source = source;
    tu_modname = modname;
    tu_structure = str;
  }

let typed_hits ?rules ?modname ~file source =
  List.map
    (fun (d : Diagnostic.t) -> (d.Diagnostic.rule, d.Diagnostic.line))
    (Typed_engine.lint_units ?rules [ typecheck_unit ?modname ~file source ])

let test_domain_race () =
  Alcotest.check pair "ref mutated from a spawned closure, via a local call"
    [ ("domain-race", 2) ]
    (typed_hits ~file:"lib/fake/race.ml"
       "let total = ref 0\n\
        let bump () = incr total\n\
        let run_workers () = ignore (Domain.spawn (fun () -> bump ()))\n");
  Alcotest.check pair "Hashtbl shared with the pool closure directly"
    [ ("domain-race", 3) ]
    (typed_hits ~file:"lib/fake/race.ml"
       "let cache : (int, int) Hashtbl.t = Hashtbl.create 8\n\
        let work () =\n\
       \  ignore (Domain.spawn (fun () -> Hashtbl.replace cache 1 2))\n")

let test_domain_race_quiet () =
  Alcotest.check pair "Atomic state is exempt" []
    (typed_hits ~file:"lib/fake/race.ml"
       "let total = Atomic.make 0\n\
        let bump () = Atomic.incr total\n\
        let run_workers () = ignore (Domain.spawn (fun () -> bump ()))\n");
  Alcotest.check pair "mutable state never reached from a spawn is quiet" []
    (typed_hits ~file:"lib/fake/race.ml"
       "let total = ref 0\n\
        let bump () = incr total\n\
        let run_workers () = ignore (Domain.spawn (fun () -> 1 + 1))\n");
  Alcotest.check pair "mutex-guarded access is quiet" []
    (typed_hits ~file:"lib/fake/race.ml"
       "let lock = Mutex.create ()\n\
        let total = ref 0\n\
        let bump () = Mutex.lock lock; incr total; Mutex.unlock lock\n\
        let run_workers () = ignore (Domain.spawn (fun () -> bump ()))\n");
  Alcotest.check pair "local mutable state inside the closure is quiet" []
    (typed_hits ~file:"lib/fake/race.ml"
       "let run_workers () =\n\
       \  ignore (Domain.spawn (fun () -> let c = ref 0 in incr c; !c))\n")

let test_hot_path_alloc () =
  Alcotest.check pair "closure allocated inside a hot function"
    [ ("hot-path-alloc", 2) ]
    (typed_hits ~file:"lib/fake/hot.ml"
       "let[@rpilint.hot] apply_twice f x =\n\
       \  let g y = f (f y) in\n\
       \  g x\n");
  (* The Printf line carries two findings: the call itself and the
     format literal, which elaborates to a boxed CamlinternalFormat
     constructor — both genuinely allocate. *)
  Alcotest.check pair "tuple and Printf each flagged"
    [ ("hot-path-alloc", 2); ("hot-path-alloc", 3); ("hot-path-alloc", 3) ]
    (typed_hits ~file:"lib/fake/hot.ml"
       "let[@rpilint.hot] f a b =\n\
       \  let p = (a, b) in\n\
       \  Printf.sprintf \"%d\" (fst p)\n")

let test_hot_path_alloc_quiet () =
  Alcotest.check pair "scalar arithmetic with a match spine is quiet" []
    (typed_hits ~file:"lib/fake/hot.ml"
       "let[@rpilint.hot] rank = function 0 -> 1 | n -> (n * 2) + 1\n");
  Alcotest.check pair "unannotated allocating function is quiet" []
    (typed_hits ~file:"lib/fake/hot.ml"
       "let apply_twice f x =\n\
       \  let g y = f (f y) in\n\
       \  g x\n");
  Alcotest.check pair "suppression comment applies to typed findings too" []
    (typed_hits ~file:"lib/fake/hot.ml"
       "let[@rpilint.hot] apply_twice f x =\n\
       \  (* rpilint: allow hot-path-alloc *)\n\
       \  let g y = f (f y) in\n\
       \  g x\n")

let test_hot_path_alloc_csr () =
  (* The engine's CSR row walk, the way the scaled solver writes it:
     flat int-array reads driven by edge indices — nothing boxes, so
     the hot annotation stays quiet... *)
  Alcotest.check pair "allocation-free CSR row traversal is quiet" []
    (typed_hits ~file:"lib/fake/csr.ml"
       "let[@rpilint.hot] rec row_sum (dst : int array) (rel : int array) t stop \
        acc =\n\
       \  if t >= stop then acc\n\
       \  else row_sum dst rel (t + 1) stop (acc + dst.(t) + rel.(t))\n");
  (* ...while the pre-CSR shape — materializing a (neighbor, rel) pair
     per visited edge — allocates a tuple and a cons cell on every
     iteration and is exactly what the rule exists to catch. *)
  Alcotest.check pair "per-edge pair materialization is flagged"
    [ ("hot-path-alloc", 3); ("hot-path-alloc", 3) ]
    (typed_hits ~file:"lib/fake/csr.ml"
       "let[@rpilint.hot] rec row_pairs (dst : int array) (rel : int array) t \
        stop acc =\n\
       \  if t >= stop then acc\n\
       \  else row_pairs dst rel (t + 1) stop ((dst.(t), rel.(t)) :: acc)\n")

(* Local stand-ins for the real modules: the rule matches normalized
   path components, so [Path_intern.id] and [Rpi_json.t] here trip it
   exactly like the library ones. *)
let escape_prelude =
  "module Path_intern : sig\n\
  \  type id\n\
  \  val intern : int -> id\n\
  \  val to_int : id -> int\n\
   end = struct\n\
  \  type id = int\n\
  \  let intern x = x\n\
  \  let to_int x = x\n\
   end\n\
   module Rpi_json = struct\n\
  \  type t = Null | Int of int\n\
   end\n"

let prelude_lines = 12

let test_intern_id_escape () =
  Alcotest.check pair "id reaching a JSON constructor argument"
    [ ("intern-id-escape", prelude_lines + 1) ]
    (typed_hits ~file:"lib/fake/escape.ml"
       (escape_prelude
      ^ "let leak (p : Path_intern.id) = Rpi_json.Int (Path_intern.to_int p)\n"))

let test_intern_id_escape_quiet () =
  Alcotest.check pair "plain ints serialize freely" []
    (typed_hits ~file:"lib/fake/escape.ml"
       (escape_prelude ^ "let fine (n : int) = Rpi_json.Int n\n"));
  Alcotest.check pair "converting before the serializer call is the fix" []
    (typed_hits ~file:"lib/fake/escape.ml"
       (escape_prelude
      ^ "let ok p = let n = Path_intern.to_int p in Rpi_json.Int n\n"))


(* Unix is not on the fixture load path, so stand in a local module —
   the rule matches normalized path components, exactly as the
   intern-id fixtures do for Path_intern. *)
let blocking_prelude =
  "module Unix = struct\n\
  \  let read () = 0\n\
  \  let sleepf (_ : float) = ()\n\
  \  let select x = x\n\
   end\n"

let blocking_lines = 5

let test_blocking_in_eventloop () =
  Alcotest.check pair "blocking read in event-loop code"
    [ ("blocking-in-eventloop", blocking_lines + 1) ]
    (typed_hits
       ~modname:[ "Rpi_serve"; "Eventloop" ]
       ~file:"lib/serve/eventloop.ml"
       (blocking_prelude ^ "let pump () = Unix.read ()\n"));
  Alcotest.check pair "sleep in a helper of a Conn unit"
    [ ("blocking-in-eventloop", blocking_lines + 1) ]
    (typed_hits
       ~modname:[ "Rpi_serve"; "Conn" ]
       ~file:"lib/serve/conn.ml"
       (blocking_prelude
      ^ "let nap () = Unix.sleepf 0.5\n\
         let turn () = nap ()\n"))

let test_blocking_in_eventloop_quiet () =
  Alcotest.check pair "select is the sanctioned parking point" []
    (typed_hits
       ~modname:[ "Rpi_serve"; "Eventloop" ]
       ~file:"lib/serve/eventloop.ml"
       (blocking_prelude ^ "let park x = Unix.select x\n"));
  Alcotest.check pair "identical source outside the serving core is quiet" []
    (typed_hits ~file:"lib/fake/other.ml"
       (blocking_prelude ^ "let pump () = Unix.read ()\n"));
  Alcotest.check pair "suppression comment on the line above" []
    (typed_hits
       ~modname:[ "Rpi_serve"; "Conn" ]
       ~file:"lib/serve/conn.ml"
       (blocking_prelude
      ^ "let pump () =\n\
        \  (* rpilint: allow blocking-in-eventloop *)\n\
        \  Unix.read ()\n"))

let test_typed_rule_selection () =
  let source =
    "let total = ref 0\n\
     let bump () = incr total\n\
     let run_workers () = ignore (Domain.spawn (fun () -> bump ()))\n\
     let[@rpilint.hot] pair_up a b = (a, b)\n"
  in
  Alcotest.check pair "both rules by default"
    [ ("domain-race", 2); ("hot-path-alloc", 4) ]
    (typed_hits ~file:"lib/fake/mixed.ml" source);
  Alcotest.check pair "single-rule run sees only its own findings"
    [ ("hot-path-alloc", 4) ]
    (typed_hits ~rules:[ "hot-path-alloc" ] ~file:"lib/fake/mixed.ml" source)

let test_typed_ordering () =
  (* Deterministic output order: sorted by file, then line, whatever the
     unit order given to the engine. *)
  let unit_a =
    typecheck_unit ~file:"lib/fake/a.ml"
      "let[@rpilint.hot] f a b = (a, b)\n"
  in
  let unit_b =
    typecheck_unit ~file:"lib/fake/b.ml"
      "let[@rpilint.hot] g a b = (b, a)\n"
  in
  let files l = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.file) l in
  Alcotest.(check (list string))
    "sorted by file regardless of input order"
    [ "lib/fake/a.ml"; "lib/fake/b.ml" ]
    (files (Typed_engine.lint_units [ unit_b; unit_a ]));
  Alcotest.(check (list string))
    "same order when given in order"
    [ "lib/fake/a.ml"; "lib/fake/b.ml" ]
    (files (Typed_engine.lint_units [ unit_a; unit_b ]))

(* Smoke-load every .cmt dune produced for lib/: each must either load
   as a lintable unit, be a legitimately skipped alias/interface-only
   module, or at worst fail with a readable error (none expected), and
   the shipped tree must be clean under every typed rule. *)
let test_cmt_smoke () =
  let rec walk_cmts acc path =
    if Sys.file_exists path && Sys.is_directory path then
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left (fun acc n -> walk_cmts acc (Filename.concat path n)) acc
    else if Filename.check_suffix path ".cmt" then path :: acc
    else acc
  in
  (* Tests run from _build/default/test, so the built library tree is a
     sibling; fall back to other spellings for odd invocations. *)
  let root =
    List.find_opt
      (fun r -> walk_cmts [] r <> [])
      [ "../lib"; "lib"; "_build/default/lib" ]
  in
  match root with
  | None -> Alcotest.skip ()
  | Some root ->
      let cmts = walk_cmts [] root in
      let units =
        List.filter_map
          (fun path ->
            match Typed_engine.load_cmt ~source_root:".." path with
            | Ok u -> u
            | Error e -> Alcotest.fail (path ^ ": " ^ e))
          cmts
      in
      Alcotest.(check bool)
        (Printf.sprintf "loaded a substantial unit count (%d cmts -> %d units)"
           (List.length cmts) (List.length units))
        true
        (List.length units > 20);
      Alcotest.(check (list (pair string int)))
        "shipped lib/ tree is clean under the typed rules" []
        (List.map
           (fun (d : Diagnostic.t) -> (d.Diagnostic.rule, d.Diagnostic.line))
           (Typed_engine.lint_units units))

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "mutable-toplevel" `Quick test_mutable_toplevel;
          Alcotest.test_case "mutable-toplevel quiet" `Quick test_mutable_toplevel_quiet;
          Alcotest.test_case "poly-compare" `Quick test_poly_compare;
          Alcotest.test_case "poly-compare quiet" `Quick test_poly_compare_quiet;
          Alcotest.test_case "catch-all-handler" `Quick test_catch_all;
          Alcotest.test_case "no-obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "stdout-in-lib" `Quick test_stdout_in_lib;
          Alcotest.test_case "failwith-in-core" `Quick test_failwith_in_core;
          Alcotest.test_case "list-length-in-compare" `Quick test_list_length_in_compare;
          Alcotest.test_case "list-length-in-compare quiet" `Quick
            test_list_length_in_compare_quiet;
          Alcotest.test_case "engine-internals" `Quick test_engine_internals;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
        ] );
      ( "engine",
        [
          Alcotest.test_case "suppression comments" `Quick test_suppression;
          Alcotest.test_case "baseline" `Quick test_baseline;
          Alcotest.test_case "parse error" `Quick test_parse_error;
          Alcotest.test_case "diagnostic output" `Quick test_diagnostic_output;
          Alcotest.test_case "rule catalogue" `Quick test_rule_catalogue;
        ] );
      ( "typed rules",
        [
          Alcotest.test_case "domain-race" `Quick test_domain_race;
          Alcotest.test_case "domain-race quiet" `Quick test_domain_race_quiet;
          Alcotest.test_case "hot-path-alloc" `Quick test_hot_path_alloc;
          Alcotest.test_case "hot-path-alloc quiet" `Quick
            test_hot_path_alloc_quiet;
          Alcotest.test_case "hot-path-alloc CSR traversal" `Quick
            test_hot_path_alloc_csr;
          Alcotest.test_case "intern-id-escape" `Quick test_intern_id_escape;
          Alcotest.test_case "intern-id-escape quiet" `Quick
            test_intern_id_escape_quiet;
          Alcotest.test_case "blocking-in-eventloop" `Quick
            test_blocking_in_eventloop;
          Alcotest.test_case "blocking-in-eventloop quiet" `Quick
            test_blocking_in_eventloop_quiet;
          Alcotest.test_case "rule selection" `Quick test_typed_rule_selection;
          Alcotest.test_case "deterministic ordering" `Quick
            test_typed_ordering;
          Alcotest.test_case "cmt smoke over lib/" `Quick test_cmt_smoke;
        ] );
    ]
