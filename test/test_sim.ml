(* Tests for the propagation engine, vantage extraction and timeline,
   anchored on the worked examples of the paper (Figs. 3, 5, 8). *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Prefix = Rpi_net.Prefix
module Atom = Rpi_sim.Atom
module Policy = Rpi_sim.Policy
module Engine = Rpi_sim.Engine
module Vantage = Rpi_sim.Vantage
module Timeline = Rpi_sim.Timeline
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route

let asn = Asn.of_int
let p s = Prefix.of_string_exn s

let default_import _ = Policy.default_import

let check_path msg expected route =
  match route with
  | None -> Alcotest.failf "%s: no route" msg
  | Some r ->
      Alcotest.(check (list int))
        msg expected
        (List.map Asn.to_int r.Engine.path)

(* Fig. 3: provider D with customer B; customer A below B and C; A
   announces prefix p to C only.  D peers with E; E is above C.  D must see
   p via its peer E, not via its customer B. *)
let fig3_graph () =
  let a = asn 10 and b = asn 20 and c = asn 30 and d = asn 40 and e = asn 50 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:d ~customer:b in
  let g = As_graph.add_p2c g ~provider:b ~customer:a in
  let g = As_graph.add_p2c g ~provider:c ~customer:a in
  let g = As_graph.add_p2c g ~provider:e ~customer:c in
  let g = As_graph.add_p2p g d e in
  (g, a, b, c, d, e)

let test_fig3_selective () =
  let g, a, _b, c, d, e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom =
    Atom.make ~id:1 ~origin:a
      ~provider_scope:(Atom.Only_providers (Asn.Set.singleton c))
      [ p "10.0.0.0/24" ]
  in
  let retain = Asn.Set.of_list [ a; c; d; e ] in
  let result = Engine.propagate net ~retain atom in
  Alcotest.(check bool) "converged" true result.Engine.converged;
  (* D's best route goes through peer E, not customer B. *)
  check_path "route at D" [ Asn.to_int e; Asn.to_int c; Asn.to_int a ]
    (Engine.best_at result d);
  begin
    match Engine.best_at result d with
    | Some r ->
        Alcotest.(check bool)
          "D learned from peer" true
          (match r.Engine.rel with
          | Some Relationship.Peer -> true
          | Some _ | None -> false)
    | None -> Alcotest.fail "no route at D"
  end

let test_fig3_announce_all () =
  let g, a, b, _c, d, _e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom = Atom.vanilla ~id:2 ~origin:a [ p "10.0.0.0/24" ] in
  let result = Engine.propagate net ~retain:(Asn.Set.singleton d) atom in
  (* With announce-to-all, D prefers the customer path through B. *)
  check_path "route at D" [ Asn.to_int b; Asn.to_int a ] (Engine.best_at result d)

(* Fig. 5: AS1 has customer AS852, which has customer AS6280.  AS6280 also
   connects (via AS13768) to AS3549, a peer of AS1.  When AS6280 announces
   only towards AS13768, AS1 reaches it via its peer AS3549. *)
let test_fig5 () =
  let as1 = asn 1 and as852 = asn 852 and as6280 = asn 6280 in
  let as3549 = asn 3549 and as13768 = asn 13768 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:as1 ~customer:as852 in
  let g = As_graph.add_p2c g ~provider:as852 ~customer:as6280 in
  let g = As_graph.add_p2c g ~provider:as13768 ~customer:as6280 in
  let g = As_graph.add_p2c g ~provider:as3549 ~customer:as13768 in
  let g = As_graph.add_p2p g as1 as3549 in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom =
    Atom.make ~id:3 ~origin:as6280
      ~provider_scope:(Atom.Only_providers (Asn.Set.singleton as13768))
      [ p "20.0.0.0/24" ]
  in
  let result = Engine.propagate net ~retain:(Asn.Set.singleton as1) atom in
  check_path "AS1 reaches its customer via peer AS3549"
    [ 3549; 13768; 6280 ] (Engine.best_at result as1)

(* No-export-up community: the origin announces to its provider with the
   tag; the provider uses the route but does not pass it to its own
   providers or peers. *)
let test_no_export_up () =
  let top = asn 100 and mid = asn 200 and leaf = asn 300 and side = asn 400 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:top ~customer:mid in
  let g = As_graph.add_p2c g ~provider:mid ~customer:leaf in
  let g = As_graph.add_p2c g ~provider:mid ~customer:side in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom =
    Atom.make ~id:4 ~origin:leaf ~no_export_up:(Asn.Set.singleton mid)
      [ p "30.0.0.0/24" ]
  in
  let retain = Asn.Set.of_list [ top; mid; side ] in
  let result = Engine.propagate net ~retain atom in
  Alcotest.(check bool)
    "mid still has the route" true
    (match Engine.best_at result mid with Some _ -> true | None -> false);
  Alcotest.(check bool)
    "top does not receive it" true
    (match Engine.best_at result top with None -> true | Some _ -> false);
  (* Down-stream export is allowed. *)
  check_path "side still reachable" [ Asn.to_int mid; Asn.to_int leaf ]
    (Engine.best_at result side)

(* Aggregation suppression: the provider accepts the customer route but
   never re-exports it. *)
let test_suppressed_at () =
  let top = asn 100 and agg = asn 200 and other = asn 250 and leaf = asn 300 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:top ~customer:agg in
  let g = As_graph.add_p2c g ~provider:top ~customer:other in
  let g = As_graph.add_p2c g ~provider:agg ~customer:leaf in
  let g = As_graph.add_p2c g ~provider:other ~customer:leaf in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom =
    Atom.make ~id:5 ~origin:leaf ~suppressed_at:(Asn.Set.singleton agg)
      [ p "40.0.0.0/24" ]
  in
  let result = Engine.propagate net ~retain:(Asn.Set.of_list [ top; agg ]) atom in
  (* top can only hear it via [other]. *)
  check_path "top hears via other" [ Asn.to_int other; Asn.to_int leaf ]
    (Engine.best_at result top);
  check_path "aggregator holds the customer route" [ Asn.to_int leaf ]
    (Engine.best_at result agg)

(* Peer withholding. *)
let test_withhold_peer () =
  let a = asn 100 and b = asn 200 and c = asn 300 in
  let g = As_graph.empty in
  let g = As_graph.add_p2p g a b in
  let g = As_graph.add_p2p g a c in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom =
    Atom.make ~id:6 ~origin:a ~withhold_peers:(Asn.Set.singleton b)
      [ p "50.0.0.0/24" ]
  in
  let result = Engine.propagate net ~retain:(Asn.Set.of_list [ b; c ]) atom in
  Alcotest.(check bool)
    "withheld peer gets nothing" true
    (match Engine.best_at result b with None -> true | Some _ -> false);
  check_path "other peer served" [ Asn.to_int a ] (Engine.best_at result c)

(* Valley-free discipline: a peer route must not be re-exported to peers. *)
let test_no_peer_transit () =
  let a = asn 100 and b = asn 200 and c = asn 300 in
  let g = As_graph.empty in
  let g = As_graph.add_p2p g a b in
  let g = As_graph.add_p2p g b c in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom = Atom.vanilla ~id:7 ~origin:a [ p "60.0.0.0/24" ] in
  let result = Engine.propagate net ~retain:(Asn.Set.of_list [ b; c ]) atom in
  Alcotest.(check bool)
    "b hears from peer" true
    (match Engine.best_at result b with Some _ -> true | None -> false);
  Alcotest.(check bool)
    "c is not served across two peer hops" true
    (match Engine.best_at result c with None -> true | Some _ -> false)

(* Local preference beats path length: a longer customer path is preferred
   to a shorter peer path. *)
let test_lp_beats_length () =
  let top = asn 10 and m1 = asn 20 and m2 = asn 30 and o = asn 40 in
  let g = As_graph.empty in
  (* top -> m1 -> m2 -> o (customer chain), and top peers with o's other
     provider m3 giving a 2-hop peer path. *)
  let m3 = asn 50 in
  let g = As_graph.add_p2c g ~provider:top ~customer:m1 in
  let g = As_graph.add_p2c g ~provider:m1 ~customer:m2 in
  let g = As_graph.add_p2c g ~provider:m2 ~customer:o in
  let g = As_graph.add_p2c g ~provider:m3 ~customer:o in
  let g = As_graph.add_p2p g top m3 in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom = Atom.vanilla ~id:8 ~origin:o [ p "70.0.0.0/24" ] in
  let result = Engine.propagate net ~retain:(Asn.Set.singleton top) atom in
  check_path "customer path wins despite extra hops"
    [ Asn.to_int m1; Asn.to_int m2; Asn.to_int o ]
    (Engine.best_at result top);
  (* Ablation: without local preference, the shorter peer path wins.  We
     model it by a flat import policy. *)
  let flat _ =
    { Policy.default_import with Policy.lp_customer = 100; lp_peer = 100; lp_provider = 100 }
  in
  let net_flat = Engine.prepare ~graph:g ~import:flat () in
  let result_flat = Engine.propagate net_flat ~retain:(Asn.Set.singleton top) atom in
  check_path "shortest path wins without local-pref"
    [ Asn.to_int m3; Asn.to_int o ]
    (Engine.best_at result_flat top)

(* BAD GADGET: the canonical dispute wheel.  Vanilla BGP oscillates
   against the step cap; NS-BGP converges, with every rim AS settling on
   the route its preferred peer relays. *)
let test_bad_gadget () =
  let graph, import = Rpi_sim.Gadget.bad_gadget () in
  let net = Engine.prepare ~graph ~import () in
  let retain = Asn.Set.of_list (As_graph.ases graph) in
  let atom = Atom.vanilla ~id:0 ~origin:(asn 64500) [ p "192.0.2.0/24" ] in
  let vanilla = Engine.propagate net ~retain atom in
  Alcotest.(check bool) "vanilla oscillates" false vanilla.Engine.converged;
  let ns =
    Engine.propagate net ~retain
      ~decision:Rpi_sim.Decision.neighbor_specific atom
  in
  Alcotest.(check bool) "NS-BGP converges" true ns.Engine.converged;
  (* Each rim AS ends up on the 2-hop route through the next peer around
     the wheel, at the elevated preference the gadget assigns it. *)
  List.iter
    (fun (holder, via) ->
      match Engine.best_at ns (asn holder) with
      | None -> Alcotest.failf "AS%d has no route" holder
      | Some r ->
          Alcotest.(check (list int))
            (Printf.sprintf "AS%d best path" holder)
            [ via; 64500 ]
            (List.map Asn.to_int r.Engine.path);
          Alcotest.(check int)
            (Printf.sprintf "AS%d local pref" holder)
            120 r.Engine.lp)
    [ (64501, 64502); (64502, 64503); (64503, 64501) ];
  (* The wheel only turns while rim routes outrank customer routes: with
     the elevated preference below the customer class the gadget is an
     ordinary Gao–Rexford instance and vanilla converges too. *)
  let tame_graph, tame_import = Rpi_sim.Gadget.bad_gadget ~pref_rim:90 () in
  let tame = Engine.prepare ~graph:tame_graph ~import:tame_import () in
  let tame_result = Engine.propagate tame ~retain atom in
  Alcotest.(check bool) "tame wheel converges under vanilla" true
    tame_result.Engine.converged

(* --- Incremental repropagation deltas --- *)

module Delta = Engine.Delta

let tables_equal_modulo_steps (ra : Engine.result) (rb : Engine.result) =
  ra.Engine.converged = rb.Engine.converged
  && Asn.Map.equal
       (fun (ta : Engine.table) (tb : Engine.table) ->
         ta.Engine.best = tb.Engine.best && ta.Engine.candidates = tb.Engine.candidates)
       ra.Engine.tables rb.Engine.tables

(* A link flap re-converges: downing the customer link reroutes D onto the
   peer path, reviving it restores the original batch fixpoint
   byte-for-byte (candidate order included). *)
let test_delta_link_flap () =
  let g, a, b, c, d, e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let retain = Asn.Set.of_list [ a; b; c; d; e ] in
  let atom = Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24" ] in
  let st = Engine.init_state net in
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Announce atom ] in
  let batch = Engine.propagate net ~retain atom in
  begin
    match Engine.state_results st ~retain with
    | [ r ] ->
        Alcotest.(check bool) "announce matches batch" true
          (tables_equal_modulo_steps r batch)
    | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
  end;
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Link_down (a, b) ] in
  begin
    match Engine.state_results st ~retain with
    | [ r ] ->
        check_path "D rerouted via peer E while a-b is down"
          [ Asn.to_int e; Asn.to_int c; Asn.to_int a ]
          (Engine.best_at r d)
    | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
  end;
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Link_up (a, b) ] in
  match Engine.state_results st ~retain with
  | [ r ] ->
      Alcotest.(check bool) "flap restores the batch fixpoint" true
        (tables_equal_modulo_steps r batch)
  | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)

(* Downing the only adjacency invalidates the sole candidate in place:
   everything above the cut loses the route, and withdrawing the atom
   empties the state. *)
let test_delta_withdraw_clears () =
  let top = asn 1 and mid = asn 2 and leaf = asn 3 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:top ~customer:mid in
  let g = As_graph.add_p2c g ~provider:mid ~customer:leaf in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let retain = Asn.Set.of_list [ top; mid ] in
  let atom = Atom.vanilla ~id:1 ~origin:leaf [ p "10.0.0.0/24" ] in
  let st = Engine.init_state net in
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Announce atom ] in
  begin
    match Engine.state_results st ~retain with
    | [ r ] ->
        check_path "top reaches the leaf" [ 2; 3 ] (Engine.best_at r top)
    | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
  end;
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Link_down (mid, leaf) ] in
  begin
    match Engine.state_results st ~retain with
    | [ r ] ->
        Alcotest.(check bool) "mid's only candidate cleared" true
          (Engine.best_at r mid = None);
        Alcotest.(check bool) "top's derived route cleared" true
          (Engine.best_at r top = None)
    | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
  end;
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Withdraw 1 ] in
  Alcotest.(check int) "withdraw empties the state" 0
    (List.length (Engine.state_results st ~retain));
  Alcotest.(check int) "no atoms left" 0 (List.length (Engine.state_atoms st))

(* A provider->peer relationship flip shrinks the export cone: the route
   the middle AS used to relay upward as a customer route becomes a peer
   route and stops at the middle.  The repropagated state matches a fresh
   batch solve of the relabelled graph. *)
let test_delta_rel_flip_shrinks_cone () =
  let top = asn 1 and mid = asn 2 and o = asn 3 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:top ~customer:mid in
  let g = As_graph.add_p2c g ~provider:mid ~customer:o in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let retain = Asn.Set.of_list [ top; mid ] in
  let atom = Atom.vanilla ~id:1 ~origin:o [ p "10.0.0.0/24" ] in
  let st = Engine.init_state net in
  let (_ : Engine.state) = Engine.repropagate net st [ Delta.Announce atom ] in
  let (_ : Engine.state) =
    Engine.repropagate net st [ Delta.Rel_set (mid, o, Relationship.Peer) ]
  in
  begin
    match Engine.state_results st ~retain with
    | [ r ] ->
        check_path "mid keeps the (now peer) route" [ 3 ] (Engine.best_at r mid);
        Alcotest.(check bool) "top is out of the export cone" true
          (Engine.best_at r top = None);
        (* Cross-check against a fresh batch solve of the effective graph. *)
        let net' =
          Engine.prepare ~graph:(Engine.state_graph st) ~import:default_import ()
        in
        let batch = Engine.propagate net' ~retain atom in
        Alcotest.(check bool) "matches batch on the relabelled graph" true
          (tables_equal_modulo_steps r batch)
    | rs -> Alcotest.failf "expected 1 result, got %d" (List.length rs)
  end

(* Dispute wheels at sizes 3, 5, 7: every odd rim admits no stable state
   under per-AS selection (the alternating direct/peer assignment cannot
   close an odd cycle), while NS-BGP settles each rim AS on the 2-hop
   route through its preferred peer. *)
let test_wheel_sizes () =
  List.iter
    (fun n ->
      let rim = List.init n (fun k -> asn (64501 + k)) in
      let graph, import = Rpi_sim.Gadget.wheel ~rim () in
      let net = Engine.prepare ~graph ~import () in
      let retain = Asn.Set.of_list (As_graph.ases graph) in
      let atom = Atom.vanilla ~id:0 ~origin:(asn 64500) [ p "192.0.2.0/24" ] in
      let vanilla = Engine.propagate net ~retain atom in
      Alcotest.(check bool)
        (Printf.sprintf "%d-wheel oscillates under vanilla" n)
        false vanilla.Engine.converged;
      let ns =
        Engine.propagate net ~retain
          ~decision:Rpi_sim.Decision.neighbor_specific atom
      in
      Alcotest.(check bool)
        (Printf.sprintf "%d-wheel converges under NS-BGP" n)
        true ns.Engine.converged;
      List.iteri
        (fun k holder ->
          let via = 64501 + ((k + 1) mod n) in
          match Engine.best_at ns holder with
          | None -> Alcotest.failf "AS%d has no route" (Asn.to_int holder)
          | Some r ->
              Alcotest.(check (list int))
                (Printf.sprintf "AS%d best path (%d-wheel)" (Asn.to_int holder) n)
                [ via; 64500 ]
                (List.map Asn.to_int r.Engine.path))
        rim)
    [ 3; 5; 7 ];
  (* Construction rejects degenerate inputs. *)
  Alcotest.check_raises "duplicate ASs rejected"
    (Invalid_argument "Gadget.wheel: ASs must be distinct") (fun () ->
      ignore (Rpi_sim.Gadget.wheel ~rim:[ asn 1; asn 1; asn 2 ] ()));
  Alcotest.check_raises "undersized rim rejected"
    (Invalid_argument "Gadget.wheel: rim needs at least 3 ASs") (fun () ->
      ignore (Rpi_sim.Gadget.wheel ~rim:[ asn 1; asn 2 ] ()))

(* propagate_all's scratch reuse and iter_propagated's streaming must be
   observationally invisible: same results as one fresh propagate per
   atom, in declaration order, for batches of every size (including the
   single-atom batch the chunking used to over-split). *)
let test_propagate_all_matches_per_atom () =
  let g, a, _b, c, d, e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let retain = Asn.Set.of_list [ a; c; d; e ] in
  let atoms =
    List.mapi
      (fun i origin -> Atom.vanilla ~id:i ~origin [ p "10.0.0.0/24" ])
      [ a; c; a; d; e; a ]
  in
  let fresh = List.map (Engine.propagate net ~retain) atoms in
  List.iter
    (fun k ->
      let batch = List.filteri (fun i _ -> i < k) atoms in
      let expected = List.filteri (fun i _ -> i < k) fresh in
      List.iter
        (fun jobs ->
          let got = Engine.propagate_all net ~retain ~jobs batch in
          Alcotest.(check bool)
            (Printf.sprintf "batch %d, jobs %d matches per-atom solves" k jobs)
            true (got = expected))
        [ 1; 2; 4 ];
      let streamed = ref [] in
      Engine.iter_propagated net ~retain batch ~f:(fun r -> streamed := r :: !streamed);
      Alcotest.(check bool)
        (Printf.sprintf "iter_propagated streams batch %d in order" k)
        true
        (List.rev !streamed = expected))
    [ 0; 1; 2; 6 ]

let test_vantage_rib () =
  let g, a, b, c, d, e = fig3_graph () in
  ignore c;
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom1 = Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24"; p "10.0.1.0/24" ] in
  let atom2 = Atom.vanilla ~id:2 ~origin:b [ p "11.0.0.0/24" ] in
  let results =
    Engine.propagate_all net ~retain:(Asn.Set.of_list [ d; e ]) [ atom1; atom2 ]
  in
  let policy = { (Policy.default d) with Policy.scheme = Some Policy.default_scheme } in
  let rib = Vantage.rib_at ~policy ~vantage:d results in
  Alcotest.(check int) "three prefixes at D" 3 (Rib.prefix_count rib);
  (* D's best for 10.0.0.0/24 must be the customer route via B, tagged with
     D's customer community. *)
  begin
    match Rib.best rib (p "10.0.0.0/24") with
    | None -> Alcotest.fail "no best route"
    | Some route ->
        Alcotest.(check (option int))
          "peer_as is B"
          (Some (Asn.to_int b))
          (Option.map Asn.to_int route.Route.peer_as);
        let tags = Rpi_bgp.Community.Set.elements route.Route.communities in
        Alcotest.(check (list string))
          "customer tag"
          [ Printf.sprintf "%d:4000" (Asn.to_int d) ]
          (List.map Rpi_bgp.Community.to_string tags)
  end

let test_collector_rib () =
  let g, a, _b, _c, d, e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom = Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24" ] in
  let results = Engine.propagate_all net ~retain:(Asn.Set.of_list [ d; e ]) [ atom ] in
  let rib = Vantage.collector_rib ~peers:[ d; e ] results in
  let cands = Rib.candidates rib (p "10.0.0.0/24") in
  Alcotest.(check int) "two feeds" 2 (List.length cands);
  List.iter
    (fun (r : Route.t) ->
      Alcotest.(check (option int)) "no local-pref at collector" None r.Route.local_pref)
    cands

let test_timeline_conditional () =
  (* A multihomed origin with conditional advertisement always down on the
     primary announces via the backup — a single-provider scope that is
     never the whole provider set. *)
  let g, a, b, c, _d, _e = fig3_graph () in
  let rng = Rpi_prng.Prng.create ~seed:21 in
  let atoms = [ Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24" ] ] in
  let churn =
    {
      Timeline.p_policy_change = 0.0;
      p_outage = 0.0;
      p_late_start = 0.0;
      p_early_stop = 0.0;
      p_conditional = 1.0;
      p_primary_down = 1.0;
    }
  in
  let epochs = Timeline.evolve rng ~graph:g ~churn ~epochs:3 atoms in
  List.iter
    (fun ep ->
      match ep.Timeline.atoms with
      | [ atom ] -> begin
          match atom.Atom.provider_scope with
          | Atom.Only_providers set ->
              Alcotest.(check int) "single backup provider" 1 (Asn.Set.cardinal set);
              Alcotest.(check bool) "backup is a real provider" true
                (Asn.Set.subset set (Asn.Set.of_list [ b; c ]))
          | Atom.All_providers -> Alcotest.fail "conditional scope expected"
        end
      | other -> Alcotest.failf "expected 1 atom, got %d" (List.length other))
    epochs

let test_timeline () =
  let g, a, _b, _c, _d, _e = fig3_graph () in
  let rng = Rpi_prng.Prng.create ~seed:7 in
  let atoms = [ Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24" ] ] in
  let epochs =
    Timeline.evolve rng ~graph:g
      ~churn:
        {
          Timeline.p_policy_change = 1.0;
          p_outage = 0.0;
          p_late_start = 0.0;
          p_early_stop = 0.0;
          p_conditional = 0.0;
          p_primary_down = 0.0;
        }
      ~epochs:5 atoms
  in
  Alcotest.(check int) "five epochs" 5 (List.length epochs);
  List.iter
    (fun ep -> Alcotest.(check int) "atom present" 1 (List.length ep.Timeline.atoms))
    epochs

let test_updates_between () =
  let module Update = Rpi_bgp.Update in
  let a1 = Atom.vanilla ~id:1 ~origin:(asn 10) [ p "10.0.0.0/24"; p "10.0.1.0/24" ] in
  let a2 = Atom.vanilla ~id:2 ~origin:(asn 20) [ p "20.0.0.0/24"; p "20.0.1.0/24" ] in
  let a2' =
    Atom.make ~id:2 ~origin:(asn 20)
      ~provider_scope:(Atom.Only_providers (Asn.Set.singleton (asn 30)))
      [ p "20.0.0.0/24" ]
  in
  let a3 = Atom.vanilla ~id:3 ~origin:(asn 30) [ p "30.0.0.0/24" ] in
  let ea = { Timeline.index = 0; atoms = [ a1; a2 ] } in
  let eb = { Timeline.index = 1; atoms = [ a3; a2' ] } in
  let d = Timeline.delta_between ea eb in
  Alcotest.(check (list int))
    "added ids" [ 3 ]
    (List.map (fun (x : Atom.t) -> x.Atom.id) d.Timeline.added);
  Alcotest.(check (list int))
    "removed ids" [ 1 ]
    (List.map (fun (x : Atom.t) -> x.Atom.id) d.Timeline.removed);
  Alcotest.(check (list int))
    "changed ids" [ 2 ]
    (List.map (fun ((_, x) : Atom.t * Atom.t) -> x.Atom.id) d.Timeline.changed);
  let show u =
    let kind =
      match u.Update.payload with
      | Update.Announce _ -> "announce"
      | Update.Withdraw _ -> "withdraw"
    in
    Printf.sprintf "%s %s from %d" kind
      (Prefix.to_string (Update.prefix u))
      (Asn.to_int u.Update.from_as)
  in
  let ups = Timeline.updates_between ea eb in
  (* Withdraws first: removed atom 1's prefixes in list order, then the
     prefix dropped from changed atom 2.  Announces after, sorted by atom
     id: the changed atom 2's surviving prefix, then added atom 3. *)
  Alcotest.(check (list string))
    "update stream"
    [
      "withdraw 10.0.0.0/24 from 10";
      "withdraw 10.0.1.0/24 from 10";
      "withdraw 20.0.1.0/24 from 20";
      "announce 20.0.0.0/24 from 20";
      "announce 30.0.0.0/24 from 30";
    ]
    (List.map show ups);
  List.iter
    (fun u -> Alcotest.(check bool) "self-originated" true (Asn.equal u.Update.from_as u.Update.to_as))
    ups;
  Alcotest.(check int) "identical epochs diff to nothing" 0
    (List.length (Timeline.updates_between eb eb));
  (* Applying the stream to epoch [a]'s origin-level announced set yields
     exactly epoch [b]'s. *)
  let rib_of_epoch ep =
    List.fold_left
      (fun rib (atom : Atom.t) ->
        List.fold_left
          (fun rib prefix ->
            let route =
              Route.make ~prefix
                ~next_hop:(Rpi_net.Ipv4.of_int32_exn 0)
                ~as_path:Rpi_bgp.As_path.empty ~source:Route.Local ()
            in
            Update.apply
              (Update.announce ~from_as:atom.Atom.origin ~to_as:atom.Atom.origin route)
              rib)
          rib atom.Atom.prefixes)
      Rib.empty ep.Timeline.atoms
  in
  let replayed = List.fold_left (fun rib u -> Update.apply u rib) (rib_of_epoch ea) ups in
  Alcotest.(check bool) "replayed rib matches target epoch" true
    (Rib.equal replayed (rib_of_epoch eb))

(* --- Policy --- *)

let test_policy_lp_resolution () =
  let nb = asn 7 in
  let import =
    {
      Policy.default_import with
      Policy.lp_neighbor = Asn.Map.singleton nb 95;
      lp_atom = [ (nb, 3, 77); (nb, 3, 66) ];
    }
  in
  let r = Policy.compile import in
  Alcotest.(check int) "atom entry wins (first of duplicates)" 77
    (Policy.resolve r ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  Alcotest.(check int) "neighbour override next" 95
    (Policy.resolve r ~neighbor:nb ~rel:Relationship.Customer ~atom:9);
  Alcotest.(check int) "class fallback" 110
    (Policy.resolve r ~neighbor:(asn 8) ~rel:Relationship.Customer ~atom:9);
  Alcotest.(check int) "static skips atom entries" 95
    (Policy.resolve_static r ~neighbor:nb ~rel:Relationship.Customer);
  Alcotest.(check bool) "compiled policy is dynamic" true (Policy.is_dynamic r);
  let ext =
    Policy.compile ~overrides:[ (nb, 3, 88); (nb, 3, 99) ] Policy.default_import
  in
  Alcotest.(check int) "external entry wins (last of duplicates)" 99
    (Policy.resolve ext ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  let shadowed = Policy.compile ~overrides:[ (nb, 3, 88) ] import in
  Alcotest.(check int) "external shadows the policy's own atom entry" 88
    (Policy.resolve shadowed ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  Alcotest.(check bool) "static-only policy is not dynamic" false
    (Policy.is_dynamic (Policy.compile Policy.default_import));
  Alcotest.(check bool) "default order typical" true
    (Policy.is_typical_classes Policy.default_import);
  Alcotest.(check bool) "flat order atypical" false
    (Policy.is_typical_classes { Policy.default_import with Policy.lp_customer = 100 })

(* State-owned policy copies: [copy_resolved] isolates the pair table, so
   an in-place [override_resolved] never leaks into the compiled original;
   conflicting writes to the same pair replace (external-override
   semantics), and a dynamic holder still falls back through the
   neighbour/class chain for atoms with no entry. *)
let test_policy_copy_override () =
  let nb = asn 7 in
  let import = { Policy.default_import with Policy.lp_atom = [ (nb, 3, 77) ] } in
  let r = Policy.compile import in
  let c = Policy.copy_resolved r in
  Policy.override_resolved c ~neighbor:nb ~atom:3 ~lp:91;
  Alcotest.(check int) "copy takes the override" 91
    (Policy.resolve c ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  Alcotest.(check int) "original untouched" 77
    (Policy.resolve r ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  (* Conflicting overrides on one pair: the last write wins. *)
  Policy.override_resolved c ~neighbor:nb ~atom:3 ~lp:84;
  Alcotest.(check int) "conflicting override replaces" 84
    (Policy.resolve c ~neighbor:nb ~rel:Relationship.Customer ~atom:3);
  Policy.override_resolved c ~neighbor:nb ~atom:9 ~lp:105;
  Alcotest.(check int) "fresh pair added" 105
    (Policy.resolve c ~neighbor:nb ~rel:Relationship.Customer ~atom:9);
  Alcotest.(check int) "static resolution ignores pair overrides" 110
    (Policy.resolve_static c ~neighbor:nb ~rel:Relationship.Customer);
  (* Dynamic-holder fallback: other neighbours and atoms resolve through
     the neighbour override then the class preference. *)
  Alcotest.(check int) "dynamic holder falls back per class" 90
    (Policy.resolve c ~neighbor:(asn 8) ~rel:Relationship.Provider ~atom:3);
  Alcotest.(check int) "unlisted atom falls back on the same neighbour" 110
    (Policy.resolve c ~neighbor:nb ~rel:Relationship.Customer ~atom:12)

let test_policy_tagging () =
  let self = asn 1 in
  let scheme = Policy.multi_scheme in
  (* Deterministic per neighbour; sibling untagged. *)
  begin
    match Policy.tag scheme ~self ~neighbor:(asn 20) Relationship.Peer with
    | Some c ->
        Alcotest.(check int) "tagging AS" 1 (Asn.to_int (Rpi_bgp.Community.asn c));
        Alcotest.(check bool) "peer band" true
          (Policy.code_class scheme (Rpi_bgp.Community.value c) = Some Relationship.Peer)
    | None -> Alcotest.fail "expected a tag"
  end;
  Alcotest.(check bool) "sibling untagged" true
    (Policy.tag scheme ~self ~neighbor:(asn 20) Relationship.Sibling = None);
  Alcotest.(check bool) "customer band" true
    (Policy.code_class scheme 4010 = Some Relationship.Customer);
  Alcotest.(check bool) "provider band" true
    (Policy.code_class scheme 2020 = Some Relationship.Provider);
  Alcotest.(check bool) "below all bands" true (Policy.code_class scheme 10 = None)

(* --- Vantage router views --- *)

let test_router_views_invariants () =
  let g, a, _b, _c, d, e = fig3_graph () in
  let net = Engine.prepare ~graph:g ~import:default_import () in
  let atom = Atom.vanilla ~id:1 ~origin:a [ p "10.0.0.0/24" ] in
  let results = Engine.propagate_all net ~retain:(Asn.Set.of_list [ d; e ]) [ atom ] in
  let policy = Policy.default d in
  let views = Vantage.router_views ~policy ~vantage:d ~routers:8 results in
  Alcotest.(check int) "eight views" 8 (List.length views);
  (* Every router still resolves the prefix: the AS-level best reaches all
     routers over iBGP even when the session subset excludes it. *)
  List.iter
    (fun rib ->
      Alcotest.(check bool) "prefix resolvable" true
        (Rib.best rib (p "10.0.0.0/24") <> None))
    views

(* --- Engine invariants on random topologies --- *)

let random_world seed =
  let rng = Rpi_prng.Prng.create ~seed in
  let config =
    {
      Rpi_topo.Gen.default_config with
      Rpi_topo.Gen.n_tier1 = 4;
      n_tier2 = 8;
      n_tier3 = 20;
      n_stub = 40;
    }
  in
  let topo = Rpi_topo.Gen.generate ~config rng in
  (rng, topo)

let prop_engine_converges =
  QCheck2.Test.make ~name:"propagation always converges" ~count:15
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let rng, topo = random_world seed in
      let g = topo.Rpi_topo.Gen.graph in
      let net = Engine.prepare ~graph:g ~import:(fun _ -> Policy.default_import) () in
      let ases = Array.of_list (As_graph.ases g) in
      let retain = Asn.Set.of_list topo.Rpi_topo.Gen.tier1 in
      List.for_all
        (fun i ->
          let origin = Rpi_prng.Prng.choice rng ases in
          let atom = Atom.vanilla ~id:i ~origin [ p "10.0.0.0/24" ] in
          (Engine.propagate net ~retain atom).Engine.converged)
        (List.init 10 Fun.id))

let prop_engine_paths_valley_free =
  QCheck2.Test.make ~name:"stable routes are valley-free" ~count:10
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let rng, topo = random_world seed in
      let g = topo.Rpi_topo.Gen.graph in
      let net = Engine.prepare ~graph:g ~import:(fun _ -> Policy.default_import) () in
      let ases = Array.of_list (As_graph.ases g) in
      let retain = Asn.Set.of_list (Array.to_list ases) in
      List.for_all
        (fun i ->
          let origin = Rpi_prng.Prng.choice rng ases in
          let atom = Atom.vanilla ~id:i ~origin [ p "10.0.0.0/24" ] in
          let result = Engine.propagate net ~retain atom in
          Asn.Map.for_all
            (fun holder table ->
              List.for_all
                (fun (r : Engine.route) ->
                  match r.Engine.path with
                  | [] -> true
                  | _ :: _ -> Rpi_topo.Paths.is_valley_free g (holder :: r.Engine.path))
                table.Engine.candidates)
            result.Engine.tables)
        (List.init 5 Fun.id))

let prop_selective_monotone =
  (* Restricting the provider scope never creates routes: every AS holding
     a route under Only_providers also holds one under All_providers. *)
  QCheck2.Test.make ~name:"selective announcement only removes routes" ~count:10
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let rng, topo = random_world seed in
      let g = topo.Rpi_topo.Gen.graph in
      let net = Engine.prepare ~graph:g ~import:(fun _ -> Policy.default_import) () in
      let multihomed =
        List.filter (fun a -> List.length (As_graph.providers g a) > 1) (As_graph.ases g)
      in
      match multihomed with
      | [] -> true
      | _ :: _ ->
          let origin = Rpi_prng.Prng.choice_list rng multihomed in
          let providers = As_graph.providers g origin in
          let subset = Asn.Set.singleton (List.hd providers) in
          let retain = Asn.Set.of_list (As_graph.ases g) in
          let open_atom = Atom.vanilla ~id:0 ~origin [ p "10.0.0.0/24" ] in
          let closed_atom =
            Atom.make ~id:1 ~origin ~provider_scope:(Atom.Only_providers subset)
              [ p "10.0.0.0/24" ]
          in
          let open_result = Engine.propagate net ~retain open_atom in
          let closed_result = Engine.propagate net ~retain closed_atom in
          Asn.Map.for_all
            (fun holder closed_table ->
              match closed_table.Engine.best with
              | None -> true
              | Some _ -> begin
                  match Asn.Map.find_opt holder open_result.Engine.tables with
                  | Some open_table -> open_table.Engine.best <> None
                  | None -> false
                end)
            closed_result.Engine.tables)

let prop_no_export_up_never_above_tagged =
  (* With every provider tagged no-export-up, the route stays within one
     hop of the origin's horizon: the direct providers and peers, plus
     everything strictly below the origin, its providers, or its peers —
     no second climb.  (Siblings are excluded from the world: a sibling
     legitimately relays the route as its own, which widens the bound.) *)
  QCheck2.Test.make ~name:"no-export-up bounds propagation" ~count:10
    QCheck2.Gen.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Rpi_prng.Prng.create ~seed in
      let config =
        {
          Rpi_topo.Gen.default_config with
          Rpi_topo.Gen.n_tier1 = 4;
          n_tier2 = 8;
          n_tier3 = 20;
          n_stub = 40;
          sibling_pairs = 0;
        }
      in
      let topo = Rpi_topo.Gen.generate ~config rng in
      let g = topo.Rpi_topo.Gen.graph in
      let net = Engine.prepare ~graph:g ~import:(fun _ -> Policy.default_import) () in
      let with_providers =
        List.filter (fun a -> As_graph.providers g a <> []) (As_graph.ases g)
      in
      match with_providers with
      | [] -> true
      | _ :: _ ->
          let origin = Rpi_prng.Prng.choice_list rng with_providers in
          let providers = Asn.Set.of_list (As_graph.providers g origin) in
          let horizon =
            Asn.Set.union providers (Asn.Set.of_list (As_graph.peers g origin))
          in
          let retain = Asn.Set.of_list (As_graph.ases g) in
          let atom =
            Atom.make ~id:0 ~origin ~no_export_up:providers [ p "10.0.0.0/24" ]
          in
          let result = Engine.propagate net ~retain atom in
          Asn.Map.for_all
            (fun holder table ->
              match table.Engine.best with
              | None -> true
              | Some _ ->
                  Asn.equal holder origin
                  || Asn.Set.mem holder horizon
                  || Rpi_topo.Paths.is_customer g ~provider:origin holder
                  || Asn.Set.exists
                       (fun d -> Rpi_topo.Paths.is_customer g ~provider:d holder)
                       horizon)
            result.Engine.tables)

let () =
  Alcotest.run "rpi_sim"
    [
      ( "engine",
        [
          Alcotest.test_case "fig3 selective announcement" `Quick test_fig3_selective;
          Alcotest.test_case "fig3 announce to all" `Quick test_fig3_announce_all;
          Alcotest.test_case "fig5 curving route" `Quick test_fig5;
          Alcotest.test_case "no-export-up community" `Quick test_no_export_up;
          Alcotest.test_case "aggregation suppression" `Quick test_suppressed_at;
          Alcotest.test_case "peer withholding" `Quick test_withhold_peer;
          Alcotest.test_case "no transit across peers" `Quick test_no_peer_transit;
          Alcotest.test_case "local-pref beats path length" `Quick test_lp_beats_length;
          Alcotest.test_case "bad gadget: vanilla vs NS-BGP" `Quick test_bad_gadget;
          Alcotest.test_case "dispute wheels at sizes 3/5/7" `Quick test_wheel_sizes;
          Alcotest.test_case "propagate_all matches per-atom" `Quick
            test_propagate_all_matches_per_atom;
        ] );
      ( "repropagate",
        [
          Alcotest.test_case "link flap re-converges" `Quick test_delta_link_flap;
          Alcotest.test_case "invalidation clears slots" `Quick test_delta_withdraw_clears;
          Alcotest.test_case "rel flip shrinks export cone" `Quick
            test_delta_rel_flip_shrinks_cone;
        ] );
      ( "vantage",
        [
          Alcotest.test_case "looking-glass rib" `Quick test_vantage_rib;
          Alcotest.test_case "collector rib" `Quick test_collector_rib;
        ] );
      ( "policy",
        [
          Alcotest.test_case "lp resolution" `Quick test_policy_lp_resolution;
          Alcotest.test_case "copies and in-place overrides" `Quick
            test_policy_copy_override;
          Alcotest.test_case "tagging" `Quick test_policy_tagging;
        ] );
      ( "router_views",
        [ Alcotest.test_case "invariants" `Quick test_router_views_invariants ] );
      ( "timeline",
        [
          Alcotest.test_case "evolve" `Quick test_timeline;
          Alcotest.test_case "conditional advertisement" `Quick test_timeline_conditional;
          Alcotest.test_case "epoch differ" `Quick test_updates_between;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_engine_converges;
            prop_engine_paths_valley_free;
            prop_selective_monotone;
            prop_no_export_up_never_above_tagged;
          ] );
    ]
