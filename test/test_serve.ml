(* The socket server end to end, in process: frame a request over a unix
   socket, get the same bytes a direct Render call produces, and drain
   cleanly while connections are open. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route
module As_path = Rpi_bgp.As_path
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module As_graph = Rpi_topo.As_graph
module State = Rpi_ingest.State
module Render = Rpi_ingest.Render
module Protocol = Rpi_serve.Protocol
module Registry = Rpi_serve.Registry
module Server = Rpi_serve.Server

let asn = Asn.of_int
let p s = Prefix.of_string_exn s
let js = Rpi_json.to_string

let graph () =
  let v = asn 100 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:v ~customer:(asn 10) in
  let g = As_graph.add_p2c g ~provider:(asn 10) ~customer:(asn 11) in
  let g = As_graph.add_p2p g v (asn 20) in
  let g = As_graph.add_p2c g ~provider:(asn 30) ~customer:v in
  let g = As_graph.add_p2c g ~provider:(asn 20) ~customer:(asn 11) in
  g

let route ?(lp = 100) ~peer ~rid path prefix =
  Route.make ~prefix
    ~next_hop:(Ipv4.of_octets 192 0 2 rid)
    ~as_path:(As_path.of_list (List.map asn path))
    ~local_pref:lp
    ~router_id:(Ipv4.of_octets 192 0 2 rid)
    ~peer_as:(asn peer) ()

let registry () =
  let g = graph () in
  let v = asn 100 in
  let rib =
    Rib.of_routes
      [
        route ~peer:10 ~rid:1 ~lp:120 [ 10; 11 ] (p "10.11.0.0/16");
        route ~peer:20 ~rid:2 ~lp:90 [ 20; 11 ] (p "10.12.0.0/16");
        route ~peer:30 ~rid:3 ~lp:80 [ 30; 40 ] (p "40.0.0.0/8");
      ]
  in
  let state = State.create ~graph:g ~vantage:v ~initial:rib () in
  Registry.create ~collector:state ~vantages:[ (v, state) ]

let socket_path () =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "rpiserved-test-%d.sock" (Unix.getpid ()))

(* Protocol framing without any socket: a pipe is enough. *)
let test_framing () =
  let rd, wr = Unix.pipe () in
  let payloads = [ "{\"cmd\":\"stats\"}"; "{}"; String.make 4000 'x' ] in
  List.iter (fun body -> Protocol.write_frame wr body) payloads;
  Unix.close wr;
  let read_back =
    List.map
      (fun _ ->
        match Protocol.read_frame rd with
        | Ok (Some body) -> body
        | Ok None -> Alcotest.fail "unexpected EOF"
        | Error e -> Alcotest.failf "read_frame: %s" e)
      payloads
  in
  (match Protocol.read_frame rd with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "expected clean EOF"
  | Error e -> Alcotest.failf "EOF read: %s" e);
  Unix.close rd;
  List.iter2
    (fun sent got -> Alcotest.(check string) "frame round-trips" sent got)
    payloads read_back;
  let rd, wr = Unix.pipe () in
  ignore (Unix.write_substring wr "notdigits\n" 0 10);
  Unix.close wr;
  (match Protocol.read_frame rd with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header must be rejected");
  Unix.close rd

let test_request_parsing () =
  List.iter
    (fun args ->
      match Protocol.request_of_args args with
      | Error e -> Alcotest.failf "parse %s: %s" (String.concat " " args) e
      | Ok request ->
          let round =
            Result.bind
              (Rpi_json.of_string (js (Protocol.request_to_json request)))
              Protocol.request_of_json
          in
          (match round with
          | Ok request' ->
              Alcotest.(check string)
                "request json round-trips"
                (js (Protocol.request_to_json request))
                (js (Protocol.request_to_json request'))
          | Error e -> Alcotest.failf "round-trip: %s" e))
    [
      [ "sa-status"; "AS100" ];
      [ "sa-status"; "AS100"; "10.12.0.0/16" ];
      [ "import-pref"; "AS100" ];
      [ "stats" ];
      [ "snapshot" ];
    ];
  match Protocol.request_of_args [ "bogus" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown command must be rejected"

(* Full loop: serve on a unix socket from a spawned domain, query from
   the test domain, then shut down and join. *)
let test_socket_round_trip () =
  let reg = registry () in
  let path = socket_path () in
  let address = Server.Unix_socket path in
  let server = Server.create ~address reg in
  let server_domain = Domain.spawn (fun () -> Server.serve ~jobs:2 server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join server_domain;
      Server.close server)
    (fun () ->
      let expect_response request =
        match Server.query address request with
        | Ok json -> json
        | Error e -> Alcotest.failf "query: %s" e
      in
      Alcotest.(check string)
        "stats over the socket"
        (js (Render.stats_of_state reg.Registry.collector))
        (js (expect_response Protocol.Stats));
      Alcotest.(check string)
        "sa-status over the socket"
        (js (Registry.respond reg (Protocol.Sa_status { asn = asn 100; prefix = None })))
        (js (expect_response (Protocol.Sa_status { asn = asn 100; prefix = None })));
      (match
         expect_response
           (Protocol.Sa_status { asn = asn 100; prefix = Some (p "10.12.0.0/16") })
       with
      | Rpi_json.Obj fields ->
          Alcotest.(check bool)
            "per-prefix status is selective" true
            (List.assoc_opt "status" fields
            = Some (Rpi_json.String "selective"))
      | _ -> Alcotest.fail "sa-status response is not an object");
      (match expect_response (Protocol.Sa_status { asn = asn 999; prefix = None }) with
      | Rpi_json.Obj (("error", _) :: _) -> ()
      | _ -> Alcotest.fail "unknown vantage must answer an error object");
      (* Snapshot text must feed the batch path: same stats from the dump. *)
      (match expect_response Protocol.Snapshot with
      | Rpi_json.Obj fields -> begin
          match List.assoc_opt "dump" fields with
          | Some (Rpi_json.String dump) -> begin
              match Rpi_mrt.Loader.parse_any dump with
              | Ok rib ->
                  Alcotest.(check string)
                    "snapshot round-trips through the batch path"
                    (js (Render.stats_of_state reg.Registry.collector))
                    (js (Render.stats_of_rib rib))
              | Error e -> Alcotest.failf "snapshot parse: %s" e
            end
          | _ -> Alcotest.fail "snapshot lacks a dump field"
        end
      | _ -> Alcotest.fail "snapshot response is not an object");
      let m = Server.metrics server in
      Alcotest.(check bool) "served at least 5 requests" true (m.Server.requests >= 5);
      Alcotest.(check int) "one error (unknown vantage)" 1 m.Server.errors);
  Alcotest.(check bool) "socket removed on close" false (Sys.file_exists path)

(* Pipelining: write a burst of requests up front on one connection and
   the responses come back in order, byte-identical to what the registry
   renders directly. *)
let test_pipelined_order () =
  let reg = registry () in
  let path = socket_path () in
  let address = Server.Unix_socket path in
  let server = Server.create ~address reg in
  let server_domain = Domain.spawn (fun () -> Server.serve ~jobs:2 server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join server_domain;
      Server.close server)
    (fun () ->
      let requests =
        [
          Protocol.Stats;
          Protocol.Sa_status { asn = asn 100; prefix = None };
          Protocol.Sa_status { asn = asn 100; prefix = Some (p "10.12.0.0/16") };
          Protocol.Import_pref (asn 100);
          Protocol.Sa_status { asn = asn 999; prefix = None };
          Protocol.Snapshot;
          Protocol.Stats;
        ]
      in
      let expected =
        List.map (fun r -> js (Registry.respond reg r)) requests
      in
      let fd = Server.connect address in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          List.iter
            (fun r -> Protocol.write_json fd (Protocol.request_to_json r))
            requests;
          List.iteri
            (fun i want ->
              match Protocol.read_json fd with
              | Ok (Some json) ->
                  Alcotest.(check string)
                    (Printf.sprintf "pipelined response %d" i)
                    want (js json)
              | Ok None -> Alcotest.fail "connection closed mid-pipeline"
              | Error e -> Alcotest.failf "pipelined read: %s" e)
            expected))

(* Admission shedding: with max_connections = 4 and eight clients that
   all stay open, exactly four are answered and exactly four get the
   overloaded frame. *)
let test_admission_shed () =
  let reg = registry () in
  let path = socket_path () in
  let address = Server.Unix_socket path in
  let config =
    { Rpi_serve.Eventloop.default_config with max_connections = 4 }
  in
  let server = Server.create ~address ~config reg in
  let server_domain = Domain.spawn (fun () -> Server.serve ~jobs:1 server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join server_domain;
      Server.close server)
    (fun () ->
      let fds = List.init 8 (fun _ -> Server.connect address) in
      Fun.protect
        ~finally:(fun () -> List.iter Unix.close fds)
        (fun () ->
          List.iter
            (fun fd ->
              (* a shed connection may already be closed server-side;
                 its overloaded frame is still queued for reading *)
              try Protocol.write_json fd (Protocol.request_to_json Protocol.Stats)
              with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ())
            fds;
          let served, shed =
            List.fold_left
              (fun (served, shed) fd ->
                match Protocol.read_json fd with
                | Ok (Some json) when Protocol.is_overloaded json ->
                    (served, shed + 1)
                | Ok (Some json) ->
                    Alcotest.(check string)
                      "admitted connection gets real stats"
                      (js (Render.stats_of_state reg.Registry.collector))
                      (js json);
                    (served + 1, shed)
                | Ok None -> Alcotest.fail "EOF before any response"
                | Error e -> Alcotest.failf "shed read: %s" e)
              (0, 0) fds
          in
          Alcotest.(check int) "exactly four served" 4 served;
          Alcotest.(check int) "exactly four shed" 4 shed;
          let m = Server.metrics server in
          Alcotest.(check int) "metrics count the sheds" 4 m.Server.sheds))

(* Snapshot-swap invariant: a feeder domain mutating collector state and
   publishing concurrently with queries never produces a torn response —
   every stats answer is byte-identical to some published generation,
   and the generations a client observes never go backwards. *)
let test_snapshot_never_torn () =
  let epochs = 15 in
  let extra_route i =
    route ~peer:10 ~rid:1 ~lp:100 [ 10; 11 ]
      (p (Printf.sprintf "10.%d.0.0/16" (100 + i)))
  in
  let build () =
    let rib =
      Rib.of_routes [ route ~peer:10 ~rid:1 ~lp:120 [ 10; 11 ] (p "10.11.0.0/16") ]
    in
    State.create ~graph:(graph ()) ~vantage:(asn 100) ~initial:rib ()
  in
  (* Precompute the expected render of every generation on a replica. *)
  let replica = build () in
  let expected = Array.make (epochs + 1) "" in
  expected.(0) <- js (Render.stats_of_state replica);
  for i = 1 to epochs do
    State.apply replica
      (Rpi_bgp.Update.announce ~from_as:(asn 10) ~to_as:(asn 100) (extra_route i));
    expected.(i) <- js (Render.stats_of_state replica)
  done;
  let state = build () in
  let reg = Registry.create ~collector:state ~vantages:[ (asn 100, state) ] in
  let path = socket_path () in
  let address = Server.Unix_socket path in
  let server = Server.create ~address reg in
  let server_domain = Domain.spawn (fun () -> Server.serve ~jobs:2 server) in
  Fun.protect
    ~finally:(fun () ->
      Server.shutdown server;
      Domain.join server_domain;
      Server.close server)
    (fun () ->
      let feeder =
        Domain.spawn (fun () ->
            for i = 1 to epochs do
              State.apply state
                (Rpi_bgp.Update.announce ~from_as:(asn 10) ~to_as:(asn 100)
                   (extra_route i));
              Registry.publish reg
            done)
      in
      let last = ref 0 in
      let queries = ref 0 in
      while !last < epochs do
        incr queries;
        if !queries > 10_000 then Alcotest.fail "feeder never finished";
        match Server.query address Protocol.Stats with
        | Error e -> Alcotest.failf "query: %s" e
        | Ok json ->
            let got = js json in
            let gen = ref (-1) in
            Array.iteri (fun i s -> if String.equal s got then gen := i) expected;
            if !gen < 0 then
              Alcotest.failf "torn response matches no generation: %s" got;
            if !gen < !last then
              Alcotest.failf "generation went backwards: %d after %d" !gen !last;
            last := !gen
      done;
      Domain.join feeder)

let () =
  Alcotest.run "rpi_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "framing" `Quick test_framing;
          Alcotest.test_case "request parsing" `Quick test_request_parsing;
        ] );
      ( "server",
        [
          Alcotest.test_case "socket round trip" `Quick test_socket_round_trip;
          Alcotest.test_case "pipelined order" `Quick test_pipelined_order;
          Alcotest.test_case "admission shed" `Quick test_admission_shed;
          Alcotest.test_case "snapshot never torn" `Quick
            test_snapshot_never_torn;
        ] );
    ]
