module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module Rib = Rpi_bgp.Rib
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module Table_dump = Rpi_mrt.Table_dump
module Show_ip_bgp = Rpi_mrt.Show_ip_bgp
module Loader = Rpi_mrt.Loader

let p = Prefix.of_string_exn
let ip = Ipv4.of_string_exn
let asn = Asn.of_int

let sample_route ?(pfx = "10.1.0.0/16") ?(path = [ 7018; 1239 ]) ?(lp = 110) ?med
    ?(communities = []) () =
  Route.make ~prefix:(p pfx) ~next_hop:(ip "10.27.106.1")
    ~as_path:(As_path.of_list (List.map asn path))
    ~local_pref:lp ?med
    ~communities:(Community.Set.of_list (List.map Community.of_string_exn communities))
    ~router_id:(ip "10.27.106.1")
    ~peer_as:(asn (List.hd path))
    ()

(* --- table dump --- *)

let test_entry_roundtrip () =
  let entry =
    {
      Table_dump.timestamp = 1037577600;
      vantage_as = asn 7018;
      route = sample_route ~communities:[ "7018:4000"; "no-export" ] ~med:5 ();
    }
  in
  let line = Table_dump.entry_to_line entry in
  match Table_dump.entry_of_line line with
  | Error e -> Alcotest.fail e
  | Ok entry' ->
      Alcotest.(check int) "timestamp" entry.Table_dump.timestamp entry'.Table_dump.timestamp;
      Alcotest.(check int) "vantage" 7018 (Asn.to_int entry'.Table_dump.vantage_as);
      Alcotest.(check bool) "route equal" true
        (Route.equal entry.Table_dump.route entry'.Table_dump.route)

let test_entry_missing_fields () =
  let defaults = sample_route ~lp:100 () in
  let entry =
    {
      Table_dump.timestamp = 0;
      vantage_as = asn 1;
      route = { defaults with Route.local_pref = None; med = None };
    }
  in
  let line = Table_dump.entry_to_line entry in
  Alcotest.(check bool) "dashes for absent attrs" true
    (String.length line > 0
    &&
    match Table_dump.entry_of_line line with
    | Ok e -> e.Table_dump.route.Route.local_pref = None && e.Table_dump.route.Route.med = None
    | Error _ -> false)

let test_bad_lines () =
  List.iter
    (fun line ->
      Alcotest.(check bool) line true
        (match Table_dump.entry_of_line line with Error _ -> true | Ok _ -> false))
    [
      "";
      "RIB|x";
      "NOTRIB|0|1|2|10.0.0.0/8|1 2|i|1.2.3.4|-|-|-";
      "RIB|zzz|1|2|10.0.0.0/8|1 2|i|1.2.3.4|-|-|-";
      "RIB|0|1|2|10.0.0.0/99|1 2|i|1.2.3.4|-|-|-";
      "RIB|0|1|2|10.0.0.0/8|1 2|x|1.2.3.4|-|-|-";
      "RIB|0|1|2|10.0.0.0/8|1 2|i|1.2.3.4|abc|-|-";
    ]

let test_rib_roundtrip () =
  let rib =
    Rib.of_routes
      [
        sample_route ();
        sample_route ~pfx:"10.2.0.0/16" ~path:[ 701; 9 ] ();
        sample_route ~pfx:"10.2.0.0/16" ~path:[ 1239; 9 ] ~lp:90 ();
      ]
  in
  let text = Table_dump.rib_to_string ~vantage_as:(asn 1) rib in
  match Table_dump.parse_to_rib text with
  | Error e -> Alcotest.fail e
  | Ok rib' ->
      Alcotest.(check int) "prefixes" (Rib.prefix_count rib) (Rib.prefix_count rib');
      Alcotest.(check int) "routes" (Rib.route_count rib) (Rib.route_count rib')

let test_parse_comments_and_blanks () =
  let text = "# a comment\n\nRIB|0|1|7018|10.0.0.0/8|7018|i|1.2.3.4|-|-|-\n\n" in
  match Table_dump.parse text with
  | Ok [ entry ] ->
      Alcotest.(check string) "prefix" "10.0.0.0/8"
        (Prefix.to_string entry.Table_dump.route.Route.prefix)
  | Ok other -> Alcotest.failf "expected one entry, got %d" (List.length other)
  | Error e -> Alcotest.fail e

let test_parse_error_line_number () =
  let text = "RIB|0|1|7018|10.0.0.0/8|7018|i|1.2.3.4|-|-|-\njunk here\n" in
  match Table_dump.parse text with
  | Error e ->
      Alcotest.(check bool) "mentions line 2" true
        (String.length e >= 6 && String.sub e 0 6 = "line 2")
  | Ok _ -> Alcotest.fail "expected error"

(* --- show ip bgp --- *)

let test_show_render_contains_best () =
  let rib =
    Rib.of_routes
      [ sample_route ~lp:110 (); sample_route ~path:[ 701; 1239 ] ~lp:90 () ]
  in
  let text = Show_ip_bgp.render rib in
  Alcotest.(check bool) "has best marker" true (String.contains text '>');
  Alcotest.(check bool) "has header" true
    (String.length text > 3 && String.sub text 0 3 = "BGP")

let test_show_roundtrip () =
  let rib =
    Rib.of_routes
      [
        sample_route ~lp:110 ();
        sample_route ~path:[ 701; 1239 ] ~lp:90 ();
        sample_route ~pfx:"12.0.0.0/19" ~path:[ 3549 ] ~lp:100 ();
      ]
  in
  let text = Show_ip_bgp.render rib in
  match Show_ip_bgp.parse text with
  | Error e -> Alcotest.fail e
  | Ok rib' ->
      Alcotest.(check int) "prefixes" (Rib.prefix_count rib) (Rib.prefix_count rib');
      Alcotest.(check int) "routes" (Rib.route_count rib) (Rib.route_count rib');
      (* Local preference survives. *)
      let best = Rib.best rib' (p "10.1.0.0/16") in
      Alcotest.(check (option int)) "best lp" (Some 110)
        (Option.bind best (fun (r : Route.t) -> r.Route.local_pref))

let test_prefix_detail_roundtrip () =
  let rib =
    Rib.of_routes
      [
        sample_route ~communities:[ "12859:1000" ] ~lp:210 ();
        sample_route ~path:[ 701; 1239 ] ~lp:90 ();
      ]
  in
  let text = Show_ip_bgp.render_prefix_detail rib (p "10.1.0.0/16") in
  Alcotest.(check bool) "has community line" true
    (let needle = "12859:1000" in
     let hl = String.length text and nl = String.length needle in
     let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
     go 0);
  match Show_ip_bgp.parse_prefix_detail text with
  | Error e -> Alcotest.fail e
  | Ok detail ->
      Alcotest.(check bool) "prefix" true
        (Prefix.equal detail.Show_ip_bgp.prefix (p "10.1.0.0/16"));
      Alcotest.(check int) "two paths" 2 (List.length detail.Show_ip_bgp.paths);
      let best_count =
        List.length
          (List.filter (fun (_, _, _, best) -> best) detail.Show_ip_bgp.paths)
      in
      Alcotest.(check int) "one best" 1 best_count;
      let with_comm =
        List.filter
          (fun (_, _, cs, _) -> not (Community.Set.is_empty cs))
          detail.Show_ip_bgp.paths
      in
      Alcotest.(check int) "one tagged path" 1 (List.length with_comm)

let test_show_parse_handwritten () =
  (* A block typed the way a Looking Glass would print it, including a
     continuation line with a blank LocPrf column. *)
  let text =
    String.concat "\n"
      [
        "BGP table version is 1, local router ID is 172.16.1.1";
        "Status codes: s suppressed, d damped, h history, * valid, > best, i - internal";
        "Origin codes: i - IGP, e - EGP, ? - incomplete";
        "";
        "   Network            Next Hop            Metric LocPrf Weight Path";
        "*> 12.0.0.0/19        10.27.86.1               0    110      0 7018 1239 i";
        "*                     10.27.86.2               0      -     0 701 1239 i";
        "*> 192.205.32.0/24    10.0.9.1                 5    100      0 3549 ?";
        "";
      ]
  in
  match Show_ip_bgp.parse text with
  | Error e -> Alcotest.fail e
  | Ok rib ->
      Alcotest.(check int) "two prefixes" 2 (Rib.prefix_count rib);
      Alcotest.(check int) "three routes" 3 (Rib.route_count rib);
      let cands = Rib.candidates rib (p "12.0.0.0/19") in
      Alcotest.(check int) "continuation inherited network" 2 (List.length cands);
      let lps =
        List.filter_map (fun (r : Route.t) -> r.Route.local_pref) cands
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "dash locprf tolerated" [ 110 ] lps;
      begin
        match Rib.best rib (p "192.205.32.0/24") with
        | Some r ->
            Alcotest.(check bool) "incomplete origin parsed" true
              (r.Route.origin = Route.Incomplete)
        | None -> Alcotest.fail "missing route"
      end

(* --- loader --- *)

let test_detect_format () =
  Alcotest.(check bool) "dump" true
    (Loader.detect_format "RIB|0|1|2|10.0.0.0/8|1|i|1.2.3.4|-|-|-" = `Table_dump);
  Alcotest.(check bool) "cisco" true
    (Loader.detect_format "BGP table version is 1..." = `Show_ip_bgp);
  Alcotest.(check bool) "unknown" true (Loader.detect_format "hello" = `Unknown)

let test_snapshot_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rpi_test_snapshot" in
  let tables =
    [
      (asn 1, Rib.of_routes [ sample_route () ]);
      (asn 7018, Rib.of_routes [ sample_route ~pfx:"12.0.0.0/19" () ]);
    ]
  in
  Loader.save_snapshot ~dir tables;
  match Loader.load_snapshot ~dir with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Alcotest.(check int) "two tables" 2 (List.length loaded);
      Alcotest.(check (list int)) "ascending AS order" [ 1; 7018 ]
        (List.map (fun (a, _) -> Asn.to_int a) loaded);
      List.iter
        (fun (a, rib) ->
          let original = List.assoc a tables in
          Alcotest.(check int) "same size" (Rib.prefix_count original) (Rib.prefix_count rib))
        loaded

let test_load_missing_dir () =
  Alcotest.(check bool) "missing dir is an error" true
    (match Loader.load_snapshot ~dir:"/nonexistent/rpi" with
    | Error _ -> true
    | Ok _ -> false)

(* A throwaway directory under the system tmpdir, removed afterwards. *)
let with_snapshot_dir name files f =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      List.iter
        (fun (file, contents) ->
          let oc = open_out_bin (Filename.concat dir file) in
          output_string oc contents;
          close_out oc)
        files;
      f dir)

let test_load_empty_dump () =
  (* An empty dump file is a vantage with an empty table, not an error:
     a Looking-Glass pull can legitimately come back with no routes. *)
  with_snapshot_dir "rpi_test_empty_dump" [ ("AS1.dump", "") ] (fun dir ->
      match Loader.load_snapshot ~dir with
      | Error e -> Alcotest.fail e
      | Ok [ (a, rib) ] ->
          Alcotest.(check int) "vantage AS" 1 (Asn.to_int a);
          Alcotest.(check int) "empty rib" 0 (Rib.prefix_count rib)
      | Ok loaded -> Alcotest.failf "expected one table, got %d" (List.length loaded))

let test_load_mixed_format_snapshot () =
  (* A show-format file under a .dump name must fail loudly, naming the
     offending file, instead of silently loading half the snapshot. *)
  let good = "RIB|0|1|65001|10.0.0.0/8|65001 65000|IGP|1.2.3.4|-|-|-" in
  let bad = "*> 10.0.0.0/8      1.2.3.4              0             0 65001 i" in
  with_snapshot_dir "rpi_test_mixed_dump"
    [ ("AS1.dump", good ^ "\n"); ("AS2.dump", bad ^ "\n") ]
    (fun dir ->
      match Loader.load_snapshot ~dir with
      | Ok _ -> Alcotest.fail "mixed-format snapshot loaded without error"
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "error %S names AS2.dump" e)
            true
            (String.length e >= 8
            &&
            let rec mem i =
              i + 8 <= String.length e
              && (String.equal (String.sub e i 8) "AS2.dump" || mem (i + 1))
            in
            mem 0))

let test_load_file_missing_path () =
  Alcotest.(check bool) "missing dump file is Error, not an exception" true
    (match Table_dump.load_file "/nonexistent/rpi/AS1.dump" with
    | Error _ -> true
    | Ok _ -> false)

let test_detect_format_pathological () =
  let check name expect text =
    Alcotest.(check bool) name true (Loader.detect_format text = expect)
  in
  check "empty" `Unknown "";
  check "blank lines only" `Unknown "\n\n\n";
  check "lone star is too short" `Unknown "*";
  check "RIB without pipe" `Unknown "RIB";
  check "comment leader" `Table_dump "#x";
  check "BGP prefix even when bogus" `Show_ip_bgp "BGPbogus";
  check "leading blanks are skipped" `Show_ip_bgp "\n\n*> 10.0.0.0/8 1.2.3.4";
  Alcotest.(check bool) "parse_any on unknown is an error" true
    (match Loader.parse_any "hello" with
    | Error _ -> true
    | Ok _ -> false)

(* --- property: random RIBs survive the dump round-trip --- *)

let gen_rib =
  QCheck2.Gen.(
    let gen_route =
      map3
        (fun net len peer ->
          let prefix = Prefix.make (Ipv4.of_int32_exn ((net * 1021) land 0xFFFFFF00)) len in
          sample_route ~pfx:(Prefix.to_string prefix) ~path:[ peer; 65000 ] ())
        (int_bound 10000) (int_range 8 28) (int_range 1 60000)
    in
    list_size (int_range 1 50) gen_route |> map Rib.of_routes)

let prop_dump_roundtrip =
  QCheck2.Test.make ~name:"table dump roundtrip preserves rib" ~count:100 gen_rib
    (fun rib ->
      let text = Table_dump.rib_to_string ~vantage_as:(asn 1) rib in
      match Table_dump.parse_to_rib text with
      | Ok rib' ->
          Rib.prefix_count rib = Rib.prefix_count rib'
          && Rib.route_count rib = Rib.route_count rib'
      | Error _ -> false)

let prop_show_roundtrip =
  QCheck2.Test.make ~name:"show ip bgp roundtrip preserves counts" ~count:100 gen_rib
    (fun rib ->
      match Show_ip_bgp.parse (Show_ip_bgp.render rib) with
      | Ok rib' -> Rib.prefix_count rib = Rib.prefix_count rib'
      | Error _ -> false)

let () =
  Alcotest.run "rpi_mrt"
    [
      ( "table_dump",
        [
          Alcotest.test_case "entry roundtrip" `Quick test_entry_roundtrip;
          Alcotest.test_case "missing fields" `Quick test_entry_missing_fields;
          Alcotest.test_case "bad lines" `Quick test_bad_lines;
          Alcotest.test_case "rib roundtrip" `Quick test_rib_roundtrip;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "error line numbers" `Quick test_parse_error_line_number;
        ] );
      ( "show_ip_bgp",
        [
          Alcotest.test_case "render" `Quick test_show_render_contains_best;
          Alcotest.test_case "roundtrip" `Quick test_show_roundtrip;
          Alcotest.test_case "handwritten table" `Quick test_show_parse_handwritten;
          Alcotest.test_case "prefix detail" `Quick test_prefix_detail_roundtrip;
        ] );
      ( "loader",
        [
          Alcotest.test_case "detect format" `Quick test_detect_format;
          Alcotest.test_case "snapshot roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "missing dir" `Quick test_load_missing_dir;
          Alcotest.test_case "empty dump" `Quick test_load_empty_dump;
          Alcotest.test_case "mixed-format snapshot" `Quick test_load_mixed_format_snapshot;
          Alcotest.test_case "load_file missing path" `Quick test_load_file_missing_path;
          Alcotest.test_case "detect_format pathological" `Quick
            test_detect_format_pathological;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_dump_roundtrip; prop_show_roundtrip ] );
    ]
