(* Selective-announcement analysis on a full synthetic Internet: the
   traffic-engineering scenario from the paper's introduction.  A
   multihomed customer steers inbound traffic by announcing prefixes to a
   subset of its providers; from a Tier-1's viewpoint those prefixes
   arrive over peering ("curving routes") even though a customer path
   exists in the connectivity graph.

   Run with: dune exec examples/sa_analysis.exe *)

module Asn = Rpi_bgp.Asn
module Scenario = Rpi_dataset.Scenario
module Export_infer = Rpi_core.Export_infer
module Homing = Rpi_core.Homing
module Sa_causes = Rpi_core.Sa_causes
module Context = Rpi_experiments.Context

let () =
  Logs.set_level (Some Logs.Warning);
  (* A reduced scenario keeps this example fast; the same code drives the
     full-size benchmark harness. *)
  let config = { Scenario.small_config with Scenario.seed = 2026 } in
  print_endline "Building synthetic Internet (topology, policies, route propagation)...";
  let ctx = Context.create ~config () in
  let s = ctx.Context.scenario in
  Printf.printf "  %d ASs, %d announcement atoms, %d prefixes at the collector\n\n"
    (Rpi_topo.As_graph.as_count s.Scenario.graph)
    (List.length s.Scenario.atoms)
    (Rpi_bgp.Rib.prefix_count s.Scenario.collector);

  let provider = Asn.of_int 1 in
  (* The provider's own routes are its collector feed. *)
  let viewpoint = Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector in
  let report =
    Export_infer.analyze ctx.Context.corrected ~provider
      ~origins:ctx.Context.collector_origins viewpoint
  in
  Printf.printf "From %s's viewpoint:\n" (Asn.to_label provider);
  Printf.printf "  customers observed:   %d\n" report.Export_infer.customers_seen;
  Printf.printf "  customer prefixes:    %d\n" report.Export_infer.customer_prefixes;
  Printf.printf "  SA prefixes:          %d (%.1f%%)\n"
    (List.length report.Export_infer.sa)
    report.Export_infer.pct_sa;

  (* Who is behind them? *)
  let homing = Homing.analyze ctx.Context.corrected ~provider report.Export_infer.sa in
  Printf.printf "  SA origins: %d multihomed, %d single-homed (%.0f%% multihomed)\n"
    homing.Homing.multihomed homing.Homing.single_homed homing.Homing.pct_multihomed;

  (* Why? *)
  let causes =
    Sa_causes.analyze ctx.Context.corrected ~viewpoint
      ~paths_of:(Context.paths_for_prefix ctx)
      ~feeds:s.Scenario.collector_peers ~provider report.Export_infer.sa
  in
  Printf.printf "  prefix splitting:     %d\n" causes.Sa_causes.split_count;
  Printf.printf "  aggregable:           %d\n" causes.Sa_causes.aggregable_count;
  Printf.printf
    "  of attributable prefixes, %.0f%% were announced to the failing provider\n"
    causes.Sa_causes.pct_announce;
  print_endline "  (the rest were simply not announced to it: inbound traffic engineering)";

  (* Show a few concrete curving routes. *)
  print_newline ();
  print_endline "Sample curving routes (peer path used where a customer path exists):";
  List.iteri
    (fun i (r : Export_infer.sa_record) ->
      if i < 5 then begin
        match Rpi_bgp.Rib.best viewpoint r.Export_infer.prefix with
        | Some best ->
            Printf.printf "  %-18s origin %-8s best path: %s\n"
              (Rpi_net.Prefix.to_string r.Export_infer.prefix)
              (Asn.to_label r.Export_infer.origin)
              (Rpi_bgp.As_path.to_string best.Rpi_bgp.Route.as_path)
        | None -> ()
      end)
    report.Export_infer.sa
