(* Looking-Glass workflow: serialize a simulated BGP table in both
   supported formats, query a prefix the way the paper queried Looking
   Glass servers ("show ip bgp <prefix>"), and round-trip through the
   parsers.

   Run with: dune exec examples/looking_glass.exe *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Scenario = Rpi_dataset.Scenario

let () =
  Logs.set_level (Some Logs.Warning);
  let config = { Scenario.small_config with Scenario.seed = 7 } in
  let s = Scenario.build ~config () in
  let vantage, rib =
    match s.Scenario.lg_tables with
    | (a, rib) :: _ -> (a, rib)
    | [] -> failwith "scenario has no Looking-Glass tables"
  in
  Printf.printf "Looking glass: %s (%d prefixes, %d routes)\n\n" (Asn.to_label vantage)
    (Rib.prefix_count rib) (Rib.route_count rib);

  (* 1. Machine-readable dump (bgpdump -m style), truncated. *)
  let dump = Rpi_mrt.Table_dump.rib_to_string ~timestamp:1037577600 ~vantage_as:vantage rib in
  print_endline "First table-dump lines:";
  String.split_on_char '\n' dump
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter print_endline;
  print_newline ();

  (* Round-trip: parse it back and compare sizes. *)
  begin
    match Rpi_mrt.Table_dump.parse_to_rib dump with
    | Ok rib' ->
        Printf.printf "Round-trip through the dump parser: %d prefixes, %d routes (same: %b)\n\n"
          (Rib.prefix_count rib') (Rib.route_count rib')
          (Rib.prefix_count rib' = Rib.prefix_count rib
          && Rib.route_count rib' = Rib.route_count rib)
    | Error e -> Printf.printf "parse error: %s\n" e
  end;

  (* 2. Cisco-style per-prefix detail, like the paper's Appendix query. *)
  let prefix =
    match Rib.prefixes rib with
    | p :: _ -> p
    | [] -> failwith "empty table"
  in
  Printf.printf "> show ip bgp %s\n" (Rpi_net.Prefix.to_string prefix);
  let detail = Rpi_mrt.Show_ip_bgp.render_prefix_detail rib prefix in
  print_string detail;
  print_newline ();

  (* Parse the block back and read the community tags out of it. *)
  begin
    match Rpi_mrt.Show_ip_bgp.parse_prefix_detail detail with
    | Ok parsed ->
        List.iter
          (fun (path, lp, communities, best) ->
            Printf.printf "  parsed path [%s] localpref=%s%s communities={%s}\n"
              (Rpi_bgp.As_path.to_string path)
              (match lp with Some v -> string_of_int v | None -> "-")
              (if best then " (best)" else "")
              (Rpi_bgp.Community.Set.to_string communities))
          parsed.Rpi_mrt.Show_ip_bgp.paths
    | Error e -> Printf.printf "detail parse error: %s\n" e
  end;

  (* 3. Snapshot IO: save every Looking-Glass table to a directory and load
     it back. *)
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "rpi_snapshot" in
  Rpi_mrt.Loader.save_snapshot ~dir ~timestamp:1037577600 s.Scenario.lg_tables;
  match Rpi_mrt.Loader.load_snapshot ~dir with
  | Ok tables ->
      Printf.printf "\nSnapshot saved and reloaded from %s: %d vantage tables\n" dir
        (List.length tables)
  | Error e -> Printf.printf "snapshot error: %s\n" e
