(* The paper's Appendix workflow: verify inferred AS relationships using
   BGP community tags whose semantics are themselves inferred from
   announcement volumes (Fig. 9's rank plots, Table 11's tagging scheme,
   Table 4's verification percentages).

   Run with: dune exec examples/community_semantics.exe *)

module Asn = Rpi_bgp.Asn
module Scenario = Rpi_dataset.Scenario
module Community_verify = Rpi_core.Community_verify
module Context = Rpi_experiments.Context

let () =
  Logs.set_level (Some Logs.Warning);
  let config = { Scenario.small_config with Scenario.seed = 11 } in
  let ctx = Context.create ~config () in
  let s = ctx.Context.scenario in
  let vantage, rib =
    match s.Scenario.lg_tables with
    | (a, rib) :: _ -> (a, rib)
    | [] -> failwith "no Looking-Glass tables"
  in
  Printf.printf "Vantage: %s\n\n" (Asn.to_label vantage);

  (* Step 1 (Fig. 9): prefixes announced per next-hop AS, rank order. *)
  let counts = Community_verify.prefix_counts rib in
  print_endline "Prefixes announced per next-hop AS (rank order, log-log):";
  let points = List.mapi (fun i (_, n) -> (float_of_int (i + 1), float_of_int n)) counts in
  print_string (Rpi_stats.Series.ascii_loglog points);
  print_newline ();

  (* Step 2: infer the semantics of the vantage's community values. *)
  let has_providers = Rpi_topo.As_graph.providers ctx.Context.inferred vantage <> [] in
  let semantics = Community_verify.infer_semantics ~vantage ~has_providers rib in
  let show label codes =
    Printf.printf "  %-9s codes: %s\n" label
      (String.concat ", " (List.map string_of_int codes))
  in
  print_endline "Inferred community semantics (cf. the paper's Table 11):";
  show "provider" semantics.Community_verify.provider_codes;
  show "peer" semantics.Community_verify.peer_codes;
  show "customer" semantics.Community_verify.customer_codes;
  print_newline ();

  (* Ground truth for comparison: the scheme the vantage actually uses. *)
  begin
    match Rpi_dataset.Ground_truth.scheme_truth s vantage with
    | Some scheme ->
        print_endline "Actual scheme configured in the scenario:";
        show "provider" scheme.Rpi_sim.Policy.provider_codes;
        show "peer" scheme.Rpi_sim.Policy.peer_codes;
        show "customer" scheme.Rpi_sim.Policy.customer_codes
    | None -> print_endline "(vantage has no community scheme)"
  end;
  print_newline ();

  (* Step 3 (Table 4): verify the path-inferred relationships against the
     community-derived ones. *)
  let report = Community_verify.verify ~vantage ~inferred:ctx.Context.inferred rib in
  Printf.printf "Verification: %d/%d neighbour relationships match (%.1f%%)\n"
    report.Community_verify.matching report.Community_verify.neighbors_checked
    report.Community_verify.pct_verified;
  List.iteri
    (fun i (nb, community_rel, inferred_rel) ->
      if i < 5 then
        Printf.printf "  mismatch %s: communities say %s, paths said %s\n" (Asn.to_label nb)
          (Rpi_topo.Relationship.to_string community_rel)
          (Rpi_topo.Relationship.to_string inferred_rel))
    report.Community_verify.mismatches
