examples/community_semantics.ml: List Logs Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_experiments Rpi_sim Rpi_stats Rpi_topo String
