examples/persistence_watch.mli:
