examples/quickstart.ml: List Printf Rpi_bgp Rpi_core Rpi_mrt Rpi_net Rpi_sim Rpi_topo
