examples/looking_glass.mli:
