examples/quickstart.mli:
