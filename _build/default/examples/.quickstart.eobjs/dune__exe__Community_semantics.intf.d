examples/community_semantics.mli:
