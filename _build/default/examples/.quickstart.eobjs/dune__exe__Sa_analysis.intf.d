examples/sa_analysis.mli:
