examples/persistence_watch.ml: List Logs Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_net Rpi_prng Rpi_sim
