examples/looking_glass.ml: Filename List Logs Printf Rpi_bgp Rpi_dataset Rpi_mrt Rpi_net String
