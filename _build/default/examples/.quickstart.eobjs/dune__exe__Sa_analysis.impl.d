examples/sa_analysis.ml: List Logs Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_experiments Rpi_net Rpi_topo
