(* Persistence workflow (Sections 5.1.4, Figs. 6-7): evolve export
   policies over several days, snapshot a provider's table each day, and
   watch prefixes appear, vanish, re-route and shift between SA and
   non-SA — the day-over-day diffing the paper did on RouteViews archives.

   Run with: dune exec examples/persistence_watch.exe *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Prefix_set = Rpi_net.Prefix_set
module Scenario = Rpi_dataset.Scenario
module Timeline = Rpi_sim.Timeline
module Vantage = Rpi_sim.Vantage
module Export_infer = Rpi_core.Export_infer
module Persistence = Rpi_core.Persistence

let () =
  Logs.set_level (Some Logs.Warning);
  let config = { Scenario.small_config with Scenario.seed = 99 } in
  print_endline "Building scenario and evolving policies over 7 daily epochs...";
  let s = Scenario.build ~config () in
  let provider = Asn.of_int 1 in
  let policy = Scenario.policy_of s provider in
  let rng = Rpi_prng.Prng.create ~seed:123 in
  let epochs =
    Timeline.evolve rng ~graph:s.Scenario.graph ~churn:Timeline.monthly_churn ~epochs:7
      s.Scenario.atoms
  in
  let snapshot (ep : Timeline.epoch) =
    let results = Scenario.rerun_with_atoms s ep.Timeline.atoms in
    let rib = Vantage.rib_at ~policy ~vantage:provider results in
    let origins =
      List.map
        (fun (a : Rpi_sim.Atom.t) -> (a.Rpi_sim.Atom.origin, a.Rpi_sim.Atom.prefixes))
        ep.Timeline.atoms
    in
    let report = Export_infer.analyze s.Scenario.graph ~provider ~origins rib in
    (rib, report)
  in
  let snapshots = List.map snapshot epochs in
  (* Day-over-day diffs. *)
  let rec walk day = function
    | (old_rib, _) :: ((new_rib, _) :: _ as rest) ->
        let d = Rib.diff ~old_rib new_rib in
        Printf.printf "day %d -> %d: +%d prefixes, -%d prefixes, %d re-routed, %d unchanged\n"
          day (day + 1)
          (List.length d.Rib.added) (List.length d.Rib.removed)
          (List.length d.Rib.best_changed) d.Rib.unchanged;
        walk (day + 1) rest
    | [ _ ] | [] -> ()
  in
  walk 1 snapshots;
  (* SA persistence across the window. *)
  let observations =
    List.map
      (fun (rib, (report : Export_infer.report)) ->
        {
          Persistence.all_prefixes = Prefix_set.of_list (Rib.prefixes rib);
          sa_prefixes =
            Prefix_set.of_list
              (List.map
                 (fun (r : Export_infer.sa_record) -> r.Export_infer.prefix)
                 report.Export_infer.sa);
        })
      snapshots
  in
  let up = Persistence.uptimes observations in
  Printf.printf
    "\nOver %d days at %s: %d prefixes were SA at least once; %.1f%% shifted SA -> non-SA.\n"
    (List.length snapshots) (Asn.to_label provider) up.Persistence.total_sa_touched
    up.Persistence.pct_shifting;
  print_endline "Uptime histogram (days present, prefixes remaining SA / shifting):";
  List.iter
    (fun k ->
      let get l = match List.assoc_opt k l with Some v -> v | None -> 0 in
      Printf.printf "  %d days: %4d remaining, %4d shifting\n" k
        (get up.Persistence.remaining_sa) (get up.Persistence.shifting))
    (List.init up.Persistence.max_uptime (fun i -> i + 1))
