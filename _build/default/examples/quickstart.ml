(* Quickstart: build the paper's Fig. 3 topology by hand, simulate BGP
   route propagation under a selective-announcement export policy, and run
   the SA-prefix inference algorithm on the resulting table.

   Run with: dune exec examples/quickstart.exe *)

module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix
module As_graph = Rpi_topo.As_graph
module Atom = Rpi_sim.Atom
module Policy = Rpi_sim.Policy
module Engine = Rpi_sim.Engine
module Vantage = Rpi_sim.Vantage
module Export_infer = Rpi_core.Export_infer

let () =
  (* Fig. 3 of the paper: customer A below providers B and C; provider D
     above B; E above C; D peers with E. *)
  let a = Asn.of_int 65001
  and b = Asn.of_int 65002
  and c = Asn.of_int 65003
  and d = Asn.of_int 65004
  and e = Asn.of_int 65005 in
  let graph =
    As_graph.empty |> fun g ->
    As_graph.add_p2c g ~provider:b ~customer:a |> fun g ->
    As_graph.add_p2c g ~provider:c ~customer:a |> fun g ->
    As_graph.add_p2c g ~provider:d ~customer:b |> fun g ->
    As_graph.add_p2c g ~provider:e ~customer:c |> fun g -> As_graph.add_p2p g d e
  in
  Printf.printf "Topology: %d ASs, %d edges\n" (As_graph.as_count graph)
    (As_graph.edge_count graph);

  (* A announces prefix p selectively: to provider C only. *)
  let p = Prefix.of_string_exn "198.51.100.0/24" in
  let atom =
    Atom.make ~id:0 ~origin:a
      ~provider_scope:(Atom.Only_providers (Asn.Set.singleton c))
      [ p ]
  in

  (* Everyone uses the typical import policy: customer 110 > peer 100 >
     provider 90. *)
  let network = Engine.prepare ~graph ~import:(fun _ -> Policy.default_import) () in
  let result = Engine.propagate network ~retain:(Asn.Set.of_list [ b; c; d; e ]) atom in
  Printf.printf "Propagation converged in %d steps\n\n" result.Engine.steps;

  (* D's table, rendered like a Looking Glass would show it. *)
  let rib = Vantage.rib_at ~policy:(Policy.default d) ~vantage:d [ result ] in
  print_string (Rpi_mrt.Show_ip_bgp.render rib);

  (* Run the paper's Fig. 4 algorithm from D's viewpoint. *)
  print_newline ();
  let report = Export_infer.analyze graph ~provider:d ~origins:[ (a, [ p ]) ] rib in
  List.iter
    (fun (r : Export_infer.sa_record) ->
      Printf.printf
        "%s originated by %s is a selectively-announced (SA) prefix at %s: the best route arrives via %s %s\n"
        (Prefix.to_string r.Export_infer.prefix)
        (Asn.to_label r.Export_infer.origin)
        (Asn.to_label d)
        (Rpi_topo.Relationship.to_string r.Export_infer.via)
        (Asn.to_label r.Export_infer.next_hop))
    report.Export_infer.sa;
  Printf.printf "SA share at %s: %.0f%% of customer prefixes\n" (Asn.to_label d)
    report.Export_infer.pct_sa
