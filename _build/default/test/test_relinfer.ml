module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Gen = Rpi_topo.Gen
module Paths = Rpi_topo.Paths
module Gao = Rpi_relinfer.Gao
module Validate = Rpi_relinfer.Validate
module Prng = Rpi_prng.Prng

let asn = Asn.of_int
let path = List.map asn

let test_degrees () =
  let paths = [ path [ 1; 2; 3 ]; path [ 4; 2 ] ] in
  let deg = Gao.degrees paths in
  Alcotest.(check int) "hub degree" 3 (Asn.Map.find (asn 2) deg);
  Alcotest.(check int) "leaf degree" 1 (Asn.Map.find (asn 3) deg)

let test_top_provider () =
  let deg = Gao.degrees [ path [ 1; 2; 3 ]; path [ 4; 2 ]; path [ 5; 2 ] ] in
  Alcotest.(check int) "hub on top" 1 (Gao.top_provider_index deg (path [ 1; 2; 3 ]))

let test_infer_simple_chain () =
  (* Many paths through a hub: 2 is everyone's provider.  The degree gap
     between the hub (4) and its leaves (1) is tiny in this toy input, so
     the peering ratio must be tightened below 4 for the provider labels to
     survive the peering phase — with the paper-scale default of 60 the
     algorithm (correctly, per Gao's design) refuses to call such a pair
     provider-customer with confidence. *)
  let config = { Gao.default_config with Gao.peer_degree_ratio = 3.0 } in
  let paths = [ path [ 1; 2; 3 ]; path [ 4; 2; 3 ]; path [ 5; 2; 3 ]; path [ 1; 2; 4 ] ] in
  let g = Gao.infer ~config paths in
  Alcotest.(check bool) "2 provides for 3" true
    (As_graph.relationship g (asn 2) (asn 3) = Some Relationship.Customer);
  Alcotest.(check bool) "2 provides for 1" true
    (As_graph.relationship g (asn 1) (asn 2) = Some Relationship.Provider)

let test_peer_ratio_filter () =
  (* Same input, permissive ratio: the leaf adjacent to the top provider is
     (mis)labelled peer — documenting the knob's effect. *)
  let config = { Gao.default_config with Gao.peer_degree_ratio = 60.0 } in
  let paths = [ path [ 1; 2; 3 ]; path [ 4; 2; 3 ]; path [ 5; 2; 3 ]; path [ 1; 2; 4 ] ] in
  let g = Gao.infer ~config paths in
  Alcotest.(check bool) "loose ratio flips to peer" true
    (As_graph.relationship g (asn 1) (asn 2) = Some Relationship.Peer)

let test_infer_prepending_collapsed () =
  let paths = [ path [ 1; 2; 2; 2; 3 ] ] in
  let g = Gao.infer paths in
  Alcotest.(check bool) "no self edge" false (As_graph.mem_edge g (asn 2) (asn 2));
  Alcotest.(check bool) "adjacency found" true (As_graph.mem_edge g (asn 2) (asn 3))

let test_infer_peering_between_hubs () =
  (* Two hubs of similar degree exchanging customer routes: the hub-hub
     edge should be labelled peer. *)
  let paths =
    [
      path [ 11; 1; 2; 21 ];
      path [ 12; 1; 2; 22 ];
      path [ 13; 1; 2; 23 ];
      path [ 21; 2; 1; 11 ];
      path [ 22; 2; 1; 12 ];
      path [ 23; 2; 1; 13 ];
    ]
  in
  let g = Gao.infer paths in
  Alcotest.(check bool) "hub edge is peer" true
    (As_graph.relationship g (asn 1) (asn 2) = Some Relationship.Peer);
  Alcotest.(check bool) "leaf is customer" true
    (As_graph.relationship g (asn 1) (asn 11) = Some Relationship.Customer)

(* End-to-end: infer relationships of a generated topology from the
   valley-free paths its own structure produces, and check the accuracy is
   in the ballpark the paper relies on (Table 4: ~94-99%). *)
let synthetic_paths graph tier1 =
  (* For every AS, walk a provider chain up to a Tier-1, then across the
     clique, then down a customer chain — emitting the receiver-first path
     a collector peering with Tier-1s would see. *)
  let ases = As_graph.ases graph in
  List.concat_map
    (fun origin ->
      let rec climb a acc =
        match As_graph.providers graph a with
        | [] -> a :: acc
        | p :: _ -> climb p (a :: acc)
      in
      (* climb returns top-first list ending at origin. *)
      let up = climb origin [] in
      match up with
      | top :: _ ->
          let direct = up in
          let crossed =
            List.filter_map
              (fun t1 ->
                if Asn.equal t1 top then None
                else if As_graph.relationship graph t1 top = Some Relationship.Peer then
                  Some (t1 :: up)
                else None)
              tier1
          in
          direct :: crossed
      | [] -> [])
    ases

let test_infer_generated_topology () =
  let rng = Prng.create ~seed:11 in
  let config =
    { Gen.default_config with Gen.n_tier1 = 6; n_tier2 = 25; n_tier3 = 80; n_stub = 200 }
  in
  let t = Gen.generate ~config rng in
  let paths = synthetic_paths t.Gen.graph t.Gen.tier1 in
  let inferred = Gao.infer paths in
  let report = Validate.compare_graphs ~truth:t.Gen.graph ~inferred in
  let acc = Validate.accuracy report in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.3f above 0.9 (compared %d)" acc report.Validate.edges_compared)
    true (acc > 0.9);
  Alcotest.(check bool) "compared a substantial share" true
    (report.Validate.edges_compared > As_graph.as_count t.Gen.graph / 2)

let test_validate_reports () =
  let truth =
    As_graph.add_p2c
      (As_graph.add_p2p As_graph.empty (asn 1) (asn 2))
      ~provider:(asn 1) ~customer:(asn 3)
  in
  let inferred =
    As_graph.add_p2c
      (As_graph.add_p2c As_graph.empty ~provider:(asn 1) ~customer:(asn 2))
      ~provider:(asn 1) ~customer:(asn 3)
  in
  let r = Validate.compare_graphs ~truth ~inferred in
  Alcotest.(check int) "compared" 2 r.Validate.edges_compared;
  Alcotest.(check int) "correct" 1 r.Validate.edges_correct;
  Alcotest.(check (float 0.001)) "accuracy" 0.5 (Validate.accuracy r);
  let frac, n = Validate.neighbor_accuracy ~truth ~inferred (asn 1) in
  Alcotest.(check int) "neighbour comparisons" 2 n;
  Alcotest.(check (float 0.001)) "neighbour accuracy" 0.5 frac

let test_validate_missing_extra () =
  let truth = As_graph.add_p2p As_graph.empty (asn 1) (asn 2) in
  let inferred = As_graph.add_p2p As_graph.empty (asn 3) (asn 4) in
  let r = Validate.compare_graphs ~truth ~inferred in
  Alcotest.(check int) "missing" 1 r.Validate.missing;
  Alcotest.(check int) "extra" 1 r.Validate.extra;
  Alcotest.(check (float 0.001)) "vacuous accuracy" 1.0 (Validate.accuracy r)

let prop_inferred_edges_observed =
  QCheck2.Test.make ~name:"inferred graph covers exactly observed adjacencies" ~count:20
    QCheck2.Gen.(int_range 1 100000)
    (fun seed ->
      let rng = Prng.create ~seed in
      let config =
        { Gen.default_config with Gen.n_tier1 = 4; n_tier2 = 10; n_tier3 = 30; n_stub = 60 }
      in
      let t = Gen.generate ~config rng in
      let paths = synthetic_paths t.Gen.graph t.Gen.tier1 in
      let inferred = Gao.infer paths in
      (* Every inferred edge appears in some path as an adjacency. *)
      let adjacent =
        List.concat_map
          (fun p ->
            let rec pairs = function
              | a :: (b :: _ as rest) -> (a, b) :: pairs rest
              | [ _ ] | [] -> []
            in
            pairs p)
          paths
      in
      As_graph.fold_edges
        (fun a b _ ok ->
          ok
          && List.exists
               (fun (x, y) ->
                 (Asn.equal x a && Asn.equal y b) || (Asn.equal x b && Asn.equal y a))
               adjacent)
        inferred true)

let () =
  Alcotest.run "rpi_relinfer"
    [
      ( "gao",
        [
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "top provider" `Quick test_top_provider;
          Alcotest.test_case "simple chain" `Quick test_infer_simple_chain;
          Alcotest.test_case "peer ratio filter" `Quick test_peer_ratio_filter;
          Alcotest.test_case "prepending collapsed" `Quick test_infer_prepending_collapsed;
          Alcotest.test_case "peering between hubs" `Quick test_infer_peering_between_hubs;
          Alcotest.test_case "generated topology accuracy" `Slow test_infer_generated_topology;
        ] );
      ( "validate",
        [
          Alcotest.test_case "reports" `Quick test_validate_reports;
          Alcotest.test_case "missing and extra" `Quick test_validate_missing_extra;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_inferred_edges_observed ]);
    ]
