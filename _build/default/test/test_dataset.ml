(* Scenario-level tests: determinism, internal consistency, and the oracle
   cross-checks that tie the inference pipeline to the simulator's ground
   truth. *)

module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Prefix = Rpi_net.Prefix
module Scenario = Rpi_dataset.Scenario
module Ground_truth = Rpi_dataset.Ground_truth
module Atom = Rpi_sim.Atom
module Export_infer = Rpi_core.Export_infer

let tiny_config =
  {
    Scenario.small_config with
    Scenario.seed = 5;
    topology =
      {
        Rpi_topo.Gen.default_config with
        Rpi_topo.Gen.n_tier1 = 4;
        n_tier2 = 12;
        n_tier3 = 40;
        n_stub = 100;
      };
    n_collector_peers = 8;
    n_lg = 5;
  }

let scenario = lazy (Scenario.build ~config:tiny_config ())

let test_build_basics () =
  let s = Lazy.force scenario in
  Alcotest.(check int) "AS count" 156 (Rpi_topo.As_graph.as_count s.Scenario.graph);
  Alcotest.(check bool) "atoms exist" true (List.length s.Scenario.atoms > 100);
  Alcotest.(check bool) "collector non-empty" true (Rib.prefix_count s.Scenario.collector > 100);
  Alcotest.(check int) "LG tables" (List.length s.Scenario.lg_ases)
    (List.length s.Scenario.lg_tables);
  Alcotest.(check bool) "results cover atoms" true
    (List.length s.Scenario.results = List.length s.Scenario.atoms)

let test_determinism () =
  let a = Scenario.build ~config:tiny_config () in
  let b = Scenario.build ~config:tiny_config () in
  Alcotest.(check int) "same atom count" (List.length a.Scenario.atoms)
    (List.length b.Scenario.atoms);
  Alcotest.(check int) "same collector prefixes" (Rib.prefix_count a.Scenario.collector)
    (Rib.prefix_count b.Scenario.collector);
  Alcotest.(check int) "same collector routes" (Rib.route_count a.Scenario.collector)
    (Rib.route_count b.Scenario.collector);
  Alcotest.(check bool) "same edges" true
    (Rpi_topo.As_graph.to_edges a.Scenario.graph = Rpi_topo.As_graph.to_edges b.Scenario.graph)

let test_different_seeds_differ () =
  let a = Lazy.force scenario in
  let b = Scenario.build ~config:{ tiny_config with Scenario.seed = 6 } () in
  Alcotest.(check bool) "different routing state" true
    (Rib.route_count a.Scenario.collector <> Rib.route_count b.Scenario.collector
    || a.Scenario.atoms <> b.Scenario.atoms)

let test_atom_ids_unique () =
  let s = Lazy.force scenario in
  let ids = List.map (fun (a : Atom.t) -> a.Atom.id) s.Scenario.atoms in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq Int.compare ids))

let test_prefixes_unique_across_atoms () =
  let s = Lazy.force scenario in
  let all = List.concat_map (fun (a : Atom.t) -> a.Atom.prefixes) s.Scenario.atoms in
  Alcotest.(check int) "no duplicate prefixes" (List.length all)
    (List.length (List.sort_uniq Prefix.compare all))

let test_origins_ground_truth () =
  let s = Lazy.force scenario in
  let origins = Scenario.origins_ground_truth s in
  let total = List.fold_left (fun acc (_, ps) -> acc + List.length ps) 0 origins in
  let atom_total =
    List.fold_left (fun acc (a : Atom.t) -> acc + List.length a.Atom.prefixes) 0 s.Scenario.atoms
  in
  Alcotest.(check int) "covers every atom prefix" atom_total total

let test_convergence () =
  let s = Lazy.force scenario in
  Alcotest.(check bool) "all atoms converged" true
    (List.for_all (fun (r : Rpi_sim.Engine.result) -> r.Rpi_sim.Engine.converged)
       s.Scenario.results)

let test_collector_paths_valley_free () =
  (* Every path at the collector must be valley-free under the ground
     truth graph (the engine must never leak a route against export
     rules).  Atypical import preferences can pick provider routes over
     customer routes, but the export discipline still holds. *)
  let s = Lazy.force scenario in
  let bad = ref 0 and total = ref 0 in
  Rib.iter
    (fun _ routes ->
      List.iter
        (fun (r : Rpi_bgp.Route.t) ->
          let hops = Rpi_bgp.As_path.to_list r.Rpi_bgp.Route.as_path in
          incr total;
          if not (Rpi_topo.Paths.is_valley_free s.Scenario.graph hops) then incr bad)
        routes)
    s.Scenario.collector;
  Alcotest.(check int) (Printf.sprintf "no valley paths out of %d" !total) 0 !bad

let test_ground_truth_causes () =
  let s = Lazy.force scenario in
  let causes =
    List.map (fun (a : Atom.t) -> Ground_truth.cause_of_atom a) s.Scenario.atoms
  in
  let count c = List.length (List.filter (fun x -> x = c) causes) in
  Alcotest.(check bool) "plain atoms exist" true (count Ground_truth.Plain > 0);
  Alcotest.(check bool) "selective atoms exist" true
    (count Ground_truth.Selective_subset > 0);
  Alcotest.(check int) "selective total consistent"
    (Ground_truth.selective_atom_count s)
    (count Ground_truth.Selective_subset + count Ground_truth.Selective_no_export)

let test_oracle_agreement () =
  (* The central integrity check: SA prefixes inferred from a provider's
     serialized feed agree with the engine's ground-truth routing state. *)
  let s = Lazy.force scenario in
  let provider = List.hd s.Scenario.topo.Rpi_topo.Gen.tier1 in
  let viewpoint = Export_infer.viewpoint_of_feed ~feed:provider s.Scenario.collector in
  let origins = Scenario.origins_ground_truth s in
  let report = Export_infer.analyze s.Scenario.graph ~provider ~origins viewpoint in
  List.iter
    (fun (r : Export_infer.sa_record) ->
      match Ground_truth.expected_sa s ~provider r.Export_infer.prefix with
      | Some expected ->
          Alcotest.(check bool)
            (Printf.sprintf "SA %s agrees with engine" (Prefix.to_string r.Export_infer.prefix))
            true expected
      | None -> ())
    report.Export_infer.sa

let test_lg_tables_have_local_pref () =
  let s = Lazy.force scenario in
  match s.Scenario.lg_tables with
  | [] -> Alcotest.fail "no LG tables"
  | (_, rib) :: _ ->
      let has_lp =
        Rib.fold
          (fun _ routes acc ->
            acc
            || List.exists
                 (fun (r : Rpi_bgp.Route.t) -> r.Rpi_bgp.Route.local_pref <> None)
                 routes)
          rib false
      in
      Alcotest.(check bool) "local pref visible" true has_lp

let test_collector_has_no_local_pref () =
  let s = Lazy.force scenario in
  let any_lp =
    Rib.fold
      (fun _ routes acc ->
        acc
        || List.exists (fun (r : Rpi_bgp.Route.t) -> r.Rpi_bgp.Route.local_pref <> None) routes)
      s.Scenario.collector false
  in
  Alcotest.(check bool) "collector strips local pref" false any_lp

let test_rerun_with_atoms () =
  let s = Lazy.force scenario in
  let subset = List.filteri (fun i _ -> i < 10) s.Scenario.atoms in
  let results = Scenario.rerun_with_atoms s subset in
  Alcotest.(check int) "results per atom" 10 (List.length results)

let test_scheme_truth () =
  let s = Lazy.force scenario in
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (Printf.sprintf "%s has a scheme" (Asn.to_label a))
        true
        (Ground_truth.scheme_truth s a <> None))
    s.Scenario.lg_ases

let () =
  Alcotest.run "rpi_dataset"
    [
      ( "scenario",
        [
          Alcotest.test_case "build basics" `Quick test_build_basics;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "seeds differ" `Slow test_different_seeds_differ;
          Alcotest.test_case "atom ids unique" `Quick test_atom_ids_unique;
          Alcotest.test_case "prefixes unique" `Quick test_prefixes_unique_across_atoms;
          Alcotest.test_case "origins ground truth" `Quick test_origins_ground_truth;
          Alcotest.test_case "convergence" `Quick test_convergence;
          Alcotest.test_case "valley-free paths" `Quick test_collector_paths_valley_free;
          Alcotest.test_case "rerun with atoms" `Quick test_rerun_with_atoms;
        ] );
      ( "ground_truth",
        [
          Alcotest.test_case "causes" `Quick test_ground_truth_causes;
          Alcotest.test_case "oracle agreement" `Quick test_oracle_agreement;
          Alcotest.test_case "schemes" `Quick test_scheme_truth;
        ] );
      ( "observability",
        [
          Alcotest.test_case "LG shows local pref" `Quick test_lg_tables_have_local_pref;
          Alcotest.test_case "collector strips local pref" `Quick test_collector_has_no_local_pref;
        ] );
    ]
