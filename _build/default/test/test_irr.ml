module Asn = Rpi_bgp.Asn
module Rpsl = Rpi_irr.Rpsl
module Db = Rpi_irr.Db
module Gen = Rpi_irr.Gen
module As_graph = Rpi_topo.As_graph
module Prng = Rpi_prng.Prng

let asn = Asn.of_int

let sample_object () =
  Rpsl.make ~asn:(asn 1) ~as_name:"GTE"
    ~imports:
      [
        { Rpsl.from_as = asn 2; pref = Some 1; accept = "ANY" };
        { Rpsl.from_as = asn 3; pref = None; accept = "AS3" };
      ]
    ~exports:[ { Rpsl.to_as = asn 2; announce = "AS1" } ]
    ~changed:20021104 ()

let test_render_parse_roundtrip () =
  let obj = sample_object () in
  match Rpsl.parse_object (Rpsl.render obj) with
  | Error e -> Alcotest.fail e
  | Ok obj' ->
      Alcotest.(check int) "asn" 1 (Asn.to_int obj'.Rpsl.asn);
      Alcotest.(check string) "name" "GTE" obj'.Rpsl.as_name;
      Alcotest.(check int) "imports" 2 (List.length obj'.Rpsl.imports);
      Alcotest.(check int) "exports" 1 (List.length obj'.Rpsl.exports);
      Alcotest.(check int) "changed" 20021104 obj'.Rpsl.changed;
      let first = List.hd obj'.Rpsl.imports in
      Alcotest.(check (option int)) "pref" (Some 1) first.Rpsl.pref;
      Alcotest.(check string) "accept" "ANY" first.Rpsl.accept

let test_parse_paper_example () =
  (* The exact form quoted in Section 4.1 of the paper. *)
  let text = "aut-num: AS1\nimport: from AS2 action pref = 1; accept ANY\n" in
  match Rpsl.parse_object text with
  | Error e -> Alcotest.fail e
  | Ok obj -> begin
      match obj.Rpsl.imports with
      | [ rule ] ->
          Alcotest.(check int) "from" 2 (Asn.to_int rule.Rpsl.from_as);
          Alcotest.(check (option int)) "pref" (Some 1) rule.Rpsl.pref
      | _ -> Alcotest.fail "expected one import"
    end

let test_parse_pref_compact () =
  (* "pref=10;" without spaces. *)
  let text = "aut-num: AS5\nimport: from AS6 action pref=10; accept ANY\n" in
  match Rpsl.parse_object text with
  | Ok obj ->
      Alcotest.(check (option int)) "compact pref" (Some 10)
        (List.hd obj.Rpsl.imports).Rpsl.pref
  | Error e -> Alcotest.fail e

let test_parse_no_autnum () =
  Alcotest.(check bool) "missing aut-num rejected" true
    (match Rpsl.parse_object "as-name: X\n" with Error _ -> true | Ok _ -> false)

let test_parse_comments () =
  let text = "% registry comment\naut-num: AS9\n# another\nas-name: NINE\n" in
  match Rpsl.parse_object text with
  | Ok obj -> Alcotest.(check string) "name" "NINE" obj.Rpsl.as_name
  | Error e -> Alcotest.fail e

let test_parse_many () =
  let text =
    Rpsl.render_many
      [ sample_object (); Rpsl.make ~asn:(asn 2) ~as_name:"UUNET" () ]
  in
  match Rpsl.parse text with
  | Ok objs -> Alcotest.(check int) "two objects" 2 (List.length objs)
  | Error e -> Alcotest.fail e

let test_db_filters () =
  let fresh = sample_object () in
  let stale = Rpsl.make ~asn:(asn 2) ~changed:20010101 () in
  let db = Db.of_objects [ fresh; stale ] in
  Alcotest.(check int) "both stored" 2 (Db.cardinal db);
  Alcotest.(check int) "staleness filter" 1 (Db.cardinal (Db.fresh ~since:20020101 db));
  Alcotest.(check int) "import threshold" 1 (Db.cardinal (Db.with_min_imports 1 db));
  Alcotest.(check bool) "find" true (Db.find db (asn 1) <> None);
  Alcotest.(check bool) "find missing" true (Db.find db (asn 99) = None)

let test_db_replaces_duplicates () =
  let v1 = Rpsl.make ~asn:(asn 7) ~as_name:"OLD" () in
  let v2 = Rpsl.make ~asn:(asn 7) ~as_name:"NEW" () in
  let db = Db.of_objects [ v1; v2 ] in
  Alcotest.(check int) "one object" 1 (Db.cardinal db);
  Alcotest.(check (option string)) "latest wins" (Some "NEW")
    (Option.map (fun (o : Rpsl.aut_num) -> o.Rpsl.as_name) (Db.find db (asn 7)))

let test_db_render_parse () =
  let db = Db.of_objects [ sample_object (); Rpsl.make ~asn:(asn 5) () ] in
  match Db.parse (Db.render db) with
  | Ok db' -> Alcotest.(check int) "cardinal" (Db.cardinal db) (Db.cardinal db')
  | Error e -> Alcotest.fail e

(* --- generated registry --- *)

let small_graph () =
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:(asn 10) ~customer:(asn 20) in
  let g = As_graph.add_p2c g ~provider:(asn 10) ~customer:(asn 30) in
  let g = As_graph.add_p2p g (asn 20) (asn 30) in
  g

let test_gen_registry () =
  let g = small_graph () in
  let rng = Prng.create ~seed:5 in
  let config =
    { Gen.default_config with Gen.p_stale = 0.0; p_missing_rule = 0.0; p_noisy_pref = 0.0 }
  in
  let db = Gen.registry ~config rng ~graph:g ~policies:(fun a -> Rpi_sim.Policy.default a) in
  Alcotest.(check int) "one object per AS" 3 (Db.cardinal db);
  match Db.find db (asn 20) with
  | None -> Alcotest.fail "AS20 missing"
  | Some obj ->
      Alcotest.(check int) "one import per neighbour" 2 (List.length obj.Rpsl.imports);
      (* Customer routes must carry a smaller (better) RPSL pref than
         provider routes: lp 110 -> pref 90; lp 90 -> pref 110. *)
      let pref_of nb =
        List.find_map
          (fun (r : Rpsl.import_rule) ->
            if Asn.equal r.Rpsl.from_as nb then r.Rpsl.pref else None)
          obj.Rpsl.imports
      in
      let provider_pref = pref_of (asn 10) and peer_pref = pref_of (asn 30) in
      begin
        match (provider_pref, peer_pref) with
        | Some pp, Some peerp ->
            Alcotest.(check bool) "peer preferred over provider" true (peerp < pp)
        | _, _ -> Alcotest.fail "missing prefs"
      end

let test_gen_pref_mapping () =
  Alcotest.(check int) "lp 110" 90 (Gen.pref_of_lp 110);
  Alcotest.(check int) "lp 90" 110 (Gen.pref_of_lp 90);
  Alcotest.(check int) "clamped" 1 (Gen.pref_of_lp 500)

let test_gen_staleness_fraction () =
  let g =
    List.fold_left
      (fun g i -> As_graph.add_p2c g ~provider:(asn 1) ~customer:(asn (100 + i)))
      As_graph.empty
      (List.init 200 Fun.id)
  in
  let rng = Prng.create ~seed:9 in
  let config = { Gen.default_config with Gen.p_stale = 0.3 } in
  let db = Gen.registry ~config rng ~graph:g ~policies:Rpi_sim.Policy.default in
  let fresh = Db.cardinal (Db.fresh ~since:20020101 db) in
  let total = Db.cardinal db in
  let stale_fraction = 1.0 -. (float_of_int fresh /. float_of_int total) in
  Alcotest.(check bool)
    (Printf.sprintf "stale fraction %.2f near 0.3" stale_fraction)
    true
    (stale_fraction > 0.2 && stale_fraction < 0.4)

let prop_registry_roundtrip =
  QCheck2.Test.make ~name:"generated registry parses back" ~count:20
    QCheck2.Gen.(int_range 1 100000)
    (fun seed ->
      let g = small_graph () in
      let rng = Prng.create ~seed in
      let db = Gen.registry rng ~graph:g ~policies:Rpi_sim.Policy.default in
      match Db.parse (Db.render db) with
      | Ok db' -> Db.cardinal db = Db.cardinal db'
      | Error _ -> false)

let () =
  Alcotest.run "rpi_irr"
    [
      ( "rpsl",
        [
          Alcotest.test_case "roundtrip" `Quick test_render_parse_roundtrip;
          Alcotest.test_case "paper example" `Quick test_parse_paper_example;
          Alcotest.test_case "compact pref" `Quick test_parse_pref_compact;
          Alcotest.test_case "missing aut-num" `Quick test_parse_no_autnum;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "many objects" `Quick test_parse_many;
        ] );
      ( "db",
        [
          Alcotest.test_case "filters" `Quick test_db_filters;
          Alcotest.test_case "duplicates" `Quick test_db_replaces_duplicates;
          Alcotest.test_case "render/parse" `Quick test_db_render_parse;
        ] );
      ( "gen",
        [
          Alcotest.test_case "registry" `Quick test_gen_registry;
          Alcotest.test_case "pref mapping" `Quick test_gen_pref_mapping;
          Alcotest.test_case "staleness fraction" `Quick test_gen_staleness_fraction;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_registry_roundtrip ]);
    ]
