module Dist = Rpi_stats.Dist
module Histogram = Rpi_stats.Histogram
module Series = Rpi_stats.Series
module Table = Rpi_stats.Table

let test_mean () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Dist.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "empty mean" 0.0 (Dist.mean [])

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Dist.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Dist.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Dist.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p25 interpolates" 2.0 (Dist.percentile 25.0 xs);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.percentile: empty list") (fun () ->
      ignore (Dist.percentile 50.0 []))

let test_stddev () =
  Alcotest.(check (float 1e-9)) "constant" 0.0 (Dist.stddev [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check (float 1e-6)) "known" 1.0 (Dist.stddev [ 1.0; 3.0; 1.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "singleton" 0.0 (Dist.stddev [ 7.0 ])

let test_fraction () =
  Alcotest.(check (float 1e-9)) "half" 0.5 (Dist.fraction (1, 2));
  Alcotest.(check (float 1e-9)) "zero denominator" 0.0 (Dist.fraction (1, 0));
  Alcotest.(check (float 1e-9)) "pct" 25.0 (Dist.pct (1, 4))

let test_histogram () =
  let h = Histogram.of_list [ 1; 1; 2; 5 ] in
  Alcotest.(check int) "count 1" 2 (Histogram.count 1 h);
  Alcotest.(check int) "count missing" 0 (Histogram.count 3 h);
  Alcotest.(check int) "total" 4 (Histogram.total h);
  Alcotest.(check (list (pair int int))) "bins" [ (1, 2); (2, 1); (5, 1) ] (Histogram.bins h);
  Alcotest.(check (list (pair int int))) "filled"
    [ (1, 2); (2, 1); (3, 0); (4, 0); (5, 1) ]
    (Histogram.bins_filled ~lo:1 ~hi:5 h);
  Alcotest.(check (option int)) "max key" (Some 5) (Histogram.max_key h);
  let h2 = Histogram.add ~count:3 2 Histogram.empty in
  Alcotest.(check int) "merged" 4 (Histogram.count 2 (Histogram.merge h h2))

let test_rank_by_count () =
  let ranked = Series.rank_by_count [ ("a", 5); ("b", 50); ("c", 7) ] in
  Alcotest.(check (list (pair int string)))
    "ranked desc"
    [ (1, "b"); (2, "c"); (3, "a") ]
    (List.map (fun (r, x, _) -> (r, x)) ranked)

let test_log_marks () =
  Alcotest.(check (list int)) "marks" [ 1; 2; 5; 10; 20; 50; 100 ] (Series.log_spaced_marks 100)

let test_ascii_plots () =
  let plot = Series.ascii_loglog [ (1.0, 10.0); (10.0, 100.0); (100.0, 1.0) ] in
  Alcotest.(check bool) "loglog renders stars" true (String.contains plot '*');
  Alcotest.(check bool) "empty data handled" true
    (String.length (Series.ascii_loglog []) > 0);
  let ts = Series.ascii_timeseries ~labels:[ "All"; "SA" ] [ [ 100.0; 110.0 ]; [ 10.0; 11.0 ] ] in
  Alcotest.(check bool) "timeseries renders marks" true (String.contains ts 'A')

let contains_substring haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_render () =
  let t = Table.create ~title:"Demo" [ ("AS", Table.Left); ("pct", Table.Right) ] in
  Table.add_row t [ "AS1"; Table.cell_pct 99.994 ];
  Table.add_row t [ "AS7018"; Table.cell_pct ~decimals:2 99.99 ];
  let s = Table.render t in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 4 = "Demo");
  Alcotest.(check bool) "has row" true (contains_substring s "AS7018");
  Alcotest.(check bool) "has pct" true (contains_substring s "99.99%")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left); ("b", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only-one" ])

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "pct" "97.6%" (Table.cell_pct 97.561)

let () =
  Alcotest.run "rpi_stats"
    [
      ( "dist",
        [
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "fraction" `Quick test_fraction;
        ] );
      ("histogram", [ Alcotest.test_case "histogram" `Quick test_histogram ]);
      ( "series",
        [
          Alcotest.test_case "rank by count" `Quick test_rank_by_count;
          Alcotest.test_case "log marks" `Quick test_log_marks;
          Alcotest.test_case "ascii plots" `Quick test_ascii_plots;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
    ]
