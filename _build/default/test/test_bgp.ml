module Asn = Rpi_bgp.Asn
module Community = Rpi_bgp.Community
module As_path = Rpi_bgp.As_path
module Route = Rpi_bgp.Route
module Decision = Rpi_bgp.Decision
module Rib = Rpi_bgp.Rib
module Update = Rpi_bgp.Update
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4

let p = Prefix.of_string_exn
let ip = Ipv4.of_string_exn
let asn = Asn.of_int

(* --- Asn --- *)

let test_asn_parse () =
  Alcotest.(check int) "bare" 7018 (Asn.to_int (Asn.of_string_exn "7018"));
  Alcotest.(check int) "AS prefix" 7018 (Asn.to_int (Asn.of_string_exn "AS7018"));
  Alcotest.(check string) "label" "AS7018" (Asn.to_label (asn 7018));
  Alcotest.(check bool) "bad" true
    (match Asn.of_string "ASx" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "negative" true
    (match Asn.of_string "-1" with Error _ -> true | Ok _ -> false)

(* --- Community --- *)

let test_community_basic () =
  let c = Community.make (asn 12859) 1000 in
  Alcotest.(check string) "render" "12859:1000" (Community.to_string c);
  Alcotest.(check int) "asn part" 12859 (Asn.to_int (Community.asn c));
  Alcotest.(check int) "value part" 1000 (Community.value c);
  Alcotest.(check bool) "roundtrip" true
    (Community.equal c (Community.of_string_exn "12859:1000"))

let test_community_wellknown () =
  Alcotest.(check bool) "no-export" true (Community.is_no_export Community.no_export);
  Alcotest.(check string) "render" "no-export" (Community.to_string Community.no_export);
  Alcotest.(check bool) "parse" true
    (Community.equal Community.no_export (Community.of_string_exn "no-export"));
  Alcotest.(check bool) "no-advertise distinct" false
    (Community.equal Community.no_export Community.no_advertise)

let test_community_invalid () =
  List.iter
    (fun s ->
      Alcotest.(check bool) s true
        (match Community.of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "1:2:3"; "70000:1"; "1:70000"; "abc" ]

let test_community_set () =
  let set =
    match Community.Set.of_string "12859:1000 12859:4000" with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check int) "two members" 2 (Community.Set.cardinal set);
  Alcotest.(check string) "render" "12859:1000 12859:4000" (Community.Set.to_string set)

(* --- As_path --- *)

let test_path_basic () =
  let path = As_path.of_list [ asn 701; asn 1239; asn 7018 ] in
  Alcotest.(check int) "length" 3 (As_path.length path);
  Alcotest.(check (option int)) "first hop" (Some 701) (Option.map Asn.to_int (As_path.first_hop path));
  Alcotest.(check (option int)) "origin" (Some 7018) (Option.map Asn.to_int (As_path.origin_as path));
  Alcotest.(check bool) "mem" true (As_path.mem (asn 1239) path);
  Alcotest.(check bool) "not mem" false (As_path.mem (asn 42) path);
  Alcotest.(check string) "render" "701 1239 7018" (As_path.to_string path)

let test_path_empty () =
  Alcotest.(check bool) "empty" true (As_path.is_empty As_path.empty);
  Alcotest.(check int) "zero length" 0 (As_path.length As_path.empty);
  Alcotest.(check bool) "no first hop" true (As_path.first_hop As_path.empty = None);
  Alcotest.(check bool) "empty parses" true
    (As_path.equal As_path.empty (As_path.of_string_exn ""))

let test_path_prepend () =
  let path = As_path.of_list [ asn 2 ] in
  let path = As_path.prepend (asn 1) path in
  Alcotest.(check string) "prepended" "1 2" (As_path.to_string path);
  let padded = As_path.prepend_n (asn 1) 3 path in
  Alcotest.(check string) "prepend_n" "1 1 1 1 2" (As_path.to_string padded);
  Alcotest.(check int) "length counts repeats" 5 (As_path.length padded)

let test_path_as_set () =
  let path = As_path.of_string_exn "701 1239 {4,5,6}" in
  Alcotest.(check int) "set counts one" 3 (As_path.length path);
  Alcotest.(check bool) "mem in set" true (As_path.mem (asn 5) path);
  Alcotest.(check string) "render" "701 1239 {4,5,6}" (As_path.to_string path);
  Alcotest.(check bool) "origin unknown under trailing set" true (As_path.origin_as path = None)

let test_path_pairs () =
  let path = As_path.of_string_exn "1 2 3" in
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 2); (2, 3) ]
    (List.map (fun (a, b) -> (Asn.to_int a, Asn.to_int b)) (As_path.pairs path))

let test_path_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check string) s s (As_path.to_string (As_path.of_string_exn s)))
    [ "7018"; "701 1239"; "701 {2,3}"; "1 2 {3,4} 5" ]

(* --- Decision process --- *)

let base_route ?(pfx = "10.0.0.0/24") ?(lp = 100) ?(path = [ 1; 2 ]) ?(origin = Route.Igp)
    ?med ?(source = Route.Ebgp) ?(igp_metric = 0) ?(rid = "1.1.1.1") () =
  Route.make ~prefix:(p pfx) ~next_hop:(ip "10.0.0.1")
    ~as_path:(As_path.of_list (List.map asn path))
    ~origin ~local_pref:lp ?med ~source ~igp_metric ~router_id:(ip rid) ()

let check_best msg expected candidates =
  match Decision.select_best candidates with
  | None -> Alcotest.failf "%s: nothing selected" msg
  | Some r -> Alcotest.(check bool) msg true (Route.equal r expected)

let test_decision_local_pref () =
  let a = base_route ~lp:110 ~path:[ 1; 2; 3; 4 ] () in
  let b = base_route ~lp:100 ~path:[ 9 ] () in
  check_best "higher lp wins despite longer path" a [ b; a ]

let test_decision_path_length () =
  let a = base_route ~path:[ 1 ] () in
  let b = base_route ~path:[ 2; 3 ] () in
  check_best "shorter path wins" a [ b; a ]

let test_decision_origin () =
  let a = base_route ~origin:Route.Igp ~rid:"2.2.2.2" () in
  let b = base_route ~origin:Route.Incomplete () in
  check_best "IGP origin wins" a [ b; a ]

let test_decision_med_same_as () =
  (* Same next-hop AS: lower MED wins. *)
  let a = base_route ~med:10 () in
  let b = base_route ~med:20 ~rid:"0.0.0.1" () in
  check_best "lower med wins within same AS" a [ b; a ]

let test_decision_med_different_as () =
  (* Different next-hop AS: MED is not compared; decision falls through to
     router id. *)
  let a = base_route ~path:[ 1; 5 ] ~med:50 ~rid:"1.1.1.1" () in
  let b = base_route ~path:[ 2; 5 ] ~med:5 ~rid:"2.2.2.2" () in
  check_best "med skipped across ASs; lower router id wins" a [ b; a ]

let test_decision_ebgp_over_ibgp () =
  let a = base_route ~source:Route.Ebgp ~rid:"9.9.9.9" () in
  let b = base_route ~source:Route.Ibgp ~rid:"1.1.1.1" () in
  check_best "ebgp wins" a [ b; a ]

let test_decision_igp_metric () =
  let a = base_route ~igp_metric:5 ~rid:"9.9.9.9" () in
  let b = base_route ~igp_metric:7 ~rid:"1.1.1.1" () in
  check_best "lower igp metric wins" a [ b; a ]

let test_decision_router_id () =
  let a = base_route ~rid:"1.1.1.1" () in
  let b = base_route ~rid:"2.2.2.2" () in
  check_best "lower router id wins" a [ b; a ]

let test_decision_no_local_pref_config () =
  let config = { Decision.default_config with Decision.use_local_pref = false } in
  let a = base_route ~lp:110 ~path:[ 1; 2; 3 ] () in
  let b = base_route ~lp:90 ~path:[ 7 ] ~rid:"3.3.3.3" () in
  match Decision.select_best ~config [ a; b ] with
  | Some r -> Alcotest.(check bool) "shortest path wins when lp disabled" true (Route.equal r b)
  | None -> Alcotest.fail "nothing selected"

let test_decision_deciding_step () =
  let a = base_route ~lp:110 () in
  let b = base_route ~lp:100 () in
  Alcotest.(check string) "lp decides" "local-pref"
    (Decision.step_to_string (Decision.deciding_step a b));
  let c = base_route ~path:[ 1 ] ~rid:"5.5.5.5" () in
  let d = base_route ~path:[ 1; 2 ] () in
  Alcotest.(check string) "length decides" "as-path-length"
    (Decision.step_to_string (Decision.deciding_step c d))

let test_decision_empty () =
  Alcotest.(check bool) "empty yields none" true (Decision.select_best [] = None)

(* --- Rib --- *)

let mk_peer_route ?(pfx = "10.0.0.0/24") peer path =
  Route.make ~prefix:(p pfx) ~next_hop:(ip "10.0.0.1")
    ~as_path:(As_path.of_list (List.map asn path))
    ~local_pref:100 ~router_id:(ip "1.1.1.1") ~peer_as:(asn peer) ()

let test_rib_sessions () =
  let rib = Rib.empty |> Rib.add_route (mk_peer_route 1 [ 1; 9 ]) in
  let rib = Rib.add_route (mk_peer_route 1 [ 1; 8 ]) rib in
  (* Same session: replaces. *)
  Alcotest.(check int) "one candidate" 1 (List.length (Rib.candidates rib (p "10.0.0.0/24")));
  let rib = Rib.add_route (mk_peer_route 2 [ 2; 9 ]) rib in
  Alcotest.(check int) "two candidates" 2 (List.length (Rib.candidates rib (p "10.0.0.0/24")));
  Alcotest.(check int) "one prefix" 1 (Rib.prefix_count rib);
  Alcotest.(check int) "two routes" 2 (Rib.route_count rib)

let test_rib_best () =
  let rib =
    Rib.of_routes [ mk_peer_route 1 [ 1; 2; 9 ]; mk_peer_route 2 [ 2; 9 ] ]
  in
  match Rib.best rib (p "10.0.0.0/24") with
  | Some r ->
      Alcotest.(check (option int)) "shorter path best" (Some 2) (Option.map Asn.to_int r.Route.peer_as)
  | None -> Alcotest.fail "no best"

let test_rib_withdraw () =
  let rib =
    Rib.of_routes [ mk_peer_route 1 [ 1; 9 ]; mk_peer_route 2 [ 2; 9 ] ]
  in
  let rib = Rib.withdraw ~peer_as:(asn 2) (p "10.0.0.0/24") rib in
  Alcotest.(check int) "one left" 1 (List.length (Rib.candidates rib (p "10.0.0.0/24")));
  let rib = Rib.withdraw ~peer_as:(asn 1) (p "10.0.0.0/24") rib in
  Alcotest.(check int) "prefix gone" 0 (Rib.prefix_count rib)

let test_rib_best_routes () =
  let rib =
    Rib.of_routes
      [
        mk_peer_route ~pfx:"10.0.0.0/24" 1 [ 1; 9 ];
        mk_peer_route ~pfx:"10.0.1.0/24" 1 [ 1; 9 ];
        mk_peer_route ~pfx:"10.0.1.0/24" 2 [ 2 ];
      ]
  in
  Alcotest.(check int) "one best per prefix" 2 (List.length (Rib.best_routes rib));
  Alcotest.(check int) "all routes" 3 (List.length (Rib.all_routes rib))

let test_decision_explain () =
  let a = base_route ~lp:110 () in
  let b = base_route ~lp:100 ~path:[ 7 ] () in
  let c = base_route ~lp:110 ~path:[ 1; 2; 3 ] ~rid:"9.9.9.9" () in
  begin
    match Decision.explain [ b; a; c ] with
    | (winner, None) :: losers ->
        Alcotest.(check bool) "winner is a" true (Route.equal winner a);
        let step_of r =
          List.find_map (fun (r', s) -> if Route.equal r r' then s else None) losers
        in
        Alcotest.(check (option string)) "b lost on local-pref" (Some "local-pref")
          (Option.map Decision.step_to_string (step_of b));
        Alcotest.(check (option string)) "c lost on path length" (Some "as-path-length")
          (Option.map Decision.step_to_string (step_of c))
    | _ -> Alcotest.fail "winner not first"
  end;
  Alcotest.(check int) "empty" 0 (List.length (Decision.explain []))

let test_rib_diff () =
  let old_rib =
    Rib.of_routes
      [
        mk_peer_route ~pfx:"10.0.0.0/24" 1 [ 1; 9 ];
        mk_peer_route ~pfx:"10.0.1.0/24" 1 [ 1; 9 ];
        mk_peer_route ~pfx:"10.0.2.0/24" 1 [ 1; 9 ];
      ]
  in
  let new_rib =
    Rib.of_routes
      [
        mk_peer_route ~pfx:"10.0.0.0/24" 1 [ 1; 9 ];
        (* re-routed via 2 *)
        mk_peer_route ~pfx:"10.0.1.0/24" 2 [ 2; 9 ];
        (* 10.0.2.0/24 withdrawn; 10.0.3.0/24 new *)
        mk_peer_route ~pfx:"10.0.3.0/24" 1 [ 1; 9 ];
      ]
  in
  let d = Rib.diff ~old_rib new_rib in
  Alcotest.(check (list string)) "added" [ "10.0.3.0/24" ]
    (List.map Prefix.to_string d.Rib.added);
  Alcotest.(check (list string)) "removed" [ "10.0.2.0/24" ]
    (List.map Prefix.to_string d.Rib.removed);
  Alcotest.(check int) "unchanged" 1 d.Rib.unchanged;
  match d.Rib.best_changed with
  | [ (prefix, Some old_best, Some new_best) ] ->
      Alcotest.(check string) "which" "10.0.1.0/24" (Prefix.to_string prefix);
      Alcotest.(check (option int)) "old hop" (Some 1)
        (Option.map Asn.to_int (Route.next_hop_as old_best));
      Alcotest.(check (option int)) "new hop" (Some 2)
        (Option.map Asn.to_int (Route.next_hop_as new_best))
  | _ -> Alcotest.fail "expected one best change"

let test_rib_longest_match () =
  let rib =
    Rib.of_routes
      [ mk_peer_route ~pfx:"10.0.0.0/8" 1 [ 1 ]; mk_peer_route ~pfx:"10.1.0.0/16" 2 [ 2 ] ]
  in
  match Rib.longest_match rib (ip "10.1.2.3") with
  | Some (q, _) -> Alcotest.(check string) "most specific" "10.1.0.0/16" (Prefix.to_string q)
  | None -> Alcotest.fail "no match"

(* --- Update --- *)

let test_update_loop_prevention () =
  let route = mk_peer_route 1 [ 1; 7 ] in
  let update = Update.announce ~from_as:(asn 1) ~to_as:(asn 7) route in
  let rib = Update.apply update Rib.empty in
  Alcotest.(check int) "looping announce dropped" 0 (Rib.prefix_count rib);
  let update2 = Update.announce ~from_as:(asn 1) ~to_as:(asn 5) route in
  let rib2 = Update.apply update2 Rib.empty in
  Alcotest.(check int) "clean announce kept" 1 (Rib.prefix_count rib2)

let test_update_withdraw () =
  let route = mk_peer_route 1 [ 1; 7 ] in
  let rib = Update.apply (Update.announce ~from_as:(asn 1) ~to_as:(asn 5) route) Rib.empty in
  let rib = Update.apply (Update.withdraw ~from_as:(asn 1) ~to_as:(asn 5) (p "10.0.0.0/24")) rib in
  Alcotest.(check int) "withdrawn" 0 (Rib.prefix_count rib)

(* --- Properties --- *)

let gen_path =
  QCheck2.Gen.(list_size (int_range 0 8) (int_range 1 65000) |> map (List.map asn))

let prop_path_roundtrip =
  QCheck2.Test.make ~name:"as-path string roundtrip" ~count:300 gen_path (fun hops ->
      let path = As_path.of_list hops in
      As_path.equal path (As_path.of_string_exn (As_path.to_string path)))

let prop_prepend_increases =
  QCheck2.Test.make ~name:"prepend adds one hop" ~count:300 gen_path (fun hops ->
      let path = As_path.of_list hops in
      As_path.length (As_path.prepend (asn 99) path) = As_path.length path + 1)

let prop_best_is_candidate =
  QCheck2.Test.make ~name:"selected best is among candidates" ~count:200
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_range 50 150) (int_range 1 6)))
    (fun specs ->
      let routes =
        List.mapi
          (fun i (lp, len) ->
            base_route ~lp ~path:(List.init len (fun k -> k + 1))
              ~rid:(Printf.sprintf "1.1.1.%d" (i + 1)) ())
          specs
      in
      match Decision.select_best routes with
      | Some best ->
          List.exists (fun r -> Route.equal r best) routes
          && List.for_all
               (fun r -> Route.effective_local_pref r <= Route.effective_local_pref best)
               routes
      | None -> false)

let () =
  Alcotest.run "rpi_bgp"
    [
      ("asn", [ Alcotest.test_case "parse" `Quick test_asn_parse ]);
      ( "community",
        [
          Alcotest.test_case "basic" `Quick test_community_basic;
          Alcotest.test_case "well-known" `Quick test_community_wellknown;
          Alcotest.test_case "invalid" `Quick test_community_invalid;
          Alcotest.test_case "set" `Quick test_community_set;
        ] );
      ( "as_path",
        [
          Alcotest.test_case "basic" `Quick test_path_basic;
          Alcotest.test_case "empty" `Quick test_path_empty;
          Alcotest.test_case "prepend" `Quick test_path_prepend;
          Alcotest.test_case "as_set" `Quick test_path_as_set;
          Alcotest.test_case "pairs" `Quick test_path_pairs;
          Alcotest.test_case "roundtrip" `Quick test_path_roundtrip;
        ] );
      ( "decision",
        [
          Alcotest.test_case "local pref" `Quick test_decision_local_pref;
          Alcotest.test_case "path length" `Quick test_decision_path_length;
          Alcotest.test_case "origin" `Quick test_decision_origin;
          Alcotest.test_case "med same AS" `Quick test_decision_med_same_as;
          Alcotest.test_case "med different AS" `Quick test_decision_med_different_as;
          Alcotest.test_case "ebgp over ibgp" `Quick test_decision_ebgp_over_ibgp;
          Alcotest.test_case "igp metric" `Quick test_decision_igp_metric;
          Alcotest.test_case "router id" `Quick test_decision_router_id;
          Alcotest.test_case "lp disabled" `Quick test_decision_no_local_pref_config;
          Alcotest.test_case "deciding step" `Quick test_decision_deciding_step;
          Alcotest.test_case "explain" `Quick test_decision_explain;
          Alcotest.test_case "empty" `Quick test_decision_empty;
        ] );
      ( "rib",
        [
          Alcotest.test_case "sessions" `Quick test_rib_sessions;
          Alcotest.test_case "best" `Quick test_rib_best;
          Alcotest.test_case "withdraw" `Quick test_rib_withdraw;
          Alcotest.test_case "best_routes" `Quick test_rib_best_routes;
          Alcotest.test_case "longest match" `Quick test_rib_longest_match;
          Alcotest.test_case "diff" `Quick test_rib_diff;
        ] );
      ( "update",
        [
          Alcotest.test_case "loop prevention" `Quick test_update_loop_prevention;
          Alcotest.test_case "withdraw" `Quick test_update_withdraw;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_path_roundtrip; prop_prepend_increases; prop_best_is_candidate ] );
    ]
