module Prng = Rpi_prng.Prng

let test_determinism () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref true in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then same := false
  done;
  Alcotest.(check bool) "streams differ" false !same

let test_split_independent () =
  let a = Prng.create ~seed:5 in
  let b = Prng.split a in
  Alcotest.(check bool) "split stream differs" true (Prng.bits64 a <> Prng.bits64 b)

let test_copy () =
  let a = Prng.create ~seed:9 in
  let _ = Prng.bits64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a) (Prng.bits64 b)

let test_int_bounds () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    Alcotest.(check bool) "0 <= v < 7" true (v >= 0 && v < 7)
  done

let test_int_invalid () =
  let rng = Prng.create ~seed:3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0))

let test_int_in () =
  let rng = Prng.create ~seed:3 in
  for _ = 1 to 500 do
    let v = Prng.int_in rng (-3) 4 in
    Alcotest.(check bool) "in range" true (v >= -3 && v <= 4)
  done

let test_int_covers_all () =
  let rng = Prng.create ~seed:11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Prng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let rng = Prng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_chance_extremes () =
  let rng = Prng.create ~seed:17 in
  Alcotest.(check bool) "p=0 never" false (Prng.chance rng 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.chance rng 1.0)

let test_chance_rate () =
  let rng = Prng.create ~seed:19 in
  let hits = ref 0 in
  let n = 10000 in
  for _ = 1 to n do
    if Prng.chance rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "close to 0.3" true (rate > 0.27 && rate < 0.33)

let test_choice () =
  let rng = Prng.create ~seed:23 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.mem (Prng.choice rng arr) arr)
  done

let test_weighted_choice () =
  let rng = Prng.create ~seed:29 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let v = Prng.weighted_choice rng [ ("a", 1.0); ("b", 9.0) ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let b = Option.value ~default:0 (Hashtbl.find_opt counts "b") in
  Alcotest.(check bool) "b dominates ~9:1" true (b > 8500 && b < 9500)

let test_shuffle_permutation () =
  let rng = Prng.create ~seed:31 in
  let arr = Array.init 20 Fun.id in
  Prng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 20 Fun.id) sorted

let test_sample () =
  let rng = Prng.create ~seed:37 in
  let xs = [ 1; 2; 3; 4; 5 ] in
  let s = Prng.sample rng 3 xs in
  Alcotest.(check int) "three drawn" 3 (List.length s);
  Alcotest.(check int) "distinct" 3 (List.length (List.sort_uniq Int.compare s));
  let all = Prng.sample rng 99 xs in
  Alcotest.(check int) "capped at length" 5 (List.length all)

let test_zipf_bounds () =
  let rng = Prng.create ~seed:41 in
  for _ = 1 to 2000 do
    let v = Prng.zipf rng ~n:50 ~s:1.2 in
    Alcotest.(check bool) "1 <= v <= 50" true (v >= 1 && v <= 50)
  done

let test_zipf_skew () =
  let rng = Prng.create ~seed:43 in
  let ones = ref 0 and n = 5000 in
  for _ = 1 to n do
    if Prng.zipf rng ~n:100 ~s:1.5 = 1 then incr ones
  done;
  (* rank 1 should carry a large share under s = 1.5 *)
  Alcotest.(check bool) "rank 1 frequent" true (!ones > n / 4)

let test_pareto () =
  let rng = Prng.create ~seed:47 in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "above scale" true (Prng.pareto rng ~xm:2.0 ~alpha:1.5 >= 2.0)
  done

let test_exponential () =
  let rng = Prng.create ~seed:53 in
  let total = ref 0.0 and n = 20000 in
  for _ = 1 to n do
    let v = Prng.exponential rng ~mean:4.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    total := !total +. v
  done;
  let m = !total /. float_of_int n in
  Alcotest.(check bool) "mean near 4" true (m > 3.7 && m < 4.3)

(* Property tests. *)
let prop_int_range =
  QCheck2.Test.make ~name:"int stays in range" ~count:500
    QCheck2.Gen.(pair int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_shuffle_preserves =
  QCheck2.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck2.Gen.(pair int (list int))
    (fun (seed, xs) ->
      let rng = Prng.create ~seed in
      let shuffled = Prng.shuffle_list rng xs in
      List.sort Int.compare shuffled = List.sort Int.compare xs)

let () =
  Alcotest.run "rpi_prng"
    [
      ( "splitmix",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds;
          Alcotest.test_case "split" `Quick test_split_independent;
          Alcotest.test_case "copy" `Quick test_copy;
        ] );
      ( "draws",
        [
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "int covers all" `Quick test_int_covers_all;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "chance extremes" `Quick test_chance_extremes;
          Alcotest.test_case "chance rate" `Quick test_chance_rate;
          Alcotest.test_case "choice" `Quick test_choice;
          Alcotest.test_case "weighted choice" `Quick test_weighted_choice;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "sample" `Quick test_sample;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "pareto" `Quick test_pareto;
          Alcotest.test_case "exponential" `Quick test_exponential;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_int_range; prop_shuffle_preserves ] );
    ]
