(* Unit tests for the policy-inference algorithms, on small hand-built
   graphs and tables where the right answers are known by construction. *)

module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module Rib = Rpi_bgp.Rib
module As_path = Rpi_bgp.As_path
module Community = Rpi_bgp.Community
module Prefix = Rpi_net.Prefix
module Prefix_set = Rpi_net.Prefix_set
module Ipv4 = Rpi_net.Ipv4
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Import_infer = Rpi_core.Import_infer
module Nexthop = Rpi_core.Nexthop_consistency
module Export_infer = Rpi_core.Export_infer
module Sa_verify = Rpi_core.Sa_verify
module Sa_causes = Rpi_core.Sa_causes
module Homing = Rpi_core.Homing
module Persistence = Rpi_core.Persistence
module Peer_export = Rpi_core.Peer_export
module Community_verify = Rpi_core.Community_verify
module Irr_import = Rpi_core.Irr_import

let p = Prefix.of_string_exn
let asn = Asn.of_int

let route ?(pfx = "10.0.0.0/24") ?(path = [ 2; 9 ]) ?lp ?(communities = []) () =
  let peer = asn (List.hd path) in
  Route.make ~prefix:(p pfx)
    ~next_hop:(Ipv4.of_octets 10 0 (List.hd path mod 250) 1)
    ~as_path:(As_path.of_list (List.map asn path))
    ?local_pref:lp
    ~communities:(Community.Set.of_list (List.map Community.of_string_exn communities))
    ~router_id:(Ipv4.of_octets 10 0 (List.hd path mod 250) 1)
    ~peer_as:peer ()

(* Observer AS 1 with customer 2, peer 3, provider 4; 9 is a distant
   origin. *)
let observer_graph () =
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:(asn 1) ~customer:(asn 2) in
  let g = As_graph.add_p2p g (asn 1) (asn 3) in
  let g = As_graph.add_p2c g ~provider:(asn 4) ~customer:(asn 1) in
  let g = As_graph.add_p2c g ~provider:(asn 2) ~customer:(asn 9) in
  g

(* --- Import_infer --- *)

let test_judge_typical () =
  let obs rel lp = { Import_infer.neighbor = asn 2; rel; local_pref = lp } in
  Alcotest.(check bool) "customer above peer" true
    (Import_infer.judge [ obs Relationship.Customer 110; obs Relationship.Peer 100 ]
    = Import_infer.Typical);
  Alcotest.(check bool) "tie is atypical" true
    (Import_infer.judge [ obs Relationship.Customer 100; obs Relationship.Peer 100 ]
    = Import_infer.Atypical);
  Alcotest.(check bool) "provider above peer is atypical" true
    (Import_infer.judge [ obs Relationship.Peer 90; obs Relationship.Provider 100 ]
    = Import_infer.Atypical);
  Alcotest.(check bool) "single class incomparable" true
    (Import_infer.judge [ obs Relationship.Customer 110 ] = Import_infer.Incomparable);
  Alcotest.(check bool) "empty incomparable" true
    (Import_infer.judge [] = Import_infer.Incomparable)

let test_import_analyze () =
  let g = observer_graph () in
  let rib =
    Rib.of_routes
      [
        (* prefix A: typical (customer 110 > peer 100) *)
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.0.0/24" ~path:[ 3; 9 ] ~lp:100 ();
        (* prefix B: atypical (provider 120 > customer 110) *)
        route ~pfx:"10.0.1.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 4; 9 ] ~lp:120 ();
        (* prefix C: incomparable (single neighbour) *)
        route ~pfx:"10.0.2.0/24" ~path:[ 2; 9 ] ~lp:110 ();
      ]
  in
  let r = Import_infer.analyze g ~vantage:(asn 1) rib in
  Alcotest.(check int) "total" 3 r.Import_infer.prefixes_total;
  Alcotest.(check int) "compared" 2 r.Import_infer.prefixes_compared;
  Alcotest.(check int) "typical" 1 r.Import_infer.typical;
  Alcotest.(check int) "atypical" 1 r.Import_infer.atypical;
  Alcotest.(check (float 0.01)) "pct" 50.0 r.Import_infer.pct_typical

let test_infer_class_preferences () =
  let g = observer_graph () in
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let prefs = Import_infer.infer_class_preferences g ~vantage:(asn 1) rib in
  Alcotest.(check (option int)) "customer pref" (Some 110)
    (List.assoc_opt Relationship.Customer prefs);
  Alcotest.(check (option int)) "peer pref" (Some 100)
    (List.assoc_opt Relationship.Peer prefs)

(* --- Nexthop_consistency --- *)

let test_nexthop_consistency () =
  let rib =
    Rib.of_routes
      [
        (* neighbour 2: lp 110 on two prefixes, 90 on one. *)
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.2.0/24" ~path:[ 2; 9 ] ~lp:90 ();
        (* neighbour 3: single value. *)
        route ~pfx:"10.0.0.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let r = Nexthop.analyze rib in
  Alcotest.(check int) "observations" 4 r.Nexthop.prefixes_total;
  Alcotest.(check int) "conforming" 3 r.Nexthop.prefixes_conforming;
  Alcotest.(check (float 0.01)) "pct" 75.0 r.Nexthop.pct_nexthop_based;
  Alcotest.(check (float 0.01)) "single-valued" 50.0 r.Nexthop.pct_single_valued_neighbors;
  let nb2 = List.find (fun pr -> Asn.equal pr.Nexthop.neighbor (asn 2)) r.Nexthop.neighbors in
  Alcotest.(check int) "dominant lp" 110 nb2.Nexthop.dominant_lp;
  Alcotest.(check int) "distinct values" 2 nb2.Nexthop.distinct_values

let test_nexthop_empty () =
  let r = Nexthop.analyze Rib.empty in
  Alcotest.(check (float 0.01)) "vacuous" 100.0 r.Nexthop.pct_nexthop_based

(* --- Export_infer --- *)

let test_classify_prefix () =
  let g = observer_graph () in
  let customer_rib = Rib.of_routes [ route ~path:[ 2; 9 ] ~lp:110 () ] in
  let peer_rib = Rib.of_routes [ route ~path:[ 3; 9 ] ~lp:100 () ] in
  Alcotest.(check bool) "customer route" true
    (Export_infer.classify_prefix g ~provider:(asn 1) customer_rib (p "10.0.0.0/24")
    = Export_infer.Customer_route);
  begin
    match Export_infer.classify_prefix g ~provider:(asn 1) peer_rib (p "10.0.0.0/24") with
    | Export_infer.Sa_prefix { next_hop; via } ->
        Alcotest.(check int) "via peer 3" 3 (Asn.to_int next_hop);
        Alcotest.(check bool) "peer" true (Relationship.equal via Relationship.Peer)
    | Export_infer.Customer_route | Export_infer.Unreachable -> Alcotest.fail "expected SA"
  end;
  Alcotest.(check bool) "unreachable" true
    (Export_infer.classify_prefix g ~provider:(asn 1) Rib.empty (p "10.0.0.0/24")
    = Export_infer.Unreachable)

let test_export_analyze () =
  let g = observer_graph () in
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let origins = [ (asn 9, [ p "10.0.0.0/24"; p "10.0.1.0/24" ]) ] in
  let r = Export_infer.analyze g ~provider:(asn 1) ~origins rib in
  Alcotest.(check int) "customers" 1 r.Export_infer.customers_seen;
  Alcotest.(check int) "prefixes" 2 r.Export_infer.customer_prefixes;
  Alcotest.(check int) "one SA" 1 (List.length r.Export_infer.sa);
  Alcotest.(check int) "one customer-routed" 1 r.Export_infer.customer_routed;
  Alcotest.(check (float 0.01)) "pct" 50.0 r.Export_infer.pct_sa

let test_export_skips_non_customers () =
  let g = observer_graph () in
  let rib = Rib.of_routes [ route ~path:[ 3; 5 ] ~lp:100 () ] in
  (* AS5 is not a customer of AS1 (not even in the graph below it). *)
  let r = Export_infer.analyze g ~provider:(asn 1) ~origins:[ (asn 5, [ p "10.0.0.0/24" ]) ] rib in
  Alcotest.(check int) "no customers" 0 r.Export_infer.customers_seen;
  Alcotest.(check int) "no SA" 0 (List.length r.Export_infer.sa)

let test_origins_of_rib () =
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ();
        route ~pfx:"10.0.1.0/24" ~path:[ 3; 7 ] ();
      ]
  in
  let origins = Export_infer.origins_of_rib rib in
  Alcotest.(check (list int)) "origin ASs" [ 7; 9 ]
    (List.map (fun (a, _) -> Asn.to_int a) origins)

let test_viewpoint_of_feed () =
  let collector =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 1; 2; 9 ] ();
        (* another feed's candidate for the same prefix *)
        route ~pfx:"10.0.0.0/24" ~path:[ 4; 3; 9 ] ();
        (* feed 1's own prefix *)
        route ~pfx:"10.0.9.0/24" ~path:[ 1 ] ();
      ]
  in
  let vp = Export_infer.viewpoint_of_feed ~feed:(asn 1) collector in
  Alcotest.(check int) "two prefixes" 2 (Rib.prefix_count vp);
  match Rib.best vp (p "10.0.0.0/24") with
  | Some r ->
      Alcotest.(check string) "feed stripped" "2 9" (As_path.to_string r.Route.as_path);
      Alcotest.(check (option int)) "peer is next hop" (Some 2)
        (Option.map Asn.to_int r.Route.peer_as)
  | None -> Alcotest.fail "missing route"

(* --- Sa_verify --- *)

let test_path_index () =
  let idx = Sa_verify.index_paths [ [ asn 1; asn 2; asn 9 ] ] in
  Alcotest.(check bool) "pair 1-2" true (Sa_verify.pair_observed idx (asn 1) (asn 2));
  Alcotest.(check bool) "ordered" false (Sa_verify.pair_observed idx (asn 2) (asn 1));
  Alcotest.(check bool) "chain" true (Sa_verify.chain_active idx [ asn 1; asn 2; asn 9 ]);
  Alcotest.(check bool) "broken chain" false
    (Sa_verify.chain_active idx [ asn 1; asn 9 ]);
  Alcotest.(check bool) "trivial chain" true (Sa_verify.chain_active idx [ asn 1 ])

let test_sa_verify_verdicts () =
  let g = observer_graph () in
  let record via =
    { Export_infer.prefix = p "10.0.0.0/24"; origin = via; next_hop = asn 3; via = Relationship.Peer }
  in
  (* Direct customer: verified without path evidence. *)
  let idx = Sa_verify.index_paths [] in
  Alcotest.(check bool) "direct" true
    (Sa_verify.verify_record g idx ~provider:(asn 1) (record (asn 2))
    = Sa_verify.Verified_direct);
  (* Indirect customer 9 via 2: needs the chain 1-2-9 to be active. *)
  Alcotest.(check bool) "unverified without paths" true
    (Sa_verify.verify_record g idx ~provider:(asn 1) (record (asn 9)) = Sa_verify.Unverified);
  let idx = Sa_verify.index_paths [ [ asn 1; asn 2; asn 9 ] ] in
  Alcotest.(check bool) "active path verifies" true
    (Sa_verify.verify_record g idx ~provider:(asn 1) (record (asn 9))
    = Sa_verify.Verified_active_path);
  let report = Sa_verify.verify g idx ~provider:(asn 1) [ record (asn 2); record (asn 9) ] in
  Alcotest.(check int) "total" 2 report.Sa_verify.total;
  Alcotest.(check int) "verified" 2 report.Sa_verify.verified;
  Alcotest.(check (float 0.01)) "pct" 100.0 report.Sa_verify.pct_verified

let test_observed_paths_of_rib () =
  let rib = Rib.of_routes [ route ~path:[ 2; 9 ] () ] in
  let paths = Sa_verify.observed_paths_of_rib ~vantage:(asn 1) rib in
  Alcotest.(check (list (list int))) "vantage prepended" [ [ 1; 2; 9 ] ]
    (List.map (List.map Asn.to_int) paths)

(* --- Sa_causes --- *)

let test_splitting_detection () =
  let rib =
    Rib.of_routes
      [
        (* covering prefix via customer, specific via peer — a split. *)
        route ~pfx:"10.0.0.0/23" ~path:[ 2; 9 ] ~lp:110 ();
        route ~pfx:"10.0.0.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let sa =
    [
      {
        Export_infer.prefix = p "10.0.0.0/24";
        origin = asn 9;
        next_hop = asn 3;
        via = Relationship.Peer;
      };
    ]
  in
  match Sa_causes.splitting rib sa with
  | [ record ] ->
      Alcotest.(check string) "specific" "10.0.0.0/24"
        (Prefix.to_string record.Sa_causes.specific);
      Alcotest.(check string) "covering" "10.0.0.0/23"
        (Prefix.to_string record.Sa_causes.covering)
  | other -> Alcotest.failf "expected 1 split, got %d" (List.length other)

let test_splitting_requires_same_origin () =
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/23" ~path:[ 2; 7 ] ~lp:110 ();
        (* different origin *)
        route ~pfx:"10.0.0.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let sa =
    [
      {
        Export_infer.prefix = p "10.0.0.0/24";
        origin = asn 9;
        next_hop = asn 3;
        via = Relationship.Peer;
      };
    ]
  in
  Alcotest.(check int) "no split across origins" 0 (List.length (Sa_causes.splitting rib sa))

let test_aggregable_detection () =
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/20" ~path:[ 2; 7 ] ~lp:110 ();
        route ~pfx:"10.0.1.0/24" ~path:[ 3; 9 ] ~lp:100 ();
      ]
  in
  let sa =
    [
      {
        Export_infer.prefix = p "10.0.1.0/24";
        origin = asn 9;
        next_hop = asn 3;
        via = Relationship.Peer;
      };
    ]
  in
  Alcotest.(check int) "aggregable" 1 (List.length (Sa_causes.aggregable rib sa));
  (* Without the covering prefix, nothing aggregates. *)
  let rib2 = Rib.of_routes [ route ~pfx:"10.0.1.0/24" ~path:[ 3; 9 ] ~lp:100 () ] in
  Alcotest.(check int) "not aggregable" 0 (List.length (Sa_causes.aggregable rib2 sa))

(* Fig. 8(a)-style graph for case 3: observer 1 above d=2 above origin 9;
   9 also below 5, which hangs below peer-side 3. *)
let case3_graph () =
  let g = observer_graph () in
  let g = As_graph.add_p2c g ~provider:(asn 5) ~customer:(asn 9) in
  let g = As_graph.add_p2c g ~provider:(asn 3) ~customer:(asn 5) in
  g

let test_case3_withhold () =
  let g = case3_graph () in
  (* Observer's table shows only the curving peer path 3 5 9; no path has
     2 adjacent above 9 => 9 withheld from 2 (which is a feed). *)
  let viewpoint = Rib.of_routes [ route ~path:[ 3; 5; 9 ] ~lp:100 () ] in
  let record =
    {
      Export_infer.prefix = p "10.0.0.0/24";
      origin = asn 9;
      next_hop = asn 3;
      via = Relationship.Peer;
    }
  in
  let paths_of _ = [ [ asn 3; asn 5; asn 9 ] ] in
  match
    Sa_causes.case3_for_record g ~viewpoint ~paths_of ~feeds:[ asn 2 ] ~provider:(asn 1)
      record
  with
  | Some (d, c, Sa_causes.Withholds) ->
      Alcotest.(check int) "blamed provider" 2 (Asn.to_int d);
      Alcotest.(check int) "customer is origin" 9 (Asn.to_int c)
  | Some (_, _, other) ->
      Alcotest.failf "expected withhold, got %s"
        (match other with
        | Sa_causes.Announces -> "announce"
        | Sa_causes.Withholds -> "withhold"
        | Sa_causes.Undetermined -> "undetermined")
  | None -> Alcotest.fail "no verdict"

let test_case3_announce () =
  let g = case3_graph () in
  let viewpoint = Rib.of_routes [ route ~path:[ 3; 5; 9 ] ~lp:100 () ] in
  let record =
    {
      Export_infer.prefix = p "10.0.0.0/24";
      origin = asn 9;
      next_hop = asn 3;
      via = Relationship.Peer;
    }
  in
  (* Another observed path shows 2 directly above 9: the origin announced
     to 2 (a "do not export further" case). *)
  let paths_of _ = [ [ asn 3; asn 5; asn 9 ]; [ asn 2; asn 9 ] ] in
  match
    Sa_causes.case3_for_record g ~viewpoint ~paths_of ~feeds:[] ~provider:(asn 1) record
  with
  | Some (_, _, Sa_causes.Announces) -> ()
  | Some (_, _, _) | None -> Alcotest.fail "expected announce"

let test_case3_undetermined () =
  let g = case3_graph () in
  let viewpoint = Rib.of_routes [ route ~path:[ 3; 5; 9 ] ~lp:100 () ] in
  let record =
    {
      Export_infer.prefix = p "10.0.0.0/24";
      origin = asn 9;
      next_hop = asn 3;
      via = Relationship.Peer;
    }
  in
  (* d=2 is not a feed and never appears for this prefix. *)
  let paths_of _ = [ [ asn 3; asn 5; asn 9 ] ] in
  match
    Sa_causes.case3_for_record g ~viewpoint ~paths_of ~feeds:[] ~provider:(asn 1) record
  with
  | Some (_, _, Sa_causes.Undetermined) -> ()
  | Some (_, _, _) | None -> Alcotest.fail "expected undetermined"

(* --- Homing --- *)

let test_homing () =
  let g = case3_graph () in
  (* 9 has providers 2 and 5: multihomed. *)
  let record origin =
    { Export_infer.prefix = p "10.0.0.0/24"; origin; next_hop = asn 3; via = Relationship.Peer }
  in
  let r = Homing.analyze g ~provider:(asn 1) [ record (asn 9) ] in
  Alcotest.(check int) "multihomed" 1 r.Homing.multihomed;
  Alcotest.(check int) "single" 0 r.Homing.single_homed;
  (* 5 is single-homed under 3. *)
  let r2 = Homing.analyze g ~provider:(asn 1) [ record (asn 9); record (asn 5) ] in
  Alcotest.(check int) "one of each" 1 r2.Homing.single_homed;
  Alcotest.(check (float 0.01)) "pct" 50.0 r2.Homing.pct_multihomed

(* --- Persistence --- *)

let test_persistence () =
  let set = Prefix_set.of_list in
  let a = p "10.0.0.0/24" and b = p "10.0.1.0/24" and c = p "10.0.2.0/24" in
  let observations =
    [
      { Persistence.all_prefixes = set [ a; b; c ]; sa_prefixes = set [ a; b ] };
      { Persistence.all_prefixes = set [ a; b; c ]; sa_prefixes = set [ a ] };
      { Persistence.all_prefixes = set [ a; c ]; sa_prefixes = set [ a ] };
    ]
  in
  let series = Persistence.series_of observations in
  Alcotest.(check (list int)) "all counts" [ 3; 3; 2 ] series.Persistence.all_counts;
  Alcotest.(check (list int)) "sa counts" [ 2; 1; 1 ] series.Persistence.sa_counts;
  let up = Persistence.uptimes observations in
  (* a: uptime 3, sa 3 -> remaining; b: uptime 2, sa 1 -> shifting;
     c: never SA -> untouched. *)
  Alcotest.(check int) "touched" 2 up.Persistence.total_sa_touched;
  Alcotest.(check (list (pair int int))) "remaining" [ (3, 1) ] up.Persistence.remaining_sa;
  Alcotest.(check (list (pair int int))) "shifting" [ (2, 1) ] up.Persistence.shifting;
  Alcotest.(check (float 0.01)) "pct shifting" 50.0 up.Persistence.pct_shifting

let test_persistence_empty () =
  let up = Persistence.uptimes [] in
  Alcotest.(check int) "nothing" 0 up.Persistence.total_sa_touched;
  Alcotest.(check (float 0.01)) "no shifting" 0.0 up.Persistence.pct_shifting

(* --- Peer_export --- *)

let test_peer_export () =
  let g = observer_graph () in
  (* Peer 3 originates two prefixes; one received directly, one only via
     the customer 2. *)
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.3.0.0/24" ~path:[ 3 ] ~lp:100 ();
        route ~pfx:"10.3.1.0/24" ~path:[ 2; 3 ] ~lp:110 ();
      ]
  in
  let r = Peer_export.analyze g ~vantage:(asn 1) rib in
  Alcotest.(check int) "one peer profiled" 1 r.Peer_export.peers_total;
  let profile = List.hd r.Peer_export.peers in
  Alcotest.(check int) "own prefixes" 2 profile.Peer_export.own_prefixes;
  Alcotest.(check int) "direct" 1 profile.Peer_export.direct;
  Alcotest.(check bool) "not announcing all" false profile.Peer_export.announces_all;
  Alcotest.(check (float 0.01)) "pct" 0.0 r.Peer_export.pct_announcing

let test_peer_export_all_direct () =
  let g = observer_graph () in
  let rib = Rib.of_routes [ route ~pfx:"10.3.0.0/24" ~path:[ 3 ] ~lp:100 () ] in
  let r = Peer_export.analyze g ~vantage:(asn 1) rib in
  Alcotest.(check (float 0.01)) "pct" 100.0 r.Peer_export.pct_announcing

(* --- Community_verify --- *)

(* Vantage 1 with provider 4 (sends a route for every prefix, as real
   transit does), peer 3 (a mid-size cone), customers 2 and 5 (one prefix
   each), tagged per the default scheme. *)
let community_rib () =
  let tag code = Printf.sprintf "1:%d" code in
  let prefixes = List.init 30 (fun i -> Printf.sprintf "20.0.%d.0/24" i) in
  let provider_routes =
    List.map (fun pfx -> route ~pfx ~path:[ 4; 77 ] ~lp:90 ~communities:[ tag 2000 ] ()) prefixes
  in
  let peer_routes =
    List.filteri (fun i _ -> i < 8) prefixes
    |> List.map (fun pfx -> route ~pfx ~path:[ 3; 88 ] ~lp:100 ~communities:[ tag 1000 ] ())
  in
  let customer_routes =
    [
      route ~pfx:"20.0.28.0/24" ~path:[ 2; 9 ] ~lp:110 ~communities:[ tag 4000 ] ();
      route ~pfx:"20.0.29.0/24" ~path:[ 5 ] ~lp:110 ~communities:[ tag 4000 ] ();
    ]
  in
  Rib.of_routes (provider_routes @ peer_routes @ customer_routes)

let test_prefix_counts () =
  let counts = Community_verify.prefix_counts (community_rib ()) in
  Alcotest.(check (option int)) "provider first" (Some 4)
    (match counts with (a, _) :: _ -> Some (Asn.to_int a) | [] -> None);
  Alcotest.(check (option int)) "provider volume" (Some 30)
    (List.assoc_opt (asn 4) counts)

let test_neighbor_tags () =
  let tags = Community_verify.neighbor_tags ~vantage:(asn 1) (community_rib ()) in
  Alcotest.(check (option int)) "provider code" (Some 2000) (List.assoc_opt (asn 4) tags);
  Alcotest.(check (option int)) "peer code" (Some 1000) (List.assoc_opt (asn 3) tags);
  Alcotest.(check (option int)) "customer code" (Some 4000) (List.assoc_opt (asn 2) tags)

let test_infer_semantics () =
  let semantics =
    Community_verify.infer_semantics ~vantage:(asn 1) ~has_providers:true (community_rib ())
  in
  Alcotest.(check (list int)) "provider codes" [ 2000 ]
    semantics.Community_verify.provider_codes;
  Alcotest.(check (list int)) "peer codes" [ 1000 ] semantics.Community_verify.peer_codes;
  Alcotest.(check (list int)) "customer codes" [ 4000 ]
    semantics.Community_verify.customer_codes;
  Alcotest.(check bool) "classify" true
    (Community_verify.classify_neighbor semantics ~code:1000 = Some Relationship.Peer)

let test_community_verify_report () =
  let g =
    (* The inferred graph got customer 5 wrong (as peer). *)
    let g = observer_graph () in
    As_graph.add_p2p g (asn 1) (asn 5)
  in
  let r = Community_verify.verify ~vantage:(asn 1) ~inferred:g (community_rib ()) in
  Alcotest.(check int) "checked" 4 r.Community_verify.neighbors_checked;
  Alcotest.(check int) "matching" 3 r.Community_verify.matching;
  Alcotest.(check int) "one mismatch" 1 (List.length r.Community_verify.mismatches);
  let nb, community_rel, inferred_rel = List.hd r.Community_verify.mismatches in
  Alcotest.(check int) "mismatched neighbour" 5 (Asn.to_int nb);
  Alcotest.(check bool) "community says customer" true
    (Relationship.equal community_rel Relationship.Customer);
  Alcotest.(check bool) "paths said peer" true
    (Relationship.equal inferred_rel Relationship.Peer)

(* --- Irr_import --- *)

let test_irr_import () =
  let g = observer_graph () in
  let obj =
    Rpi_irr.Rpsl.make ~asn:(asn 1)
      ~imports:
        [
          { Rpi_irr.Rpsl.from_as = asn 2; pref = Some 90; accept = "AS2" };
          { Rpi_irr.Rpsl.from_as = asn 3; pref = Some 100; accept = "AS3" };
          { Rpi_irr.Rpsl.from_as = asn 4; pref = Some 80; accept = "ANY" };
          (* provider pref 80 beats customer 90: atypical pair *)
        ]
      ()
  in
  let r = Irr_import.analyze g obj in
  Alcotest.(check int) "classified" 3 r.Irr_import.rules_classified;
  (* pairs: (cust 90, peer 100) ok; (cust 90, prov 80) bad; (peer 100,
     prov 80) bad. *)
  Alcotest.(check int) "pairs" 3 r.Irr_import.pairs_compared;
  Alcotest.(check int) "typical pairs" 1 r.Irr_import.pairs_typical;
  Alcotest.(check (float 0.1)) "pct" 33.3 r.Irr_import.pct_typical

let test_irr_import_no_pref () =
  let g = observer_graph () in
  let obj =
    Rpi_irr.Rpsl.make ~asn:(asn 1)
      ~imports:[ { Rpi_irr.Rpsl.from_as = asn 2; pref = None; accept = "AS2" } ]
      ()
  in
  let r = Irr_import.analyze g obj in
  Alcotest.(check int) "nothing classified" 0 r.Irr_import.rules_classified;
  Alcotest.(check (float 0.01)) "vacuous 100%" 100.0 r.Irr_import.pct_typical

(* --- properties --- *)

let prop_judge_antisymmetric =
  (* If a set of observations is Typical, flipping customer and provider
     preferences makes it Atypical. *)
  QCheck2.Test.make ~name:"typical flips to atypical under swap" ~count:200
    QCheck2.Gen.(pair (int_range 10 200) (int_range 10 200))
    (fun (lp_cust, lp_prov) ->
      QCheck2.assume (lp_cust <> lp_prov);
      let obs rel lp = { Import_infer.neighbor = asn 2; rel; local_pref = lp } in
      let hi = max lp_cust lp_prov and lo = min lp_cust lp_prov in
      let typical =
        Import_infer.judge [ obs Relationship.Customer hi; obs Relationship.Provider lo ]
      in
      let flipped =
        Import_infer.judge [ obs Relationship.Customer lo; obs Relationship.Provider hi ]
      in
      typical = Import_infer.Typical && flipped = Import_infer.Atypical)

let prop_classify_matches_best_hop =
  (* classify_prefix's verdict is exactly the graph relationship of the
     best route's first hop. *)
  QCheck2.Test.make ~name:"classification follows the best route's first hop" ~count:200
    QCheck2.Gen.(list_size (int_range 1 4) (pair (int_range 0 2) (int_range 80 120)))
    (fun specs ->
      let g = observer_graph () in
      let neighbor_of = function
        | 0 -> 2 (* customer *)
        | 1 -> 3 (* peer *)
        | _ -> 4 (* provider *)
      in
      let routes =
        List.map (fun (cls, lp) -> route ~path:[ neighbor_of cls; 9 ] ~lp ()) specs
      in
      let rib = Rib.of_routes routes in
      match
        (Rib.best rib (p "10.0.0.0/24"),
         Export_infer.classify_prefix g ~provider:(asn 1) rib (p "10.0.0.0/24"))
      with
      | Some best, verdict -> begin
          match (Rpi_bgp.Route.next_hop_as best, verdict) with
          | Some hop, Export_infer.Customer_route -> Asn.equal hop (asn 2)
          | Some hop, Export_infer.Sa_prefix { next_hop; _ } ->
              Asn.equal hop next_hop && not (Asn.equal hop (asn 2))
          | _, Export_infer.Unreachable -> false
          | None, _ -> false
        end
      | None, _ -> false)

let prop_chain_active_subpaths =
  QCheck2.Test.make ~name:"observed paths make their own chains active" ~count:200
    QCheck2.Gen.(list_size (int_range 2 8) (int_range 1 50))
    (fun ids ->
      let path = List.map asn (List.sort_uniq Int.compare ids) in
      QCheck2.assume (List.length path >= 2);
      let idx = Sa_verify.index_paths [ path ] in
      (* Every contiguous sub-chain of an observed path is active. *)
      let rec subchains = function
        | [] -> []
        | _ :: rest as l -> l :: subchains rest
      in
      List.for_all (fun chain -> Sa_verify.chain_active idx chain) (subchains path))

let prop_uptime_bounds =
  QCheck2.Test.make ~name:"sa uptime never exceeds epoch count" ~count:100
    QCheck2.Gen.(list_size (int_range 1 10) (list_size (int_range 0 5) (int_range 0 9)))
    (fun epochs_spec ->
      let prefix_of i = p (Printf.sprintf "10.0.%d.0/24" i) in
      let observations =
        List.map
          (fun sa_ids ->
            let sa = Prefix_set.of_list (List.map prefix_of sa_ids) in
            let all =
              Prefix_set.union sa
                (Prefix_set.of_list (List.init 10 prefix_of))
            in
            { Persistence.all_prefixes = all; sa_prefixes = sa })
          epochs_spec
      in
      let up = Persistence.uptimes observations in
      let epochs = List.length epochs_spec in
      List.for_all (fun (k, _) -> k >= 1 && k <= epochs)
        (up.Persistence.remaining_sa @ up.Persistence.shifting))

let () =
  Alcotest.run "rpi_core"
    [
      ( "import_infer",
        [
          Alcotest.test_case "judge" `Quick test_judge_typical;
          Alcotest.test_case "analyze" `Quick test_import_analyze;
          Alcotest.test_case "class preferences" `Quick test_infer_class_preferences;
        ] );
      ( "nexthop",
        [
          Alcotest.test_case "consistency" `Quick test_nexthop_consistency;
          Alcotest.test_case "empty" `Quick test_nexthop_empty;
        ] );
      ( "export_infer",
        [
          Alcotest.test_case "classify" `Quick test_classify_prefix;
          Alcotest.test_case "analyze" `Quick test_export_analyze;
          Alcotest.test_case "non-customers skipped" `Quick test_export_skips_non_customers;
          Alcotest.test_case "origins of rib" `Quick test_origins_of_rib;
          Alcotest.test_case "viewpoint of feed" `Quick test_viewpoint_of_feed;
        ] );
      ( "sa_verify",
        [
          Alcotest.test_case "path index" `Quick test_path_index;
          Alcotest.test_case "verdicts" `Quick test_sa_verify_verdicts;
          Alcotest.test_case "observed paths" `Quick test_observed_paths_of_rib;
        ] );
      ( "sa_causes",
        [
          Alcotest.test_case "splitting" `Quick test_splitting_detection;
          Alcotest.test_case "splitting same-origin only" `Quick test_splitting_requires_same_origin;
          Alcotest.test_case "aggregable" `Quick test_aggregable_detection;
          Alcotest.test_case "case3 withhold" `Quick test_case3_withhold;
          Alcotest.test_case "case3 announce" `Quick test_case3_announce;
          Alcotest.test_case "case3 undetermined" `Quick test_case3_undetermined;
        ] );
      ("homing", [ Alcotest.test_case "analyze" `Quick test_homing ]);
      ( "persistence",
        [
          Alcotest.test_case "series and uptimes" `Quick test_persistence;
          Alcotest.test_case "empty" `Quick test_persistence_empty;
        ] );
      ( "peer_export",
        [
          Alcotest.test_case "partial" `Quick test_peer_export;
          Alcotest.test_case "all direct" `Quick test_peer_export_all_direct;
        ] );
      ( "community_verify",
        [
          Alcotest.test_case "prefix counts" `Quick test_prefix_counts;
          Alcotest.test_case "neighbor tags" `Quick test_neighbor_tags;
          Alcotest.test_case "semantics" `Quick test_infer_semantics;
          Alcotest.test_case "verify report" `Quick test_community_verify_report;
        ] );
      ( "irr_import",
        [
          Alcotest.test_case "pairs" `Quick test_irr_import;
          Alcotest.test_case "no pref" `Quick test_irr_import_no_pref;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_judge_antisymmetric;
            prop_classify_matches_best_hop;
            prop_chain_active_subpaths;
            prop_uptime_bounds;
          ] );
    ]
