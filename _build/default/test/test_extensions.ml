(* Tests for the extension analyses: prepending, policy atoms, path
   availability, and the IRR export audit. *)

module Asn = Rpi_bgp.Asn
module Route = Rpi_bgp.Route
module Rib = Rpi_bgp.Rib
module As_path = Rpi_bgp.As_path
module Prefix = Rpi_net.Prefix
module Ipv4 = Rpi_net.Ipv4
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Atom = Rpi_sim.Atom
module Engine = Rpi_sim.Engine
module Policy = Rpi_sim.Policy
module Prepend_infer = Rpi_core.Prepend_infer
module Policy_atoms = Rpi_core.Policy_atoms
module Availability = Rpi_core.Availability
module Irr_export = Rpi_core.Irr_export

let p = Prefix.of_string_exn
let asn = Asn.of_int

let route ?(pfx = "10.0.0.0/24") ~path () =
  let peer = asn (List.hd path) in
  Route.make ~prefix:(p pfx)
    ~next_hop:(Ipv4.of_octets 10 9 (List.hd path mod 250) 1)
    ~as_path:(As_path.of_list (List.map asn path))
    ~router_id:(Ipv4.of_octets 10 9 (List.hd path mod 250) 1)
    ~peer_as:peer ()

(* --- Prepend_infer --- *)

let test_detect_path () =
  let detect l = Prepend_infer.detect_path (List.map asn l) in
  Alcotest.(check int) "clean path" 0 (List.length (detect [ 1; 2; 3 ]));
  begin
    match detect [ 1; 2; 2; 2 ] with
    | [ (a, copies, at_origin) ] ->
        Alcotest.(check int) "prepender" 2 (Asn.to_int a);
        Alcotest.(check int) "copies" 3 copies;
        Alcotest.(check bool) "at origin" true at_origin
    | other -> Alcotest.failf "expected one run, got %d" (List.length other)
  end;
  begin
    match detect [ 5; 5; 9 ] with
    | [ (a, copies, at_origin) ] ->
        Alcotest.(check int) "mid prepender" 5 (Asn.to_int a);
        Alcotest.(check int) "two copies" 2 copies;
        Alcotest.(check bool) "not at origin" false at_origin
    | other -> Alcotest.failf "expected one run, got %d" (List.length other)
  end;
  Alcotest.(check int) "two runs" 2 (List.length (detect [ 1; 1; 2; 3; 3 ]));
  Alcotest.(check int) "empty path" 0 (List.length (detect []))

let test_prepend_analyze () =
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 1; 9; 9; 9 ] ();
        route ~pfx:"10.0.1.0/24" ~path:[ 1; 8 ] ();
      ]
  in
  let r = Prepend_infer.analyze rib in
  Alcotest.(check int) "routes" 2 r.Prepend_infer.routes_total;
  Alcotest.(check int) "prepended" 1 r.Prepend_infer.routes_prepended;
  Alcotest.(check (float 0.01)) "pct" 50.0 r.Prepend_infer.pct_prepended;
  Alcotest.(check (list (pair int int))) "histogram" [ (3, 1) ]
    (List.map (fun (c, n) -> (c, n)) r.Prepend_infer.copies_histogram);
  Alcotest.(check (option int)) "top prepender" (Some 9)
    (match r.Prepend_infer.by_prepender with
    | (a, _) :: _ -> Some (Asn.to_int a)
    | [] -> None)

let test_engine_prepending () =
  (* Origin 30 prepends towards provider 10 but not 20; a 2-hop observer
     above both prefers the unpadded side. *)
  let top = asn 1 and p1 = asn 10 and p2 = asn 20 and origin = asn 30 in
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:top ~customer:p1 in
  let g = As_graph.add_p2c g ~provider:top ~customer:p2 in
  let g = As_graph.add_p2c g ~provider:p1 ~customer:origin in
  let g = As_graph.add_p2c g ~provider:p2 ~customer:origin in
  let net = Engine.prepare ~graph:g ~import:(fun _ -> Policy.default_import) () in
  let atom =
    Atom.make ~id:0 ~origin ~prepend_to:[ (p1, 2) ] [ p "10.0.0.0/24" ]
  in
  let result = Engine.propagate net ~retain:(Asn.Set.of_list [ top; p1 ]) atom in
  begin
    match Engine.best_at result top with
    | Some r ->
        Alcotest.(check (list int)) "unpadded side wins"
          [ 20; 30 ]
          (List.map Asn.to_int r.Engine.path)
    | None -> Alcotest.fail "no route at top"
  end;
  (* The padded announcement is visible at p1 itself. *)
  match Engine.best_at result p1 with
  | Some r ->
      Alcotest.(check (list int)) "padding present" [ 30; 30; 30 ]
        (List.map Asn.to_int r.Engine.path)
  | None -> Alcotest.fail "no route at p1"

(* --- Policy_atoms --- *)

let test_policy_atoms () =
  (* Prefixes A and B share their signature (same paths from both feeds);
     C differs. *)
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 1; 9 ] ();
        route ~pfx:"10.0.0.0/24" ~path:[ 2; 9 ] ();
        route ~pfx:"10.0.1.0/24" ~path:[ 1; 9 ] ();
        route ~pfx:"10.0.1.0/24" ~path:[ 2; 9 ] ();
        route ~pfx:"10.0.2.0/24" ~path:[ 1; 9 ] ();
      ]
  in
  let r = Policy_atoms.infer rib in
  Alcotest.(check int) "prefixes" 3 r.Policy_atoms.prefixes_total;
  Alcotest.(check int) "atoms" 2 r.Policy_atoms.atom_count;
  Alcotest.(check int) "max size" 2 r.Policy_atoms.max_size;
  Alcotest.(check int) "singletons" 1 r.Policy_atoms.singleton_count;
  let big = List.hd r.Policy_atoms.atoms in
  Alcotest.(check (option int)) "common origin" (Some 9)
    (Option.map Asn.to_int big.Policy_atoms.origin)

let test_policy_atoms_purity () =
  let rib =
    Rib.of_routes
      [
        route ~pfx:"10.0.0.0/24" ~path:[ 1; 9 ] ();
        route ~pfx:"10.0.1.0/24" ~path:[ 1; 9 ] ();
        route ~pfx:"10.0.2.0/24" ~path:[ 2; 9 ] ();
      ]
  in
  let r = Policy_atoms.infer rib in
  (* Ground truth: first two prefixes in atom 1, third in atom 2: pure. *)
  let gt_pure prefix =
    if Prefix.equal prefix (p "10.0.2.0/24") then Some 2 else Some 1
  in
  Alcotest.(check (float 0.001)) "pure" 1.0 (Policy_atoms.purity r ~ground_truth:gt_pure);
  (* Ground truth splitting the big atom: impure. *)
  let gt_mixed prefix = if Prefix.equal prefix (p "10.0.0.0/24") then Some 1 else Some 2 in
  Alcotest.(check (float 0.001)) "half pure" 0.5
    (Policy_atoms.purity r ~ground_truth:gt_mixed)

(* --- Availability --- *)

let availability_graph () =
  (* Observer 1: customers 2 and 3, peer 4, provider 5.  Origin 9 below 2
     and 3 (multihomed); origin 8 below 4 only. *)
  let g = As_graph.empty in
  let g = As_graph.add_p2c g ~provider:(asn 1) ~customer:(asn 2) in
  let g = As_graph.add_p2c g ~provider:(asn 1) ~customer:(asn 3) in
  let g = As_graph.add_p2p g (asn 1) (asn 4) in
  let g = As_graph.add_p2c g ~provider:(asn 5) ~customer:(asn 1) in
  let g = As_graph.add_p2c g ~provider:(asn 2) ~customer:(asn 9) in
  let g = As_graph.add_p2c g ~provider:(asn 3) ~customer:(asn 9) in
  let g = As_graph.add_p2c g ~provider:(asn 4) ~customer:(asn 8) in
  g

let test_potential_next_hops () =
  let g = availability_graph () in
  let hops origin =
    Availability.potential_next_hops g ~observer:(asn 1) ~origin:(asn origin)
    |> List.map Asn.to_int
  in
  (* Origin 9: through customers 2 and 3 (in their cones) and provider 5. *)
  Alcotest.(check (list int)) "multihomed origin" [ 2; 3; 5 ] (hops 9);
  (* Origin 8: only the peer 4 carries it as a customer route, plus the
     provider 5. *)
  Alcotest.(check (list int)) "peer-side origin" [ 4; 5 ] (hops 8)

let test_availability_analyze () =
  let g = availability_graph () in
  (* Table only carries one route for 9's prefix: selective announcement
     starved it. *)
  let rib = Rib.of_routes [ route ~pfx:"10.9.0.0/24" ~path:[ 2; 9 ] () ] in
  let r =
    Availability.analyze g ~observer:(asn 1)
      ~origins:[ (asn 9, [ p "10.9.0.0/24" ]) ]
      rib
  in
  Alcotest.(check int) "one sample" 1 (List.length r.Availability.samples);
  Alcotest.(check (float 0.01)) "potential" 3.0 r.Availability.mean_potential;
  Alcotest.(check (float 0.01)) "actual" 1.0 r.Availability.mean_actual;
  Alcotest.(check int) "starved" 1 r.Availability.starved

let test_availability_sampling_cap () =
  let g = availability_graph () in
  let prefixes = List.init 20 (fun i -> p (Printf.sprintf "10.9.%d.0/24" i)) in
  let rib =
    Rib.of_routes
      (List.map (fun q -> route ~pfx:(Prefix.to_string q) ~path:[ 2; 9 ] ()) prefixes)
  in
  let r =
    Availability.analyze g ~observer:(asn 1) ~origins:[ (asn 9, prefixes) ] ~max_samples:5 rib
  in
  Alcotest.(check int) "capped" 5 (List.length r.Availability.samples)

(* --- Irr_export --- *)

let test_leaky_filter () =
  Alcotest.(check bool) "ANY" true (Irr_export.leaky_filter "ANY");
  Alcotest.(check bool) "any lowercase" true (Irr_export.leaky_filter "any");
  Alcotest.(check bool) "AS-ANY" true (Irr_export.leaky_filter "AS-ANY");
  Alcotest.(check bool) "scoped" false (Irr_export.leaky_filter "AS1:customers");
  Alcotest.(check bool) "self" false (Irr_export.leaky_filter "AS1")

let test_irr_export_analyze () =
  let g = availability_graph () in
  let clean =
    Rpi_irr.Rpsl.make ~asn:(asn 1)
      ~exports:
        [
          { Rpi_irr.Rpsl.to_as = asn 2; announce = "ANY" };
          (* towards a customer: fine *)
          { Rpi_irr.Rpsl.to_as = asn 4; announce = "AS1:customers" };
        ]
      ()
  in
  let leaky =
    Rpi_irr.Rpsl.make ~asn:(asn 2)
      ~exports:[ { Rpi_irr.Rpsl.to_as = asn 1; announce = "ANY" } ]
      (* full table towards the provider: leak-shaped *)
      ()
  in
  let db = Rpi_irr.Db.of_objects [ clean; leaky ] in
  let r = Irr_export.analyze g db in
  Alcotest.(check int) "objects" 2 r.Irr_export.objects_checked;
  Alcotest.(check int) "violations" 1 (List.length r.Irr_export.violations);
  Alcotest.(check (float 0.01)) "half clean" 50.0 r.Irr_export.pct_clean_objects;
  let v = List.hd r.Irr_export.violations in
  Alcotest.(check int) "who" 2 (Asn.to_int v.Irr_export.asn);
  Alcotest.(check bool) "towards provider" true
    (Relationship.equal v.Irr_export.rel Relationship.Provider)

(* --- properties --- *)

let prop_detect_path_total_copies =
  QCheck2.Test.make ~name:"detected copies never exceed path length" ~count:300
    QCheck2.Gen.(list_size (int_range 0 12) (int_range 1 5))
    (fun ids ->
      let path = List.map asn ids in
      let detected = Prepend_infer.detect_path path in
      List.for_all (fun (_, copies, _) -> copies >= 2 && copies <= List.length ids) detected)

let prop_atoms_partition =
  QCheck2.Test.make ~name:"policy atoms partition the prefix set" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 9) (int_range 1 3)))
    (fun specs ->
      let routes =
        List.concat_map
          (fun (i, feeds) ->
            List.init feeds (fun f ->
                route
                  ~pfx:(Printf.sprintf "10.0.%d.0/24" i)
                  ~path:[ 100 + f; 9 ]
                  ()))
          specs
      in
      let rib = Rib.of_routes routes in
      let r = Policy_atoms.infer rib in
      let scattered = List.concat_map (fun a -> a.Policy_atoms.prefixes) r.Policy_atoms.atoms in
      List.length scattered = r.Policy_atoms.prefixes_total
      && List.sort_uniq Prefix.compare scattered = Rib.prefixes rib)

let () =
  Alcotest.run "rpi_extensions"
    [
      ( "prepend",
        [
          Alcotest.test_case "detect path" `Quick test_detect_path;
          Alcotest.test_case "analyze" `Quick test_prepend_analyze;
          Alcotest.test_case "engine prepending" `Quick test_engine_prepending;
        ] );
      ( "policy_atoms",
        [
          Alcotest.test_case "infer" `Quick test_policy_atoms;
          Alcotest.test_case "purity" `Quick test_policy_atoms_purity;
        ] );
      ( "availability",
        [
          Alcotest.test_case "potential next hops" `Quick test_potential_next_hops;
          Alcotest.test_case "analyze" `Quick test_availability_analyze;
          Alcotest.test_case "sampling cap" `Quick test_availability_sampling_cap;
        ] );
      ( "irr_export",
        [
          Alcotest.test_case "leaky filter" `Quick test_leaky_filter;
          Alcotest.test_case "analyze" `Quick test_irr_export_analyze;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_detect_path_total_copies; prop_atoms_partition ] );
    ]
