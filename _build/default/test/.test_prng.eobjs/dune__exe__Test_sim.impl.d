test/test_sim.ml: Alcotest Array Fun List Option Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_net Rpi_prng Rpi_sim Rpi_topo
