test/test_relinfer.ml: Alcotest List Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_prng Rpi_relinfer Rpi_topo
