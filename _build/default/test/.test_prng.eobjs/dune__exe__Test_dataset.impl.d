test/test_dataset.ml: Alcotest Int Lazy List Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_net Rpi_sim Rpi_topo
