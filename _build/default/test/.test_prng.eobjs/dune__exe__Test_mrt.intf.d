test/test_mrt.mli:
