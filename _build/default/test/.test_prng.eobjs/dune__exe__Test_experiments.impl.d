test/test_experiments.ml: Alcotest Lazy List Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_experiments Rpi_relinfer Rpi_stats Rpi_topo String
