test/test_irr.ml: Alcotest Fun List Option Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_irr Rpi_prng Rpi_sim Rpi_topo
