test/test_experiments.mli:
