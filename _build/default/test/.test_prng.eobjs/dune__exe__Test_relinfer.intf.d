test/test_relinfer.mli:
