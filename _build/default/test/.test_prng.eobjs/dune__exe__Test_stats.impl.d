test/test_stats.ml: Alcotest List Rpi_stats String
