test/test_topo.mli:
