test/test_net.ml: Alcotest List Option Printf QCheck2 QCheck_alcotest Rpi_net
