test/test_irr.mli:
