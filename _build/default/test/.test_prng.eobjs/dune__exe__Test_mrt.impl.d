test/test_mrt.ml: Alcotest Filename Int List Option QCheck2 QCheck_alcotest Rpi_bgp Rpi_mrt Rpi_net String
