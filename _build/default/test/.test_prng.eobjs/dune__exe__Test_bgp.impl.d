test/test_bgp.ml: Alcotest List Option Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_net
