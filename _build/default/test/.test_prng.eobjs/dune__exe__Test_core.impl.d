test/test_core.ml: Alcotest Int List Option Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_core Rpi_irr Rpi_net Rpi_topo
