test/test_topo.ml: Alcotest List Option QCheck2 QCheck_alcotest Rpi_bgp Rpi_prng Rpi_topo
