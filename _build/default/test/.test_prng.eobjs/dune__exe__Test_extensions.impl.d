test/test_extensions.ml: Alcotest List Option Printf QCheck2 QCheck_alcotest Rpi_bgp Rpi_core Rpi_irr Rpi_net Rpi_sim Rpi_topo
