test/test_prng.ml: Alcotest Array Fun Hashtbl Int List Option QCheck2 QCheck_alcotest Rpi_prng
