test/test_dataset.mli:
