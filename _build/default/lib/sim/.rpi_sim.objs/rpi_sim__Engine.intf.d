lib/sim/engine.mli: Atom Policy Rpi_bgp Rpi_topo
