lib/sim/vantage.ml: Atom Engine List Policy Rpi_bgp Rpi_net Rpi_topo
