lib/sim/timeline.ml: Atom List Rpi_bgp Rpi_prng Rpi_topo
