lib/sim/policy.ml: Int List Rpi_bgp Rpi_topo
