lib/sim/engine.ml: Array Atom Hashtbl Int List Logs Option Policy Queue Rpi_bgp Rpi_topo
