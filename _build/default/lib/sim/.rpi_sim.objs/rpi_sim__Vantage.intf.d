lib/sim/vantage.mli: Engine Policy Rpi_bgp Rpi_net
