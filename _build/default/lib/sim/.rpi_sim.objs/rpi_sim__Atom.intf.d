lib/sim/atom.mli: Format Rpi_bgp Rpi_net
