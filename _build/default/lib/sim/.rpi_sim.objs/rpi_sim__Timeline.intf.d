lib/sim/timeline.mli: Atom Rpi_bgp Rpi_prng Rpi_topo
