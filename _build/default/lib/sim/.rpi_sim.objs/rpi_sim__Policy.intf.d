lib/sim/policy.mli: Rpi_bgp Rpi_topo
