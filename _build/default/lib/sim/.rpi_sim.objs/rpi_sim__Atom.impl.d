lib/sim/atom.ml: Format List Printf Rpi_bgp Rpi_net String
