module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Prng = Rpi_prng.Prng

type churn = {
  p_policy_change : float;
  p_outage : float;
  p_late_start : float;
  p_early_stop : float;
  p_conditional : float;
  p_primary_down : float;
}

let monthly_churn =
  {
    p_policy_change = 0.010;
    p_outage = 0.01;
    p_late_start = 0.08;
    p_early_stop = 0.06;
    p_conditional = 0.03;
    p_primary_down = 0.03;
  }

let hourly_churn =
  {
    p_policy_change = 0.002;
    p_outage = 0.004;
    p_late_start = 0.02;
    p_early_stop = 0.015;
    p_conditional = 0.03;
    p_primary_down = 0.003;
  }

type epoch = { index : int; atoms : Atom.t list }

(* Re-sample the provider scope of [atom]: any non-empty subset of the
   origin's providers, or all of them. *)
let resample_scope rng graph (atom : Atom.t) =
  let providers = As_graph.providers graph atom.Atom.origin in
  match providers with
  | [] | [ _ ] -> { atom with Atom.provider_scope = Atom.All_providers }
  | _ :: _ :: _ ->
      if Prng.chance rng 0.4 then { atom with Atom.provider_scope = Atom.All_providers }
      else begin
        let chosen =
          List.filter (fun _ -> Prng.bool rng) providers
        in
        let chosen =
          match chosen with
          | [] -> [ Prng.choice_list rng providers ]
          | _ :: _ -> chosen
        in
        (* Keep the subset proper so the atom stays selective. *)
        let chosen =
          if List.length chosen = List.length providers then List.tl providers else chosen
        in
        { atom with Atom.provider_scope = Atom.Only_providers (Asn.Set.of_list chosen) }
      end

let evolve rng ~graph ~churn ~epochs atoms =
  if epochs < 1 then invalid_arg "Timeline.evolve: need at least one epoch";
  (* Lifetime window per atom: a minority of prefixes arrives or departs
     mid-window, spreading the uptime distribution. *)
  let lifetimes =
    List.map
      (fun (atom : Atom.t) ->
        let start =
          if Prng.chance rng churn.p_late_start then Prng.int rng epochs else 0
        in
        let stop =
          if Prng.chance rng churn.p_early_stop then
            Prng.int_in rng start (epochs - 1)
          else epochs - 1
        in
        (atom.Atom.id, (start, stop)))
      atoms
  in
  let alive id index =
    match List.assoc_opt id lifetimes with
    | Some (start, stop) -> index >= start && index <= stop
    | None -> true
  in
  (* Conditional advertisement assignments: (atom id -> primary, backup)
     scopes, fixed for the whole window. *)
  let conditionals =
    List.filter_map
      (fun (atom : Atom.t) ->
        let providers = As_graph.providers graph atom.Atom.origin in
        match providers with
        | _ :: _ :: _ when Prng.chance rng churn.p_conditional ->
            let primary = Prng.choice_list rng providers in
            let backup =
              Prng.choice_list rng
                (List.filter (fun p -> not (Asn.equal p primary)) providers)
            in
            Some (atom.Atom.id, (primary, backup))
        | _ :: _ | [] -> None)
      atoms
  in
  let conditional_scope id =
    match List.assoc_opt id conditionals with
    | Some (primary, backup) ->
        let active = if Prng.chance rng churn.p_primary_down then backup else primary in
        Some (Atom.Only_providers (Asn.Set.singleton active))
    | None -> None
  in
  let rec go index current acc =
    if index >= epochs then List.rev acc
    else begin
      let current =
        List.map
          (fun (atom : Atom.t) ->
            match conditional_scope atom.Atom.id with
            | Some scope -> { atom with Atom.provider_scope = scope }
            | None ->
                let eligible =
                  Atom.is_selective atom
                  || List.length (As_graph.providers graph atom.Atom.origin) > 1
                in
                if
                  index > 0 && eligible
                  && Prng.chance rng churn.p_policy_change
                then resample_scope rng graph atom
                else atom)
          current
      in
      let visible =
        List.filter
          (fun (atom : Atom.t) ->
            alive atom.Atom.id index && not (Prng.chance rng churn.p_outage))
          current
      in
      go (index + 1) current ({ index; atoms = visible } :: acc)
    end
  in
  go 0 atoms []
