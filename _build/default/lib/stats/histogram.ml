module Int_map = Map.Make (Int)

type t = int Int_map.t

let empty = Int_map.empty

let add ?(count = 1) key t =
  Int_map.update key
    (fun existing ->
      match existing with
      | Some n -> Some (n + count)
      | None -> Some count)
    t

let of_list keys = List.fold_left (fun t k -> add k t) empty keys

let count key t =
  match Int_map.find_opt key t with
  | Some n -> n
  | None -> 0

let total t = Int_map.fold (fun _ n acc -> acc + n) t 0

let bins t = Int_map.bindings t

let bins_filled ~lo ~hi t =
  List.init (hi - lo + 1) (fun i ->
      let key = lo + i in
      (key, count key t))

let max_key t = Int_map.max_binding_opt t |> Option.map fst

let merge a b = Int_map.union (fun _ x y -> Some (x + y)) a b
