(** Descriptive statistics over float samples. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val sum : float list -> float
val min_value : float list -> float option
val max_value : float list -> float option

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty list or [p]
    outside range. *)

val median : float list -> float
(** @raise Invalid_argument on an empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists shorter than 2. *)

val fraction : (int * int) -> float
(** [fraction (num, den)] as a float, 0 when [den = 0]. *)

val pct : (int * int) -> float
(** [fraction] scaled to 0-100. *)
