(** Rank-size and time series helpers for the paper's figures. *)

val rank_by_count : ('a * int) list -> (int * 'a * int) list
(** [(rank, item, count)] with rank 1 = largest count; ties broken by input
    order (stable). *)

val log_spaced_marks : int -> int list
(** [1; 2; 5; 10; 20; 50; ...] up to the bound — tick positions for
    log-scale textual plots. *)

val ascii_loglog : ?width:int -> ?height:int -> (float * float) list -> string
(** A small log-log scatter rendering for terminal output (Fig. 9-style
    rank plots).  Points with non-positive coordinates are dropped. *)

val ascii_timeseries :
  ?width:int -> ?height:int -> labels:string list -> float list list -> string
(** Multiple series over a shared x axis (Fig. 6-style), log-scale y.
    Each series gets the first character of its label as its mark. *)
