let rank_by_count items =
  let sorted = List.stable_sort (fun (_, a) (_, b) -> Int.compare b a) items in
  List.mapi (fun i (item, count) -> (i + 1, item, count)) sorted

let log_spaced_marks bound =
  let rec go acc decade =
    let marks = [ decade; 2 * decade; 5 * decade ] in
    let keep = List.filter (fun m -> m <= bound) marks in
    if keep = [] then List.rev acc else go (List.rev_append keep acc) (decade * 10)
  in
  go [] 1

let render_grid grid =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun row ->
      Buffer.add_string buf (String.init (Array.length row) (Array.get row));
      Buffer.add_char buf '\n')
    grid;
  Buffer.contents buf

let ascii_loglog ?(width = 60) ?(height = 16) points =
  let points = List.filter (fun (x, y) -> x > 0.0 && y > 0.0) points in
  match points with
  | [] -> "(no data)\n"
  | _ :: _ ->
      let lx = List.map (fun (x, _) -> log10 x) points in
      let ly = List.map (fun (_, y) -> log10 y) points in
      let fmin l = List.fold_left min infinity l and fmax l = List.fold_left max neg_infinity l in
      let x0 = fmin lx and x1 = fmax lx and y0 = fmin ly and y1 = fmax ly in
      let xspan = if x1 -. x0 < 1e-9 then 1.0 else x1 -. x0 in
      let yspan = if y1 -. y0 < 1e-9 then 1.0 else y1 -. y0 in
      let grid = Array.make_matrix height width ' ' in
      List.iter
        (fun (x, y) ->
          let gx =
            int_of_float ((log10 x -. x0) /. xspan *. float_of_int (width - 1))
          in
          let gy =
            height - 1
            - int_of_float ((log10 y -. y0) /. yspan *. float_of_int (height - 1))
          in
          if gx >= 0 && gx < width && gy >= 0 && gy < height then grid.(gy).(gx) <- '*')
        points;
      Printf.sprintf "y: %.3g .. %.3g (log)  x: %.3g .. %.3g (log)\n%s"
        (10.0 ** y0) (10.0 ** y1) (10.0 ** x0) (10.0 ** x1) (render_grid grid)

let ascii_timeseries ?(width = 60) ?(height = 12) ~labels series =
  let all = List.concat series |> List.filter (fun v -> v > 0.0) in
  match all with
  | [] -> "(no data)\n"
  | _ :: _ ->
      let y0 = log10 (List.fold_left min infinity all) in
      let y1 = log10 (List.fold_left max neg_infinity all) in
      let yspan = if y1 -. y0 < 1e-9 then 1.0 else y1 -. y0 in
      let n = List.fold_left (fun acc s -> max acc (List.length s)) 0 series in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let mark =
            match List.nth_opt labels si with
            | Some l when String.length l > 0 -> l.[0]
            | Some _ | None -> Char.chr (Char.code 'a' + (si mod 26))
          in
          List.iteri
            (fun i v ->
              if v > 0.0 then begin
                let gx =
                  if n <= 1 then 0 else i * (width - 1) / (n - 1)
                in
                let gy =
                  height - 1
                  - int_of_float ((log10 v -. y0) /. yspan *. float_of_int (height - 1))
                in
                if gx >= 0 && gx < width && gy >= 0 && gy < height then
                  grid.(gy).(gx) <- mark
              end)
            s)
        series;
      let legend =
        List.mapi
          (fun si l ->
            let mark =
              if String.length l > 0 then String.make 1 l.[0]
              else String.make 1 (Char.chr (Char.code 'a' + (si mod 26)))
            in
            Printf.sprintf "%s=%s" mark l)
          labels
        |> String.concat "  "
      in
      Printf.sprintf "y: %.3g .. %.3g (log)   %s\n%s" (10.0 ** y0) (10.0 ** y1) legend
        (render_grid grid)
