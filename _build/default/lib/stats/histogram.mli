(** Integer-keyed frequency counts (used for the paper's uptime histograms,
    Fig. 7). *)

type t

val empty : t
val add : ?count:int -> int -> t -> t
val of_list : int list -> t
val count : int -> t -> int
val total : t -> int
val bins : t -> (int * int) list
(** [(key, count)] pairs, ascending key; zero-count keys omitted. *)

val bins_filled : lo:int -> hi:int -> t -> (int * int) list
(** Like {!bins}, but every key in [lo, hi] present (zeros included). *)

val max_key : t -> int option
val merge : t -> t -> t
