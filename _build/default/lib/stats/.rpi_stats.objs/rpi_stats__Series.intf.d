lib/stats/series.mli:
