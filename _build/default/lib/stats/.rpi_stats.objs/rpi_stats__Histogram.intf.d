lib/stats/histogram.mli:
