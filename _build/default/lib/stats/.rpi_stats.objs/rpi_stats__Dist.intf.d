lib/stats/dist.mli:
