lib/stats/dist.ml: Array Float List
