lib/stats/table.mli:
