lib/stats/histogram.ml: Int List Map Option
