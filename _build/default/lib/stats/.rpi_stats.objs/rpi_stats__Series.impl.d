lib/stats/series.ml: Array Buffer Char Int List Printf String
