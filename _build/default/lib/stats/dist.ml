let sum xs = List.fold_left ( +. ) 0.0 xs

let mean xs =
  match xs with
  | [] -> 0.0
  | _ :: _ -> sum xs /. float_of_int (List.length xs)

let min_value = function
  | [] -> None
  | x :: rest -> Some (List.fold_left min x rest)

let max_value = function
  | [] -> None
  | x :: rest -> Some (List.fold_left max x rest)

let percentile p xs =
  if xs = [] then invalid_arg "Dist.percentile: empty list";
  if p < 0.0 || p > 100.0 then invalid_arg "Dist.percentile: p out of range";
  let arr = Array.of_list xs in
  Array.sort Float.compare arr;
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let pos = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)
  end

let median xs = percentile 50.0 xs

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ :: _ :: _ ->
      let m = mean xs in
      let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
      sqrt var

let fraction (num, den) = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let pct counts = 100.0 *. fraction counts
