lib/irr/db.mli: Rpi_bgp Rpsl
