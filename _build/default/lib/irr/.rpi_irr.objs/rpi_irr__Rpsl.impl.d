lib/irr/rpsl.ml: Buffer List Printf Rpi_bgp String
