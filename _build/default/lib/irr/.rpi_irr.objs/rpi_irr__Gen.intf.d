lib/irr/gen.mli: Db Rpi_bgp Rpi_prng Rpi_sim Rpi_topo
