lib/irr/rpsl.mli: Rpi_bgp
