lib/irr/gen.ml: Db List Printf Rpi_bgp Rpi_prng Rpi_sim Rpi_topo Rpsl
