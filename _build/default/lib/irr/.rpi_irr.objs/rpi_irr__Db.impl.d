lib/irr/db.ml: Fun In_channel List Result Rpi_bgp Rpsl
