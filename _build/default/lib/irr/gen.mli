(** Synthetic IRR registry generation.

    Derives aut-num objects from the ground-truth simulator policies, then
    degrades them the way the real IRR is degraded: a fraction of objects
    is stale (old [changed] dates), rules are dropped (incompleteness), and
    a small fraction of preference values is perturbed (out-of-date or
    erroneous entries).  RPSL [pref] is emitted as [200 - local_pref] so
    that smaller-is-better RPSL matches higher-is-better BGP. *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

type config = {
  p_stale : float;  (** Object last touched before the cutoff. *)
  p_missing_rule : float;  (** Each import rule independently absent. *)
  p_noisy_pref : float;  (** Each pref replaced by an uninformative value. *)
  p_leaky_export : float;
      (** A peer/provider export rule registered as full-table ("ANY") — a
          route-leak-shaped misconfiguration. *)
  fresh_date : int;  (** YYYYMMDD stamped on fresh objects. *)
  stale_date : int;  (** YYYYMMDD stamped on stale objects. *)
}

val default_config : config

val pref_of_lp : int -> int
(** [200 - lp], clamped to 1. *)

val registry :
  ?config:config ->
  Rpi_prng.Prng.t ->
  graph:As_graph.t ->
  policies:(Asn.t -> Rpi_sim.Policy.t) ->
  Db.t
(** One aut-num object per AS of the graph, with an import rule per
    neighbour carrying the pref implied by the AS's import policy, and an
    export rule per neighbour (ANY towards customers, own/customer routes
    towards providers and peers). *)
