(** Deterministic pseudo-random number generation.

    Every stochastic component of the library draws its randomness from a
    [Prng.t] so that a given seed reproduces a dataset bit-for-bit.  The
    generator is SplitMix64 (Steele, Lea & Flood 2014): a tiny, fast,
    well-distributed 64-bit generator whose state is a single integer, which
    makes independent sub-streams ([split]) trivial to derive. *)

type t
(** Mutable generator state. *)

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each subsystem its own stream so that adding draws in one
    subsystem does not perturb another. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [0, n-1].  [n] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] draws uniformly from the inclusive range [lo, hi].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t x] draws uniformly from [0, x). *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0,1]). *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted_choice : t -> ('a * float) list -> 'a
(** [weighted_choice t items] draws an element with probability proportional
    to its weight.  Weights must be non-negative with a positive sum. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Returns a shuffled copy of the list. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] draws [min k (length xs)] distinct elements of [xs],
    in random order. *)

val zipf : t -> n:int -> s:float -> int
(** [zipf t ~n ~s] draws a rank in [1, n] under a Zipf law with exponent [s]
    (by inverse-CDF over precomputed weights is avoided; rejection sampling
    keeps it allocation-free).  Heavier ranks are more likely. *)

val pareto : t -> xm:float -> alpha:float -> float
(** Pareto-distributed float with scale [xm] and shape [alpha]; used for
    power-law-ish degree targets. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed float with the given mean. *)
