lib/prng/prng.mli:
