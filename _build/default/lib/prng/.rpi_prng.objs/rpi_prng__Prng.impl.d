lib/prng/prng.ml: Array Float Int64 List
