(* SplitMix64.  Reference: Steele, Lea & Flood, "Fast splittable
   pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Non-negative 62-bit int from the top bits, safe for OCaml's int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound = n in
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let r = bits t in
    if r >= limit then draw () else r mod bound
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t x =
  (* 53 random bits -> [0,1), scaled. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int r /. 9007199254740992.0 *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choice t a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int t (Array.length a))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Prng.choice_list: empty list"
  | _ :: _ -> List.nth l (int t (List.length l))

let weighted_choice t items =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  if total <= 0.0 then invalid_arg "Prng.weighted_choice: non-positive total weight";
  let target = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.weighted_choice: empty list"
    | [ (x, _) ] -> x
    | (x, w) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 items

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let sample t k xs =
  let a = Array.of_list xs in
  shuffle t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)

(* Zipf via the rejection method of Devroye (1986), valid for s > 0. *)
let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  if n = 1 then 1
  else begin
    let nf = float_of_int n in
    if abs_float (s -. 1.0) < 1e-9 then begin
      (* s = 1: inverse CDF of the continuous approximation. *)
      let u = float t 1.0 in
      let x = exp (u *. log (nf +. 1.0)) in
      let k = int_of_float x in
      max 1 (min n k)
    end
    else begin
      let one_minus_s = 1.0 -. s in
      let h x = (x ** one_minus_s) /. one_minus_s in
      let h_inv x = (one_minus_s *. x) ** (1.0 /. one_minus_s) in
      let hx0 = h 0.5 -. 1.0 in
      let hn = h (nf +. 0.5) in
      let rec draw () =
        let u = hx0 +. float t 1.0 *. (hn -. hx0) in
        let x = h_inv u in
        let k = Float.round x in
        let k = max 1.0 (min nf k) in
        if u >= h (k +. 0.5) -. (k ** (-.s)) then int_of_float k else draw ()
      in
      draw ()
    end
  end

let pareto t ~xm ~alpha =
  if xm <= 0.0 || alpha <= 0.0 then invalid_arg "Prng.pareto: parameters must be positive";
  let u = 1.0 -. float t 1.0 in
  xm /. (u ** (1.0 /. alpha))

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = 1.0 -. float t 1.0 in
  -.mean *. log u
