(** One function per table and figure of the paper's evaluation, each
    rendering a text report: what the paper reports, what this reproduction
    measures on the synthetic dataset, plus oracle-based accuracy where the
    ground truth makes it possible. *)

val table1 : Context.t -> string
(** Data sources: collector peering + Looking-Glass vantages (AS, degree,
    tier, region). *)

val table2 : Context.t -> string
(** Typical local preference per Looking-Glass AS. *)

val table3 : Context.t -> string
(** Typical preference for well-connected ASs from the synthetic IRR. *)

val table4 : Context.t -> string
(** AS relationships verified via community tags, per vantage. *)

val table5 : Context.t -> string
(** Percentage of SA prefixes for the collector-visible providers. *)

val table6 : Context.t -> string
(** Per-customer SA share for customers common to the three focus
    Tier-1s. *)

val table7 : Context.t -> string
(** Verification of SA prefixes for the three focus Tier-1s. *)

val table8 : Context.t -> string
(** Multihomed vs single-homed SA origins. *)

val table9 : Context.t -> string
(** Prefix splitting / aggregation vs total SA prefixes. *)

val table10 : Context.t -> string
(** Peers announcing their own prefixes to the focus Tier-1s. *)

val case3 : Context.t -> string
(** Section 5.1.5 Case 3: announce / withhold split over (origin, direct
    provider) pairs. *)

val fig2 : Context.t -> string
(** Local-pref consistency with next-hop AS: (a) per vantage, (b) per
    emulated backbone router of AS7018. *)

val fig6_fig7 : ?days:int -> ?hours:int -> Context.t -> string
(** Persistence of SA prefixes: time series and uptime histograms, from a
    churned re-simulation (defaults: 31 daily and 12 hourly epochs on a
    reduced scenario for wall-clock sanity). *)

val fig9 : Context.t -> string
(** Rank vs announced-prefix-count plots for community semantics
    inference, for three vantages of contrasting size. *)

val ablation_curving : Context.t -> string
(** DESIGN ablation: how many best routes at the focus Tier-1s change when
    local preference is ignored (shortest-path BGP) — the "curving routes"
    effect. *)

val ablation_vantage_count : Context.t -> string
(** DESIGN ablation: Gao inference accuracy as collector feeds are added. *)

val ablation_graph_oracle : Context.t -> string
(** DESIGN ablation: Table 5 recomputed with the ground-truth graph versus
    the inferred graph — the error inherited from relationship
    inference. *)

val ext_prepend : Context.t -> string
(** Extension: AS-path prepending — the soft inbound-TE tool of
    Section 2.2.2 — detected in the tables and scored against the
    configured ground truth. *)

val ext_atoms : Context.t -> string
(** Extension: policy atoms (Afek et al., cited in Section 5.1.5) inferred
    from the collector table, with the paper's claim — atoms are created
    by origin routing policies — checked against the oracle. *)

val ext_availability : Context.t -> string
(** Extension: "connectivity does not mean reachability" quantified —
    potential vs actual next-hop diversity at the focus Tier-1s. *)

val ext_irr_export : Context.t -> string
(** Extension: export rules in the IRR audited against the inferred
    relationships for leak-shaped policies. *)

val ext_tiers : Context.t -> string
(** Extension: the tier classifier (used to label Tables 2/3/5) scored
    against the generator's ground truth. *)

val stability : ?seeds:int list -> Context.t -> string
(** Robustness: the headline metrics (typical-preference median, Tier-1 SA
    share, relationship-inference accuracy) recomputed on freshly built
    reduced worlds for several seeds — the reproduction's qualitative
    claims should hold in every world. *)

val all : (string * string * (Context.t -> string)) list
(** (id, one-line description, runner) for every experiment above. *)

val run_all : Context.t -> string
