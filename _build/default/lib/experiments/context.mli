(** Shared evaluation context: one scenario plus everything derived from it
    that several experiments reuse (inferred relationships, observed-path
    index, synthetic IRR, collector origins). *)

module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph

type t = {
  scenario : Rpi_dataset.Scenario.t;
  inferred : As_graph.t;
      (** Raw Gao relationship inference over all observed paths. *)
  corrected : As_graph.t;
      (** [inferred] with every Looking-Glass vantage's own adjacencies
          re-labelled from its community tags — the paper's Section 4.3
          verification step, which it applies before the import-policy and
          export-policy analyses. *)
  path_index : Rpi_core.Sa_verify.path_index;
  irr : Rpi_irr.Db.t;
  collector_origins : (Asn.t * Rpi_net.Prefix.t list) list;
  focus_tier1 : Asn.t list;  (** AS1, AS3549, AS7018 when present. *)
}

val create :
  ?config:Rpi_dataset.Scenario.config ->
  ?gao_config:Rpi_relinfer.Gao.config ->
  unit ->
  t
(** [gao_config] defaults to Gao's parameters with the peering degree
    ratio lowered to 6 — the synthetic topology compresses absolute
    degrees (hundreds, not thousands), so the discriminating ratio between
    a Tier-1 and its customers is smaller than the measured Internet's. *)

val use_ground_truth_graph : t -> t
(** Swap the inferred graph for the oracle annotated graph (ablation:
    how much do inference errors matter downstream?). *)

val lg_rib_exn : t -> Asn.t -> Rpi_bgp.Rib.t
(** @raise Invalid_argument when the AS is not a Looking-Glass vantage. *)

val paths_for_prefix : t -> Rpi_net.Prefix.t -> Asn.t list list
(** Every AS path observed for the prefix, across the collector and all
    Looking-Glass tables (Looking-Glass paths prepended with their
    vantage). *)
