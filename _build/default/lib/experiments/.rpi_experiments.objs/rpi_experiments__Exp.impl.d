lib/experiments/exp.ml: Context Hashtbl Int List Option Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_net Rpi_prng Rpi_relinfer Rpi_sim Rpi_stats Rpi_topo String
