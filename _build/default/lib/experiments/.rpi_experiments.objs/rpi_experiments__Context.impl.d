lib/experiments/context.ml: List Printf Rpi_bgp Rpi_core Rpi_dataset Rpi_irr Rpi_net Rpi_prng Rpi_relinfer Rpi_topo
