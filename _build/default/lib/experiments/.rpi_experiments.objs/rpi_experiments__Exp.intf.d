lib/experiments/exp.mli: Context
