lib/experiments/context.mli: Rpi_bgp Rpi_core Rpi_dataset Rpi_irr Rpi_net Rpi_relinfer Rpi_topo
