module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Scenario = Rpi_dataset.Scenario

type t = {
  scenario : Scenario.t;
  inferred : As_graph.t;
  corrected : As_graph.t;
  path_index : Rpi_core.Sa_verify.path_index;
  irr : Rpi_irr.Db.t;
  collector_origins : (Asn.t * Rpi_net.Prefix.t list) list;
  focus_tier1 : Asn.t list;
}

(* Section 4.3: re-label a vantage's own adjacencies from the community
   tags its table carries. *)
let correct_with_communities inferred lg_tables =
  List.fold_left
    (fun graph (vantage, rib) ->
      let has_providers = As_graph.providers graph vantage <> [] in
      let semantics =
        Rpi_core.Community_verify.infer_semantics ~vantage ~has_providers rib
      in
      let tags = Rpi_core.Community_verify.neighbor_tags ~vantage rib in
      List.fold_left
        (fun graph (nb, code) ->
          match Rpi_core.Community_verify.classify_neighbor semantics ~code with
          | Some rel -> As_graph.add_edge graph vantage nb rel
          | None -> graph)
        graph tags)
    inferred lg_tables

let default_gao_config =
  { Rpi_relinfer.Gao.default_config with Rpi_relinfer.Gao.peer_degree_ratio = 6.0 }

let create ?config ?(gao_config = default_gao_config) () =
  let scenario = Scenario.build ?config () in
  let paths = Scenario.observed_paths scenario in
  let inferred = Rpi_relinfer.Gao.infer ~config:gao_config paths in
  let corrected = correct_with_communities inferred scenario.Scenario.lg_tables in
  let path_index = Rpi_core.Sa_verify.index_paths paths in
  let irr_rng = Rpi_prng.Prng.create ~seed:(scenario.Scenario.config.Scenario.seed + 7919) in
  let irr =
    Rpi_irr.Gen.registry irr_rng ~graph:scenario.Scenario.graph
      ~policies:(Scenario.policy_of scenario)
  in
  let collector_origins =
    Rpi_core.Export_infer.origins_of_rib scenario.Scenario.collector
  in
  let focus_tier1 =
    List.filter
      (fun a -> As_graph.mem_as scenario.Scenario.graph a)
      (List.map Asn.of_int [ 1; 3549; 7018 ])
  in
  { scenario; inferred; corrected; path_index; irr; collector_origins; focus_tier1 }

let use_ground_truth_graph t =
  { t with inferred = t.scenario.Scenario.graph; corrected = t.scenario.Scenario.graph }

let lg_rib_exn t a =
  match Scenario.lg_table t.scenario a with
  | Some rib -> rib
  | None -> invalid_arg (Printf.sprintf "%s is not a Looking-Glass vantage" (Asn.to_label a))

let paths_for_prefix t prefix =
  let of_routes ?prepend routes =
    List.filter_map
      (fun (r : Rpi_bgp.Route.t) ->
        match Rpi_bgp.As_path.to_list r.Rpi_bgp.Route.as_path with
        | [] -> None
        | hops -> begin
            match prepend with
            | Some vantage -> Some (vantage :: hops)
            | None -> Some hops
          end)
      routes
  in
  let collector_paths =
    of_routes (Rpi_bgp.Rib.candidates t.scenario.Scenario.collector prefix)
  in
  let lg_paths =
    List.concat_map
      (fun (vantage, rib) ->
        of_routes ~prepend:vantage (Rpi_bgp.Rib.candidates rib prefix))
      t.scenario.Scenario.lg_tables
  in
  collector_paths @ lg_paths
