(** The oracle: what the scenario actually configured, for scoring the
    inference algorithms against.

    The paper can only sample-verify its inferences (Tables 4 and 7); the
    synthetic dataset knows the full truth, so every experiment can also
    report an exact accuracy. *)

module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix
module Atom = Rpi_sim.Atom
module Relationship = Rpi_topo.Relationship

type cause =
  | Plain  (** Announced everywhere. *)
  | Selective_subset  (** Exported to a proper subset of providers. *)
  | Selective_no_export  (** Exported with the "no-export-up" community. *)
  | Aggregated  (** Swallowed by a provider's aggregate. *)

val cause_of_atom : Atom.t -> cause

val cause_of_prefix : Scenario.t -> Prefix.t -> cause option
(** Looks the prefix up among the scenario's atoms ([None] if not
    originated). *)

val is_split_prefix : Scenario.t -> Prefix.t -> bool
(** The prefix belongs to an atom whose coverage overlaps a same-origin
    sibling atom with a different export spec (the Case-1 pattern). *)

val atom_of_prefix : Scenario.t -> Prefix.t -> Atom.t option

val selective_atom_count : Scenario.t -> int

val expected_sa : Scenario.t -> provider:Asn.t -> Prefix.t -> bool option
(** Straight from the engine: did the provider's best route for the prefix
    arrive via a peer or provider?  [None] when the provider is not in the
    retain set or holds no route. *)

val relationship_truth : Scenario.t -> Asn.t -> Asn.t -> Relationship.t option

val scheme_truth : Scenario.t -> Asn.t -> Rpi_sim.Policy.community_scheme option

val multihomed_truth : Scenario.t -> Asn.t -> bool
