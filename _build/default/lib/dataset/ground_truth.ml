module Asn = Rpi_bgp.Asn
module Prefix = Rpi_net.Prefix
module Atom = Rpi_sim.Atom
module Engine = Rpi_sim.Engine
module Relationship = Rpi_topo.Relationship
module As_graph = Rpi_topo.As_graph

type cause = Plain | Selective_subset | Selective_no_export | Aggregated

let cause_of_atom (atom : Atom.t) =
  if not (Asn.Set.is_empty atom.Atom.suppressed_at) then Aggregated
  else begin
    match atom.Atom.provider_scope with
    | Atom.Only_providers _ -> Selective_subset
    | Atom.All_providers ->
        if Asn.Set.is_empty atom.Atom.no_export_up then Plain else Selective_no_export
  end

let atom_of_prefix (t : Scenario.t) prefix =
  List.find_opt
    (fun (atom : Atom.t) -> List.exists (Prefix.equal prefix) atom.Atom.prefixes)
    t.Scenario.atoms

let cause_of_prefix t prefix = Option.map cause_of_atom (atom_of_prefix t prefix)

let is_split_prefix t prefix =
  match atom_of_prefix t prefix with
  | None -> false
  | Some atom ->
      List.exists
        (fun (other : Atom.t) ->
          other.Atom.id <> atom.Atom.id
          && Asn.equal other.Atom.origin atom.Atom.origin
          && List.exists
               (fun p ->
                 List.exists
                   (fun q -> Prefix.strictly_subsumes q p || Prefix.strictly_subsumes p q)
                   other.Atom.prefixes)
               atom.Atom.prefixes)
        t.Scenario.atoms

let selective_atom_count (t : Scenario.t) =
  List.length (List.filter Atom.is_selective t.Scenario.atoms)

let expected_sa (t : Scenario.t) ~provider prefix =
  match atom_of_prefix t prefix with
  | None -> None
  | Some atom -> begin
      let result =
        List.find_opt
          (fun (r : Engine.result) -> r.Engine.atom.Atom.id = atom.Atom.id)
          t.Scenario.results
      in
      match result with
      | None -> None
      | Some result -> begin
          match Engine.best_at result provider with
          | None -> None
          | Some route -> begin
              match route.Engine.rel with
              | Some (Relationship.Peer | Relationship.Provider) -> Some true
              | Some (Relationship.Customer | Relationship.Sibling) | None -> Some false
            end
        end
    end

let relationship_truth (t : Scenario.t) a b = As_graph.relationship t.Scenario.graph a b

let scheme_truth (t : Scenario.t) a =
  match Asn.Map.find_opt a t.Scenario.policies with
  | Some p -> p.Rpi_sim.Policy.scheme
  | None -> None

let multihomed_truth (t : Scenario.t) a = As_graph.is_multihomed t.Scenario.graph a
