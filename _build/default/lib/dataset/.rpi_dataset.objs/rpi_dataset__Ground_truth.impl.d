lib/dataset/ground_truth.ml: List Option Rpi_bgp Rpi_net Rpi_sim Rpi_topo Scenario
