lib/dataset/ground_truth.mli: Rpi_bgp Rpi_net Rpi_sim Rpi_topo Scenario
