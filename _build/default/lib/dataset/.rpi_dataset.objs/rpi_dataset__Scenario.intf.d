lib/dataset/scenario.mli: Hashtbl Int Rpi_bgp Rpi_net Rpi_sim Rpi_topo
