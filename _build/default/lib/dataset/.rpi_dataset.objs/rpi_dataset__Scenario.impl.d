lib/dataset/scenario.ml: Array Hashtbl Int List Logs Option Rpi_bgp Rpi_core Rpi_net Rpi_prng Rpi_sim Rpi_topo
