module Asn = Rpi_bgp.Asn
module As_graph = Rpi_topo.As_graph
module Relationship = Rpi_topo.Relationship
module Rpsl = Rpi_irr.Rpsl
module Db = Rpi_irr.Db

type violation = {
  asn : Asn.t;
  to_as : Asn.t;
  rel : Relationship.t;
  announce : string;
}

type report = {
  objects_checked : int;
  rules_checked : int;
  violations : violation list;
  pct_clean_objects : float;
}

let leaky_filter filter =
  match String.uppercase_ascii (String.trim filter) with
  | "ANY" | "AS-ANY" -> true
  | _ -> false

let analyze graph db =
  let objects = Db.objects db in
  let rules_checked = ref 0 in
  let violations = ref [] in
  let dirty = ref Asn.Set.empty in
  List.iter
    (fun (obj : Rpsl.aut_num) ->
      List.iter
        (fun (rule : Rpsl.export_rule) ->
          match As_graph.relationship graph obj.Rpsl.asn rule.Rpsl.to_as with
          | None -> ()
          | Some rel ->
              incr rules_checked;
              let leak =
                match rel with
                | Relationship.Provider | Relationship.Peer -> leaky_filter rule.Rpsl.announce
                | Relationship.Customer | Relationship.Sibling -> false
              in
              if leak then begin
                dirty := Asn.Set.add obj.Rpsl.asn !dirty;
                violations :=
                  {
                    asn = obj.Rpsl.asn;
                    to_as = rule.Rpsl.to_as;
                    rel;
                    announce = rule.Rpsl.announce;
                  }
                  :: !violations
              end)
        obj.Rpsl.exports)
    objects;
  let total = List.length objects in
  {
    objects_checked = total;
    rules_checked = !rules_checked;
    violations = List.rev !violations;
    pct_clean_objects =
      (if total = 0 then 100.0
       else
         100.0
         *. float_of_int (total - Asn.Set.cardinal !dirty)
         /. float_of_int total);
  }
