module Asn = Rpi_bgp.Asn
module Rib = Rpi_bgp.Rib
module Route = Rpi_bgp.Route

type neighbor_profile = {
  neighbor : Asn.t;
  prefixes : int;
  dominant_lp : int;
  conforming : int;
  distinct_values : int;
}

type report = {
  neighbors : neighbor_profile list;
  prefixes_total : int;
  prefixes_conforming : int;
  pct_nexthop_based : float;
  pct_single_valued_neighbors : float;
}

let analyze rib =
  (* neighbour -> lp -> count over prefixes *)
  let per_neighbor : (int, int) Hashtbl.t Asn.Table.t = Asn.Table.create 64 in
  Rib.iter
    (fun _ routes ->
      List.iter
        (fun (r : Route.t) ->
          match (Route.next_hop_as r, r.Route.local_pref) with
          | Some nb, Some lp ->
              let counts =
                match Asn.Table.find_opt per_neighbor nb with
                | Some c -> c
                | None ->
                    let c = Hashtbl.create 4 in
                    Asn.Table.add per_neighbor nb c;
                    c
              in
              Hashtbl.replace counts lp (1 + Option.value ~default:0 (Hashtbl.find_opt counts lp))
          | (Some _ | None), _ -> ())
        routes)
    rib;
  let neighbors =
    Asn.Table.fold
      (fun neighbor counts acc ->
        let prefixes = Hashtbl.fold (fun _ n acc -> acc + n) counts 0 in
        let dominant_lp, conforming =
          Hashtbl.fold
            (fun lp n (best_lp, best_n) -> if n > best_n then (lp, n) else (best_lp, best_n))
            counts (0, 0)
        in
        {
          neighbor;
          prefixes;
          dominant_lp;
          conforming;
          distinct_values = Hashtbl.length counts;
        }
        :: acc)
      per_neighbor []
    |> List.sort (fun a b -> Asn.compare a.neighbor b.neighbor)
  in
  let prefixes_total = List.fold_left (fun acc p -> acc + p.prefixes) 0 neighbors in
  let prefixes_conforming = List.fold_left (fun acc p -> acc + p.conforming) 0 neighbors in
  let single = List.length (List.filter (fun p -> p.distinct_values = 1) neighbors) in
  {
    neighbors;
    prefixes_total;
    prefixes_conforming;
    pct_nexthop_based =
      (if prefixes_total = 0 then 100.0
       else 100.0 *. float_of_int prefixes_conforming /. float_of_int prefixes_total);
    pct_single_valued_neighbors =
      (if neighbors = [] then 100.0
       else 100.0 *. float_of_int single /. float_of_int (List.length neighbors));
  }

let analyze_routers ribs = List.map analyze ribs
