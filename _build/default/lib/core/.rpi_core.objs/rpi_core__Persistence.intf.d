lib/core/persistence.mli: Rpi_net
