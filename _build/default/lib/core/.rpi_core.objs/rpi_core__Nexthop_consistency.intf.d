lib/core/nexthop_consistency.mli: Rpi_bgp
