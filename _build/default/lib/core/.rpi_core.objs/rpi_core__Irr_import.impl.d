lib/core/irr_import.ml: List Rpi_bgp Rpi_irr Rpi_topo
