lib/core/import_infer.ml: Hashtbl Int List Option Rpi_bgp Rpi_net Rpi_topo
