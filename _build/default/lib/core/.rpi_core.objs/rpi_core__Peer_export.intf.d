lib/core/peer_export.mli: Rpi_bgp Rpi_topo
