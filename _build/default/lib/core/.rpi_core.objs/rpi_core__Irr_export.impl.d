lib/core/irr_export.ml: List Rpi_bgp Rpi_irr Rpi_topo String
