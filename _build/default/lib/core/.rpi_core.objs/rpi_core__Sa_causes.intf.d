lib/core/sa_causes.mli: Export_infer Rpi_bgp Rpi_net Rpi_topo
