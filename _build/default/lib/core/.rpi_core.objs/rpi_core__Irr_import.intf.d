lib/core/irr_import.mli: Rpi_bgp Rpi_irr Rpi_topo
