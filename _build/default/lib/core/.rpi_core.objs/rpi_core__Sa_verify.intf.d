lib/core/sa_verify.mli: Export_infer Rpi_bgp Rpi_net Rpi_topo
