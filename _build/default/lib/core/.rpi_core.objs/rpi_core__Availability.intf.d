lib/core/availability.mli: Rpi_bgp Rpi_net Rpi_topo
