lib/core/availability.ml: List Rpi_bgp Rpi_net Rpi_topo
