lib/core/policy_atoms.ml: Hashtbl Int List Option Rpi_bgp Rpi_net String
