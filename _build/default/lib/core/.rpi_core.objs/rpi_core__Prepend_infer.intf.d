lib/core/prepend_infer.mli: Rpi_bgp Rpi_net
