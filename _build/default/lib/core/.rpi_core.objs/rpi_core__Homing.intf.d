lib/core/homing.mli: Export_infer Rpi_bgp Rpi_topo
