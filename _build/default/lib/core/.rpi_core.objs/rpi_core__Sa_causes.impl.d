lib/core/sa_causes.ml: Export_infer List Option Rpi_bgp Rpi_net Rpi_topo
