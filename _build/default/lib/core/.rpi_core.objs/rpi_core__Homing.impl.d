lib/core/homing.ml: Export_infer List Rpi_bgp Rpi_topo
