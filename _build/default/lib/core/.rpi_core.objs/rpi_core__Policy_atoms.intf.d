lib/core/policy_atoms.mli: Rpi_bgp Rpi_net
