lib/core/export_infer.ml: List Option Rpi_bgp Rpi_net Rpi_topo
