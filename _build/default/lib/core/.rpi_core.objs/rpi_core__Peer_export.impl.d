lib/core/peer_export.ml: List Option Rpi_bgp Rpi_topo
