lib/core/community_verify.ml: Array Float Hashtbl Int List Option Rpi_bgp Rpi_sim Rpi_topo
