lib/core/community_verify.mli: Rpi_bgp Rpi_topo
