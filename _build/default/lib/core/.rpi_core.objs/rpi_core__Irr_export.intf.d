lib/core/irr_export.mli: Rpi_bgp Rpi_irr Rpi_topo
