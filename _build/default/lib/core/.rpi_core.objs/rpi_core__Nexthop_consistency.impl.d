lib/core/nexthop_consistency.ml: Hashtbl List Option Rpi_bgp
