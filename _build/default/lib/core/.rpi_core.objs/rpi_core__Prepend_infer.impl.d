lib/core/prepend_infer.ml: Hashtbl Int List Option Rpi_bgp Rpi_net
