lib/core/export_infer.mli: Rpi_bgp Rpi_net Rpi_topo
